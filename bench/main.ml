(* The benchmark harness: regenerates every table and figure of the paper
   (printed as text tables/series), then runs a Bechamel micro-benchmark
   suite over the simulator's core primitives. Per-experiment wall times
   and the emitted tables land in results/bench_<timestamp>.json — the
   perf-trajectory artifact successive PRs compare against.

   Environment knobs:
     BV_SCALE=<float>    scale workload repetitions (default 1.0)
     BV_EXPERIMENTS=ids  comma-separated subset (default: all)
     BV_JOBS=<n>         worker processes for row-level parallelism
                         (default 1; output is identical at any n)
     BV_CACHE=<dir>      compile-artifact cache (default .bv-cache;
                         'none' disables)
     BV_MICRO=0          skip the Bechamel micro-suite
     BV_BENCH_JSON=path  trajectory artifact destination (default
                         results/bench_<timestamp>.json; empty disables) *)

let run_experiments () =
  let ppf = Format.std_formatter in
  let wanted =
    match Sys.getenv_opt "BV_EXPERIMENTS" with
    | Some ids -> String.split_on_char ',' ids
    | None -> List.map (fun (id, _, _) -> id) Bv_harness.Experiments.all
  in
  Format.fprintf ppf
    "Branch Vanguard reproduction — every table and figure (scale %.2f, \
     %d job%s)@."
    (Bv_harness.Runner.scale ())
    (Bv_harness.Sim.jobs (Bv_harness.Sim.the ()))
    (if Bv_harness.Sim.jobs (Bv_harness.Sim.the ()) = 1 then "" else "s");
  ignore (Bv_harness.Experiments.drain_tables ());
  List.filter_map
    (fun id ->
      match Bv_harness.Experiments.find id with
      | Some f ->
        let t0 = Unix.gettimeofday () in
        f ppf;
        let seconds = Unix.gettimeofday () -. t0 in
        Format.fprintf ppf "(%s took %.1fs)@." id seconds;
        Some (id, seconds, Bv_harness.Experiments.drain_tables ())
      | None ->
        Format.fprintf ppf "unknown experiment %s@." id;
        None)
    wanted

(* ---------------------------------------------------------------- micro *)

open Bechamel
open Toolkit

let micro_tests () =
  let open Bv_isa in
  let open Bv_ir in
  let r = Reg.make in
  (* predictor lookup/update micro *)
  let pred_test name kind =
    let p = Bv_bpred.Kind.create kind in
    let i = ref 0 in
    Test.make ~name
      (Staged.stage (fun () ->
           incr i;
           let taken = !i land 3 <> 0 in
           let pc = 0x40 + (!i land 63) in
           let _, meta = p.Bv_bpred.Predictor.predict ~pc ~outcome:taken in
           p.Bv_bpred.Predictor.update meta ~pc ~taken))
  in
  (* cache access micro *)
  let cache_test =
    let h = Bv_cache.Hierarchy.create () in
    let i = ref 0 in
    Test.make ~name:"cache.data_access"
      (Staged.stage (fun () ->
           i := (!i + 4096) land 0xFFFFF;
           ignore (Bv_cache.Hierarchy.data_access h ~addr:!i ~write:false)))
  in
  (* whole-pipeline micro: simulate a small benchmark end to end *)
  let tiny =
    Bv_workloads.Spec.make ~name:"micro" ~suite:Bv_workloads.Spec.Int_2006
      ~seed:5
      ~branch_classes:
        [ Bv_workloads.Spec.cls ~count:4 ~taken_rate:0.6 ~predictability:0.95
            ()
        ]
      ~inner_n:32 ~reps:2 ()
  in
  let tiny_image =
    Layout.program (Bv_workloads.Gen.generate ~input:1 tiny)
  in
  let machine_test =
    Test.make ~name:"machine.run (tiny benchmark)"
      (Staged.stage (fun () ->
           ignore
             (Bv_pipeline.Machine.run ~config:Bv_pipeline.Config.four_wide
                tiny_image)))
  in
  let interp_test =
    Test.make ~name:"interp.run (tiny benchmark)"
      (Staged.stage (fun () -> ignore (Bv_exec.Interp.run tiny_image)))
  in
  (* transformation micro *)
  let transform_test =
    let prog = Bv_workloads.Gen.generate ~input:0 tiny in
    let image = Layout.program (Program.copy prog) in
    let predictor = Bv_bpred.Kind.create Bv_bpred.Kind.Tournament in
    let profile = Bv_profile.Profile.collect ~predictor image in
    let sel = Vanguard.Select.select ~profile prog in
    Test.make ~name:"transform.apply"
      (Staged.stage (fun () ->
           ignore
             (Vanguard.Transform.apply
                ~candidates:sel.Vanguard.Select.candidates prog)))
  in
  let sched_test =
    let body =
      List.concat
        (List.init 8 (fun k ->
             [ Instr.Load { dst = r (10 + (k mod 6)); base = r 2;
                            offset = 8 * k; speculative = false };
               Instr.Alu { op = Instr.Add; dst = r 6; src1 = r 6;
                           src2 = Instr.Reg (r (10 + (k mod 6))) }
             ]))
    in
    Test.make ~name:"sched.schedule_body (16 instrs)"
      (Staged.stage (fun () ->
           ignore (Bv_sched.Sched.schedule_body ~term:Term.Halt body)))
  in
  let encode_test =
    let resolve _ = 0 in
    let i =
      Instr.Alu { op = Instr.Add; dst = r 1; src1 = r 2; src2 = Instr.Imm 5 }
    in
    Test.make ~name:"encoding.encode+decode"
      (Staged.stage (fun () ->
           ignore
             (Encoding.decode
                ~label_of:(fun _ -> "x")
                (Encoding.encode ~resolve i))))
  in
  let liveness_test =
    let proc =
      Program.find_proc (Bv_workloads.Gen.generate ~input:0 tiny) "micro.w0"
    in
    Test.make ~name:"liveness.compute (worker proc)"
      (Staged.stage (fun () -> ignore (Liveness.compute proc)))
  in
  let recover_test =
    Test.make ~name:"recover.image (tiny benchmark)"
      (Staged.stage (fun () -> ignore (Recover.image tiny_image)))
  in
  Test.make_grouped ~name:"vanguard-micro"
    [ pred_test "bpred.tournament" Bv_bpred.Kind.Tournament;
      pred_test "bpred.perceptron" Bv_bpred.Kind.Perceptron;
      pred_test "bpred.tage" Bv_bpred.Kind.Tage;
      pred_test "bpred.isl-tage" Bv_bpred.Kind.Isl_tage;
      cache_test;
      sched_test;
      encode_test;
      liveness_test;
      recover_test;
      transform_test;
      interp_test;
      machine_test
    ]

let run_micro () =
  print_endline "\n=== Bechamel micro-benchmarks ===";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let estimates = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] ->
        Printf.printf "  %-34s %12.1f ns/run\n" name est;
        estimates := (name, est) :: !estimates
      | _ -> Printf.printf "  %-34s (no estimate)\n" name)
    results;
  List.sort (fun (a, _) (b, _) -> compare a b) !estimates

(* ------------------------------------------------------------- artifact *)

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let write_artifact ~started_at ~experiments ~micro ~total_seconds =
  let open Bv_obs.Json in
  let path =
    match Sys.getenv_opt "BV_BENCH_JSON" with
    | Some p -> if p = "" then None else Some p
    | None ->
      let tm = Unix.gmtime started_at in
      Some
        (Filename.concat "results"
           (Printf.sprintf "bench_%04d%02d%02dT%02d%02d%02dZ.json"
              (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
              tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec))
  in
  match path with
  | None -> ()
  | Some path ->
    let doc =
      Obj
        [ ("schema_version", Int 1);
          ("generated_at", String (iso8601 started_at));
          ("scale", float (Bv_harness.Runner.scale ()));
          ("total_seconds", float total_seconds);
          ( "experiments",
            List
              (List.map
                 (fun (id, seconds, tables) ->
                   Obj
                     [ ("id", String id);
                       ("seconds", float seconds);
                       ( "tables",
                         List
                           (List.map Bv_harness.Experiments.table_to_json
                              tables) )
                     ])
                 experiments) );
          ( "micro_ns_per_run",
            Obj (List.map (fun (name, est) -> (name, float est)) micro) )
        ]
    in
    (try
       if Filename.dirname path = "results" && not (Sys.file_exists "results")
       then Sys.mkdir "results" 0o755;
       Out_channel.with_open_text path (fun oc ->
           Bv_obs.Json.to_channel ~indent:true oc doc);
       Printf.printf "trajectory artifact: %s\n" path
     with Sys_error e -> Printf.eprintf "artifact write failed: %s\n" e)

let () =
  let t0 = Unix.gettimeofday () in
  let experiments = run_experiments () in
  let micro =
    match Sys.getenv_opt "BV_MICRO" with
    | Some "0" -> []
    | _ -> run_micro ()
  in
  let total_seconds = Unix.gettimeofday () -. t0 in
  write_artifact ~started_at:t0 ~experiments ~micro ~total_seconds;
  Printf.printf "\ntotal wall time: %.1fs\n" total_seconds
