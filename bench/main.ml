(* The benchmark harness: regenerates every table and figure of the paper
   (printed as text tables/series), then runs a Bechamel micro-benchmark
   suite over the simulator's core primitives. Per-experiment wall times
   and the emitted tables land in results/bench_<timestamp>.json — the
   perf-trajectory artifact successive PRs compare against — and in
   BENCH_latest.json at the repo root (stable name, always the newest
   run).

   Environment knobs:
     BV_SCALE=<float>    scale workload repetitions (default 1.0)
     BV_EXPERIMENTS=ids  comma-separated subset (default: all)
     BV_JOBS=<n>         worker processes for row-level parallelism
                         (default 1; output is identical at any n)
     BV_CACHE=<dir>      compile-artifact cache (default .bv-cache;
                         'none' disables)
     BV_MICRO=0          skip the Bechamel micro-suite
     BV_BENCH_JSON=path  trajectory artifact destination (default
                         results/bench_<timestamp>.json; empty disables)
     BV_THROUGHPUT_BUDGET=<n>
                         cap retired instructions per throughput run
                         (CI smoke; default unlimited)

   Flags:
     --warmup N          untimed runs before each timed throughput run
                         (default 1)
     --throughput-only   only the simulator-throughput suite (skips
                         experiments and the micro-suite) *)

let run_experiments () =
  let ppf = Format.std_formatter in
  let wanted =
    match Sys.getenv_opt "BV_EXPERIMENTS" with
    | Some ids ->
      (* BV_EXPERIMENTS= (empty) cleanly skips the experiment suite *)
      List.filter (fun id -> id <> "") (String.split_on_char ',' ids)
    | None -> List.map (fun (id, _, _) -> id) Bv_harness.Experiments.all
  in
  Format.fprintf ppf
    "Branch Vanguard reproduction — every table and figure (scale %.2f, \
     %d job%s)@."
    (Bv_harness.Runner.scale ())
    (Bv_harness.Sim.jobs (Bv_harness.Sim.the ()))
    (if Bv_harness.Sim.jobs (Bv_harness.Sim.the ()) = 1 then "" else "s");
  ignore (Bv_harness.Experiments.drain_tables ());
  List.filter_map
    (fun id ->
      match Bv_harness.Experiments.find id with
      | Some f ->
        let t0 = Unix.gettimeofday () in
        f ppf;
        let seconds = Unix.gettimeofday () -. t0 in
        Format.fprintf ppf "(%s took %.1fs)@." id seconds;
        Some (id, seconds, Bv_harness.Experiments.drain_tables ())
      | None ->
        Format.fprintf ppf "unknown experiment %s@." id;
        None)
    wanted

(* ----------------------------------------------------------- throughput *)

(* End-to-end simulator throughput: fixed workloads timed straight through
   Machine.run, reported as host seconds, simulated cycles/second and
   simulated MIPS. These rows in the bench JSON are the regression
   baseline successive performance PRs quote and compare against. *)

let throughput_cases () =
  let open Bv_workloads in
  let baseline_of program =
    let p = Bv_ir.Program.copy program in
    Bv_sched.Sched.schedule_program p;
    p
  in
  let scaled r =
    max 1 (int_of_float (Float.round (float_of_int r *. Bv_harness.Runner.scale ())))
  in
  let spec_int =
    Spec.make ~name:"tp-int" ~suite:Spec.Int_2006 ~seed:7001
      ~branch_classes:
        [ Spec.cls ~count:6 ~taken_rate:0.60 ~predictability:0.95 ();
          Spec.cls ~iid:true ~count:4 ~taken_rate:0.92 ~predictability:0.92 ();
          Spec.cls ~iid:true ~count:2 ~taken_rate:0.50 ~predictability:0.50 ()
        ]
      ~loads_per_block:3.0 ~cond_depth:4 ~inner_n:128 ~reps:(scaled 60) ()
  in
  let spec_mem =
    Spec.make ~name:"tp-mem" ~suite:Spec.Fp_2006 ~seed:7002
      ~branch_classes:
        [ Spec.cls ~count:4 ~taken_rate:0.58 ~predictability:0.96 () ]
      ~loads_per_block:4.0 ~footprint_kb:128 ~chase_frac:0.2 ~cond_chase:true
      ~inner_n:64 ~reps:(scaled 100) ()
  in
  let plain spec =
    Bv_ir.Layout.program (baseline_of (Gen.generate ~input:1 spec))
  in
  let decomposed spec =
    let program = Gen.generate ~input:1 spec in
    let train = Gen.generate ~input:0 spec in
    let profile =
      Bv_profile.Profile.collect
        ~predictor:(Bv_bpred.Kind.create Bv_bpred.Kind.Tournament)
        (Bv_ir.Layout.program (baseline_of train))
    in
    let selection = Vanguard.Select.select ~profile train in
    let result =
      Vanguard.Transform.apply ~exit_live:Gen.live_at_exit
        ~candidates:selection.Vanguard.Select.candidates program
    in
    Bv_ir.Layout.program result.Vanguard.Transform.program
  in
  let runahead8 =
    { (Bv_pipeline.Config.make ~predictor:Bv_bpred.Kind.Tage ~width:8 ()) with
      Bv_pipeline.Config.runahead = true
    }
  in
  [ ("int_w4", Bv_pipeline.Config.four_wide, plain spec_int);
    ("int_decomposed_w4", Bv_pipeline.Config.four_wide, decomposed spec_int);
    ("mem_runahead_w8", runahead8, plain spec_mem);
    ("mem_decomposed_runahead_w8", runahead8, decomposed spec_mem)
  ]

type throughput_row =
  { tp_workload : string;
    tp_mode : string;  (* "compiled" | "interpreted" | "sampled" *)
    tp_host_seconds : float;
    tp_sim_cycles : int;
    tp_sim_instructions : int;
    tp_cycles_per_sec : float;
    tp_mips : float
  }

(* Every workload is timed in all three execution modes: block-compiled
   dispatch (the default fast path), interpreted dispatch (the
   byte-identical slow path) and SMARTS interval sampling (estimated
   cycles — fastest, approximate timing). The mode rides in the row so
   the trend analysis never compares across modes. *)
let run_throughput ~warmup =
  let budget =
    match Sys.getenv_opt "BV_THROUGHPUT_BUDGET" with
    | Some s -> (try int_of_string s with Failure _ -> max_int)
    | None -> max_int
  in
  Printf.printf "\n=== Simulator throughput (warmup %d%s) ===\n" warmup
    (if budget = max_int then ""
     else Printf.sprintf ", budget %d instrs" budget);
  Printf.printf "  %-28s %-12s %9s %13s %14s %9s\n" "workload" "mode"
    "host s" "sim cycles" "sim cycles/s" "sim MIPS";
  List.concat_map
    (fun (name, config, image) ->
      let timed mode run extract =
        for _ = 1 to warmup do
          ignore (run ())
        done;
        let t0 = Unix.gettimeofday () in
        let res = run () in
        let host = Unix.gettimeofday () -. t0 in
        let cycles, retired = extract res in
        let per s = if host > 0. then float_of_int s /. host else 0. in
        let row =
          { tp_workload = name;
            tp_mode = mode;
            tp_host_seconds = host;
            tp_sim_cycles = cycles;
            tp_sim_instructions = retired;
            tp_cycles_per_sec = per cycles;
            tp_mips = per retired /. 1e6
          }
        in
        Printf.printf "  %-28s %-12s %9.3f %13d %14.0f %9.2f\n%!" name mode
          host cycles row.tp_cycles_per_sec row.tp_mips;
        row
      in
      let detailed (res : Bv_pipeline.Machine.result) =
        ( res.Bv_pipeline.Machine.stats.Bv_pipeline.Stats.cycles,
          Bv_pipeline.Stats.retired res.Bv_pipeline.Machine.stats )
      in
      (* the sampled row reports the extrapolated cycle estimate; the
         retired-instruction budget does not apply (sampling already
         bounds the detailed work) *)
      let sampled (s : Bv_pipeline.Machine.sampled) =
        ( int_of_float
            s.Bv_pipeline.Machine.sam_estimate.Bv_pipeline.Smarts.est_cycles,
          s.Bv_pipeline.Machine.sam_estimate
            .Bv_pipeline.Smarts.est_total_instrs )
      in
      let compiled_row =
        timed "compiled"
          (fun () ->
            Bv_pipeline.Machine.run ~compile:true ~max_retired:budget ~config
              image)
          detailed
      in
      let interpreted_row =
        timed "interpreted"
          (fun () ->
            Bv_pipeline.Machine.run ~compile:false ~max_retired:budget ~config
              image)
          detailed
      in
      let sampled_row =
        timed "sampled"
          (fun () -> Bv_pipeline.Machine.run_sampled ~config image)
          sampled
      in
      [ compiled_row; interpreted_row; sampled_row ])
    (throughput_cases ())

(* ---------------------------------------------------------------- micro *)

open Bechamel
open Toolkit

let micro_tests () =
  let open Bv_isa in
  let open Bv_ir in
  let r = Reg.make in
  (* predictor lookup/update micro *)
  let pred_test name kind =
    let p = Bv_bpred.Kind.create kind in
    let i = ref 0 in
    Test.make ~name
      (Staged.stage (fun () ->
           incr i;
           let taken = !i land 3 <> 0 in
           let pc = 0x40 + (!i land 63) in
           let _, meta = p.Bv_bpred.Predictor.predict ~pc ~outcome:taken in
           p.Bv_bpred.Predictor.update meta ~pc ~taken))
  in
  (* cache access micro *)
  let cache_test =
    let h = Bv_cache.Hierarchy.create () in
    let i = ref 0 in
    Test.make ~name:"cache.data_access"
      (Staged.stage (fun () ->
           i := (!i + 4096) land 0xFFFFF;
           ignore (Bv_cache.Hierarchy.data_access h ~addr:!i ~write:false)))
  in
  (* whole-pipeline micro: simulate a small benchmark end to end *)
  let tiny =
    Bv_workloads.Spec.make ~name:"micro" ~suite:Bv_workloads.Spec.Int_2006
      ~seed:5
      ~branch_classes:
        [ Bv_workloads.Spec.cls ~count:4 ~taken_rate:0.6 ~predictability:0.95
            ()
        ]
      ~inner_n:32 ~reps:2 ()
  in
  let tiny_image =
    Layout.program (Bv_workloads.Gen.generate ~input:1 tiny)
  in
  let machine_test =
    Test.make ~name:"machine.run (tiny benchmark)"
      (Staged.stage (fun () ->
           ignore
             (Bv_pipeline.Machine.run ~config:Bv_pipeline.Config.four_wide
                tiny_image)))
  in
  (* the block-closure dispatch win in isolation: the same tiny run with
     compiled dispatch forced on vs off *)
  let machine_mode_test compile =
    Test.make
      ~name:
        (Printf.sprintf "machine.run-%s (tiny benchmark)"
           (if compile then "compiled" else "interpreted"))
      (Staged.stage (fun () ->
           ignore
             (Bv_pipeline.Machine.run ~compile
                ~config:Bv_pipeline.Config.four_wide tiny_image)))
  in
  (* fetch/pending ring and release-calendar micros: the structures every
     simulated cycle turns over *)
  let ring_test =
    let open Bv_pipeline.Machine_state in
    let ring = Ring.create 64 in
    let i = ref 0 in
    Test.make ~name:"machine.ring push/pop x4"
      (Staged.stage (fun () ->
           incr i;
           Ring.push ring !i;
           Ring.push ring (!i + 1);
           Ring.push ring (!i + 2);
           Ring.push ring (!i + 3);
           ignore (Ring.pop ring);
           ignore (Ring.pop ring);
           ignore (Ring.pop ring);
           ignore (Ring.pop ring)))
  in
  let release_test =
    let open Bv_pipeline.Machine_state in
    let cal = Release.create ~horizon:512 in
    let now = ref 0 in
    Test.make ~name:"machine.release schedule/drain"
      (Staged.stage (fun () ->
           incr now;
           Release.schedule cal ~at:(!now + 40);
           Release.drain cal ~now:!now))
  in
  let interp_test =
    Test.make ~name:"interp.run (tiny benchmark)"
      (Staged.stage (fun () -> ignore (Bv_exec.Interp.run tiny_image)))
  in
  (* transformation micro *)
  let transform_test =
    let prog = Bv_workloads.Gen.generate ~input:0 tiny in
    let image = Layout.program (Program.copy prog) in
    let predictor = Bv_bpred.Kind.create Bv_bpred.Kind.Tournament in
    let profile = Bv_profile.Profile.collect ~predictor image in
    let sel = Vanguard.Select.select ~profile prog in
    Test.make ~name:"transform.apply"
      (Staged.stage (fun () ->
           ignore
             (Vanguard.Transform.apply
                ~candidates:sel.Vanguard.Select.candidates prog)))
  in
  let sched_test =
    let body =
      List.concat
        (List.init 8 (fun k ->
             [ Instr.Load { dst = r (10 + (k mod 6)); base = r 2;
                            offset = 8 * k; speculative = false };
               Instr.Alu { op = Instr.Add; dst = r 6; src1 = r 6;
                           src2 = Instr.Reg (r (10 + (k mod 6))) }
             ]))
    in
    Test.make ~name:"sched.schedule_body (16 instrs)"
      (Staged.stage (fun () ->
           ignore (Bv_sched.Sched.schedule_body ~term:Term.Halt body)))
  in
  let encode_test =
    let resolve _ = 0 in
    let i =
      Instr.Alu { op = Instr.Add; dst = r 1; src1 = r 2; src2 = Instr.Imm 5 }
    in
    Test.make ~name:"encoding.encode+decode"
      (Staged.stage (fun () ->
           ignore
             (Encoding.decode
                ~label_of:(fun _ -> "x")
                (Encoding.encode ~resolve i))))
  in
  let liveness_test =
    let proc =
      Program.find_proc (Bv_workloads.Gen.generate ~input:0 tiny) "micro.w0"
    in
    Test.make ~name:"liveness.compute (worker proc)"
      (Staged.stage (fun () -> ignore (Liveness.compute proc)))
  in
  let recover_test =
    Test.make ~name:"recover.image (tiny benchmark)"
      (Staged.stage (fun () -> ignore (Recover.image tiny_image)))
  in
  Test.make_grouped ~name:"vanguard-micro"
    [ pred_test "bpred.tournament" Bv_bpred.Kind.Tournament;
      pred_test "bpred.perceptron" Bv_bpred.Kind.Perceptron;
      pred_test "bpred.tage" Bv_bpred.Kind.Tage;
      pred_test "bpred.isl-tage" Bv_bpred.Kind.Isl_tage;
      cache_test;
      ring_test;
      release_test;
      sched_test;
      encode_test;
      liveness_test;
      recover_test;
      transform_test;
      interp_test;
      machine_test;
      machine_mode_test true;
      machine_mode_test false
    ]

let run_micro () =
  print_endline "\n=== Bechamel micro-benchmarks ===";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let estimates = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] ->
        Printf.printf "  %-34s %12.1f ns/run\n" name est;
        estimates := (name, est) :: !estimates
      | _ -> Printf.printf "  %-34s (no estimate)\n" name)
    results;
  List.sort (fun (a, _) (b, _) -> compare a b) !estimates

(* ------------------------------------------------------------- artifact *)

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let write_artifact ~started_at ~experiments ~throughput ~warmup ~micro
    ~total_seconds =
  let open Bv_obs.Json in
  let path =
    match Sys.getenv_opt "BV_BENCH_JSON" with
    | Some p -> if p = "" then None else Some p
    | None ->
      let tm = Unix.gmtime started_at in
      Some
        (Filename.concat "results"
           (Printf.sprintf "bench_%04d%02d%02dT%02d%02d%02dZ.json"
              (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
              tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec))
  in
  match path with
  | None -> ()
  | Some path ->
    let doc =
      Obj
        [ ("schema_version", Int Bv_obs.Json.schema_version);
          ("generated_at", String (iso8601 started_at));
          ("scale", float (Bv_harness.Runner.scale ()));
          ("total_seconds", float total_seconds);
          ( "experiments",
            List
              (List.map
                 (fun (id, seconds, tables) ->
                   Obj
                     [ ("id", String id);
                       ("seconds", float seconds);
                       ( "tables",
                         List
                           (List.map Bv_harness.Experiments.table_to_json
                              tables) )
                     ])
                 experiments) );
          ("throughput_warmup", Int warmup);
          ( "throughput",
            List
              (List.map
                 (fun r ->
                   Obj
                     [ ("workload", String r.tp_workload);
                       ("mode", String r.tp_mode);
                       ("host_seconds", float r.tp_host_seconds);
                       ("sim_cycles", Int r.tp_sim_cycles);
                       ("sim_instructions", Int r.tp_sim_instructions);
                       ("sim_cycles_per_sec", float r.tp_cycles_per_sec);
                       ("sim_mips", float r.tp_mips)
                     ])
                 throughput) );
          ( "micro_ns_per_run",
            Obj (List.map (fun (name, est) -> (name, float est)) micro) );
          ( "dag",
            Bv_harness.Sim.counters_json (Bv_harness.Sim.the ()) )
        ]
    in
    (try
       if Filename.dirname path = "results" && not (Sys.file_exists "results")
       then Sys.mkdir "results" 0o755;
       Out_channel.with_open_text path (fun oc ->
           Bv_obs.Json.to_channel ~indent:true oc doc);
       Printf.printf "trajectory artifact: %s\n" path;
       (* also a stable name, so diffing tools and CI steps can find the
          most recent run without globbing timestamps *)
       Out_channel.with_open_text "BENCH_latest.json" (fun oc ->
           Bv_obs.Json.to_channel ~indent:true oc doc)
     with Sys_error e -> Printf.eprintf "artifact write failed: %s\n" e)

(* ---------------------------------------------------------------- trend *)

(* `bench trend`: fold the accumulated results/bench_*.json trajectory
   into a regression verdict. Prints one `bench-trend ok:/warning:/error:`
   line per workload (the CI problem matcher keys on that prefix) and
   exits non-zero on a gating regression. *)
let run_trend argv =
  let open Bv_harness in
  let dir = ref "results" in
  let latest = ref "" in
  let threshold = ref 10.0 in
  let warn_only = ref false in
  let json = ref "" in
  let usage =
    "bench trend [--dir DIR] [--latest FILE] [--threshold PCT] [--warn-only] \
     [--json FILE]"
  in
  (try
     Arg.parse_argv ~current:(ref 0) argv
       [ ("--dir", Arg.Set_string dir, "DIR trajectory directory (default \
                                        results)");
         ( "--latest",
           Arg.Set_string latest,
           "FILE run under test (default: newest bench_*.json in DIR)" );
         ( "--threshold",
           Arg.Set_float threshold,
           "PCT regression threshold in percent (default 10)" );
         ( "--warn-only",
           Arg.Set warn_only,
           " report regressions without failing the exit code" );
         ("--json", Arg.Set_string json, "FILE write the verdicts as JSON")
       ]
       (fun a -> raise (Arg.Bad ("unknown argument " ^ a)))
       usage
   with
  | Arg.Bad msg -> prerr_string msg; exit 2
  | Arg.Help msg -> print_string msg; exit 0);
  let all = Trend.history ~dir:!dir in
  let latest_run, history =
    if !latest <> "" then begin
      match Trend.load_run !latest with
      | Error e -> Printf.eprintf "bench-trend error: %s\n" e; exit 2
      | Ok run ->
        (* keep the run under test out of its own reference history *)
        (Some run, List.filter (fun r -> r.Trend.file <> run.Trend.file) all)
    end
    else
      match List.rev all with
      | newest :: older -> (Some newest, List.rev older)
      | [] -> (None, [])
  in
  match latest_run with
  | None ->
    Printf.printf "bench-trend: no bench_*.json artifacts under %s\n" !dir;
    exit 0
  | Some run ->
    let summary = Trend.analyze ~threshold_pct:!threshold ~history run in
    Printf.printf "bench trend: %s vs %d prior run%s (threshold %.0f%%)\n"
      run.Trend.file summary.Trend.s_runs
      (if summary.Trend.s_runs = 1 then "" else "s")
      summary.Trend.s_threshold_pct;
    if summary.Trend.s_runs = 0 then
      Printf.printf
        "bench-trend note: no history under %s — this run seeds the \
         trajectory; verdicts below are baselines, not comparisons\n"
        !dir;
    List.iter
      (fun v ->
        if v.Trend.v_history = 0 then
          Printf.printf "bench-trend seed: %s %.0f cycles/s (no history)\n"
            v.Trend.v_workload v.Trend.v_latest
        else
          let line =
            Printf.sprintf
              "%s %.0f cycles/s vs median %.0f (%+.1f%%, history %d)"
              v.Trend.v_workload v.Trend.v_latest v.Trend.v_median
              v.Trend.v_delta_pct v.Trend.v_history
          in
          if not v.Trend.v_regressed then
            Printf.printf "bench-trend ok: %s\n" line
          else if summary.Trend.s_gating && not !warn_only then
            Printf.printf "bench-trend error: %s\n" line
          else Printf.printf "bench-trend warning: %s\n" line)
      summary.Trend.s_verdicts;
    if !json <> "" then
      Out_channel.with_open_text !json (fun oc ->
          Bv_obs.Json.to_channel ~indent:true oc
            (Trend.to_json ~latest:run summary));
    let regressed = Trend.regressions summary <> [] in
    if regressed && not summary.Trend.s_gating then
      Printf.printf
        "bench-trend warning: regression seen but only %d prior run%s — \
         warn-only until the trajectory has 2\n"
        summary.Trend.s_runs
        (if summary.Trend.s_runs = 1 then "" else "s");
    if regressed && summary.Trend.s_gating && not !warn_only then exit 1
    else exit 0

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "trend" then
    run_trend
      (Array.append [| Sys.argv.(0) ^ " trend" |]
         (Array.sub Sys.argv 2 (Array.length Sys.argv - 2)));
  let warmup = ref 1 in
  let throughput_only = ref false in
  Arg.parse
    [ ( "--warmup",
        Arg.Set_int warmup,
        "N untimed runs before each timed throughput run (default 1)" );
      ( "--throughput-only",
        Arg.Set throughput_only,
        " only the simulator-throughput suite (skips experiments and the \
         micro-suite)" )
    ]
    (fun a -> raise (Arg.Bad ("unknown argument " ^ a)))
    "bench [--warmup N] [--throughput-only] | bench trend [--help]";
  let t0 = Unix.gettimeofday () in
  let experiments = if !throughput_only then [] else run_experiments () in
  let throughput = run_throughput ~warmup:!warmup in
  let micro =
    if !throughput_only then []
    else
      match Sys.getenv_opt "BV_MICRO" with
      | Some "0" -> []
      | _ -> run_micro ()
  in
  let total_seconds = Unix.gettimeofday () -. t0 in
  write_artifact ~started_at:t0 ~experiments ~throughput ~warmup:!warmup ~micro
    ~total_seconds;
  Printf.printf "\ntotal wall time: %.1fs\n" total_seconds
