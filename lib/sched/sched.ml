open Bv_isa
open Bv_ir

let default_latency i =
  match i with
  | Instr.Load _ -> 4
  | Instr.Fpu _ -> 4
  | Instr.Alu { op = Instr.Mul; _ } -> 3
  | _ -> 1

let is_mem = function Instr.Load _ | Instr.Store _ -> true | _ -> false
let is_store = function Instr.Store _ -> true | _ -> false

(* Dependence DAG as predecessor lists: preds.(i) holds (j, delay) meaning
   instruction i may start [delay] cycles after j starts.

   Memory ordering: with no alias information stores are barriers (ordered
   against every other memory op). Given [may_alias], only pairs it cannot
   disprove are ordered — provably-disjoint loads hoist past stores. *)
let build_preds ?may_alias ~latency instrs =
  let n = Array.length instrs in
  let preds = Array.make n [] in
  let add_edge ~from ~to_ ~delay =
    preds.(to_) <- (from, delay) :: preds.(to_)
  in
  let last_def = Hashtbl.create 16 in
  (* reg index -> instr *)
  let last_uses = Hashtbl.create 16 in
  (* reg index -> instr list since last def *)
  let last_store = ref None in
  let loads_since_store = ref [] in
  for i = 0 to n - 1 do
    let ins = instrs.(i) in
    (* RAW *)
    List.iter
      (fun r ->
        match Hashtbl.find_opt last_def (Reg.index r) with
        | Some j -> add_edge ~from:j ~to_:i ~delay:(latency instrs.(j))
        | None -> ())
      (Instr.uses ins);
    (* WAR and WAW: same-cycle start is fine in a machine with register
       read-before-write, but keep a 0-delay order edge for determinism. *)
    List.iter
      (fun r ->
        let ri = Reg.index r in
        (match Hashtbl.find_opt last_uses ri with
        | Some users -> List.iter (fun j -> add_edge ~from:j ~to_:i ~delay:0) users
        | None -> ());
        (match Hashtbl.find_opt last_def ri with
        | Some j -> add_edge ~from:j ~to_:i ~delay:1
        | None -> ()))
      (Instr.defs ins);
    (* Memory ordering. *)
    (match may_alias with
    | None ->
      (* Stores are barriers. *)
      if is_mem ins then begin
        (match !last_store with
        | Some j -> add_edge ~from:j ~to_:i ~delay:1
        | None -> ());
        if is_store ins then begin
          List.iter (fun j -> add_edge ~from:j ~to_:i ~delay:1)
            !loads_since_store;
          last_store := Some i;
          loads_since_store := []
        end
        else loads_since_store := i :: !loads_since_store
      end
    | Some alias ->
      (* Order every prior memory op that may alias, when at least one of
         the pair writes. *)
      if is_mem ins then
        for j = 0 to i - 1 do
          if
            is_mem instrs.(j)
            && (is_store ins || is_store instrs.(j))
            && alias instrs.(j) ins
          then add_edge ~from:j ~to_:i ~delay:1
        done);
    (* Bookkeeping after edges are drawn. *)
    List.iter
      (fun r ->
        let ri = Reg.index r in
        let users = Option.value (Hashtbl.find_opt last_uses ri) ~default:[] in
        Hashtbl.replace last_uses ri (i :: users))
      (Instr.uses ins);
    List.iter
      (fun r ->
        let ri = Reg.index r in
        Hashtbl.replace last_def ri i;
        Hashtbl.replace last_uses ri [])
      (Instr.defs ins)
  done;
  preds

(* Critical-path height: cycles from this instruction's start to the end of
   the block. Terminator operands count as consumed at the end. *)
let heights ~latency ~term instrs preds =
  let n = Array.length instrs in
  let succs = Array.make n [] in
  Array.iteri
    (fun i ps -> List.iter (fun (j, d) -> succs.(j) <- (i, d) :: succs.(j)) ps)
    preds;
  let term_uses =
    List.map Reg.index
      (match term with
      | Term.Branch { src; _ } | Term.Resolve { src; _ } -> [ src ]
      | Term.Jump _ | Term.Predict _ | Term.Call _ | Term.Ret | Term.Halt -> [])
  in
  let h = Array.make n 0 in
  for i = n - 1 downto 0 do
    let lat = latency instrs.(i) in
    let base =
      (* Any def may be live out of the block, so a producer's full latency
         counts towards the block end; terminator sources certainly do. *)
      if
        Instr.defs instrs.(i) <> []
        || List.exists
             (fun r -> List.mem (Reg.index r) term_uses)
             (Instr.uses instrs.(i))
      then lat
      else 1
    in
    let over_succs =
      List.fold_left (fun acc (j, d) -> max acc (d + h.(j))) 0 succs.(i)
    in
    h.(i) <- max base over_succs
  done;
  h

let schedule_body ?may_alias ?(latency = default_latency) ?(width = 4) ~term
    body =
  let instrs = Array.of_list body in
  let n = Array.length instrs in
  if n <= 1 then body
  else begin
    let preds = build_preds ?may_alias ~latency instrs in
    let h = heights ~latency ~term instrs preds in
    let start_time = Array.make n (-1) in
    let scheduled = Array.make n false in
    let order = ref [] in
    let placed = ref 0 in
    let cycle = ref 0 in
    while !placed < n do
      (* Ready = all predecessors started early enough. *)
      let ready =
        List.filter
          (fun i ->
            (not scheduled.(i))
            && List.for_all
                 (fun (j, d) ->
                   scheduled.(j) && start_time.(j) + d <= !cycle)
                 preds.(i))
          (List.init n Fun.id)
      in
      let ready =
        List.sort
          (fun a b ->
            match Int.compare h.(b) h.(a) with
            | 0 -> Int.compare a b
            | c -> c)
          ready
      in
      let rec take k = function
        | i :: rest when k > 0 ->
          scheduled.(i) <- true;
          start_time.(i) <- !cycle;
          order := i :: !order;
          incr placed;
          take (k - 1) rest
        | _ -> ()
      in
      take width ready;
      incr cycle
    done;
    List.rev_map (fun i -> instrs.(i)) !order
  end

let schedule_block ?may_alias ?latency ?width block =
  block.Block.body <-
    schedule_body ?may_alias ?latency ?width ~term:block.Block.term
      block.Block.body

let schedule_proc ?may_alias ?latency ?width proc =
  List.iter (schedule_block ?may_alias ?latency ?width) proc.Proc.blocks

let schedule_program ?alias ?latency ?width program =
  List.iter
    (fun proc ->
      let may_alias = Option.map (fun f -> f proc) alias in
      schedule_proc ?may_alias ?latency ?width proc)
    program.Program.procs

let critical_path_cycles ?may_alias ?(latency = default_latency) body =
  let instrs = Array.of_list body in
  let n = Array.length instrs in
  if n = 0 then 0
  else begin
    let preds = build_preds ?may_alias ~latency instrs in
    let finish = Array.make n 0 in
    for i = 0 to n - 1 do
      let start =
        List.fold_left
          (fun acc (j, d) -> max acc (finish.(j) - latency instrs.(j) + d))
          0 preds.(i)
      in
      finish.(i) <- start + latency instrs.(i)
    done;
    Array.fold_left max 0 finish
  end
