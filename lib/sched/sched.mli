(** Latency-aware list scheduling of basic-block bodies for an in-order
    target.

    The scheduler builds a register/memory dependence DAG over the body,
    assigns each instruction a critical-path height (distance in cycles to
    the end of the block, counting the terminator's operands as consumed at
    the end), then issues greedily in time order: at each simulated cycle it
    picks, among instructions whose predecessors have completed, the ones
    with the greatest height. For an in-order machine this pushes loads as
    early as their dependences allow and sinks their consumers (e.g. the
    compare feeding a resolve) towards the end — exactly the schedule shape
    the paper's transformation exists to enable.

    Memory ordering is conservative by default: stores are ordered against
    all other memory operations; load/load pairs are free to reorder. When
    a [may_alias] oracle is supplied (e.g. from {!Bv_analysis.Alias}), only
    memory pairs it cannot disprove are ordered, so provably-disjoint
    loads hoist past stores. *)

open Bv_isa
open Bv_ir

val default_latency : Instr.t -> int
(** L1-hit assumptions: loads 4, FPU ops 4, multiplies 3, everything else
    1 cycle. *)

val schedule_body :
  ?may_alias:(Instr.t -> Instr.t -> bool) ->
  ?latency:(Instr.t -> int) ->
  ?width:int ->
  term:Term.t ->
  Instr.t list ->
  Instr.t list
(** Reorder a block body. [width] (default 4) bounds how many instructions
    the greedy pass places per simulated cycle. The result is a permutation
    of the input that respects all dependences. [may_alias] relaxes the
    store-barrier rule: a memory pair is left unordered when it returns
    [false]; it must be conservative (queried on the occurrences of this
    body, by physical identity). *)

val schedule_block :
  ?may_alias:(Instr.t -> Instr.t -> bool) ->
  ?latency:(Instr.t -> int) ->
  ?width:int ->
  Block.t ->
  unit
(** In-place convenience wrapper over [schedule_body]. *)

val schedule_proc :
  ?may_alias:(Instr.t -> Instr.t -> bool) ->
  ?latency:(Instr.t -> int) ->
  ?width:int ->
  Proc.t ->
  unit

val schedule_program :
  ?alias:(Proc.t -> Instr.t -> Instr.t -> bool) ->
  ?latency:(Instr.t -> int) ->
  ?width:int ->
  Program.t ->
  unit
(** [alias] builds a per-procedure [may_alias] oracle (typically
    [fun proc -> Bv_analysis.Alias.(may_alias (analyze proc))]). *)

val critical_path_cycles :
  ?may_alias:(Instr.t -> Instr.t -> bool) ->
  ?latency:(Instr.t -> int) ->
  Instr.t list ->
  int
(** Length in cycles of the longest dependence chain through the body
    (a lower bound on in-order execution time of the block). [may_alias]
    relaxes the store-barrier rule exactly as in {!schedule_body}, so a
    provably-disjoint store does not lengthen a load's chain — the
    cost-model advisor uses this to measure condition-slice dependence
    height without false memory edges. *)
