open Bv_isa
open Bv_ir

let r = Reg.make

(* Register conventions for generated programs: r1..r4 induction/scratch,
   r5 condition, r6..r19 data. Memory: 64 words, all addresses immediate-
   offset from r0 (always 0). *)

type gstate =
  { rng : Rng.t;
    mutable next_label : int;
    mutable next_site : int;
    mutable blocks : Block.t list;  (* reversed *)
    mutable procs : Proc.t list
  }

let fresh_label g prefix =
  g.next_label <- g.next_label + 1;
  Printf.sprintf "%s%d" prefix g.next_label

let fresh_site g =
  g.next_site <- g.next_site + 1;
  g.next_site

let rand_reg g lo hi = r (lo + Rng.below g.rng (hi - lo + 1))

let rand_instr g =
  match Rng.below g.rng 7 with
  | 0 -> Instr.Mov { dst = rand_reg g 6 19; src = Instr.Imm (Rng.below g.rng 100) }
  | 1 ->
    Instr.Alu
      { op = List.nth Instr.[ Add; Sub; Xor; And; Or ] (Rng.below g.rng 5);
        dst = rand_reg g 6 19;
        src1 = rand_reg g 6 19;
        src2 = Instr.Reg (rand_reg g 6 19)
      }
  | 2 ->
    Instr.Alu
      { op = Instr.Add; dst = rand_reg g 6 19; src1 = rand_reg g 6 19;
        src2 = Instr.Imm (Rng.below g.rng 50)
      }
  | 3 ->
    Instr.Load
      { dst = rand_reg g 6 19; base = r 0;
        offset = 8 * Rng.below g.rng 64; speculative = false
      }
  | 4 ->
    Instr.Store
      { src = rand_reg g 6 19; base = r 0; offset = 8 * Rng.below g.rng 64 }
  | 5 ->
    Instr.Cmov
      { on = Rng.below g.rng 2 = 0; cond = rand_reg g 6 19;
        dst = rand_reg g 6 19; src = Instr.Reg (rand_reg g 6 19)
      }
  | _ ->
    Instr.Fpu
      { op = Instr.Mul; dst = rand_reg g 6 19; src1 = rand_reg g 6 19;
        src2 = Instr.Imm (1 + Rng.below g.rng 5)
      }

let rand_body g n = List.init n (fun _ -> rand_instr g)

let emit g label body term =
  g.blocks <- Block.make ~label ~body ~term :: g.blocks

(* Emit a structured segment; control enters at [entry] and leaves at the
   returned label (which the caller will define next). *)
let rec emit_segment g ~depth ~entry =
  let exit_label = fresh_label g "x" in
  (* loops only nest twice: deeper nests multiply trip counts into machine
     runs that dominate the test budget *)
  (match Rng.below g.rng (if depth >= 2 then 2 else 4) with
  | 0 ->
    (* straight-line *)
    emit g entry (rand_body g (1 + Rng.below g.rng 8)) (Term.Jump exit_label)
  | 1 ->
    (* hammock: condition derived from data-register parity, or (half the
       time) from a freshly loaded word whose block then stores to a
       provably disjoint slot — that store lands after the condition
       slice's load, which only a may-alias oracle can disambiguate, so
       such sites flip from ineligible to eligible under summary-backed
       analysis *)
    let site = fresh_site g in
    let b = fresh_label g "b" and c = fresh_label g "c" in
    let src = rand_reg g 6 19 in
    let tail =
      if Rng.below g.rng 2 = 0 then
        [ Instr.Alu { op = Instr.And; dst = r 5; src1 = src; src2 = Instr.Imm 1 } ]
      else begin
        (* the store's data register must stay clear of the slice *)
        let sreg = r (6 + ((Reg.index src - 6 + 1 + Rng.below g.rng 13) mod 14)) in
        [ Instr.Load
            { dst = src; base = r 0; offset = 8 * Rng.below g.rng 32;
              speculative = false
            };
          Instr.Store { src = sreg; base = r 0; offset = 8 * (32 + Rng.below g.rng 32) };
          Instr.Alu { op = Instr.And; dst = r 5; src1 = src; src2 = Instr.Imm 1 }
        ]
      end
    in
    emit g entry
      (rand_body g (Rng.below g.rng 3) @ tail)
      (Term.Branch { on = true; src = r 5; taken = c; not_taken = b; id = site });
    emit g b (rand_body g (1 + Rng.below g.rng 6)) (Term.Jump exit_label);
    emit g c (rand_body g (1 + Rng.below g.rng 6)) (Term.Jump exit_label)
  | 2 ->
    (* bounded counted loop with a nested segment *)
    let site = fresh_site g in
    let head = fresh_label g "h" and latch = fresh_label g "l" in
    let trips = 2 + Rng.below g.rng 3 in
    (* counters are assigned by nesting depth: an inner loop must never
       reset an enclosing loop's counter *)
    let counter = r (2 + min depth 2) in
    emit g entry
      [ Instr.Mov { dst = counter; src = Instr.Imm 0 } ]
      (Term.Jump head);
    emit_segment_to g ~depth:(depth + 1) ~entry:head ~next:latch;
    emit g latch
      [ Instr.Alu { op = Instr.Add; dst = counter; src1 = counter; src2 = Instr.Imm 1 };
        Instr.Cmp { op = Instr.Lt; dst = r 5; src1 = counter; src2 = Instr.Imm trips }
      ]
      (Term.Branch
         { on = true; src = r 5; taken = head; not_taken = exit_label;
           id = site });
    ()
  | _ ->
    (* call a fresh leaf procedure *)
    let pname = fresh_label g "leaf" in
    let pentry = fresh_label g "pe" in
    g.procs <-
      Proc.make ~name:pname
        [ Block.make ~label:pentry
            ~body:(rand_body g (1 + Rng.below g.rng 6))
            ~term:Term.Ret
        ]
      :: g.procs;
    emit g entry [] (Term.Call { target = pname; return_to = exit_label }));
  exit_label

and emit_segment_to g ~depth ~entry ~next =
  (* a segment that must end by jumping to [next] *)
  let out = emit_segment g ~depth ~entry in
  emit g out [] (Term.Jump next)

let generate ~seed =
  let g =
    { rng = Rng.create ~seed;
      next_label = 0;
      next_site = 0;
      blocks = [];
      procs = []
    }
  in
  let n_segments = 2 + Rng.below g.rng 3 in
  let entry = "entry" in
  (* the entry must come first in layout order, which emitting it first
     guarantees *)
  let rec chain entry k =
    if k = 0 then emit g entry [] Term.Halt
    else begin
      let next = emit_segment g ~depth:0 ~entry in
      chain next (k - 1)
    end
  in
  chain entry n_segments;
  let main = Proc.make ~name:"m" ~entry (List.rev g.blocks) in
  Program.make ~mem_words:64 ~main:"m" (main :: g.procs)
