(** Seeded random structured programs for whole-pipeline fuzzing.

    Programs are built from straight-line blocks, hammocks, bounded
    counted loops (nesting ≤ 2) and leaf calls, over a fixed register
    convention — r1..r4 loop counters, r5 the branch condition,
    r6..r19 data — and 64 memory words addressed as immediate offsets
    from r0. Every generated program validates, halts, and contains
    hammock sites eligible for the decomposed-branch transformation.

    Shared between the property-test suite ([test/test_fuzz.ml]) and
    `vanguard_cli prove --fuzz`, so the corpus the CI proves is exactly
    the corpus the digest-equivalence properties run on. *)

open Bv_ir

val generate : seed:int -> Program.t
