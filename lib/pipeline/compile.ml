open Bv_isa
open Machine_state

(* Block-compiled fast path: per-pc fused fetch/execute closures.

   The interpreted front end pays, per dynamic instruction, one wide
   decode match, an [operand_value] dispatch per operand and a
   [Reg.index] per register. All of that is static per pc, so [attach]
   folds it into one closure per pc at machine-creation time: the
   closure body is the already-specialised ALU/compare/move kernel plus
   the pool-row enqueue. [run_len] additionally records, per pc, how
   many consecutive simple (non-control, non-halt) instructions follow
   within the same I-cache line, so the front end can hoist the
   per-instruction loop conditions (width budget, buffer space, line
   residency) out of a whole straight-line run and issue one closure
   call per instruction with no re-checks in between.

   Byte-identity contract: a compiled run must be indistinguishable from
   an interpreted one in every counter and digest. The closures
   therefore replicate [Frontend.enqueue_h] exactly minus the event
   hook, which is sound because [attach] is only ever called when no
   observer is attached ([events_enabled = false]). Control
   instructions, halts and anything line-crossing keep [run_len] = 0
   and fall back to the interpreted [Frontend.fetch_exec]. *)

(* [Frontend.enqueue_h] minus the event construction (guaranteed dead
   here: compiled mode implies [events_enabled = false]). *)
let[@inline] enq st ~addr pc =
  let h = alloc_inflight st in
  st.i_seq.(h) <- st.seq;
  st.i_pc.(h) <- pc;
  st.i_fetch_cycle.(h) <- st.now;
  st.i_addr.(h) <- addr;
  st.i_complete_cycle.(h) <- max_int;
  st.i_squashed.(h) <- 0;
  st.i_prefetch.(h) <- -1;
  st.seq <- st.seq + 1;
  Ring.push st.fbuf h;
  st.stats.Stats.fetched <- st.stats.Stats.fetched + 1;
  if st.shadow_fetches > 0 then st.shadow_fetches <- st.shadow_fetches - 1

(* Mirror of the [Frontend.enqueue_h] sweep-bound fold for the fused
   load/store closures: a newly fetched memory entry is a fresh runahead
   sweep candidate, actionable from its operand readiness. *)
let[@inline] fold_sweep st pc =
  if st.cfg.Config.runahead then begin
    let uses = st.static.(pc).s_uses in
    let r = ref 0 in
    for k = 0 to Array.length uses - 1 do
      let t = st.ready.(uses.(k)) in
      if t > !r then r := t
    done;
    if !r < st.sweep_bound then st.sweep_bound <- !r
  end

(* Specialised ALU closures, one per (op, operand-kind) pair, the pool
   enqueue fused in (no flambda: a second closure layer would cost an
   extra indirect call per dynamic instruction). These must mirror
   [Instr.eval_alu] bit for bit (including the 63-bit shift clamping). *)
let alu_op pc op d a src2 =
  match src2 with
  | Instr.Imm b -> (
    match op with
    | Instr.Add ->
      fun st -> st.regs.(d) <- st.regs.(a) + b; enq st ~addr:0 pc
    | Instr.Sub ->
      fun st -> st.regs.(d) <- st.regs.(a) - b; enq st ~addr:0 pc
    | Instr.And ->
      fun st -> st.regs.(d) <- st.regs.(a) land b; enq st ~addr:0 pc
    | Instr.Or ->
      fun st -> st.regs.(d) <- st.regs.(a) lor b; enq st ~addr:0 pc
    | Instr.Xor ->
      fun st -> st.regs.(d) <- st.regs.(a) lxor b; enq st ~addr:0 pc
    | Instr.Shl ->
      let s = min 62 (b land 63) in
      fun st -> st.regs.(d) <- st.regs.(a) lsl s; enq st ~addr:0 pc
    | Instr.Shr ->
      let s = min 62 (b land 63) in
      fun st -> st.regs.(d) <- st.regs.(a) asr s; enq st ~addr:0 pc
    | Instr.Mul ->
      fun st -> st.regs.(d) <- st.regs.(a) * b; enq st ~addr:0 pc)
  | Instr.Reg r -> (
    let c = Reg.index r in
    match op with
    | Instr.Add ->
      fun st -> st.regs.(d) <- st.regs.(a) + st.regs.(c); enq st ~addr:0 pc
    | Instr.Sub ->
      fun st -> st.regs.(d) <- st.regs.(a) - st.regs.(c); enq st ~addr:0 pc
    | Instr.And ->
      fun st -> st.regs.(d) <- st.regs.(a) land st.regs.(c); enq st ~addr:0 pc
    | Instr.Or ->
      fun st -> st.regs.(d) <- st.regs.(a) lor st.regs.(c); enq st ~addr:0 pc
    | Instr.Xor ->
      fun st ->
        st.regs.(d) <- st.regs.(a) lxor st.regs.(c);
        enq st ~addr:0 pc
    | Instr.Shl ->
      fun st ->
        st.regs.(d) <- st.regs.(a) lsl (min 62 (st.regs.(c) land 63));
        enq st ~addr:0 pc
    | Instr.Shr ->
      fun st ->
        st.regs.(d) <- st.regs.(a) asr (min 62 (st.regs.(c) land 63));
        enq st ~addr:0 pc
    | Instr.Mul ->
      fun st -> st.regs.(d) <- st.regs.(a) * st.regs.(c); enq st ~addr:0 pc)

let cmp_op pc op d a src2 =
  match src2 with
  | Instr.Imm b -> (
    match op with
    | Instr.Eq ->
      fun st ->
        st.regs.(d) <- Bool.to_int (st.regs.(a) = b);
        enq st ~addr:0 pc
    | Instr.Ne ->
      fun st ->
        st.regs.(d) <- Bool.to_int (st.regs.(a) <> b);
        enq st ~addr:0 pc
    | Instr.Lt ->
      fun st ->
        st.regs.(d) <- Bool.to_int (st.regs.(a) < b);
        enq st ~addr:0 pc
    | Instr.Ge ->
      fun st ->
        st.regs.(d) <- Bool.to_int (st.regs.(a) >= b);
        enq st ~addr:0 pc
    | Instr.Le ->
      fun st ->
        st.regs.(d) <- Bool.to_int (st.regs.(a) <= b);
        enq st ~addr:0 pc
    | Instr.Gt ->
      fun st ->
        st.regs.(d) <- Bool.to_int (st.regs.(a) > b);
        enq st ~addr:0 pc)
  | Instr.Reg r -> (
    let c = Reg.index r in
    match op with
    | Instr.Eq ->
      fun st ->
        st.regs.(d) <- Bool.to_int (st.regs.(a) = st.regs.(c));
        enq st ~addr:0 pc
    | Instr.Ne ->
      fun st ->
        st.regs.(d) <- Bool.to_int (st.regs.(a) <> st.regs.(c));
        enq st ~addr:0 pc
    | Instr.Lt ->
      fun st ->
        st.regs.(d) <- Bool.to_int (st.regs.(a) < st.regs.(c));
        enq st ~addr:0 pc
    | Instr.Ge ->
      fun st ->
        st.regs.(d) <- Bool.to_int (st.regs.(a) >= st.regs.(c));
        enq st ~addr:0 pc
    | Instr.Le ->
      fun st ->
        st.regs.(d) <- Bool.to_int (st.regs.(a) <= st.regs.(c));
        enq st ~addr:0 pc
    | Instr.Gt ->
      fun st ->
        st.regs.(d) <- Bool.to_int (st.regs.(a) > st.regs.(c));
        enq st ~addr:0 pc)

(* The fused step for one simple instruction, or [None] for anything
   that can steer fetch, stall, halt or fill the DBB — those keep the
   interpreted [Frontend.fetch_exec] path. *)
let build_op pc (instr : Instr.t) : (t -> unit) option =
  match instr with
  | Instr.Nop -> Some (fun st -> enq st ~addr:0 pc)
  | Instr.Alu { op; dst; src1; src2 } | Instr.Fpu { op; dst; src1; src2 } ->
    Some (alu_op pc op (Reg.index dst) (Reg.index src1) src2)
  | Instr.Mov { dst; src } ->
    let d = Reg.index dst in
    Some
      (match src with
      | Instr.Imm i -> fun st -> st.regs.(d) <- i; enq st ~addr:0 pc
      | Instr.Reg r ->
        let s = Reg.index r in
        fun st -> st.regs.(d) <- st.regs.(s); enq st ~addr:0 pc)
  | Instr.Cmp { op; dst; src1; src2 } ->
    Some (cmp_op pc op (Reg.index dst) (Reg.index src1) src2)
  | Instr.Cmov { on; cond; dst; src } ->
    let c = Reg.index cond and d = Reg.index dst in
    Some
      (match src with
      | Instr.Imm i ->
        if on then fun st ->
          if st.regs.(c) <> 0 then st.regs.(d) <- i;
          enq st ~addr:0 pc
        else
          fun st ->
          if st.regs.(c) = 0 then st.regs.(d) <- i;
          enq st ~addr:0 pc
      | Instr.Reg r ->
        let s = Reg.index r in
        if on then fun st ->
          if st.regs.(c) <> 0 then st.regs.(d) <- st.regs.(s);
          enq st ~addr:0 pc
        else
          fun st ->
          if st.regs.(c) = 0 then st.regs.(d) <- st.regs.(s);
          enq st ~addr:0 pc)
  | Instr.Load { dst; base; offset; speculative = _ } ->
    let d = Reg.index dst and b = Reg.index base in
    Some
      (fun st ->
        let addr = st.regs.(b) + offset in
        st.regs.(d) <- Spec_state.spec_load st ~addr;
        fold_sweep st pc;
        enq st ~addr pc)
  | Instr.Store { src; base; offset } ->
    let s = Reg.index src and b = Reg.index base in
    Some
      (fun st ->
        let addr = st.regs.(b) + offset in
        Spec_state.spec_store st ~addr st.regs.(s);
        fold_sweep st pc;
        enq st ~addr pc)
  | Instr.Branch _ | Instr.Jump _ | Instr.Call _ | Instr.Ret
  | Instr.Predict _ | Instr.Resolve _ | Instr.Halt ->
    None

let attach st =
  let n = st.code_len in
  let nop (_ : t) = () in
  let ops = Array.make (max n 1) nop in
  let run = Array.make (max n 1) 0 in
  for pc = 0 to n - 1 do
    match build_op pc st.code.(pc) with
    | Some f -> ops.(pc) <- f
    | None -> ()
  done;
  (* Straight-line run lengths, computed backwards; a run never crosses
     an I-cache line boundary, so a block dispatched while the line is
     resident needs no per-instruction line check. *)
  for pc = n - 1 downto 0 do
    if ops.(pc) != nop then
      run.(pc) <-
        (if pc + 1 < n && line_of st (pc + 1) = line_of st pc then
           1 + run.(pc + 1)
         else 1)
  done;
  st.fetch_ops <- ops;
  st.run_len <- run;
  st.compiled <- true

(* ---- stall skipping ---------------------------------------------------- *)

(* Fast-forward [st.now] through cycles in which the machine provably
   does nothing but bookkeeping, applying each skipped cycle's counter
   updates in closed form. Two such states exist:

   1. Empty fetch buffer with a blocked front end (I-cache stall,
      redirect bubble, spec-halt drain, fetch off the end): nothing can
      issue, nothing can fetch, and nothing completes below
      [next_complete].

   2. A parked issue head (operand-blocked until [park_until]) with the
      front end also blocked: in-order issue means nothing younger can
      move either. Under runahead the skip is additionally bounded by
      the earliest cycle at which the prefetch sweep could act (see
      [sweep_bound] below).

   Only called on compiled runs (no observers): the per-cycle effects of
   a skipped cycle are exactly the counter increments replicated here,
   so the result is byte-identical to stepping cycle by cycle. *)
(* Observability for the microbenchmarks and the perf probe: cycles
   fast-forwarded by each skip case since process start. *)
let skipped_empty = ref 0
let skipped_parked = ref 0

let skip_stalls st ~limit =
  let now = st.now in
  if Ring.length st.fbuf = 0 then begin
    let fetch_blocked_until =
      if
        st.spec_halted || st.fetch_frozen || st.fetch_pc < 0
        || st.fetch_pc >= st.code_len
      then max_int
      else st.fetch_stall_until
    in
    let target = imin limit (imin fetch_blocked_until st.next_complete) in
    let k = target - now in
    if k > 0 then begin
      let stats = st.stats in
      stats.Stats.frontend_empty_cycles <-
        stats.Stats.frontend_empty_cycles + k;
      stats.Stats.dbb_occupancy_sum <-
        stats.Stats.dbb_occupancy_sum + (Dbb.occupancy st.dbb * k);
      stats.Stats.dbb_samples <- stats.Stats.dbb_samples + k;
      Spec_state.log_trim st;
      skipped_empty := !skipped_empty + k;
      st.now <- now + k;
      stats.Stats.cycles <- st.now
    end
  end
  else begin
    let h = Ring.front st.fbuf in
    if h = st.park_h && now < st.park_until && st.i_seq.(h) = st.park_seq
    then begin
      (* Under runahead, stalled cycles run the prefetch sweep — but the
         sweep only acts on a not-yet-prefetched memory entry whose
         operands are ready, and ready times are fixed while nothing
         issues or completes. It is therefore a provable no-op strictly
         below the earliest readiness among unprefetched memory entries
         in the fetch buffer; skipping stops there. *)
      let fetch_blocked_until =
        if
          Ring.is_full st.fbuf || st.spec_halted || st.fetch_frozen
          || st.fetch_pc < 0
          || st.fetch_pc >= st.code_len
        then max_int
        else st.fetch_stall_until
      in
      let target0 =
        imin limit
          (imin st.park_until (imin fetch_blocked_until st.next_complete))
      in
      (* Only pay the sweep-bound scan when the cheap bounds already
         permit a skip. *)
      let target =
        if target0 <= now || not st.cfg.Config.runahead then target0
        else begin
          let b = ref target0 in
          let n = Ring.length st.fbuf in
          let k = ref 0 in
          while !b > now && !k < n do
            let e = Ring.get st.fbuf !k in
            if st.i_prefetch.(e) < 0 then begin
              let si = st.static.(st.i_pc.(e)) in
              if si.s_mem_kind <> 0 then begin
                let uses = si.s_uses in
                let r = ref 0 in
                for j = 0 to Array.length uses - 1 do
                  let t = st.ready.(uses.(j)) in
                  if t > !r then r := t
                done;
                if !r < !b then b := !r
              end
            end;
            incr k
          done;
          !b
        end
      in
      let k = target - now in
      if k > 0 then begin
        let stats = st.stats in
        stats.Stats.head_stall_cycles <- stats.Stats.head_stall_cycles + k;
        stats.Stats.operand_stall_cycles <-
          stats.Stats.operand_stall_cycles + k;
        let site = st.c_site.(h) in
        if site >= 0 then
          for _ = 1 to k do
            Stats.add_site_stall stats ~site
          done;
        stats.Stats.dbb_occupancy_sum <-
          stats.Stats.dbb_occupancy_sum + (Dbb.occupancy st.dbb * k);
        stats.Stats.dbb_samples <- stats.Stats.dbb_samples + k;
        Spec_state.log_trim st;
        skipped_parked := !skipped_parked + k;
        st.now <- now + k;
        stats.Stats.cycles <- st.now
      end
    end
  end
