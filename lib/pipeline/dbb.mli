(** The Decomposed Branch Buffer (paper §4, Figure 7).

    A small circular buffer written by [predict] instructions at fetch and
    read by [resolve] instructions. Each entry keeps the predictor metadata
    (history snapshot and table indices — the paper's 24 bits) plus the
    predict instruction's PC and its chosen direction, so that the
    resolution can train the predictor entry that made the prediction.

    A [predict] allocates at the tail (fetch stalls when the buffer is
    full); the following [resolve] claims the newest entry at fetch and
    carries its slot index down the pipe; the entry is freed when the
    resolve executes and updates the predictor. Branch mispredictions
    restore the buffer from a snapshot, recovering the tail pointer as the
    paper describes.

    Entries live in flat parallel arrays and the interface traffics in
    ints: the DBB sits on the decomposed hot path (an allocate per
    predict, a claim and a free per resolve), so no call here allocates. *)

open Bv_bpred

type t

type snapshot

val create : entries:int -> t
val capacity : t -> int
val occupancy : t -> int
val is_full : t -> bool

val allocate : t -> pc:int -> meta:Predictor.meta -> taken:bool -> int
(** Tail allocation; returns the slot index, or -1 when full. *)

val claim_newest : t -> int
(** The most recently allocated unclaimed entry (the paper's tail-pointer
    read), marked claimed; returns its slot index. -1 when nothing is
    outstanding — which a well-formed program only produces on wrong-path
    fetch; the machine then skips the predictor update (the paper's
    "suppress spurious updates" option). *)

val slot_pc : t -> int -> int
(** Predict-instruction pc of a claimed slot. *)

val slot_meta : t -> int -> Predictor.meta
(** Predictor metadata of a claimed slot. *)

val slot_taken : t -> int -> bool
(** Predicted direction of a claimed slot. *)

val free : t -> int -> unit
(** Release a slot at resolve execution. Idempotent. *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Misprediction repair. Restoration intersects the snapshot with the
    current contents by allocation identity: entries allocated after the
    snapshot are dropped, claim flags are reverted, and entries freed since
    the snapshot are {e not} resurrected (an older resolve may legitimately
    have retired and updated the predictor in the meantime). *)
