(** Top-down cycle accounting: the CPI stack and per-branch attribution.

    An accumulator of two tables filled by the instrumented cycle loop
    (see {!Machine_state.account_cycle} for the classifier and
    [docs/INTERNALS.md] for the charge-point map):

    - a CPI stack — every simulated cycle charged to exactly one of
      {!n_components} components, so the stack sums to total cycles
      ({!check} asserts this conservation invariant);
    - a per-pc branch attribution table — executions, mispredicts,
      recovery cycles charged, and a log2 resolution-latency histogram
      for every control instruction.

    Storage is flat int arrays indexed by component / pc (mirroring the
    pipeline's [static_info] layout), so recording allocates nothing and
    a table marshals cleanly through the fork-pool harness. *)

val n_components : int

(** Component indices into {!t.components} / {!component_names}. *)

val c_base : int
(** Issue made progress (or the stall is an unattributed dependency). *)

val c_fetch_starve : int
(** Front end empty with fetch unblocked (front-stage fill, fetch off the
    end of the code, spec-halted). *)

val c_icache : int
(** Fetch stalled out by an instruction-cache miss. *)

val c_redirect : int
(** Fetch stalled by a taken-branch bubble / BTB-miss penalty. *)

val c_recovery : int
(** Post-flush refill shadow of a misprediction, charged until issue
    resumes — attributed to the mispredicting pc. *)

val c_dbb : int
(** Fetch stalled on a full decomposed-branch buffer. *)

val c_fu : int
(** Issue head blocked on a functional-unit slot. *)

val c_mem_struct : int
(** Issue head blocked on MSHRs / the store buffer. *)

val c_memory : int
(** Issue head blocked on an operand produced by an in-flight load. *)

val component_names : string array
(** JSON / display name per component index. *)

val lat_buckets : int
(** Histogram width: bucket [k] counts resolution latencies in
    [2^k, 2^(k+1)), the last bucket open-ended. *)

type t =
  { components : int array;  (** cycles charged, indexed by component *)
    execs : int array;  (** control-instruction completions, by pc *)
    mispredicts : int array;
    recovery_cycles : int array;
        (** recovery cycles charged to the mispredicting pc *)
    lat_sum : int array;  (** summed fetch-to-completion latency, by pc *)
    lat_hist : int array;  (** indexed [pc * lat_buckets + bucket] *)
    code : Bv_isa.Instr.t array
  }

val create : Bv_isa.Instr.t array -> t
(** Fresh zeroed tables sized for [code]; pass [image.Layout.code]. *)

val length : t -> int
(** Number of pcs covered (the code length at [create]). *)

val record_branch : t -> pc:int -> mispredict:bool -> latency:int -> unit
(** Called at control-instruction completion; [latency] is
    fetch-to-completion in cycles. *)

val record_recovery : t -> pc:int -> unit
(** Charge one recovery cycle to the mispredicting [pc]. *)

val total : t -> int
(** Sum of the component counters. *)

val check : t -> cycles:int -> unit
(** Conservation invariant: raises [Invalid_argument] unless
    [total t = cycles]. *)

val merge : t -> t -> t
(** Pointwise sum of two tables over the same code (per-input aggregation
    through the fork pool). Raises [Invalid_argument] when the tables
    cover different code lengths. *)

type site_agg =
  { sa_site : int;
    sa_execs : int;
    sa_mispredicts : int;
    sa_recovery : int;
    sa_lat_sum : int
  }

val by_site : t -> site_agg list
(** Per-pc rows folded up to branch/resolve site ids (ascending), the
    join key between a baseline branch and its decomposed resolve in
    [vanguard_cli report]. *)

val cpi_stack_json : t -> Bv_obs.Json.t
(** [{"cycles": total, "<component>": cycles, ...}]. *)

val top_branches_json : ?top:int -> t -> Bv_obs.Json.t
(** The [top] (default 10) executed control pcs ranked by recovery cycles
    caused, then mispredicts, then executions. *)

val to_json : ?top:int -> t -> Bv_obs.Json.t
(** [{"cpi_stack": ..., "top_branches": ...}]. *)
