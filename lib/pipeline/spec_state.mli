(** Speculative-state management: the undo-logged memory image,
    checkpoints, and the squash/rollback machinery shared by every
    mispredicting control instruction (branches, returns, resolves).

    The machine executes architecturally at fetch, so wrong-path work
    mutates the registers and memory directly; this module is what makes
    that recoverable. *)

open Machine_state

val spec_load : t -> addr:int -> int
(** Wrong-path-safe load: misaligned or out-of-range addresses read 0. *)

val spec_store : t -> addr:int -> int -> unit
(** Wrong-path-safe store; the old value is pushed onto the undo log. *)

val make_checkpoint : t -> checkpoint
(** Snapshot registers, undo-log position, call stack, RAS depth, DBB and
    the halt flag. Increments the live-checkpoint count (which pins the
    undo log). *)

val release_checkpoint : t -> handle -> unit
(** Drop the checkpoint reference of a squashed/completed control
    instruction, unpinning the undo log once no checkpoints remain. *)

val log_trim : t -> unit
(** Discard the undo log when no checkpoints are live (called once per
    cycle). *)

val log_depth : t -> int
(** Current undo-log length (for tests). *)

val flush : t -> from_seq:int -> checkpoint:checkpoint -> new_pc:int -> unit
(** Roll architectural state back to [checkpoint], squash everything
    younger than [from_seq] in the fetch buffer and the pending list,
    rebuild the scoreboard and redirect fetch to [new_pc]. *)

val mispredict_flush : t -> handle -> unit
(** [flush] driven by a mispredicting control instruction's own
    checkpoint and redirect columns. *)
