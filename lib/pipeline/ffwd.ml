open Bv_isa
open Bv_bpred
open Bv_cache
open Machine_state

(* Functional fast-forward between sampled windows (SMARTS-style).

   The frontend already executes architecturally at fetch, so committed
   execution needs none of the timing machinery: this walks the program
   functionally on the machine's own architectural state (registers,
   memory, call stack) while warming the long-lived microarchitectural
   structures — branch predictor (predict/update/recover, exactly as a
   completed branch would train), BTB, RAS, DBB and both cache
   hierarchies. No cycles pass ([st.now] is untouched) and no Stats
   counters move: fast-forwarded instructions are accounted by the
   sampling driver, not the detailed counters.

   Precondition: the pipeline is drained — empty fetch buffer and
   pending deque, no live checkpoints — so the speculative state IS the
   committed state and stores can write memory directly (no undo log).
   [Machine.run_sampled] establishes this before every hand-off. *)

type outcome =
  { executed : int;  (* instructions executed, [Halt] included *)
    halted : bool
  }

let run st ~max_instrs =
  assert (Ring.length st.fbuf = 0 && Ring.length st.pending = 0);
  assert (st.live_checkpoints = 0);
  let code = st.code in
  let regs = st.regs in
  let value = function
    | Instr.Reg r -> regs.(Reg.index r)
    | Instr.Imm i -> i
  in
  let warm_btb pc target =
    if Btb.find st.btb ~pc <> target then Btb.update st.btb ~pc ~target
  in
  let n = ref 0 in
  let pc = ref st.fetch_pc in
  let halted = ref st.spec_halted in
  let last_line = ref (-1) in
  while (not !halted) && !n < max_instrs && !pc >= 0 && !pc < st.code_len do
    (* I-cache warming: one access per line transition, like fetch *)
    let line = line_of st !pc in
    if line <> !last_line then begin
      ignore (Hierarchy.inst_access_latency st.hier ~addr:(!pc * 4));
      last_line := line
    end;
    incr n;
    let next = !pc + 1 in
    match code.(!pc) with
    | Instr.Nop -> pc := next
    | Instr.Alu { op; dst; src1; src2 } | Instr.Fpu { op; dst; src1; src2 } ->
      regs.(Reg.index dst) <-
        Instr.eval_alu op regs.(Reg.index src1) (value src2);
      pc := next
    | Instr.Mov { dst; src } ->
      regs.(Reg.index dst) <- value src;
      pc := next
    | Instr.Cmp { op; dst; src1; src2 } ->
      regs.(Reg.index dst) <-
        Bool.to_int (Instr.eval_cmp op regs.(Reg.index src1) (value src2));
      pc := next
    | Instr.Cmov { on; cond; dst; src } ->
      if (regs.(Reg.index cond) <> 0) = on then
        regs.(Reg.index dst) <- value src;
      pc := next
    | Instr.Load { dst; base; offset; speculative = _ } ->
      let addr = regs.(Reg.index base) + offset in
      ignore (Hierarchy.data_access_latency st.hier ~addr ~write:false);
      regs.(Reg.index dst) <- Spec_state.spec_load st ~addr;
      pc := next
    | Instr.Store { src; base; offset } ->
      let addr = regs.(Reg.index base) + offset in
      ignore (Hierarchy.data_access_latency st.hier ~addr ~write:true);
      if addr land 7 = 0 && addr >= 0 && addr / 8 < st.mem_words then
        st.mem.(addr / 8) <- regs.(Reg.index src);
      st.stores_retired <- st.stores_retired + 1;
      pc := next
    | Instr.Branch { on; src; target = _; id = _ } ->
      let taken = (regs.(Reg.index src) <> 0) = on in
      let pred, meta = st.predictor.Predictor.predict ~pc:!pc ~outcome:taken in
      st.predictor.Predictor.update meta ~pc:!pc ~taken;
      if pred <> taken then st.predictor.Predictor.recover meta ~taken;
      if taken then begin
        let target = st.static.(!pc).s_target in
        warm_btb !pc target;
        pc := target
      end
      else pc := next
    | Instr.Jump _ ->
      let target = st.static.(!pc).s_target in
      warm_btb !pc target;
      pc := target
    | Instr.Call _ ->
      let target = st.static.(!pc).s_target in
      st.call_stack <- next :: st.call_stack;
      Ras.push st.ras next;
      warm_btb !pc target;
      pc := target
    | Instr.Ret -> (
      match st.call_stack with
      | [] -> halted := true  (* malformed program; stop cleanly *)
      | ra :: rest ->
        st.call_stack <- rest;
        ignore (Ras.pop st.ras);
        pc := ra)
    | Instr.Predict { target = _; id = _ } ->
      (* Committed control flow follows the prediction; the paired
         resolve corrects it below, so any policy is architecturally
         equivalent (the prove pass guarantees this) — using the live
         predictor keeps the DBB pairing and training realistic. *)
      let outcome =
        st.oracle_needed && Frontend.predict_outcome_oracle st !pc
      in
      let pred, meta = st.predictor.Predictor.predict ~pc:!pc ~outcome in
      if not (Dbb.is_full st.dbb) then
        ignore (Dbb.allocate st.dbb ~pc:!pc ~meta ~taken:pred);
      if pred then begin
        let target = st.static.(!pc).s_target in
        warm_btb !pc target;
        pc := target
      end
      else pc := next
    | Instr.Resolve { on; src; target = _; predicted_taken; id = _ } ->
      let taken = (regs.(Reg.index src) <> 0) = on in
      let mispredict = taken <> predicted_taken in
      let slot = Dbb.claim_newest st.dbb in
      if slot >= 0 then begin
        let meta = Dbb.slot_meta st.dbb slot in
        let mpc = Dbb.slot_pc st.dbb slot in
        st.predictor.Predictor.update meta ~pc:mpc ~taken;
        if mispredict then st.predictor.Predictor.recover meta ~taken;
        Dbb.free st.dbb slot
      end;
      if mispredict then pc := st.static.(!pc).s_target else pc := next
    | Instr.Halt -> halted := true
  done;
  (* Hand the stream back to the detailed front end. *)
  st.fetch_pc <- !pc;
  st.current_line <- -1;
  { executed = !n; halted = !halted }
