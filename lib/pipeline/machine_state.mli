(** Shared mutable state of the staged timing model.

    One record carries everything the pipeline stages touch — speculative
    architectural state (registers, memory + undo log, call stack),
    front-end steering state, the fetch buffer, the scoreboard, in-flight
    instructions and the telemetry sinks. Stage modules ({!Frontend},
    {!Scoreboard}, {!Backend}, {!Spec_state}) are sets of functions over
    this record; {!Machine.run} owns only the cycle loop.

    The record is deliberately transparent: stages (and the per-stage unit
    tests) read and write fields directly, and the narrow surface of each
    stage lives in that stage's [.mli], not here. *)

open Bv_isa
open Bv_ir
open Bv_bpred
open Bv_cache

type ctrl_kind = Ck_branch | Ck_resolve | Ck_ret

type checkpoint =
  { ck_regs : int array;
    ck_undo : int;  (** absolute undo-log position *)
    ck_stack : int list;
    ck_ras_depth : int;
    ck_dbb : Dbb.snapshot;
    ck_halted : bool
  }

type ctrl =
  { kind : ctrl_kind;
    mispredict : bool;
    redirect_pc : int;  (** correct-path pc, used on mispredict *)
    checkpoint : checkpoint option;  (** present iff mispredict *)
    site : int;  (** branch/resolve site id, -1 otherwise *)
    meta : Predictor.meta option;
    meta_pc : int;  (** pc whose predictor entry to train *)
    actual_taken : bool;
    dbb_slot : int  (** -1 when none *)
  }

type inflight =
  { seq : int;
    pc : int;
    instr : Instr.t;
    fetch_cycle : int;
    fu : Instr.fu_class;
    dst : int;  (** register index, -1 if none *)
    uses : int list;
    addr : int;  (** effective address of loads/stores, captured at fetch *)
    mutable latency : int;
    mutable issue_cycle : int;  (** -1 before issue *)
    mutable complete_cycle : int;
    mutable squashed : bool;
    mutable prefetch_arrival : int;  (** -1: not prefetched *)
    ctrl : ctrl option
  }

type event =
  | Fetched of { cycle : int; seq : int; pc : int; instr : Instr.t }
  | Issued of { cycle : int; seq : int }
  | Completed of { cycle : int; seq : int; mispredicted : bool }
  | Squashed of { cycle : int; seq : int }
  | Redirected of { cycle : int; after_seq : int; new_pc : int }

(** Fixed-capacity ring used as the fetch buffer: push at tail, pop at
    head, truncate at tail on flush. *)
module Ring : sig
  type 'a t

  val create : int -> 'a t
  val length : 'a t -> int
  val capacity : 'a t -> int
  val is_full : 'a t -> bool
  val push : 'a t -> 'a -> unit
  val peek : 'a t -> 'a option
  val pop : 'a t -> 'a option
  val iter : 'a t -> ('a -> unit) -> unit

  val truncate_tail : 'a t -> keep:('a -> bool) -> 'a list
  (** Remove tail entries failing [keep]; returns the removed entries. *)
end

type t =
  { cfg : Config.t;
    image : Layout.image;
    code : Instr.t array;
    code_len : int;
    stats : Stats.t;
    hier : Hierarchy.t;
    predictor : Predictor.t;
    btb : Btb.t;
    ras : Ras.t;
    dbb : Dbb.t;
    regs : int array;
    mem : int array;
    mem_words : int;
    mutable call_stack : int list;
    mutable spec_halted : bool;
    mutable log_addr : int array;
    mutable log_val : int array;
    mutable log_len : int;
    mutable log_base : int;
    mutable live_checkpoints : int;
    mutable now : int;
    fbuf : inflight Ring.t;
    mutable pending : inflight list;
    mutable pending_tail : inflight list;
    ready : int array;
    mutable fetch_pc : int;
    mutable fetch_stall_until : int;
    mutable current_line : int;
    mutable mshr_release : int list;
    mutable store_release : int list;
    mutable seq : int;
    mutable finished : bool;
    mutable stores_retired : int;
    mutable shadow_fetches : int;
    on_event : event -> unit
  }

val create : config:Config.t -> on_event:(event -> unit) -> Layout.image -> t
(** Fresh machine state at cycle 0, fetch steered at the image entry. *)

val merge_pending : t -> unit
(** Fold the reversed append accumulator into [pending] (kept in seq
    order). Call before any traversal of [pending]. *)

val rebuild_scoreboard : t -> unit
(** Recompute every register's ready cycle from the surviving in-flight
    producers (squash repair). *)

val line_of : t -> int -> int
(** I-cache line index of a pc. *)

val operand_value : t -> Instr.operand -> int
(** Read an operand against the speculative register file. *)
