(** Shared mutable state of the staged timing model.

    One record carries everything the pipeline stages touch — speculative
    architectural state (registers, memory + undo log, call stack),
    front-end steering state, the fetch buffer, the scoreboard, in-flight
    instructions and the telemetry sinks. Stage modules ({!Frontend},
    {!Scoreboard}, {!Backend}, {!Spec_state}) are sets of functions over
    this record; {!Machine.run} owns only the cycle loop.

    The record is deliberately transparent: stages (and the per-stage unit
    tests) read and write fields directly, and the narrow surface of each
    stage lives in that stage's [.mli], not here.

    Allocation discipline: the steady-state cycle loop allocates nothing
    per instruction. Decode products are precomputed per pc in [static];
    inflight records are recycled through a free list; event values are
    only built when a subscriber is attached ([events_enabled]); and the
    structural-resource trackers ({!Release}) and queues ({!Ring}) are
    flat arrays with mask indexing. *)

open Bv_isa
open Bv_ir
open Bv_bpred
open Bv_cache

type checkpoint =
  { ck_regs : int array;
    ck_undo : int;  (** absolute undo-log position *)
    ck_stack : int list;
    ck_ras_depth : int;
    ck_dbb : Dbb.snapshot;
    ck_halted : bool
  }

(** Control-instruction kind tags for the flat [c_kind] pool column.
    Control metadata lives in parallel int arrays rather than a
    per-instruction record, so fetching a branch allocates nothing. *)

val ck_none : int

val ck_branch : int
val ck_resolve : int
val ck_ret : int

val no_ctrl_meta : Predictor.meta
(** Sentinel for "no predictor metadata" in the [c_meta] column,
    distinguished by {e physical} equality ([==]); deliberately non-empty
    so a predictor's legitimate empty meta can never alias it. *)

type handle = int
(** Name of an in-flight instruction: a row index into the [i_*]
    struct-of-arrays pool below. Handles (not records) flow through the
    queues and the free list, so the steady-state loop moves immediates
    only — no write barriers, nothing for the major GC to trace. *)

(** Functional-unit classes as indices into the per-cycle [fu_left]
    counters. *)

val fu_int : int

val fu_fp : int
val fu_mem : int
val fu_branch : int
val fu_none : int

(** Per-cycle stall reason written by the scoreboard (exactly one per
    zero-issue cycle), consumed by {!account_cycle}. *)

val stall_none : int

val stall_frontend : int
val stall_operand : int
val stall_fu : int
val stall_mem : int

(** What last armed [fetch_stall_until] — splits front-end-empty cycles
    into icache / redirect / DBB shadows. *)

val fsrc_none : int

val fsrc_icache : int
val fsrc_redirect : int
val fsrc_dbb : int

(** Per-pc decode products, computed once per {!create}: the fetch path
    never recomputes [Instr.defs]/[Instr.uses]/[Instr.fu_class] or the
    config latency per dynamic instruction. *)
type static_info =
  { s_fu : int;  (** {!fu_int} .. {!fu_none} *)
    s_dst : int;  (** register index, -1 if none *)
    s_uses : int array;  (** register indices, in [Instr.uses] order *)
    s_latency : int;  (** base issue latency under the run's config *)
    s_mem_kind : int;  (** 0 = not memory, 1 = load, 2 = store *)
    s_is_halt : bool;
    s_target : int
        (** pre-resolved label target pc (jump/call/branch/predict/resolve);
            -1 when the instruction has no label. The fetch path never does
            a label-table lookup. *)
  }

val imax : int -> int -> int
(** Monomorphic int max/min: the hot path must not call the polymorphic
    [Stdlib.max]/[Stdlib.min] (each is a closure call into [compare]). *)

val imin : int -> int -> int

type event =
  | Fetched of { cycle : int; seq : int; pc : int; instr : Instr.t }
  | Issued of { cycle : int; seq : int }
  | Completed of { cycle : int; seq : int; mispredicted : bool }
  | Squashed of { cycle : int; seq : int }
  | Redirected of { cycle : int; after_seq : int; new_pc : int }

(** Power-of-two circular FIFO of int handles with mask indexing.
    Monomorphic on purpose: the [int array] backing store compiles to
    unboxed stores — no [caml_modify] write barrier at two pushes per
    simulated instruction. [limit] caps {!is_full} (the fetch buffer's
    configured size); the backing array doubles on demand, so an
    unlimited ring is a growable deque — the retire queue uses exactly
    that. *)
module Ring : sig
  type t

  val create : ?limit:int -> int -> t
  (** [create n] sizes the backing array to the next power of two ≥ [n].
      [limit] defaults to unbounded. *)

  val length : t -> int
  val capacity : t -> int
  (** The logical [limit]. *)

  val is_full : t -> bool
  val push : t -> int -> unit
  val front : t -> int
  (** Head entry; raises [Invalid_argument] when empty. *)

  val pop : t -> int
  (** Remove and return the head; raises [Invalid_argument] when empty. *)

  val get : t -> int -> int
  (** [get t k] is the k-th entry from the head (no bounds check beyond
      the mask). *)

  val iter : t -> (int -> unit) -> unit

  val drop_tail : t -> int -> unit
  (** Shorten by [n] entries at the tail. *)

  val truncate_tail :
    t -> keep:(int -> bool) -> removed:(int -> unit) -> unit
  (** Remove the maximal tail suffix failing [keep], calling [removed] on
      each dropped entry in ring (FIFO) order. *)

  val filter_in_place : t -> keep:(int -> bool) -> unit
  (** Order-preserving in-place compaction. *)
end

(** Release-time calendar giving O(1) structural-resource occupancy
    (MSHRs, store buffer): [schedule] an entry's release cycle, [drain]
    once per cycle, read [occupancy]. After [drain ~now], [occupancy]
    counts exactly the entries with release cycle > [now]. *)
module Release : sig
  type t

  val create : horizon:int -> t
  (** [horizon] must bound the largest latency ever scheduled. *)

  val occupancy : t -> int
  val schedule : t -> at:int -> unit
  val drain : t -> now:int -> unit
end

type t =
  { cfg : Config.t;
    image : Layout.image;
    code : Instr.t array;
    code_len : int;
    static : static_info array;  (** indexed by pc, same length as [code] *)
    stats : Stats.t;
    hier : Hierarchy.t;
    predictor : Predictor.t;
    btb : Btb.t;
    ras : Ras.t;
    dbb : Dbb.t;
    regs : int array;
    mem : int array;
    mem_words : int;
    mutable call_stack : int list;
    mutable spec_halted : bool;
    mutable log_addr : int array;
    mutable log_val : int array;
    mutable log_len : int;
    mutable log_base : int;
    mutable live_checkpoints : int;
    mutable now : int;
    fbuf : Ring.t;
    pending : Ring.t;
        (** issued-but-incomplete instructions, in seq order *)
    mutable next_complete : int;
        (** lower bound on the earliest [complete_cycle] in [pending]
            (stale low is fine; the backend skips scans below it) *)
    ready : int array;
    mutable park_h : handle;
        (** operand-stall parking: the issue head known to be blocked on
            operands until [park_until] (-1 when nothing is parked).
            Guarded by [park_seq] — handles are reused, seqs never are. *)
    mutable park_seq : int;
    mutable park_until : int;
    mutable sweep_bound : int;
        (** conservative lower bound on the earliest cycle the runahead
            prefetch sweep could act (min readiness over unprefetched
            memory entries in [fbuf]; 0 = unknown, walk). Maintained by
            the scoreboard sweep, folded down at fetch, reset by
            {!rebuild_scoreboard}. *)
    mutable fetch_pc : int;
    mutable fetch_stall_until : int;
    mutable current_line : int;
    line_shift : int;  (** log2 of the I-cache line size in instructions *)
    mshr_release : Release.t;
    store_release : Release.t;
    fu_left : int array;
        (** per-cycle FU availability, indexed by {!fu_int} .. {!fu_none};
            refilled from the config at the top of each issue pass *)
    mutable seq : int;
    mutable finished : bool;
    mutable stores_retired : int;
    mutable shadow_fetches : int;
    mutable i_seq : int array;
        (** In-flight pool: parallel arrays indexed by {!handle}, grown
            together on demand. All-int except [c_meta] and [c_ckpt]
            (touched only by control instructions), so a field refill
            touches no pointers. *)
    mutable i_pc : int array;
    mutable i_fetch_cycle : int array;
    mutable i_addr : int array;
        (** load/store effective address, captured at fetch *)
    mutable i_complete_cycle : int array;
    mutable i_squashed : int array;  (** 0 / 1 *)
    mutable i_prefetch : int array;
        (** runahead-prefetch arrival cycle; -1 when none *)
    mutable c_kind : int array;
        (** Control metadata columns, valid while [c_kind] is not
            {!ck_none}: the row's enqueuer writes every field it later
            reads; {!recycle_inflight} resets the discriminator, the
            pointer columns and [c_site]. *)
    mutable c_mispredict : int array;  (** 0 / 1 *)
    mutable c_redirect : int array;
        (** correct-path pc, used on mispredict *)
    mutable c_site : int array;
        (** branch/resolve site id; -1 otherwise (read without a kind
            guard on the issue path) *)
    mutable c_meta_pc : int array;
        (** pc whose predictor entry to train *)
    mutable c_actual : int array;  (** actual direction, 0 / 1 *)
    mutable c_dbb_slot : int array;  (** -1 when none *)
    mutable c_meta : Predictor.meta array;
        (** {!no_ctrl_meta} when none (compare with [==]) *)
    mutable c_ckpt : checkpoint option array;  (** present iff mispredict *)
    mutable pool_next : handle;  (** first never-allocated row *)
    mutable free_pool : int array;  (** recycled handles (a stack) *)
    mutable free_len : int;
    mutable comp_buf : int array;  (** per-cycle completion scratch *)
    mutable comp_len : int;
    oracle_scratch : int array;
    oracle_needed : bool;
        (** only the perfect predictor reads [~outcome] at predict time,
            so the oracle walk is skipped for every other kind *)
    events_enabled : bool;
        (** [false]: no event values are ever constructed *)
    on_event : event -> unit;
    acct_enabled : bool;
        (** Cycle accounting, gated like [events_enabled]: when [false]
            the classifier never runs and only the cheap unconditional
            int stores below remain on the hot path. *)
    acct : Acct.t;  (** zero-length tables when disabled *)
    mutable cycle_stall : int;
        (** this cycle's stall reason, {!stall_none} .. {!stall_mem} *)
    mutable fetch_stall_src : int;  (** {!fsrc_none} .. {!fsrc_dbb} *)
    mutable in_recovery : bool;
        (** set at flush, cleared by the first subsequent issue: the
            refill shadow charged to [recovery_pc] *)
    mutable recovery_pc : int;
    ready_src_load : int array;
        (** per register: 1 when the producer that last raised [ready]
            was a load (splits operand stalls into memory vs base) *)
    mutable compiled : bool;
        (** Block-compiled fast path armed ({!Compile.attach}): the front
            end dispatches through [fetch_ops]/[run_len] instead of the
            interpreted decode match. Only ever set when no observer
            (events, accounting, per-cycle hook) is attached. *)
    mutable fetch_ops : (t -> unit) array;
        (** per-pc fused fetch/execute closures; [[||]] when interpreted *)
    mutable run_len : int array;
        (** per pc: length of the straight-line run of simple (non-control,
            non-halt) instructions starting there, clipped at the I-cache
            line boundary; 0 for control instructions *)
    mutable fetch_frozen : bool
        (** sampled-mode drain: the front end fetches nothing while set,
            so the pipeline empties before a functional fast-forward
            hand-off; never set on normal runs *)
  }

val create :
  config:Config.t ->
  ?on_event:(event -> unit) ->
  ?acct:Acct.t ->
  Layout.image ->
  t
(** Fresh machine state at cycle 0, fetch steered at the image entry.
    Omitting [on_event] disables event construction entirely
    ([events_enabled = false]); omitting [acct] disables cycle accounting
    the same way. A provided [acct] must be sized for the image's code
    ({!Acct.create} on [image.code]) — raises [Invalid_argument]
    otherwise. *)

val alloc_inflight : t -> handle
(** Pop a recycled handle off the free list (or claim a fresh pool row,
    growing the pool if needed); the caller overwrites every field. *)

val recycle_inflight : t -> handle -> unit
(** Return a handle to the free list. The caller must guarantee it is no
    longer reachable from the fetch buffer, the pending deque or the
    completion scratch — a double recycle would hand the same row out
    twice. Resets [c_kind], [c_site] and the pointer columns ([c_meta],
    [c_ckpt]). *)

val rebuild_scoreboard : t -> unit
(** Recompute every register's ready cycle from the surviving in-flight
    producers (squash repair). *)

val line_of : t -> int -> int
(** I-cache line index of a pc. *)

val operand_value : t -> Instr.operand -> int
(** Read an operand against the speculative register file. *)

val account_cycle : t -> unit
(** Charge the cycle just simulated to exactly one {!Acct} component
    (call once per cycle, after issue and fetch, only when
    [acct_enabled]). Conservation holds by construction: one increment
    per call. Recovery cycles are additionally attributed to the
    mispredicting pc. *)
