(** Counters collected by a timing-model run. *)

type t =
  { mutable cycles : int;
    mutable fetched : int;  (** instructions entering the fetch buffer *)
    mutable issued : int;  (** issued, including later-squashed *)
    mutable squashed_issued : int;
    mutable squashed_fetched : int;  (** squashed before issuing *)
    mutable predicts_fetched : int;  (** predict instructions steered+dropped *)
    mutable branch_execs : int;
    mutable branch_mispredicts : int;
    mutable resolve_execs : int;
    mutable resolve_mispredicts : int;
    mutable ret_execs : int;
    mutable ret_mispredicts : int;
    mutable redirects : int;  (** all pipeline flushes *)
    mutable loads_issued : int;
    mutable stores_issued : int;
    mutable head_stall_cycles : int;  (** cycles with zero issue, head blocked *)
    mutable operand_stall_cycles : int;
    mutable fu_stall_cycles : int;
    mutable mem_struct_stall_cycles : int;
    mutable frontend_empty_cycles : int;  (** nothing eligible to issue *)
    mutable dbb_full_stalls : int;
    mutable dbb_occupancy_sum : int;
    mutable dbb_samples : int;
    mutable dbb_max_occupancy : int;
    mutable icache_stall_cycles : int;
    mutable icache_misses : int;
    mutable runahead_prefetches : int;
    mutable icache_misses_in_shadow : int;
        (** I$ misses within the redirect shadow of a misprediction (§6.1) *)
    mutable site_stalls : int array;
        (** branch/resolve site id -> cycles the issue head stalled on it;
            indexed by site, grown on demand, 0 = never stalled. Use the
            accessors below — the arrays are replaced when they grow. *)
    mutable site_wait_execs : int array;  (** site id -> executions *)
    mutable site_wait_cycles : int array
        (** site id -> summed backlog cycles: how far behind the front end
            the machine was running when the site's condition finally
            became ready — an issue-backlog indicator, not a pure
            condition latency (queueing and the condition are confounded
            in an in-order backlog) *)
  }

val create : unit -> t

val retired : t -> int
(** Instructions that issued and were never squashed. *)

val ipc : t -> float

val mispredicts : t -> int
(** Direction mispredictions: branches + resolves (not returns). *)

val mppki : t -> float

val dbb_avg_occupancy : t -> float

val site_stall_cycles : t -> int -> int

val add_site_stall : t -> site:int -> unit

val add_site_wait : t -> site:int -> cycles:int -> unit

val site_wait_avg : t -> int -> float
(** Average backlog cycles for a site (0 if never executed). *)

val pp : Format.formatter -> t -> unit

val to_json : ?acct:Acct.t -> ?sampled:Smarts.estimate -> t -> Bv_obs.Json.t
(** Every counter of [t] (raw and derived: [retired], [ipc], [mppki],
    [dbb.avg_occupancy]) plus the per-site stall/wait tables, sorted by
    site id, stamped with {!Bv_obs.Json.schema_version}. The
    machine-readable mirror of [pp]. Passing the run's [acct] appends
    the [cpi_stack] and [top_branches] sections; passing an
    interval-sampled run's estimate appends the ["sampled"] section
    (extrapolated CPI / IPC / MPPKI with 95% confidence intervals). *)
