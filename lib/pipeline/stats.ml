type t =
  { mutable cycles : int;
    mutable fetched : int;
    mutable issued : int;
    mutable squashed_issued : int;
    mutable squashed_fetched : int;
    mutable predicts_fetched : int;
    mutable branch_execs : int;
    mutable branch_mispredicts : int;
    mutable resolve_execs : int;
    mutable resolve_mispredicts : int;
    mutable ret_execs : int;
    mutable ret_mispredicts : int;
    mutable redirects : int;
    mutable loads_issued : int;
    mutable stores_issued : int;
    mutable head_stall_cycles : int;
    mutable operand_stall_cycles : int;
    mutable fu_stall_cycles : int;
    mutable mem_struct_stall_cycles : int;
    mutable frontend_empty_cycles : int;
    mutable dbb_full_stalls : int;
    mutable dbb_occupancy_sum : int;
    mutable dbb_samples : int;
    mutable dbb_max_occupancy : int;
    mutable icache_stall_cycles : int;
    mutable icache_misses : int;
    mutable runahead_prefetches : int;
    mutable icache_misses_in_shadow : int;
    site_stalls : (int, int) Hashtbl.t;
    site_waits : (int, int * int) Hashtbl.t
  }

let create () =
  { cycles = 0;
    fetched = 0;
    issued = 0;
    squashed_issued = 0;
    squashed_fetched = 0;
    predicts_fetched = 0;
    branch_execs = 0;
    branch_mispredicts = 0;
    resolve_execs = 0;
    resolve_mispredicts = 0;
    ret_execs = 0;
    ret_mispredicts = 0;
    redirects = 0;
    loads_issued = 0;
    stores_issued = 0;
    head_stall_cycles = 0;
    operand_stall_cycles = 0;
    fu_stall_cycles = 0;
    mem_struct_stall_cycles = 0;
    frontend_empty_cycles = 0;
    dbb_full_stalls = 0;
    dbb_occupancy_sum = 0;
    dbb_samples = 0;
    dbb_max_occupancy = 0;
    icache_stall_cycles = 0;
    icache_misses = 0;
    runahead_prefetches = 0;
    icache_misses_in_shadow = 0;
    site_stalls = Hashtbl.create 64;
    site_waits = Hashtbl.create 64
  }

let retired t = t.issued - t.squashed_issued

let ipc t =
  if t.cycles = 0 then 0.0 else Float.of_int (retired t) /. Float.of_int t.cycles

let mispredicts t = t.branch_mispredicts + t.resolve_mispredicts

let mppki t =
  let r = retired t in
  if r = 0 then 0.0 else 1000.0 *. Float.of_int (mispredicts t) /. Float.of_int r

let dbb_avg_occupancy t =
  if t.dbb_samples = 0 then 0.0
  else Float.of_int t.dbb_occupancy_sum /. Float.of_int t.dbb_samples

let site_stall_cycles t site =
  Option.value (Hashtbl.find_opt t.site_stalls site) ~default:0

let add_site_stall t ~site =
  Hashtbl.replace t.site_stalls site (site_stall_cycles t site + 1)

let add_site_wait t ~site ~cycles =
  let n, sum = Option.value (Hashtbl.find_opt t.site_waits site) ~default:(0, 0) in
  Hashtbl.replace t.site_waits site (n + 1, sum + cycles)

let site_wait_avg t site =
  match Hashtbl.find_opt t.site_waits site with
  | Some (n, sum) when n > 0 -> Float.of_int sum /. Float.of_int n
  | _ -> 0.0

let pp ppf t =
  Format.fprintf ppf
    "@[<v>cycles %d, retired %d (IPC %.3f)@,\
     fetched %d, issued %d (%d squashed after issue, %d before), \
     predicts fetched %d@,\
     branches %d (%d miss), resolves %d (%d miss), rets %d (%d miss), \
     %.2f MPPKI, %d redirects@,\
     stalls: head %d (operand %d, fu %d, mem %d), empty frontend %d, \
     icache %d@,\
     icache: %d misses (%d in redirect shadow), %d runahead prefetches@,\
     dbb: avg occ %.2f, max %d, full-stalls %d@]"
    t.cycles (retired t) (ipc t) t.fetched t.issued t.squashed_issued
    t.squashed_fetched t.predicts_fetched t.branch_execs t.branch_mispredicts
    t.resolve_execs t.resolve_mispredicts t.ret_execs t.ret_mispredicts
    (mppki t) t.redirects t.head_stall_cycles t.operand_stall_cycles
    t.fu_stall_cycles t.mem_struct_stall_cycles t.frontend_empty_cycles
    t.icache_stall_cycles t.icache_misses t.icache_misses_in_shadow
    t.runahead_prefetches (dbb_avg_occupancy t) t.dbb_max_occupancy
    t.dbb_full_stalls

(* The JSON mirror of [pp]: every raw counter plus the derived rates, so
   machine consumers never have to re-derive or scrape text. Tables are
   sorted by site id for deterministic output. *)
let to_json t =
  let open Bv_obs.Json in
  let sorted tbl =
    List.sort (fun (a, _) (b, _) -> compare a b)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  let site_stalls =
    List.map
      (fun (site, cycles) ->
        Obj [ ("site", Int site); ("stall_cycles", Int cycles) ])
      (sorted t.site_stalls)
  in
  let site_waits =
    List.map
      (fun (site, (n, sum)) ->
        Obj
          [ ("site", Int site);
            ("execs", Int n);
            ("backlog_cycles", Int sum);
            ("avg_backlog", float (site_wait_avg t site))
          ])
      (sorted t.site_waits)
  in
  Obj
    [ ("cycles", Int t.cycles);
      ("fetched", Int t.fetched);
      ("issued", Int t.issued);
      ("retired", Int (retired t));
      ("squashed_issued", Int t.squashed_issued);
      ("squashed_fetched", Int t.squashed_fetched);
      ("predicts_fetched", Int t.predicts_fetched);
      ("branch_execs", Int t.branch_execs);
      ("branch_mispredicts", Int t.branch_mispredicts);
      ("resolve_execs", Int t.resolve_execs);
      ("resolve_mispredicts", Int t.resolve_mispredicts);
      ("ret_execs", Int t.ret_execs);
      ("ret_mispredicts", Int t.ret_mispredicts);
      ("mispredicts", Int (mispredicts t));
      ("redirects", Int t.redirects);
      ("loads_issued", Int t.loads_issued);
      ("stores_issued", Int t.stores_issued);
      ("ipc", float (ipc t));
      ("mppki", float (mppki t));
      ( "stalls",
        Obj
          [ ("head", Int t.head_stall_cycles);
            ("operand", Int t.operand_stall_cycles);
            ("fu", Int t.fu_stall_cycles);
            ("mem_struct", Int t.mem_struct_stall_cycles);
            ("frontend_empty", Int t.frontend_empty_cycles);
            ("icache", Int t.icache_stall_cycles)
          ] );
      ( "icache",
        Obj
          [ ("misses", Int t.icache_misses);
            ("misses_in_shadow", Int t.icache_misses_in_shadow);
            ("runahead_prefetches", Int t.runahead_prefetches)
          ] );
      ( "dbb",
        Obj
          [ ("full_stalls", Int t.dbb_full_stalls);
            ("occupancy_sum", Int t.dbb_occupancy_sum);
            ("samples", Int t.dbb_samples);
            ("avg_occupancy", float (dbb_avg_occupancy t));
            ("max_occupancy", Int t.dbb_max_occupancy)
          ] );
      ("site_stalls", List site_stalls);
      ("site_waits", List site_waits)
    ]
