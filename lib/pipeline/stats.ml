type t =
  { mutable cycles : int;
    mutable fetched : int;
    mutable issued : int;
    mutable squashed_issued : int;
    mutable squashed_fetched : int;
    mutable predicts_fetched : int;
    mutable branch_execs : int;
    mutable branch_mispredicts : int;
    mutable resolve_execs : int;
    mutable resolve_mispredicts : int;
    mutable ret_execs : int;
    mutable ret_mispredicts : int;
    mutable redirects : int;
    mutable loads_issued : int;
    mutable stores_issued : int;
    mutable head_stall_cycles : int;
    mutable operand_stall_cycles : int;
    mutable fu_stall_cycles : int;
    mutable mem_struct_stall_cycles : int;
    mutable frontend_empty_cycles : int;
    mutable dbb_full_stalls : int;
    mutable dbb_occupancy_sum : int;
    mutable dbb_samples : int;
    mutable dbb_max_occupancy : int;
    mutable icache_stall_cycles : int;
    mutable icache_misses : int;
    mutable runahead_prefetches : int;
    mutable icache_misses_in_shadow : int;
    (* Per-site tables as growable arrays indexed by site id: the hot
       recorders (called on every control-instruction issue) must not
       hash or allocate. A site is "present" when its counter is > 0,
       matching the old hash-table behaviour. *)
    mutable site_stalls : int array;
    mutable site_wait_execs : int array;
    mutable site_wait_cycles : int array
  }

let create () =
  { cycles = 0;
    fetched = 0;
    issued = 0;
    squashed_issued = 0;
    squashed_fetched = 0;
    predicts_fetched = 0;
    branch_execs = 0;
    branch_mispredicts = 0;
    resolve_execs = 0;
    resolve_mispredicts = 0;
    ret_execs = 0;
    ret_mispredicts = 0;
    redirects = 0;
    loads_issued = 0;
    stores_issued = 0;
    head_stall_cycles = 0;
    operand_stall_cycles = 0;
    fu_stall_cycles = 0;
    mem_struct_stall_cycles = 0;
    frontend_empty_cycles = 0;
    dbb_full_stalls = 0;
    dbb_occupancy_sum = 0;
    dbb_samples = 0;
    dbb_max_occupancy = 0;
    icache_stall_cycles = 0;
    icache_misses = 0;
    runahead_prefetches = 0;
    icache_misses_in_shadow = 0;
    site_stalls = Array.make 64 0;
    site_wait_execs = Array.make 64 0;
    site_wait_cycles = Array.make 64 0
  }

let grown a site =
  let n = Array.length a in
  if site < n then a
  else begin
    let rec cap c = if c > site then c else cap (2 * c) in
    let b = Array.make (cap (2 * n)) 0 in
    Array.blit a 0 b 0 n;
    b
  end

let retired t = t.issued - t.squashed_issued

let ipc t =
  if t.cycles = 0 then 0.0 else Float.of_int (retired t) /. Float.of_int t.cycles

let mispredicts t = t.branch_mispredicts + t.resolve_mispredicts

let mppki t =
  let r = retired t in
  if r = 0 then 0.0 else 1000.0 *. Float.of_int (mispredicts t) /. Float.of_int r

let dbb_avg_occupancy t =
  if t.dbb_samples = 0 then 0.0
  else Float.of_int t.dbb_occupancy_sum /. Float.of_int t.dbb_samples

let site_stall_cycles t site =
  if site >= 0 && site < Array.length t.site_stalls then t.site_stalls.(site)
  else 0

let add_site_stall t ~site =
  t.site_stalls <- grown t.site_stalls site;
  t.site_stalls.(site) <- t.site_stalls.(site) + 1

let add_site_wait t ~site ~cycles =
  t.site_wait_execs <- grown t.site_wait_execs site;
  t.site_wait_cycles <- grown t.site_wait_cycles site;
  t.site_wait_execs.(site) <- t.site_wait_execs.(site) + 1;
  t.site_wait_cycles.(site) <- t.site_wait_cycles.(site) + cycles

let site_wait_avg t site =
  if site >= 0
     && site < Array.length t.site_wait_execs
     && t.site_wait_execs.(site) > 0
  then
    Float.of_int t.site_wait_cycles.(site)
    /. Float.of_int t.site_wait_execs.(site)
  else 0.0

(* ---- field descriptors ------------------------------------------------ *)

(* Single source of truth for every scalar the model reports: [pp] and
   [to_json] are both derived from these lists, so a counter added here
   shows up in the text report and the JSON automatically, under the
   same name. List order is emission order (and therefore part of the
   JSON golden contract — append, don't reorder). *)
type field =
  | I of string * (t -> int)
  | F of string * (t -> float)

let scalar_fields =
  [ I ("cycles", fun t -> t.cycles);
    I ("fetched", fun t -> t.fetched);
    I ("issued", fun t -> t.issued);
    I ("retired", retired);
    I ("squashed_issued", fun t -> t.squashed_issued);
    I ("squashed_fetched", fun t -> t.squashed_fetched);
    I ("predicts_fetched", fun t -> t.predicts_fetched);
    I ("branch_execs", fun t -> t.branch_execs);
    I ("branch_mispredicts", fun t -> t.branch_mispredicts);
    I ("resolve_execs", fun t -> t.resolve_execs);
    I ("resolve_mispredicts", fun t -> t.resolve_mispredicts);
    I ("ret_execs", fun t -> t.ret_execs);
    I ("ret_mispredicts", fun t -> t.ret_mispredicts);
    I ("mispredicts", mispredicts);
    I ("redirects", fun t -> t.redirects);
    I ("loads_issued", fun t -> t.loads_issued);
    I ("stores_issued", fun t -> t.stores_issued);
    F ("ipc", ipc);
    F ("mppki", mppki)
  ]

let stall_fields =
  [ I ("head", fun t -> t.head_stall_cycles);
    I ("operand", fun t -> t.operand_stall_cycles);
    I ("fu", fun t -> t.fu_stall_cycles);
    I ("mem_struct", fun t -> t.mem_struct_stall_cycles);
    I ("frontend_empty", fun t -> t.frontend_empty_cycles);
    I ("icache", fun t -> t.icache_stall_cycles)
  ]

let icache_fields =
  [ I ("misses", fun t -> t.icache_misses);
    I ("misses_in_shadow", fun t -> t.icache_misses_in_shadow);
    I ("runahead_prefetches", fun t -> t.runahead_prefetches)
  ]

let dbb_fields =
  [ I ("full_stalls", fun t -> t.dbb_full_stalls);
    I ("occupancy_sum", fun t -> t.dbb_occupancy_sum);
    I ("samples", fun t -> t.dbb_samples);
    F ("avg_occupancy", dbb_avg_occupancy);
    I ("max_occupancy", fun t -> t.dbb_max_occupancy)
  ]

let pp ppf t =
  let pp_field ppf = function
    | I (name, get) -> Format.fprintf ppf "%s %d" name (get t)
    | F (name, get) -> Format.fprintf ppf "%s %.3f" name (get t)
  in
  let pp_fields =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
      pp_field
  in
  Format.fprintf ppf
    "@[<v>@[<hov 2>%a@]@,@[<hov 2>stalls: %a@]@,@[<hov 2>icache: %a@]@,\
     @[<hov 2>dbb: %a@]@]"
    pp_fields scalar_fields pp_fields stall_fields pp_fields icache_fields
    pp_fields dbb_fields

(* The JSON mirror of [pp]: every raw counter plus the derived rates, so
   machine consumers never have to re-derive or scrape text. Tables are
   sorted by site id for deterministic output. *)
let to_json ?acct ?sampled t =
  let open Bv_obs.Json in
  let field = function
    | I (name, get) -> (name, Int (get t))
    | F (name, get) -> (name, float (get t))
  in
  (* ascending array index = sorted by site id *)
  let site_stalls =
    List.concat
      (List.init (Array.length t.site_stalls) (fun site ->
           if t.site_stalls.(site) > 0 then
             [ Obj
                 [ ("site", Int site);
                   ("stall_cycles", Int t.site_stalls.(site))
                 ]
             ]
           else []))
  in
  let site_waits =
    List.concat
      (List.init (Array.length t.site_wait_execs) (fun site ->
           if t.site_wait_execs.(site) > 0 then
             [ Obj
                 [ ("site", Int site);
                   ("execs", Int t.site_wait_execs.(site));
                   ("backlog_cycles", Int t.site_wait_cycles.(site));
                   ("avg_backlog", float (site_wait_avg t site))
                 ]
             ]
           else []))
  in
  Obj
    (("schema_version", Int Bv_obs.Json.schema_version)
     :: List.map field scalar_fields
    @ [ ("stalls", Obj (List.map field stall_fields));
        ("icache", Obj (List.map field icache_fields));
        ("dbb", Obj (List.map field dbb_fields));
        ("site_stalls", List site_stalls);
        ("site_waits", List site_waits)
      ]
    @ (match acct with
      | None -> []
      | Some a ->
        [ ("cpi_stack", Acct.cpi_stack_json a);
          ("top_branches", Acct.top_branches_json a)
        ])
    @
    (* interval-sampled runs: extrapolated metrics with 95% CIs *)
    match sampled with
    | None -> []
    | Some e -> [ ("sampled", Smarts.to_json e) ])
