open Bv_bpred
open Machine_state

(* ---- completion ------------------------------------------------------- *)

(* Train the predictor entry recorded at fetch; a [no_ctrl_meta] column
   (wrong-path resolve with an empty DBB, or a ret) has nothing to
   train. *)
let train_predictor st h ~mispredict =
  let meta = st.c_meta.(h) in
  if meta != no_ctrl_meta then begin
    let taken = st.c_actual.(h) = 1 in
    st.predictor.Predictor.update meta ~pc:st.c_meta_pc.(h) ~taken;
    if mispredict then st.predictor.Predictor.recover meta ~taken
  end

let handle_completion st h =
  let kind = st.c_kind.(h) in
  if kind = ck_none then begin
    if st.static.(st.i_pc.(h)).s_is_halt then st.finished <- true
  end
  else begin
    let mispredict = st.c_mispredict.(h) = 1 in
    if st.acct_enabled then
      Acct.record_branch st.acct ~pc:st.i_pc.(h) ~mispredict
        ~latency:(st.now - st.i_fetch_cycle.(h));
    if kind = ck_branch then begin
      st.stats.Stats.branch_execs <- st.stats.Stats.branch_execs + 1;
      train_predictor st h ~mispredict;
      if mispredict then begin
        st.stats.Stats.branch_mispredicts <-
          st.stats.Stats.branch_mispredicts + 1;
        Spec_state.mispredict_flush st h
      end
    end
    else if kind = ck_resolve then begin
      st.stats.Stats.resolve_execs <- st.stats.Stats.resolve_execs + 1;
      train_predictor st h ~mispredict;
      if mispredict then begin
        st.stats.Stats.resolve_mispredicts <-
          st.stats.Stats.resolve_mispredicts + 1;
        Spec_state.mispredict_flush st h
      end;
      (* Free after any flush: the restored DBB snapshot (taken at this
         resolve's fetch) still holds the entry, so freeing first would
         let the restore resurrect it. *)
      let slot = st.c_dbb_slot.(h) in
      if slot >= 0 then Dbb.free st.dbb slot
    end
    else begin
      st.stats.Stats.ret_execs <- st.stats.Stats.ret_execs + 1;
      if mispredict then begin
        st.stats.Stats.ret_mispredicts <- st.stats.Stats.ret_mispredicts + 1;
        Spec_state.mispredict_flush st h
      end
    end
  end

let process_completions st =
  (* [next_complete] is a lower bound on every pending complete_cycle, so
     below it there is nothing to do — no scan at all on the (frequent)
     cycles spent waiting out a long load. *)
  if st.now >= st.next_complete then begin
  (* Collect completing entries into the scratch buffer first: a flush
     inside [handle_completion] compacts [st.pending], so the deque cannot
     be iterated live. Entries land in seq order. *)
  st.comp_len <- 0;
  let next = ref max_int in
  for k = 0 to Ring.length st.pending - 1 do
    let h = Ring.get st.pending k in
    let cc = st.i_complete_cycle.(h) in
    if cc <= st.now then begin
      if st.comp_len = Array.length st.comp_buf then begin
        let n = Array.length st.comp_buf in
        let buf = Array.make (2 * n) 0 in
        Array.blit st.comp_buf 0 buf 0 n;
        st.comp_buf <- buf
      end;
      st.comp_buf.(st.comp_len) <- h;
      st.comp_len <- st.comp_len + 1
    end
    else if cc < !next then next := cc
  done;
  (* A flush below only removes entries, so the bound can only go stale
     low — which merely costs a scan, never skips a completion. *)
  st.next_complete <- !next;
  for k = 0 to st.comp_len - 1 do
    let h = st.comp_buf.(k) in
    if st.i_squashed.(h) = 0 then begin
      if st.events_enabled then
        st.on_event
          (Completed
             { cycle = st.now;
               seq = st.i_seq.(h);
               mispredicted =
                 st.c_kind.(h) <> ck_none && st.c_mispredict.(h) = 1
             });
      handle_completion st h
    end
  done;
  (* Flushes remove their squashed suffix from the deque synchronously, so
     when nothing completed this cycle the deque needs no compaction. *)
  if st.comp_len > 0 then begin
    Ring.filter_in_place st.pending ~keep:(fun h ->
        not (st.i_squashed.(h) = 1 || st.i_complete_cycle.(h) <= st.now));
    (* Every collected handle is now off the deque (completed ones by the
       compaction above, flush-squashed ones by the flush itself — which
       recycles only the squashed handles NOT collected here, so no row
       is freed twice). *)
    for k = 0 to st.comp_len - 1 do
      recycle_inflight st st.comp_buf.(k)
    done;
    st.comp_len <- 0
  end
  end
