open Bv_isa
open Bv_bpred
open Machine_state

(* ---- completion ------------------------------------------------------- *)

let handle_completion st inst =
  match inst.ctrl with
  | None -> if inst.instr = Instr.Halt then st.finished <- true
  | Some c ->
    (match c.kind with
    | Ck_branch ->
      st.stats.Stats.branch_execs <- st.stats.Stats.branch_execs + 1;
      (match c.meta with
      | Some meta ->
        st.predictor.Predictor.update meta ~pc:c.meta_pc ~taken:c.actual_taken;
        if c.mispredict then
          st.predictor.Predictor.recover meta ~taken:c.actual_taken
      | None -> ());
      if c.mispredict then begin
        st.stats.Stats.branch_mispredicts <-
          st.stats.Stats.branch_mispredicts + 1;
        Spec_state.mispredict_flush st inst c
      end
    | Ck_resolve ->
      st.stats.Stats.resolve_execs <- st.stats.Stats.resolve_execs + 1;
      (match c.meta with
      | Some meta ->
        st.predictor.Predictor.update meta ~pc:c.meta_pc ~taken:c.actual_taken;
        if c.mispredict then
          st.predictor.Predictor.recover meta ~taken:c.actual_taken
      | None -> ());
      if c.mispredict then begin
        st.stats.Stats.resolve_mispredicts <-
          st.stats.Stats.resolve_mispredicts + 1;
        Spec_state.mispredict_flush st inst c
      end;
      (* Free after any flush: the restored DBB snapshot (taken at this
         resolve's fetch) still holds the entry, so freeing first would
         let the restore resurrect it. *)
      if c.dbb_slot >= 0 then Dbb.free st.dbb c.dbb_slot
    | Ck_ret ->
      st.stats.Stats.ret_execs <- st.stats.Stats.ret_execs + 1;
      if c.mispredict then begin
        st.stats.Stats.ret_mispredicts <- st.stats.Stats.ret_mispredicts + 1;
        Spec_state.mispredict_flush st inst c
      end)

let process_completions st =
  merge_pending st;
  let completing =
    List.filter (fun i -> i.complete_cycle <= st.now) st.pending
  in
  List.iter
    (fun i ->
      if not i.squashed then begin
        st.on_event
          (Completed
             { cycle = st.now;
               seq = i.seq;
               mispredicted =
                 (match i.ctrl with Some c -> c.mispredict | None -> false)
             });
        handle_completion st i
      end)
    completing;
  merge_pending st;
  st.pending <-
    List.filter
      (fun i -> not (i.squashed || i.complete_cycle <= st.now))
      st.pending
