type record =
  { seq : int;
    pc : int;
    instr : Bv_isa.Instr.t;
    fetch : int;
    mutable issue : int option;
    mutable complete : int option;
    mutable squash : int option;
    mutable mispredicted : bool
  }

type t =
  { max_instructions : int;
    pid : int;
    process_name : string;
    records : (int, record) Hashtbl.t;
    mutable rev_order : int list;
    mutable rev_redirects : (int * int * int) list;
        (* cycle, after_seq, new_pc *)
    mutable dropped : int;
    mutable last_cycle : int
  }

let create ?(max_instructions = 100_000) ?(pid = 1)
    ?(process_name = "pipeline") () =
  { max_instructions;
    pid;
    process_name;
    records = Hashtbl.create 1024;
    rev_order = [];
    rev_redirects = [];
    dropped = 0;
    last_cycle = 0
  }

let on_event t ev =
  let touch cycle = if cycle > t.last_cycle then t.last_cycle <- cycle in
  match ev with
  | Machine.Fetched { cycle; seq; pc; instr } ->
    touch cycle;
    if Hashtbl.length t.records < t.max_instructions then begin
      Hashtbl.replace t.records seq
        { seq; pc; instr; fetch = cycle; issue = None; complete = None;
          squash = None; mispredicted = false
        };
      t.rev_order <- seq :: t.rev_order
    end
    else t.dropped <- t.dropped + 1
  | Machine.Issued { cycle; seq } ->
    touch cycle;
    (match Hashtbl.find_opt t.records seq with
    | Some r -> r.issue <- Some cycle
    | None -> ())
  | Machine.Completed { cycle; seq; mispredicted } ->
    touch cycle;
    (match Hashtbl.find_opt t.records seq with
    | Some r ->
      r.complete <- Some cycle;
      r.mispredicted <- mispredicted
    | None -> ())
  | Machine.Squashed { cycle; seq } ->
    touch cycle;
    (match Hashtbl.find_opt t.records seq with
    | Some r -> r.squash <- Some cycle
    | None -> ())
  | Machine.Redirected { cycle; after_seq; new_pc } ->
    touch cycle;
    t.rev_redirects <- (cycle, after_seq, new_pc) :: t.rev_redirects

let dropped t = t.dropped

let events t =
  let open Bv_obs in
  let tb = Trace_event.create () in
  Trace_event.set_process_name tb ~pid:t.pid t.process_name;
  (* Greedy lane packing: records arrive in fetch order, so the first lane
     whose previous span has ended can take the next instruction. *)
  let lane_ends : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let lanes_used = ref 0 in
  let assign_lane ~start ~stop =
    let rec go lane =
      if lane >= !lanes_used then begin
        incr lanes_used;
        Hashtbl.replace lane_ends lane stop;
        lane
      end
      else if Hashtbl.find lane_ends lane <= start then begin
        Hashtbl.replace lane_ends lane stop;
        lane
      end
      else go (lane + 1)
    in
    go 0
  in
  let us c = Float.of_int c in
  List.iter
    (fun seq ->
      let r = Hashtbl.find t.records seq in
      (* The instruction's lifetime: fetch to completion, or to the squash
         (or the end of the recorded stream for still-in-flight tails). *)
      let exec =
        match r.issue with
        | None -> None
        | Some issue ->
          let stop =
            match (r.complete, r.squash) with
            | Some c, _ -> c
            | None, Some s -> max s (issue + 1)
            | None, None -> max t.last_cycle (issue + 1)
          in
          Some (issue, max stop (issue + 1))
      in
      let stop =
        let basis =
          match (r.complete, r.squash) with
          | Some c, Some s -> max c s
          | Some c, None -> c
          | None, Some s -> s
          | None, None -> t.last_cycle
        in
        let basis =
          match exec with Some (_, e) -> max basis e | None -> basis
        in
        max basis (r.fetch + 1)
      in
      let tid = assign_lane ~start:r.fetch ~stop in
      let args =
        [ ("seq", Json.Int r.seq);
          ("pc", Json.Int r.pc);
          ("squashed", Json.Bool (r.squash <> None));
          ("mispredicted", Json.Bool r.mispredicted)
        ]
      in
      Trace_event.span tb
        ~name:(Bv_isa.Instr.to_string r.instr)
        ~cat:(if r.squash <> None then "wrong-path" else "instr")
        ~pid:t.pid ~tid ~ts:(us r.fetch)
        ~dur:(us (stop - r.fetch))
        ~args ();
      (match exec with
      | Some (issue, e) ->
        Trace_event.span tb ~name:"execute" ~cat:"execute" ~pid:t.pid ~tid
          ~ts:(us issue)
          ~dur:(us (e - issue))
          ~args:[ ("seq", Json.Int r.seq) ]
          ()
      | None -> ());
      match r.squash with
      | Some cycle ->
        Trace_event.instant tb ~name:"squash" ~cat:"flush" ~pid:t.pid ~tid
          ~ts:(us cycle)
          ~args:[ ("seq", Json.Int r.seq) ]
          ()
      | None -> ())
    (List.rev t.rev_order);
  List.iter
    (fun (cycle, after_seq, new_pc) ->
      Trace_event.instant tb ~name:"redirect" ~cat:"flush" ~scope:`Process
        ~pid:t.pid ~tid:0 ~ts:(us cycle)
        ~args:[ ("after_seq", Json.Int after_seq); ("new_pc", Json.Int new_pc) ]
        ())
    (List.rev t.rev_redirects);
  for lane = 0 to !lanes_used - 1 do
    Trace_event.set_thread_name tb ~pid:t.pid ~tid:lane
      (Printf.sprintf "lane %02d" lane)
  done;
  Trace_event.events tb

let to_json t = Bv_obs.Trace_event.document (events t)

(* One "C" counter sample per sampler window: a stacked track per CPI
   component, plotted at the window's start cycle. Windows sampled
   without accounting have no component deltas and contribute nothing. *)
let cpi_counter_events ?(pid = 1) ?(name = "cpi_stack") windows =
  let open Bv_obs in
  let tb = Trace_event.create () in
  List.iter
    (fun (w : Sampler.window) ->
      if Array.length w.Sampler.components > 0 then
        Trace_event.counter tb ~name ~pid
          ~ts:(Float.of_int w.Sampler.start_cycle)
          (Array.to_list
             (Array.mapi
                (fun i n -> (n, Float.of_int w.Sampler.components.(i)))
                Acct.component_names)))
    windows;
  Trace_event.events tb
