open Bv_isa

(* Top-down cycle accounting: every simulated cycle is charged to exactly
   one component, so the stack sums to total cycles by construction (the
   conservation invariant [check] asserts). The per-cycle classifier
   itself lives in {!Machine_state.account_cycle}; this module is the
   accumulator — flat int arrays indexed by component / pc, mirroring the
   [static_info] layout so the instrumented path allocates nothing. *)

let n_components = 9

(* Component indices. Priority order of the classifier, not emission
   order: issue beats recovery beats back-end stalls beats front-end
   starvation. *)
let c_base = 0
let c_fetch_starve = 1
let c_icache = 2
let c_redirect = 3
let c_recovery = 4
let c_dbb = 5
let c_fu = 6
let c_mem_struct = 7
let c_memory = 8

let component_names =
  [| "base";
     "fetch_starve";
     "icache";
     "redirect";
     "recovery";
     "dbb";
     "fu";
     "mem_struct";
     "memory"
  |]

(* Resolution-latency histogram: log2 buckets, bucket [k] covering
   latencies in [2^k, 2^(k+1)) with the last bucket open-ended. *)
let lat_buckets = 16

type t =
  { components : int array;  (* cycles charged, indexed by component *)
    execs : int array;  (* control-instruction completions, by pc *)
    mispredicts : int array;
    recovery_cycles : int array;  (* recovery cycles charged to this pc *)
    lat_sum : int array;  (* summed fetch-to-completion latency *)
    lat_hist : int array;  (* pc * lat_buckets + bucket *)
    code : Instr.t array
  }

let create code =
  let n = Array.length code in
  { components = Array.make n_components 0;
    execs = Array.make n 0;
    mispredicts = Array.make n 0;
    recovery_cycles = Array.make n 0;
    lat_sum = Array.make n 0;
    lat_hist = Array.make (n * lat_buckets) 0;
    code
  }

let length t = Array.length t.execs

let[@inline] bucket_of v =
  if v <= 1 then 0
  else begin
    let b = ref 0 in
    let v = ref v in
    while !v > 1 && !b < lat_buckets - 1 do
      incr b;
      v := !v lsr 1
    done;
    !b
  end

let[@inline] record_branch t ~pc ~mispredict ~latency =
  t.execs.(pc) <- t.execs.(pc) + 1;
  if mispredict then t.mispredicts.(pc) <- t.mispredicts.(pc) + 1;
  let lat = if latency < 0 then 0 else latency in
  t.lat_sum.(pc) <- t.lat_sum.(pc) + lat;
  let b = (pc * lat_buckets) + bucket_of lat in
  t.lat_hist.(b) <- t.lat_hist.(b) + 1

let[@inline] record_recovery t ~pc =
  t.recovery_cycles.(pc) <- t.recovery_cycles.(pc) + 1

let total t = Array.fold_left ( + ) 0 t.components

let check t ~cycles =
  let sum = total t in
  if sum <> cycles then
    invalid_arg
      (Printf.sprintf
         "Acct.check: conservation violated: components sum to %d, ran %d \
          cycles"
         sum cycles)

let merge a b =
  if length a <> length b then
    invalid_arg "Acct.merge: attribution tables cover different code";
  let add x y = Array.mapi (fun i v -> v + y.(i)) x in
  { components = add a.components b.components;
    execs = add a.execs b.execs;
    mispredicts = add a.mispredicts b.mispredicts;
    recovery_cycles = add a.recovery_cycles b.recovery_cycles;
    lat_sum = add a.lat_sum b.lat_sum;
    lat_hist = add a.lat_hist b.lat_hist;
    code = a.code
  }

let site_of instr =
  match instr with
  | Instr.Branch { id; _ } | Instr.Resolve { id; _ } -> id
  | _ -> -1

let kind_of instr =
  match instr with
  | Instr.Branch _ -> "branch"
  | Instr.Resolve _ -> "resolve"
  | Instr.Ret -> "ret"
  | _ -> "other"

type site_agg =
  { sa_site : int;
    sa_execs : int;
    sa_mispredicts : int;
    sa_recovery : int;
    sa_lat_sum : int
  }

let by_site t =
  (* site ids are small and dense (profiling-assigned); a growable array
     keyed by id keeps the output sorted for free *)
  let n = ref 8 in
  let tbl = ref (Array.make !n None) in
  for pc = 0 to length t - 1 do
    if t.execs.(pc) > 0 then begin
      let site = site_of t.code.(pc) in
      if site >= 0 then begin
        while site >= !n do
          let b = Array.make (2 * !n) None in
          Array.blit !tbl 0 b 0 !n;
          tbl := b;
          n := 2 * !n
        done;
        let prev =
          match !tbl.(site) with
          | Some a -> a
          | None ->
            { sa_site = site;
              sa_execs = 0;
              sa_mispredicts = 0;
              sa_recovery = 0;
              sa_lat_sum = 0
            }
        in
        !tbl.(site) <-
          Some
            { prev with
              sa_execs = prev.sa_execs + t.execs.(pc);
              sa_mispredicts = prev.sa_mispredicts + t.mispredicts.(pc);
              sa_recovery = prev.sa_recovery + t.recovery_cycles.(pc);
              sa_lat_sum = prev.sa_lat_sum + t.lat_sum.(pc)
            }
      end
    end
  done;
  Array.to_list !tbl |> List.filter_map Fun.id

(* ---- JSON ------------------------------------------------------------- *)

let cpi_stack_json t =
  let open Bv_obs.Json in
  Obj
    (("cycles", Int (total t))
    :: Array.to_list
         (Array.mapi (fun i n -> (n, Int t.components.(i))) component_names))

(* Branch pcs ranked by the recovery cycles they caused (the cost the
   transform is supposed to recover), then mispredicts, then executions. *)
let top_pcs t =
  let pcs = ref [] in
  for pc = length t - 1 downto 0 do
    if t.execs.(pc) > 0 then pcs := pc :: !pcs
  done;
  List.sort
    (fun a b ->
      let c = compare t.recovery_cycles.(b) t.recovery_cycles.(a) in
      if c <> 0 then c
      else
        let c = compare t.mispredicts.(b) t.mispredicts.(a) in
        if c <> 0 then c
        else
          let c = compare t.execs.(b) t.execs.(a) in
          if c <> 0 then c else compare a b)
    !pcs

let hist_json t pc =
  (* trim trailing empty buckets so the common short-latency case stays
     compact *)
  let last = ref (-1) in
  for b = 0 to lat_buckets - 1 do
    if t.lat_hist.((pc * lat_buckets) + b) > 0 then last := b
  done;
  Bv_obs.Json.List
    (List.init (!last + 1) (fun b ->
         Bv_obs.Json.Int t.lat_hist.((pc * lat_buckets) + b)))

let branch_json t pc =
  let open Bv_obs.Json in
  let execs = t.execs.(pc) in
  Obj
    [ ("pc", Int pc);
      ("instr", String (Instr.to_string t.code.(pc)));
      ("kind", String (kind_of t.code.(pc)));
      ("site", Int (site_of t.code.(pc)));
      ("execs", Int execs);
      ("mispredicts", Int t.mispredicts.(pc));
      ( "mispredict_rate",
        float
          (if execs = 0 then 0.0
           else Float.of_int t.mispredicts.(pc) /. Float.of_int execs) );
      ("recovery_cycles", Int t.recovery_cycles.(pc));
      ( "avg_resolution_latency",
        float
          (if execs = 0 then 0.0
           else Float.of_int t.lat_sum.(pc) /. Float.of_int execs) );
      ("latency_hist", hist_json t pc)
    ]

let top_branches_json ?(top = 10) t =
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  Bv_obs.Json.List (List.map (branch_json t) (take top (top_pcs t)))

let to_json ?top t =
  Bv_obs.Json.Obj
    [ ("cpi_stack", cpi_stack_json t);
      ("top_branches", top_branches_json ?top t)
    ]
