(** Block-compiled simulation fast path.

    Extends the per-pc {!Machine_state.static_info} tables to per-pc
    {e fused step closures} plus per-basic-block straight-line run
    lengths: decode, operand indexing and the ALU/compare dispatch are
    folded into a closure at machine-creation time, and the front end
    ({!Frontend.fetch_group}) dispatches a whole straight-line run with
    the per-instruction loop checks hoisted out. Control instructions,
    halts and line-crossing fetches bail to the interpreted
    {!Frontend.fetch_exec} slow path, as does the entire machine when
    any observer (events, cycle accounting, per-cycle hook) is attached.

    The contract is byte-identity: a compiled run reproduces every
    counter in {!Stats.t} and both architectural digests of the
    interpreted run exactly (asserted by the golden tests and the CI
    byte-identity leg). *)

val attach : Machine_state.t -> unit
(** Build the fused closure and run-length tables for the machine's code
    image and arm the compiled dispatch ([st.compiled <- true]). Must
    only be called when the machine has no observers attached
    ([events_enabled = false], [acct_enabled = false]); {!Machine.run}
    enforces this. *)

val skipped_empty : int ref
(** Cycles fast-forwarded through empty-frontend stalls (process-wide,
    for perf probes and microbenchmarks — not part of any Stats). *)

val skipped_parked : int ref
(** Cycles fast-forwarded through parked-head operand stalls. *)

val skip_stalls : Machine_state.t -> limit:int -> unit
(** Advance [st.now] in closed form through cycles where the machine
    provably only does bookkeeping — an empty fetch buffer behind a
    blocked front end, or a parked (operand-blocked) issue head with
    fetch also blocked (under runahead, additionally bounded by the
    earliest cycle the prefetch sweep could act). Applies the skipped
    cycles' counter updates exactly as the per-cycle loop would; never
    advances past [limit] ([max_cycles]), a pending completion, a
    fetch-stall expiry or a park expiry. Compiled (observer-free) runs
    only. *)
