(** Cycle-level in-order superscalar timing model.

    The model is functional-first: instructions are executed architecturally
    at fetch, in (speculative) fetch order, on a register file and memory
    with an undo log; the rest of the machine is pure timing. The front end
    follows branch predictions, so fetch genuinely walks wrong paths after a
    misprediction and the work issued there is counted (Figure 14's
    issued-instruction overhead). When a mispredicted branch, return or
    resolve executes, younger instructions are squashed, the speculative
    state is restored from the checkpoint taken at its fetch, and fetch is
    re-steered.

    Key structures (Table 1): a [fetch_buffer]-entry fetch buffer feeding a
    scoreboarded, strictly in-order issue stage (head-of-line blocking:
    issue stops at the first instruction that cannot issue), per-class
    functional units, an MSHR-limited non-blocking data cache, a store
    buffer, the branch predictor + BTB + RAS front end, and the paper's
    Decomposed Branch Buffer for predict/resolve pairs.

    The implementation is split into stage modules over a shared
    {!Machine_state.t} record — {!Frontend} (fetch/predict/steer),
    {!Scoreboard} (in-order issue), {!Backend} (completion/recovery
    dispatch) and {!Spec_state} (checkpoints, undo log, flush) — with
    [run] owning only the cycle loop. This module remains the sole
    public entry point. *)

open Bv_ir

type event = Machine_state.event =
  | Fetched of { cycle : int; seq : int; pc : int; instr : Bv_isa.Instr.t }
  | Issued of { cycle : int; seq : int }
  | Completed of { cycle : int; seq : int; mispredicted : bool }
  | Squashed of { cycle : int; seq : int }
  | Redirected of { cycle : int; after_seq : int; new_pc : int }
      (** pipeline flush: everything younger than [after_seq] died *)

type result =
  { stats : Stats.t;
    hierarchy : Bv_cache.Hierarchy.t;
    config : Config.t;
    finished : bool;  (** reached [Halt] (as opposed to a run limit) *)
    mem_digest : int;
    stores_retired : int;
    arch_digest : int
        (** comparable with {!Bv_exec.Interp.arch_digest} when [finished] *)
  }

val set_compile_default : bool -> unit
(** Set the process-wide default for block-compiled dispatch (initially
    on, unless the [BV_NO_COMPILE] environment variable is set to a
    non-empty value other than ["0"]). The CLI's [--no-compile] flag
    routes here. Per-run [?compile] overrides win. *)

val compile_enabled : unit -> bool
(** The current process-wide compiled-dispatch default. *)

val run :
  ?max_cycles:int ->
  ?max_retired:int ->
  ?on_event:(event -> unit) ->
  ?on_cycle:(cycle:int -> stats:Stats.t -> dbb_occupancy:int -> unit) ->
  ?acct:Acct.t ->
  ?compile:bool ->
  config:Config.t ->
  Layout.image ->
  result
(** Simulate until [Halt] retires or a limit is hit ([max_cycles] defaults
    to 1G, [max_retired] to no limit). [on_event] streams pipeline events
    (fetch/issue/complete/squash/redirect) — see {!Trace} for a renderer
    and {!Perfetto} for a Chrome-trace exporter. [on_cycle] fires once at
    the end of every simulated cycle with the live (mutable — read, don't
    write) counters and the DBB occupancy; {!Sampler.observe} slots in
    directly for interval telemetry. [acct] (create with {!Acct.create}
    on the image's code) turns on cycle accounting: every cycle is
    charged to one CPI-stack component and control instructions are
    attributed per pc; on return the conservation invariant
    {!Acct.check} has been asserted against the cycle count. Accounting
    never perturbs timing — results are bit-identical with it on or
    off.

    [compile] selects the block-compiled fast path (see {!Compile});
    default from {!set_compile_default}. Compiled runs are byte-identical
    to interpreted runs; attaching any observer ([on_event], [on_cycle]
    or [acct]) forces the interpreted path regardless. *)

(** {2 SMARTS-style interval sampling} *)

type sample_params =
  { sp_period : int;  (** instructions per sampling period *)
    sp_detail : int;  (** measured (detailed) instructions per period *)
    sp_warmup : int  (** detailed warmup instructions before each window *)
  }

val default_sample_params : sample_params
(** period 10k / detail 1k / warmup 300. *)

type sampled =
  { sam_result : result;
        (** Architectural results ([mem_digest], [stores_retired],
            [arch_digest], [finished]) are exact — identical to a full
            run's. [stats] covers only the detailed stretches; use
            [sam_estimate] for whole-run timing. *)
    sam_estimate : Smarts.estimate
  }

val run_sampled :
  ?max_cycles:int ->
  ?compile:bool ->
  ?params:sample_params ->
  config:Config.t ->
  Bv_ir.Layout.image ->
  sampled
(** Interval-sampled simulation: per period, [sp_warmup] instructions of
    detailed warmup, then a measured window of [sp_detail] instructions
    costed through pipeline drain, then functional fast-forward
    ({!Ffwd}) over the rest of the period with predictor, BTB, RAS, DBB
    and caches still being warmed. Setting [sp_detail >= sp_period]
    degenerates to an exact full detailed run (one window). *)

val result_to_json :
  ?acct:Acct.t -> ?sampled:Smarts.estimate -> result -> Bv_obs.Json.t
(** Configuration summary, {!Stats.to_json} and cache-hierarchy stats of a
    finished run; pass the run's [acct] to include its [cpi_stack] /
    [top_branches] sections, or a sampled run's estimate to include the
    ["sampled"] confidence-interval section. *)
