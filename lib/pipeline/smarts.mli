(** SMARTS-style interval-sampling statistics.

    Pure statistics over the per-window measurements collected by
    {!Machine.run_sampled}: normal-approximation 95% confidence
    intervals per metric (CPI, IPC, MPPKI) and whole-run extrapolation
    of total cycles from the window CPI mean. *)

type metric_ci =
  { mean : float;
    stderr : float;  (** s / sqrt(n); 0 when fewer than two samples *)
    ci_low : float;  (** mean - 1.96 * stderr *)
    ci_high : float;
    rel_err_pct : float  (** 100 * half-width / |mean|, 0 when mean = 0 *)
  }

val ci_of_samples : float list -> metric_ci
(** Mean and 95% CI of a sample list. Empty list gives all zeros; a
    single sample gives its value with zero spread. *)

type window =
  { w_start_instr : int;
        (** instruction index (detailed + fast-forwarded) at window start *)
    w_instrs : int;  (** detailed instructions measured, drain included *)
    w_cycles : int;  (** detailed cycles measured, drain included *)
    w_mispredicts : int
  }

type estimate =
  { est_windows : window list;
    est_total_instrs : int;  (** detailed retired + fast-forwarded *)
    est_detailed_instrs : int;
    est_detailed_cycles : int;  (** all detailed cycles, warmup included *)
    est_cpi : metric_ci;
    est_ipc : metric_ci;
    est_mppki : metric_ci;
    est_cycles : float;  (** [est_cpi.mean * est_total_instrs] *)
    est_coverage_pct : float  (** measured instrs / total instrs *)
  }

val estimate :
  windows:window list ->
  total_instrs:int ->
  detailed_instrs:int ->
  detailed_cycles:int ->
  estimate

val metric_json : metric_ci -> Bv_obs.Json.t

val to_json : estimate -> Bv_obs.Json.t
(** The ["sampled"] object appended to {!Stats.to_json} output. *)
