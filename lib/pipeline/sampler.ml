type window =
  { start_cycle : int;
    end_cycle : int;
    retired : int;
    mispredicts : int;
    icache_misses : int;
    ipc : float;
    mppki : float;
    dbb_avg_occupancy : float;
    components : int array  (* per-component cycle deltas; [||] w/o acct *)
  }

type t =
  { interval : int;
    acct : Acct.t option;
    mutable win_start : int;
    mutable retired_at_start : int;
    mutable mispredicts_at_start : int;
    mutable icache_misses_at_start : int;
    mutable components_at_start : int array;
    mutable dbb_sum : int;
    mutable dbb_count : int;
    mutable last_stats : Stats.t option;  (* for the partial tail window *)
    mutable rev_windows : window list
  }

let create ?(interval = 10_000) ?acct () =
  if interval <= 0 then invalid_arg "Sampler.create: interval must be > 0";
  { interval;
    acct;
    win_start = 0;
    retired_at_start = 0;
    mispredicts_at_start = 0;
    icache_misses_at_start = 0;
    components_at_start =
      (match acct with
      | Some a -> Array.copy a.Acct.components
      | None -> [||]);
    dbb_sum = 0;
    dbb_count = 0;
    last_stats = None;
    rev_windows = []
  }

let interval t = t.interval

let close t ~end_cycle ~(stats : Stats.t) =
  let cycles = end_cycle - t.win_start in
  if cycles > 0 then begin
    let retired = Stats.retired stats - t.retired_at_start in
    let mispredicts = Stats.mispredicts stats - t.mispredicts_at_start in
    let icache_misses = stats.Stats.icache_misses - t.icache_misses_at_start in
    let components =
      match t.acct with
      | Some a ->
        Array.mapi
          (fun i v -> v - t.components_at_start.(i))
          a.Acct.components
      | None -> [||]
    in
    let w =
      { start_cycle = t.win_start;
        end_cycle;
        retired;
        mispredicts;
        icache_misses;
        ipc = Float.of_int retired /. Float.of_int cycles;
        mppki =
          (if retired = 0 then 0.0
           else 1000.0 *. Float.of_int mispredicts /. Float.of_int retired);
        dbb_avg_occupancy =
          (if t.dbb_count = 0 then 0.0
           else Float.of_int t.dbb_sum /. Float.of_int t.dbb_count);
        components
      }
    in
    t.rev_windows <- w :: t.rev_windows;
    t.win_start <- end_cycle;
    t.retired_at_start <- Stats.retired stats;
    t.mispredicts_at_start <- Stats.mispredicts stats;
    t.icache_misses_at_start <- stats.Stats.icache_misses;
    (match t.acct with
    | Some a ->
      Array.blit a.Acct.components 0 t.components_at_start 0
        Acct.n_components
    | None -> ());
    t.dbb_sum <- 0;
    t.dbb_count <- 0
  end

let observe t ~cycle ~stats ~dbb_occupancy =
  t.dbb_sum <- t.dbb_sum + dbb_occupancy;
  t.dbb_count <- t.dbb_count + 1;
  t.last_stats <- Some stats;
  if cycle - t.win_start >= t.interval then close t ~end_cycle:cycle ~stats

let finish t =
  match t.last_stats with
  | Some stats when t.dbb_count > 0 ->
    close t ~end_cycle:(t.win_start + t.dbb_count) ~stats
  | _ -> ()

let windows t = List.rev t.rev_windows

let window_json w =
  let open Bv_obs.Json in
  Obj
    ([ ("start_cycle", Int w.start_cycle);
       ("end_cycle", Int w.end_cycle);
       ("retired", Int w.retired);
       ("mispredicts", Int w.mispredicts);
       ("icache_misses", Int w.icache_misses);
       ("ipc", float w.ipc);
       ("mppki", float w.mppki);
       ("dbb_avg_occupancy", float w.dbb_avg_occupancy)
     ]
    @
    if Array.length w.components = 0 then []
    else
      [ ( "cpi",
          Obj
            (Array.to_list
               (Array.mapi
                  (fun i n -> (n, Int w.components.(i)))
                  Acct.component_names)) )
      ])

let to_json t =
  finish t;
  let open Bv_obs.Json in
  Obj
    [ ("interval", Int t.interval);
      ("windows", List (List.map window_json (windows t)))
    ]
