open Bv_bpred

(* Struct-of-arrays storage: the DBB sits on the decomposed hot path
   (one allocate per predict, one claim + one free per resolve), so the
   slots are parallel arrays and the live set is tracked by counters —
   no slot records, no order list to cons/filter, no closures in
   snapshot/restore. A slot is empty iff its id is 0; ids are unique and
   strictly increasing, so "newest unclaimed" is the unclaimed live slot
   with the greatest id (the buffer is small enough that the O(entries)
   scan is cheaper than maintaining any order structure). *)
type t =
  { slot_id : int array;  (* 0 = empty, else unique allocation id *)
    slot_claimed : int array;  (* 0 / 1 *)
    slot_pc : int array;
    slot_taken : int array;  (* 0 / 1 *)
    slot_meta : Predictor.meta array;  (* stale when empty *)
    mutable live : int;
    mutable next : int;  (* ring allocation pointer *)
    mutable alloc_id : int
  }

(* A snapshot records which allocation occupied each slot and whether it
   was claimed. Restoring must never resurrect an entry freed since the
   snapshot (an older resolve may legitimately have completed in
   between), so restoration is an intersection keyed by allocation id:
   - same id still present: revert its claimed flag;
   - different/new id in the slot: allocated after the snapshot — drop it;
   - slot now empty: freed since — stays empty. *)
type snapshot =
  { snap_id : int array;
    snap_claimed : int array;
    snap_next : int
  }

let no_meta : Predictor.meta = [||]

let create ~entries =
  { slot_id = Array.make entries 0;
    slot_claimed = Array.make entries 0;
    slot_pc = Array.make entries 0;
    slot_taken = Array.make entries 0;
    slot_meta = Array.make entries no_meta;
    live = 0;
    next = 0;
    alloc_id = 0
  }

let capacity t = Array.length t.slot_id
let occupancy t = t.live
let is_full t = t.live = Array.length t.slot_id

let allocate t ~pc ~meta ~taken =
  if is_full t then -1
  else begin
    let n = Array.length t.slot_id in
    let idx = ref t.next in
    while t.slot_id.(!idx) <> 0 do
      idx := (!idx + 1) mod n
    done;
    let idx = !idx in
    t.alloc_id <- t.alloc_id + 1;
    t.slot_id.(idx) <- t.alloc_id;
    t.slot_claimed.(idx) <- 0;
    t.slot_pc.(idx) <- pc;
    t.slot_taken.(idx) <- (if taken then 1 else 0);
    t.slot_meta.(idx) <- meta;
    t.live <- t.live + 1;
    t.next <- (idx + 1) mod n;
    idx
  end

let claim_newest t =
  let best = ref (-1) and best_id = ref 0 in
  for i = 0 to Array.length t.slot_id - 1 do
    if t.slot_id.(i) > !best_id && t.slot_claimed.(i) = 0 then begin
      best := i;
      best_id := t.slot_id.(i)
    end
  done;
  if !best >= 0 then t.slot_claimed.(!best) <- 1;
  !best

let slot_pc t idx = t.slot_pc.(idx)
let slot_meta t idx = t.slot_meta.(idx)
let slot_taken t idx = t.slot_taken.(idx) = 1

let free t idx =
  if t.slot_id.(idx) <> 0 then begin
    t.slot_id.(idx) <- 0;
    t.slot_meta.(idx) <- no_meta;
    t.live <- t.live - 1
  end

let snapshot t =
  { snap_id = Array.copy t.slot_id;
    snap_claimed = Array.copy t.slot_claimed;
    snap_next = t.next
  }

let restore t snap =
  let live = ref 0 in
  for i = 0 to Array.length t.slot_id - 1 do
    if t.slot_id.(i) <> 0 then
      if t.slot_id.(i) = snap.snap_id.(i) then begin
        t.slot_claimed.(i) <- snap.snap_claimed.(i);
        incr live
      end
      else begin
        (* allocated after the snapshot — wrong path, drop *)
        t.slot_id.(i) <- 0;
        t.slot_meta.(i) <- no_meta
      end
  done;
  t.live <- !live;
  t.next <- snap.snap_next
