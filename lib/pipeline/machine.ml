open Bv_isa
open Bv_ir
open Bv_bpred
open Bv_cache

type ctrl_kind = Ck_branch | Ck_resolve | Ck_ret

type checkpoint =
  { ck_regs : int array;
    ck_undo : int;  (* absolute undo-log position *)
    ck_stack : int list;
    ck_ras_depth : int;
    ck_dbb : Dbb.snapshot;
    ck_halted : bool
  }

type ctrl =
  { kind : ctrl_kind;
    mispredict : bool;
    redirect_pc : int;  (* correct-path pc, used on mispredict *)
    checkpoint : checkpoint option;  (* present iff mispredict *)
    site : int;  (* branch/resolve site id, -1 otherwise *)
    meta : Predictor.meta option;
    meta_pc : int;  (* pc whose predictor entry to train *)
    actual_taken : bool;
    dbb_slot : int  (* -1 when none *)
  }

type inflight =
  { seq : int;
    pc : int;
    instr : Instr.t;
    fetch_cycle : int;
    fu : Instr.fu_class;
    dst : int;  (* register index, -1 if none *)
    uses : int list;
    addr : int;  (* effective address of loads/stores, captured at fetch *)
    mutable latency : int;
    mutable issue_cycle : int;  (* -1 before issue *)
    mutable complete_cycle : int;
    mutable squashed : bool;
    mutable prefetch_arrival : int;  (* -1: not prefetched *)
    ctrl : ctrl option
  }

type event =
  | Fetched of { cycle : int; seq : int; pc : int; instr : Instr.t }
  | Issued of { cycle : int; seq : int }
  | Completed of { cycle : int; seq : int; mispredicted : bool }
  | Squashed of { cycle : int; seq : int }
  | Redirected of { cycle : int; after_seq : int; new_pc : int }

type result =
  { stats : Stats.t;
    hierarchy : Hierarchy.t;
    config : Config.t;
    finished : bool;
    mem_digest : int;
    stores_retired : int;
    arch_digest : int
  }

(* Fixed-capacity ring used as the fetch buffer: push at tail, pop at head,
   truncate at tail on flush. *)
module Ring = struct
  type 'a t =
    { buf : 'a option array;
      mutable head : int;
      mutable len : int
    }

  let create capacity = { buf = Array.make capacity None; head = 0; len = 0 }
  let length t = t.len
  let capacity t = Array.length t.buf
  let is_full t = t.len = capacity t

  let push t x =
    assert (not (is_full t));
    t.buf.((t.head + t.len) mod capacity t) <- Some x;
    t.len <- t.len + 1

  let peek t = if t.len = 0 then None else t.buf.(t.head)

  let pop t =
    match peek t with
    | None -> None
    | some ->
      t.buf.(t.head) <- None;
      t.head <- (t.head + 1) mod capacity t;
      t.len <- t.len - 1;
      some

  let iter t f =
    for k = 0 to t.len - 1 do
      match t.buf.((t.head + k) mod capacity t) with
      | Some x -> f x
      | None -> ()
    done

  (* Remove tail entries failing [keep]; returns the removed entries. *)
  let truncate_tail t ~keep =
    let removed = ref [] in
    let continue = ref true in
    while t.len > 0 && !continue do
      let tail_idx = (t.head + t.len - 1) mod capacity t in
      match t.buf.(tail_idx) with
      | Some x when not (keep x) ->
        removed := x :: !removed;
        t.buf.(tail_idx) <- None;
        t.len <- t.len - 1
      | _ -> continue := false
    done;
    !removed
end

let fnv_fold acc v = (acc lxor v) * 0x100000001B3 land max_int

let run ?(max_cycles = 1_000_000_000) ?(max_retired = max_int)
    ?(on_event = fun (_ : event) -> ())
    ?(on_cycle = fun ~cycle:(_ : int) ~stats:(_ : Stats.t)
                     ~dbb_occupancy:(_ : int) -> ()) ~config image =
  let cfg = config in
  let code = image.Layout.code in
  let code_len = Array.length code in
  let stats = Stats.create () in
  let hier = Hierarchy.create ~config:cfg.Config.cache () in
  let predictor = Kind.create cfg.Config.predictor in
  let btb = Btb.create ~entries:cfg.Config.btb_entries () in
  let ras = Ras.create ~entries:cfg.Config.ras_entries () in
  let dbb = Dbb.create ~entries:cfg.Config.dbb_entries in
  (* --- speculative architectural state -------------------------------- *)
  let regs = Array.make Reg.count 0 in
  let mem = Program.initial_memory image.Layout.program in
  let mem_words = Array.length mem in
  let call_stack = ref [] in
  let spec_halted = ref false in
  (* Undo log for speculative stores; positions are absolute counts. *)
  let log_addr = ref (Array.make 1024 0) in
  let log_val = ref (Array.make 1024 0) in
  let log_len = ref 0 in
  let log_base = ref 0 in
  let live_checkpoints = ref 0 in
  let log_push w old =
    if !log_len = Array.length !log_addr then begin
      let grow a = Array.append a (Array.make (Array.length a) 0) in
      log_addr := grow !log_addr;
      log_val := grow !log_val
    end;
    !log_addr.(!log_len) <- w;
    !log_val.(!log_len) <- old;
    incr log_len
  in
  let log_undo_to abs_pos =
    while !log_base + !log_len > abs_pos do
      decr log_len;
      mem.(!log_addr.(!log_len)) <- !log_val.(!log_len)
    done
  in
  let log_trim () =
    if !live_checkpoints = 0 then begin
      log_base := !log_base + !log_len;
      log_len := 0
    end
  in
  (* --- timing state ---------------------------------------------------- *)
  let now = ref 0 in
  let fbuf : inflight Ring.t = Ring.create cfg.Config.fetch_buffer in
  (* Issued-but-incomplete instructions, kept in seq order; appends go to
     the reversed tail accumulator. *)
  let pending = ref [] in
  let pending_tail = ref [] in
  let merge_pending () =
    if !pending_tail <> [] then begin
      pending := !pending @ List.rev !pending_tail;
      pending_tail := []
    end
  in
  let ready = Array.make Reg.count 0 in
  let fetch_pc = ref image.Layout.entry in
  let fetch_stall_until = ref 0 in
  let current_line = ref (-1) in
  let mshr_release = ref [] in
  let store_release = ref [] in
  let seq = ref 0 in
  let finished = ref false in
  let stores_retired = ref 0 in
  let shadow_fetches = ref 0 in
  let line_of pc = pc * 4 / cfg.Config.cache.Hierarchy.line_bytes in
  let operand_value = function
    | Instr.Reg r -> regs.(Reg.index r)
    | Instr.Imm i -> i
  in
  (* Wrong-path-safe memory helpers. *)
  let spec_load ~addr =
    if addr land 7 <> 0 || addr < 0 || addr / 8 >= mem_words then 0
    else mem.(addr / 8)
  in
  let spec_store ~addr v =
    if addr land 7 = 0 && addr >= 0 && addr / 8 < mem_words then begin
      let w = addr / 8 in
      log_push w mem.(w);
      mem.(w) <- v
    end
  in
  let make_checkpoint () =
    incr live_checkpoints;
    { ck_regs = Array.copy regs;
      ck_undo = !log_base + !log_len;
      ck_stack = !call_stack;
      ck_ras_depth = Ras.depth ras;
      ck_dbb = Dbb.snapshot dbb;
      ck_halted = !spec_halted
    }
  in
  let release_checkpoint inst =
    match inst.ctrl with
    | Some { checkpoint = Some _; _ } -> decr live_checkpoints
    | _ -> ()
  in
  (* What will the decomposed branch actually do? Interpret the fall-through
     resolution block (condition slice + speculative loads; no stores) on
     scratch registers up to its resolve. Oracle hint for the perfect
     predictor; real predictors ignore it. *)
  let predict_outcome_oracle pc =
    let scratch = Array.copy regs in
    let value = function
      | Instr.Reg r -> scratch.(Reg.index r)
      | Instr.Imm i -> i
    in
    let rec walk pc steps =
      if steps > 256 || pc < 0 || pc >= code_len then false
      else
        match code.(pc) with
        | Instr.Resolve { on; src; _ } -> (scratch.(Reg.index src) <> 0) = on
        | Instr.Alu { op; dst; src1; src2 }
        | Instr.Fpu { op; dst; src1; src2 } ->
          scratch.(Reg.index dst) <-
            Instr.eval_alu op scratch.(Reg.index src1) (value src2);
          walk (pc + 1) (steps + 1)
        | Instr.Mov { dst; src } ->
          scratch.(Reg.index dst) <- value src;
          walk (pc + 1) (steps + 1)
        | Instr.Cmp { op; dst; src1; src2 } ->
          scratch.(Reg.index dst) <-
            Bool.to_int
              (Instr.eval_cmp op scratch.(Reg.index src1) (value src2));
          walk (pc + 1) (steps + 1)
        | Instr.Cmov { on; cond; dst; src } ->
          if (scratch.(Reg.index cond) <> 0) = on then
            scratch.(Reg.index dst) <- value src;
          walk (pc + 1) (steps + 1)
        | Instr.Load { dst; base; offset; _ } ->
          scratch.(Reg.index dst) <-
            spec_load ~addr:(scratch.(Reg.index base) + offset);
          walk (pc + 1) (steps + 1)
        | Instr.Jump l -> walk (Layout.resolve image l) (steps + 1)
        | Instr.Nop -> walk (pc + 1) (steps + 1)
        | Instr.Store _ | Instr.Branch _ | Instr.Call _ | Instr.Ret
        | Instr.Predict _ | Instr.Halt ->
          false
    in
    walk (pc + 1) 0
  in
  let enqueue ?(latency = 1) ?(addr = 0) ?ctrl pc instr =
    let dst =
      match Instr.defs instr with r :: _ -> Reg.index r | [] -> -1
    in
    let inst =
      { seq = !seq;
        pc;
        instr;
        fetch_cycle = !now;
        fu = Instr.fu_class instr;
        dst;
        uses = List.map Reg.index (Instr.uses instr);
        addr;
        latency;
        issue_cycle = -1;
        complete_cycle = max_int;
        squashed = false;
        prefetch_arrival = -1;
        ctrl
      }
    in
    incr seq;
    Ring.push fbuf inst;
    on_event (Fetched { cycle = !now; seq = inst.seq; pc; instr });
    stats.Stats.fetched <- stats.Stats.fetched + 1;
    if !shadow_fetches > 0 then decr shadow_fetches
  in
  (* Shared timing for taken control transfers at fetch. *)
  let steer_taken ~pc ~target =
    let bubble =
      match Btb.lookup btb ~pc with
      | Some t when t = target -> cfg.Config.taken_bubble
      | Some _ | None ->
        Btb.update btb ~pc ~target;
        cfg.Config.taken_bubble + cfg.Config.btb_miss_penalty
    in
    fetch_pc := target;
    fetch_stall_until := !now + bubble;
    current_line := -1
  in
  (* Fetch one instruction at [pc]; returns false to end this cycle's
     fetch group. *)
  let fetch_exec pc =
    let next = pc + 1 in
    match code.(pc) with
    | Instr.Nop as i ->
      enqueue pc i;
      fetch_pc := next;
      true
    | Instr.Alu { op; dst; src1; src2 } as i ->
      regs.(Reg.index dst) <-
        Instr.eval_alu op regs.(Reg.index src1) (operand_value src2);
      enqueue
        ~latency:
          (if op = Instr.Mul then cfg.Config.mul_latency
           else cfg.Config.alu_latency)
        pc i;
      fetch_pc := next;
      true
    | Instr.Fpu { op; dst; src1; src2 } as i ->
      regs.(Reg.index dst) <-
        Instr.eval_alu op regs.(Reg.index src1) (operand_value src2);
      enqueue ~latency:cfg.Config.fpu_latency pc i;
      fetch_pc := next;
      true
    | Instr.Mov { dst; src } as i ->
      regs.(Reg.index dst) <- operand_value src;
      enqueue pc i;
      fetch_pc := next;
      true
    | Instr.Cmp { op; dst; src1; src2 } as i ->
      regs.(Reg.index dst) <-
        Bool.to_int
          (Instr.eval_cmp op regs.(Reg.index src1) (operand_value src2));
      enqueue pc i;
      fetch_pc := next;
      true
    | Instr.Cmov { on; cond; dst; src } as i ->
      if (regs.(Reg.index cond) <> 0) = on then
        regs.(Reg.index dst) <- operand_value src;
      enqueue pc i;
      fetch_pc := next;
      true
    | Instr.Load { dst; base; offset; _ } as i ->
      let addr = regs.(Reg.index base) + offset in
      regs.(Reg.index dst) <- spec_load ~addr;
      enqueue ~addr pc i;
      fetch_pc := next;
      true
    | Instr.Store { src; base; offset } as i ->
      let addr = regs.(Reg.index base) + offset in
      spec_store ~addr regs.(Reg.index src);
      enqueue ~addr pc i;
      fetch_pc := next;
      true
    | Instr.Jump target as i ->
      enqueue pc i;
      steer_taken ~pc ~target:(Layout.resolve image target);
      false
    | Instr.Call target as i ->
      call_stack := next :: !call_stack;
      Ras.push ras next;
      enqueue pc i;
      steer_taken ~pc ~target:(Layout.resolve image target);
      false
    | Instr.Ret as i ->
      (match !call_stack with
      | [] ->
        (* wrong-path underflow: park fetch until the flush arrives *)
        fetch_pc := -1;
        false
      | ra :: rest ->
        call_stack := rest;
        let predicted = Option.value (Ras.pop ras) ~default:ra in
        let mispredict = predicted <> ra in
        let checkpoint =
          if mispredict then Some (make_checkpoint ()) else None
        in
        let ctrl =
          { kind = Ck_ret;
            mispredict;
            redirect_pc = ra;
            checkpoint;
            site = -1;
            meta = None;
            meta_pc = pc;
            actual_taken = true;
            dbb_slot = -1
          }
        in
        enqueue ~ctrl pc i;
        steer_taken ~pc ~target:predicted;
        false)
    | Instr.Branch { on; src; target; id } as i ->
      let actual_taken = (regs.(Reg.index src) <> 0) = on in
      let pred, meta =
        predictor.Predictor.predict ~pc ~outcome:actual_taken
      in
      let target_pc = Layout.resolve image target in
      let mispredict = pred <> actual_taken in
      let checkpoint = if mispredict then Some (make_checkpoint ()) else None in
      let ctrl =
        { kind = Ck_branch;
          mispredict;
          redirect_pc = (if actual_taken then target_pc else next);
          checkpoint;
          site = id;
          meta = Some meta;
          meta_pc = pc;
          actual_taken;
          dbb_slot = -1
        }
      in
      enqueue ~ctrl pc i;
      if pred then begin
        steer_taken ~pc ~target:target_pc;
        false
      end
      else begin
        fetch_pc := next;
        true
      end
    | Instr.Predict { target; id = _ } ->
      if Dbb.is_full dbb then begin
        stats.Stats.dbb_full_stalls <- stats.Stats.dbb_full_stalls + 1;
        fetch_stall_until := !now + 1;
        false
      end
      else begin
        let outcome = predict_outcome_oracle pc in
        let pred, meta = predictor.Predictor.predict ~pc ~outcome in
        (match
           Dbb.allocate dbb
             { Dbb.predict_pc = pc; meta; predicted_taken = pred }
         with
        | None -> assert false
        | Some _slot -> ());
        stats.Stats.predicts_fetched <- stats.Stats.predicts_fetched + 1;
        stats.Stats.dbb_max_occupancy <-
          max stats.Stats.dbb_max_occupancy (Dbb.occupancy dbb);
        (* The predict is dropped after steering: no fetch-buffer entry,
           no issue slot. *)
        if pred then begin
          steer_taken ~pc ~target:(Layout.resolve image target);
          false
        end
        else begin
          fetch_pc := next;
          true
        end
      end
    | Instr.Resolve { on; src; target; predicted_taken; id } as i ->
      let actual_taken = (regs.(Reg.index src) <> 0) = on in
      let mispredict = actual_taken <> predicted_taken in
      let slot, meta, meta_pc =
        match Dbb.claim_newest dbb with
        | Some (slot, entry) ->
          (slot, Some entry.Dbb.meta, entry.Dbb.predict_pc)
        | None -> (-1, None, pc)
      in
      let checkpoint = if mispredict then Some (make_checkpoint ()) else None in
      let ctrl =
        { kind = Ck_resolve;
          mispredict;
          redirect_pc =
            (if mispredict then Layout.resolve image target else next);
          checkpoint;
          site = id;
          meta;
          meta_pc;
          actual_taken;
          dbb_slot = slot
        }
      in
      enqueue ~ctrl pc i;
      (* always predicted not-taken by the front end *)
      fetch_pc := next;
      true
    | Instr.Halt as i ->
      spec_halted := true;
      enqueue pc i;
      false
  in
  let fetch_one () =
    let pc = !fetch_pc in
    if pc < 0 || pc >= code_len then false
    else begin
      let line = line_of pc in
      if line <> !current_line then begin
        let lat, _lvl = Hierarchy.inst_access hier ~addr:(pc * 4) in
        current_line := line;
        if lat > 0 then begin
          stats.Stats.icache_misses <- stats.Stats.icache_misses + 1;
          if !shadow_fetches > 0 then
            stats.Stats.icache_misses_in_shadow <-
              stats.Stats.icache_misses_in_shadow + 1;
          stats.Stats.icache_stall_cycles <-
            stats.Stats.icache_stall_cycles + lat;
          fetch_stall_until := !now + lat;
          false
        end
        else fetch_exec pc
      end
      else fetch_exec pc
    end
  in
  (* ---- misprediction flush -------------------------------------------- *)
  let rebuild_scoreboard () =
    Array.fill ready 0 Reg.count 0;
    List.iter
      (fun inst ->
        if (not inst.squashed) && inst.dst >= 0 then
          ready.(inst.dst) <- max ready.(inst.dst) inst.complete_cycle)
      !pending
  in
  let flush ~from_seq ~checkpoint ~new_pc =
    stats.Stats.redirects <- stats.Stats.redirects + 1;
    Array.blit checkpoint.ck_regs 0 regs 0 Reg.count;
    log_undo_to checkpoint.ck_undo;
    call_stack := checkpoint.ck_stack;
    (* RAS repair: recover the stack depth (entries pushed on the wrong
       path are popped; deeper corruption is accepted, as in hardware). *)
    while Ras.depth ras > checkpoint.ck_ras_depth do
      ignore (Ras.pop ras)
    done;
    Dbb.restore dbb checkpoint.ck_dbb;
    spec_halted := checkpoint.ck_halted;
    on_event (Redirected { cycle = !now; after_seq = from_seq; new_pc });
    let removed = Ring.truncate_tail fbuf ~keep:(fun i -> i.seq <= from_seq) in
    List.iter
      (fun i ->
        stats.Stats.squashed_fetched <- stats.Stats.squashed_fetched + 1;
        on_event (Squashed { cycle = !now; seq = i.seq });
        release_checkpoint i)
      removed;
    merge_pending ();
    List.iter
      (fun i ->
        if (not i.squashed) && i.seq > from_seq then begin
          i.squashed <- true;
          on_event (Squashed { cycle = !now; seq = i.seq });
          stats.Stats.squashed_issued <- stats.Stats.squashed_issued + 1;
          (match i.instr with
          | Instr.Store _ -> decr stores_retired
          | _ -> ());
          release_checkpoint i
        end)
      !pending;
    pending := List.filter (fun i -> not i.squashed) !pending;
    rebuild_scoreboard ();
    fetch_pc := new_pc;
    fetch_stall_until := !now + 1;
    current_line := -1;
    shadow_fetches := 16
  in
  (* ---- completion ------------------------------------------------------ *)
  let mispredict_flush inst c =
    match c.checkpoint with
    | Some ck ->
      decr live_checkpoints;
      flush ~from_seq:inst.seq ~checkpoint:ck ~new_pc:c.redirect_pc
    | None -> assert false
  in
  let handle_completion inst =
    match inst.ctrl with
    | None -> if inst.instr = Instr.Halt then finished := true
    | Some c ->
      (match c.kind with
      | Ck_branch ->
        stats.Stats.branch_execs <- stats.Stats.branch_execs + 1;
        (match c.meta with
        | Some meta ->
          predictor.Predictor.update meta ~pc:c.meta_pc ~taken:c.actual_taken;
          if c.mispredict then
            predictor.Predictor.recover meta ~taken:c.actual_taken
        | None -> ());
        if c.mispredict then begin
          stats.Stats.branch_mispredicts <-
            stats.Stats.branch_mispredicts + 1;
          mispredict_flush inst c
        end
      | Ck_resolve ->
        stats.Stats.resolve_execs <- stats.Stats.resolve_execs + 1;
        (match c.meta with
        | Some meta ->
          predictor.Predictor.update meta ~pc:c.meta_pc ~taken:c.actual_taken;
          if c.mispredict then
            predictor.Predictor.recover meta ~taken:c.actual_taken
        | None -> ());
        if c.mispredict then begin
          stats.Stats.resolve_mispredicts <-
            stats.Stats.resolve_mispredicts + 1;
          mispredict_flush inst c
        end;
        (* Free after any flush: the restored DBB snapshot (taken at this
           resolve's fetch) still holds the entry, so freeing first would
           let the restore resurrect it. *)
        if c.dbb_slot >= 0 then Dbb.free dbb c.dbb_slot
      | Ck_ret ->
        stats.Stats.ret_execs <- stats.Stats.ret_execs + 1;
        if c.mispredict then begin
          stats.Stats.ret_mispredicts <- stats.Stats.ret_mispredicts + 1;
          mispredict_flush inst c
        end)
  in
  let process_completions () =
    merge_pending ();
    let completing =
      List.filter (fun i -> i.complete_cycle <= !now) !pending
    in
    List.iter
      (fun i ->
        if not i.squashed then begin
          on_event
            (Completed
               { cycle = !now;
                 seq = i.seq;
                 mispredicted =
                   (match i.ctrl with
                   | Some c -> c.mispredict
                   | None -> false)
               });
          handle_completion i
        end)
      completing;
    merge_pending ();
    pending :=
      List.filter
        (fun i -> not (i.squashed || i.complete_cycle <= !now))
        !pending
  in
  (* ---- issue ----------------------------------------------------------- *)
  let int_left = ref 0
  and fp_left = ref 0
  and mem_left = ref 0
  and br_left = ref 0
  and none_left = ref 0 in
  let issue () =
    int_left := cfg.Config.int_units;
    fp_left := cfg.Config.fp_units;
    mem_left := cfg.Config.mem_units;
    br_left := cfg.Config.branch_units;
    none_left := max_int;
    let issued_now = ref 0 in
    mshr_release := List.filter (fun c -> c > !now) !mshr_release;
    store_release := List.filter (fun c -> c > !now) !store_release;
    let blocked = ref false in
    while (not !blocked) && !issued_now < cfg.Config.width do
      match Ring.peek fbuf with
      | None ->
        if !issued_now = 0 then
          stats.Stats.frontend_empty_cycles <-
            stats.Stats.frontend_empty_cycles + 1;
        blocked := true
      | Some inst ->
        if inst.fetch_cycle + cfg.Config.front_stages > !now then begin
          if !issued_now = 0 then
            stats.Stats.frontend_empty_cycles <-
              stats.Stats.frontend_empty_cycles + 1;
          blocked := true
        end
        else begin
          let operands_ready =
            List.for_all (fun r -> ready.(r) <= !now) inst.uses
          in
          let fu_slot =
            match inst.fu with
            | Instr.Fu_int -> int_left
            | Instr.Fu_fp -> fp_left
            | Instr.Fu_mem -> mem_left
            | Instr.Fu_branch -> br_left
            | Instr.Fu_none -> none_left
          in
          let fu_ok = !fu_slot > 0 in
          let mem_ok =
            match inst.instr with
            | Instr.Load _ ->
              Sa_cache.probe (Hierarchy.l1d hier) ~addr:inst.addr
              || List.length !mshr_release < cfg.Config.mshrs
            | Instr.Store _ ->
              List.length !store_release < cfg.Config.store_buffer
            | _ -> true
          in
          if operands_ready && fu_ok && mem_ok then begin
            ignore (Ring.pop fbuf);
            if inst.fu <> Instr.Fu_none then decr fu_slot;
            inst.issue_cycle <- !now;
            (match inst.ctrl with
            | Some c when c.site >= 0 ->
              (* how long the condition kept this control instruction from
                 resolving, past the front-end minimum: the measured
                 per-site ASPCB (operand readiness, not queueing delay) *)
              let readiness =
                List.fold_left (fun a u -> max a ready.(u)) 0 inst.uses
              in
              Stats.add_site_wait stats ~site:c.site
                ~cycles:
                  (max 0
                     (readiness - (inst.fetch_cycle + cfg.Config.front_stages)))
            | _ -> ());
            let latency =
              match inst.instr with
              | Instr.Load _ ->
                let lat, _ =
                  Hierarchy.data_access hier ~addr:inst.addr ~write:false
                in
                (* a runahead prefetch in flight caps the latency at its
                   arrival (the fill was already initiated) *)
                let lat =
                  if inst.prefetch_arrival >= 0 then
                    max cfg.Config.cache.Hierarchy.l1_latency
                      (min lat (inst.prefetch_arrival - !now))
                  else lat
                in
                if lat > cfg.Config.cache.Hierarchy.l1_latency then
                  mshr_release := (!now + lat) :: !mshr_release;
                stats.Stats.loads_issued <- stats.Stats.loads_issued + 1;
                lat
              | Instr.Store _ ->
                let lat, _ =
                  Hierarchy.data_access hier ~addr:inst.addr ~write:true
                in
                store_release := (!now + lat) :: !store_release;
                stats.Stats.stores_issued <- stats.Stats.stores_issued + 1;
                incr stores_retired;
                1
              | _ -> inst.latency
            in
            inst.latency <- latency;
            inst.complete_cycle <- !now + latency;
            if inst.dst >= 0 then
              ready.(inst.dst) <- max ready.(inst.dst) inst.complete_cycle;
            pending_tail := inst :: !pending_tail;
            on_event (Issued { cycle = !now; seq = inst.seq });
            stats.Stats.issued <- stats.Stats.issued + 1;
            incr issued_now
          end
          else begin
            if !issued_now = 0 then begin
              stats.Stats.head_stall_cycles <-
                stats.Stats.head_stall_cycles + 1;
              if not operands_ready then begin
                stats.Stats.operand_stall_cycles <-
                  stats.Stats.operand_stall_cycles + 1;
                match inst.ctrl with
                | Some c when c.site >= 0 ->
                  Stats.add_site_stall stats ~site:c.site
                | _ -> ()
              end
              else if not fu_ok then
                stats.Stats.fu_stall_cycles <-
                  stats.Stats.fu_stall_cycles + 1
              else
                stats.Stats.mem_struct_stall_cycles <-
                  stats.Stats.mem_struct_stall_cycles + 1
            end;
            blocked := true
          end
        end
    done;
    (* Runahead-style prefetch under a full stall: walk younger loads and
       stores whose addresses are known (captured at fetch) and start
       their fills. *)
    if cfg.Config.runahead && !issued_now = 0 && Ring.length fbuf > 0 then begin
      let budget = ref 2 in
      Ring.iter fbuf (fun inst ->
          if !budget > 0 && inst.prefetch_arrival < 0 then
            match inst.instr with
            | Instr.Load _ | Instr.Store _
              when List.for_all (fun u -> ready.(u) <= !now) inst.uses ->
              (* real runahead can only compute addresses whose inputs are
                 available; chases behind pending loads stay opaque *)
              if
                (not (Sa_cache.probe (Hierarchy.l1d hier) ~addr:inst.addr))
                && List.length !mshr_release < cfg.Config.mshrs
              then begin
                let lat, _ =
                  Hierarchy.data_access hier ~addr:inst.addr ~write:false
                in
                inst.prefetch_arrival <- !now + lat;
                mshr_release := (!now + lat) :: !mshr_release;
                stats.Stats.runahead_prefetches <-
                  stats.Stats.runahead_prefetches + 1;
                decr budget
              end
              else inst.prefetch_arrival <- !now
            | _ -> ())
    end
  in
  (* ---- main loop ------------------------------------------------------- *)
  while
    (not !finished)
    && !now < max_cycles
    && Stats.retired stats < max_retired
  do
    process_completions ();
    if not !finished then begin
      issue ();
      (* Fetch after issue: an instruction fetched this cycle cannot issue
         this cycle (the front-stage delay enforces that anyway). *)
      let fetched_now = ref 0 in
      let go = ref true in
      while
        !go
        && !fetched_now < cfg.Config.width
        && (not !spec_halted)
        && !fetch_stall_until <= !now
        && not (Ring.is_full fbuf)
      do
        if fetch_one () then incr fetched_now else go := false
      done;
      let dbb_occupancy = Dbb.occupancy dbb in
      stats.Stats.dbb_occupancy_sum <-
        stats.Stats.dbb_occupancy_sum + dbb_occupancy;
      stats.Stats.dbb_samples <- stats.Stats.dbb_samples + 1;
      log_trim ();
      incr now;
      stats.Stats.cycles <- !now;
      on_cycle ~cycle:!now ~stats ~dbb_occupancy
    end
  done;
  let mem_digest = Array.fold_left fnv_fold 0xcbf29ce4 mem in
  { stats;
    hierarchy = hier;
    config = cfg;
    finished = !finished;
    mem_digest;
    stores_retired = !stores_retired;
    arch_digest = fnv_fold mem_digest !stores_retired
  }

let result_to_json r =
  let open Bv_obs.Json in
  Obj
    [ ("config", String (Config.name r.config));
      ("width", Int r.config.Config.width);
      ("predictor", String (Bv_bpred.Kind.name r.config.Config.predictor));
      ("finished", Bool r.finished);
      ("stores_retired", Int r.stores_retired);
      ("stats", Stats.to_json r.stats);
      ("cache", Hierarchy.to_json r.hierarchy)
    ]
