open Bv_cache

type event = Machine_state.event =
  | Fetched of { cycle : int; seq : int; pc : int; instr : Bv_isa.Instr.t }
  | Issued of { cycle : int; seq : int }
  | Completed of { cycle : int; seq : int; mispredicted : bool }
  | Squashed of { cycle : int; seq : int }
  | Redirected of { cycle : int; after_seq : int; new_pc : int }

type result =
  { stats : Stats.t;
    hierarchy : Hierarchy.t;
    config : Config.t;
    finished : bool;
    mem_digest : int;
    stores_retired : int;
    arch_digest : int
  }

let fnv_fold acc v = (acc lxor v) * 0x100000001B3 land max_int

(* The cycle loop. Stage order within a cycle: complete (which may flush),
   issue, fetch — an instruction fetched this cycle cannot issue this
   cycle (the front-stage delay enforces that anyway). *)
let run ?(max_cycles = 1_000_000_000) ?(max_retired = max_int) ?on_event
    ?on_cycle ?acct ~config image =
  let st = Machine_state.create ~config ?on_event ?acct image in
  let stats = st.Machine_state.stats in
  while
    (not st.Machine_state.finished)
    && st.Machine_state.now < max_cycles
    && Stats.retired stats < max_retired
  do
    Backend.process_completions st;
    if not st.Machine_state.finished then begin
      Scoreboard.issue st;
      Frontend.fetch_group st;
      let dbb_occupancy = Dbb.occupancy st.Machine_state.dbb in
      stats.Stats.dbb_occupancy_sum <-
        stats.Stats.dbb_occupancy_sum + dbb_occupancy;
      stats.Stats.dbb_samples <- stats.Stats.dbb_samples + 1;
      Spec_state.log_trim st;
      if st.Machine_state.acct_enabled then Machine_state.account_cycle st;
      st.Machine_state.now <- st.Machine_state.now + 1;
      stats.Stats.cycles <- st.Machine_state.now;
      match on_cycle with
      | Some f -> f ~cycle:st.Machine_state.now ~stats ~dbb_occupancy
      | None -> ()
    end
  done;
  (match acct with Some a -> Acct.check a ~cycles:stats.Stats.cycles | None -> ());
  let mem_digest = Array.fold_left fnv_fold 0xcbf29ce4 st.Machine_state.mem in
  { stats;
    hierarchy = st.Machine_state.hier;
    config = st.Machine_state.cfg;
    finished = st.Machine_state.finished;
    mem_digest;
    stores_retired = st.Machine_state.stores_retired;
    arch_digest = fnv_fold mem_digest st.Machine_state.stores_retired
  }

let result_to_json ?acct r =
  let open Bv_obs.Json in
  Obj
    [ ("config", String (Config.name r.config));
      ("width", Int r.config.Config.width);
      ("predictor", String (Bv_bpred.Kind.name r.config.Config.predictor));
      ("finished", Bool r.finished);
      ("stores_retired", Int r.stores_retired);
      ("stats", Stats.to_json ?acct r.stats);
      ("cache", Hierarchy.to_json r.hierarchy)
    ]
