open Bv_cache

type event = Machine_state.event =
  | Fetched of { cycle : int; seq : int; pc : int; instr : Bv_isa.Instr.t }
  | Issued of { cycle : int; seq : int }
  | Completed of { cycle : int; seq : int; mispredicted : bool }
  | Squashed of { cycle : int; seq : int }
  | Redirected of { cycle : int; after_seq : int; new_pc : int }

type result =
  { stats : Stats.t;
    hierarchy : Hierarchy.t;
    config : Config.t;
    finished : bool;
    mem_digest : int;
    stores_retired : int;
    arch_digest : int
  }

let fnv_fold acc v = (acc lxor v) * 0x100000001B3 land max_int

(* Block-compiled dispatch is on by default; BV_NO_COMPILE=1 (or the CLI
   --no-compile flag, via [set_compile_default]) reverts every run to
   the interpreted front end. Byte-identity between the two is a hard
   invariant, so this is an escape hatch for debugging and for the
   compiled-vs-interpreted CI leg, not a semantics switch. *)
let compile_default =
  ref
    (match Sys.getenv_opt "BV_NO_COMPILE" with
    | None | Some "" | Some "0" -> true
    | Some _ -> false)

let set_compile_default enabled = compile_default := enabled
let compile_enabled () = !compile_default

(* One simulated cycle. Stage order within a cycle: complete (which may
   flush), issue, fetch — an instruction fetched this cycle cannot issue
   this cycle (the front-stage delay enforces that anyway). *)
let cycle st ~on_cycle =
  Backend.process_completions st;
  if not st.Machine_state.finished then begin
    let stats = st.Machine_state.stats in
    Scoreboard.issue st;
    Frontend.fetch_group st;
    let dbb_occupancy = Dbb.occupancy st.Machine_state.dbb in
    stats.Stats.dbb_occupancy_sum <-
      stats.Stats.dbb_occupancy_sum + dbb_occupancy;
    stats.Stats.dbb_samples <- stats.Stats.dbb_samples + 1;
    Spec_state.log_trim st;
    if st.Machine_state.acct_enabled then Machine_state.account_cycle st;
    st.Machine_state.now <- st.Machine_state.now + 1;
    stats.Stats.cycles <- st.Machine_state.now;
    match on_cycle with
    | Some f -> f ~cycle:st.Machine_state.now ~stats ~dbb_occupancy
    | None -> ()
  end

let run_to st ~max_cycles ~max_retired ~on_cycle =
  let stats = st.Machine_state.stats in
  while
    (not st.Machine_state.finished)
    && st.Machine_state.now < max_cycles
    && Stats.retired stats < max_retired
  do
    if st.Machine_state.compiled then Compile.skip_stalls st ~limit:max_cycles;
    if st.Machine_state.now < max_cycles then cycle st ~on_cycle
  done

let result_of st =
  let mem_digest = Array.fold_left fnv_fold 0xcbf29ce4 st.Machine_state.mem in
  { stats = st.Machine_state.stats;
    hierarchy = st.Machine_state.hier;
    config = st.Machine_state.cfg;
    finished = st.Machine_state.finished;
    mem_digest;
    stores_retired = st.Machine_state.stores_retired;
    arch_digest = fnv_fold mem_digest st.Machine_state.stores_retired
  }

let run ?(max_cycles = 1_000_000_000) ?(max_retired = max_int) ?on_event
    ?on_cycle ?acct ?compile ~config image =
  let st = Machine_state.create ~config ?on_event ?acct image in
  let want = match compile with Some b -> b | None -> !compile_default in
  (* Observers see per-instruction / per-cycle detail the fused closures
     skip, so any observer forces the interpreted path. *)
  if
    want && Option.is_none on_event && Option.is_none on_cycle
    && Option.is_none acct
  then Compile.attach st;
  run_to st ~max_cycles ~max_retired ~on_cycle;
  (match acct with
  | Some a -> Acct.check a ~cycles:st.Machine_state.stats.Stats.cycles
  | None -> ());
  result_of st

(* ---- SMARTS-style interval sampling ------------------------------------ *)

type sample_params =
  { sp_period : int;  (* instructions per sampling period *)
    sp_detail : int;  (* measured (detailed) instructions per period *)
    sp_warmup : int  (* detailed warmup instructions before each window *)
  }

let default_sample_params =
  { sp_period = 10_000; sp_detail = 1_000; sp_warmup = 300 }

type sampled =
  { sam_result : result;
    sam_estimate : Smarts.estimate
  }

(* Alternate detailed simulation (warmup + measured window, measured
   through pipeline drain so every window's instructions are fully
   costed) with functional fast-forward on one machine. The drain runs
   with fetch frozen until the fetch buffer and pending deque empty,
   which releases every checkpoint — at that point the speculative state
   IS the committed state and [Ffwd.run] can take over. Architectural
   results (memory digest, store count) are exact: both modes execute
   the same committed semantics, only the timing of the fast-forwarded
   stretches is extrapolated. *)
let run_sampled ?(max_cycles = 1_000_000_000) ?compile
    ?(params = default_sample_params) ~config image =
  let p =
    { sp_period = max 1 params.sp_period;
      sp_detail = max 1 params.sp_detail;
      sp_warmup = max 0 params.sp_warmup
    }
  in
  let st = Machine_state.create ~config image in
  let want = match compile with Some b -> b | None -> !compile_default in
  if want then Compile.attach st;
  let stats = st.Machine_state.stats in
  let windows = ref [] in
  let ff_instrs = ref 0 in
  let ff_halted = ref false in
  let drain () =
    st.Machine_state.fetch_frozen <- true;
    while
      (not st.Machine_state.finished)
      && st.Machine_state.now < max_cycles
      && (Machine_state.Ring.length st.Machine_state.fbuf > 0
         || Machine_state.Ring.length st.Machine_state.pending > 0)
    do
      if st.Machine_state.compiled then
        Compile.skip_stalls st ~limit:max_cycles;
      if st.Machine_state.now < max_cycles then cycle st ~on_cycle:None
    done;
    st.Machine_state.fetch_frozen <- false
  in
  while
    (not st.Machine_state.finished)
    && (not !ff_halted)
    && st.Machine_state.now < max_cycles
  do
    (* Detailed warmup: simulated in full, excluded from the window. *)
    run_to st ~max_cycles
      ~max_retired:(Stats.retired stats + p.sp_warmup)
      ~on_cycle:None;
    (* Measured window, costed through the drain. *)
    let w0_instr = Stats.retired stats in
    let w0_cycles = st.Machine_state.now in
    let w0_misp = Stats.mispredicts stats in
    run_to st ~max_cycles ~max_retired:(w0_instr + p.sp_detail)
      ~on_cycle:None;
    drain ();
    let w_instrs = Stats.retired stats - w0_instr in
    if w_instrs > 0 then
      windows :=
        { Smarts.w_start_instr = !ff_instrs + w0_instr;
          w_instrs;
          w_cycles = st.Machine_state.now - w0_cycles;
          w_mispredicts = Stats.mispredicts stats - w0_misp
        }
        :: !windows;
    (* Functional fast-forward to the next period. *)
    if (not st.Machine_state.finished) && st.Machine_state.now < max_cycles
    then begin
      let ff_n = p.sp_period - p.sp_detail - p.sp_warmup in
      if ff_n > 0 then begin
        let o = Ffwd.run st ~max_instrs:ff_n in
        ff_instrs := !ff_instrs + o.Ffwd.executed;
        (* [executed = 0] without a halt means fetch ran off the program
           with an idle pipeline — nothing left to simulate. *)
        if o.Ffwd.halted || o.Ffwd.executed = 0 then ff_halted := true
      end
      else if w_instrs = 0 then
        (* detail >= period and no forward progress: bail out rather
           than spin (a wedged machine exits via max_cycles instead). *)
        ff_halted := true
    end
  done;
  if !ff_halted then st.Machine_state.finished <- true;
  let est =
    Smarts.estimate
      ~windows:(List.rev !windows)
      ~total_instrs:(Stats.retired stats + !ff_instrs)
      ~detailed_instrs:(Stats.retired stats)
      ~detailed_cycles:st.Machine_state.now
  in
  { sam_result = result_of st; sam_estimate = est }

let result_to_json ?acct ?sampled r =
  let open Bv_obs.Json in
  Obj
    [ ("config", String (Config.name r.config));
      ("width", Int r.config.Config.width);
      ("predictor", String (Bv_bpred.Kind.name r.config.Config.predictor));
      ("finished", Bool r.finished);
      ("stores_retired", Int r.stores_retired);
      ("stats", Stats.to_json ?acct ?sampled r.stats);
      ("cache", Hierarchy.to_json r.hierarchy)
    ]
