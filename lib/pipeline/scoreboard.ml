open Bv_isa
open Bv_cache
open Machine_state

(* In-order issue from the fetch-buffer head: head-of-line blocking on
   operands, FU slots and memory structures (MSHRs / store buffer). *)
let issue st =
  let cfg = st.cfg in
  let int_left = ref cfg.Config.int_units
  and fp_left = ref cfg.Config.fp_units
  and mem_left = ref cfg.Config.mem_units
  and br_left = ref cfg.Config.branch_units
  and none_left = ref max_int in
  let issued_now = ref 0 in
  st.mshr_release <- List.filter (fun c -> c > st.now) st.mshr_release;
  st.store_release <- List.filter (fun c -> c > st.now) st.store_release;
  let blocked = ref false in
  while (not !blocked) && !issued_now < cfg.Config.width do
    match Ring.peek st.fbuf with
    | None ->
      if !issued_now = 0 then
        st.stats.Stats.frontend_empty_cycles <-
          st.stats.Stats.frontend_empty_cycles + 1;
      blocked := true
    | Some inst ->
      if inst.fetch_cycle + cfg.Config.front_stages > st.now then begin
        if !issued_now = 0 then
          st.stats.Stats.frontend_empty_cycles <-
            st.stats.Stats.frontend_empty_cycles + 1;
        blocked := true
      end
      else begin
        let operands_ready =
          List.for_all (fun r -> st.ready.(r) <= st.now) inst.uses
        in
        let fu_slot =
          match inst.fu with
          | Instr.Fu_int -> int_left
          | Instr.Fu_fp -> fp_left
          | Instr.Fu_mem -> mem_left
          | Instr.Fu_branch -> br_left
          | Instr.Fu_none -> none_left
        in
        let fu_ok = !fu_slot > 0 in
        let mem_ok =
          match inst.instr with
          | Instr.Load _ ->
            Sa_cache.probe (Hierarchy.l1d st.hier) ~addr:inst.addr
            || List.length st.mshr_release < cfg.Config.mshrs
          | Instr.Store _ ->
            List.length st.store_release < cfg.Config.store_buffer
          | _ -> true
        in
        if operands_ready && fu_ok && mem_ok then begin
          ignore (Ring.pop st.fbuf);
          if inst.fu <> Instr.Fu_none then decr fu_slot;
          inst.issue_cycle <- st.now;
          (match inst.ctrl with
          | Some c when c.site >= 0 ->
            (* how long the condition kept this control instruction from
               resolving, past the front-end minimum: the measured
               per-site ASPCB (operand readiness, not queueing delay) *)
            let readiness =
              List.fold_left (fun a u -> max a st.ready.(u)) 0 inst.uses
            in
            Stats.add_site_wait st.stats ~site:c.site
              ~cycles:
                (max 0
                   (readiness - (inst.fetch_cycle + cfg.Config.front_stages)))
          | _ -> ());
          let latency =
            match inst.instr with
            | Instr.Load _ ->
              let lat, _ =
                Hierarchy.data_access st.hier ~addr:inst.addr ~write:false
              in
              (* a runahead prefetch in flight caps the latency at its
                 arrival (the fill was already initiated) *)
              let lat =
                if inst.prefetch_arrival >= 0 then
                  max cfg.Config.cache.Hierarchy.l1_latency
                    (min lat (inst.prefetch_arrival - st.now))
                else lat
              in
              if lat > cfg.Config.cache.Hierarchy.l1_latency then
                st.mshr_release <- (st.now + lat) :: st.mshr_release;
              st.stats.Stats.loads_issued <- st.stats.Stats.loads_issued + 1;
              lat
            | Instr.Store _ ->
              let lat, _ =
                Hierarchy.data_access st.hier ~addr:inst.addr ~write:true
              in
              st.store_release <- (st.now + lat) :: st.store_release;
              st.stats.Stats.stores_issued <- st.stats.Stats.stores_issued + 1;
              st.stores_retired <- st.stores_retired + 1;
              1
            | _ -> inst.latency
          in
          inst.latency <- latency;
          inst.complete_cycle <- st.now + latency;
          if inst.dst >= 0 then
            st.ready.(inst.dst) <- max st.ready.(inst.dst) inst.complete_cycle;
          st.pending_tail <- inst :: st.pending_tail;
          st.on_event (Issued { cycle = st.now; seq = inst.seq });
          st.stats.Stats.issued <- st.stats.Stats.issued + 1;
          incr issued_now
        end
        else begin
          if !issued_now = 0 then begin
            st.stats.Stats.head_stall_cycles <-
              st.stats.Stats.head_stall_cycles + 1;
            if not operands_ready then begin
              st.stats.Stats.operand_stall_cycles <-
                st.stats.Stats.operand_stall_cycles + 1;
              match inst.ctrl with
              | Some c when c.site >= 0 -> Stats.add_site_stall st.stats ~site:c.site
              | _ -> ()
            end
            else if not fu_ok then
              st.stats.Stats.fu_stall_cycles <-
                st.stats.Stats.fu_stall_cycles + 1
            else
              st.stats.Stats.mem_struct_stall_cycles <-
                st.stats.Stats.mem_struct_stall_cycles + 1
          end;
          blocked := true
        end
      end
  done;
  (* Runahead-style prefetch under a full stall: walk younger loads and
     stores whose addresses are known (captured at fetch) and start
     their fills. *)
  if cfg.Config.runahead && !issued_now = 0 && Ring.length st.fbuf > 0 then begin
    let budget = ref 2 in
    Ring.iter st.fbuf (fun inst ->
        if !budget > 0 && inst.prefetch_arrival < 0 then
          match inst.instr with
          | Instr.Load _ | Instr.Store _
            when List.for_all (fun u -> st.ready.(u) <= st.now) inst.uses ->
            (* real runahead can only compute addresses whose inputs are
               available; chases behind pending loads stay opaque *)
            if
              (not (Sa_cache.probe (Hierarchy.l1d st.hier) ~addr:inst.addr))
              && List.length st.mshr_release < cfg.Config.mshrs
            then begin
              let lat, _ =
                Hierarchy.data_access st.hier ~addr:inst.addr ~write:false
              in
              inst.prefetch_arrival <- st.now + lat;
              st.mshr_release <- (st.now + lat) :: st.mshr_release;
              st.stats.Stats.runahead_prefetches <-
                st.stats.Stats.runahead_prefetches + 1;
              decr budget
            end
            else inst.prefetch_arrival <- st.now
          | _ -> ())
  end
