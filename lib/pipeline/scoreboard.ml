open Bv_cache
open Machine_state

(* In-order issue from the fetch-buffer head: head-of-line blocking on
   operands, FU slots and memory structures (MSHRs / store buffer).

   Hot path: operand checks walk the pre-decoded [uses] index arrays out
   of the static table, memory-op classification is a pre-decoded int,
   and MSHR / store-buffer occupancy is an O(1) counter read against the
   release calendars drained once at the top of the cycle. *)

let operands_ready st (uses : int array) =
  let n = Array.length uses in
  let k = ref 0 in
  while !k < n && st.ready.(uses.(!k)) <= st.now do
    incr k
  done;
  !k = n

let readiness st (uses : int array) =
  let acc = ref 0 in
  for k = 0 to Array.length uses - 1 do
    let r = st.ready.(uses.(k)) in
    if r > !acc then acc := r
  done;
  !acc

let issue st =
  let cfg = st.cfg in
  let fu_left = st.fu_left in
  fu_left.(fu_int) <- cfg.Config.int_units;
  fu_left.(fu_fp) <- cfg.Config.fp_units;
  fu_left.(fu_mem) <- cfg.Config.mem_units;
  fu_left.(fu_branch) <- cfg.Config.branch_units;
  (* the no-FU class can be decremented unconditionally without ever
     blocking: [width] bounds the decrements per cycle *)
  fu_left.(fu_none) <- max_int;
  let issued_now = ref 0 in
  st.cycle_stall <- stall_none;
  Release.drain st.mshr_release ~now:st.now;
  Release.drain st.store_release ~now:st.now;
  let blocked = ref false in
  while (not !blocked) && !issued_now < cfg.Config.width do
    if Ring.length st.fbuf = 0 then begin
      if !issued_now = 0 then begin
        st.stats.Stats.frontend_empty_cycles <-
          st.stats.Stats.frontend_empty_cycles + 1;
        st.cycle_stall <- stall_frontend
      end;
      blocked := true
    end
    else begin
      let h = Ring.front st.fbuf in
      if
        h = st.park_h && st.now < st.park_until
        && st.i_seq.(h) = st.park_seq
      then begin
        (* Parked: known operand-blocked until [park_until] — identical
           bookkeeping to the operand-stall slow path, minus the re-check. *)
        if !issued_now = 0 then begin
          st.stats.Stats.head_stall_cycles <-
            st.stats.Stats.head_stall_cycles + 1;
          st.stats.Stats.operand_stall_cycles <-
            st.stats.Stats.operand_stall_cycles + 1;
          st.cycle_stall <- stall_operand;
          let site = st.c_site.(h) in
          if site >= 0 then Stats.add_site_stall st.stats ~site
        end;
        blocked := true
      end
      else if st.i_fetch_cycle.(h) + cfg.Config.front_stages > st.now then begin
        if !issued_now = 0 then begin
          st.stats.Stats.frontend_empty_cycles <-
            st.stats.Stats.frontend_empty_cycles + 1;
          st.cycle_stall <- stall_frontend
        end;
        blocked := true
      end
      else begin
        let si = st.static.(st.i_pc.(h)) in
        let addr = st.i_addr.(h) in
        let operands_ready = operands_ready st si.s_uses in
        let fu_ok = fu_left.(si.s_fu) > 0 in
        let mem_ok =
          if si.s_mem_kind = 1 then
            (* counter first: both operands are side-effect-free, and a
               free MSHR (the common case) skips the tag probe *)
            Release.occupancy st.mshr_release < cfg.Config.mshrs
            || Sa_cache.probe (Hierarchy.l1d st.hier) ~addr
          else if si.s_mem_kind = 2 then
            Release.occupancy st.store_release < cfg.Config.store_buffer
          else true
        in
        if operands_ready && fu_ok && mem_ok then begin
          ignore (Ring.pop st.fbuf);
          fu_left.(si.s_fu) <- fu_left.(si.s_fu) - 1;
          let site = st.c_site.(h) in
          if site >= 0 then begin
            (* how long the condition kept this control instruction from
               resolving, past the front-end minimum: the measured
               per-site ASPCB (operand readiness, not queueing delay) *)
            let readiness = readiness st si.s_uses in
            Stats.add_site_wait st.stats ~site
              ~cycles:
                (imax 0
                   (readiness
                   - (st.i_fetch_cycle.(h) + cfg.Config.front_stages)))
          end;
          let latency =
            if si.s_mem_kind = 1 then begin
              let lat =
                Hierarchy.data_access_latency st.hier ~addr ~write:false
              in
              (* a runahead prefetch in flight caps the latency at its
                 arrival (the fill was already initiated) *)
              let lat =
                if st.i_prefetch.(h) >= 0 then
                  imax cfg.Config.cache.Hierarchy.l1_latency
                    (imin lat (st.i_prefetch.(h) - st.now))
                else lat
              in
              if lat > cfg.Config.cache.Hierarchy.l1_latency then
                Release.schedule st.mshr_release ~at:(st.now + lat);
              st.stats.Stats.loads_issued <- st.stats.Stats.loads_issued + 1;
              lat
            end
            else if si.s_mem_kind = 2 then begin
              let lat =
                Hierarchy.data_access_latency st.hier ~addr ~write:true
              in
              Release.schedule st.store_release ~at:(st.now + lat);
              st.stats.Stats.stores_issued <- st.stats.Stats.stores_issued + 1;
              st.stores_retired <- st.stores_retired + 1;
              1
            end
            else si.s_latency
          in
          let complete = st.now + latency in
          st.i_complete_cycle.(h) <- complete;
          if si.s_dst >= 0 && complete >= st.ready.(si.s_dst) then begin
            st.ready.(si.s_dst) <- complete;
            st.ready_src_load.(si.s_dst) <- si.s_mem_kind land 1
          end;
          Ring.push st.pending h;
          if complete < st.next_complete then st.next_complete <- complete;
          if st.events_enabled then
            st.on_event (Issued { cycle = st.now; seq = st.i_seq.(h) });
          st.stats.Stats.issued <- st.stats.Stats.issued + 1;
          incr issued_now
        end
        else begin
          if !issued_now = 0 then begin
            st.stats.Stats.head_stall_cycles <-
              st.stats.Stats.head_stall_cycles + 1;
            if not operands_ready then begin
              st.stats.Stats.operand_stall_cycles <-
                st.stats.Stats.operand_stall_cycles + 1;
              st.cycle_stall <- stall_operand;
              let site = st.c_site.(h) in
              if site >= 0 then Stats.add_site_stall st.stats ~site
            end
            else if not fu_ok then begin
              st.stats.Stats.fu_stall_cycles <-
                st.stats.Stats.fu_stall_cycles + 1;
              st.cycle_stall <- stall_fu
            end
            else begin
              st.stats.Stats.mem_struct_stall_cycles <-
                st.stats.Stats.mem_struct_stall_cycles + 1;
              st.cycle_stall <- stall_mem
            end
          end;
          if not operands_ready then begin
            (* Park the head until its operands can be ready: nothing
               younger can issue past it, so this bound is stable. *)
            st.park_h <- h;
            st.park_seq <- st.i_seq.(h);
            st.park_until <- readiness st si.s_uses
          end;
          blocked := true
        end
      end
    end
  done;
  (* Runahead-style prefetch under a full stall: walk younger loads and
     stores whose addresses are known (captured at fetch) and start
     their fills. While [now] < [sweep_bound] every unprefetched memory
     entry is known operand-blocked ([ready] cycles only rise outside
     {!Machine_state.rebuild_scoreboard}, which resets the bound), so
     the walk is a no-op and is skipped; a completed walk recomputes the
     bound from the entries it leaves unprefetched. *)
  if
    cfg.Config.runahead && !issued_now = 0
    && Ring.length st.fbuf > 0
    && st.now >= st.sweep_bound
  then begin
    let budget = ref 2 in
    let bound = ref max_int in
    let n = Ring.length st.fbuf in
    let k = ref 0 in
    while !budget > 0 && !k < n do
      let h = Ring.get st.fbuf !k in
      if st.i_prefetch.(h) < 0 then begin
        let si = st.static.(st.i_pc.(h)) in
        if si.s_mem_kind <> 0 then begin
          if operands_ready st si.s_uses then begin
            (* real runahead can only compute addresses whose inputs are
               available; chases behind pending loads stay opaque *)
            let addr = st.i_addr.(h) in
            if
              (not (Sa_cache.probe (Hierarchy.l1d st.hier) ~addr))
              && Release.occupancy st.mshr_release < cfg.Config.mshrs
            then begin
              let lat =
                Hierarchy.data_access_latency st.hier ~addr ~write:false
              in
              st.i_prefetch.(h) <- st.now + lat;
              Release.schedule st.mshr_release ~at:(st.now + lat);
              st.stats.Stats.runahead_prefetches <-
                st.stats.Stats.runahead_prefetches + 1;
              decr budget
            end
            else st.i_prefetch.(h) <- st.now
          end
          else begin
            let r = readiness st si.s_uses in
            if r < !bound then bound := r
          end
        end
      end;
      incr k
    done;
    (* Budget exhausted mid-walk leaves unexamined entries: bound unknown. *)
    st.sweep_bound <- (if !k < n then 0 else !bound)
  end
