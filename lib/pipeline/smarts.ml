(* SMARTS-style interval-sampling statistics: per-window measurements,
   normal-approximation confidence intervals and whole-run extrapolation.

   Each measured window contributes one CPI / IPC / MPPKI sample; the
   estimate reports mean +/- z * s / sqrt(n) for each (z = 1.96, the 95%
   two-sided normal quantile — SMARTS' matched-pair design assumes the
   window means are approximately normal by CLT). With n <= 1 windows
   the standard error is reported as 0: a single window has no spread
   information, and the degenerate detail = infinity case (one window
   covering the whole run) must reduce to the exact full-run numbers. *)

type metric_ci =
  { mean : float;
    stderr : float;
    ci_low : float;
    ci_high : float;
    rel_err_pct : float  (* 100 * half-width / |mean|, 0 when mean = 0 *)
  }

let z95 = 1.96

let ci_of_samples xs =
  let n = List.length xs in
  if n = 0 then
    { mean = 0.; stderr = 0.; ci_low = 0.; ci_high = 0.; rel_err_pct = 0. }
  else begin
    let nf = Float.of_int n in
    let mean = List.fold_left ( +. ) 0. xs /. nf in
    let stderr =
      if n < 2 then 0.
      else begin
        let ss =
          List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
        in
        sqrt (ss /. (nf -. 1.)) /. sqrt nf
      end
    in
    let hw = z95 *. stderr in
    { mean;
      stderr;
      ci_low = mean -. hw;
      ci_high = mean +. hw;
      rel_err_pct = (if mean = 0. then 0. else 100. *. hw /. Float.abs mean)
    }
  end

type window =
  { w_start_instr : int;  (* instruction index (detailed + ff) at start *)
    w_instrs : int;  (* detailed instructions measured, drain included *)
    w_cycles : int;
    w_mispredicts : int
  }

type estimate =
  { est_windows : window list;
    est_total_instrs : int;  (* detailed retired + fast-forwarded *)
    est_detailed_instrs : int;
    est_detailed_cycles : int;  (* all detailed cycles, warmup included *)
    est_cpi : metric_ci;
    est_ipc : metric_ci;
    est_mppki : metric_ci;
    est_cycles : float;  (* est_cpi.mean * est_total_instrs *)
    est_coverage_pct : float  (* measured instrs / total instrs *)
  }

let estimate ~windows ~total_instrs ~detailed_instrs ~detailed_cycles =
  let sample f =
    List.filter_map (fun w -> if w.w_instrs > 0 then Some (f w) else None)
      windows
  in
  let cpi =
    ci_of_samples
      (sample (fun w -> Float.of_int w.w_cycles /. Float.of_int w.w_instrs))
  in
  let ipc =
    ci_of_samples
      (List.filter_map
         (fun w ->
           if w.w_cycles > 0 then
             Some (Float.of_int w.w_instrs /. Float.of_int w.w_cycles)
           else None)
         windows)
  in
  let mppki =
    ci_of_samples
      (sample (fun w ->
           1000. *. Float.of_int w.w_mispredicts /. Float.of_int w.w_instrs))
  in
  let measured = List.fold_left (fun acc w -> acc + w.w_instrs) 0 windows in
  { est_windows = windows;
    est_total_instrs = total_instrs;
    est_detailed_instrs = detailed_instrs;
    est_detailed_cycles = detailed_cycles;
    est_cpi = cpi;
    est_ipc = ipc;
    est_mppki = mppki;
    est_cycles = cpi.mean *. Float.of_int total_instrs;
    est_coverage_pct =
      (if total_instrs = 0 then 0.
       else 100. *. Float.of_int measured /. Float.of_int total_instrs)
  }

let metric_json m =
  let open Bv_obs.Json in
  Obj
    [ ("mean", float m.mean);
      ("stderr", float m.stderr);
      ("ci_low", float m.ci_low);
      ("ci_high", float m.ci_high);
      ("rel_err_pct", float m.rel_err_pct)
    ]

let to_json e =
  let open Bv_obs.Json in
  Obj
    [ ("windows", Int (List.length e.est_windows));
      ("total_instrs", Int e.est_total_instrs);
      ("detailed_instrs", Int e.est_detailed_instrs);
      ("detailed_cycles", Int e.est_detailed_cycles);
      ("coverage_pct", float e.est_coverage_pct);
      ("est_cycles", float e.est_cycles);
      ("cpi", metric_json e.est_cpi);
      ("ipc", metric_json e.est_ipc);
      ("mppki", metric_json e.est_mppki)
    ]
