(** Fetch stage: instruction supply, architectural execution at fetch,
    branch prediction and steering.

    Each fetched instruction executes architecturally against the
    speculative state in {!Machine_state.t} (registers, undo-logged
    memory) and is enqueued into the fetch buffer for timing. Control
    instructions steer fetch through the BTB/RAS; [Predict]s allocate
    DBB entries and vanish; [Resolve]s claim the newest DBB entry and
    fall through. *)

open Machine_state

val fetch_group : t -> unit
(** Fetch up to [width] instructions this cycle. Stops early on a taken
    steer, an I-cache stall, a speculative halt, or a full fetch
    buffer. *)

val fetch_one : t -> bool
(** Fetch a single instruction at the current pc (I-cache access
    included); [false] ends the cycle's fetch group. Exposed for
    stage-level tests. *)
