(** Fetch stage: instruction supply, architectural execution at fetch,
    branch prediction and steering.

    Each fetched instruction executes architecturally against the
    speculative state in {!Machine_state.t} (registers, undo-logged
    memory) and is enqueued into the fetch buffer for timing. Control
    instructions steer fetch through the BTB/RAS; [Predict]s allocate
    DBB entries and vanish; [Resolve]s claim the newest DBB entry and
    fall through. *)

open Machine_state

val fetch_group : t -> unit
(** Fetch up to [width] instructions this cycle. Stops early on a taken
    steer, an I-cache stall, a speculative halt, or a full fetch
    buffer. *)

val predict_outcome_oracle : t -> int -> bool
(** Resolve a [Predict]'s eventual outcome by walking ahead to its
    paired [Resolve] on the current speculative state. Used by the
    perfect predictor's [~outcome] channel; exposed for {!Ffwd}, whose
    committed state is exactly the speculative state of a drained
    machine. *)

val fetch_one : t -> bool
(** Fetch a single instruction at the current pc (I-cache access
    included); [false] ends the cycle's fetch group. Exposed for
    stage-level tests. *)
