(** Functional fast-forward between sampled windows.

    Executes committed architectural semantics directly on a drained
    {!Machine_state.t} — registers, memory, call stack and the retired
    store count move exactly as a full detailed run would move them —
    while warming the long-lived microarchitectural state: branch
    predictor, BTB, RAS, DBB and both cache hierarchies. No simulated
    cycles pass and no {!Stats.t} counters change. *)

type outcome =
  { executed : int;  (** instructions executed, [Halt] included *)
    halted : bool  (** hit [Halt] (or ran off the program) *)
  }

val run : Machine_state.t -> max_instrs:int -> outcome
(** Fast-forward up to [max_instrs] instructions from [st.fetch_pc].
    Requires a drained pipeline (empty fetch buffer and pending deque,
    no live checkpoints) — asserted. On return [st.fetch_pc] is the next
    pc to fetch and [st.current_line] is reset so the detailed front end
    re-fetches the line. *)
