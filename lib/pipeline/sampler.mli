(** Interval telemetry: per-window IPC, MPPKI and DBB occupancy.

    Aggregate stats say *whether* the decomposition wins; the sampler says
    *when*. Feed {!observe} from {!Machine.run}'s [on_cycle] hook and it
    closes a window every [interval] cycles, recording the deltas of the
    relevant counters over that window. *)

type window =
  { start_cycle : int;
    end_cycle : int;  (** exclusive *)
    retired : int;  (** retired within the window *)
    mispredicts : int;  (** direction mispredicts within the window *)
    icache_misses : int;
    ipc : float;
    mppki : float;  (** per 1000 instructions retired in this window *)
    dbb_avg_occupancy : float;
    components : int array
        (** per-{!Acct} component cycle deltas over the window (summing
            to the window's cycle count — the per-window conservation
            invariant); [[||]] when sampling without an [acct] *)
  }

type t

val create : ?interval:int -> ?acct:Acct.t -> unit -> t
(** [interval] defaults to 10_000 cycles. Raises [Invalid_argument] when
    not positive. Pass the same [acct] given to [Machine.run] to record
    per-window CPI-stack deltas ([window.components], and a ["cpi"]
    object per window in {!to_json}). *)

val interval : t -> int

val observe : t -> cycle:int -> stats:Stats.t -> dbb_occupancy:int -> unit
(** Call once per cycle (the signature matches [Machine.run]'s [on_cycle]
    hook exactly). Closes a window whenever [interval] cycles have
    elapsed since the last boundary. *)

val finish : t -> unit
(** Flush the final partial window, if any cycles are outstanding. Safe to
    call repeatedly. *)

val windows : t -> window list
(** Closed windows in time order ({!finish} first to include the tail). *)

val to_json : t -> Bv_obs.Json.t
(** [{ "interval": n, "windows": [...] }]; implies {!finish}. *)
