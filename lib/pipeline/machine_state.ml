open Bv_isa
open Bv_ir
open Bv_bpred
open Bv_cache

type ctrl_kind = Ck_branch | Ck_resolve | Ck_ret

type checkpoint =
  { ck_regs : int array;
    ck_undo : int;  (* absolute undo-log position *)
    ck_stack : int list;
    ck_ras_depth : int;
    ck_dbb : Dbb.snapshot;
    ck_halted : bool
  }

type ctrl =
  { kind : ctrl_kind;
    mispredict : bool;
    redirect_pc : int;  (* correct-path pc, used on mispredict *)
    checkpoint : checkpoint option;  (* present iff mispredict *)
    site : int;  (* branch/resolve site id, -1 otherwise *)
    meta : Predictor.meta option;
    meta_pc : int;  (* pc whose predictor entry to train *)
    actual_taken : bool;
    dbb_slot : int  (* -1 when none *)
  }

type inflight =
  { seq : int;
    pc : int;
    instr : Instr.t;
    fetch_cycle : int;
    fu : Instr.fu_class;
    dst : int;  (* register index, -1 if none *)
    uses : int list;
    addr : int;  (* effective address of loads/stores, captured at fetch *)
    mutable latency : int;
    mutable issue_cycle : int;  (* -1 before issue *)
    mutable complete_cycle : int;
    mutable squashed : bool;
    mutable prefetch_arrival : int;  (* -1: not prefetched *)
    ctrl : ctrl option
  }

type event =
  | Fetched of { cycle : int; seq : int; pc : int; instr : Instr.t }
  | Issued of { cycle : int; seq : int }
  | Completed of { cycle : int; seq : int; mispredicted : bool }
  | Squashed of { cycle : int; seq : int }
  | Redirected of { cycle : int; after_seq : int; new_pc : int }

(* Fixed-capacity ring used as the fetch buffer: push at tail, pop at head,
   truncate at tail on flush. *)
module Ring = struct
  type 'a t =
    { buf : 'a option array;
      mutable head : int;
      mutable len : int
    }

  let create capacity = { buf = Array.make capacity None; head = 0; len = 0 }
  let length t = t.len
  let capacity t = Array.length t.buf
  let is_full t = t.len = capacity t

  let push t x =
    assert (not (is_full t));
    t.buf.((t.head + t.len) mod capacity t) <- Some x;
    t.len <- t.len + 1

  let peek t = if t.len = 0 then None else t.buf.(t.head)

  let pop t =
    match peek t with
    | None -> None
    | some ->
      t.buf.(t.head) <- None;
      t.head <- (t.head + 1) mod capacity t;
      t.len <- t.len - 1;
      some

  let iter t f =
    for k = 0 to t.len - 1 do
      match t.buf.((t.head + k) mod capacity t) with
      | Some x -> f x
      | None -> ()
    done

  (* Remove tail entries failing [keep]; returns the removed entries. *)
  let truncate_tail t ~keep =
    let removed = ref [] in
    let continue = ref true in
    while t.len > 0 && !continue do
      let tail_idx = (t.head + t.len - 1) mod capacity t in
      match t.buf.(tail_idx) with
      | Some x when not (keep x) ->
        removed := x :: !removed;
        t.buf.(tail_idx) <- None;
        t.len <- t.len - 1
      | _ -> continue := false
    done;
    !removed
end

type t =
  { cfg : Config.t;
    image : Layout.image;
    code : Instr.t array;
    code_len : int;
    stats : Stats.t;
    hier : Hierarchy.t;
    predictor : Predictor.t;
    btb : Btb.t;
    ras : Ras.t;
    dbb : Dbb.t;
    (* --- speculative architectural state ------------------------------ *)
    regs : int array;
    mem : int array;
    mem_words : int;
    mutable call_stack : int list;
    mutable spec_halted : bool;
    (* Undo log for speculative stores; positions are absolute counts. *)
    mutable log_addr : int array;
    mutable log_val : int array;
    mutable log_len : int;
    mutable log_base : int;
    mutable live_checkpoints : int;
    (* --- timing state ------------------------------------------------- *)
    mutable now : int;
    fbuf : inflight Ring.t;
    (* Issued-but-incomplete instructions, kept in seq order; appends go
       to the reversed tail accumulator. *)
    mutable pending : inflight list;
    mutable pending_tail : inflight list;
    ready : int array;
    mutable fetch_pc : int;
    mutable fetch_stall_until : int;
    mutable current_line : int;
    mutable mshr_release : int list;
    mutable store_release : int list;
    mutable seq : int;
    mutable finished : bool;
    mutable stores_retired : int;
    mutable shadow_fetches : int;
    on_event : event -> unit
  }

let create ~config ~on_event image =
  let cfg : Config.t = config in
  let code = image.Layout.code in
  let mem = Program.initial_memory image.Layout.program in
  { cfg;
    image;
    code;
    code_len = Array.length code;
    stats = Stats.create ();
    hier = Hierarchy.create ~config:cfg.Config.cache ();
    predictor = Kind.create cfg.Config.predictor;
    btb = Btb.create ~entries:cfg.Config.btb_entries ();
    ras = Ras.create ~entries:cfg.Config.ras_entries ();
    dbb = Dbb.create ~entries:cfg.Config.dbb_entries;
    regs = Array.make Reg.count 0;
    mem;
    mem_words = Array.length mem;
    call_stack = [];
    spec_halted = false;
    log_addr = Array.make 1024 0;
    log_val = Array.make 1024 0;
    log_len = 0;
    log_base = 0;
    live_checkpoints = 0;
    now = 0;
    fbuf = Ring.create cfg.Config.fetch_buffer;
    pending = [];
    pending_tail = [];
    ready = Array.make Reg.count 0;
    fetch_pc = image.Layout.entry;
    fetch_stall_until = 0;
    current_line = -1;
    mshr_release = [];
    store_release = [];
    seq = 0;
    finished = false;
    stores_retired = 0;
    shadow_fetches = 0;
    on_event
  }

let merge_pending st =
  if st.pending_tail <> [] then begin
    st.pending <- st.pending @ List.rev st.pending_tail;
    st.pending_tail <- []
  end

(* Scoreboard repair after a squash: recompute every register's ready
   cycle from the surviving in-flight producers. *)
let rebuild_scoreboard st =
  Array.fill st.ready 0 Reg.count 0;
  List.iter
    (fun inst ->
      if (not inst.squashed) && inst.dst >= 0 then
        st.ready.(inst.dst) <- max st.ready.(inst.dst) inst.complete_cycle)
    st.pending

let line_of st pc = pc * 4 / st.cfg.Config.cache.Hierarchy.line_bytes

let operand_value st = function
  | Instr.Reg r -> st.regs.(Reg.index r)
  | Instr.Imm i -> i
