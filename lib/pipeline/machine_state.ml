open Bv_isa
open Bv_ir
open Bv_bpred
open Bv_cache

type checkpoint =
  { ck_regs : int array;
    ck_undo : int;  (* absolute undo-log position *)
    ck_stack : int list;
    ck_ras_depth : int;
    ck_dbb : Dbb.snapshot;
    ck_halted : bool
  }

(* Control-instruction kinds, as int tags: control metadata lives in flat
   pool arrays (the [c_*] fields of [t]) rather than a per-instruction
   record, so fetching a branch allocates nothing. *)
let ck_none = 0
let ck_branch = 1
let ck_resolve = 2
let ck_ret = 3

(* Sentinel for "no predictor metadata", distinguished by physical
   equality: deliberately non-empty so it can never be confused with a
   predictor's legitimate empty meta (all zero-length arrays share one
   representation). *)
let no_ctrl_meta : Predictor.meta = [| min_int |]

(* In-flight instructions live in a struct-of-arrays pool and are named
   by an int handle (see the [i_*] fields of [t]): the queues and the
   free list then hold immediates only, so pushing an instruction through
   the pipeline costs no GC write barriers and leaves nothing for the
   major collector to trace. Decode products (opcode class, uses, dst,
   base latency) live in the per-pc [static] table, reached through
   [i_pc]. *)
type handle = int

(* Functional-unit classes as indices into the per-cycle [fu_left]
   counters: 0 = int, 1 = fp, 2 = mem, 3 = branch, 4 = none. *)
let fu_int = 0
let fu_fp = 1
let fu_mem = 2
let fu_branch = 3
let fu_none = 4

(* Per-pc decode products, computed once per [create] so the fetch path
   never recomputes defs/uses/FU class/latency per dynamic instruction. *)
type static_info =
  { s_fu : int;  (* [fu_int] .. [fu_none] *)
    s_dst : int;  (* register index, -1 if none *)
    s_uses : int array;  (* register indices, in Instr.uses order *)
    s_latency : int;  (* base issue latency under the run's config *)
    s_mem_kind : int;  (* 0 = not memory, 1 = load, 2 = store *)
    s_is_halt : bool;
    s_target : int  (* resolved label target pc; -1 when none *)
  }

let[@inline] imax (a : int) (b : int) = if a >= b then a else b
let[@inline] imin (a : int) (b : int) = if a <= b then a else b

(* Per-cycle stall reason for the accounting classifier, written by the
   scoreboard (one store per cycle): which single reason blocked issue
   when nothing issued. *)
let stall_none = 0  (* at least one instruction issued *)
let stall_frontend = 1  (* fetch buffer empty / front-stage fill *)
let stall_operand = 2
let stall_fu = 3
let stall_mem = 4

(* What last armed [fetch_stall_until], for splitting front-end-empty
   cycles (written unconditionally by the frontend; read only when
   accounting is on). *)
let fsrc_none = 0
let fsrc_icache = 1
let fsrc_redirect = 2
let fsrc_dbb = 3

type event =
  | Fetched of { cycle : int; seq : int; pc : int; instr : Instr.t }
  | Issued of { cycle : int; seq : int }
  | Completed of { cycle : int; seq : int; mispredicted : bool }
  | Squashed of { cycle : int; seq : int }
  | Redirected of { cycle : int; after_seq : int; new_pc : int }

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (2 * k)

(* Power-of-two circular FIFO of int handles with mask indexing.
   Monomorphic on purpose: an [int array] backing store compiles to
   unboxed stores (no [caml_modify] write barrier, no float-array
   dynamic dispatch), which matters at two pushes per simulated
   instruction. [limit] is the logical capacity [is_full] reports; the
   backing array doubles on demand, so an unlimited ring
   ([limit = max_int]) is a growable deque — the retire queue uses
   exactly that. *)
module Ring = struct
  type t =
    { mutable buf : int array;
      mutable mask : int;
      mutable head : int;
      mutable len : int;
      limit : int
    }

  let create ?(limit = max_int) capacity =
    let cap = pow2_at_least (max 1 capacity) 1 in
    { buf = Array.make cap (-1); mask = cap - 1; head = 0; len = 0; limit }

  let[@inline] length t = t.len
  let capacity t = t.limit
  let[@inline] is_full t = t.len >= t.limit

  let[@inline] get t k = t.buf.((t.head + k) land t.mask)

  let grow t =
    let n = Array.length t.buf in
    let buf = Array.make (2 * n) (-1) in
    for k = 0 to t.len - 1 do
      buf.(k) <- get t k
    done;
    t.buf <- buf;
    t.mask <- (2 * n) - 1;
    t.head <- 0

  let[@inline] push t x =
    assert (not (is_full t));
    if t.len = Array.length t.buf then grow t;
    t.buf.((t.head + t.len) land t.mask) <- x;
    t.len <- t.len + 1

  let[@inline] front t =
    if t.len = 0 then invalid_arg "Ring.front: empty";
    t.buf.(t.head)

  let[@inline] pop t =
    let x = front t in
    t.head <- (t.head + 1) land t.mask;
    t.len <- t.len - 1;
    x

  let iter t f =
    for k = 0 to t.len - 1 do
      f (get t k)
    done

  let drop_tail t n =
    assert (n <= t.len);
    t.len <- t.len - n

  (* Remove the maximal tail suffix failing [keep], calling [removed] on
     each dropped entry in ring (FIFO) order. *)
  let truncate_tail t ~keep ~removed =
    let cut = ref t.len in
    while !cut > 0 && not (keep (get t (!cut - 1))) do
      decr cut
    done;
    for k = !cut to t.len - 1 do
      removed (get t k)
    done;
    t.len <- !cut

  (* In-place compaction preserving order. *)
  let filter_in_place t ~keep =
    let w = ref 0 in
    for r = 0 to t.len - 1 do
      let x = get t r in
      if keep x then begin
        t.buf.((t.head + !w) land t.mask) <- x;
        incr w
      end
    done;
    t.len <- !w
end

(* Release-time calendar for MSHR / store-buffer occupancy: O(1) schedule,
   O(1) amortised drain, O(1) occupancy query — replaces the lists that
   were List.filter-compacted every cycle and List.length-counted on
   every issue attempt. [slots.(c land mask)] counts entries released at
   cycle [c]; [horizon] must bound the largest schedulable latency. *)
module Release = struct
  type t =
    { slots : int array;
      mask : int;
      mutable occupancy : int;
      mutable cursor : int  (* next cycle to drain *)
    }

  let create ~horizon =
    let cap = pow2_at_least (horizon + 2) 1 in
    { slots = Array.make cap 0; mask = cap - 1; occupancy = 0; cursor = 0 }

  let[@inline] occupancy t = t.occupancy

  let[@inline] schedule t ~at =
    assert (at >= t.cursor && at - t.cursor <= t.mask);
    t.slots.(at land t.mask) <- t.slots.(at land t.mask) + 1;
    t.occupancy <- t.occupancy + 1

  (* After [drain t ~now], [occupancy] counts exactly the entries with
     release cycle > now (the old [List.filter (fun c -> c > now)]). *)
  let[@inline] drain t ~now =
    while t.cursor <= now do
      let i = t.cursor land t.mask in
      t.occupancy <- t.occupancy - t.slots.(i);
      t.slots.(i) <- 0;
      t.cursor <- t.cursor + 1
    done
end

type t =
  { cfg : Config.t;
    image : Layout.image;
    code : Instr.t array;
    code_len : int;
    static : static_info array;  (* indexed by pc, same length as [code] *)
    stats : Stats.t;
    hier : Hierarchy.t;
    predictor : Predictor.t;
    btb : Btb.t;
    ras : Ras.t;
    dbb : Dbb.t;
    (* --- speculative architectural state ------------------------------ *)
    regs : int array;
    mem : int array;
    mem_words : int;
    mutable call_stack : int list;
    mutable spec_halted : bool;
    (* Undo log for speculative stores; positions are absolute counts. *)
    mutable log_addr : int array;
    mutable log_val : int array;
    mutable log_len : int;
    mutable log_base : int;
    mutable live_checkpoints : int;
    (* --- timing state ------------------------------------------------- *)
    mutable now : int;
    fbuf : Ring.t;
    (* Issued-but-incomplete instructions, in seq order: a FIFO deque —
       push at tail on issue, compact on completion, truncate on flush. *)
    pending : Ring.t;
    (* Lower bound on the earliest complete_cycle in [pending] (may be
       stale low after a flush, never high): the backend skips the
       completion scan entirely while [now] is below it. *)
    mutable next_complete : int;
    ready : int array;
    (* Operand-stall parking: while the issue head is blocked on operands,
       nothing younger can issue (in-order, head-of-line), so the head's
       readiness cycle cannot change until it issues — the scoreboard
       skips the full head re-check below [park_until]. Guarded by seq
       (never reused), so stale parking after a recycle is inert; a flush
       can only remove already-completed or wrong-path producers, neither
       of which moves a surviving head's readiness, so the bound survives
       flushes too. *)
    mutable park_h : handle;  (* -1 when nothing is parked *)
    mutable park_seq : int;
    mutable park_until : int;
    (* Conservative lower bound on the earliest cycle the runahead
       prefetch sweep could act: the min readiness over unprefetched
       memory entries in [fbuf]. Folded down at fetch, recomputed by the
       sweep itself, reset to 0 (= unknown, walk) whenever a flush can
       lower [ready] ({!rebuild_scoreboard}). While [now] < bound, the
       per-cycle sweep walk is provably a no-op and is skipped. *)
    mutable sweep_bound : int;
    mutable fetch_pc : int;
    mutable fetch_stall_until : int;
    mutable current_line : int;
    line_shift : int;  (* log2 of the I-cache line size in instructions *)
    mshr_release : Release.t;
    store_release : Release.t;
    (* Per-cycle FU availability, indexed by [fu_int] .. [fu_none] and
       refilled from the config at the top of each issue pass — a flat
       array instead of per-cycle ref cells. *)
    fu_left : int array;
    mutable seq : int;
    mutable finished : bool;
    mutable stores_retired : int;
    mutable shadow_fetches : int;
    (* --- in-flight pool (struct of arrays, indexed by handle) ---------- *)
    (* Parallel arrays grown together by [alloc_inflight]; a handle is a
       row index. Everything is an int except [c_meta] and [c_ckpt],
       which only control instructions touch — so the per-instruction
       field refill touches no pointers at all. *)
    mutable i_seq : int array;
    mutable i_pc : int array;
    mutable i_fetch_cycle : int array;
    mutable i_addr : int array;  (* load/store effective address, at fetch *)
    mutable i_complete_cycle : int array;
    mutable i_squashed : int array;  (* 0 / 1 *)
    mutable i_prefetch : int array;  (* prefetch arrival cycle; -1: none *)
    (* Control metadata, valid while [c_kind] is not [ck_none]. A row's
       enqueuer writes every field it later reads; [recycle_inflight]
       resets only the discriminator, the pointers and [c_site] (read
       unguarded on the issue path). *)
    mutable c_kind : int array;  (* ck_none / ck_branch / ck_resolve / ck_ret *)
    mutable c_mispredict : int array;  (* 0 / 1 *)
    mutable c_redirect : int array;  (* correct-path pc, used on mispredict *)
    mutable c_site : int array;  (* branch/resolve site id, -1 otherwise *)
    mutable c_meta_pc : int array;  (* pc whose predictor entry to train *)
    mutable c_actual : int array;  (* actual direction, 0 / 1 *)
    mutable c_dbb_slot : int array;  (* -1 when none *)
    mutable c_meta : Predictor.meta array;  (* [no_ctrl_meta] when none *)
    mutable c_ckpt : checkpoint option array;  (* present iff mispredict *)
    mutable pool_next : handle;  (* first never-allocated row *)
    mutable free_pool : int array;  (* recycled handles (a stack) *)
    mutable free_len : int;
    mutable comp_buf : int array;  (* per-cycle completion scratch *)
    mutable comp_len : int;
    oracle_scratch : int array;  (* predict-oracle register scratch *)
    (* Only the perfect predictor reads [~outcome] at predict time (the
       interface contract: every other predictor must ignore it), so the
       side-effect-free oracle walk over the resolution slice is skipped
       entirely for real predictors. *)
    oracle_needed : bool;
    (* --- telemetry ----------------------------------------------------- *)
    events_enabled : bool;  (* false: no event values are ever built *)
    on_event : event -> unit;
    (* --- cycle accounting ---------------------------------------------- *)
    (* Gated like [events_enabled]: with [acct_enabled = false] the
       classifier never runs and the only residue on the hot path is the
       cheap unconditional int stores below ([cycle_stall],
       [fetch_stall_src], [ready_src_load]). *)
    acct_enabled : bool;
    acct : Acct.t;  (* zero-length tables when disabled *)
    mutable cycle_stall : int;  (* stall_none .. stall_mem, this cycle *)
    mutable fetch_stall_src : int;  (* fsrc_none .. fsrc_dbb *)
    mutable in_recovery : bool;
        (* set at flush, cleared by the first subsequent issue: the refill
           shadow charged to [recovery_pc] *)
    mutable recovery_pc : int;  (* pc of the last mispredicting instr *)
    ready_src_load : int array;
        (* per register: 1 when the producer that last raised [ready] was
           a load — splits operand stalls into memory vs dependency *)
    (* --- block-compiled fast path -------------------------------------- *)
    (* Populated by [Compile.attach] only when no observer is attached:
       per-pc fused fetch/execute closures (decode, operand indexing and
       ALU dispatch folded into the closure at build time) and, per pc,
       the length of the straight-line run of simple instructions that
       starts there, clipped at the I-cache line boundary. Empty arrays
       (and [compiled = false]) mean the interpreted path. *)
    mutable compiled : bool;
    mutable fetch_ops : (t -> unit) array;
    mutable run_len : int array;
    (* Sampled-mode drain: while set, the front end fetches nothing —
       the pipeline empties so architectural state can be handed to the
       functional fast-forward executor. Never set on normal runs. *)
    mutable fetch_frozen : bool
  }

let static_of (cfg : Config.t) image instr =
  let dst =
    match Instr.defs instr with r :: _ -> Reg.index r | [] -> -1
  in
  let latency =
    match instr with
    | Instr.Alu { op = Instr.Mul; _ } -> cfg.Config.mul_latency
    | Instr.Alu _ -> cfg.Config.alu_latency
    | Instr.Fpu _ -> cfg.Config.fpu_latency
    | _ -> 1
  in
  let mem_kind =
    match instr with Instr.Load _ -> 1 | Instr.Store _ -> 2 | _ -> 0
  in
  let target =
    match instr with
    | Instr.Jump l
    | Instr.Call l
    | Instr.Branch { target = l; _ }
    | Instr.Predict { target = l; _ }
    | Instr.Resolve { target = l; _ } ->
      Layout.resolve image l
    | _ -> -1
  in
  { s_fu =
      (match Instr.fu_class instr with
      | Instr.Fu_int -> fu_int
      | Instr.Fu_fp -> fu_fp
      | Instr.Fu_mem -> fu_mem
      | Instr.Fu_branch -> fu_branch
      | Instr.Fu_none -> fu_none);
    s_dst = dst;
    s_uses = Array.of_list (List.map Reg.index (Instr.uses instr));
    s_latency = latency;
    s_mem_kind = mem_kind;
    s_is_halt = instr = Instr.Halt;
    s_target = target
  }

let create ~config ?on_event ?acct image =
  let cfg : Config.t = config in
  let code = image.Layout.code in
  (match acct with
  | Some a when Acct.length a <> Array.length code ->
    invalid_arg "Machine_state.create: acct tables sized for different code"
  | _ -> ());
  let mem = Program.initial_memory image.Layout.program in
  let c = cfg.Config.cache in
  let horizon =
    c.Hierarchy.l1_latency + c.Hierarchy.l2_latency + c.Hierarchy.l3_latency
    + c.Hierarchy.mem_latency
  in
  { cfg;
    image;
    code;
    code_len = Array.length code;
    static = Array.map (static_of cfg image) code;
    stats = Stats.create ();
    hier = Hierarchy.create ~config:cfg.Config.cache ();
    predictor = Kind.create cfg.Config.predictor;
    btb = Btb.create ~entries:cfg.Config.btb_entries ();
    ras = Ras.create ~entries:cfg.Config.ras_entries ();
    dbb = Dbb.create ~entries:cfg.Config.dbb_entries;
    regs = Array.make Reg.count 0;
    mem;
    mem_words = Array.length mem;
    call_stack = [];
    spec_halted = false;
    log_addr = Array.make 1024 0;
    log_val = Array.make 1024 0;
    log_len = 0;
    log_base = 0;
    live_checkpoints = 0;
    now = 0;
    fbuf = Ring.create ~limit:cfg.Config.fetch_buffer cfg.Config.fetch_buffer;
    pending = Ring.create 64;
    next_complete = max_int;
    ready = Array.make Reg.count 0;
    park_h = -1;
    park_seq = -1;
    park_until = 0;
    sweep_bound = 0;
    fetch_pc = image.Layout.entry;
    fetch_stall_until = 0;
    current_line = -1;
    line_shift =
      (let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
       log2 c.Hierarchy.line_bytes 0 - 2);
    mshr_release = Release.create ~horizon;
    store_release = Release.create ~horizon;
    fu_left = Array.make 5 0;
    seq = 0;
    finished = false;
    stores_retired = 0;
    shadow_fetches = 0;
    i_seq = Array.make 64 0;
    i_pc = Array.make 64 0;
    i_fetch_cycle = Array.make 64 0;
    i_addr = Array.make 64 0;
    i_complete_cycle = Array.make 64 max_int;
    i_squashed = Array.make 64 0;
    i_prefetch = Array.make 64 (-1);
    c_kind = Array.make 64 ck_none;
    c_mispredict = Array.make 64 0;
    c_redirect = Array.make 64 0;
    c_site = Array.make 64 (-1);
    c_meta_pc = Array.make 64 0;
    c_actual = Array.make 64 0;
    c_dbb_slot = Array.make 64 (-1);
    c_meta = Array.make 64 no_ctrl_meta;
    c_ckpt = Array.make 64 None;
    pool_next = 0;
    free_pool = Array.make 64 0;
    free_len = 0;
    comp_buf = Array.make 64 0;
    comp_len = 0;
    oracle_scratch = Array.make Reg.count 0;
    oracle_needed = (cfg.Config.predictor = Kind.Perfect);
    events_enabled = Option.is_some on_event;
    on_event = (match on_event with Some f -> f | None -> fun _ -> ());
    acct_enabled = Option.is_some acct;
    acct = (match acct with Some a -> a | None -> Acct.create [||]);
    cycle_stall = stall_none;
    fetch_stall_src = fsrc_none;
    in_recovery = false;
    recovery_pc = -1;
    ready_src_load = Array.make Reg.count 0;
    compiled = false;
    fetch_ops = [||];
    run_len = [||];
    fetch_frozen = false
  }

(* ---- inflight pool ---------------------------------------------------- *)

let grow_pool st =
  let n = Array.length st.i_seq in
  let g a =
    let b = Array.make (2 * n) 0 in
    Array.blit a 0 b 0 n;
    b
  in
  st.i_seq <- g st.i_seq;
  st.i_pc <- g st.i_pc;
  st.i_fetch_cycle <- g st.i_fetch_cycle;
  st.i_addr <- g st.i_addr;
  st.i_complete_cycle <- g st.i_complete_cycle;
  st.i_squashed <- g st.i_squashed;
  st.i_prefetch <- g st.i_prefetch;
  st.c_kind <- g st.c_kind;
  st.c_mispredict <- g st.c_mispredict;
  st.c_redirect <- g st.c_redirect;
  st.c_site <-
    (let b = Array.make (2 * n) (-1) in
     Array.blit st.c_site 0 b 0 n;
     b);
  st.c_meta_pc <- g st.c_meta_pc;
  st.c_actual <- g st.c_actual;
  st.c_dbb_slot <- g st.c_dbb_slot;
  let m = Array.make (2 * n) no_ctrl_meta in
  Array.blit st.c_meta 0 m 0 n;
  st.c_meta <- m;
  let c = Array.make (2 * n) None in
  Array.blit st.c_ckpt 0 c 0 n;
  st.c_ckpt <- c

let alloc_inflight st =
  if st.free_len > 0 then begin
    st.free_len <- st.free_len - 1;
    st.free_pool.(st.free_len)
  end
  else begin
    if st.pool_next = Array.length st.i_seq then grow_pool st;
    let h = st.pool_next in
    st.pool_next <- h + 1;
    h
  end

(* Callers must guarantee the handle is unreachable from the fetch buffer,
   the pending deque and the completion scratch — a double recycle would
   hand the same row out twice. *)
let recycle_inflight st h =
  if st.c_kind.(h) <> ck_none then begin
    (* drop checkpoint / predictor-meta references; [c_site] is read
       without a kind guard on the issue path, so it must go back to -1 *)
    st.c_kind.(h) <- ck_none;
    st.c_site.(h) <- -1;
    if st.c_meta.(h) != no_ctrl_meta then st.c_meta.(h) <- no_ctrl_meta;
    (match st.c_ckpt.(h) with None -> () | Some _ -> st.c_ckpt.(h) <- None)
  end;
  if st.free_len = Array.length st.free_pool then begin
    let n = Array.length st.free_pool in
    let pool = Array.make (2 * n) 0 in
    Array.blit st.free_pool 0 pool 0 n;
    st.free_pool <- pool
  end;
  st.free_pool.(st.free_len) <- h;
  st.free_len <- st.free_len + 1

(* Scoreboard repair after a squash: recompute every register's ready
   cycle from the surviving in-flight producers. *)
let rebuild_scoreboard st =
  (* [ready] cycles can drop here, so the sweep bound is no longer a
     lower bound — force the next sweep to walk and recompute. *)
  st.sweep_bound <- 0;
  Array.fill st.ready 0 Reg.count 0;
  Array.fill st.ready_src_load 0 Reg.count 0;
  for k = 0 to Ring.length st.pending - 1 do
    let h = Ring.get st.pending k in
    if st.i_squashed.(h) = 0 then begin
      let si = st.static.(st.i_pc.(h)) in
      let dst = si.s_dst in
      if dst >= 0 && st.i_complete_cycle.(h) >= st.ready.(dst) then begin
        st.ready.(dst) <- st.i_complete_cycle.(h);
        st.ready_src_load.(dst) <- si.s_mem_kind land 1
      end
    end
  done

let line_of st pc = pc lsr st.line_shift

let operand_value st = function
  | Instr.Reg r -> st.regs.(Reg.index r)
  | Instr.Imm i -> i

(* ---- cycle accounting ------------------------------------------------- *)

(* Classify the cycle just simulated into exactly one {!Acct} component.
   Runs once per cycle, only when accounting is on, after issue and fetch
   — so [cycle_stall] holds this cycle's verdict and the scoreboard state
   is still at [now]. Priority: progress beats recovery beats back-end
   stalls beats front-end starvation; conservation holds by construction
   (one increment per call, one call per counted cycle). *)
let account_cycle st =
  let a = st.acct in
  let comp =
    if st.cycle_stall = stall_none then Acct.c_base
    else if st.in_recovery then Acct.c_recovery
    else if st.cycle_stall = stall_operand then begin
      (* the head is still at the fetch-buffer front (nothing issued) and
         the scoreboard has not advanced since the issue pass looked *)
      if Ring.length st.fbuf > 0 then begin
        let h = Ring.front st.fbuf in
        let uses = st.static.(st.i_pc.(h)).s_uses in
        let mem = ref false in
        for k = 0 to Array.length uses - 1 do
          let r = uses.(k) in
          if st.ready.(r) > st.now && st.ready_src_load.(r) = 1 then
            mem := true
        done;
        if !mem then Acct.c_memory else Acct.c_base
      end
      else Acct.c_base
    end
    else if st.cycle_stall = stall_fu then Acct.c_fu
    else if st.cycle_stall = stall_mem then Acct.c_mem_struct
    else if
      (* front end empty: split by what armed the fetch stall, if one is
         still live; otherwise fetch is merely refilling (front-stage
         delay, fetch off the end, spec-halted drain) *)
      st.fetch_stall_until > st.now
    then
      if st.fetch_stall_src = fsrc_icache then Acct.c_icache
      else if st.fetch_stall_src = fsrc_dbb then Acct.c_dbb
      else Acct.c_redirect
    else Acct.c_fetch_starve
  in
  a.Acct.components.(comp) <- a.Acct.components.(comp) + 1;
  if comp = Acct.c_recovery && st.recovery_pc >= 0 then
    Acct.record_recovery a ~pc:st.recovery_pc;
  if st.cycle_stall = stall_none then st.in_recovery <- false
