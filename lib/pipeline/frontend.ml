open Bv_isa
open Bv_ir
open Bv_bpred
open Bv_cache
open Machine_state

(* What will the decomposed branch actually do? Interpret the fall-through
   resolution block (condition slice + speculative loads; no stores) on
   scratch registers up to its resolve. Oracle hint for the perfect
   predictor; real predictors ignore it. *)
let predict_outcome_oracle st pc =
  let scratch = Array.copy st.regs in
  let value = function
    | Instr.Reg r -> scratch.(Reg.index r)
    | Instr.Imm i -> i
  in
  let rec walk pc steps =
    if steps > 256 || pc < 0 || pc >= st.code_len then false
    else
      match st.code.(pc) with
      | Instr.Resolve { on; src; _ } -> (scratch.(Reg.index src) <> 0) = on
      | Instr.Alu { op; dst; src1; src2 }
      | Instr.Fpu { op; dst; src1; src2 } ->
        scratch.(Reg.index dst) <-
          Instr.eval_alu op scratch.(Reg.index src1) (value src2);
        walk (pc + 1) (steps + 1)
      | Instr.Mov { dst; src } ->
        scratch.(Reg.index dst) <- value src;
        walk (pc + 1) (steps + 1)
      | Instr.Cmp { op; dst; src1; src2 } ->
        scratch.(Reg.index dst) <-
          Bool.to_int (Instr.eval_cmp op scratch.(Reg.index src1) (value src2));
        walk (pc + 1) (steps + 1)
      | Instr.Cmov { on; cond; dst; src } ->
        if (scratch.(Reg.index cond) <> 0) = on then
          scratch.(Reg.index dst) <- value src;
        walk (pc + 1) (steps + 1)
      | Instr.Load { dst; base; offset; _ } ->
        scratch.(Reg.index dst) <-
          Spec_state.spec_load st ~addr:(scratch.(Reg.index base) + offset);
        walk (pc + 1) (steps + 1)
      | Instr.Jump l -> walk (Layout.resolve st.image l) (steps + 1)
      | Instr.Nop -> walk (pc + 1) (steps + 1)
      | Instr.Store _ | Instr.Branch _ | Instr.Call _ | Instr.Ret
      | Instr.Predict _ | Instr.Halt ->
        false
  in
  walk (pc + 1) 0

let enqueue st ?(latency = 1) ?(addr = 0) ?ctrl pc instr =
  let dst = match Instr.defs instr with r :: _ -> Reg.index r | [] -> -1 in
  let inst =
    { seq = st.seq;
      pc;
      instr;
      fetch_cycle = st.now;
      fu = Instr.fu_class instr;
      dst;
      uses = List.map Reg.index (Instr.uses instr);
      addr;
      latency;
      issue_cycle = -1;
      complete_cycle = max_int;
      squashed = false;
      prefetch_arrival = -1;
      ctrl
    }
  in
  st.seq <- st.seq + 1;
  Ring.push st.fbuf inst;
  st.on_event (Fetched { cycle = st.now; seq = inst.seq; pc; instr });
  st.stats.Stats.fetched <- st.stats.Stats.fetched + 1;
  if st.shadow_fetches > 0 then st.shadow_fetches <- st.shadow_fetches - 1

(* Shared timing for taken control transfers at fetch. *)
let steer_taken st ~pc ~target =
  let bubble =
    match Btb.lookup st.btb ~pc with
    | Some t when t = target -> st.cfg.Config.taken_bubble
    | Some _ | None ->
      Btb.update st.btb ~pc ~target;
      st.cfg.Config.taken_bubble + st.cfg.Config.btb_miss_penalty
  in
  st.fetch_pc <- target;
  st.fetch_stall_until <- st.now + bubble;
  st.current_line <- -1

(* Fetch one instruction at [pc]; returns false to end this cycle's
   fetch group. *)
let fetch_exec st pc =
  let cfg = st.cfg in
  let next = pc + 1 in
  match st.code.(pc) with
  | Instr.Nop as i ->
    enqueue st pc i;
    st.fetch_pc <- next;
    true
  | Instr.Alu { op; dst; src1; src2 } as i ->
    st.regs.(Reg.index dst) <-
      Instr.eval_alu op st.regs.(Reg.index src1) (operand_value st src2);
    enqueue st
      ~latency:
        (if op = Instr.Mul then cfg.Config.mul_latency
         else cfg.Config.alu_latency)
      pc i;
    st.fetch_pc <- next;
    true
  | Instr.Fpu { op; dst; src1; src2 } as i ->
    st.regs.(Reg.index dst) <-
      Instr.eval_alu op st.regs.(Reg.index src1) (operand_value st src2);
    enqueue st ~latency:cfg.Config.fpu_latency pc i;
    st.fetch_pc <- next;
    true
  | Instr.Mov { dst; src } as i ->
    st.regs.(Reg.index dst) <- operand_value st src;
    enqueue st pc i;
    st.fetch_pc <- next;
    true
  | Instr.Cmp { op; dst; src1; src2 } as i ->
    st.regs.(Reg.index dst) <-
      Bool.to_int
        (Instr.eval_cmp op st.regs.(Reg.index src1) (operand_value st src2));
    enqueue st pc i;
    st.fetch_pc <- next;
    true
  | Instr.Cmov { on; cond; dst; src } as i ->
    if (st.regs.(Reg.index cond) <> 0) = on then
      st.regs.(Reg.index dst) <- operand_value st src;
    enqueue st pc i;
    st.fetch_pc <- next;
    true
  | Instr.Load { dst; base; offset; _ } as i ->
    let addr = st.regs.(Reg.index base) + offset in
    st.regs.(Reg.index dst) <- Spec_state.spec_load st ~addr;
    enqueue st ~addr pc i;
    st.fetch_pc <- next;
    true
  | Instr.Store { src; base; offset } as i ->
    let addr = st.regs.(Reg.index base) + offset in
    Spec_state.spec_store st ~addr st.regs.(Reg.index src);
    enqueue st ~addr pc i;
    st.fetch_pc <- next;
    true
  | Instr.Jump target as i ->
    enqueue st pc i;
    steer_taken st ~pc ~target:(Layout.resolve st.image target);
    false
  | Instr.Call target as i ->
    st.call_stack <- next :: st.call_stack;
    Ras.push st.ras next;
    enqueue st pc i;
    steer_taken st ~pc ~target:(Layout.resolve st.image target);
    false
  | Instr.Ret as i ->
    (match st.call_stack with
    | [] ->
      (* wrong-path underflow: park fetch until the flush arrives *)
      st.fetch_pc <- -1;
      false
    | ra :: rest ->
      st.call_stack <- rest;
      let predicted = Option.value (Ras.pop st.ras) ~default:ra in
      let mispredict = predicted <> ra in
      let checkpoint =
        if mispredict then Some (Spec_state.make_checkpoint st) else None
      in
      let ctrl =
        { kind = Ck_ret;
          mispredict;
          redirect_pc = ra;
          checkpoint;
          site = -1;
          meta = None;
          meta_pc = pc;
          actual_taken = true;
          dbb_slot = -1
        }
      in
      enqueue st ~ctrl pc i;
      steer_taken st ~pc ~target:predicted;
      false)
  | Instr.Branch { on; src; target; id } as i ->
    let actual_taken = (st.regs.(Reg.index src) <> 0) = on in
    let pred, meta =
      st.predictor.Predictor.predict ~pc ~outcome:actual_taken
    in
    let target_pc = Layout.resolve st.image target in
    let mispredict = pred <> actual_taken in
    let checkpoint =
      if mispredict then Some (Spec_state.make_checkpoint st) else None
    in
    let ctrl =
      { kind = Ck_branch;
        mispredict;
        redirect_pc = (if actual_taken then target_pc else next);
        checkpoint;
        site = id;
        meta = Some meta;
        meta_pc = pc;
        actual_taken;
        dbb_slot = -1
      }
    in
    enqueue st ~ctrl pc i;
    if pred then begin
      steer_taken st ~pc ~target:target_pc;
      false
    end
    else begin
      st.fetch_pc <- next;
      true
    end
  | Instr.Predict { target; id = _ } ->
    if Dbb.is_full st.dbb then begin
      st.stats.Stats.dbb_full_stalls <- st.stats.Stats.dbb_full_stalls + 1;
      st.fetch_stall_until <- st.now + 1;
      false
    end
    else begin
      let outcome = predict_outcome_oracle st pc in
      let pred, meta = st.predictor.Predictor.predict ~pc ~outcome in
      (match
         Dbb.allocate st.dbb
           { Dbb.predict_pc = pc; meta; predicted_taken = pred }
       with
      | None -> assert false
      | Some _slot -> ());
      st.stats.Stats.predicts_fetched <- st.stats.Stats.predicts_fetched + 1;
      st.stats.Stats.dbb_max_occupancy <-
        max st.stats.Stats.dbb_max_occupancy (Dbb.occupancy st.dbb);
      (* The predict is dropped after steering: no fetch-buffer entry,
         no issue slot. *)
      if pred then begin
        steer_taken st ~pc ~target:(Layout.resolve st.image target);
        false
      end
      else begin
        st.fetch_pc <- next;
        true
      end
    end
  | Instr.Resolve { on; src; target; predicted_taken; id } as i ->
    let actual_taken = (st.regs.(Reg.index src) <> 0) = on in
    let mispredict = actual_taken <> predicted_taken in
    let slot, meta, meta_pc =
      match Dbb.claim_newest st.dbb with
      | Some (slot, entry) -> (slot, Some entry.Dbb.meta, entry.Dbb.predict_pc)
      | None -> (-1, None, pc)
    in
    let checkpoint =
      if mispredict then Some (Spec_state.make_checkpoint st) else None
    in
    let ctrl =
      { kind = Ck_resolve;
        mispredict;
        redirect_pc =
          (if mispredict then Layout.resolve st.image target else next);
        checkpoint;
        site = id;
        meta;
        meta_pc;
        actual_taken;
        dbb_slot = slot
      }
    in
    enqueue st ~ctrl pc i;
    (* always predicted not-taken by the front end *)
    st.fetch_pc <- next;
    true
  | Instr.Halt as i ->
    st.spec_halted <- true;
    enqueue st pc i;
    false

let fetch_one st =
  let pc = st.fetch_pc in
  if pc < 0 || pc >= st.code_len then false
  else begin
    let line = line_of st pc in
    if line <> st.current_line then begin
      let lat, _lvl = Hierarchy.inst_access st.hier ~addr:(pc * 4) in
      st.current_line <- line;
      if lat > 0 then begin
        st.stats.Stats.icache_misses <- st.stats.Stats.icache_misses + 1;
        if st.shadow_fetches > 0 then
          st.stats.Stats.icache_misses_in_shadow <-
            st.stats.Stats.icache_misses_in_shadow + 1;
        st.stats.Stats.icache_stall_cycles <-
          st.stats.Stats.icache_stall_cycles + lat;
        st.fetch_stall_until <- st.now + lat;
        false
      end
      else fetch_exec st pc
    end
    else fetch_exec st pc
  end

(* Fetch up to [width] instructions this cycle; stops on taken steer,
   stall, halt, or a full fetch buffer. *)
let fetch_group st =
  let cfg = st.cfg in
  let fetched_now = ref 0 in
  let go = ref true in
  while
    !go
    && !fetched_now < cfg.Config.width
    && (not st.spec_halted)
    && st.fetch_stall_until <= st.now
    && not (Ring.is_full st.fbuf)
  do
    if fetch_one st then incr fetched_now else go := false
  done
