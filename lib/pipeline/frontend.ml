open Bv_isa
open Bv_bpred
open Bv_cache
open Machine_state

(* What will the decomposed branch actually do? Interpret the fall-through
   resolution block (condition slice + speculative loads; no stores) on
   scratch registers up to its resolve. Oracle hint for the perfect
   predictor; real predictors ignore it. *)
let predict_outcome_oracle st pc =
  let scratch = st.oracle_scratch in
  Array.blit st.regs 0 scratch 0 (Array.length scratch);
  let value = function
    | Instr.Reg r -> scratch.(Reg.index r)
    | Instr.Imm i -> i
  in
  let rec walk pc steps =
    if steps > 256 || pc < 0 || pc >= st.code_len then false
    else
      match st.code.(pc) with
      | Instr.Resolve { on; src; _ } -> (scratch.(Reg.index src) <> 0) = on
      | Instr.Alu { op; dst; src1; src2 }
      | Instr.Fpu { op; dst; src1; src2 } ->
        scratch.(Reg.index dst) <-
          Instr.eval_alu op scratch.(Reg.index src1) (value src2);
        walk (pc + 1) (steps + 1)
      | Instr.Mov { dst; src } ->
        scratch.(Reg.index dst) <- value src;
        walk (pc + 1) (steps + 1)
      | Instr.Cmp { op; dst; src1; src2 } ->
        scratch.(Reg.index dst) <-
          Bool.to_int (Instr.eval_cmp op scratch.(Reg.index src1) (value src2));
        walk (pc + 1) (steps + 1)
      | Instr.Cmov { on; cond; dst; src } ->
        if (scratch.(Reg.index cond) <> 0) = on then
          scratch.(Reg.index dst) <- value src;
        walk (pc + 1) (steps + 1)
      | Instr.Load { dst; base; offset; _ } ->
        scratch.(Reg.index dst) <-
          Spec_state.spec_load st ~addr:(scratch.(Reg.index base) + offset);
        walk (pc + 1) (steps + 1)
      | Instr.Jump _ -> walk st.static.(pc).s_target (steps + 1)
      | Instr.Nop -> walk (pc + 1) (steps + 1)
      | Instr.Store _ | Instr.Branch _ | Instr.Call _ | Instr.Ret
      | Instr.Predict _ | Instr.Halt ->
        false
  in
  walk (pc + 1) 0

(* Enqueue and return the pool row, so control instructions can fill
   their [c_*] columns in place (recycled / fresh rows already hold
   [ck_none] and cleared pointer columns). [addr] is a plain labeled
   argument — an optional int would box at every memory-instruction
   call site. *)
let enqueue_h st ~addr pc instr =
  let h = alloc_inflight st in
  st.i_seq.(h) <- st.seq;
  st.i_pc.(h) <- pc;
  st.i_fetch_cycle.(h) <- st.now;
  st.i_addr.(h) <- addr;
  st.i_complete_cycle.(h) <- max_int;
  st.i_squashed.(h) <- 0;
  st.i_prefetch.(h) <- -1;
  st.seq <- st.seq + 1;
  (* Keep the runahead sweep bound a lower bound: a new memory entry is
     a fresh sweep candidate, actionable from its operand readiness. *)
  if st.cfg.Config.runahead then begin
    let si = st.static.(pc) in
    if si.s_mem_kind <> 0 then begin
      let r = Scoreboard.readiness st si.s_uses in
      if r < st.sweep_bound then st.sweep_bound <- r
    end
  end;
  Ring.push st.fbuf h;
  if st.events_enabled then
    st.on_event (Fetched { cycle = st.now; seq = st.i_seq.(h); pc; instr });
  st.stats.Stats.fetched <- st.stats.Stats.fetched + 1;
  if st.shadow_fetches > 0 then st.shadow_fetches <- st.shadow_fetches - 1;
  h

let enqueue st pc instr = ignore (enqueue_h st ~addr:0 pc instr)

(* Shared timing for taken control transfers at fetch. *)
let steer_taken st ~pc ~target =
  let bubble =
    let t = Btb.find st.btb ~pc in
    if t = target then st.cfg.Config.taken_bubble
    else begin
      Btb.update st.btb ~pc ~target;
      st.cfg.Config.taken_bubble + st.cfg.Config.btb_miss_penalty
    end
  in
  st.fetch_pc <- target;
  st.fetch_stall_until <- st.now + bubble;
  st.fetch_stall_src <- fsrc_redirect;
  st.current_line <- -1

(* Fetch one instruction at [pc]; returns false to end this cycle's
   fetch group. *)
let fetch_exec st pc =
  let next = pc + 1 in
  match st.code.(pc) with
  | Instr.Nop as i ->
    enqueue st pc i;
    st.fetch_pc <- next;
    true
  | Instr.Alu { op; dst; src1; src2 } as i ->
    st.regs.(Reg.index dst) <-
      Instr.eval_alu op st.regs.(Reg.index src1) (operand_value st src2);
    enqueue st pc i;
    st.fetch_pc <- next;
    true
  | Instr.Fpu { op; dst; src1; src2 } as i ->
    st.regs.(Reg.index dst) <-
      Instr.eval_alu op st.regs.(Reg.index src1) (operand_value st src2);
    enqueue st pc i;
    st.fetch_pc <- next;
    true
  | Instr.Mov { dst; src } as i ->
    st.regs.(Reg.index dst) <- operand_value st src;
    enqueue st pc i;
    st.fetch_pc <- next;
    true
  | Instr.Cmp { op; dst; src1; src2 } as i ->
    st.regs.(Reg.index dst) <-
      Bool.to_int
        (Instr.eval_cmp op st.regs.(Reg.index src1) (operand_value st src2));
    enqueue st pc i;
    st.fetch_pc <- next;
    true
  | Instr.Cmov { on; cond; dst; src } as i ->
    if (st.regs.(Reg.index cond) <> 0) = on then
      st.regs.(Reg.index dst) <- operand_value st src;
    enqueue st pc i;
    st.fetch_pc <- next;
    true
  | Instr.Load { dst; base; offset; _ } as i ->
    let addr = st.regs.(Reg.index base) + offset in
    st.regs.(Reg.index dst) <- Spec_state.spec_load st ~addr;
    ignore (enqueue_h st ~addr pc i);
    st.fetch_pc <- next;
    true
  | Instr.Store { src; base; offset } as i ->
    let addr = st.regs.(Reg.index base) + offset in
    Spec_state.spec_store st ~addr st.regs.(Reg.index src);
    ignore (enqueue_h st ~addr pc i);
    st.fetch_pc <- next;
    true
  | Instr.Jump _ as i ->
    enqueue st pc i;
    steer_taken st ~pc ~target:st.static.(pc).s_target;
    false
  | Instr.Call _ as i ->
    st.call_stack <- next :: st.call_stack;
    Ras.push st.ras next;
    enqueue st pc i;
    steer_taken st ~pc ~target:st.static.(pc).s_target;
    false
  | Instr.Ret as i ->
    (match st.call_stack with
    | [] ->
      (* wrong-path underflow: park fetch until the flush arrives *)
      st.fetch_pc <- -1;
      false
    | ra :: rest ->
      st.call_stack <- rest;
      let predicted = Option.value (Ras.pop st.ras) ~default:ra in
      let mispredict = predicted <> ra in
      let checkpoint =
        if mispredict then Some (Spec_state.make_checkpoint st) else None
      in
      let h = enqueue_h st ~addr:0 pc i in
      (* [c_site] stays -1 and [c_meta] stays [no_ctrl_meta] from the
         recycled row; a ret reads neither *)
      st.c_kind.(h) <- ck_ret;
      st.c_mispredict.(h) <- Bool.to_int mispredict;
      st.c_redirect.(h) <- ra;
      (match checkpoint with None -> () | Some _ -> st.c_ckpt.(h) <- checkpoint);
      steer_taken st ~pc ~target:predicted;
      false)
  | Instr.Branch { on; src; target = _; id } as i ->
    let actual_taken = (st.regs.(Reg.index src) <> 0) = on in
    let pred, meta =
      st.predictor.Predictor.predict ~pc ~outcome:actual_taken
    in
    let target_pc = st.static.(pc).s_target in
    let mispredict = pred <> actual_taken in
    let checkpoint =
      if mispredict then Some (Spec_state.make_checkpoint st) else None
    in
    let h = enqueue_h st ~addr:0 pc i in
    st.c_kind.(h) <- ck_branch;
    st.c_mispredict.(h) <- Bool.to_int mispredict;
    st.c_redirect.(h) <- (if actual_taken then target_pc else next);
    st.c_site.(h) <- id;
    st.c_meta.(h) <- meta;
    st.c_meta_pc.(h) <- pc;
    st.c_actual.(h) <- Bool.to_int actual_taken;
    (match checkpoint with None -> () | Some _ -> st.c_ckpt.(h) <- checkpoint);
    if pred then begin
      steer_taken st ~pc ~target:target_pc;
      false
    end
    else begin
      st.fetch_pc <- next;
      true
    end
  | Instr.Predict { target = _; id = _ } ->
    if Dbb.is_full st.dbb then begin
      st.stats.Stats.dbb_full_stalls <- st.stats.Stats.dbb_full_stalls + 1;
      st.fetch_stall_until <- st.now + 1;
      st.fetch_stall_src <- fsrc_dbb;
      false
    end
    else begin
      (* the walk is side-effect-free and its result only feeds the
         perfect predictor's [~outcome] — skip it for real predictors *)
      let outcome = st.oracle_needed && predict_outcome_oracle st pc in
      let pred, meta = st.predictor.Predictor.predict ~pc ~outcome in
      let slot = Dbb.allocate st.dbb ~pc ~meta ~taken:pred in
      assert (slot >= 0);
      ignore slot;
      st.stats.Stats.predicts_fetched <- st.stats.Stats.predicts_fetched + 1;
      st.stats.Stats.dbb_max_occupancy <-
        max st.stats.Stats.dbb_max_occupancy (Dbb.occupancy st.dbb);
      (* The predict is dropped after steering: no fetch-buffer entry,
         no issue slot. *)
      if pred then begin
        steer_taken st ~pc ~target:st.static.(pc).s_target;
        false
      end
      else begin
        st.fetch_pc <- next;
        true
      end
    end
  | Instr.Resolve { on; src; target = _; predicted_taken; id } as i ->
    let actual_taken = (st.regs.(Reg.index src) <> 0) = on in
    let mispredict = actual_taken <> predicted_taken in
    let slot = Dbb.claim_newest st.dbb in
    let checkpoint =
      if mispredict then Some (Spec_state.make_checkpoint st) else None
    in
    let h = enqueue_h st ~addr:0 pc i in
    st.c_kind.(h) <- ck_resolve;
    st.c_mispredict.(h) <- Bool.to_int mispredict;
    st.c_redirect.(h) <- (if mispredict then st.static.(pc).s_target else next);
    st.c_site.(h) <- id;
    if slot >= 0 then begin
      st.c_meta.(h) <- Dbb.slot_meta st.dbb slot;
      st.c_meta_pc.(h) <- Dbb.slot_pc st.dbb slot
    end
    else st.c_meta_pc.(h) <- pc;
    st.c_actual.(h) <- Bool.to_int actual_taken;
    st.c_dbb_slot.(h) <- slot;
    (match checkpoint with None -> () | Some _ -> st.c_ckpt.(h) <- checkpoint);
    (* always predicted not-taken by the front end *)
    st.fetch_pc <- next;
    true
  | Instr.Halt as i ->
    st.spec_halted <- true;
    enqueue st pc i;
    false

let fetch_one st =
  let pc = st.fetch_pc in
  if pc < 0 || pc >= st.code_len then false
  else begin
    let line = line_of st pc in
    if line <> st.current_line then begin
      let lat = Hierarchy.inst_access_latency st.hier ~addr:(pc * 4) in
      st.current_line <- line;
      if lat > 0 then begin
        st.stats.Stats.icache_misses <- st.stats.Stats.icache_misses + 1;
        if st.shadow_fetches > 0 then
          st.stats.Stats.icache_misses_in_shadow <-
            st.stats.Stats.icache_misses_in_shadow + 1;
        st.stats.Stats.icache_stall_cycles <-
          st.stats.Stats.icache_stall_cycles + lat;
        st.fetch_stall_until <- st.now + lat;
        st.fetch_stall_src <- fsrc_icache;
        false
      end
      else fetch_exec st pc
    end
    else fetch_exec st pc
  end

(* Fetch up to [width] instructions this cycle; stops on taken steer,
   stall, halt, or a full fetch buffer. *)
let fetch_group_interp st =
  let cfg = st.cfg in
  let fetched_now = ref 0 in
  let go = ref true in
  while
    !go
    && !fetched_now < cfg.Config.width
    && (not st.spec_halted)
    && st.fetch_stall_until <= st.now
    && not (Ring.is_full st.fbuf)
  do
    if fetch_one st then incr fetched_now else go := false
  done

(* Block-compiled fetch group: when the stream sits on a straight-line
   run ([run_len] > 0) with the line already resident, the width budget,
   buffer space and line checks are hoisted out of the per-instruction
   loop and the whole run dispatches through the fused per-pc closures —
   one closure call per instruction, no decode match. Control
   instructions, line fills and stalls bail to [fetch_exec]/the loop
   conditions exactly as the interpreted path does, so the two paths are
   byte-identical (the golden tests assert this). *)
let fetch_group_compiled st =
  let cfg = st.cfg in
  let width = cfg.Config.width in
  let fetched_now = ref 0 in
  let go = ref true in
  while
    !go && !fetched_now < width
    && (not st.spec_halted)
    && st.fetch_stall_until <= st.now
    && not (Ring.is_full st.fbuf)
  do
    let pc = st.fetch_pc in
    if pc < 0 || pc >= st.code_len then go := false
    else begin
      let line = line_of st pc in
      if line <> st.current_line then begin
        (* line step: replicate [fetch_one]'s miss handling, then loop
           (a hit re-enters with the line resident, as the interpreted
           path falls through to [fetch_exec]) *)
        let lat = Hierarchy.inst_access_latency st.hier ~addr:(pc * 4) in
        st.current_line <- line;
        if lat > 0 then begin
          st.stats.Stats.icache_misses <- st.stats.Stats.icache_misses + 1;
          if st.shadow_fetches > 0 then
            st.stats.Stats.icache_misses_in_shadow <-
              st.stats.Stats.icache_misses_in_shadow + 1;
          st.stats.Stats.icache_stall_cycles <-
            st.stats.Stats.icache_stall_cycles + lat;
          st.fetch_stall_until <- st.now + lat;
          st.fetch_stall_src <- fsrc_icache;
          go := false
        end
      end
      else begin
        let rl = st.run_len.(pc) in
        if rl > 0 then begin
          let k =
            imin rl
              (imin (width - !fetched_now)
                 (Ring.capacity st.fbuf - Ring.length st.fbuf))
          in
          let ops = st.fetch_ops in
          for j = pc to pc + k - 1 do
            ops.(j) st
          done;
          st.fetch_pc <- pc + k;
          fetched_now := !fetched_now + k
        end
        else if fetch_exec st pc then incr fetched_now
        else go := false
      end
    end
  done

let fetch_group st =
  if st.fetch_frozen then ()
  else if st.compiled then fetch_group_compiled st
  else fetch_group_interp st
