open Bv_isa
open Machine_state

(* ---- speculative memory (wrong-path safe) ----------------------------- *)

let log_push st w old =
  if st.log_len = Array.length st.log_addr then begin
    let grow a = Array.append a (Array.make (Array.length a) 0) in
    st.log_addr <- grow st.log_addr;
    st.log_val <- grow st.log_val
  end;
  st.log_addr.(st.log_len) <- w;
  st.log_val.(st.log_len) <- old;
  st.log_len <- st.log_len + 1

let log_undo_to st abs_pos =
  while st.log_base + st.log_len > abs_pos do
    st.log_len <- st.log_len - 1;
    st.mem.(st.log_addr.(st.log_len)) <- st.log_val.(st.log_len)
  done

let log_trim st =
  if st.live_checkpoints = 0 then begin
    st.log_base <- st.log_base + st.log_len;
    st.log_len <- 0
  end

let log_depth st = st.log_len

let spec_load st ~addr =
  if addr land 7 <> 0 || addr < 0 || addr / 8 >= st.mem_words then 0
  else st.mem.(addr / 8)

let spec_store st ~addr v =
  if addr land 7 = 0 && addr >= 0 && addr / 8 < st.mem_words then begin
    let w = addr / 8 in
    log_push st w st.mem.(w);
    st.mem.(w) <- v
  end

(* ---- checkpoints ------------------------------------------------------ *)

let make_checkpoint st =
  st.live_checkpoints <- st.live_checkpoints + 1;
  { ck_regs = Array.copy st.regs;
    ck_undo = st.log_base + st.log_len;
    ck_stack = st.call_stack;
    ck_ras_depth = Bv_bpred.Ras.depth st.ras;
    ck_dbb = Dbb.snapshot st.dbb;
    ck_halted = st.spec_halted
  }

let release_checkpoint st h =
  match st.c_ckpt.(h) with
  | Some _ -> st.live_checkpoints <- st.live_checkpoints - 1
  | None -> ()

(* ---- misprediction flush ---------------------------------------------- *)

let flush st ~from_seq ~checkpoint ~new_pc =
  st.stats.Stats.redirects <- st.stats.Stats.redirects + 1;
  Array.blit checkpoint.ck_regs 0 st.regs 0 Reg.count;
  log_undo_to st checkpoint.ck_undo;
  st.call_stack <- checkpoint.ck_stack;
  (* RAS repair: recover the stack depth (entries pushed on the wrong
     path are popped; deeper corruption is accepted, as in hardware). *)
  while Bv_bpred.Ras.depth st.ras > checkpoint.ck_ras_depth do
    ignore (Bv_bpred.Ras.pop st.ras)
  done;
  Dbb.restore st.dbb checkpoint.ck_dbb;
  st.spec_halted <- checkpoint.ck_halted;
  if st.events_enabled then
    st.on_event (Redirected { cycle = st.now; after_seq = from_seq; new_pc });
  (* Wrong-path fetches were only ever reachable from the fetch buffer, so
     they go straight back to the free list. *)
  Ring.truncate_tail st.fbuf
    ~keep:(fun h -> st.i_seq.(h) <= from_seq)
    ~removed:(fun h ->
      st.stats.Stats.squashed_fetched <- st.stats.Stats.squashed_fetched + 1;
      if st.events_enabled then
        st.on_event (Squashed { cycle = st.now; seq = st.i_seq.(h) });
      release_checkpoint st h;
      recycle_inflight st h);
  (* The deque is in seq order, so the squash set is a contiguous tail.
     A squashed entry whose complete_cycle has arrived is also sitting in
     the completion scratch (collected before this flush ran) and will be
     recycled there; one still in flight is reachable from nowhere else
     once dropped, so it is recycled here. *)
  let len = Ring.length st.pending in
  let cut = ref len in
  while !cut > 0 && st.i_seq.(Ring.get st.pending (!cut - 1)) > from_seq do
    decr cut
  done;
  for k = !cut to len - 1 do
    let h = Ring.get st.pending k in
    st.i_squashed.(h) <- 1;
    if st.events_enabled then
      st.on_event (Squashed { cycle = st.now; seq = st.i_seq.(h) });
    st.stats.Stats.squashed_issued <- st.stats.Stats.squashed_issued + 1;
    if st.static.(st.i_pc.(h)).s_mem_kind = 2 then
      st.stores_retired <- st.stores_retired - 1;
    release_checkpoint st h;
    if st.i_complete_cycle.(h) > st.now then recycle_inflight st h
  done;
  Ring.drop_tail st.pending (len - !cut);
  rebuild_scoreboard st;
  st.fetch_pc <- new_pc;
  st.fetch_stall_until <- st.now + 1;
  st.fetch_stall_src <- fsrc_redirect;
  st.current_line <- -1;
  st.shadow_fetches <- 16;
  if st.acct_enabled then st.in_recovery <- true

let mispredict_flush st h =
  match st.c_ckpt.(h) with
  | Some ck ->
    st.live_checkpoints <- st.live_checkpoints - 1;
    if st.acct_enabled then st.recovery_pc <- st.i_pc.(h);
    flush st ~from_seq:st.i_seq.(h) ~checkpoint:ck ~new_pc:st.c_redirect.(h)
  | None -> assert false
