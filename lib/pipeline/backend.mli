(** Completion stage: retire finished instructions, train the predictor,
    and trigger mispredict recovery.

    Control-instruction completion is where speculation resolves — the
    predictor is trained, mispredicts invoke {!Spec_state.flush}, and
    resolves free their DBB slot (after any flush, so the restored
    snapshot cannot resurrect the entry). *)

open Machine_state

val process_completions : t -> unit
(** Complete every pending instruction whose [complete_cycle] has
    arrived, in seq order; drop them from the pending list. *)

val handle_completion : t -> handle -> unit
(** The per-instruction completion action (predictor training, stats,
    mispredict flush). Exposed for stage-level tests. *)
