(** Chrome/Perfetto trace export of the pipeline event stream.

    Feed {!on_event} from {!Machine.run}'s [on_event] hook; {!to_json}
    then renders per-instruction spans — an outer fetch→complete span per
    instruction with an inner issue→complete "execute" span nested inside
    it — plus instant events for squashes and fetch redirects. One
    simulated cycle maps to 1 us, so the Perfetto ruler reads in cycles.

    Instructions are laid out on greedy "lanes" (trace threads): each
    instruction goes to the lowest-numbered lane whose previous span has
    ended, so concurrent in-flight instructions render side by side
    instead of as bogus nesting. Open in {:https://ui.perfetto.dev} or
    chrome://tracing. *)

type t

val create : ?max_instructions:int -> ?pid:int -> ?process_name:string ->
  unit -> t
(** Record at most [max_instructions] (default 100_000) instructions;
    later fetches (and their squashes) are counted in {!dropped} but not
    recorded — redirect instants are always kept. [pid] (default 1) and
    [process_name] label the trace process — use distinct pids to merge
    baseline and experimental runs into one trace. *)

val on_event : t -> Machine.event -> unit

val dropped : t -> int
(** Instructions beyond the [max_instructions] cap. *)

val events : t -> Bv_obs.Json.t list
(** Trace events for this run, for merging with another collector's via
    {!Bv_obs.Trace_event.document}. *)

val to_json : t -> Bv_obs.Json.t
(** A complete single-process trace document. *)

val cpi_counter_events :
  ?pid:int -> ?name:string -> Sampler.window list -> Bv_obs.Json.t list
(** Counter-track events (one stacked series per {!Acct} component, one
    sample per window at its start cycle) from windows recorded by a
    {!Sampler} created with an [acct]; windows without component deltas
    contribute nothing. Merge with {!events} via
    {!Bv_obs.Trace_event.document} to overlay the CPI stack on the
    instruction lanes ([name] defaults to ["cpi_stack"], [pid] to 1 —
    match the span collector's pid). *)
