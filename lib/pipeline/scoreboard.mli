(** Issue stage: in-order issue from the fetch-buffer head with
    head-of-line blocking.

    Up to [width] instructions issue per cycle, gated on operand
    readiness (the register scoreboard), functional-unit slots, and
    memory structural resources (MSHRs, store buffer). Stall causes are
    classified into the [Stats] head-stall counters, and per-site
    condition-wait (ASPCB) is measured at issue. When runahead is
    enabled, a fully-stalled cycle walks the fetch buffer and prefetches
    ready addresses. *)

val issue : Machine_state.t -> unit
