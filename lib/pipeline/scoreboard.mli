(** Issue stage: in-order issue from the fetch-buffer head with
    head-of-line blocking.

    Up to [width] instructions issue per cycle, gated on operand
    readiness (the register scoreboard), functional-unit slots, and
    memory structural resources (MSHRs, store buffer). Stall causes are
    classified into the [Stats] head-stall counters, and per-site
    condition-wait (ASPCB) is measured at issue. When runahead is
    enabled, a fully-stalled cycle walks the fetch buffer and prefetches
    ready addresses. *)

val issue : Machine_state.t -> unit

val readiness : Machine_state.t -> int array -> int
(** Max [ready] cycle over a pre-decoded operand index array (0 when
    none) — the earliest cycle every operand can be available. Used by
    the fetch paths to fold newly enqueued memory entries into
    [sweep_bound]. *)
