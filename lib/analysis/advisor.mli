(** Profitability advisor for branch decomposition.

    Fuses {!Costmodel}'s static per-site estimates with a TRAIN-input
    {!Bv_profile.Profile} (when one is present) into a cycles-saved
    estimate and a ranked recommendation list.

    The estimate, per execution of the site, with [p] the predicted-side
    accuracy (profiled predictability, or the {!Costmodel.class_prior}
    for the site's class):

    - each expected {e misprediction} saves the baseline's
      squash-and-refill: the decomposed resolve keeps the
      path-independent slice and corrects locally, so the model credits
      [redirect_penalty], less the (discounted) wrong-side work the
      resolution block burned past the slice
      ([waste = merged_height - slice_height]);
    - a {e correct} prediction saves a discounted fraction of the
      overlap the merged resolution block buys
      ([slice_height + prefix_height - merged_height] of the predicted
      side) — discounted because the in-order front end already
      overlaps adjacent blocks' issue — minus the commit-move tax of
      its renamed temporaries;

    so [saved = (1 - p) * (penalty - k * waste) + p * k * overlap
    - commit_tax] with [k = overlap_discount], scaled by execution
    count, less a static-growth penalty. Sites are then gated
    (eligibility, forwardness, heat, the paper's predictability-minus-
    bias margin when profiled, DBB pressure, positive savings) and ranked
    by total estimated cycles saved; ties break towards the lower site id
    so reports are deterministic.

    [validate] joins the static ranking against measured per-site
    recovery cycles (e.g. {!Bv_pipeline.Acct}'s [by_site] on a baseline
    run, passed in as plain pairs to keep this library independent of the
    pipeline) and reports a Spearman rank correlation plus the sites
    whose static and measured ranks diverge beyond a bound. *)

open Bv_isa
open Bv_profile

type config =
  { redirect_penalty : int;  (** front-end redirect cost, cycles *)
    overlap_discount : float;
        (** fraction of schedule overlap/waste counted as new *)
    threshold : float;  (** required predictability-minus-bias margin *)
    min_executed : int;
    growth_penalty : float;  (** cycles charged per static instr added *)
    dbb_entries : int;
    nominal_execs : int  (** assumed site heat when unprofiled *)
  }

val default_config : config
(** [redirect_penalty 14] (the harness's pipeline refill),
    [overlap_discount 0.25], [threshold 0.05] and [min_executed 100]
    (candidate selection's defaults), [growth_penalty 10.],
    [dbb_entries 16], [nominal_execs 1000]. *)

type recommendation =
  { cost : Costmodel.site_cost;
    profiled : bool;
    execs : int;
    predictability : float;
    bias : float;
    taken_rate : float;
    overlap : int;  (** cycles hidden on a correct prediction *)
    waste : int;  (** extra cycles burned on a misprediction *)
    cycles_saved : float;  (** total estimate across [execs] *)
    rejected : string option  (** [None] iff the site is recommended *)
  }

type t =
  { sites : recommendation list;  (** every conditional branch, ranked *)
    recommended : recommendation list  (** the [rejected = None] subset *)
  }

val advise :
  ?config:config -> ?profile:Profile.t -> Costmodel.site_cost list -> t
(** Rank the costed sites. With a profile, per-site heat/accuracy/bias
    come from it (sites absent from the profile count as never executed);
    without one, class priors and [nominal_execs] stand in. *)

type validation =
  { joined : (recommendation * float) list;
        (** recommendation, measured recovery cycles — sites present on
            both sides, in static rank order *)
    spearman : float;  (** rank correlation, NaN when under 2 points *)
    outliers : (recommendation * float * int) list
        (** sites whose static and measured rank differ by more than the
            bound: recommendation, measured cycles, rank divergence *)
  }

val validate :
  ?max_rank_divergence:int ->
  measured:(int * float) list ->
  t ->
  validation
(** Join static estimates against measured per-site cost, over the sites
    the advisor scored as savers ([cycles_saved > 0] or recommended).
    [measured] maps site id to measured recovery cycles;
    [max_rank_divergence] defaults to a third of the joined count (at
    least 3). Spearman uses average ranks for ties. *)

val spearman : float array -> float array -> float
(** Rank correlation of two equal-length samples, average-tie ranks.
    Exposed for the validation tests. *)

val recommendation_to_json : recommendation -> Bv_obs.Json.t

val to_json : ?label:Label.t -> t -> Bv_obs.Json.t
(** [{schema_version; label?; sites; recommended}] — [sites] in rank
    order, so reports diff cleanly. *)

val validation_to_json : validation -> Bv_obs.Json.t
