(** Flow-sensitive may-alias analysis over a procedure's memory ops.

    Built on {!Dataflow.Make}: each register is tracked as a byte
    {e interval}, either absolute or relative to a register's value at
    procedure entry — joined to an unknown top element at conflicting
    merges and havocked across calls. Intervals follow the wrap-guarded
    rules of {!Symexec.range}; the decisive one is masked indexing,
    [x & m] landing in [[0, m]] whatever [x] is, which bounds a
    dynamically computed cursor to its data window. Every [Load]/[Store]
    occurrence is then classified by the abstract address interval it
    accesses.

    Two memory ops {e may alias} unless both resolve to addresses in the
    same region (absolute, or relative to the same entry register) whose
    8-byte access windows cannot overlap. Constant (absolute) and
    register-relative regions are mutually may-aliasing — a register's
    entry value could point anywhere.

    Occurrences are keyed by physical instruction identity, so the verdict
    survives reordering (the scheduler permutes, never copies). The
    transformation does share one instruction object between two blocks
    (a condition slice sits in both resolution blocks); duplicated
    occurrences are joined conservatively. Used by
    {!Bv_sched.Sched.schedule_body} to relax its store-barrier rule to
    provably-disjoint pairs. *)

open Bv_isa
open Bv_ir

type t

type address =
  | Absolute of int * int  (** byte address within [lo, hi] *)
  | Reg_relative of Reg.t * int * int
      (** [base]'s value at procedure entry, plus a displacement within
          [lo, hi] *)
  | Unknown

val analyze : ?call_mod:(Label.t -> Reg.t list option) -> Proc.t -> t
(** [call_mod] is an interprocedural summary hook: at a [Term.Call] to
    [target], only the registers [call_mod target] reports are havocked
    instead of all of them ([None] — unknown callee — keeps the
    all-registers worst case, as does omitting [call_mod] entirely,
    which preserves the historical intra-procedural behaviour
    byte-for-byte). Pass {!Summary.call_mod} of a computed environment. *)

(** {2 Interval domain (exposed for the interprocedural {!Summary} engine)}

    The raw register lattice: a byte interval, absolute or relative to a
    register's value at procedure entry. [facts] is indexed by
    {!Reg.index}. *)

type absval =
  | Abs of (int * int)  (** value within [lo, hi] *)
  | Entry of int * (int * int)
      (** entry-register index plus displacement interval *)
  | Top

type facts = absval array

type solution

val solve : ?call_mod:(Label.t -> Reg.t list option) -> Proc.t -> solution
(** The forward interval solve {!analyze} is built on, without the
    per-occurrence address table. *)

val entry_facts : solution -> Label.t -> facts option
(** Fresh copy of the register facts at the named block's entry; [None]
    for blocks unreachable from the procedure entry. *)

val step_instr : facts -> Instr.t -> unit
(** Advance the facts across one body instruction, in place. *)

val address_at : facts -> base:Reg.t -> offset:int -> address
(** Abstract address of an access to [base + offset] under the facts. *)

val rebase : address -> facts -> address
(** Translate an address expressed in a {e callee}'s entry frame into
    the caller's frame, given the caller's register facts at the call:
    registers are global, so the callee's entry value of [r] is the
    caller's value of [r] at the call terminator. Wrap-guarded; anything
    that cannot be translated exactly becomes [Unknown]. *)

val address_of : t -> Instr.t -> address
(** Abstract address of a [Load]/[Store] occurrence of the analyzed
    procedure; [Unknown] for anything else. *)

val may_alias : t -> Instr.t -> Instr.t -> bool
(** Conservative: [false] only when both occurrences provably access
    disjoint words. *)
