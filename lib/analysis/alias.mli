(** Flow-sensitive may-alias analysis over a procedure's memory ops.

    Built on {!Dataflow.Make}: each register is tracked as a byte
    {e interval}, either absolute or relative to a register's value at
    procedure entry — joined to an unknown top element at conflicting
    merges and havocked across calls. Intervals follow the wrap-guarded
    rules of {!Symexec.range}; the decisive one is masked indexing,
    [x & m] landing in [[0, m]] whatever [x] is, which bounds a
    dynamically computed cursor to its data window. Every [Load]/[Store]
    occurrence is then classified by the abstract address interval it
    accesses.

    Two memory ops {e may alias} unless both resolve to addresses in the
    same region (absolute, or relative to the same entry register) whose
    8-byte access windows cannot overlap. Constant (absolute) and
    register-relative regions are mutually may-aliasing — a register's
    entry value could point anywhere.

    Occurrences are keyed by physical instruction identity, so the verdict
    survives reordering (the scheduler permutes, never copies). The
    transformation does share one instruction object between two blocks
    (a condition slice sits in both resolution blocks); duplicated
    occurrences are joined conservatively. Used by
    {!Bv_sched.Sched.schedule_body} to relax its store-barrier rule to
    provably-disjoint pairs. *)

open Bv_isa
open Bv_ir

type t

type address =
  | Absolute of int * int  (** byte address within [lo, hi] *)
  | Reg_relative of Reg.t * int * int
      (** [base]'s value at procedure entry, plus a displacement within
          [lo, hi] *)
  | Unknown

val analyze : Proc.t -> t

val address_of : t -> Instr.t -> address
(** Abstract address of a [Load]/[Store] occurrence of the analyzed
    procedure; [Unknown] for anything else. *)

val may_alias : t -> Instr.t -> Instr.t -> bool
(** Conservative: [false] only when both occurrences provably access
    disjoint words. *)
