open Bv_isa
open Bv_ir

let pass_names =
  [ "pairing"; "spec-window"; "correction"; "scratch-uninit"; "reachability" ]

let default_dbb_entries = 16

module Intset = Set.Make (Int)
module Regset = Set.Make (Reg)

module Sites_may = Dataflow.Make (struct
  type t = Intset.t

  let equal = Intset.equal
  let join = Intset.union
end)

module Sites_must = Dataflow.Make (struct
  type t = Intset.t

  let equal = Intset.equal
  let join = Intset.inter
end)

module Spec_defs = Dataflow.Make (struct
  type t = Regset.t

  let equal = Regset.equal
  let join = Regset.union
end)

module Must_defined = Dataflow.Make (struct
  type t = Regset.t

  let equal = Regset.equal
  let join = Regset.inter
end)

(* Outstanding-predict transfer: the body cannot open or close a window
   (predicts and resolves are terminators only), so only the terminator
   acts. *)
let sites_transfer b s =
  match b.Block.term with
  | Term.Predict { id; _ } -> Intset.add id s
  | Term.Resolve { id; _ } -> Intset.remove id s
  | _ -> s

let body_defs body =
  List.fold_left
    (fun s i -> Regset.union s (Regset.of_list (Instr.defs i)))
    Regset.empty body

(* Registers read before any write in the block, terminator source
   included. *)
let upward_exposed_uses b =
  let exposed, defined =
    List.fold_left
      (fun (exposed, defined) i ->
        let uses = Regset.of_list (Instr.uses i) in
        ( Regset.union exposed (Regset.diff uses defined),
          Regset.union defined (Regset.of_list (Instr.defs i)) ))
      (Regset.empty, Regset.empty)
      b.Block.body
  in
  match b.Block.term with
  | Term.Branch { src; _ } | Term.Resolve { src; _ } ->
    if Regset.mem src defined then exposed else Regset.add src exposed
  | _ -> exposed

(* Same backward closure as Transform.condition_slice: the in-block
   instructions the resolve condition depends on. *)
let condition_slice body ~src =
  let _, slice, rest =
    List.fold_left
      (fun (need, slice, rest) instr ->
        let defs = Regset.of_list (Instr.defs instr) in
        if not (Regset.is_empty (Regset.inter defs need)) then
          let need =
            Regset.union (Regset.diff need defs)
              (Regset.of_list (Instr.uses instr))
          in
          (need, instr :: slice, rest)
        else (need, slice, instr :: rest))
      (Regset.singleton src, [], [])
      (List.rev body)
  in
  (slice, rest)

type proc_facts =
  { proc : Proc.t;
    reachable : Label.t list;  (** reverse postorder from the entry *)
    may : Sites_may.solution;
    must : Sites_must.solution;
    spec : Spec_defs.solution;
    predict_ids : Intset.t;
    resolve_arms : (int, int) Hashtbl.t  (** resolve terminators per id *)
  }

let callee_mods summaries target =
  match Summary.find summaries target with
  | Some s -> Regset.of_list (Summary.Regset.elements s.Summary.mod_regs)
  | None -> Regset.of_list (List.init Reg.count Reg.make)

let compute_facts ?summaries proc =
  let may =
    Sites_may.solve ~direction:Dataflow.Forward ~boundary:Intset.empty
      ~transfer:sites_transfer proc
  in
  let must =
    Sites_must.solve ~direction:Dataflow.Forward ~boundary:Intset.empty
      ~transfer:sites_transfer proc
  in
  (* A block's body runs speculatively iff a predict is outstanding at its
     entry; a window closing in the block resets nothing retroactively.
     When an interprocedural summary permits the window to span a call,
     everything the callee may write is speculative in the continuation. *)
  let spec_transfer b s =
    let speculative =
      match Sites_may.fact_in may b.Block.label with
      | Some sites -> not (Intset.is_empty sites)
      | None -> false
    in
    if not speculative then Regset.empty
    else begin
      let s = Regset.union s (body_defs b.Block.body) in
      match (b.Block.term, summaries) with
      | Term.Call { target; _ }, Some env ->
        Regset.union s (callee_mods env target)
      | _ -> s
    end
  in
  let spec =
    Spec_defs.solve ~direction:Dataflow.Forward ~boundary:Regset.empty
      ~transfer:spec_transfer proc
  in
  let predict_ids = ref Intset.empty in
  let resolve_arms = Hashtbl.create 16 in
  List.iter
    (fun b ->
      match b.Block.term with
      | Term.Predict { id; _ } -> predict_ids := Intset.add id !predict_ids
      | Term.Resolve { id; _ } ->
        let n = Option.value (Hashtbl.find_opt resolve_arms id) ~default:0 in
        Hashtbl.replace resolve_arms id (n + 1)
      | _ -> ())
    proc.Proc.blocks;
  { proc;
    reachable = Cfg.reverse_postorder proc;
    may;
    must;
    spec;
    predict_ids = !predict_ids;
    resolve_arms
  }

let pairing_pass ~dbb_entries ?summaries ?(scratch_pool = []) facts =
  let pass = "pairing" in
  let proc = facts.proc.Proc.name in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  List.iter
    (fun label ->
      let b = Proc.find_block facts.proc label in
      let may_in =
        Option.value (Sites_may.fact_in facts.may label) ~default:Intset.empty
      in
      let must_in =
        Option.value
          (Sites_must.fact_in facts.must label)
          ~default:Intset.empty
      in
      (* Predicts and resolves are terminators, so the fact at the block
         entry is also the fact at the terminator. *)
      (match b.Block.term with
      | Term.Predict { id; _ } ->
        if Intset.mem id may_in then
          emit
            (Diagnostic.error ~block:label ~site:id ~pass ~proc
               "re-predict of site %d while a predict for it may still be \
                outstanding"
               id);
        let out = Intset.add id may_in in
        if Intset.cardinal out > dbb_entries then
          emit
            (Diagnostic.error ~block:label ~site:id ~pass ~proc
               "%d predict sites may be outstanding after this predict, but \
                the DBB holds %d entries"
               (Intset.cardinal out) dbb_entries)
      | Term.Resolve { id; predicted_taken; _ } ->
        if not (Intset.mem id facts.predict_ids) then begin
          let arms =
            Option.value (Hashtbl.find_opt facts.resolve_arms id) ~default:0
          in
          if arms > 1 then
            emit
              (Diagnostic.error ~block:label ~site:id ~pass ~proc
                 "%d resolves for site %d but no predict anywhere in the \
                  procedure"
                 arms id)
          else
            emit
              (Diagnostic.info ~block:label ~site:id ~pass ~proc
                 "assert-style resolve (predicted %s) with no paired predict"
                 (if predicted_taken then "taken" else "not taken"))
        end
        else if not (Intset.mem id may_in) then
          emit
            (Diagnostic.error ~block:label ~site:id ~pass ~proc
               "resolve of site %d with no outstanding predict on any path \
                (double resolve, or resolve before predict)"
               id)
        else if not (Intset.mem id must_in) then
          emit
            (Diagnostic.error ~block:label ~site:id ~pass ~proc
               "resolve of site %d is not dominated by its predict: some \
                path reaches it without an outstanding predict"
               id)
      | Term.Call { target; _ } ->
        if not (Intset.is_empty may_in) then begin
          let sites =
            String.concat ", "
              (List.map string_of_int (Intset.elements may_in))
          in
          match summaries with
          | None ->
            emit
              (Diagnostic.error ~block:label ~pass ~proc
                 "call with predict sites {%s} possibly outstanding; the DBB \
                  does not survive a procedure change"
                 sites)
          | Some env -> (
            match Summary.find env target with
            | None ->
              emit
                (Diagnostic.error ~block:label ~pass ~proc
                   "call with predict sites {%s} outstanding targets unknown \
                    procedure %s; no summary can justify the window"
                   sites target)
            | Some s ->
              if
                Summary.store_free s
                && Summary.scratch_clean s ~pool:scratch_pool
              then begin
                emit
                  (Diagnostic.info ~block:label ~pass ~proc
                     "call with predict sites {%s} outstanding permitted: \
                      callee %s is store-free and scratch-clean \
                      (interprocedural summary)"
                     sites target);
                if Summary.purity s <> Summary.Pure then
                  emit
                    (Diagnostic.warning ~block:label ~pass ~proc
                       "callee %s loads under an open speculative window; \
                        its loads are not marked non-faulting"
                       target)
              end
              else
                emit
                  (Diagnostic.error ~block:label ~pass ~proc
                     "call with predict sites {%s} possibly outstanding; \
                      callee %s %s, so the window cannot span it \
                      (interprocedural summary)"
                     sites target
                     (if not (Summary.store_free s) then "may store"
                      else "touches the scratch pool")))
        end
      | Term.Ret ->
        if not (Intset.is_empty may_in) then
          emit
            (Diagnostic.error ~block:label ~pass ~proc
               "return with predict sites {%s} possibly outstanding; their \
                resolves can never execute"
               (String.concat ", "
                  (List.map string_of_int (Intset.elements may_in))))
      | _ -> ()))
    facts.reachable;
  List.rev !diags

let spec_window_pass facts =
  let pass = "spec-window" in
  let proc = facts.proc.Proc.name in
  let diags = ref [] in
  List.iter
    (fun label ->
      match Sites_may.fact_in facts.may label with
      | None -> ()
      | Some sites when Intset.is_empty sites -> ()
      | Some _ ->
        let b = Proc.find_block facts.proc label in
        List.iter
          (fun i ->
            match i with
            | Instr.Store _ ->
              diags :=
                Diagnostic.error ~block:label ~pass ~proc
                  "store inside a speculative window; stores must not \
                   retire before the predict resolves"
                :: !diags
            | Instr.Load { speculative = false; _ } ->
              diags :=
                Diagnostic.warning ~block:label ~pass ~proc
                  "load inside a speculative window is not marked \
                   speculative (non-faulting)"
                :: !diags
            | _ -> ())
          b.Block.body)
    facts.reachable;
  List.rev !diags

let correction_pass facts =
  let pass = "correction" in
  let proc = facts.proc.Proc.name in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  List.iter
    (fun label ->
      let b = Proc.find_block facts.proc label in
      match b.Block.term with
      | Term.Resolve { src; mispredict; id; _ }
        when Intset.mem id facts.predict_ids -> begin
        (* Registers that may hold speculative values when the mispredict
           edge is taken: everything written inside the window, minus the
           resolve block's own condition slice — the slice computes the
           original branch condition, so its results are path-independent
           (unless something else in the window also wrote them). *)
        let slice, rest = condition_slice b.Block.body ~src in
        let safe = Regset.diff (body_defs slice) (body_defs rest) in
        let spec_in =
          Option.value (Spec_defs.fact_in facts.spec label)
            ~default:Regset.empty
        in
        let danger =
          Regset.diff (Regset.union spec_in (body_defs b.Block.body)) safe
        in
        match Proc.find_block facts.proc mispredict with
        | exception Not_found ->
          emit
            (Diagnostic.error ~block:label ~site:id ~pass ~proc
               "mispredict target %s does not name a block" mispredict)
        | m ->
          List.iter
            (fun i ->
              match i with
              | Instr.Store _ ->
                emit
                  (Diagnostic.error ~block:mispredict ~site:id ~pass ~proc
                     "correction block contains a store; correction code \
                      must be idempotent")
              | _ -> ())
            m.Block.body;
          let tainted_reads = Regset.inter (upward_exposed_uses m) danger in
          if not (Regset.is_empty tainted_reads) then
            emit
              (Diagnostic.error ~block:mispredict ~site:id ~pass ~proc
                 "correction block reads {%s} before defining them, but \
                  they may hold speculative values on the mispredict edge"
                 (String.concat ", "
                    (List.map
                       (fun r -> Printf.sprintf "r%d" (Reg.index r))
                       (Regset.elements tainted_reads))))
      end
      | _ -> ())
    facts.reachable;
  List.rev !diags

(* Scratch registers (the transformation's rename pool) hold no program
   values by contract, so every read of one must be dominated by a write —
   an undominated read is the signature of a mis-renamed partial write
   (e.g. a conditional move whose destination was renamed without seeding
   the temp). Must-defined analysis: intersection at joins. *)
let scratch_uninit_pass ~scratch facts =
  if Regset.is_empty scratch then []
  else begin
    let pass = "scratch-uninit" in
    let proc = facts.proc.Proc.name in
    let instr_scratch_defs i =
      Regset.inter (Regset.of_list (Instr.defs i)) scratch
    in
    let sol =
      Must_defined.solve ~direction:Dataflow.Forward ~boundary:Regset.empty
        ~transfer:(fun b s ->
          List.fold_left
            (fun s i -> Regset.union s (instr_scratch_defs i))
            s b.Block.body)
        facts.proc
    in
    List.concat_map
      (fun label ->
        let b = Proc.find_block facts.proc label in
        let defined =
          ref
            (Option.value (Must_defined.fact_in sol label)
               ~default:Regset.empty)
        in
        let diags = ref [] in
        let check_uses uses =
          let bad =
            Regset.diff (Regset.inter (Regset.of_list uses) scratch) !defined
          in
          if not (Regset.is_empty bad) then
            diags :=
              Diagnostic.error ~block:label ~pass ~proc
                "read of scratch register(s) {%s} with no dominating \
                 definition; scratch registers hold no program values"
                (String.concat ", "
                   (List.map
                      (fun r -> Printf.sprintf "r%d" (Reg.index r))
                      (Regset.elements bad)))
              :: !diags
        in
        List.iter
          (fun i ->
            check_uses (Instr.uses i);
            defined := Regset.union !defined (instr_scratch_defs i))
          b.Block.body;
        (match b.Block.term with
        | Term.Branch { src; _ } | Term.Resolve { src; _ } ->
          check_uses [ src ]
        | _ -> ());
        List.rev !diags)
      facts.reachable
  end

let reachability_pass facts =
  let pass = "reachability" in
  let proc = facts.proc.Proc.name in
  let reachable = Hashtbl.create 64 in
  List.iter (fun l -> Hashtbl.replace reachable l ()) facts.reachable;
  List.filter_map
    (fun b ->
      if Hashtbl.mem reachable b.Block.label then None
      else
        Some
          (Diagnostic.warning ~block:b.Block.label ~pass ~proc
             "block is unreachable from the procedure entry"))
    facts.proc.Proc.blocks

(* Peak DBB occupancy: the largest may-outstanding predict set at any
   block boundary (block-exit facts, so a predict terminator counts at
   the block that issues it). The cost-model advisor cross-checks its
   static window estimates against this on transformed programs. *)
let max_outstanding proc =
  let may =
    Sites_may.solve ~direction:Dataflow.Forward ~boundary:Intset.empty
      ~transfer:sites_transfer proc
  in
  List.fold_left
    (fun acc b ->
      let fact_in =
        Option.value
          (Sites_may.fact_in may b.Block.label)
          ~default:Intset.empty
      in
      max acc (Intset.cardinal (sites_transfer b fact_in)))
    0 proc.Proc.blocks

let verify_proc ?(dbb_entries = default_dbb_entries) ?(scratch = []) ?summaries
    proc =
  let facts = compute_facts ?summaries proc in
  let scratch_pool = scratch in
  let scratch = Regset.of_list scratch in
  pairing_pass ~dbb_entries ?summaries ~scratch_pool facts
  @ spec_window_pass facts
  @ correction_pass facts
  @ scratch_uninit_pass ~scratch facts
  @ reachability_pass facts

let verify ?dbb_entries ?scratch ?summaries program =
  Diagnostic.sort
    (List.concat_map
       (verify_proc ?dbb_entries ?scratch ?summaries)
       program.Program.procs)

let check_exn ?dbb_entries ?scratch ?summaries program =
  match
    List.filter Diagnostic.is_error
      (verify ?dbb_entries ?scratch ?summaries program)
  with
  | [] -> ()
  | errors ->
    let buf = Buffer.create 256 in
    let ppf = Format.formatter_of_buffer buf in
    Format.fprintf ppf "speculation-safety verification failed:";
    List.iter (fun d -> Format.fprintf ppf "@\n  %a" Diagnostic.pp d) errors;
    Format.pp_print_flush ppf ();
    invalid_arg (Buffer.contents buf)
