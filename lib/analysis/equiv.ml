open Bv_isa
open Bv_ir
module S = Symexec
module Lset = Set.Make (Label)
module Regset = Liveness.Regset

let pass = "equiv"

type endpoint =
  | Cut of Label.t
  | Halted
  | Returned
  | Called of Label.t * Label.t

let endpoint_name = function
  | Cut l -> Printf.sprintf "cutpoint %s" l
  | Halted -> "halt"
  | Returned -> "ret"
  | Called (t, r) -> Printf.sprintf "call %s (resuming %s)" t r

(* A region path: the branch literals it assumed — (condition term id,
   truth of [term <> 0]) — and the symbolic state at its endpoint. *)
type path = { endpoint : endpoint; lits : (int * bool) list; state : S.state }

(* [at] is the block whose terminator forked the overflowing path,
   [explored] how many paths had been emitted when the budget tripped —
   both surfaced in the diagnostic so the hot fork is findable without
   re-running under a tracer. *)
exception Budget of { at : Label.t; explored : int }

let add_lit lits ((id, v) as lit) =
  if List.mem (id, not v) lits then None
  else if List.mem lit lits then Some lits
  else Some (lit :: lits)

let subsumes ~by lits = List.for_all (fun l -> List.mem l by) lits

let compatible l1 l2 =
  not (List.exists (fun (id, v) -> List.mem (id, not v) l2) l1)

(* Enumerate every path of the acyclic region rooted at [start] (a
   cutpoint, whose own block is executed) up to the next cutpoint or
   procedure exit. [Predict] forks without a literal: the front end's
   choice is an oracle the relation must be insensitive to. *)
let explore ctx proc ~cuts ~budget ~state ~start =
  let paths = ref [] and count = ref 0 in
  let current = ref start in
  let emit endpoint lits state =
    incr count;
    if !count > budget then raise (Budget { at = !current; explored = !count });
    paths := { endpoint; lits; state } :: !paths
  in
  let rec continue lab state lits =
    if Lset.mem lab cuts then emit (Cut lab) lits state
    else step (Proc.find_block proc lab) state lits
  and step block state lits =
    current := block.Block.label;
    let state = S.exec_body ctx state block.Block.body in
    let cond src = state.S.regs.(Reg.index src) in
    match block.Block.term with
    | Term.Jump l -> continue l state lits
    | Term.Branch { on; src; taken; not_taken; _ } -> (
      let c = cond src in
      match S.truth c with
      | Some b -> continue (if b = on then taken else not_taken) state lits
      | None ->
        Option.iter (continue taken state) (add_lit lits (c.S.id, on));
        Option.iter (continue not_taken state) (add_lit lits (c.S.id, not on)))
    | Term.Predict { taken; not_taken; _ } ->
      continue taken state lits;
      continue not_taken state lits
    | Term.Resolve { on; src; mispredict; fallthrough; predicted_taken; _ }
      -> (
      let c = cond src in
      (* fall through iff the original outcome (c<>0)=on equals the
         predicted direction, i.e. (c<>0) = (on = predicted_taken). *)
      let fall = Bool.equal on predicted_taken in
      match S.truth c with
      | Some b ->
        continue (if b = fall then fallthrough else mispredict) state lits
      | None ->
        Option.iter (continue fallthrough state) (add_lit lits (c.S.id, fall));
        Option.iter
          (continue mispredict state)
          (add_lit lits (c.S.id, not fall)))
    | Term.Call { target; return_to } ->
      emit (Called (target, return_to)) lits state
    | Term.Ret -> emit Returned lits state
    | Term.Halt -> emit Halted lits state
  in
  step (Proc.find_block proc start) state [];
  List.rev !paths

let labels_of proc =
  Lset.of_list (List.map (fun b -> b.Block.label) proc.Proc.blocks)

(* Registers the relation compares at an endpoint. Interior cutpoints
   compare what the *original* needs there; [Halt]/[Ret] compare the
   exit-live convention; call boundaries compare what {!Liveness} models
   a call as reading — the exit-live set (the register calling
   convention) plus whatever is live into the resumption block. This
   mirrors the liveness the transform itself uses to decide renaming, so
   a value the toolchain's contract says the callee may observe is
   always compared, and dead registers (havocked per side) are not. *)
let compared_regs ~live ~scratch ~exit_set = function
  | Cut l -> Regset.diff (Liveness.live_in live l) scratch
  | Halted | Returned -> Regset.diff exit_set scratch
  | Called (_, return_to) ->
    Regset.diff
      (Regset.union exit_set (Liveness.live_in live return_to))
      scratch

let state_diffs ~live ~scratch ~exit_set ~endpoint (s1 : S.state) (s2 : S.state) =
  let regs =
    Regset.fold
      (fun r acc ->
        let v1 = s1.S.regs.(Reg.index r) and v2 = s2.S.regs.(Reg.index r) in
        if v1.S.id = v2.S.id then acc
        else
          Printf.sprintf "%s: %s vs %s" (Reg.to_string r) (S.to_string v1)
            (S.to_string v2)
          :: acc)
      (compared_regs ~live ~scratch ~exit_set endpoint)
      []
  in
  let mem =
    if s1.S.mem.S.mid = s2.S.mem.S.mid then []
    else
      [ Format.asprintf "memory: %a vs %a" S.pp_mem s1.S.mem S.pp_mem
          s2.S.mem ]
  in
  List.rev regs @ mem

let lits_name lits =
  if lits = [] then "unconditional path"
  else
    Printf.sprintf "path under %s"
      (String.concat ", "
         (List.map
            (fun (id, v) -> Printf.sprintf "%st%d" (if v then "" else "!") id)
            (List.rev lits)))

(* ------------------------------------------------- one region, paired -- *)

let check_region ~diags ~proc_name ~live ~scratch ~exit_set ~budget ~p_o
    ~p_t ~cuts cut =
  let ctx = S.create () in
  let shared_live = Regset.diff (Liveness.live_in live cut) scratch in
  (* Havoc: registers the relation assumes equal at region entry get one
     shared symbol; everything else (dead or scratch) gets a per-side
     symbol, so a program whose visible state depends on them is caught
     rather than silently accepted. Memory is shared. *)
  let reg_symbol side r =
    if Regset.mem r shared_live then
      Printf.sprintf "%s@%s" (Reg.to_string r) cut
    else Printf.sprintf "%s!%s@%s" side (Reg.to_string r) cut
  in
  let mem_symbol = "mem@" ^ cut in
  let state side = S.init ctx ~reg_symbol:(reg_symbol side) ~mem_symbol in
  match
    ( explore ctx p_o ~cuts ~budget ~state:(state "o") ~start:cut,
      explore ctx p_t ~cuts ~budget ~state:(state "t") ~start:cut )
  with
  | exception Budget { at; explored } ->
    diags :=
      Diagnostic.error ~block:cut ~pass ~proc:proc_name
        "path budget (%d) exceeded exploring the region at %s: %d paths \
         explored, overflow at branch %s"
        budget cut explored at
      :: !diags;
    0
  | paths_o, paths_t ->
    List.iter
      (fun pt ->
        let matches =
          List.filter (fun po -> subsumes ~by:pt.lits po.lits) paths_o
        in
        if matches = [] then
          diags :=
            Diagnostic.error ~block:cut ~pass ~proc:proc_name
              "%s from %s reaching %s matches no original path"
              (lits_name pt.lits) cut
              (endpoint_name pt.endpoint)
            :: !diags
        else
          List.iter
            (fun po ->
              if po.endpoint <> pt.endpoint then
                diags :=
                  Diagnostic.error ~block:cut ~pass ~proc:proc_name
                    "%s from %s: original reaches %s, transformed %s"
                    (lits_name pt.lits) cut
                    (endpoint_name po.endpoint)
                    (endpoint_name pt.endpoint)
                  :: !diags
              else
                List.iter
                  (fun diff ->
                    diags :=
                      Diagnostic.error ~block:cut ~pass ~proc:proc_name
                        "%s from %s, at %s: %s" (lits_name pt.lits) cut
                        (endpoint_name pt.endpoint) diff
                      :: !diags)
                  (state_diffs ~live ~scratch ~exit_set ~endpoint:pt.endpoint
                     po.state pt.state))
            matches)
      paths_t;
    List.length paths_o + List.length paths_t

(* ------------------------------------------------------------ drivers -- *)

let scratch_set scratch = Regset.of_list scratch

let exit_live_set exit_live = Option.map Regset.of_list exit_live

let verify_proc ~diags ~scratch ~exit_live ~budget ~p_o ~p_t =
  let exit_set =
    Option.value exit_live ~default:(Regset.of_list Reg.all)
  in
  let proc_name = p_t.Proc.name in
  if not (Label.equal p_o.Proc.entry p_t.Proc.entry) then
    diags :=
      Diagnostic.error ~pass ~proc:proc_name
        "entry labels differ: %s vs %s" p_o.Proc.entry p_t.Proc.entry
      :: !diags
  else begin
    let common = Lset.inter (labels_of p_o) (labels_of p_t) in
    let cuts =
      Lset.inter common
        (Lset.of_list
           (Cutpoint.compute ~include_joins:true p_o
           @ Cutpoint.compute ~include_joins:false p_t))
    in
    let cut_list = Lset.elements cuts in
    if not (Cutpoint.regions_acyclic p_o ~cuts:cut_list) then
      diags :=
        Diagnostic.error ~pass ~proc:proc_name
          "original has a cycle avoiding every common cutpoint"
        :: !diags
    else if not (Cutpoint.regions_acyclic p_t ~cuts:cut_list) then
      diags :=
        Diagnostic.error ~pass ~proc:proc_name
          "transformed has a cycle avoiding every common cutpoint"
        :: !diags
    else begin
      let live = Liveness.compute ?exit_live p_o in
      let paths =
        List.fold_left
          (fun acc cut ->
            acc
            + check_region ~diags ~proc_name ~live ~scratch ~exit_set
                ~budget ~p_o ~p_t ~cuts cut)
          0
          (Cutpoint.compute ~include_joins:true p_o
          |> List.filter (fun l -> Lset.mem l cuts))
      in
      diags :=
        Diagnostic.info ~pass ~proc:proc_name
          "%d cutpoint region(s), %d symbolic paths checked"
          (Lset.cardinal cuts) paths
        :: !diags
    end
  end

let verify ?(scratch = []) ?exit_live ?(max_paths = 4096) ~original
    transformed =
  let diags = ref [] in
  let scratch = scratch_set scratch in
  let exit_live = exit_live_set exit_live in
  List.iter
    (fun p_t ->
      match Program.find_proc original p_t.Proc.name with
      | p_o ->
        verify_proc ~diags ~scratch ~exit_live ~budget:max_paths ~p_o ~p_t
      | exception Not_found ->
        diags :=
          Diagnostic.error ~pass ~proc:p_t.Proc.name
            "procedure has no counterpart in the original program"
          :: !diags)
    transformed.Program.procs;
  List.iter
    (fun p_o ->
      match Program.find_proc transformed p_o.Proc.name with
      | _ -> ()
      | exception Not_found ->
        diags :=
          Diagnostic.error ~pass ~proc:p_o.Proc.name
            "procedure disappeared from the transformed program"
          :: !diags)
    original.Program.procs;
  Diagnostic.sort (List.rev !diags)

(* Self-consistency: within one program, any two region paths whose
   literal sets are compatible (satisfiable together — notably the two
   directions of a predict under equal branch outcomes) must agree. *)
let verify_self ?(scratch = []) ?exit_live ?(max_paths = 4096) program =
  let diags = ref [] in
  let scratch = scratch_set scratch in
  let exit_live = exit_live_set exit_live in
  List.iter
    (fun proc ->
      let proc_name = proc.Proc.name in
      let cut_list = Cutpoint.compute ~include_joins:true proc in
      let cuts = Lset.of_list cut_list in
      if not (Cutpoint.regions_acyclic proc ~cuts:cut_list) then
        diags :=
          Diagnostic.error ~pass ~proc:proc_name
            "a cycle avoids every cutpoint"
          :: !diags
      else begin
        let live = Liveness.compute ?exit_live proc in
        let exit_set =
          Option.value exit_live ~default:(Regset.of_list Reg.all)
        in
        let checked = ref 0 in
        List.iter
          (fun cut ->
            let ctx = S.create () in
            let state =
              S.init ctx
                ~reg_symbol:(fun r ->
                  Printf.sprintf "%s@%s" (Reg.to_string r) cut)
                ~mem_symbol:("mem@" ^ cut)
            in
            match
              explore ctx proc ~cuts ~budget:max_paths ~state ~start:cut
            with
            | exception Budget { at; explored } ->
              diags :=
                Diagnostic.error ~block:cut ~pass ~proc:proc_name
                  "path budget (%d) exceeded exploring the region at %s: %d \
                   paths explored, overflow at branch %s"
                  max_paths cut explored at
                :: !diags
            | paths ->
              let arr = Array.of_list paths in
              for i = 0 to Array.length arr - 1 do
                for j = i + 1 to Array.length arr - 1 do
                  let p1 = arr.(i) and p2 = arr.(j) in
                  if compatible p1.lits p2.lits then begin
                    incr checked;
                    if p1.endpoint <> p2.endpoint then
                      diags :=
                        Diagnostic.error ~block:cut ~pass ~proc:proc_name
                          "compatible paths from %s diverge: %s vs %s" cut
                          (endpoint_name p1.endpoint)
                          (endpoint_name p2.endpoint)
                        :: !diags
                    else
                      List.iter
                        (fun diff ->
                          diags :=
                            Diagnostic.error ~block:cut ~pass ~proc:proc_name
                              "compatible paths from %s, at %s: %s" cut
                              (endpoint_name p1.endpoint) diff
                            :: !diags)
                        (state_diffs ~live ~scratch ~exit_set
                           ~endpoint:p1.endpoint p1.state p2.state)
                  end
                done
              done)
          cut_list;
        diags :=
          Diagnostic.info ~pass ~proc:proc_name
            "%d cutpoint region(s), %d compatible path pair(s) checked"
            (List.length cut_list) !checked
          :: !diags
      end)
    program.Program.procs;
  Diagnostic.sort (List.rev !diags)

let check_exn ?scratch ?exit_live ?max_paths ~original transformed =
  let diags = verify ?scratch ?exit_live ?max_paths ~original transformed in
  if Diagnostic.has_errors diags then
    invalid_arg
      (Format.asprintf "Equiv.check_exn:@ %a"
         (Format.pp_print_list Diagnostic.pp)
         (List.filter Diagnostic.is_error diags))
