(** Speculation-safety verifier for decomposed-branch programs.

    Statically proves, per procedure, the invariants that the Decomposed
    Branch Transformation must preserve for the machine (DBB allocation at
    fetch, no rollback of architectural registers on mispredict) and for
    the functional semantics to agree with the original program. Built on
    {!Dataflow}; every violation becomes a {!Diagnostic.t}.

    The passes, by stable name:

    - ["pairing"]: tracks the set of outstanding predict sites at every
      block boundary (a may-analysis with union join, and a must-analysis
      with intersection join, both forward). Errors: a [Resolve] not
      dominated by its [Predict] (absent from the must-set), a resolve of
      a site with no outstanding predict (double resolve, or resolve
      before predict), a re-predict of a still-outstanding site, more
      outstanding sites than DBB entries at a predict point, and
      outstanding sites live across a [Call]/[Ret] (the DBB does not
      survive procedure changes). A lone resolve whose id has no predict
      anywhere in the procedure is the legal assert-style form produced by
      {e assert-conversion} and is reported as [Info]; two or more
      predictless resolve arms for one id are an error.
    - ["spec-window"]: inside a speculative window (any block whose
      may-set of outstanding sites is non-empty), a [Store] is an error —
      stores must not retire speculatively — and a load not marked
      speculative (non-faulting) is a warning.
    - ["correction"]: correction-block idempotence. For each paired
      resolve, the registers that may hold speculative values on its
      mispredict edge are everything written inside the window minus the
      resolve block's own condition slice (which is path-independent by
      construction). A correction block that stores, or whose
      upward-exposed uses meet that danger set, is an error.
    - ["scratch-uninit"] (only with a non-empty [scratch] set): scratch
      registers — the transformation's rename pool — hold no program
      values, so a read of one not dominated by a write (a must-defined
      forward analysis) is an error. This is the static signature of a
      mis-renamed partial write, e.g. a conditional move whose destination
      was renamed to a fresh temporary without seeding it.
    - ["reachability"]: blocks unreachable from the procedure entry are
      warnings.

    The checks are per-procedure; inter-procedural effects are excluded by
    the pairing pass's [Call]/[Ret] rule — unless a {!Summary.env} is
    supplied. With [summaries], a window outstanding across a [Call] to a
    provably store-free, scratch-clean callee is {e permitted} (reported
    as [Info], with a warning when the callee loads — its loads cannot be
    marked non-faulting), the callee's transitive register mod set joins
    the speculative-def facts the correction pass consumes, and a callee
    that may store or touch the scratch pool stays an error with a
    summary-specific reason. A [Ret] under an outstanding window is an
    error either way: the resolves can never execute. *)

open Bv_isa
open Bv_ir

val pass_names : string list
(** In the order the passes run. *)

val max_outstanding : Proc.t -> int
(** Peak DBB occupancy: the largest may-outstanding predict set at any
    block boundary. [0] for an untransformed procedure. The cost-model
    advisor compares its static occupancy estimate against this measure
    of the transformed program it recommends. *)

val verify_proc :
  ?dbb_entries:int ->
  ?scratch:Reg.t list ->
  ?summaries:Summary.env ->
  Proc.t ->
  Diagnostic.t list
(** [dbb_entries] defaults to {!Bv_pipeline.Config.dbb_entries}'s value
    (16), kept literal here to avoid a dependency on the pipeline.
    [scratch] (default empty, disabling the ["scratch-uninit"] pass) is
    the rename pool — {!Vanguard.Transform.default_temp_pool} for
    transformed programs. [summaries] (default absent — the historical
    intra-procedural behaviour, byte-for-byte) enables the
    interprocedural call-window rules described above. *)

val verify :
  ?dbb_entries:int ->
  ?scratch:Reg.t list ->
  ?summaries:Summary.env ->
  Program.t ->
  Diagnostic.t list
(** Every procedure, diagnostics sorted errors-first. *)

val check_exn :
  ?dbb_entries:int ->
  ?scratch:Reg.t list ->
  ?summaries:Summary.env ->
  Program.t ->
  unit
(** Raises [Invalid_argument] listing every error-severity diagnostic, if
    any. Warnings and infos are ignored. Used as a debug post-pass by the
    transformation drivers. *)
