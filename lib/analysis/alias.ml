open Bv_isa
open Bv_ir

(* Abstract register value: a byte interval, absolute or relative to a
   register's value at procedure entry. Intervals come from constants
   and interval-exact operations (masked indexing above all: [x & m]
   lands in [0, m] whatever [x] is); joins keep only values that agree
   exactly and send everything else to Top, so chains are finite and the
   forward solve terminates without widening — a loop-varying index is
   Top at the join but its masked form recovers a window in-block, which
   is where the scheduler queries it. *)
type absval =
  | Abs of (int * int)  (* value within [lo, hi] *)
  | Entry of int * (int * int)  (* entry-reg index + displacement interval *)
  | Top

let num k = Abs (k, k)

(* Wrap-guarded interval arithmetic (mirrors {!Symexec.range}: every
   bound is exact under [Instr.eval_alu], never widened past a wrap). *)
let add_bound a b =
  let s = a + b in
  if a >= 0 && b >= 0 && s < 0 then None
  else if a < 0 && b < 0 && s >= 0 then None
  else Some s

let sub_bound a b = if b = min_int then None else add_bound a (-b)

let iadd (l1, h1) (l2, h2) =
  match (add_bound l1 l2, add_bound h1 h2) with
  | Some l, Some h -> Some (l, h)
  | _ -> None

let isub (l1, h1) (l2, h2) =
  match (sub_bound l1 h2, sub_bound h1 l2) with
  | Some l, Some h -> Some (l, h)
  | _ -> None

let of_interval = function Some i -> Abs i | None -> Top

let entry_of r = function Some i -> Entry (r, i) | None -> Top

let alu_av op a b =
  match (op, a, b) with
  | _, Abs (x, x'), Abs (y, y') when x = x' && y = y' ->
    num (Instr.eval_alu op x y)
  | Instr.Add, Abs i1, Abs i2 -> of_interval (iadd i1 i2)
  | Instr.Add, Entry (r, i1), Abs i2 | Instr.Add, Abs i2, Entry (r, i1) ->
    entry_of r (iadd i1 i2)
  | Instr.Sub, Abs i1, Abs i2 -> of_interval (isub i1 i2)
  | Instr.Sub, Entry (r, i1), Abs i2 -> entry_of r (isub i1 i2)
  | Instr.Sub, Entry (r1, i1), Entry (r2, i2) when r1 = r2 ->
    of_interval (isub i1 i2)
  | Instr.And, Abs (l1, h1), Abs (l2, h2) when l1 >= 0 && l2 >= 0 ->
    Abs (0, min h1 h2)
  | Instr.And, _, Abs (l2, h2) when l2 >= 0 ->
    (* x land y has only the bits of the non-negative operand *)
    Abs (0, h2)
  | Instr.And, Abs (l1, h1), _ when l1 >= 0 -> Abs (0, h1)
  | Instr.Or, Abs (l1, h1), Abs (l2, h2) when l1 >= 0 && l2 >= 0 -> (
    match add_bound h1 h2 with
    | Some h -> Abs (max l1 l2, h)
    | None -> Top)
  | Instr.Xor, Abs (l1, h1), Abs (l2, h2) when l1 >= 0 && l2 >= 0 -> (
    match add_bound h1 h2 with Some h -> Abs (0, h) | None -> Top)
  | Instr.Shl, Abs (l1, h1), Abs (s, s') when s = s' && l1 >= 0 ->
    let c = min 62 (s land 63) in
    if h1 <= max_int asr c then Abs (l1 lsl c, h1 lsl c) else Top
  | Instr.Shr, Abs (l1, h1), Abs (s, s') when s = s' ->
    let c = min 62 (s land 63) in
    Abs (l1 asr c, h1 asr c)
  | Instr.Mul, Abs (l1, h1), Abs (l2, h2) when l1 >= 0 && l2 >= 0 ->
    if h2 = 0 || h1 <= max_int / h2 then Abs (l1 * l2, h1 * h2) else Top
  | _ -> Top

let join_av a b = if a = b then a else Top

module L = struct
  type t = absval array

  let equal = ( = )

  let join a b = Array.init Reg.count (fun i -> join_av a.(i) b.(i))
end

module Solver = Dataflow.Make (L)

let avop regs = function
  | Instr.Reg r -> regs.(Reg.index r)
  | Instr.Imm k -> num k

(* In-place step over a scratch copy of the fact. *)
let step regs instr =
  let set r v = regs.(Reg.index r) <- v in
  match instr with
  | Instr.Nop | Instr.Store _ -> ()
  | Instr.Alu { op; dst; src1; src2 } | Instr.Fpu { op; dst; src1; src2 } ->
    set dst (alu_av op regs.(Reg.index src1) (avop regs src2))
  | Instr.Mov { dst; src } -> set dst (avop regs src)
  | Instr.Load { dst; _ } -> set dst Top
  | Instr.Cmp { op; dst; src1; src2 } ->
    set dst
      (match (regs.(Reg.index src1), avop regs src2) with
      | Abs (x, x'), Abs (y, y') when x = x' && y = y' ->
        num (if Instr.eval_cmp op x y then 1 else 0)
      | _ -> Abs (0, 1))
  | Instr.Cmov { dst; src; _ } ->
    set dst (join_av regs.(Reg.index dst) (avop regs src))
  | Instr.Branch _ | Instr.Jump _ | Instr.Call _ | Instr.Ret
  | Instr.Predict _ | Instr.Resolve _ | Instr.Halt ->
    List.iter (fun r -> set r Top) (Instr.defs instr)

(* Call havoc: with no interprocedural knowledge every register goes to
   Top; an interprocedural summary ([call_mod]) narrows that to the
   callee's transitive register mod set — registers are global across
   calls (no save/restore convention), so a callee can only disturb what
   it writes. An unknown callee ([call_mod] returning [None]) keeps the
   worst case. *)
let transfer ?call_mod block fact =
  let regs = Array.copy fact in
  List.iter (step regs) block.Block.body;
  (match block.Block.term with
  | Term.Call { target; _ } -> (
    match Option.bind call_mod (fun f -> f target) with
    | Some mods -> List.iter (fun r -> regs.(Reg.index r) <- Top) mods
    | None -> Array.fill regs 0 Reg.count Top)
  | _ -> ());
  regs

type address =
  | Absolute of int * int
  | Reg_relative of Reg.t * int * int
  | Unknown

module Phys = Hashtbl.Make (struct
  type t = Instr.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type t = address Phys.t

let address_at regs ~base ~offset =
  match regs.(Reg.index base) with
  | Abs i -> (
    match iadd i (offset, offset) with
    | Some (l, h) -> Absolute (l, h)
    | None -> Unknown)
  | Entry (r, i) -> (
    match iadd i (offset, offset) with
    | Some (l, h) -> Reg_relative (Reg.make r, l, h)
    | None -> Unknown)
  | Top -> Unknown

type facts = absval array

type solution = Solver.solution

let solve ?call_mod proc =
  let boundary = Array.init Reg.count (fun i -> Entry (i, (0, 0))) in
  Solver.solve ~direction:Dataflow.Forward ~boundary
    ~transfer:(transfer ?call_mod) proc

let entry_facts solution label =
  Option.map Array.copy (Solver.fact_in solution label)

let step_instr = step

let rebase addr regs =
  match addr with
  | Absolute _ | Unknown -> addr
  | Reg_relative (r, l, h) -> (
    match regs.(Reg.index r) with
    | Abs i -> (
      match iadd i (l, h) with Some (l, h) -> Absolute (l, h) | None -> Unknown)
    | Entry (r', i) -> (
      match iadd i (l, h) with
      | Some (l, h) -> Reg_relative (Reg.make r', l, h)
      | None -> Unknown)
    | Top -> Unknown)

let analyze ?call_mod proc =
  let solution = solve ?call_mod proc in
  let table = Phys.create 64 in
  let record instr addr =
    (* A condition slice is physically shared between the two resolution
       blocks; join duplicated occurrences conservatively. *)
    match Phys.find_opt table instr with
    | None -> Phys.replace table instr addr
    | Some prior -> if prior <> addr then Phys.replace table instr Unknown
  in
  List.iter
    (fun block ->
      let regs =
        match Solver.fact_in solution block.Block.label with
        | Some fact -> Array.copy fact
        | None -> Array.make Reg.count Top
      in
      List.iter
        (fun instr ->
          (match instr with
          | Instr.Load { base; offset; _ } | Instr.Store { base; offset; _ } ->
            record instr (address_at regs ~base ~offset)
          | _ -> ());
          step regs instr)
        block.Block.body)
    proc.Proc.blocks;
  table

let address_of t instr =
  match Phys.find_opt t instr with Some a -> a | None -> Unknown

(* 8-byte accesses at addresses drawn from the two intervals *)
let disjoint_words (l1, h1) (l2, h2) =
  (h1 <= max_int - 8 && h1 + 8 <= l2) || (h2 <= max_int - 8 && h2 + 8 <= l1)

let may_alias t i1 i2 =
  i1 == i2
  ||
  match (address_of t i1, address_of t i2) with
  | Absolute (l1, h1), Absolute (l2, h2) ->
    not (disjoint_words (l1, h1) (l2, h2))
  | Reg_relative (r1, l1, h1), Reg_relative (r2, l2, h2) ->
    not (Reg.equal r1 r2 && disjoint_words (l1, h1) (l2, h2))
  | Unknown, _ | _, Unknown | Absolute _, Reg_relative _
  | Reg_relative _, Absolute _ ->
    true
