(** Symbolic evaluation of straight-line hidden-ISA code.

    Registers evaluate to hash-consed expression terms; memory is a
    symbolic store log (select/store terms). Hash-consing doubles as
    value numbering: two registers holding structurally equal symbolic
    values share one term, so equality is a pointer/id comparison — the
    congruence closure the translation-validation pass ({!Equiv}) needs.

    Normalization applied by the smart constructors:
    - constant folding through the reference semantics
      ([Instr.eval_alu]/[Instr.eval_cmp]) — never through re-derived
      algebra, so folding cannot disagree with the interpreter;
    - exact algebraic identities of OCaml-int arithmetic
      (x+0, x−0, x−x, x⊕x, x⊕0, x∨0, x∧0, x·1, x·0, shifts by 0);
    - commutative operands ordered by term id;
    - [Ite] with a constant or decidable condition, or equal arms,
      collapses;
    - [select] over a store to the same address yields the stored value;
      over a {e provably disjoint} store it looks through;
    - adjacent provably-disjoint stores are commuted into a canonical
      order and same-address stores collapse, so legal load/store
      reorderings (e.g. by the alias-aware scheduler) normalize to one
      memory term.

    Disjointness is structural: each address decomposes into an anchor
    term plus a displacement interval ({!range} bounds the interval;
    masked indexing is the decisive rule), and two accesses are disjoint
    when their anchors coincide — or both are absolute — and the 8-byte
    displacement windows cannot overlap. Fault behaviour is not
    modelled — terms denote values of fault-free executions.

    Terms are interned in tables private to a {!ctx}; ids are only
    comparable within one context. *)

open Bv_isa

type ctx
(** An interning context (hash-cons tables + id counters). *)

val create : unit -> ctx

type expr = private { id : int; node : node }

and node =
  | Const of int
  | Symbol of string
  | Alu of Instr.alu_op * expr * expr
  | Cmp of Instr.cmp_op * expr * expr
  | Ite of expr * expr * expr  (** [Ite (c, t, e)]: [t] if [c <> 0] *)
  | Select of mem * expr  (** word read at a symbolic address *)

and mem = private { mid : int; mnode : mnode }

and mnode =
  | Memsym of string
  | Store of mem * expr * expr  (** [Store (m, addr, value)] *)

val const : ctx -> int -> expr
val symbol : ctx -> string -> expr
val alu : ctx -> Instr.alu_op -> expr -> expr -> expr
val cmp : ctx -> Instr.cmp_op -> expr -> expr -> expr
val ite : ctx -> expr -> expr -> expr -> expr
val select : ctx -> mem -> expr -> expr
val memsym : ctx -> string -> mem
val store : ctx -> mem -> expr -> expr -> mem

val base_offset : ctx -> expr -> expr * int
(** Split an address term into (base, constant displacement), peeling
    [Alu (Add/Sub, _, Const _)] layers. A constant address reports the
    interned zero of its context as base. *)

val range : ctx -> expr -> (int * int) option
(** Conservative interval of the term's concrete values, when one can be
    established structurally (constants, compares, masked/shifted/added
    non-negatives, hulls of ite arms). Arithmetic that could wrap yields
    [None], never an unsound bound. Memoized per context. *)

val surely_disjoint : ctx -> expr -> expr -> bool
(** The two 8-byte accesses cannot overlap: the addresses decompose to
    the same anchor term (or both to absolute values) with displacement
    intervals a word apart. [false] is "may alias". *)

(** {1 Machine state} *)

type state = { regs : expr array;  (** indexed by [Reg.index] *) mem : mem }

val init : ctx -> reg_symbol:(Reg.t -> string) -> mem_symbol:string -> state
(** Fully symbolic state: register [r] holds [Symbol (reg_symbol r)]. *)

val exec_instr : ctx -> state -> Instr.t -> state
(** Straight-line step. Control-flow instructions (which never appear in
    {!Bv_ir.Block} bodies) raise [Invalid_argument]. Speculative and
    normal loads evaluate alike (fault-free semantics). *)

val exec_body : ctx -> state -> Instr.t list -> state

val truth : expr -> bool option
(** [Some b] if the term decides [e <> 0] on its own: a constant, or a
    comparison known reflexively. *)

val pp : Format.formatter -> expr -> unit
val pp_mem : Format.formatter -> mem -> unit
val to_string : expr -> string
