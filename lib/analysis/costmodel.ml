open Bv_isa
open Bv_ir
module Regset = Set.Make (Reg)

type pred_class =
  | Loop_back
  | Loop_exit
  | Loop_invariant
  | Data_dependent
  | Straightline

let pred_class_name = function
  | Loop_back -> "loop-back"
  | Loop_exit -> "loop-exit"
  | Loop_invariant -> "loop-invariant"
  | Data_dependent -> "data-dependent"
  | Straightline -> "straightline"

(* Priors are calibrated to the predictor families the harness models:
   loop exits and invariant guards resolve the same way almost every
   time, data-dependent hammocks are the paper's problem case. *)
let class_prior = function
  | Loop_back -> 0.95
  | Loop_exit -> 0.90
  | Loop_invariant -> 0.98
  | Data_dependent -> 0.70
  | Straightline -> 0.85

type side =
  { prefix : int;
    renamed : int;
    seeds : int;
    prefix_height : int;
    merged_height : int
  }

type site_cost =
  { proc : Label.t;
    block : Label.t;
    site : int;
    ineligible : string option;
    forward : bool;
    pred_class : pred_class;
    loop_depth : int;
    slice_size : int;
    slice_height : int;
    not_taken : side;
    taken : side;
    dbb_residency : int;
    window_pressure : int;
    code_growth : int
  }

(* Backward closure of [src] through the block body — the same slice the
   transformation sinks into the resolution blocks. *)
let condition_slice body ~src =
  let rev = List.rev body in
  let _, slice_rev, rest_rev =
    List.fold_left
      (fun (need, slice, rest) instr ->
        let defs = Regset.of_list (Instr.defs instr) in
        if not (Regset.is_empty (Regset.inter defs need)) then
          let need =
            Regset.union (Regset.diff need defs)
              (Regset.of_list (Instr.uses instr))
          in
          (need, instr :: slice, rest)
        else (need, slice, instr :: rest))
      (Regset.singleton src, [], [])
      rev
  in
  (slice_rev, rest_rev)

(* Reason strings match the transformation's Skip messages so an advise
   report and a transform's skip list agree verbatim. [may_alias]
   (supplied only in summary mode, where the transform uses the same
   oracle) relaxes the store-after-slice-load rule to stores that may
   actually alias a preceding slice load: sinking the slice below the
   block's remainder reorders each slice load past the stores after it,
   which is observable only for overlapping accesses. *)
let check_slice ?may_alias ~slice ~rest body =
  let regs_of f =
    List.fold_left
      (fun s i -> Regset.union s (Regset.of_list (f i)))
      Regset.empty
  in
  let slice_defs = regs_of Instr.defs slice in
  let slice_uses = regs_of Instr.uses slice in
  let exception Bad of string in
  try
    List.iter
      (fun i ->
        if List.exists (fun r -> Regset.mem r slice_defs) (Instr.uses i) then
          raise
            (Bad
               (Printf.sprintf "non-slice instruction uses slice result: %s"
                  (Instr.to_string i)));
        if
          List.exists
            (fun r -> Regset.mem r slice_uses || Regset.mem r slice_defs)
            (Instr.defs i)
        then
          raise
            (Bad
               (Printf.sprintf
                  "non-slice instruction redefines slice register: %s"
                  (Instr.to_string i))))
      rest;
    let slice_loads = ref [] in
    List.iter
      (fun i ->
        match i with
        | Instr.Load _ when List.memq i slice -> slice_loads := i :: !slice_loads
        | Instr.Store _ when !slice_loads <> [] ->
          let conflicts =
            match may_alias with
            | None -> true
            | Some f -> List.exists (fun l -> f i l) !slice_loads
          in
          if conflicts then raise (Bad "store after a slice load")
        | _ -> ())
      body;
    Ok ()
  with Bad reason -> Error reason

(* Mirror of the transformation's hoistable-prefix walk, counting instead
   of rewriting: how many leading instructions of a successor body hoist
   into the resolution block, how many destinations need scratch
   temporaries (live on the alternate path, or feeding the resolve), and
   how many conditional moves need a seed copy for a fresh temporary.
   Stops at the first store, at [max_hoist] placed instructions, or when
   the scratch pool runs dry — exactly where the transform stops. *)
let hoist_counts ~max_hoist ~temp_slots ~must_rename body =
  let renamed = Hashtbl.create 8 in
  let temps = ref temp_slots in
  let seeds = ref 0 in
  let fresh_for r =
    if Hashtbl.mem renamed (Reg.index r) then Some false
    else if not (must_rename r) then Some false
    else if !temps = 0 then None
    else begin
      decr temps;
      Hashtbl.replace renamed (Reg.index r) ();
      Some true
    end
  in
  let rec go taken prefix = function
    | instr :: rest when taken < max_hoist -> (
      let continue dst =
        match fresh_for dst with
        | None -> List.rev prefix
        | Some _ -> go (taken + 1) (instr :: prefix) rest
      in
      match instr with
      | Instr.Store _ -> List.rev prefix
      | Instr.Alu { dst; _ } | Instr.Fpu { dst; _ } | Instr.Cmp { dst; _ }
      | Instr.Mov { dst; _ } | Instr.Load { dst; _ } ->
        continue dst
      | Instr.Cmov { dst; _ } -> (
        if Hashtbl.mem renamed (Reg.index dst) then
          go (taken + 1) (instr :: prefix) rest
        else
          match fresh_for dst with
          | None -> List.rev prefix
          | Some fresh ->
            if fresh then incr seeds;
            go (taken + 1) (instr :: prefix) rest)
      | Instr.Nop -> go taken (instr :: prefix) rest
      | Instr.Branch _ | Instr.Jump _ | Instr.Call _ | Instr.Ret
      | Instr.Predict _ | Instr.Resolve _ | Instr.Halt ->
        List.rev prefix)
    | _ -> List.rev prefix
  in
  let prefix = go 0 [] body in
  (prefix, Hashtbl.length renamed, !seeds)

let side_cost ~may_alias ~max_hoist ~temp_slots ~must_rename ~slice body =
  let prefix, renamed, seeds =
    hoist_counts ~max_hoist ~temp_slots ~must_rename body
  in
  (* Heights are measured on the original registers: renaming is a pure
     substitution and seed moves are zero-height copies, so the shape of
     the dependence DAG is unchanged. *)
  { prefix = List.length prefix;
    renamed;
    seeds;
    prefix_height = Bv_sched.Sched.critical_path_cycles ~may_alias prefix;
    merged_height =
      Bv_sched.Sched.critical_path_cycles ~may_alias (slice @ prefix)
  }

let count_preds preds lab =
  List.length (Option.value (Hashtbl.find_opt preds lab) ~default:[])

(* Structural preconditions of the rewrite, mirroring candidate
   selection: a hammock of distinct, non-entry, single-predecessor
   successors, neither looping straight back to the branch block. *)
let shape_reason ~preds ~entry ~block ~taken ~not_taken =
  if Label.equal taken not_taken then Some "successors are not distinct"
  else if Label.equal taken block || Label.equal not_taken block then
    Some "successor loops back to the branch block"
  else if Label.equal taken entry || Label.equal not_taken entry then
    Some "successor is the procedure entry"
  else if count_preds preds taken > 1 then
    Some "taken successor has multiple predecessors"
  else if count_preds preds not_taken > 1 then
    Some "not-taken successor has multiple predecessors"
  else None

let classify ~proc ~loops ~cfg_forward ~slice block =
  let lab = block.Block.label in
  if not cfg_forward then Loop_back
  else
    match Loops.innermost loops lab with
    | None -> Straightline
    | Some header ->
      let body = Loops.body loops header in
      let exits =
        List.exists
          (fun s -> not (Loops.in_loop loops ~header s))
          (Cfg.successors proc block)
      in
      if exits then Loop_exit
      else begin
        (* Inputs of the slice: registers it reads but does not define. *)
        let slice_defs =
          List.fold_left
            (fun s i -> Regset.union s (Regset.of_list (Instr.defs i)))
            Regset.empty slice
        in
        let inputs =
          List.fold_left
            (fun s i ->
              Regset.union s
                (Regset.of_list
                   (List.filter
                      (fun r -> not (Regset.mem r slice_defs))
                      (Instr.uses i))))
            Regset.empty slice
        in
        let has_load = List.exists (function Instr.Load _ -> true | _ -> false) slice in
        let varying =
          List.exists
            (fun l ->
              let b = Proc.find_block proc l in
              (not (Label.equal l lab))
              && List.exists
                   (fun i ->
                     List.exists (fun r -> Regset.mem r inputs) (Instr.defs i))
                   b.Block.body)
            body
        in
        if (not has_load) && not varying then Loop_invariant
        else Data_dependent
      end

let analyze_proc ?(max_hoist = 16) ?(temp_slots = 16) ?exit_live ?summaries
    proc =
  let call_mod = Option.map Summary.call_mod summaries in
  let alias = Alias.analyze ?call_mod proc in
  let may_alias = Alias.may_alias alias in
  let slice_alias = Option.map (fun _ -> may_alias) summaries in
  let exit_live = Option.map Liveness.Regset.of_list exit_live in
  let live = Liveness.compute ?exit_live proc in
  let loops = Loops.compute proc in
  let preds = Cfg.predecessor_map proc in
  (* A site's DBB window spans its own block (the predict issues at its
     exit) and both successors (the resolve sits at the top of the
     resolution block carved out of them). Pressure at a label is how
     many windows cover it — the static analogue of
     {!Speculation.max_outstanding} on the transformed program. *)
  let windows =
    List.filter_map
      (fun b ->
        match b.Block.term with
        | Term.Branch { taken; not_taken; id; _ } ->
          Some (id, [ b.Block.label; taken; not_taken ])
        | _ -> None)
      proc.Proc.blocks
  in
  let pressure_of window =
    List.fold_left
      (fun acc lab ->
        let covering =
          List.length
            (List.filter (fun (_, w) -> List.mem lab w) windows)
        in
        max acc covering)
      1 window
  in
  List.filter_map
    (fun block ->
      match block.Block.term with
      | Term.Branch { src; taken; not_taken; id; _ } ->
        let slice, rest = condition_slice block.Block.body ~src in
        let forward = Cfg.is_forward_branch proc block in
        let ineligible =
          match
            shape_reason ~preds ~entry:proc.Proc.entry ~block:block.Block.label
              ~taken ~not_taken
          with
          | Some r -> Some r
          | None -> (
            match
              check_slice ?may_alias:slice_alias ~slice ~rest block.Block.body
            with
            | Ok () -> None
            | Error r -> Some r)
        in
        let must_rename ~alternate r =
          Liveness.Regset.mem r (Liveness.live_in live alternate)
          || Reg.equal r src
        in
        let side_of ~self ~alternate =
          side_cost ~may_alias ~max_hoist ~temp_slots
            ~must_rename:(must_rename ~alternate) ~slice
            (Proc.find_block proc self).Block.body
        in
        let nt = side_of ~self:not_taken ~alternate:taken in
        let t = side_of ~self:taken ~alternate:not_taken in
        let slice_height =
          Bv_sched.Sched.critical_path_cycles ~may_alias slice
        in
        let window =
          match List.assoc_opt id windows with Some w -> w | None -> []
        in
        Some
          { proc = proc.Proc.name;
            block = block.Block.label;
            site = id;
            ineligible;
            forward;
            pred_class = classify ~proc ~loops ~cfg_forward:forward ~slice block;
            loop_depth = Loops.depth loops block.Block.label;
            slice_size = List.length slice;
            slice_height;
            not_taken = nt;
            taken = t;
            (* predict issue + resolve retire bracket the slice *)
            dbb_residency = slice_height + 2;
            window_pressure = pressure_of window;
            code_growth =
              List.length slice + nt.prefix + t.prefix + nt.renamed
              + t.renamed + nt.seeds + t.seeds + 6
          }
      | _ -> None)
    proc.Proc.blocks

let analyze ?max_hoist ?temp_slots ?exit_live ?summaries program =
  List.concat_map
    (analyze_proc ?max_hoist ?temp_slots ?exit_live ?summaries)
    program.Program.procs

let side_to_json s =
  let open Bv_obs.Json in
  Obj
    [ ("prefix", Int s.prefix);
      ("renamed", Int s.renamed);
      ("seeds", Int s.seeds);
      ("prefix_height", Int s.prefix_height);
      ("merged_height", Int s.merged_height)
    ]

let to_json c =
  let open Bv_obs.Json in
  Obj
    [ ("proc", String c.proc);
      ("block", String c.block);
      ("site", Int c.site);
      ("eligible", Bool (c.ineligible = None));
      ("ineligible_reason",
       match c.ineligible with Some r -> String r | None -> Null);
      ("forward", Bool c.forward);
      ("class", String (pred_class_name c.pred_class));
      ("loop_depth", Int c.loop_depth);
      ("slice_size", Int c.slice_size);
      ("slice_height", Int c.slice_height);
      ("not_taken", side_to_json c.not_taken);
      ("taken", side_to_json c.taken);
      ("dbb_residency", Int c.dbb_residency);
      ("window_pressure", Int c.window_pressure);
      ("code_growth", Int c.code_growth)
    ]
