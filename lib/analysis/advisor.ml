open Bv_profile

type config =
  { redirect_penalty : int;
    overlap_discount : float;
    threshold : float;
    min_executed : int;
    growth_penalty : float;
    dbb_entries : int;
    nominal_execs : int
  }

let default_config =
  { redirect_penalty = 14;
    overlap_discount = 0.25;
    threshold = 0.05;
    min_executed = 100;
    growth_penalty = 10.0;
    dbb_entries = 16;
    nominal_execs = 1000
  }

type recommendation =
  { cost : Costmodel.site_cost;
    profiled : bool;
    execs : int;
    predictability : float;
    bias : float;
    taken_rate : float;
    overlap : int;
    waste : int;
    cycles_saved : float;
    rejected : string option
  }

type t =
  { sites : recommendation list;
    recommended : recommendation list
  }

let score ~config ~profile (cost : Costmodel.site_cost) =
  let stats = Option.bind profile (fun p -> Profile.find p cost.site) in
  let profiled = stats <> None in
  let execs, predictability, bias, taken_rate =
    match stats with
    | Some s ->
      (s.Profile.executed, Profile.predictability s, Profile.bias s,
       Profile.taken_rate s)
    | None ->
      let p = Costmodel.class_prior cost.Costmodel.pred_class in
      (* Forward branches default not-taken; bias is degenerate without a
         profile, so the margin gate is skipped for unprofiled sites. *)
      (config.nominal_execs, p, p, 0.0)
  in
  (* Predicted side: the direction the site leans. Unprofiled forward
     sites lean not-taken. *)
  let side =
    if taken_rate >= 0.5 then cost.Costmodel.taken
    else cost.Costmodel.not_taken
  in
  let overlap =
    max 0
      (cost.Costmodel.slice_height + side.Costmodel.prefix_height
     - side.Costmodel.merged_height)
  in
  let waste = max 0 (side.Costmodel.merged_height - cost.Costmodel.slice_height) in
  (* Commit moves retire in the resolve's shadow, 4 wide. *)
  let commit_tax = Float.of_int ((side.Costmodel.renamed + 3) / 4) in
  (* The dominant saving is per expected misprediction: the baseline
     squashes and refills the front end, while the decomposed resolve
     keeps the path-independent slice and corrects locally, so the model
     credits the redirect penalty less the (discounted) wrong-side work
     burned past the slice. On a correct prediction only a fraction of
     the merged-schedule overlap is new — the in-order front end already
     overlaps adjacent blocks' issue — hence the same discount. *)
  let per_exec =
    ((1.0 -. predictability)
    *. (Float.of_int config.redirect_penalty
       -. (config.overlap_discount *. Float.of_int waste)))
    +. (predictability *. config.overlap_discount *. Float.of_int overlap)
    -. commit_tax
  in
  let cycles_saved =
    (Float.of_int execs *. per_exec)
    -. (config.growth_penalty *. Float.of_int cost.Costmodel.code_growth)
  in
  let rejected =
    match cost.Costmodel.ineligible with
    | Some r -> Some r
    | None ->
      if not cost.Costmodel.forward then
        Some "backward branch (loop latch is never decomposed)"
      else if execs < config.min_executed then
        Some
          (Printf.sprintf "cold: executed %d times, minimum is %d" execs
             config.min_executed)
      else if profiled && predictability -. bias < config.threshold then
        Some
          (Printf.sprintf
             "predictability %.3f exceeds bias %.3f by less than %.2f"
             predictability bias config.threshold)
      else if cost.Costmodel.window_pressure > config.dbb_entries then
        Some
          (Printf.sprintf "window pressure %d exceeds %d DBB entries"
             cost.Costmodel.window_pressure config.dbb_entries)
      else if cycles_saved <= 0.0 then
        Some (Printf.sprintf "estimated savings %.1f cycles" cycles_saved)
      else None
  in
  { cost; profiled; execs; predictability; bias; taken_rate; overlap; waste;
    cycles_saved; rejected }

let advise ?(config = default_config) ?profile costs =
  let sites =
    List.sort
      (fun a b ->
        match Float.compare b.cycles_saved a.cycles_saved with
        | 0 -> Int.compare a.cost.Costmodel.site b.cost.Costmodel.site
        | c -> c)
      (List.map (score ~config ~profile) costs)
  in
  { sites; recommended = List.filter (fun r -> r.rejected = None) sites }

(* ---------------------------------------------------------- validation -- *)

(* Average ranks: ties share the mean of the positions they occupy. *)
let ranks xs =
  let n = Array.length xs in
  let order = Array.init n Fun.id in
  Array.sort (fun i j -> Float.compare xs.(i) xs.(j)) order;
  let r = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(order.(!j + 1)) = xs.(order.(!i)) do incr j done;
    let avg = Float.of_int (!i + !j + 2) /. 2.0 in
    for k = !i to !j do
      r.(order.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let spearman xs ys =
  let n = Array.length xs in
  if n < 2 then Float.nan
  else begin
    let rx = ranks xs and ry = ranks ys in
    let mean a = Array.fold_left ( +. ) 0.0 a /. Float.of_int n in
    let mx = mean rx and my = mean ry in
    let cov = ref 0.0 and vx = ref 0.0 and vy = ref 0.0 in
    for i = 0 to n - 1 do
      let dx = rx.(i) -. mx and dy = ry.(i) -. my in
      cov := !cov +. (dx *. dy);
      vx := !vx +. (dx *. dx);
      vy := !vy +. (dy *. dy)
    done;
    if !vx = 0.0 || !vy = 0.0 then Float.nan
    else !cov /. Float.sqrt (!vx *. !vy)
  end

type validation =
  { joined : (recommendation * float) list;
    spearman : float;
    outliers : (recommendation * float * int) list
  }

let validate ?max_rank_divergence ~measured t =
  (* Join over the sites the model scored as savers: rejected-but-costed
     sites have no meaningful static rank, and measured data only covers
     sites that actually ran. *)
  let joined =
    List.filter_map
      (fun r ->
        if r.rejected <> None && r.cycles_saved <= 0.0 then None
        else
          Option.map
            (fun m -> (r, m))
            (List.assoc_opt r.cost.Costmodel.site measured))
      t.sites
  in
  let xs = Array.of_list (List.map (fun (r, _) -> r.cycles_saved) joined) in
  let ys = Array.of_list (List.map snd joined) in
  let rho = spearman xs ys in
  (* A few positions of rank slip are noise in any decent-sized join; by
     default only a site displaced across a third of the field is worth a
     look. *)
  let max_rank_divergence =
    match max_rank_divergence with
    | Some b -> b
    | None -> max 3 (Array.length xs / 3)
  in
  let outliers =
    if Array.length xs < 2 then []
    else begin
      let rx = ranks xs and ry = ranks ys in
      List.mapi
        (fun i (r, m) -> (r, m, Float.to_int (Float.abs (rx.(i) -. ry.(i)))))
        joined
      |> List.filter (fun (_, _, d) -> d > max_rank_divergence)
    end
  in
  { joined; spearman = rho; outliers }

(* ---------------------------------------------------------------- json -- *)

let recommendation_to_json r =
  let open Bv_obs.Json in
  Obj
    [ ("site", Int r.cost.Costmodel.site);
      ("proc", String r.cost.Costmodel.proc);
      ("block", String r.cost.Costmodel.block);
      ("recommended", Bool (r.rejected = None));
      ("rejected",
       match r.rejected with Some s -> String s | None -> Null);
      ("profiled", Bool r.profiled);
      ("executed", Int r.execs);
      ("predictability", Float r.predictability);
      ("bias", Float r.bias);
      ("taken_rate", Float r.taken_rate);
      ("class",
       String (Costmodel.pred_class_name r.cost.Costmodel.pred_class));
      ("overlap", Int r.overlap);
      ("waste", Int r.waste);
      ("cycles_saved", Float r.cycles_saved);
      ("cost", Costmodel.to_json r.cost)
    ]

let to_json ?label t =
  let open Bv_obs.Json in
  let fields =
    [ ("schema_version", Int schema_version) ]
    @ (match label with Some l -> [ ("label", String l) ] | None -> [])
    @ [ ("sites", List (List.map recommendation_to_json t.sites));
        ("recommended",
         List
           (List.map
              (fun r -> Int r.cost.Costmodel.site)
              t.recommended))
      ]
  in
  Obj fields

let validation_to_json v =
  let open Bv_obs.Json in
  Obj
    [ ("joined", Int (List.length v.joined));
      ("spearman",
       if Float.is_nan v.spearman then Null else Float v.spearman);
      ("outliers",
       List
         (List.map
            (fun (r, m, d) ->
              Obj
                [ ("site", Int r.cost.Costmodel.site);
                  ("static_cycles_saved", Float r.cycles_saved);
                  ("measured_recovery", Float m);
                  ("rank_divergence", Int d)
                ])
            v.outliers))
    ]
