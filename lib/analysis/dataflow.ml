open Bv_isa
open Bv_ir

type direction =
  | Forward
  | Backward

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Make (L : LATTICE) = struct
  type solution =
    { s_in : (Label.t, L.t) Hashtbl.t;
      s_out : (Label.t, L.t) Hashtbl.t
    }

  let fact_in s l = Hashtbl.find_opt s.s_in l
  let fact_out s l = Hashtbl.find_opt s.s_out l

  let solve ~direction ~boundary ~transfer proc =
    let blocks = Hashtbl.create 64 in
    List.iter
      (fun b -> Hashtbl.replace blocks b.Block.label b)
      proc.Proc.blocks;
    let rpo = Cfg.reverse_postorder proc in
    let order = match direction with Forward -> rpo | Backward -> List.rev rpo in
    let in_order = Hashtbl.create 64 in
    List.iter (fun l -> Hashtbl.replace in_order l ()) order;
    let preds = Cfg.predecessor_map proc in
    let pred_labels l = Option.value (Hashtbl.find_opt preds l) ~default:[] in
    (* "upstream" feeds a block's input fact; "downstream" must be revisited
       when its output fact changes. *)
    let upstream b =
      match direction with
      | Forward -> pred_labels b.Block.label
      | Backward -> Term.successors b.Block.term
    in
    let downstream b =
      match direction with
      | Forward -> Term.successors b.Block.term
      | Backward -> pred_labels b.Block.label
    in
    let at_boundary b =
      match direction with
      | Forward -> Label.equal b.Block.label proc.Proc.entry
      | Backward -> Term.successors b.Block.term = []
    in
    let s_in = Hashtbl.create 64 in
    let s_out = Hashtbl.create 64 in
    (* The transfer's input is the block-in for forward problems and the
       block-out for backward ones; its output is the other. *)
    let input_tbl = match direction with Forward -> s_in | Backward -> s_out in
    let output_tbl = match direction with Forward -> s_out | Backward -> s_in in
    let queue = Queue.create () in
    let queued = Hashtbl.create 64 in
    let enqueue l =
      if
        Hashtbl.mem blocks l
        && Hashtbl.mem in_order l
        && not (Hashtbl.mem queued l)
      then begin
        Hashtbl.replace queued l ();
        Queue.add l queue
      end
    in
    List.iter enqueue order;
    while not (Queue.is_empty queue) do
      let l = Queue.pop queue in
      Hashtbl.remove queued l;
      let b = Hashtbl.find blocks l in
      let sources =
        List.filter_map (fun s -> Hashtbl.find_opt output_tbl s) (upstream b)
      in
      let sources = if at_boundary b then boundary :: sources else sources in
      match sources with
      | [] -> () (* no facts yet; a later upstream visit will re-enqueue *)
      | f :: rest ->
        let input = List.fold_left L.join f rest in
        Hashtbl.replace input_tbl l input;
        let output = transfer b input in
        let changed =
          match Hashtbl.find_opt output_tbl l with
          | Some prev -> not (L.equal prev output)
          | None -> true
        in
        if changed then begin
          Hashtbl.replace output_tbl l output;
          List.iter enqueue (downstream b)
        end
    done;
    { s_in; s_out }
end
