open Bv_isa
open Bv_ir
module Regset = Set.Make (Reg)

type purity = Pure | Read_only | Writes_bounded | Writes_unknown

type footprint = Alias.address list option

type t =
  { name : Label.t;
    mod_regs : Regset.t;
    use_regs : Regset.t;
    loads : footprint;
    stores : footprint;
    recursive : bool
  }

type env =
  { graph : Callgraph.t;
    table : (Label.t, t) Hashtbl.t;
    order : Label.t list
  }

let purity t =
  match t.stores with
  | Some [] -> ( match t.loads with Some [] -> Pure | _ -> Read_only)
  | Some _ -> Writes_bounded
  | None -> Writes_unknown

let store_free t = match t.stores with Some [] -> true | _ -> false

let purity_name = function
  | Pure -> "pure"
  | Read_only -> "read-only"
  | Writes_bounded -> "writes-bounded"
  | Writes_unknown -> "writes-unknown"

let scratch_clean t ~pool =
  let pool = Regset.of_list pool in
  Regset.is_empty (Regset.inter pool (Regset.union t.mod_regs t.use_regs))

let all_regs =
  Regset.of_list (List.init Reg.count Reg.make)

(* ----------------------------------------------- footprint algebra -- *)

(* Regions are grouped by base (absolute, or an entry register), sorted
   by their low bound, and coalesced when two same-base windows come
   within one 8-byte access of each other — coalescing only grows a
   may-access set, so it is always sound. A footprint that still spans
   more than [max_regions] windows is hulled per base; that bounds the
   representation, which the SCC fixpoint's equality test relies on. *)
let max_regions = 12

let region_key = function
  | Alias.Absolute _ -> -1
  | Alias.Reg_relative (r, _, _) -> Reg.index r
  | Alias.Unknown -> invalid_arg "Summary.region_key: Unknown"

let region_bounds = function
  | Alias.Absolute (l, h) | Alias.Reg_relative (_, l, h) -> (l, h)
  | Alias.Unknown -> invalid_arg "Summary.region_bounds: Unknown"

let region_make key (l, h) =
  if key < 0 then Alias.Absolute (l, h) else Alias.Reg_relative (Reg.make key, l, h)

let coalesce intervals =
  let sorted = List.sort compare intervals in
  List.fold_left
    (fun acc (l, h) ->
      match acc with
      | (l0, h0) :: rest when h0 > max_int - 8 || l <= h0 + 8 ->
        (l0, max h0 h) :: rest
      | _ -> (l, h) :: acc)
    [] sorted
  |> List.rev

let normalize = function
  | None -> None
  | Some regions ->
    if List.exists (fun r -> r = Alias.Unknown) regions then None
    else begin
      let groups = Hashtbl.create 8 in
      List.iter
        (fun r ->
          let k = region_key r in
          let prior = Option.value (Hashtbl.find_opt groups k) ~default:[] in
          Hashtbl.replace groups k (region_bounds r :: prior))
        regions;
      let merged =
        Hashtbl.fold
          (fun k intervals acc -> (k, coalesce intervals) :: acc)
          groups []
      in
      let total = List.fold_left (fun n (_, is) -> n + List.length is) 0 merged in
      let merged =
        if total <= max_regions then merged
        else
          List.map
            (fun (k, is) ->
              let l = List.fold_left (fun a (l, _) -> min a l) max_int is in
              let h = List.fold_left (fun a (_, h) -> max a h) min_int is in
              (k, [ (l, h) ]))
            merged
      in
      Some
        (List.sort compare
           (List.concat_map
              (fun (k, is) -> List.map (region_make k) is)
              merged))
    end

let add_region fp addr =
  match fp with
  | None -> None
  | Some rs -> ( match addr with Alias.Unknown -> None | a -> Some (a :: rs))

let add_rebased fp callee_fp facts =
  match (fp, callee_fp) with
  | None, _ | _, None -> None
  | Some rs, Some callee ->
    List.fold_left
      (fun acc region -> add_region acc (Alias.rebase region facts))
      (Some rs) callee

(* -------------------------------------------------- per-proc pass -- *)

let terminator_uses = function
  | Term.Branch { src; _ } | Term.Resolve { src; _ } -> [ src ]
  | _ -> []

(* Worst case for a call whose target has no summary (a program Validate
   would reject): the callee may touch anything. *)
let havoc_all =
  { name = "";
    mod_regs = all_regs;
    use_regs = all_regs;
    loads = None;
    stores = None;
    recursive = false
  }

let summarize lookup proc =
  let callee_of target = Option.value (lookup target) ~default:havoc_all in
  let call_mod target =
    match lookup target with
    | Some s -> Some (Regset.elements s.mod_regs)
    | None -> None
  in
  let solution = Alias.solve ~call_mod proc in
  let mod_regs = ref Regset.empty in
  let use_regs = ref Regset.empty in
  let loads = ref (Some []) in
  let stores = ref (Some []) in
  List.iter
    (fun label ->
      let b = Proc.find_block proc label in
      List.iter
        (fun i ->
          mod_regs := Regset.union !mod_regs (Regset.of_list (Instr.defs i));
          use_regs := Regset.union !use_regs (Regset.of_list (Instr.uses i)))
        b.Block.body;
      use_regs :=
        Regset.union !use_regs (Regset.of_list (terminator_uses b.Block.term));
      (match Alias.entry_facts solution label with
      | None ->
        (* unreachable from the entry: contributes no dynamic accesses *)
        ()
      | Some facts ->
        List.iter
          (fun i ->
            (match i with
            | Instr.Load { base; offset; _ } ->
              loads := add_region !loads (Alias.address_at facts ~base ~offset)
            | Instr.Store { base; offset; _ } ->
              stores := add_region !stores (Alias.address_at facts ~base ~offset)
            | _ -> ());
            Alias.step_instr facts i)
          b.Block.body;
        match b.Block.term with
        | Term.Call { target; _ } ->
          let callee = callee_of target in
          mod_regs := Regset.union !mod_regs callee.mod_regs;
          use_regs := Regset.union !use_regs callee.use_regs;
          loads := add_rebased !loads callee.loads facts;
          stores := add_rebased !stores callee.stores facts
        | _ -> ()))
    (Cfg.reverse_postorder proc);
  { name = proc.Proc.name;
    mod_regs = !mod_regs;
    use_regs = !use_regs;
    loads = normalize !loads;
    stores = normalize !stores;
    recursive = false (* filled in by the driver *)
  }

let equal_t a b =
  Label.equal a.name b.name
  && Regset.equal a.mod_regs b.mod_regs
  && Regset.equal a.use_regs b.use_regs
  && a.loads = b.loads && a.stores = b.stores && a.recursive = b.recursive

(* ----------------------------------------------------- the driver -- *)

(* Rounds of optimistic iteration a recursive SCC gets before its
   still-changing footprints are widened to unbounded. The register sets
   live in a finite lattice and are allowed to keep iterating; only the
   interval footprints can grow forever (a recursive call that rebases
   its own store window by a stride widens it every round). *)
let max_footprint_rounds = 4

let bottom name recursive =
  { name;
    mod_regs = Regset.empty;
    use_regs = Regset.empty;
    loads = Some [];
    stores = Some [];
    recursive
  }

let compute program =
  let graph = Callgraph.build program in
  let table = Hashtbl.create 16 in
  let lookup target = Hashtbl.find_opt table target in
  let proc_of =
    let m = Hashtbl.create 16 in
    List.iter (fun p -> Hashtbl.replace m p.Proc.name p) program.Program.procs;
    Hashtbl.find m
  in
  List.iter
    (fun members ->
      match members with
      | [ name ] when not (Callgraph.in_recursive_scc graph name) ->
        Hashtbl.replace table name
          { (summarize lookup (proc_of name)) with recursive = false }
      | _ ->
        List.iter
          (fun name -> Hashtbl.replace table name (bottom name true))
          members;
        let round = ref 0 in
        let changed = ref true in
        while !changed do
          incr round;
          changed := false;
          List.iter
            (fun name ->
              let old = Hashtbl.find table name in
              let nu =
                { (summarize lookup (proc_of name)) with recursive = true }
              in
              let nu =
                if !round < max_footprint_rounds then nu
                else
                  (* widen exactly the components that are still moving *)
                  { nu with
                    loads = (if nu.loads = old.loads then nu.loads else None);
                    stores = (if nu.stores = old.stores then nu.stores else None)
                  }
              in
              if not (equal_t old nu) then begin
                Hashtbl.replace table name nu;
                changed := true
              end)
            members
        done)
    (Callgraph.sccs graph);
  { graph; table; order = List.map (fun p -> p.Proc.name) program.Program.procs }

let graph env = env.graph

let find env name = Hashtbl.find_opt env.table name

let procs env = List.filter_map (find env) env.order

let call_mod env name =
  Option.map (fun s -> Regset.elements s.mod_regs) (find env name)

(* -------------------------------------------------------- reports -- *)

let pp_regset ppf s =
  Format.fprintf ppf "{%s}"
    (String.concat ","
       (List.map (fun r -> Printf.sprintf "r%d" (Reg.index r)) (Regset.elements s)))

let pp_region ppf = function
  | Alias.Absolute (l, h) -> Format.fprintf ppf "[%d,%d]" l h
  | Alias.Reg_relative (r, l, h) ->
    Format.fprintf ppf "r%d+[%d,%d]" (Reg.index r) l h
  | Alias.Unknown -> Format.fprintf ppf "?"

let pp_footprint ppf = function
  | None -> Format.fprintf ppf "unbounded"
  | Some [] -> Format.fprintf ppf "none"
  | Some rs ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
      pp_region ppf rs

let pp ppf t =
  Format.fprintf ppf "%s:%s %s mod=%a use=%a stores=%a loads=%a" t.name
    (if t.recursive then " recursive" else "")
    (purity_name (purity t))
    pp_regset t.mod_regs pp_regset t.use_regs pp_footprint t.stores
    pp_footprint t.loads

let region_json r =
  let open Bv_obs.Json in
  match r with
  | Alias.Absolute (l, h) ->
    Obj [ ("base", Null); ("lo", Int l); ("hi", Int h) ]
  | Alias.Reg_relative (reg, l, h) ->
    Obj [ ("base", Int (Reg.index reg)); ("lo", Int l); ("hi", Int h) ]
  | Alias.Unknown -> Null

let footprint_json fp =
  let open Bv_obs.Json in
  match fp with
  | None -> Null
  | Some rs -> List (List.map region_json rs)

let summary_json env t =
  let open Bv_obs.Json in
  Obj
    [ ("proc", String t.name);
      ("recursive", Bool t.recursive);
      ("purity", String (purity_name (purity t)));
      ("callees",
       List (List.map (fun c -> String c) (Callgraph.callees env.graph t.name)));
      ("mod_regs",
       List (List.map (fun r -> Int (Reg.index r)) (Regset.elements t.mod_regs)));
      ("use_regs",
       List (List.map (fun r -> Int (Reg.index r)) (Regset.elements t.use_regs)));
      ("stores", footprint_json t.stores);
      ("loads", footprint_json t.loads)
    ]

let to_json env =
  let open Bv_obs.Json in
  Obj
    [ ("sccs",
       List
         (List.map
            (fun members -> List (List.map (fun m -> String m) members))
            (Callgraph.sccs env.graph)));
      ("procs", List (List.map (summary_json env) (procs env)))
    ]

let stats_json env =
  let open Bv_obs.Json in
  let summaries = procs env in
  let count p = List.length (List.filter p summaries) in
  Obj
    [ ("procs", Int (List.length summaries));
      ("sccs", Int (List.length (Callgraph.sccs env.graph)));
      ("recursive_procs", Int (count (fun t -> t.recursive)));
      ("store_free", Int (count store_free));
      ("purity",
       Obj
         (List.map
            (fun p ->
              (purity_name p, Int (count (fun t -> purity t = p))))
            [ Pure; Read_only; Writes_bounded; Writes_unknown ]))
    ]
