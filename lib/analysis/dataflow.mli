(** Generic lattice-based dataflow over a procedure's CFG.

    The engine is direction-agnostic: facts flow along CFG edges
    ([Forward]) or against them ([Backward]), joined at merge points with
    the lattice's [join] and pushed through a per-block transfer function.
    Iteration is a worklist seeded in reverse postorder (postorder for
    backward problems), so acyclic regions converge in one sweep and loops
    in a few.

    Initialisation is optimistic: a block's input is the join of the facts
    of the upstream blocks {e computed so far} (plus the boundary fact at
    the entry/exit). Upstream blocks without facts contribute nothing,
    which is equivalent to seeding them with the lattice's top element —
    sound for both may- (union) and must- (intersection) problems, and it
    keeps the signature free of an explicit top.

    Blocks unreachable in the analysis direction (from the entry for
    forward problems, from any exit for backward ones) never receive
    facts; [fact_in]/[fact_out] return [None] for them. *)

open Bv_isa
open Bv_ir

type direction =
  | Forward
  | Backward

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Make (L : LATTICE) : sig
  type solution

  val solve :
    direction:direction ->
    boundary:L.t ->
    transfer:(Block.t -> L.t -> L.t) ->
    Proc.t ->
    solution
  (** [solve ~direction ~boundary ~transfer proc] iterates to a fixpoint.
      [boundary] enters at the procedure entry (forward) or at every
      exitless block — [Ret]/[Halt] (backward). [transfer b fact] maps a
      block's input fact to its output fact: in program order for forward
      problems, against it for backward ones. *)

  val fact_in : solution -> Label.t -> L.t option
  (** Fact at the block's entry (program order). [None] if the block was
      never reached by the analysis. *)

  val fact_out : solution -> Label.t -> L.t option
  (** Fact at the block's exit (program order). *)
end
