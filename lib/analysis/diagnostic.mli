(** Structured findings emitted by the static analyses.

    Each diagnostic carries enough location to act on it — procedure,
    block, decomposed-branch site — plus a severity and a stable pass
    name. [to_json] mirrors the record through {!Bv_obs.Json} so reports
    can be consumed by tooling (and by the CI lint step). *)

open Bv_isa

type severity =
  | Error  (** a violated invariant: the program is unsafe to run *)
  | Warning  (** suspicious but not provably wrong *)
  | Info  (** notable structure, e.g. an assert-style resolve *)

type t =
  { severity : severity;
    pass : string;  (** stable pass identifier, e.g. ["pairing"] *)
    proc : Label.t;
    block : Label.t option;
    site : int option;  (** decomposed-branch site id, when one applies *)
    message : string
  }

val error :
  ?block:Label.t ->
  ?site:int ->
  pass:string ->
  proc:Label.t ->
  ('a, unit, string, t) format4 ->
  'a

val warning :
  ?block:Label.t ->
  ?site:int ->
  pass:string ->
  proc:Label.t ->
  ('a, unit, string, t) format4 ->
  'a

val info :
  ?block:Label.t ->
  ?site:int ->
  pass:string ->
  proc:Label.t ->
  ('a, unit, string, t) format4 ->
  'a

val severity_name : severity -> string
val is_error : t -> bool

val count : severity -> t list -> int

val has_errors : t list -> bool

val site_key : t -> string
(** Stable location key ["proc/block#site"] (missing parts printed as
    ["-"]); the join/diff key for report consumers. *)

val compare : t -> t -> int
(** Total order: severity, then pass, proc, block, site, message. Two
    runs of the same analyses produce identically-ordered reports. *)

val sort : t list -> t list
(** Stable sort by {!compare}: errors first, then warnings, then infos,
    location-ordered within each severity. *)

val dedup : t list -> t list
(** Drop diagnostics identical in severity, pass, {!site_key} and
    message, keeping the first occurrence of each. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Bv_obs.Json.t

val report_to_json : t list -> Bv_obs.Json.t
(** [{schema_version; errors; warnings; infos; diagnostics}], with
    diagnostics deduped and in {!sort} order. *)
