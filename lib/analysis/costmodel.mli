(** Static per-branch cost model for the Decomposed Branch Transformation.

    For every conditional branch of a procedure this pass computes, without
    running anything, the quantities that decide whether decomposing the
    branch pays:

    - the {e condition slice} (the backward dependence closure of the
      branch's source within its block) and its dependence height under
      the scheduler's latency model — memory edges relaxed by {!Alias},
      so a provably-disjoint store does not inflate the slice's height.
      The height is the static analogue of the paper's resolution slack:
      how long the resolve trails the predict;
    - per successor side, the store-free {e hoistable prefix} exactly as
      {!hoistable} mirrors the transformation's own rules (renamed
      destinations, conditional-move seed copies, the scratch-pool
      bound), its standalone dependence height, and the height of the
      merged resolution-block body (slice plus prefix) — the difference
      is the overlap a correct prediction buys;
    - a {e predictability class} from dominator/loop structure
      ({!Loops}): loop latches, loop exits, loop-invariant guards,
      data-dependent hammocks and straight-line code misbehave very
      differently under a predictor, and the class supplies a prior when
      no profile is available;
    - static DBB pressure (how many candidate windows can overlap the
      site's own window) and the code growth the rewrite would cost.

    Structural or slice-safety violations that would make the
    transformation skip the site are reported per site as an ineligibility
    reason using the same wording as {!check_slice} / the transform. *)

open Bv_isa
open Bv_ir

type pred_class =
  | Loop_back  (** backward branch: a loop latch, never transformed *)
  | Loop_exit  (** in a loop, one successor leaves its body *)
  | Loop_invariant
      (** in a loop, slice inputs loop-invariant and load-free: the guard
          resolves the same way every iteration *)
  | Data_dependent
      (** in a loop with a loaded or loop-varying condition — the paper's
          poorly-predicted hammock *)
  | Straightline  (** outside any loop *)

val pred_class_name : pred_class -> string

val class_prior : pred_class -> float
(** Default predictability assumed for the class when no profile covers
    the site (e.g. loop exits predict well, data-dependent hammocks
    poorly). *)

type side =
  { prefix : int;  (** hoistable store-free prefix length, in instructions *)
    renamed : int;  (** destinations that need scratch temporaries *)
    seeds : int;  (** seed moves for renamed conditional-move targets *)
    prefix_height : int;  (** dependence height of the prefix alone *)
    merged_height : int
        (** dependence height of slice + speculative prefix — the
            resolution block body *)
  }

type site_cost =
  { proc : Label.t;
    block : Label.t;
    site : int;
    ineligible : string option;
        (** [Some reason] when the transformation would skip the site;
            heights below are still computed where meaningful *)
    forward : bool;
    pred_class : pred_class;
    loop_depth : int;
    slice_size : int;
    slice_height : int;  (** static resolution slack, in cycles *)
    not_taken : side;
    taken : side;
    dbb_residency : int;
        (** cycles a DBB entry stays allocated: slice height plus the
            predict/resolve handshake *)
    window_pressure : int;
        (** candidate windows (this one included) that can be
            simultaneously outstanding across this site's window — must
            stay within the machine's DBB entries *)
    code_growth : int  (** net static instructions added by the rewrite *)
  }

val check_slice :
  ?may_alias:(Instr.t -> Instr.t -> bool) ->
  slice:Instr.t list -> rest:Instr.t list -> Instr.t list ->
  (unit, string) result
(** The transformation's slice-sinking safety test (same reasons,
    verbatim): the remainder must not read or redefine slice registers,
    and no store may follow a slice load. [may_alias] (summary mode
    only) relaxes the last rule to stores that may alias a preceding
    slice load. *)

val analyze_proc :
  ?max_hoist:int -> ?temp_slots:int -> ?exit_live:Reg.t list ->
  ?summaries:Summary.env ->
  Proc.t -> site_cost list
(** Cost every conditional branch of the procedure, in layout order.
    [max_hoist] (default 16) and [temp_slots] (default 16, the scratch
    pool size) bound the mirrored hoist; [exit_live] is the calling
    convention used for the renaming liveness (default: all registers,
    matching the transform). [summaries] (default absent — byte-identical
    to the historical behaviour) feeds {!Alias.analyze}'s [call_mod]
    hook so register intervals survive calls, and switches the
    slice-safety test to the alias-checked store rule — the same two
    relaxations {!Transform.apply}'s [~summaries] mode applies, so
    eligibility verdicts keep agreeing verbatim. *)

val analyze :
  ?max_hoist:int -> ?temp_slots:int -> ?exit_live:Reg.t list ->
  ?summaries:Summary.env ->
  Program.t -> site_cost list

val to_json : site_cost -> Bv_obs.Json.t
