open Bv_isa

type severity =
  | Error
  | Warning
  | Info

type t =
  { severity : severity;
    pass : string;
    proc : Label.t;
    block : Label.t option;
    site : int option;
    message : string
  }

let make severity ?block ?site ~pass ~proc fmt =
  Printf.ksprintf
    (fun message -> { severity; pass; proc; block; site; message })
    fmt

let error ?block ?site ~pass ~proc fmt = make Error ?block ?site ~pass ~proc fmt
let warning ?block ?site ~pass ~proc fmt =
  make Warning ?block ?site ~pass ~proc fmt
let info ?block ?site ~pass ~proc fmt = make Info ?block ?site ~pass ~proc fmt

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let is_error d = d.severity = Error

let count sev diags =
  List.length (List.filter (fun d -> d.severity = sev) diags)

let has_errors diags = List.exists is_error diags

let sort diags =
  List.stable_sort
    (fun a b -> Int.compare (severity_rank a.severity) (severity_rank b.severity))
    diags

let pp ppf d =
  Format.fprintf ppf "%s[%s] proc %a" (severity_name d.severity) d.pass
    Label.pp d.proc;
  Option.iter (fun b -> Format.fprintf ppf ", block %a" Label.pp b) d.block;
  Option.iter (fun s -> Format.fprintf ppf ", site %d" s) d.site;
  Format.fprintf ppf ": %s" d.message

let to_json d =
  let open Bv_obs.Json in
  Obj
    [ ("severity", String (severity_name d.severity));
      ("pass", String d.pass);
      ("proc", String d.proc);
      ("block", match d.block with Some b -> String b | None -> Null);
      ("site", match d.site with Some s -> Int s | None -> Null);
      ("message", String d.message)
    ]

let report_to_json diags =
  let open Bv_obs.Json in
  Obj
    [ ("schema_version", Int schema_version);
      ("errors", Int (count Error diags));
      ("warnings", Int (count Warning diags));
      ("infos", Int (count Info diags));
      ("diagnostics", List (List.map to_json (sort diags)))
    ]
