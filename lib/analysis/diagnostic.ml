open Bv_isa

type severity =
  | Error
  | Warning
  | Info

type t =
  { severity : severity;
    pass : string;
    proc : Label.t;
    block : Label.t option;
    site : int option;
    message : string
  }

let make severity ?block ?site ~pass ~proc fmt =
  Printf.ksprintf
    (fun message -> { severity; pass; proc; block; site; message })
    fmt

let error ?block ?site ~pass ~proc fmt = make Error ?block ?site ~pass ~proc fmt
let warning ?block ?site ~pass ~proc fmt =
  make Warning ?block ?site ~pass ~proc fmt
let info ?block ?site ~pass ~proc fmt = make Info ?block ?site ~pass ~proc fmt

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let is_error d = d.severity = Error

let count sev diags =
  List.length (List.filter (fun d -> d.severity = sev) diags)

let has_errors diags = List.exists is_error diags

(* Stable location key: procedure, block and site in one string, so
   reports can be ordered, joined and diffed on it across runs. *)
let site_key d =
  Printf.sprintf "%s/%s#%s" d.proc
    (Option.value d.block ~default:"-")
    (match d.site with Some s -> string_of_int s | None -> "-")

let compare_site a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some x, Some y -> Int.compare x y

(* Total order: severity, then pass, then location, then message — a
   deterministic report order independent of analysis traversal order. *)
let compare a b =
  let cmp =
    [ (fun () -> Int.compare (severity_rank a.severity) (severity_rank b.severity));
      (fun () -> String.compare a.pass b.pass);
      (fun () -> Label.compare a.proc b.proc);
      (fun () ->
        Option.compare Label.compare a.block b.block);
      (fun () -> compare_site a.site b.site);
      (fun () -> String.compare a.message b.message)
    ]
  in
  List.fold_left (fun acc f -> if acc <> 0 then acc else f ()) 0 cmp

let sort diags = List.stable_sort compare diags

(* Drop exact repeats at the same site (a shared condition slice or a
   joined fact can surface one finding once per path), keeping first
   occurrences in order. *)
let dedup diags =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun d ->
      let key = (d.severity, d.pass, site_key d, d.message) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    diags

let pp ppf d =
  Format.fprintf ppf "%s[%s] proc %a" (severity_name d.severity) d.pass
    Label.pp d.proc;
  Option.iter (fun b -> Format.fprintf ppf ", block %a" Label.pp b) d.block;
  Option.iter (fun s -> Format.fprintf ppf ", site %d" s) d.site;
  Format.fprintf ppf ": %s" d.message

let to_json d =
  let open Bv_obs.Json in
  Obj
    [ ("severity", String (severity_name d.severity));
      ("pass", String d.pass);
      ("proc", String d.proc);
      ("block", match d.block with Some b -> String b | None -> Null);
      ("site", match d.site with Some s -> Int s | None -> Null);
      ("site_key", String (site_key d));
      ("message", String d.message)
    ]

let report_to_json diags =
  let open Bv_obs.Json in
  let diags = dedup (sort diags) in
  Obj
    [ ("schema_version", Int schema_version);
      ("errors", Int (count Error diags));
      ("warnings", Int (count Warning diags));
      ("infos", Int (count Info diags));
      ("diagnostics", List (List.map to_json diags))
    ]
