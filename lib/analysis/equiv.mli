(** Cutpoint-based translation validation for the decomposed-branch
    transforms.

    The prover picks a cutpoint set common to the original and
    transformed procedure — entry, the {e original}'s control-flow joins
    (reconvergence points; the transform's new resolution/commit blocks
    are deliberately interior), loop headers and call returns of both
    sides (see {!Bv_ir.Cutpoint}) — and symbolically executes every path
    of the acyclic regions between cutpoints on both sides from a common
    havocked state ({!Symexec}).

    Each path carries the set of branch literals (condition term, truth
    value) it assumed; a [predict] forks {e without} a literal (the
    oracle may choose either way), while the paired [resolve]
    re-constrains the path by the original branch condition. A
    transformed path is matched to the original paths whose literal sets
    it subsumes — on a deterministic original, at most one is
    consistent — and the simulation relation is checked at the matched
    endpoints:

    - at an interior cutpoint, registers live into it in the original
      (minus the scratch pool) and the memory log must agree;
    - at [Halt]/[Ret], the exit-live convention minus the scratch pool,
      and memory;
    - at call boundaries, the registers {!Bv_ir.Liveness} models a call
      as reading — exit-live plus the resumption block's live-in — minus
      the scratch pool, and memory. (Callees are assumed to observe only
      the register calling convention, never the scratch pool — the DBT
      register contract the transform's own renaming decisions rely
      on.)

    Because both sides evaluate in one interning context from shared
    entry symbols, "agree" is id equality; predict-direction irrelevance
    falls out because both resolve arms of a region must match the same
    original path. Failures are reported as structured
    {!Diagnostic} counterexamples (cutpoint, register, both symbolic
    values); the check is sound but syntactic, so a counterexample may
    be spurious — it never accepts a non-equivalent pair.

    [verify_self] checks a single program's internal consistency: within
    each region, every pair of paths whose literal sets are compatible
    (no contradictory literal — e.g. the two predict directions under
    equal branch outcomes) must reach the same endpoint in
    relation-equal states. *)

open Bv_isa
open Bv_ir

val verify :
  ?scratch:Reg.t list ->
  ?exit_live:Reg.t list ->
  ?max_paths:int ->
  original:Program.t ->
  Program.t ->
  Diagnostic.t list
(** [scratch] (default none) is the rename pool excluded from the
    relation; pass {!Vanguard.Transform.default_temp_pool} when checking
    its output. [exit_live] mirrors {!Liveness.compute}. [max_paths]
    (default 4096) bounds the paths explored per region; overflow is an
    error diagnostic, not an accept. *)

val verify_self :
  ?scratch:Reg.t list ->
  ?exit_live:Reg.t list ->
  ?max_paths:int ->
  Program.t ->
  Diagnostic.t list

val check_exn :
  ?scratch:Reg.t list ->
  ?exit_live:Reg.t list ->
  ?max_paths:int ->
  original:Program.t ->
  Program.t ->
  unit
(** Raises [Invalid_argument] with the rendered counterexamples if
    {!verify} reports any error. *)
