open Bv_isa

type expr = { id : int; node : node }

and node =
  | Const of int
  | Symbol of string
  | Alu of Instr.alu_op * expr * expr
  | Cmp of Instr.cmp_op * expr * expr
  | Ite of expr * expr * expr
  | Select of mem * expr

and mem = { mid : int; mnode : mnode }

and mnode =
  | Memsym of string
  | Store of mem * expr * expr

(* Structural keys over child ids: children are already interned, so the
   key identifies the node up to congruence. *)
type ekey =
  | Kconst of int
  | Ksymbol of string
  | Kalu of Instr.alu_op * int * int
  | Kcmp of Instr.cmp_op * int * int
  | Kite of int * int * int
  | Kselect of int * int

type mkey = Kmemsym of string | Kstore of int * int * int

type ctx =
  { etab : (ekey, expr) Hashtbl.t;
    mtab : (mkey, mem) Hashtbl.t;
    rtab : (int, (int * int) option) Hashtbl.t;  (* memoized ranges *)
    mutable next_e : int;
    mutable next_m : int
  }

let create () =
  { etab = Hashtbl.create 256;
    mtab = Hashtbl.create 64;
    rtab = Hashtbl.create 256;
    next_e = 0;
    next_m = 0
  }

let intern ctx key node =
  match Hashtbl.find_opt ctx.etab key with
  | Some e -> e
  | None ->
    let e = { id = ctx.next_e; node } in
    ctx.next_e <- ctx.next_e + 1;
    Hashtbl.add ctx.etab key e;
    e

let mintern ctx key mnode =
  match Hashtbl.find_opt ctx.mtab key with
  | Some m -> m
  | None ->
    let m = { mid = ctx.next_m; mnode } in
    ctx.next_m <- ctx.next_m + 1;
    Hashtbl.add ctx.mtab key m;
    m

let const ctx n = intern ctx (Kconst n) (Const n)
let symbol ctx s = intern ctx (Ksymbol s) (Symbol s)
let memsym ctx s = mintern ctx (Kmemsym s) (Memsym s)

let commutative = function
  | Instr.Add | Instr.And | Instr.Or | Instr.Xor | Instr.Mul -> true
  | Instr.Sub | Instr.Shl | Instr.Shr -> false

(* Every identity below is exact under [Instr.eval_alu]'s plain-OCaml-int
   semantics (shifts clamp the count, but a count of 0 is untouched);
   anything less certain is left to constant folding only. *)
let alu ctx op a b =
  match (a.node, b.node) with
  | Const x, Const y -> const ctx (Instr.eval_alu op x y)
  | _ -> (
    let interned () =
      let a, b = if commutative op && a.id > b.id then (b, a) else (a, b) in
      intern ctx (Kalu (op, a.id, b.id)) (Alu (op, a, b))
    in
    match (op, a.node, b.node) with
    | Instr.Add, Const 0, _ -> b
    | Instr.Add, _, Const 0 -> a
    | Instr.Sub, _, Const 0 -> a
    | Instr.Sub, _, _ when a.id = b.id -> const ctx 0
    | Instr.Xor, Const 0, _ -> b
    | Instr.Xor, _, Const 0 -> a
    | Instr.Xor, _, _ when a.id = b.id -> const ctx 0
    | Instr.Or, Const 0, _ -> b
    | Instr.Or, _, Const 0 -> a
    | Instr.Or, _, _ when a.id = b.id -> a
    | Instr.And, Const 0, _ | Instr.And, _, Const 0 -> const ctx 0
    | Instr.And, _, _ when a.id = b.id -> a
    | Instr.Mul, Const 1, _ -> b
    | Instr.Mul, _, Const 1 -> a
    | Instr.Mul, Const 0, _ | Instr.Mul, _, Const 0 -> const ctx 0
    | (Instr.Shl | Instr.Shr), _, Const 0 -> a
    | _ -> interned ())

let bool_const ctx b = const ctx (if b then 1 else 0)

let cmp ctx op a b =
  match (a.node, b.node) with
  | Const x, Const y -> bool_const ctx (Instr.eval_cmp op x y)
  | _ when a.id = b.id ->
    bool_const ctx
      (match op with
      | Instr.Eq | Instr.Le | Instr.Ge -> true
      | Instr.Ne | Instr.Lt | Instr.Gt -> false)
  | _ ->
    let a, b =
      match op with
      | (Instr.Eq | Instr.Ne) when a.id > b.id -> (b, a)
      | _ -> (a, b)
    in
    intern ctx (Kcmp (op, a.id, b.id)) (Cmp (op, a, b))

let truth e =
  match e.node with Const n -> Some (n <> 0) | _ -> None

let ite ctx c t e =
  match truth c with
  | Some true -> t
  | Some false -> e
  | None ->
    if t.id = e.id then t else intern ctx (Kite (c.id, t.id, e.id)) (Ite (c, t, e))

let rec base_offset ctx e =
  match e.node with
  | Const k -> (const ctx 0, k)
  | Alu (Instr.Add, a, { node = Const k; _ }) ->
    let b, o = base_offset ctx a in
    (b, o + k)
  | Alu (Instr.Add, { node = Const k; _ }, a) ->
    let b, o = base_offset ctx a in
    (b, o + k)
  | Alu (Instr.Sub, a, { node = Const k; _ }) ->
    let b, o = base_offset ctx a in
    (b, o - k)
  | _ -> (e, 0)

(* Conservative value intervals, computed structurally and memoized:
   [Some (lo, hi)] means every concrete evaluation of the term lies in
   [lo, hi]. Every rule is exact under [Instr.eval_alu]'s plain-int
   semantics; any arithmetic that could wrap yields [None] instead of an
   unsound bound. The payoff is masked indexing: [(x & m) + base] gets a
   finite window no matter what [x] is, which proves data-window loads
   disjoint from out-of-window bookkeeping stores. *)
let add_bound a b =
  let s = a + b in
  if a >= 0 && b >= 0 && s < 0 then None
  else if a < 0 && b < 0 && s >= 0 then None
  else Some s

let sub_bound a b = if b = min_int then None else add_bound a (-b)

let rec range ctx e =
  match Hashtbl.find_opt ctx.rtab e.id with
  | Some r -> r
  | None ->
    let r = compute_range ctx e in
    Hashtbl.replace ctx.rtab e.id r;
    r

and compute_range ctx e =
  match e.node with
  | Const k -> Some (k, k)
  | Symbol _ | Select _ -> None
  | Cmp _ -> Some (0, 1)
  | Ite (_, t, el) -> (
    match (range ctx t, range ctx el) with
    | Some (lt, ht), Some (le, he) -> Some (min lt le, max ht he)
    | _ -> None)
  | Alu (op, a, b) -> alu_range ctx op a b

and alu_range ctx op a b =
  let ra = range ctx a and rb = range ctx b in
  let pair l h = match (l, h) with Some l, Some h -> Some (l, h) | _ -> None in
  match (op, ra, rb) with
  | Instr.Add, Some (l1, h1), Some (l2, h2) ->
    pair (add_bound l1 l2) (add_bound h1 h2)
  | Instr.Sub, Some (l1, h1), Some (l2, h2) ->
    pair (sub_bound l1 h2) (sub_bound h1 l2)
  | Instr.And, _, _ -> (
    (* x land y has only the bits of a non-negative operand: bounded by
       it regardless of the other side *)
    match (ra, rb) with
    | Some (l1, h1), Some (l2, h2) when l1 >= 0 && l2 >= 0 ->
      Some (0, min h1 h2)
    | _, Some (l2, h2) when l2 >= 0 -> Some (0, h2)
    | Some (l1, h1), _ when l1 >= 0 -> Some (0, h1)
    | _ -> None)
  | Instr.Or, Some (l1, h1), Some (l2, h2) when l1 >= 0 && l2 >= 0 ->
    (* for non-negatives, x lor y = x + y - (x land y) <= x + y *)
    pair (Some (max l1 l2)) (add_bound h1 h2)
  | Instr.Xor, Some (l1, h1), Some (l2, h2) when l1 >= 0 && l2 >= 0 ->
    pair (Some 0) (add_bound h1 h2)
  | Instr.Shl, Some (l1, h1), Some (s, s') when s = s' && l1 >= 0 ->
    let c = min 62 (s land 63) in
    if h1 <= max_int asr c then Some (l1 lsl c, h1 lsl c) else None
  | Instr.Shr, Some (l1, h1), Some (s, s') when s = s' ->
    (* asr is monotone in the shifted value for either sign *)
    let c = min 62 (s land 63) in
    Some (l1 asr c, h1 asr c)
  | Instr.Mul, Some (l1, h1), Some (l2, h2) when l1 >= 0 && l2 >= 0 ->
    if h2 = 0 || h1 <= max_int / h2 then Some (l1 * l2, h1 * h2) else None
  | _ -> None

(* Anchored interval: the term's value is [root + d] for some [d] in the
   interval, where [root] is the value of the anchor term ([None] means
   absolute). Mirrors the Entry/Abs split of the alias pass so the prover
   accepts exactly the load/store reorderings that pass licenses: an
   address like [(r10 + (x & m)) + 32] anchors to the symbol [r10] with a
   finite displacement window even though its absolute range is unknown. *)
let iadd (l1, h1) (l2, h2) =
  match (add_bound l1 l2, add_bound h1 h2) with
  | Some l, Some h -> Some (l, h)
  | _ -> None

let rec anchored ctx e =
  match range ctx e with
  | Some i -> (None, i)
  | None -> (
    let self = (Some e.id, (0, 0)) in
    let part p i =
      let root, ip = anchored ctx p in
      match iadd ip i with Some j -> (root, j) | None -> self
    in
    match e.node with
    | Alu (Instr.Add, a, b) -> (
      match (range ctx a, range ctx b) with
      | _, Some ib -> part a ib
      | Some ia, None -> part b ia
      | None, None -> self)
    | Alu (Instr.Sub, a, b) -> (
      match range ctx b with
      | Some (lb, hb) when lb <> min_int && hb <> min_int ->
        part a (-hb, -lb)
      | _ -> self)
    | _ -> self)

(* 8-byte accesses at displacements drawn from the two intervals. The
   wrap-free difference guard makes the verdict hold for addresses that
   share a wrapped anchor: the two concrete addresses then differ by
   exactly a value of [i1 - i2], which the test keeps at least a word
   away from zero. *)
let intervals_disjoint (l1, h1) (l2, h2) =
  match (sub_bound h1 l2, sub_bound h2 l1) with
  | Some d12, Some d21 -> d12 <= -8 || d21 <= -8
  | _ -> false

let surely_disjoint ctx a b =
  let r1, i1 = anchored ctx a and r2, i2 = anchored ctx b in
  r1 = r2 && intervals_disjoint i1 i2

(* Canonical store-log order for provably-disjoint addresses. Only
   same-anchor stores ever commute, and their displacement windows are
   disjoint, so the window orders them — and does so identically on both
   sides of an equivalence check (term ids would not: they depend on
   interning order). *)
let addr_key ctx a =
  let _, i = anchored ctx a in
  i

let rec select ctx m a =
  match m.mnode with
  | Store (m', a', v) ->
    if a'.id = a.id then v
    else if surely_disjoint ctx a a' then select ctx m' a
    else mselect ctx m a
  | Memsym _ -> mselect ctx m a

and mselect ctx m a = intern ctx (Kselect (m.mid, a.id)) (Select (m, a))

(* Insertion-sort a new store into the log: collapse onto a shadowed
   same-address store, sink below provably-disjoint stores with a larger
   (base, offset) key, stop at the first may-aliasing store. Two logs that
   differ only by legal reorderings normalize to the same term. *)
let rec store ctx m a v =
  match m.mnode with
  | Store (m', a', _) when a'.id = a.id -> mstore ctx m' a v
  | Store (m', a', v')
    when surely_disjoint ctx a a' && addr_key ctx a < addr_key ctx a' ->
    mstore ctx (store ctx m' a v) a' v'
  | _ -> mstore ctx m a v

and mstore ctx m a v = mintern ctx (Kstore (m.mid, a.id, v.id)) (Store (m, a, v))

(* ------------------------------------------------------------- states -- *)

type state = { regs : expr array; mem : mem }

let init ctx ~reg_symbol ~mem_symbol =
  { regs = Array.init Reg.count (fun i -> symbol ctx (reg_symbol (Reg.make i)));
    mem = memsym ctx mem_symbol
  }

let get st r = st.regs.(Reg.index r)

let set st r v =
  let regs = Array.copy st.regs in
  regs.(Reg.index r) <- v;
  { st with regs }

let operand ctx st = function
  | Instr.Reg r -> get st r
  | Instr.Imm k -> const ctx k

let addr ctx st ~base ~offset = alu ctx Instr.Add (get st base) (const ctx offset)

let exec_instr ctx st instr =
  match instr with
  | Instr.Nop -> st
  | Instr.Alu { op; dst; src1; src2 } | Instr.Fpu { op; dst; src1; src2 } ->
    set st dst (alu ctx op (get st src1) (operand ctx st src2))
  | Instr.Mov { dst; src } -> set st dst (operand ctx st src)
  | Instr.Load { dst; base; offset; speculative = _ } ->
    set st dst (select ctx st.mem (addr ctx st ~base ~offset))
  | Instr.Store { src; base; offset } ->
    { st with mem = store ctx st.mem (addr ctx st ~base ~offset) (get st src) }
  | Instr.Cmp { op; dst; src1; src2 } ->
    set st dst (cmp ctx op (get st src1) (operand ctx st src2))
  | Instr.Cmov { on; cond; dst; src } ->
    let c = get st cond in
    let v = operand ctx st src and old = get st dst in
    let t, e = if on then (v, old) else (old, v) in
    set st dst (ite ctx c t e)
  | Instr.Branch _ | Instr.Jump _ | Instr.Call _ | Instr.Ret
  | Instr.Predict _ | Instr.Resolve _ | Instr.Halt ->
    invalid_arg "Symexec.exec_instr: control-flow instruction in a block body"

let exec_body ctx st body = List.fold_left (exec_instr ctx) st body

(* ----------------------------------------------------------- printing -- *)

let alu_sym = function
  | Instr.Add -> "+"
  | Instr.Sub -> "-"
  | Instr.And -> "&"
  | Instr.Or -> "|"
  | Instr.Xor -> "^"
  | Instr.Shl -> "<<"
  | Instr.Shr -> ">>"
  | Instr.Mul -> "*"

let cmp_sym = function
  | Instr.Eq -> "=="
  | Instr.Ne -> "!="
  | Instr.Lt -> "<"
  | Instr.Ge -> ">="
  | Instr.Le -> "<="
  | Instr.Gt -> ">"

let rec pp ppf e =
  match e.node with
  | Const n -> Format.pp_print_int ppf n
  | Symbol s -> Format.pp_print_string ppf s
  | Alu (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (alu_sym op) pp b
  | Cmp (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (cmp_sym op) pp b
  | Ite (c, t, e) -> Format.fprintf ppf "(%a ? %a : %a)" pp c pp t pp e
  | Select (m, a) -> Format.fprintf ppf "%a[%a]" pp_mem m pp a

and pp_mem ppf m =
  match m.mnode with
  | Memsym s -> Format.pp_print_string ppf s
  | Store (m', a, v) ->
    Format.fprintf ppf "%a{%a:=%a}" pp_mem m' pp a pp v

let to_string e = Format.asprintf "%a" pp e
