(** Bottom-up interprocedural procedure summaries.

    For every procedure the engine computes, in reverse topological
    order of {!Bv_ir.Callgraph} SCCs (callees before callers, with
    fixpoint iteration inside recursive components):

    - the {e register mod set}: every register the procedure — or
      anything it transitively calls — may write. Registers are global
      across calls (the hidden ISA has no save/restore convention), so
      this is exactly the havoc set a caller-side analysis needs at a
      call;
    - the {e register use set}: a conservative superset of the registers
      it may read;
    - {e load/store footprints}: interval regions (the {!Alias}
      wrap-guarded domain, expressed in the procedure's own entry
      frame) covering every address it may access, or unbounded when an
      address escapes the domain. Callee regions are rebased through the
      caller's register facts at each call site. Inside a recursive SCC
      a footprint that is still growing after a few rounds is widened to
      unbounded so the fixpoint terminates; the mod/use sets live in a
      finite lattice and always converge exactly;
    - a {e purity class} derived from the footprints.

    Summaries feed {!Alias.analyze}'s [call_mod] hook, the
    {!Speculation} window checks, the {!Costmodel}/[Advisor]
    profitability pipeline and the transforms' [~summaries] mode. *)

open Bv_isa
open Bv_ir

module Regset : Set.S with type elt = Reg.t

type purity =
  | Pure  (** no loads, no stores — a function of its register inputs *)
  | Read_only  (** loads but provably no stores *)
  | Writes_bounded  (** stores confined to the listed footprint regions *)
  | Writes_unknown  (** at least one store with an unresolvable address *)

type footprint = Alias.address list option
(** Normalized interval regions (sorted, coalesced, no [Unknown]
    members); [None] means unbounded. [Some []] means provably no
    access. *)

type t =
  { name : Label.t;
    mod_regs : Regset.t;
    use_regs : Regset.t;
    loads : footprint;
    stores : footprint;
    recursive : bool  (** member of a recursive SCC (self-calls included) *)
  }

type env

val compute : Program.t -> env
(** Summarize every procedure of the program. *)

val graph : env -> Callgraph.t

val find : env -> Label.t -> t option

val procs : env -> t list
(** All summaries, in the program's procedure order. *)

val purity : t -> purity

val store_free : t -> bool
(** [purity] is [Pure] or [Read_only]. *)

val scratch_clean : t -> pool:Reg.t list -> bool
(** The procedure neither reads nor writes any register of [pool] —
    safe to call while the pool holds a speculative window's renamed
    values. *)

val call_mod : env -> Label.t -> Reg.t list option
(** The mod set of the named procedure as {!Alias.analyze}'s [call_mod]
    hook expects it; [None] for procedures outside the environment. *)

val purity_name : purity -> string

val pp : Format.formatter -> t -> unit

val to_json : env -> Bv_obs.Json.t
(** Full per-procedure dump (the [summaries] subcommand's payload). *)

val stats_json : env -> Bv_obs.Json.t
(** Compact aggregate: procedure/SCC counts and the purity histogram —
    the additive [summaries] field the JSON emitters carry. *)
