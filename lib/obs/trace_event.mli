(** Chrome trace-event (JSON Array / Object format) builder, loadable by
    Perfetto ({:https://ui.perfetto.dev}) and chrome://tracing.

    An accumulator of trace events in emission order. Timestamps ([ts])
    and durations ([dur]) are in microseconds per the format; the pipeline
    exporters map 1 simulated cycle to 1 us so cycle numbers read directly
    off the Perfetto ruler. *)

type t

val create : unit -> t

val length : t -> int
(** Events recorded so far (metadata included). *)

val set_process_name : t -> pid:int -> string -> unit
val set_thread_name : t -> pid:int -> tid:int -> string -> unit

val span :
  t ->
  name:string ->
  ?cat:string ->
  pid:int ->
  tid:int ->
  ts:float ->
  dur:float ->
  ?args:(string * Json.t) list ->
  unit ->
  unit
(** A complete ("X") event. Spans on the same [pid]/[tid] nest when one
    interval contains the other. *)

val instant :
  t ->
  name:string ->
  ?cat:string ->
  ?scope:[ `Global | `Process | `Thread ] ->
  pid:int ->
  tid:int ->
  ts:float ->
  ?args:(string * Json.t) list ->
  unit ->
  unit

val counter :
  t -> name:string -> pid:int -> ts:float -> (string * float) list -> unit
(** A "C" event: one stacked counter track per series name. *)

val events : t -> Json.t list
(** The recorded events in emission order, for merging several builders
    into one document. *)

val document : Json.t list -> Json.t
(** Wraps an event list as [{"traceEvents": [...], ...}]. *)

val to_json : t -> Json.t
(** [document (events t)]. *)
