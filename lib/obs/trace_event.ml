type t = { mutable rev_events : Json.t list; mutable count : int }

let create () = { rev_events = []; count = 0 }

let length t = t.count

let push t ev =
  t.rev_events <- ev :: t.rev_events;
  t.count <- t.count + 1

let base ~name ~ph ?cat ~pid ~tid ~ts ?dur ?(extra = []) ?args () =
  let field k v rest = (k, v) :: rest in
  let opt k v rest = match v with Some v -> (k, v) :: rest | None -> rest in
  Json.Obj
    (field "name" (Json.String name)
       (field "ph" (Json.String ph)
          (opt "cat" (Option.map (fun c -> Json.String c) cat)
             (field "pid" (Json.Int pid)
                (field "tid" (Json.Int tid)
                   (field "ts" (Json.float ts)
                      (opt "dur" (Option.map Json.float dur)
                         (extra
                         @ opt "args"
                             (Option.map (fun a -> Json.Obj a) args)
                             []))))))))

let metadata t ~name ~pid ~tid ~value =
  push t
    (base ~name ~ph:"M" ~pid ~tid ~ts:0.0
       ~args:[ ("name", Json.String value) ]
       ())

let set_process_name t ~pid name =
  metadata t ~name:"process_name" ~pid ~tid:0 ~value:name

let set_thread_name t ~pid ~tid name =
  metadata t ~name:"thread_name" ~pid ~tid ~value:name

let span t ~name ?cat ~pid ~tid ~ts ~dur ?args () =
  push t (base ~name ~ph:"X" ?cat ~pid ~tid ~ts ~dur ?args ())

let instant t ~name ?cat ?(scope = `Thread) ~pid ~tid ~ts ?args () =
  let s = match scope with `Global -> "g" | `Process -> "p" | `Thread -> "t" in
  push t
    (base ~name ~ph:"i" ?cat ~pid ~tid ~ts
       ~extra:[ ("s", Json.String s) ]
       ?args ())

let counter t ~name ~pid ~ts series =
  push t
    (base ~name ~ph:"C" ~pid ~tid:0 ~ts
       ~args:(List.map (fun (k, v) -> (k, Json.float v)) series)
       ())

let events t = List.rev t.rev_events

let document evs =
  Json.Obj
    [ ("traceEvents", Json.List evs);
      ("displayTimeUnit", Json.String "ms")
    ]

let to_json t = document (events t)
