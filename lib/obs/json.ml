type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let float f = if Float.is_finite f then Float f else Null

(* Version stamp for every top-level document the tree emits (stats,
   experiment tables, bench artifacts): bump when a document's shape
   changes so downstream consumers can detect new sections. History:
   1 = pre-cycle-accounting; 2 = cpi_stack / top_branches / per-window
   cpi sections. *)
let schema_version = 2

(* ------------------------------------------------------------- emission *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest representation that survives a round trip: try increasing
   precision; force a '.' or exponent so the token re-parses as a float. *)
let float_to_string f =
  let exact p =
    let s = Printf.sprintf "%.*g" p f in
    if Float.of_string s = f then Some s else None
  in
  let s =
    match exact 12 with
    | Some s -> s
    | None -> (match exact 15 with Some s -> s | None -> Printf.sprintf "%.17g" f)
  in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let to_buffer ?(indent = false) buf v =
  let pad depth =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_to_string f)
      else Buffer.add_string buf "null"
    | String s -> escape_to buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          pad (depth + 1);
          go (depth + 1) item)
        items;
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          pad (depth + 1);
          escape_to buf k;
          Buffer.add_string buf (if indent then ": " else ":");
          go (depth + 1) item)
        fields;
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 v

let to_string ?indent v =
  let buf = Buffer.create 256 in
  to_buffer ?indent buf v;
  Buffer.contents buf

let to_channel ?indent oc v =
  let buf = Buffer.create 4096 in
  to_buffer ?indent buf v;
  Buffer.add_char buf '\n';
  Buffer.output_buffer oc buf

(* -------------------------------------------------------------- parsing *)

exception Parse of int * string

let of_string text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Parse (!pos, msg)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n
       && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  (* UTF-8 encode one scalar value (surrogate pairs already combined). *)
  let add_utf8 buf u =
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub text !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            let u = hex4 () in
            let u =
              (* high surrogate: combine with the following \uXXXX *)
              if u >= 0xD800 && u <= 0xDBFF
                 && !pos + 2 <= n
                 && text.[!pos] = '\\'
                 && text.[!pos + 1] = 'u'
              then begin
                pos := !pos + 2;
                let lo = hex4 () in
                0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00)
              end
              else u
            in
            add_utf8 buf u
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c)));
        go ()
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char text.[!pos] do
      advance ()
    done;
    let token = String.sub text start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') token then
      match Float.of_string_opt token with
      | Some f -> Float f
      | None -> fail ("bad number " ^ token)
    else
      match int_of_string_opt token with
      | Some i -> Int i
      | None -> (
        match Float.of_string_opt token with
        | Some f -> Float f
        | None -> fail ("bad number " ^ token))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List l -> l | _ -> []
