(** Dependency-free JSON values, emitter and parser.

    The telemetry layer's interchange format: {!Stats.to_json}-style
    converters across the tree build values of this type and the CLI /
    bench harness serialise them. The emitter always produces valid JSON:
    non-finite floats ([nan], [infinity]) have no JSON encoding and are
    emitted as [null]; strings are escaped per RFC 8259 (control
    characters as [\u00XX]). The parser accepts anything the emitter
    produces (round-trip) plus ordinary interchange JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val float : float -> t
(** [Float f], except non-finite [f] collapses to [Null] eagerly so
    structural equality matches what a round-trip produces. *)

val schema_version : int
(** Version stamp emitted as ["schema_version"] by every top-level
    document in the tree (stats, experiment tables, bench artifacts).
    Bumped when a document's shape changes: 1 = pre-cycle-accounting,
    2 = [cpi_stack] / [top_branches] / per-window [cpi] sections. *)

val to_buffer : ?indent:bool -> Buffer.t -> t -> unit

val to_string : ?indent:bool -> t -> string
(** Compact by default; [~indent:true] pretty-prints with 2-space
    indentation (same value, just whitespace). *)

val to_channel : ?indent:bool -> out_channel -> t -> unit
(** Writes the value followed by a newline. *)

val of_string : string -> (t, string) result
(** Recursive-descent parse of a complete JSON document (trailing
    whitespace allowed). Numbers without [.], [e] or [E] that fit in an
    OCaml [int] parse as [Int]; everything else numeric as [Float].
    Errors report a byte offset. *)

val member : string -> t -> t option
(** [member key (Obj ...)] — [None] on missing key or non-object. *)

val to_list : t -> t list
(** [List l -> l], anything else -> []. *)
