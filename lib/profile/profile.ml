open Bv_bpred
open Bv_exec

type site =
  { id : int;
    mutable executed : int;
    mutable taken : int;
    mutable correct : int
  }

type t =
  { sites : (int, site) Hashtbl.t;
    predictor_name : string;
    mutable instr_count : int;
    mutable branch_count : int;
    mutable mispredicts : int
  }

let collect ?(max_instrs = 10_000_000) ~predictor image =
  let t =
    { sites = Hashtbl.create 128;
      predictor_name = predictor.Predictor.name;
      instr_count = 0;
      branch_count = 0;
      mispredicts = 0
    }
  in
  let site id =
    match Hashtbl.find_opt t.sites id with
    | Some s -> s
    | None ->
      let s = { id; executed = 0; taken = 0; correct = 0 } in
      Hashtbl.replace t.sites id s;
      s
  in
  let on_branch ~id ~pc ~taken =
    let s = site id in
    s.executed <- s.executed + 1;
    if taken then s.taken <- s.taken + 1;
    t.branch_count <- t.branch_count + 1;
    let pred, meta = predictor.Predictor.predict ~pc ~outcome:taken in
    if pred = taken then s.correct <- s.correct + 1
    else begin
      t.mispredicts <- t.mispredicts + 1;
      predictor.Predictor.recover meta ~taken
    end;
    predictor.Predictor.update meta ~pc ~taken
  in
  let hooks = { Interp.no_hooks with on_branch } in
  let state = Interp.run ~hooks ~max_instrs image in
  t.instr_count <- state.Interp.instr_count;
  t

let find t id = Hashtbl.find_opt t.sites id

let taken_rate s =
  if s.executed = 0 then 0.0
  else Float.of_int s.taken /. Float.of_int s.executed

let bias s =
  if s.executed = 0 then 1.0
  else begin
    let r = taken_rate s in
    Float.max r (1.0 -. r)
  end

let predictability s =
  if s.executed = 0 then 1.0
  else Float.of_int s.correct /. Float.of_int s.executed

let mispredicts s = s.executed - s.correct

let mppki t =
  if t.instr_count = 0 then 0.0
  else 1000.0 *. Float.of_int t.mispredicts /. Float.of_int t.instr_count

let sites_by_execution t =
  let all = Hashtbl.fold (fun _ s acc -> s :: acc) t.sites [] in
  List.sort (fun a b -> Int.compare b.executed a.executed) all

let pp ppf t =
  Format.fprintf ppf
    "@[<v>profile (%s): %d instrs, %d branches, %.2f MPPKI"
    t.predictor_name t.instr_count t.branch_count (mppki t);
  List.iter
    (fun s ->
      Format.fprintf ppf
        "@,  site %4d: exec %8d  bias %.3f  predictability %.3f" s.id
        s.executed (bias s) (predictability s))
    (sites_by_execution t);
  Format.fprintf ppf "@]"
