(** Profile-guided branch statistics (the paper's TRAIN-input PGO step).

    Runs a program functionally while feeding every conditional branch
    through a branch predictor in program order. Per static branch site this
    yields execution count, bias (how lopsided the outcomes are) and
    predictability (how often the predictor is right) — the two quantities
    whose divergence the paper's Figures 2 and 3 plot and whose difference
    drives candidate selection. *)

open Bv_bpred
open Bv_ir

type site =
  { id : int;
    mutable executed : int;
    mutable taken : int;
    mutable correct : int
  }

type t =
  { sites : (int, site) Hashtbl.t;
    predictor_name : string;
    mutable instr_count : int;
    mutable branch_count : int;
    mutable mispredicts : int
  }

val collect :
  ?max_instrs:int -> predictor:Predictor.t -> Layout.image -> t
(** Profile a (baseline) program: every [Branch] is predicted, compared and
    immediately trained. [max_instrs] defaults to 10M. *)

val find : t -> int -> site option
(** Stats for a branch site id. *)

val bias : site -> float
(** Fraction of executions going in the branch's preferred direction, in
    [0.5, 1.0]. Zero executions give 1.0. *)

val taken_rate : site -> float

val predictability : site -> float
(** Fraction of correct predictions. Zero executions give 1.0. *)

val mispredicts : site -> int
(** Mispredicted executions of the site ([executed - correct]) — the
    count whose recovery cost {!Bv_pipeline.Acct} attributes per site and
    the advisor's validation joins against. *)

val mppki : t -> float
(** Branch mispredictions per thousand executed instructions. *)

val sites_by_execution : t -> site list
(** All sites, most-executed first. *)

val pp : Format.formatter -> t -> unit
