(** The Decomposed Branch Transformation (paper §3, Figure 5).

    For each selected branch site — block [A] ending in [cmp]+[br] with
    successors [B] (not-taken) and [C] (taken) — the pass:

    + replaces the branch with a [predict] terminator targeting two new
      resolution blocks [A'nt] (predicted not-taken) and [A't] (predicted
      taken);
    + sinks the branch's condition slice out of [A] into both resolution
      blocks (the predict depends on nothing, so [A]'s remaining work stays
      put and the slice now overlaps with hoisted work);
    + hoists the leading store-free prefix of each successor into the
      corresponding resolution block, with loads marked speculative
      (non-faulting) and destinations renamed to scratch temporaries so a
      wrong prediction cannot clobber the alternate path's live-ins;
    + places commit moves (temporary → architectural register) in a small
      block in the shadow of the resolve's fall-through — the paper's
      "hide the moves in the shadow of the resolution";
    + emits correction blocks [Correct-B]/[Correct-C] that re-execute the
      correct successor's hoisted prefix non-speculatively and jump back
      into the main flow — reached only when the resolve detects a
      misprediction;
    + lays the new blocks out hot-path-fallthrough (A, A'nt, commit, B'),
      with correction blocks cold at the end of the procedure.

    The transformed program is architecturally equivalent without any
    hardware rollback: the condition slice is path-independent (it reads
    only pre-predict state and contains no stores), and hoisted code writes
    temporaries that are committed only on the correctly predicted path.
    Property tests check equivalence under adversarial predict policies. *)

open Bv_isa
open Bv_ir

type site_report =
  { site : int;
    proc : Label.t;
    slice_size : int;
    slice_instrs : Instr.t list;
        (** the sunk condition slice (for resolution-latency estimates) *)
    hoisted_not_taken : int;  (** instructions hoisted from B into A'nt *)
    hoisted_taken : int;
    not_taken_block_size : int;  (** |B| before hoisting *)
    taken_block_size : int
  }

type result =
  { program : Program.t;  (** a transformed deep copy; input is untouched *)
    reports : site_report list;
    skipped : (int * string) list;  (** site id, reason *)
    static_instrs_before : int;
    static_instrs_after : int
  }

val default_temp_pool : Reg.t list
(** r48–r63: the DBT-context scratch registers (paper §2.2's "additional
    registers to hold speculative values"). Programs eligible for the
    transformation must not use them. *)

val split_condition_slice :
  ?may_alias:(Instr.t -> Instr.t -> bool) ->
  src:Bv_isa.Reg.t ->
  Instr.t list ->
  (Instr.t list * Instr.t list, string) Stdlib.result
(** [(slice, remainder)] of a block body: the backward dependence closure
    of [src] and what stays above the predict point. [Error reason] when
    sinking the slice would be unsafe (a remainder instruction reads or
    redefines slice registers, or a store follows a slice load).
    [may_alias] (summary mode only) relaxes the store rule to stores that
    may alias a preceding slice load. Exposed for the assert-conversion
    pass, which sinks slices the same way. *)

val split_hoistable_prefix :
  max_hoist:int ->
  temp_pool:Reg.t list ->
  must_rename:(Reg.t -> bool) ->
  Instr.t list ->
  Instr.t list * Instr.t list * Instr.t list * Instr.t list
(** [(original prefix, speculative renamed prefix, commit moves, rest)] of
    a successor body (loads in the speculative copy are non-faulting). *)

val phi : site_report -> float
(** Percent of the successor blocks' instructions that were hoistable for
    this site (Table 2's PHI). *)

val alias_oracle :
  ?summaries:Bv_analysis.Summary.env -> Proc.t -> Instr.t -> Instr.t -> bool
(** The may-alias oracle the post-transform scheduling pass hands to
    {!Bv_sched.Sched.schedule_program}: {!Bv_analysis.Alias} on the
    procedure being scheduled. [summaries] feeds the alias analysis'
    [call_mod] hook so register facts survive calls that provably leave
    the base registers alone. *)

val apply :
  ?max_hoist:int ->
  ?temp_pool:Reg.t list ->
  ?schedule:bool ->
  ?verify:bool ->
  ?prove:bool ->
  ?exit_live:Reg.t list ->
  ?select:(Select.candidate -> bool) ->
  ?summaries:Bv_analysis.Summary.env ->
  candidates:Select.candidate list ->
  Program.t ->
  result
(** [max_hoist] caps the hoisted prefix per successor (default 16).
    [select] (default: keep everything) filters the candidate list —
    typically {!Bv_analysis.Advisor}'s recommendation set; a candidate it
    drops lands in [skipped] with reason ["deselected"] and the program
    is not touched at that site.
    [schedule] (default true) re-runs the list scheduler — alias-aware,
    via {!alias_oracle} — on the program afterwards. [verify] (default
    true) runs the speculation-safety verifier
    ({!Bv_analysis.Speculation}) as a debug post-pass and raises
    [Invalid_argument] on any error-severity diagnostic. [prove]
    (default false: it symbolically executes every cutpoint region) runs
    the translation validator ({!Bv_analysis.Equiv}) against the input
    program and raises [Invalid_argument] on any counterexample.
    [exit_live] is the calling convention: registers assumed
    live at procedure exits for the renaming analysis (default: every
    register — safe, but renames more than a compiler with knowledge of
    the convention would). [summaries] (default absent — the historical
    intra-procedural behaviour, byte-for-byte) applies the same two
    relaxations as {!Bv_analysis.Costmodel.analyze}'s summary mode —
    call-aware alias facts and the alias-checked slice store rule — and
    threads summaries into scheduling and the {!Bv_analysis.Speculation}
    post-pass, recomputing them on the transformed program first (a
    transformed callee writes the scratch pool, which the input program's
    summaries cannot know). Sites violating a safety precondition at
    rewrite time are skipped and reported. *)
