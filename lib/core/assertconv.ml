open Bv_isa
open Bv_ir

type site_report =
  { site : int;
    proc : Label.t;
    likely_taken : bool;
    hoisted : int
  }

type result =
  { program : Program.t;
    reports : site_report list;
    skipped : (int * string) list
  }

exception Skip of string

let transform_site ~max_hoist ~temp_pool ~exit_live ?summaries program
    (candidate, likely_taken) =
  let proc = Program.find_proc program candidate.Select.proc in
  let a = Proc.find_block proc candidate.Select.block in
  match a.Block.term with
  | Term.Branch { on; src; taken = c_label; not_taken = b_label; id } ->
    let likely_label = if likely_taken then c_label else b_label in
    let rare_label = if likely_taken then b_label else c_label in
    let likely = Proc.find_block proc likely_label in
    let may_alias =
      Option.map
        (fun env ->
          Bv_analysis.Alias.may_alias
            (Bv_analysis.Alias.analyze
               ~call_mod:(Bv_analysis.Summary.call_mod env)
               proc))
        summaries
    in
    let slice, rest_a =
      match Transform.split_condition_slice ?may_alias ~src a.Block.body with
      | Ok parts -> parts
      | Error reason -> raise (Skip reason)
    in
    let live = Liveness.compute ?exit_live proc in
    let must_rename r =
      Liveness.Regset.mem r (Liveness.live_in live rare_label)
      || Reg.equal r src
    in
    let l_orig, l_spec, l_commits, l_rest =
      Transform.split_hoistable_prefix ~max_hoist ~temp_pool ~must_rename
        likely.Block.body
    in
    ignore l_orig;
    let l name = Printf.sprintf "%s@%s.%d" a.Block.label name id in
    let res_label = l "assert" and commit_label = l "acommit" in
    let res_block =
      Block.make ~label:res_label
        ~body:(slice @ l_spec)
        ~term:
          (Term.Resolve
             { on;
               src;
               mispredict = rare_label;
               fallthrough = commit_label;
               predicted_taken = likely_taken;
               id
             })
    in
    let commit_block =
      Block.make ~label:commit_label ~body:l_commits
        ~term:(Term.Jump likely_label)
    in
    (* straighten the layout: A, assert, commit, then the likely successor *)
    a.Block.body <- rest_a;
    a.Block.term <- Term.Jump res_label;
    likely.Block.body <- l_rest;
    proc.Proc.blocks <-
      List.filter
        (fun blk -> not (Label.equal blk.Block.label likely_label))
        proc.Proc.blocks;
    Proc.insert_after proc a.Block.label [ res_block; commit_block; likely ];
    { site = id;
      proc = proc.Proc.name;
      likely_taken;
      hoisted = List.length l_spec
    }
  | _ -> raise (Skip "terminator is not a conditional branch")

let apply ?(max_hoist = 16) ?(temp_pool = Transform.default_temp_pool)
    ?(schedule = true) ?(verify = true) ?(prove = false) ?exit_live ?summaries
    ~candidates program =
  let original = program in
  let program = Program.copy program in
  let exit_live_set = Option.map Liveness.Regset.of_list exit_live in
  let reports = ref [] in
  let skipped = ref [] in
  List.iter
    (fun cand ->
      match
        transform_site ~max_hoist ~temp_pool ~exit_live:exit_live_set
          ?summaries program cand
      with
      | report -> reports := report :: !reports
      | exception Skip reason ->
        skipped := ((fst cand).Select.site, reason) :: !skipped)
    candidates;
  (* as in Transform.apply: scheduling and verification see summaries of
     the transformed program — converted callees write the scratch pool *)
  let post_summaries =
    Option.map (fun _ -> Bv_analysis.Summary.compute program) summaries
  in
  if schedule then
    Bv_sched.Sched.schedule_program
      ~alias:(Transform.alias_oracle ?summaries:post_summaries)
      program;
  Validate.check_exn program;
  if verify then
    Bv_analysis.Speculation.check_exn ~scratch:temp_pool
      ?summaries:post_summaries program;
  if prove then
    Bv_analysis.Equiv.check_exn ~scratch:temp_pool ?exit_live ~original
      program;
  { program; reports = List.rev !reports; skipped = List.rev !skipped }
