(** Assert conversion / superblock-style straightening for {e highly
    biased} branches — the third quadrant of the paper's Figure 1 (the
    paper cites Neelakantam et al.'s hardware atomicity as the
    assert-conversion mechanism and superblocks as the classic compiler
    answer).

    For a hammock whose branch almost always goes one way, the pass lays
    the likely successor directly behind the branch's block and fuses the
    two into one scheduling region, expressed with the same machinery as
    the decomposed-branch transformation but with a {e static} prediction:

    - block [A] ends in an unconditional fall-through to a single
      resolution block containing the condition slice, the hoisted likely
      successor, and a [resolve] asserting the likely direction;
    - a misprediction (the rare direction) jumps to correction code that
      runs the rare successor.

    Unlike the dynamic decomposition there is no [predict] and no DBB
    traffic — the "prediction" is the layout itself. The cost is the rare
    direction's full misprediction penalty on every occurrence, which is
    why this is only profitable at very high bias. *)

open Bv_isa
open Bv_ir

type site_report =
  { site : int;
    proc : Label.t;
    likely_taken : bool;  (** which way the assert points *)
    hoisted : int
  }

type result =
  { program : Program.t;
    reports : site_report list;
    skipped : (int * string) list
  }

val apply :
  ?max_hoist:int ->
  ?temp_pool:Reg.t list ->
  ?schedule:bool ->
  ?verify:bool ->
  ?prove:bool ->
  ?exit_live:Reg.t list ->
  ?summaries:Bv_analysis.Summary.env ->
  candidates:(Select.candidate * bool) list ->
  Program.t ->
  result
(** Each candidate carries [likely_taken], usually
    [taken_rate >= 0.5] from the profile. Preconditions match
    {!Transform.apply} (hammock shape, sinkable slice), as do [verify],
    [prove] (translation validation against the input program),
    [summaries] (interprocedural mode — the same relaxations and
    post-transform summary recomputation) and the other options. *)
