open Bv_isa
open Bv_ir

type site_report =
  { site : int;
    proc : Label.t;
    slice_size : int;
    slice_instrs : Instr.t list;
    hoisted_not_taken : int;
    hoisted_taken : int;
    not_taken_block_size : int;
    taken_block_size : int
  }

type result =
  { program : Program.t;
    reports : site_report list;
    skipped : (int * string) list;
    static_instrs_before : int;
    static_instrs_after : int
  }

let default_temp_pool = List.init 16 (fun i -> Reg.make (48 + i))

let phi r =
  let total = r.not_taken_block_size + r.taken_block_size in
  if total = 0 then 0.0
  else
    100.0
    *. Float.of_int (r.hoisted_not_taken + r.hoisted_taken)
    /. Float.of_int total

exception Skip of string

module Regset = Set.Make (Reg)

(* Backward closure of [src] through the block body: the instructions that
   the condition value depends on within this block. Returns the slice (in
   original order) and the remainder. *)
let condition_slice body ~src =
  let rev = List.rev body in
  let _, slice_rev, rest_rev =
    List.fold_left
      (fun (need, slice, rest) instr ->
        let defs = Regset.of_list (Instr.defs instr) in
        if not (Regset.is_empty (Regset.inter defs need)) then
          let need = Regset.union (Regset.diff need defs)
                       (Regset.of_list (Instr.uses instr)) in
          (need, instr :: slice, rest)
        else (need, slice, instr :: rest))
      (Regset.singleton src, [], [])
      rev
  in
  (slice_rev, rest_rev)

(* Safety checks for sinking the slice below the predict point. All are
   conservative (position-insensitive): a violating site is skipped rather
   than analysed more precisely. [may_alias] — supplied only in summary
   mode, from the same interprocedural alias oracle the scheduler uses —
   relaxes the store-after-slice-load rule to stores that may actually
   overlap a preceding slice load; sinking the slice reorders each slice
   load past the stores behind it, which is observable only for
   overlapping accesses. {!Bv_analysis.Costmodel.check_slice} mirrors
   these rules (and reason strings) verbatim. *)
let check_slice_safety ?may_alias ~slice ~rest body =
  let regs_of f =
    List.fold_left
      (fun s i -> Regset.union s (Regset.of_list (f i)))
      Regset.empty
  in
  let slice_defs = regs_of Instr.defs slice in
  let slice_uses = regs_of Instr.uses slice in
  List.iter
    (fun i ->
      (* RAW: the remainder must not consume slice results (they move below
         the predict). *)
      if List.exists (fun r -> Regset.mem r slice_defs) (Instr.uses i) then
        raise
          (Skip
             (Printf.sprintf "non-slice instruction uses slice result: %s"
                (Instr.to_string i)));
      (* WAR/WAW: the remainder must not redefine anything the slice reads
         or writes (the slice now executes after the whole remainder). *)
      if
        List.exists
          (fun r -> Regset.mem r slice_uses || Regset.mem r slice_defs)
          (Instr.defs i)
      then
        raise
          (Skip
             (Printf.sprintf "non-slice instruction redefines slice register: %s"
                (Instr.to_string i))))
    rest;
  (* No store may appear after a slice load in the original order: the load
     is about to move below every remaining instruction of the block. *)
  let slice_loads = ref [] in
  List.iter
    (fun i ->
      match i with
      | Instr.Load _ when List.memq i slice -> slice_loads := i :: !slice_loads
      | Instr.Store _ when !slice_loads <> [] ->
        let conflicts =
          match may_alias with
          | None -> true
          | Some f -> List.exists (fun l -> f i l) !slice_loads
        in
        if conflicts then raise (Skip "store after a slice load")
      | _ -> ())
    body

(* Split the leading store-free prefix of a successor body, bounded by
   [max_hoist] and by the number of scratch temporaries. Only destinations
   for which [must_rename] holds (live-in on the alternate path, or feeding
   the resolve) are renamed to temporaries — dead registers are clobbered
   for free, which is what keeps the commit-move overhead small (paper §3).
   Returns (original prefix, renamed speculative prefix, commit moves,
   rest). *)
let hoistable_prefix ~max_hoist ~temp_pool ~must_rename body =
  let rename = Hashtbl.create 8 in
  (* orig reg index -> temp *)
  let order = ref [] in
  let temps = ref temp_pool in
  let subst_operand = function
    | Instr.Reg r as o ->
      (match Hashtbl.find_opt rename (Reg.index r) with
      | Some t -> Instr.Reg t
      | None -> o)
    | Instr.Imm _ as o -> o
  in
  let subst_reg r =
    match Hashtbl.find_opt rename (Reg.index r) with Some t -> t | None -> r
  in
  let fresh_for r =
    match Hashtbl.find_opt rename (Reg.index r) with
    | Some t -> Some t
    | None ->
      if not (must_rename r) then Some r
      else (
        match !temps with
        | [] -> None
        | t :: rest ->
          temps := rest;
          Hashtbl.replace rename (Reg.index r) t;
          order := (r, t) :: !order;
          Some t)
  in
  let rec go taken orig spec = function
    | instr :: rest when taken < max_hoist -> (
      let continue dst mk =
        match fresh_for dst with
        | None -> (List.rev orig, List.rev spec, instr :: rest)
        | Some t -> go (taken + 1) (instr :: orig) (mk t :: spec) rest
      in
      match instr with
      | Instr.Store _ -> (List.rev orig, List.rev spec, instr :: rest)
      | Instr.Alu a ->
        let src1 = subst_reg a.src1 and src2 = subst_operand a.src2 in
        continue a.dst (fun t -> Instr.Alu { a with dst = t; src1; src2 })
      | Instr.Fpu a ->
        let src1 = subst_reg a.src1 and src2 = subst_operand a.src2 in
        continue a.dst (fun t -> Instr.Fpu { a with dst = t; src1; src2 })
      | Instr.Cmp c ->
        let src1 = subst_reg c.src1 and src2 = subst_operand c.src2 in
        continue c.dst (fun t -> Instr.Cmp { c with dst = t; src1; src2 })
      | Instr.Mov m ->
        let src = subst_operand m.src in
        continue m.dst (fun t -> Instr.Mov { dst = t; src })
      | Instr.Cmov c ->
        let cond = subst_reg c.cond and src = subst_operand c.src in
        (* dst is also a source of a conditional move *)
        let prior = subst_reg c.dst in
        if Reg.equal prior c.dst then (
          match fresh_for c.dst with
          | None -> (List.rev orig, List.rev spec, instr :: rest)
          | Some t when Reg.equal t c.dst ->
            (* not renamed: a dead dst can take the partial write in place *)
            go (taken + 1) (instr :: orig)
              (Instr.Cmov { c with cond; src } :: spec)
              rest
          | Some t ->
            (* A fresh temp must first be seeded with the running value:
               a not-taken cmov keeps its dst, and the commit move would
               otherwise publish the uninitialised temp. *)
            go (taken + 1) (instr :: orig)
              (Instr.Cmov { c with cond; dst = t; src }
               :: Instr.Mov { dst = t; src = Instr.Reg c.dst }
               :: spec)
              rest)
        else
          (* the running value already lives in a temp: keep writing it *)
          go (taken + 1) (instr :: orig)
            (Instr.Cmov { c with cond; dst = prior; src } :: spec)
            rest
      | Instr.Load l ->
        let base = subst_reg l.base in
        continue l.dst (fun t ->
            Instr.Load { l with dst = t; base; speculative = true })
      | Instr.Nop -> go taken (instr :: orig) (instr :: spec) rest
      | Instr.Branch _ | Instr.Jump _ | Instr.Call _ | Instr.Ret
      | Instr.Predict _ | Instr.Resolve _ | Instr.Halt ->
        (* bodies contain no terminators; defensive *)
        (List.rev orig, List.rev spec, instr :: rest))
    | rest -> (List.rev orig, List.rev spec, rest)
  in
  let orig, spec, rest = go 0 [] [] body in
  let commits =
    List.rev_map (fun (r, t) -> Instr.Mov { dst = r; src = Instr.Reg t }) !order
  in
  (orig, spec, commits, rest)

let temp_pool_clash program pool =
  let pool_set = Regset.of_list pool in
  List.exists
    (fun p ->
      List.exists
        (fun b ->
          List.exists
            (fun i ->
              List.exists
                (fun r -> Regset.mem r pool_set)
                (Instr.defs i @ Instr.uses i))
            b.Block.body
          ||
          match b.Block.term with
          | Term.Branch { src; _ } | Term.Resolve { src; _ } ->
            Regset.mem src pool_set
          | _ -> false)
        p.Proc.blocks)
    program.Program.procs

let split_condition_slice ?may_alias ~src body =
  let slice, rest = condition_slice body ~src in
  match check_slice_safety ?may_alias ~slice ~rest body with
  | () -> Ok (slice, rest)
  | exception Skip reason -> Error reason

let split_hoistable_prefix ~max_hoist ~temp_pool ~must_rename body =
  hoistable_prefix ~max_hoist ~temp_pool ~must_rename body

let transform_site ~max_hoist ~temp_pool ~exit_live ?summaries program
    candidate =
  let proc = Program.find_proc program candidate.Select.proc in
  let a = Proc.find_block proc candidate.Select.block in
  match a.Block.term with
  | Term.Branch { on; src; taken = c_label; not_taken = b_label; id } ->
    let b = Proc.find_block proc b_label in
    let c = Proc.find_block proc c_label in
    let slice, rest_a = condition_slice a.Block.body ~src in
    let may_alias =
      (* on the current (possibly already part-transformed) procedure,
         with call havoc narrowed by the interprocedural summaries *)
      Option.map
        (fun env ->
          Bv_analysis.Alias.may_alias
            (Bv_analysis.Alias.analyze
               ~call_mod:(Bv_analysis.Summary.call_mod env)
               proc))
        summaries
    in
    check_slice_safety ?may_alias ~slice ~rest:rest_a a.Block.body;
    let b_size = List.length b.Block.body in
    let c_size = List.length c.Block.body in
    let live = Liveness.compute ?exit_live proc in
    let must_rename ~alternate r =
      Liveness.Regset.mem r (Liveness.live_in live alternate)
      || Reg.equal r src
    in
    let b_orig, b_spec, b_commits, b_rest =
      hoistable_prefix ~max_hoist ~temp_pool
        ~must_rename:(must_rename ~alternate:c_label)
        b.Block.body
    in
    let c_orig, c_spec, c_commits, c_rest =
      hoistable_prefix ~max_hoist ~temp_pool
        ~must_rename:(must_rename ~alternate:b_label)
        c.Block.body
    in
    let l suffix = Printf.sprintf "%s@%s.%d" a.Block.label suffix id in
    let rnt = l "rnt" and rt = l "rt" in
    let bcommit = l "commitB" and ccommit = l "commitC" in
    let fixb = l "fixB" and fixc = l "fixC" in
    (* Predicted-not-taken resolution block: slice + B's speculative
       prefix; mispredict goes to Correct-C. *)
    let a_rnt =
      Block.make ~label:rnt
        ~body:(slice @ b_spec)
        ~term:
          (Term.Resolve
             { on;
               src;
               mispredict = fixc;
               fallthrough = bcommit;
               predicted_taken = false;
               id
             })
    in
    let a_rt =
      Block.make ~label:rt
        ~body:(slice @ c_spec)
        ~term:
          (Term.Resolve
             { on;
               src;
               mispredict = fixb;
               fallthrough = ccommit;
               predicted_taken = true;
               id
             })
    in
    let b_commit =
      Block.make ~label:bcommit ~body:b_commits ~term:(Term.Jump b_label)
    in
    let c_commit =
      Block.make ~label:ccommit ~body:c_commits ~term:(Term.Jump c_label)
    in
    let fix_b =
      Block.make ~label:fixb ~body:b_orig ~term:(Term.Jump b_label)
    in
    let fix_c =
      Block.make ~label:fixc ~body:c_orig ~term:(Term.Jump c_label)
    in
    (* Rewrite in place. *)
    a.Block.body <- rest_a;
    a.Block.term <- Term.Predict { taken = rt; not_taken = rnt; id };
    b.Block.body <- b_rest;
    c.Block.body <- c_rest;
    Proc.insert_after proc a.Block.label [ a_rnt; b_commit ];
    Proc.insert_before proc c_label [ a_rt; c_commit ];
    Proc.append_blocks proc [ fix_b; fix_c ];
    { site = id;
      proc = proc.Proc.name;
      slice_size = List.length slice;
      slice_instrs = slice;
      hoisted_not_taken = List.length b_spec;
      hoisted_taken = List.length c_spec;
      not_taken_block_size = b_size;
      taken_block_size = c_size
    }
  | _ -> raise (Skip "terminator is not a conditional branch")

(* Per-procedure alias oracle for the post-transform scheduling pass:
   provably-disjoint load/store pairs are left unordered. With summaries,
   register intervals survive calls (mod-set havoc only), so accesses in
   call-shadowed blocks disambiguate too. *)
let alias_oracle ?summaries proc =
  let call_mod = Option.map Bv_analysis.Summary.call_mod summaries in
  Bv_analysis.Alias.may_alias (Bv_analysis.Alias.analyze ?call_mod proc)

let apply ?(max_hoist = 16) ?(temp_pool = default_temp_pool) ?(schedule = true)
    ?(verify = true) ?(prove = false) ?exit_live ?select ?summaries ~candidates
    program =
  let original = program in
  let exit_live_set = Option.map Liveness.Regset.of_list exit_live in
  if temp_pool_clash program temp_pool then
    invalid_arg "Transform.apply: program already uses the temporary pool";
  let program = Program.copy program in
  let before = Program.instr_count program in
  let reports = ref [] in
  let skipped = ref [] in
  List.iter
    (fun cand ->
      match select with
      | Some keep when not (keep cand) ->
        skipped := (cand.Select.site, "deselected") :: !skipped
      | _ -> (
        match
          transform_site ~max_hoist ~temp_pool ~exit_live:exit_live_set
            ?summaries program cand
        with
        | report -> reports := report :: !reports
        | exception Skip reason ->
          skipped := (cand.Select.site, reason) :: !skipped))
    candidates;
  (* Scheduling and verification see summaries of the program as it now
     stands — a transformed callee writes the scratch pool, which the
     input program's summaries cannot know. *)
  let post_summaries =
    Option.map (fun _ -> Bv_analysis.Summary.compute program) summaries
  in
  if schedule then
    Bv_sched.Sched.schedule_program
      ~alias:(alias_oracle ?summaries:post_summaries)
      program;
  Validate.check_exn program;
  if verify then
    Bv_analysis.Speculation.check_exn ~scratch:temp_pool
      ?summaries:post_summaries program;
  if prove then
    Bv_analysis.Equiv.check_exn ~scratch:temp_pool ?exit_live ~original
      program;
  { program;
    reports = List.rev !reports;
    skipped = List.rev !skipped;
    static_instrs_before = before;
    static_instrs_after = Program.instr_count program
  }
