open Bv_isa

let check program =
  let errors = ref [] in
  let error fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let block_owner = Hashtbl.create 256 in
  let proc_names = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let name = p.Proc.name in
      if Hashtbl.mem proc_names name then error "duplicate procedure %s" name;
      Hashtbl.replace proc_names name ();
      List.iter
        (fun b ->
          let l = b.Block.label in
          if Hashtbl.mem block_owner l then error "duplicate block label %s" l
          else Hashtbl.replace block_owner l name)
        p.Proc.blocks)
    program.Program.procs;
  Hashtbl.iter
    (fun l _ ->
      if Hashtbl.mem proc_names l then
        error "label %s is both a block and a procedure" l)
    block_owner;
  let branch_ids = Hashtbl.create 256 in
  let predict_ids = Hashtbl.create 64 in
  let resolve_ids = Hashtbl.create 64 in
  let call_targets = Hashtbl.create 16 in
  let rets = ref [] in
  List.iter
    (fun p ->
      (match p.Proc.blocks with
      | first :: _ when Label.equal first.Block.label p.Proc.entry -> ()
      | _ -> error "proc %s: entry %s is not first" p.Proc.name p.Proc.entry);
      let check_local b target =
        match Hashtbl.find_opt block_owner target with
        | Some owner when Label.equal owner p.Proc.name -> ()
        | Some owner ->
          error "block %s targets %s, which belongs to proc %s" b.Block.label
            target owner
        | None -> error "block %s targets unknown label %s" b.Block.label target
      in
      let rec check_blocks = function
        | [] -> ()
        | b :: rest ->
          (match b.Block.term with
          | Term.Jump l -> check_local b l
          | Term.Branch { taken; not_taken; id; _ } ->
            check_local b taken;
            check_local b not_taken;
            if Hashtbl.mem branch_ids id then
              error "duplicate branch site id %d (block %s)" id b.Block.label;
            Hashtbl.replace branch_ids id ()
          | Term.Predict { taken; not_taken; id } ->
            check_local b taken;
            check_local b not_taken;
            if Hashtbl.mem predict_ids id then
              error "duplicate predict site id %d (block %s)" id b.Block.label;
            Hashtbl.replace predict_ids id ()
          | Term.Resolve { mispredict; fallthrough; predicted_taken; id; _ }
            ->
            check_local b mispredict;
            check_local b fallthrough;
            (* One resolve per predicted direction: the transformation emits
               a predicted-taken and a predicted-not-taken arm per site, so
               only a repeated (id, predicted_taken) pair is a duplicate. *)
            let arms =
              Option.value (Hashtbl.find_opt resolve_ids id) ~default:[]
            in
            if List.mem predicted_taken arms then
              error
                "duplicate resolve site id %d for the predicted-%s arm \
                 (block %s)"
                id
                (if predicted_taken then "taken" else "not-taken")
                b.Block.label;
            Hashtbl.replace resolve_ids id (predicted_taken :: arms)
          | Term.Call { target; return_to } ->
            if not (Hashtbl.mem proc_names target) then
              error "block %s calls unknown procedure %s" b.Block.label target;
            Hashtbl.replace call_targets target ();
            check_local b return_to;
            (match rest with
            | next :: _ when Label.equal next.Block.label return_to -> ()
            | _ ->
              error "block %s: call return_to %s is not the next block"
                b.Block.label return_to)
          | Term.Ret -> rets := (p.Proc.name, b.Block.label) :: !rets
          | Term.Halt -> ());
          check_blocks rest
      in
      check_blocks p.Proc.blocks)
    program.Program.procs;
  (* A ret pops the call stack, so a ret in a procedure no call ever
     targets could only execute with the stack empty — a guaranteed
     interpreter fault. Catch it statically. *)
  List.iter
    (fun (proc, block) ->
      if not (Hashtbl.mem call_targets proc) then
        error "block %s returns from proc %s, which is never called" block
          proc)
    (List.rev !rets);
  Hashtbl.iter
    (fun id _ ->
      if not (Hashtbl.mem resolve_ids id) then
        error "predict site %d has no resolve" id;
      if Hashtbl.mem branch_ids id then
        error "site id %d used by both a branch and a predict" id)
    predict_ids;
  Hashtbl.iter
    (fun id arms ->
      if Hashtbl.mem branch_ids id then
        error "site id %d used by both a branch and a resolve" id;
      (* A lone predictless resolve is the assert-style form produced by
         assert-conversion; two arms only make sense below a predict. *)
      if (not (Hashtbl.mem predict_ids id)) && List.length arms > 1 then
        error "resolve site id %d has %d arms but no matching predict" id
          (List.length arms))
    resolve_ids;
  match !errors with
  | [] -> Ok ()
  | es -> Error (List.rev es)

let check_exn program =
  match check program with
  | Ok () -> ()
  | Error es -> invalid_arg ("Validate: " ^ String.concat "; " es)
