open Bv_isa

module Lset = Set.Make (Label)

let reachable proc = Cfg.reverse_postorder proc

let block proc l = Proc.find_block proc l

let joins proc =
  let preds = Cfg.predecessor_map proc in
  List.filter
    (fun l ->
      match Hashtbl.find_opt preds l with
      | Some ps -> List.length (List.sort_uniq Label.compare ps) >= 2
      | None -> false)
    (reachable proc)

let back_edge_targets proc =
  let dom = Dominators.compute proc in
  let targets = ref Lset.empty in
  List.iter
    (fun u ->
      List.iter
        (fun v -> if Dominators.dominates dom v u then targets := Lset.add v !targets)
        (Cfg.successors proc (block proc u)))
    (reachable proc);
  Lset.elements !targets

(* Retreating edges under a DFS from the entry: catches irreducible cycles
   that dominator-based back edges miss. For reducible CFGs this coincides
   with [back_edge_targets]. *)
let retreating_edge_targets proc =
  let on_stack = Hashtbl.create 16 in
  let finished = Hashtbl.create 16 in
  let targets = ref Lset.empty in
  let rec dfs l =
    if not (Hashtbl.mem finished l || Hashtbl.mem on_stack l) then begin
      Hashtbl.replace on_stack l ();
      List.iter
        (fun s ->
          if Hashtbl.mem on_stack s then targets := Lset.add s !targets
          else dfs s)
        (Cfg.successors proc (block proc l));
      Hashtbl.remove on_stack l;
      Hashtbl.replace finished l ()
    end
  in
  dfs proc.Proc.entry;
  Lset.elements !targets

let call_returns proc =
  List.filter_map
    (fun l ->
      match (block proc l).Block.term with
      | Term.Call { return_to; _ } -> Some return_to
      | _ -> None)
    (reachable proc)

let compute ?(include_joins = true) proc =
  let cuts =
    Lset.of_list
      ((proc.Proc.entry :: back_edge_targets proc)
      @ retreating_edge_targets proc @ call_returns proc
      @ if include_joins then joins proc else [])
  in
  List.filter (fun l -> Lset.mem l cuts) (reachable proc)

let regions_acyclic proc ~cuts =
  let cuts = Lset.of_list cuts in
  (* DFS over the subgraph of non-cut reachable blocks; a retreating edge
     inside it is a cycle avoiding every cutpoint. *)
  let on_stack = Hashtbl.create 16 in
  let finished = Hashtbl.create 16 in
  let ok = ref true in
  let rec dfs l =
    if not (Hashtbl.mem finished l || Hashtbl.mem on_stack l) then begin
      Hashtbl.replace on_stack l ();
      List.iter
        (fun s ->
          if not (Lset.mem s cuts) then
            if Hashtbl.mem on_stack s then ok := false else dfs s)
        (Cfg.successors proc (block proc l));
      Hashtbl.remove on_stack l;
      Hashtbl.replace finished l ()
    end
  in
  List.iter (fun l -> if not (Lset.mem l cuts) then dfs l) (reachable proc);
  !ok
