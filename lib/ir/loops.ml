open Bv_isa
module Lset = Set.Make (Label)

type t =
  { back_edges : (Label.t * Label.t) list;
    bodies : (Label.t, Lset.t) Hashtbl.t  (* header -> natural loop *)
  }

let compute proc =
  let dom = Dominators.compute proc in
  let preds = Cfg.predecessor_map proc in
  let back_edges =
    List.concat_map
      (fun block ->
        List.filter_map
          (fun succ ->
            if Dominators.dominates dom succ block.Block.label then
              Some (block.Block.label, succ)
            else None)
          (Cfg.successors proc block))
      proc.Proc.blocks
  in
  let bodies = Hashtbl.create 8 in
  List.iter
    (fun (latch, header) ->
      let body =
        match Hashtbl.find_opt bodies header with
        | Some b -> ref b
        | None -> ref (Lset.singleton header)
      in
      (* Walk predecessors back from the latch; the header bounds the
         region because it dominates every block of the loop. *)
      let rec absorb lab =
        if not (Lset.mem lab !body) then begin
          body := Lset.add lab !body;
          List.iter absorb
            (Option.value (Hashtbl.find_opt preds lab) ~default:[])
        end
      in
      absorb latch;
      Hashtbl.replace bodies header !body)
    back_edges;
  { back_edges; bodies }

let back_edges t = t.back_edges

let headers t =
  List.sort Label.compare
    (Hashtbl.fold (fun h _ acc -> h :: acc) t.bodies [])

let body t header =
  match Hashtbl.find_opt t.bodies header with
  | Some b -> Lset.elements b
  | None -> []

let in_loop t ~header lab =
  match Hashtbl.find_opt t.bodies header with
  | Some b -> Lset.mem lab b
  | None -> false

let containing t lab =
  Hashtbl.fold
    (fun h b acc -> if Lset.mem lab b then (h, Lset.cardinal b) :: acc else acc)
    t.bodies []

let innermost t lab =
  match
    List.sort
      (fun (h1, n1) (h2, n2) ->
        match Int.compare n1 n2 with 0 -> Label.compare h1 h2 | c -> c)
      (containing t lab)
  with
  | (h, _) :: _ -> Some h
  | [] -> None

let depth t lab = List.length (containing t lab)
