(** Cutpoint enumeration for region-based analyses.

    A {e cutpoint} set is a set of block labels such that every cycle of
    the CFG passes through at least one of them; the regions between
    cutpoints are then acyclic and can be explored path-by-path (the
    basis of the translation-validation pass in {!Bv_analysis}). The
    canonical choice bundled here: the procedure entry, control-flow
    join points (reconvergence), loop headers (back-edge targets) and
    call return points. *)

open Bv_isa

val joins : Proc.t -> Label.t list
(** Reachable blocks with two or more CFG predecessors. *)

val back_edge_targets : Proc.t -> Label.t list
(** Targets [v] of edges [u -> v] where [v] dominates [u] — loop
    headers under reducible control flow. Irreducible loops are covered
    by {!compute}'s retreating-edge fallback. *)

val call_returns : Proc.t -> Label.t list
(** The [return_to] labels of [Call] terminators of reachable blocks. *)

val compute : ?include_joins:bool -> Proc.t -> Label.t list
(** Entry ∪ joins (unless [include_joins] is [false]) ∪ back-edge
    targets ∪ retreating-edge targets (irreducible safety net) ∪ call
    returns, restricted to reachable blocks, in reverse postorder. *)

val regions_acyclic : Proc.t -> cuts:Label.t list -> bool
(** True iff every CFG cycle passes through a label in [cuts] — i.e.
    the subgraph induced by non-cut reachable blocks is acyclic, so the
    inter-cutpoint regions have finitely many paths. *)
