open Bv_isa

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\l"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let node_id proc_name label = Printf.sprintf "\"%s::%s\"" proc_name label

let node_label ~bodies block =
  if not bodies then block.Block.label
  else begin
    let b = Buffer.create 128 in
    Buffer.add_string b (block.Block.label ^ ":\n");
    List.iter
      (fun i -> Buffer.add_string b ("  " ^ Instr.to_string i ^ "\n"))
      block.Block.body;
    Buffer.add_string b ("  " ^ Format.asprintf "%a" Term.pp block.Block.term);
    Buffer.contents b
  end

let edges proc_name block =
  let src = node_id proc_name block.Block.label in
  match block.Block.term with
  | Term.Jump l -> [ (src, node_id proc_name l, "") ]
  | Term.Branch { taken; not_taken; _ } ->
    [ (src, node_id proc_name taken, "taken");
      (src, node_id proc_name not_taken, "fall")
    ]
  | Term.Predict { taken; not_taken; _ } ->
    [ (src, node_id proc_name taken, "pred taken");
      (src, node_id proc_name not_taken, "pred fall")
    ]
  | Term.Resolve { mispredict; fallthrough; _ } ->
    [ (src, node_id proc_name mispredict, "mispredict");
      (src, node_id proc_name fallthrough, "fall")
    ]
  | Term.Call { return_to; _ } -> [ (src, node_id proc_name return_to, "ret") ]
  | Term.Ret | Term.Halt -> []

let emit_blocks ~bodies ppf proc =
  List.iter
    (fun b ->
      Format.fprintf ppf "  %s [shape=box, fontname=monospace, label=\"%s\"];@."
        (node_id proc.Proc.name b.Block.label)
        (escape (node_label ~bodies b)))
    proc.Proc.blocks;
  List.iter
    (fun b ->
      List.iter
        (fun (s, d, l) ->
          if l = "" then Format.fprintf ppf "  %s -> %s;@." s d
          else Format.fprintf ppf "  %s -> %s [label=\"%s\"];@." s d l)
        (edges proc.Proc.name b))
    proc.Proc.blocks

let callgraph ppf prog =
  let cg = Callgraph.build prog in
  let sccs = Callgraph.sccs cg in
  Format.fprintf ppf "digraph callgraph {@.";
  Format.fprintf ppf "  rankdir=BT;@.";
  List.iteri
    (fun i members ->
      let recursive = Callgraph.in_recursive_scc cg (List.hd members) in
      let label =
        String.concat "\n" members
        ^ if recursive then "\n(recursive)" else ""
      in
      let attrs =
        if recursive then
          ", peripheries=2, style=filled, fillcolor=mistyrose"
        else ""
      in
      Format.fprintf ppf
        "  scc_%d [shape=box, fontname=monospace, label=\"%s\"%s];@." i
        (escape label) attrs)
    sccs;
  (* condensed edges: one arrow per calling-SCC/called-SCC pair, labelled
     with the number of distinct caller->callee procedure pairs behind it *)
  let edge_counts = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let si = Callgraph.scc_index cg p.Proc.name in
      List.iter
        (fun callee ->
          let di = Callgraph.scc_index cg callee in
          let key = (si, di) in
          Hashtbl.replace edge_counts key
            (1 + Option.value (Hashtbl.find_opt edge_counts key) ~default:0))
        (Callgraph.callees cg p.Proc.name))
    prog.Program.procs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) edge_counts []
  |> List.sort compare
  |> List.iter (fun ((s, d), n) ->
         let label = if n > 1 then Printf.sprintf " [label=\"%d\"]" n else "" in
         Format.fprintf ppf "  scc_%d -> scc_%d%s;@." s d label);
  Format.fprintf ppf "}@."

let proc ?(bodies = true) ppf p =
  Format.fprintf ppf "digraph \"%s\" {@." p.Proc.name;
  emit_blocks ~bodies ppf p;
  Format.fprintf ppf "}@."

let program ?(bodies = true) ppf prog =
  Format.fprintf ppf "digraph program {@.";
  List.iteri
    (fun i p ->
      Format.fprintf ppf "subgraph cluster_%d {@.  label=\"%s\";@." i
        p.Proc.name;
      emit_blocks ~bodies ppf p;
      Format.fprintf ppf "}@.")
    prog.Program.procs;
  (* call edges *)
  List.iter
    (fun p ->
      List.iter
        (fun b ->
          match b.Block.term with
          | Term.Call { target; _ } -> (
            match
              List.find_opt
                (fun q -> Label.equal q.Proc.name target)
                prog.Program.procs
            with
            | Some callee ->
              Format.fprintf ppf
                "  %s -> %s [style=dashed, label=\"call\"];@."
                (node_id p.Proc.name b.Block.label)
                (node_id callee.Proc.name callee.Proc.entry)
            | None -> ())
          | _ -> ())
        p.Proc.blocks)
    prog.Program.procs;
  Format.fprintf ppf "}@."
