(** Natural-loop structure of a procedure, from dominator-identified back
    edges.

    A back edge is a CFG edge [latch -> header] whose target dominates its
    source; the natural loop of a header is the header plus every block
    that reaches one of its latches without passing through the header.
    Loops sharing a header are merged. Used by the cost-model advisor to
    classify branch predictability (loop exits and loop-invariant guards
    behave very differently from data-dependent hammocks) — and available
    to any region-formation pass. *)

open Bv_isa

type t

val compute : Proc.t -> t

val back_edges : t -> (Label.t * Label.t) list
(** [(latch, header)] pairs, in layout order of the latch. *)

val headers : t -> Label.t list

val body : t -> Label.t -> Label.t list
(** Blocks of the natural loop with the given header (header included),
    sorted. Empty for a non-header label. *)

val innermost : t -> Label.t -> Label.t option
(** Header of the smallest loop containing the block, if any. *)

val in_loop : t -> header:Label.t -> Label.t -> bool

val depth : t -> Label.t -> int
(** Number of loops containing the block (0 outside any loop). *)
