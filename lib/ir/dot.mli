(** Graphviz export of procedure CFGs — handy for inspecting what the
    transformations did ([dot -Tsvg]). *)

val proc : ?bodies:bool -> Format.formatter -> Proc.t -> unit
(** One digraph per procedure. With [bodies] (default true) each node shows
    its instructions; edges are labelled taken/fall/mispredict. *)

val program : ?bodies:bool -> Format.formatter -> Program.t -> unit
(** All procedures as subgraph clusters, with inter-procedure call edges. *)

val callgraph : Format.formatter -> Program.t -> unit
(** The SCC-condensed call graph ({!Callgraph}): one node per strongly
    connected component (members listed inside), recursive components
    doubly bordered and filled, and one edge per calling-component pair
    labelled with the number of caller/callee procedure pairs it
    condenses. Emitted bottom-up ([rankdir=BT]) so callees sit below
    callers, matching the summary engine's analysis order. *)
