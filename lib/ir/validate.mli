(** Structural well-formedness checks for programs.

    Checks performed:
    - block labels are unique program-wide, procedure names are unique and
      distinct from block labels;
    - every intra-procedural terminator target names a block of the same
      procedure;
    - [Call] targets name a procedure, and the [return_to] block is laid out
      immediately after the calling block (the machine returns to the
      instruction after the [call]);
    - every procedure's entry is its first block;
    - branch-site ids of [Branch] terminators are unique program-wide, as
      are [Predict] site ids and (per predicted direction) [Resolve] site
      ids — a site may carry one predicted-taken and one predicted-not-taken
      resolve arm, but not two of the same direction;
    - each [Predict] site id is matched by at least one [Resolve] with the
      same id, and neither predict nor resolve ids collide with branch ids;
    - a [Resolve] id with no matching [Predict] is allowed only in the lone,
      single-arm assert-style form produced by assert-conversion; two or
      more predictless arms for one id are an error;
    - a [Ret] in a procedure that is never a call target is an error — it
      could only ever execute with an empty call stack, a guaranteed
      runtime fault. *)

val check : Program.t -> (unit, string list) result
(** [check p] is [Ok ()] or [Error messages]. *)

val check_exn : Program.t -> unit
(** Raises [Invalid_argument] with all messages joined. *)
