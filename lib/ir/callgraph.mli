(** Whole-program call graph with SCC condensation.

    Nodes are procedures; there is an edge [p -> q] for every block of
    [p] whose terminator is [Term.Call] targeting [q]. Unknown call
    targets (a malformed program {!Validate} would reject) are ignored
    defensively rather than raised on, so the graph can be built for
    diagnostic purposes on any input.

    The strongly connected components are computed with Tarjan's
    algorithm and reported in {e reverse topological} order of the
    condensation: every SCC appears before any SCC that calls into it,
    so a bottom-up interprocedural analysis (callees before callers) can
    simply fold over {!sccs}. A component is {e recursive} when it has
    more than one member or a member that calls itself. *)

open Bv_isa

type t

val build : Program.t -> t

val callees : t -> Label.t -> Label.t list
(** Distinct procedures called by the named procedure, in first-call
    order. Empty for unknown procedures. *)

val callers : t -> Label.t -> Label.t list
(** Distinct procedures that call the named procedure. *)

val call_sites : t -> Label.t -> int
(** Number of call terminators in the named procedure. *)

val sccs : t -> Label.t list list
(** All SCCs in reverse topological order (callees before callers).
    Every procedure of the program appears in exactly one component;
    members keep the program's procedure order. *)

val in_recursive_scc : t -> Label.t -> bool
(** The procedure sits on a call cycle (self-recursion included). *)

val scc_index : t -> Label.t -> int
(** Position of the procedure's component in {!sccs}. Raises
    [Not_found] for unknown procedures. *)

val call_shadowed : Proc.t -> Label.t -> bool
(** Intra-procedural: some path from the procedure entry to the named
    block's entry crosses a call terminator — i.e. the block's register
    and memory state may reflect a callee's effects. [false] for labels
    unreachable from the entry. *)
