open Bv_isa

type t =
  { order : Label.t list;  (** program's procedure order *)
    callees : (Label.t, Label.t list) Hashtbl.t;
    callers : (Label.t, Label.t list) Hashtbl.t;
    sites : (Label.t, int) Hashtbl.t;
    sccs : Label.t list list;
    scc_of : (Label.t, int) Hashtbl.t;
    recursive : (Label.t, bool) Hashtbl.t
  }

let dedup_keep_order xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.replace seen x ();
        true
      end)
    xs

(* Tarjan over the procedure-name graph. The natural emission order —
   a component is finished only after every component reachable from it —
   is exactly the reverse topological order bottom-up analyses want. *)
let tarjan order callees =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let next = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !next;
    Hashtbl.replace lowlink v !next;
    incr next;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        match Hashtbl.find_opt index w with
        | None ->
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        | Some wi ->
          if Hashtbl.mem on_stack w then
            Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) wi))
      (Option.value (Hashtbl.find_opt callees v) ~default:[]);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if Label.equal w v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  List.iter
    (fun v -> if not (Hashtbl.mem index v) then strongconnect v)
    order;
  List.rev !components

let build program =
  let order = List.map (fun p -> p.Proc.name) program.Program.procs in
  let known = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace known n ()) order;
  let callees = Hashtbl.create 16 in
  let callers = Hashtbl.create 16 in
  let sites = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let name = p.Proc.name in
      let outs = ref [] in
      let count = ref 0 in
      List.iter
        (fun b ->
          match b.Block.term with
          | Term.Call { target; _ } ->
            incr count;
            if Hashtbl.mem known target then outs := target :: !outs
          | _ -> ())
        p.Proc.blocks;
      Hashtbl.replace sites name !count;
      let outs = dedup_keep_order (List.rev !outs) in
      Hashtbl.replace callees name outs;
      List.iter
        (fun callee ->
          let prior = Option.value (Hashtbl.find_opt callers callee) ~default:[] in
          Hashtbl.replace callers callee (prior @ [ name ]))
        outs)
    program.Program.procs;
  let position = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace position n i) order;
  let sccs =
    List.map
      (fun members ->
        List.sort
          (fun a b -> compare (Hashtbl.find position a) (Hashtbl.find position b))
          members)
      (tarjan order callees)
  in
  let scc_of = Hashtbl.create 16 in
  let recursive = Hashtbl.create 16 in
  List.iteri
    (fun i members ->
      let cyclic =
        List.length members > 1
        || List.exists
             (fun m ->
               List.exists (Label.equal m)
                 (Option.value (Hashtbl.find_opt callees m) ~default:[]))
             members
      in
      List.iter
        (fun m ->
          Hashtbl.replace scc_of m i;
          Hashtbl.replace recursive m cyclic)
        members)
    sccs;
  { order; callees; callers; sites; sccs; scc_of; recursive }

let callees t name = Option.value (Hashtbl.find_opt t.callees name) ~default:[]

let callers t name =
  dedup_keep_order (Option.value (Hashtbl.find_opt t.callers name) ~default:[])

let call_sites t name = Option.value (Hashtbl.find_opt t.sites name) ~default:0

let sccs t = t.sccs

let in_recursive_scc t name =
  Option.value (Hashtbl.find_opt t.recursive name) ~default:false

let scc_index t name = Hashtbl.find t.scc_of name

(* Forward "a call lies on some path from entry" fact: out(b) = in(b) or
   b ends in a call; in(b) = disjunction over predecessors. The lattice
   is boolean and monotone, so a round-robin sweep to fixpoint over the
   reachable blocks terminates in O(blocks * diameter). *)
let call_shadowed proc =
  let rpo = Cfg.reverse_postorder proc in
  let preds = Cfg.predecessor_map proc in
  let shadowed_in = Hashtbl.create 32 in
  let shadowed_out = Hashtbl.create 32 in
  let out_of l = Option.value (Hashtbl.find_opt shadowed_out l) ~default:false in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun label ->
        let b = Proc.find_block proc label in
        let fact_in =
          List.exists out_of
            (Option.value (Hashtbl.find_opt preds label) ~default:[])
        in
        let fact_out =
          fact_in || (match b.Block.term with Term.Call _ -> true | _ -> false)
        in
        if
          Option.value (Hashtbl.find_opt shadowed_in label) ~default:false
          <> fact_in
          || out_of label <> fact_out
        then begin
          Hashtbl.replace shadowed_in label fact_in;
          Hashtbl.replace shadowed_out label fact_out;
          changed := true
        end)
      rpo
  done;
  fun label -> Option.value (Hashtbl.find_opt shadowed_in label) ~default:false
