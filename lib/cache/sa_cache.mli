(** Set-associative cache with true-LRU replacement and write-back,
    write-allocate policy. Only tags are tracked (data values live in the
    functional memory); the model answers hit/miss and counts traffic. *)

type t

type stats =
  { accesses : int;
    misses : int;
    evictions : int;
    writebacks : int
  }

val create :
  name:string -> size_bytes:int -> ways:int -> line_bytes:int -> t
(** Raises [Invalid_argument] unless sizes are powers of two and consistent. *)

val name : t -> string
val line_bytes : t -> int
val sets : t -> int

val access : t -> addr:int -> write:bool -> [ `Hit | `Miss ]
(** Look up the line containing byte address [addr]; on a miss the line is
    filled (allocated) and the LRU victim evicted. [write] marks the line
    dirty; evicting a dirty line counts a writeback. *)

val probe : t -> addr:int -> bool
(** Non-allocating lookup: would [addr] hit right now? No stats change. *)

val invalidate_all : t -> unit
val stats : t -> stats
val reset_stats : t -> unit
val miss_rate : t -> float

val to_json : t -> Bv_obs.Json.t
(** Geometry plus the current stats and miss rate. *)
