type stats =
  { accesses : int;
    misses : int;
    evictions : int;
    writebacks : int
  }

type t =
  { name : string;
    line_bits : int;
    set_bits : int;
    set_count : int;
    ways : int;
    tags : int array;  (* set * ways, -1 = invalid *)
    lru : int array;  (* last-use stamp *)
    dirty : bool array;
    mutable clock : int;
    mutable accesses : int;
    mutable misses : int;
    mutable evictions : int;
    mutable writebacks : int
  }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let create ~name ~size_bytes ~ways ~line_bytes =
  if not (is_pow2 line_bytes) then
    invalid_arg (name ^ ": line_bytes must be a power of two");
  if size_bytes mod (ways * line_bytes) <> 0 then
    invalid_arg (name ^ ": size not divisible by ways * line");
  let set_count = size_bytes / (ways * line_bytes) in
  if not (is_pow2 set_count) then
    invalid_arg (name ^ ": set count must be a power of two");
  { name;
    line_bits = log2 line_bytes;
    set_bits = log2 set_count;
    set_count;
    ways;
    tags = Array.make (set_count * ways) (-1);
    lru = Array.make (set_count * ways) 0;
    dirty = Array.make (set_count * ways) false;
    clock = 0;
    accesses = 0;
    misses = 0;
    evictions = 0;
    writebacks = 0
  }

let name t = t.name
let line_bytes t = 1 lsl t.line_bits
let sets t = t.set_count

(* Index of the way holding [tag], or -1: the hot paths (access, probe)
   must not allocate an option per lookup. *)
let find_way_idx t set tag =
  let base = set * t.ways in
  let rec go w =
    if w >= t.ways then -1
    else if t.tags.(base + w) = tag then base + w
    else go (w + 1)
  in
  go 0

let victim_way t set =
  let base = set * t.ways in
  let best = ref base in
  for w = 1 to t.ways - 1 do
    let i = base + w in
    if t.tags.(i) = -1 && t.tags.(!best) <> -1 then best := i
    else if t.tags.(i) <> -1 && t.tags.(!best) <> -1
            && t.lru.(i) < t.lru.(!best)
    then best := i
  done;
  !best

let access t ~addr ~write =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let line = addr lsr t.line_bits in
  let set = line land (t.set_count - 1) in
  let tag = line lsr t.set_bits in
  let i = find_way_idx t set tag in
  if i >= 0 then begin
    t.lru.(i) <- t.clock;
    if write then t.dirty.(i) <- true;
    `Hit
  end
  else begin
    t.misses <- t.misses + 1;
    let i = victim_way t set in
    if t.tags.(i) <> -1 then begin
      t.evictions <- t.evictions + 1;
      if t.dirty.(i) then t.writebacks <- t.writebacks + 1
    end;
    t.tags.(i) <- tag;
    t.lru.(i) <- t.clock;
    t.dirty.(i) <- write;
    `Miss
  end

let probe t ~addr =
  let line = addr lsr t.line_bits in
  let set = line land (t.set_count - 1) in
  let tag = line lsr t.set_bits in
  find_way_idx t set tag >= 0

let invalidate_all t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false

let stats t =
  { accesses = t.accesses;
    misses = t.misses;
    evictions = t.evictions;
    writebacks = t.writebacks
  }

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.writebacks <- 0

let miss_rate t =
  if t.accesses = 0 then 0.0
  else Float.of_int t.misses /. Float.of_int t.accesses

let to_json t =
  let open Bv_obs.Json in
  Obj
    [ ("name", String t.name);
      ("sets", Int t.set_count);
      ("ways", Int t.ways);
      ("line_bytes", Int (1 lsl t.line_bits));
      ("size_bytes", Int (t.set_count * t.ways * (1 lsl t.line_bits)));
      ("accesses", Int t.accesses);
      ("misses", Int t.misses);
      ("evictions", Int t.evictions);
      ("writebacks", Int t.writebacks);
      ("miss_rate", float (miss_rate t))
    ]
