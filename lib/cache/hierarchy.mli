(** Three-level cache hierarchy + main memory (Table 1 of the paper):

    - L1-D: 32 KB, 8-way, 64 B lines, 4-cycle latency
    - L1-I: 32 KB, 4-way, 64 B lines, 4-cycle latency (hits are pipelined
      into the front end, so only misses add latency)
    - L2: 256 KB unified, 16-way, 12 cycles
    - L3: 4 MB, 32-way, 25 cycles
    - Memory: 140 cycles

    Latency accounting is serial lookup: an access that misses to level N
    pays the hit latency of every level up to N. *)

type config =
  { l1d_bytes : int;
    l1d_ways : int;
    l1i_bytes : int;
    l1i_ways : int;
    l2_bytes : int;
    l2_ways : int;
    l3_bytes : int;
    l3_ways : int;
    line_bytes : int;
    l1_latency : int;
    l2_latency : int;
    l3_latency : int;
    mem_latency : int
  }

val default_config : config

type t

type level = L1 | L2 | L3 | Mem

val create : ?config:config -> unit -> t
val config : t -> config

val data_access : t -> addr:int -> write:bool -> int * level
(** Total latency in cycles and the level that served the access. *)

val inst_access : t -> addr:int -> int * level
(** Instruction fetch for the line containing [addr]. An L1-I hit costs 0
    extra cycles (fetch is pipelined); misses pay the lower levels. *)

val data_access_latency : t -> addr:int -> write:bool -> int
(** [data_access] without the level — identical side effects, no tuple
    allocation; the simulator hot path uses this. *)

val inst_access_latency : t -> addr:int -> int
(** [inst_access] without the level (same side effects, no allocation). *)

val l1d : t -> Sa_cache.t
val l1i : t -> Sa_cache.t
val l2 : t -> Sa_cache.t
val l3 : t -> Sa_cache.t

val reset_stats : t -> unit

val to_json : t -> Bv_obs.Json.t
(** Latency configuration plus per-level {!Sa_cache.to_json} stats. *)
