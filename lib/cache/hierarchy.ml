type config =
  { l1d_bytes : int;
    l1d_ways : int;
    l1i_bytes : int;
    l1i_ways : int;
    l2_bytes : int;
    l2_ways : int;
    l3_bytes : int;
    l3_ways : int;
    line_bytes : int;
    l1_latency : int;
    l2_latency : int;
    l3_latency : int;
    mem_latency : int
  }

let default_config =
  { l1d_bytes = 32 * 1024;
    l1d_ways = 8;
    l1i_bytes = 32 * 1024;
    l1i_ways = 4;
    l2_bytes = 256 * 1024;
    l2_ways = 16;
    l3_bytes = 4 * 1024 * 1024;
    l3_ways = 32;
    line_bytes = 64;
    l1_latency = 4;
    l2_latency = 12;
    l3_latency = 25;
    mem_latency = 140
  }

type t =
  { cfg : config;
    l1d : Sa_cache.t;
    l1i : Sa_cache.t;
    l2 : Sa_cache.t;
    l3 : Sa_cache.t
  }

type level = L1 | L2 | L3 | Mem

let create ?(config = default_config) () =
  let c = config in
  { cfg = c;
    l1d =
      Sa_cache.create ~name:"L1-D" ~size_bytes:c.l1d_bytes ~ways:c.l1d_ways
        ~line_bytes:c.line_bytes;
    l1i =
      Sa_cache.create ~name:"L1-I" ~size_bytes:c.l1i_bytes ~ways:c.l1i_ways
        ~line_bytes:c.line_bytes;
    l2 =
      Sa_cache.create ~name:"L2" ~size_bytes:c.l2_bytes ~ways:c.l2_ways
        ~line_bytes:c.line_bytes;
    l3 =
      Sa_cache.create ~name:"L3" ~size_bytes:c.l3_bytes ~ways:c.l3_ways
        ~line_bytes:c.line_bytes
  }

let config t = t.cfg

(* Serial lookup below a missing L1: L2, then L3, then memory. Fills all
   levels on the way back (inclusive hierarchy). *)
let lower_levels t ~addr ~write =
  match Sa_cache.access t.l2 ~addr ~write with
  | `Hit -> (t.cfg.l2_latency, L2)
  | `Miss ->
    (match Sa_cache.access t.l3 ~addr ~write with
    | `Hit -> (t.cfg.l2_latency + t.cfg.l3_latency, L3)
    | `Miss ->
      (t.cfg.l2_latency + t.cfg.l3_latency + t.cfg.mem_latency, Mem))

let data_access t ~addr ~write =
  match Sa_cache.access t.l1d ~addr ~write with
  | `Hit -> (t.cfg.l1_latency, L1)
  | `Miss ->
    let below, level = lower_levels t ~addr ~write in
    (t.cfg.l1_latency + below, level)

let inst_access t ~addr =
  match Sa_cache.access t.l1i ~addr ~write:false with
  | `Hit -> (0, L1)
  | `Miss ->
    let below, level = lower_levels t ~addr ~write:false in
    (below, level)

(* Latency-only variants for the simulator hot path: identical cache
   side effects, no tuple allocation per access. *)
let lower_levels_latency t ~addr ~write =
  match Sa_cache.access t.l2 ~addr ~write with
  | `Hit -> t.cfg.l2_latency
  | `Miss ->
    (match Sa_cache.access t.l3 ~addr ~write with
    | `Hit -> t.cfg.l2_latency + t.cfg.l3_latency
    | `Miss -> t.cfg.l2_latency + t.cfg.l3_latency + t.cfg.mem_latency)

let data_access_latency t ~addr ~write =
  match Sa_cache.access t.l1d ~addr ~write with
  | `Hit -> t.cfg.l1_latency
  | `Miss -> t.cfg.l1_latency + lower_levels_latency t ~addr ~write

let inst_access_latency t ~addr =
  match Sa_cache.access t.l1i ~addr ~write:false with
  | `Hit -> 0
  | `Miss -> lower_levels_latency t ~addr ~write:false

let l1d t = t.l1d
let l1i t = t.l1i
let l2 t = t.l2
let l3 t = t.l3

let reset_stats t =
  Sa_cache.reset_stats t.l1d;
  Sa_cache.reset_stats t.l1i;
  Sa_cache.reset_stats t.l2;
  Sa_cache.reset_stats t.l3

let to_json t =
  let open Bv_obs.Json in
  Obj
    [ ( "config",
        Obj
          [ ("line_bytes", Int t.cfg.line_bytes);
            ("l1_latency", Int t.cfg.l1_latency);
            ("l2_latency", Int t.cfg.l2_latency);
            ("l3_latency", Int t.cfg.l3_latency);
            ("mem_latency", Int t.cfg.mem_latency)
          ] );
      ("l1d", Sa_cache.to_json t.l1d);
      ("l1i", Sa_cache.to_json t.l1i);
      ("l2", Sa_cache.to_json t.l2);
      ("l3", Sa_cache.to_json t.l3)
    ]
