(** Fork-based worker pool for embarrassingly parallel harness work.

    {!map} behaves exactly like [List.map f items] — same results, same
    order — but with [jobs > 1] the work is spread over forked worker
    processes and the results come back marshalled over pipes. Because
    assignment and reassembly are both by index, output is
    deterministic: a [jobs:4] run produces byte-identical results to a
    [jobs:1] run of the same deterministic [f].

    {!scatter} is the general engine underneath: each worker walks a
    caller-supplied {i plan} (a sequence of item indices) and sends back
    only the items its [step] actually produced, so several workers may
    cover overlapping index ranges and race benignly — the substrate for
    the claim-arbitrated work stealing in {!Dag.eval_list}. Indices a
    step declined everywhere are resolved by [gather] in the parent.

    Constraints: step results must be marshallable (no closures — plain
    strings, numbers, records); side effects of a step (memo-table
    fills, prints to buffered channels) stay in the child, except writes
    to stderr/files which interleave. Exceptions in a worker are carried
    back as {!Worker_failure} with the child's backtrace preserved
    verbatim. *)

exception
  Worker_failure of
    { index : int;  (** index of the item whose step failed *)
      message : string;  (** child's exception text, verbatim *)
      backtrace : string  (** child's backtrace, verbatim (may be empty) *)
    }

val jobs_env : unit -> int
(** Worker count from [BV_JOBS] (default 1). *)

val scatter :
  jobs:int ->
  plan:(int -> int -> int Seq.t) ->
  step:(int -> 'b option) ->
  gather:(int -> 'b) ->
  int ->
  'b list
(** [scatter ~jobs ~plan ~step ~gather n] produces one ['b] per index
    [0..n-1], in index order. Worker [w] of [jobs] walks [plan jobs w]
    calling [step]; [Some v] is sent to the parent, [None] means the
    item was declined (e.g. another worker holds its claim). After all
    workers drain, any index nobody produced is resolved in the parent
    by [gather]. With [jobs <= 1] or [n <= 1] everything runs in the
    current process ([plan 1 0], then [gather] for the declined) and
    step exceptions propagate raw. The union of all plans must cover
    [0..n-1] — an index no plan visits is only saved by [gather]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [jobs] defaults to 1 (plain in-process [List.map]). Built on
    {!scatter} with disjoint strided plans. *)
