(** Fork-based worker pool for embarrassingly parallel harness work.

    [map ~jobs f items] behaves exactly like [List.map f items] — same
    results, same order — but with [jobs > 1] the work is spread over
    forked worker processes (item [i] goes to worker [i mod jobs]) and
    the results come back marshalled over pipes. Because assignment and
    reassembly are both by index, output is deterministic: a [jobs:4]
    run produces byte-identical results to a [jobs:1] run of the same
    deterministic [f].

    Constraints: [f]'s results must be marshallable (no closures — plain
    strings, numbers, records); side effects of [f] (memo-table fills,
    prints to buffered channels) stay in the child, except writes to
    stderr/files which interleave. Exceptions in a worker are carried
    back as {!Worker_failure}. *)

exception Worker_failure of string

val jobs_env : unit -> int
(** Worker count from [BV_JOBS] (default 1). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [jobs] defaults to 1 (plain in-process [List.map]). *)
