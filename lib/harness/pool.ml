exception Worker_failure of string

let jobs_env () =
  match Sys.getenv_opt "BV_JOBS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> 1

(* Deterministic fork/join map: item [i] is handled by worker [i mod jobs]
   and every worker streams [(index, result)] pairs back over its own
   pipe, so reassembly is by index and the output order never depends on
   scheduling. With [jobs <= 1] (or a single item) this is [List.map] in
   the current process — same semantics, and in-process memo tables keep
   accumulating. *)
let map ?(jobs = 1) f items =
  let items = Array.of_list items in
  let n = Array.length items in
  if jobs <= 1 || n <= 1 then Array.to_list (Array.map f items)
  else begin
    let jobs = min jobs n in
    (* Anything buffered before the fork would be flushed once per child. *)
    flush stdout;
    flush stderr;
    let spawn w =
      let rd, wr = Unix.pipe () in
      match Unix.fork () with
      | 0 ->
        Unix.close rd;
        let oc = Unix.out_channel_of_descr wr in
        let k = ref w in
        (try
           while !k < n do
             let r =
               try Ok (f items.(!k))
               with e -> Error (Printexc.to_string e)
             in
             Marshal.to_channel oc (!k, r) [];
             k := !k + jobs
           done;
           flush oc
         with _ -> ());
        Unix._exit 0
      | pid ->
        Unix.close wr;
        (pid, rd)
    in
    let workers = List.init jobs spawn in
    let results = Array.make n None in
    (* Read each pipe to EOF before reaping its worker: a still-writing
       child must never block on a full pipe while we wait on it. *)
    List.iter
      (fun (pid, rd) ->
        let ic = Unix.in_channel_of_descr rd in
        (try
           while true do
             let idx, r = (Marshal.from_channel ic : int * (_, string) result) in
             results.(idx) <- Some r
           done
         with End_of_file -> ());
        close_in ic;
        ignore (Unix.waitpid [] pid))
      workers;
    Array.to_list
      (Array.mapi
         (fun i r ->
           match r with
           | Some (Ok v) -> v
           | Some (Error msg) ->
             raise (Worker_failure (Printf.sprintf "item %d: %s" i msg))
           | None ->
             raise
               (Worker_failure
                  (Printf.sprintf "worker died before finishing item %d" i)))
         results)
  end
