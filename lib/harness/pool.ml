exception
  Worker_failure of { index : int; message : string; backtrace : string }

let () =
  Printexc.register_printer (function
    | Worker_failure { index; message; backtrace } ->
      Some
        (Printf.sprintf "Pool.Worker_failure(item %d: %s)%s" index message
           (if backtrace = "" then ""
            else "\nChild backtrace:\n" ^ backtrace))
    | _ -> None)

let jobs_env () =
  match Sys.getenv_opt "BV_JOBS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> 1

(* Deterministic fork/join scatter: worker [w] walks [plan jobs w] and
   streams [(index, result)] pairs back over its own pipe, so reassembly
   is by index and the output order never depends on scheduling. Plans
   may overlap (work stealing — [step] itself arbitrates by returning
   [None] for items another worker owns); whatever nobody produced is
   [gather]ed in the parent. With [jobs <= 1] (or a single item) the
   plan runs in the current process — same semantics, and in-process
   memo tables keep accumulating. *)
let scatter ~jobs ~plan ~step ~gather n =
  let results = Array.make (max n 0) None in
  if jobs <= 1 || n <= 1 then
    (* step exceptions propagate raw here — no fork, nothing to carry *)
    Seq.iter
      (fun i ->
        if Option.is_none results.(i) then
          match step i with
          | Some v -> results.(i) <- Some (Ok v)
          | None -> ())
      (plan 1 0)
  else begin
    let jobs = min jobs n in
    (* Anything buffered before the fork would be flushed once per child. *)
    flush stdout;
    flush stderr;
    let spawn w =
      let rd, wr = Unix.pipe () in
      match Unix.fork () with
      | 0 ->
        Unix.close rd;
        Printexc.record_backtrace true;
        let oc = Unix.out_channel_of_descr wr in
        (try
           Seq.iter
             (fun i ->
               let r =
                 try Option.map (fun v -> Ok v) (step i)
                 with e ->
                   let bt = Printexc.get_backtrace () in
                   Some (Error (Printexc.to_string e, bt))
               in
               match r with
               | None -> ()
               | Some r -> Marshal.to_channel oc (i, r) [])
             (plan jobs w);
           flush oc
         with _ -> ());
        Unix._exit 0
      | pid ->
        Unix.close wr;
        (pid, rd)
    in
    let workers = List.init jobs spawn in
    (* Read each pipe to EOF before reaping its worker: a still-writing
       child must never block on a full pipe while we wait on it. *)
    List.iter
      (fun (pid, rd) ->
        let ic = Unix.in_channel_of_descr rd in
        (try
           while true do
             let idx, r =
               (Marshal.from_channel ic
                 : int * (_, string * string) result)
             in
             (* first producer wins; a racing duplicate is identical *)
             if Option.is_none results.(idx) then results.(idx) <- Some r
           done
         with End_of_file | Failure _ -> ());
        close_in ic;
        ignore (Unix.waitpid [] pid))
      workers;
    (* Fail on the lowest-index error so reruns reproduce the report. *)
    Array.iteri
      (fun i r ->
        match r with
        | Some (Error (message, backtrace)) ->
          raise (Worker_failure { index = i; message; backtrace })
        | _ -> ())
      results
  end;
  List.init n (fun i ->
      match results.(i) with
      | Some (Ok v) -> v
      | Some (Error (message, backtrace)) ->
        raise (Worker_failure { index = i; message; backtrace })
      | None -> gather i)

let map ?(jobs = 1) f items =
  let items = Array.of_list items in
  let n = Array.length items in
  let strided jobs w =
    Seq.unfold (fun i -> if i < n then Some (i, i + jobs) else None) w
  in
  scatter ~jobs
    ~plan:strided
    ~step:(fun i -> Some (f items.(i)))
    ~gather:(fun i ->
      raise
        (Worker_failure
           { index = i;
             message = "worker died before finishing item";
             backtrace = ""
           }))
    n
