(** End-to-end per-benchmark pipeline: generate → profile (TRAIN) →
    select → transform → schedule → simulate (REF inputs), with memoised
    simulation results so multiple experiments can share runs. *)

open Bv_bpred
open Bv_cache
open Bv_pipeline
open Bv_workloads

type bench

val scale : unit -> float
(** Workload scale factor from the [BV_SCALE] environment variable
    (default 1.0): multiplies each spec's outer repetitions. Use e.g.
    [BV_SCALE=0.5] for quick runs. Read once and memoised, so a single
    run never mixes factors. *)

type artifact
(** The pure (marshal-safe) payload of a prepared bench: spec, profile,
    selection, transform and static sizes — everything except the memo
    tables. Persisted by {!Sim}'s artifact cache. *)

val export : bench -> artifact
val import : artifact -> bench
(** [import (export b)] is an equivalent bench with empty memo tables. *)

val prepare :
  ?predictor:Kind.t -> ?threshold:float -> ?max_hoist:int -> Spec.t -> bench
(** Profile with [predictor] (default the baseline tournament) on the TRAIN
    input and apply selection + transformation. *)

val spec : bench -> Spec.t
val profile : bench -> Bv_profile.Profile.t
val selection : bench -> Vanguard.Select.t
val transform : bench -> Vanguard.Transform.result

val baseline_static : bench -> int
(** Laid-out baseline code size in instructions. *)

val experimental_static : bench -> int

val piscs : bench -> float
(** Percent increase in static code size. *)

val baseline_program : bench -> input:int -> Bv_ir.Layout.image
val experimental_program : bench -> input:int -> Bv_ir.Layout.image

type sim_pair =
  { base : Machine.result;
    exp : Machine.result;
    speedup_pct : float  (** 100 * (base cycles / exp cycles - 1) *)
  }

val simulate :
  ?predictor:Kind.t ->
  ?cache:Hierarchy.config ->
  bench ->
  input:int ->
  width:int ->
  sim_pair
(** Simulate one REF input at one width, baseline vs. transformed. Results
    are memoised per (input, width, predictor, cache geometry). Raises
    [Failure] if either run diverges from the functional interpreter's
    architectural digest. *)

val avg_speedup :
  ?predictor:Kind.t -> ?cache:Hierarchy.config -> bench -> width:int -> float
(** Mean over REF inputs of the per-input speedup (the paper's
    "averaged over all reference inputs"). *)

val best_speedup :
  ?predictor:Kind.t -> ?cache:Hierarchy.config -> bench -> width:int -> float

val input_indices : unit -> int list
(** The REF input indices, [1 .. Suites.ref_inputs]. *)

val pair_to_json : sim_pair -> Bv_obs.Json.t
(** Speedup plus both runs' {!Machine.result_to_json}. *)

type sim_summary =
  { sum_speedup_pct : float;
    sum_base : Stats.t;  (** baseline run's counters *)
    sum_exp : Stats.t
  }
(** The marshal-safe essence of a {!sim_pair}: speedup plus both runs'
    stat counters — everything the experiment tables read, none of the
    hierarchy/config state {!Machine.result} drags along. This is the
    payload {!Sim}'s DAG persists for simulation nodes. *)

val summarize : sim_pair -> sim_summary

type instrumented =
  { pair : sim_pair;
    base_samples : Sampler.t;
    exp_samples : Sampler.t;
    base_acct : Acct.t;  (** cycle accounting of the baseline run *)
    exp_acct : Acct.t
  }

val simulate_instrumented :
  ?predictor:Kind.t ->
  ?cache:Hierarchy.config ->
  ?sample_interval:int ->
  ?on_base_event:(Machine.event -> unit) ->
  ?on_exp_event:(Machine.event -> unit) ->
  bench ->
  input:int ->
  width:int ->
  instrumented
(** Like {!simulate}, but with telemetry attached: interval samplers and
    cycle accounting on both runs (window size [sample_interval],
    {!Sampler.create}'s default otherwise) and optional pipeline-event
    taps (e.g. {!Perfetto} collectors). Performs the same digest checks;
    not memoised — hooks and samplers observe a fresh simulation every
    call. *)

type accounted =
  { acc_base_cycles : int;
    acc_exp_cycles : int;
    acc_speedup_pct : float;
    acc_base : Acct.t;
    acc_exp : Acct.t
  }
(** The marshal-safe subset of an accounted baseline-vs-experimental run:
    flat tables plus cycle totals, safe to return from a {!Sim.map}
    fork-pool worker (unlike {!Machine.result}, it drags no cache
    hierarchy or config along). *)

val simulate_accounted :
  ?predictor:Kind.t ->
  ?cache:Hierarchy.config ->
  bench ->
  input:int ->
  width:int ->
  accounted
(** Simulate one REF input at one width with cycle accounting on both
    sides. Same digest checks as {!simulate}; not memoised. *)

val merge_accounted : accounted -> accounted -> accounted
(** Pointwise sum (cycles, attribution tables) with the speedup recomputed
    from the summed cycle totals — cross-input aggregation. Raises
    [Invalid_argument] when the two runs cover different code
    ({!Acct.merge}). *)

type sampled_pair =
  { samp_base : Machine.sampled;
    samp_exp : Machine.sampled;
    samp_speedup_pct : float
        (** from the extrapolated cycle estimates, not detailed cycles *)
  }

val simulate_sampled :
  ?predictor:Kind.t ->
  ?cache:Hierarchy.config ->
  ?params:Machine.sample_params ->
  bench ->
  input:int ->
  width:int ->
  sampled_pair
(** {!Machine.run_sampled} on both sides of one REF input. Fast-forward
    executes committed semantics, so the architectural digests are
    checked against the interpreter exactly as {!simulate} does — only
    the timing is an estimate. Not memoised. *)

type sampled_summary =
  { ss_speedup_pct : float;
    ss_base : Smarts.estimate;  (** baseline extrapolation + CIs *)
    ss_exp : Smarts.estimate
  }
(** The marshal-safe essence of a {!sampled_pair}: both whole-run
    estimates (plain data throughout) and the speedup they imply. The
    payload {!Sim}'s DAG persists for sample nodes. *)

val summarize_sampled : sampled_pair -> sampled_summary

type identity =
  { idt_base_cycles : int;
    idt_exp_cycles : int
  }
(** Marshal-safe witness of a passed compiled-vs-interpreted
    byte-identity check (the cycle counts both paths agreed on). *)

val compiled_identity :
  ?predictor:Kind.t ->
  ?cache:Hierarchy.config ->
  bench ->
  input:int ->
  width:int ->
  identity
(** Run both sides of one REF input twice — block-compiled and
    interpreted — and fail unless the full result JSON (stats, cache
    hierarchy, digests) is byte-identical. The CI smoke leg and the
    ["compiled"] DAG node route here. Not memoised. *)

val advise :
  ?config:Bv_analysis.Advisor.config ->
  ?interproc:bool ->
  bench ->
  Bv_analysis.Advisor.t
(** Run the static cost-model advisor over the bench's TRAIN program,
    fused with its TRAIN profile — ranked per-site recommendations with
    no simulation beyond what {!prepare} already did. [interproc]
    (default false) costs the sites with interprocedural summaries
    ({!Bv_analysis.Summary}), so condition slices survive calls to
    procedures that provably leave their inputs alone. *)

type advice_checked =
  { ac_advice : Bv_analysis.Advisor.t;
    ac_validation : Bv_analysis.Advisor.validation;
    ac_inputs : int;  (** REF inputs the measured side aggregates *)
    ac_max_outstanding : int
        (** peak DBB occupancy {!Bv_analysis.Speculation.max_outstanding}
            proves for the transformed program — the advisor's static
            window-pressure estimate must cover it *)
  }
(** Marshal-safe (plain data throughout): an advise-and-validate result
    can come back from a {!Sim.map} fork-pool worker. *)

val advise_validate :
  ?predictor:Kind.t ->
  ?cache:Hierarchy.config ->
  ?config:Bv_analysis.Advisor.config ->
  ?interproc:bool ->
  ?inputs:int list ->
  bench ->
  width:int ->
  advice_checked
(** {!advise}, then join the static cycles-saved ranking against measured
    per-site recovery cycles from accounted baseline runs of the REF
    [inputs] (default [[1]]; pass {!input_indices} for all of them,
    merged) at [width]. The validation reports the Spearman rank
    correlation and the sites whose static and measured ranks diverge. *)
