(** Aggregation helpers for experiment results. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0 elements give 1.0. *)

val geomean_speedup_pct : float list -> float
(** Geometric mean of speedups given as percentages: [geomean (1+s/100)]
    mapped back to a percentage. *)

val mean : float list -> float
val max_or : float -> float list -> float

val median : float list -> float
(** Median (midpoint of the two middle elements for even lengths); 0.0 on
    the empty list. The bench-trend reference point: robust to the odd
    slow CI host in a trailing history. *)
