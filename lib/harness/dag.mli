(** The memoized experiment DAG: every stage of every run path —
    prepare (profile/select/transform), simulate, account, prove, advise,
    experiment rows — is a {!node} whose key content-hashes its inputs,
    its dependencies' keys and the engine's code-format stamp. A node is
    evaluated at most once per store: results persist atomically into the
    [BV_CACHE] directory, so re-runs after a code or config change
    recompute only the invalidated cone and interrupted sweeps resume
    from what already landed.

    Cooperation is arbitrated by claim files ([<key>.claim], created
    [O_CREAT|O_EXCL]): the winner computes and publishes, everyone else
    awaits the published value — across forked workers of one process
    ({!eval_list}) and across independent [vanguard_cli] processes
    pointed at one cache directory alike. A claim whose owner died is
    broken and the node taken over, so a killed sweep never wedges the
    next one.

    Determinism: node values are pure functions of their inputs and
    results are reassembled by index, so a [jobs:n] evaluation is
    byte-identical to [jobs:1]. *)

val code_format : int
(** Format stamp mixed into every key. Bump it whenever the meaning of
    any cached stage changes — pipeline semantics, node payload types,
    experiment row formulas — so stale entries miss instead of lying. *)

type t
(** An engine: store directory, in-process memo and hit/miss counters. *)

val create : ?format:int -> ?dir:string -> unit -> t
(** [format] defaults to {!code_format}; [dir] is the persistent store
    (no disk persistence or cross-process cooperation without it). *)

type 'a node

val node :
  kind:string ->
  ?label:string ->
  ?deps:string list ->
  inputs:'i ->
  (unit -> 'a) ->
  'a node
(** A computation keyed by [kind], the marshalled fingerprint of
    [inputs] and the [deps] key list (dependency keys chain, so a
    changed input invalidates exactly its downstream cone). [inputs]
    must be marshal-safe plain data, [compute]'s result marshal-safe and
    deterministic. [label] is display-only (default [kind]). *)

val key : t -> 'a node -> string
(** The node's content hash under this engine's format stamp. Stable
    across processes; pass it as a dependency to downstream nodes. *)

val eval : t -> 'a node -> 'a
(** Memo hit, store hit, locally computed (claim won) or awaited from a
    concurrent evaluator — whichever comes first. Computed values are
    written tmp-then-rename with a [.meta] sidecar, and every store
    event is appended to [dag.log] for {!explain}. *)

val eval_list : ?jobs:int -> t -> 'a node list -> 'a list
(** Evaluate ready nodes cooperatively, results in input order. With
    [jobs > 1] the pending nodes fan out over forked workers that
    work-steal: every worker scans all pending nodes from a different
    offset and the claim files arbitrate, so an imbalanced tail never
    idles a worker and concurrent processes on the same store share the
    sweep. Equivalent to [List.map (eval t)] observationally. *)

type counters =
  { hits : int;  (** memo or store hits *)
    misses : int;  (** evaluated here (claim won) *)
    stolen : int  (** computed concurrently elsewhere, awaited and loaded *)
  }

val counters : t -> counters
(** Totals since [create] (the parent process's view of a sweep). *)

val counters_json : t -> Bv_obs.Json.t
(** [{"hits": h, "misses": m, "stolen": s, "nodes": h+m+s}] — attached
    to every [--json] emitter's report. *)

(** {1 Store maintenance} — operate directly on a cache directory. *)

type entry =
  { e_key : string;
    e_kind : string;  (** ["?"] when the meta sidecar is missing *)
    e_label : string;
    e_bytes : int;
    e_age : float  (** seconds since last store hit (mtime is touched) *)
  }

val entries : string -> entry list
(** Every persisted node in the directory, including legacy
    [*.bench] artifacts (kind ["legacy"]), oldest first. *)

type claim =
  { c_key : string;
    c_pid : int;
    c_host : string;
    c_age : float;
    c_stale : bool  (** owner known dead, or cross-host claim past TTL *)
  }

val claims : string -> claim list

val status_json : string -> Bv_obs.Json.t

type gc_report =
  { gcr_examined : int;  (** entries present before pruning *)
    gcr_bytes : int;  (** store payload bytes before pruning *)
    gcr_removed : entry list;
    gcr_removed_bytes : int;
    gcr_claims_broken : int;  (** stale claims swept *)
    gcr_dry_run : bool
  }

val gc :
  ?max_age:float -> ?max_bytes:int -> dry_run:bool -> string -> gc_report
(** Prune entries older than [max_age] seconds, then oldest-first until
    the store fits in [max_bytes]; stale claims are always swept and an
    oversized [dag.log] trimmed. With [dry_run] the report says what
    would go but nothing is touched. No bound given means no entry is
    pruned (stale-claim sweep still runs). *)

val gc_report_to_json : gc_report -> Bv_obs.Json.t

type explanation =
  { x_key : string;
    x_kind : string;
    x_label : string;
    x_format : int;
    x_ocaml : string;
    x_inputs : string;  (** fingerprint of the node's inputs *)
    x_deps : string list;
    x_created_at : string;
    x_pid : int;  (** evaluating process *)
    x_compute_seconds : float;
    x_bytes : int;
    x_age : float;
    x_events : string list  (** this key's [dag.log] provenance lines *)
  }

val explain : string -> string -> (explanation, string) result
(** [explain dir key_prefix]: the hash inputs and hit/miss provenance of
    the unique stored node matching [key_prefix]. [Error] when unknown
    or ambiguous. *)

val explanation_to_json : explanation -> Bv_obs.Json.t
