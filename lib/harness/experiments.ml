open Bv_bpred
open Bv_cache
open Bv_pipeline
open Bv_workloads

let progress fmt =
  Printf.ksprintf
    (fun s ->
      Printf.eprintf "  [bench] %s\n%!" s)
    fmt

(* ------------------------------------------------------------------ lab *)

(* All prepare/simulate traffic goes through the shared default session:
   every stage is a node of its memoized experiment DAG, persisted in
   the content-hashed BV_CACHE store, and [rows] fans row-level work out
   across the session's workers (BV_JOBS / --jobs) with claim-file work
   stealing. Worker results are reassembled by index, so a parallel run
   emits byte-identical tables to a serial one — and a re-run with
   unchanged inputs recomputes nothing. *)
let sim = lazy (Sim.the ())

let bench spec = Sim.bench (Lazy.force sim) spec

(* One DAG node per table row: kind ["row:<experiment>"], keyed by the
   item and the workload scale. The worker body must be a pure function
   of its item (plus code frozen under {!Dag.code_format}). *)
let rows ~id ?label f items =
  Sim.dag_map (Lazy.force sim) ~kind:("row:" ^ id) ?label f items

(* Collapse whitespace runs so multi-line string literals render cleanly. *)
let normalize text =
  String.concat " "
    (List.filter
       (fun w -> w <> "")
       (String.split_on_char ' '
          (String.map (function '\n' -> ' ' | c -> c) text)))

let heading ppf title = Format.fprintf ppf "@.=== %s ===@." (normalize title)

(* Every emitted table is also captured structurally (name, headers, rows)
   so the bench harness / --json consumers get the data without scraping
   the rendered text. *)
let captured : (string * string list * string list list) list ref = ref []

let drain_tables () =
  let tables = List.rev !captured in
  captured := [];
  tables

let table_to_json (name, headers, rows) =
  let open Bv_obs.Json in
  Obj
    [ ("schema_version", Int schema_version);
      ("name", String name);
      ("headers", List (List.map (fun h -> String h) headers));
      ( "rows",
        List
          (List.map (fun row -> List (List.map (fun c -> String c) row)) rows)
      )
    ]

(* Print a table; with BV_CSV set, also drop the data under results/. *)
let emit ?csv ppf ~headers rows =
  (match csv with
  | Some name -> captured := (name, headers, rows) :: !captured
  | None -> ());
  Format.fprintf ppf "%s@." (Text.render ~headers rows);
  match (csv, Sys.getenv_opt "BV_CSV") with
  | Some name, Some _ ->
    (try
       if not (Sys.file_exists "results") then Sys.mkdir "results" 0o755;
       Out_channel.with_open_text
         (Filename.concat "results" (name ^ ".csv"))
         (fun oc -> Out_channel.output_string oc (Text.csv ~headers rows))
     with Sys_error e -> progress "csv export failed: %s" e)
  | _ -> ()

(* --------------------------------------------------------------- table1 *)

let table1 ppf =
  heading ppf "Table 1: Machine Configuration Parameters";
  List.iter
    (fun c -> Format.fprintf ppf "%a@.@." Config.pp c)
    [ Config.two_wide; Config.four_wide; Config.eight_wide ]

(* -------------------------------------------------------------- fig 2/3 *)

(* Per benchmark: every forward hammock site, sorted by bias descending;
   curves are resampled to a common length and averaged position-wise
   (the paper's "top N most-executed forward branches (sorted by bias)
   averaged across the suite"). *)
let bias_predictability_curve suite =
  let points = 40 in
  let curves =
    rows ~id:"curve"
      ~label:(fun spec -> spec.Spec.name)
      (fun spec ->
        let profile = Runner.profile (bench spec) in
        let sites =
          List.filter
            (fun s -> s.Bv_profile.Profile.id < 900_000)
            (Bv_profile.Profile.sites_by_execution profile)
        in
        let sorted =
          List.sort
            (fun a b ->
              Float.compare (Bv_profile.Profile.bias b)
                (Bv_profile.Profile.bias a))
            sites
        in
        Array.of_list
          (List.map
             (fun s ->
               (Bv_profile.Profile.bias s, Bv_profile.Profile.predictability s))
             sorted))
      (Suites.of_suite suite)
  in
  Array.init points (fun i ->
      let at curve =
        let n = Array.length curve in
        if n = 0 then None
        else Some curve.(min (n - 1) (i * n / points))
      in
      let samples = List.filter_map at curves in
      let biases = List.map fst samples in
      let preds = List.map snd samples in
      (Agg.mean biases, Agg.mean preds))

let fig23 ppf ~title suite =
  heading ppf title;
  let curve = bias_predictability_curve suite in
  emit ~csv:(if suite = Spec.Int_2006 then "fig2" else "fig3") ppf
    ~headers:[ "rank%"; "bias"; "predictability"; "" ]
    (Array.to_list
          (Array.mapi
             (fun i (bias, pred) ->
               [ Printf.sprintf "%d" (i * 100 / Array.length curve);
                 Text.f3 bias;
                 Text.f3 pred;
                 Text.bar pred ~width:40 ~scale:0.025
               ])
             curve))

let fig2 ppf =
  fig23 ppf
    ~title:
      "Figure 2: predictability vs bias, forward branches, SPEC 2006 Int"
    Spec.Int_2006

let fig3 ppf =
  fig23 ppf
    ~title:"Figure 3: predictability vs bias, forward branches, SPEC 2006 FP"
    Spec.Fp_2006

(* --------------------------------------------------------------- table2 *)

let table2 ppf =
  heading ppf "Table 2: SPEC 2006 Int and FP metrics (4-wide), sorted by SPD";
  let data =
    rows ~id:"table2"
      ~label:(fun spec -> spec.Spec.name)
      (fun spec ->
        progress "table2 %s" spec.Spec.name;
        (* avg speedup via the shared summary nodes — table2 and the
           speedup figures then reuse each other's simulations *)
        let spd = Sim.avg_speedup (Lazy.force sim) spec ~width:4 in
        Metrics.table2_row ~spd (bench spec))
      (Suites.int_2006 @ Suites.fp_2006)
  in
  let rows =
    List.sort (fun a b -> Float.compare b.Metrics.spd a.Metrics.spd) data
  in
  emit ~csv:"table2" ppf
    ~headers:
      [ "Name"; "SPD"; "PBC"; "PDIH"; "ALPBB"; "ASPCB"; "PHI"; "MPPKI";
        "PISCS"
      ]
    (List.map
          (fun r ->
            [ r.Metrics.name;
              Text.f1 r.Metrics.spd;
              Text.f1 r.Metrics.pbc;
              Text.f1 r.Metrics.pdih;
              Text.f1 r.Metrics.alpbb;
              Text.f1 r.Metrics.aspcb;
              Text.f1 r.Metrics.phi;
              Text.f1 r.Metrics.mppki;
              Text.f1 r.Metrics.piscs
            ])
       rows)

(* ------------------------------------------------------------- fig 8-13 *)

let widths = [ 2; 4; 8 ]

let speedup_figure ?csv ppf ~title ~suite ~pick =
  heading ppf title;
  (* One work item per benchmark: each returns its per-width speedups, so
     workers carry only (name, floats) back and the parent renders. *)
  let data =
    rows
      ~id:(Option.value csv ~default:"fig")
      ~label:(fun spec -> spec.Spec.name)
      (fun spec ->
        progress "%s %s" title spec.Spec.name;
        (spec.Spec.name, List.map (fun w -> pick spec ~width:w) widths))
      (Suites.of_suite suite)
  in
  let s4 speedups = List.nth speedups 1 (* widths = [2; 4; 8] *) in
  let rows =
    List.map
      (fun (name, speedups) ->
        (name :: List.map Text.f1 speedups)
        @ [ Text.bar (s4 speedups) ~width:35 ~scale:1.0 ])
      data
  in
  let geos =
    List.mapi
      (fun i _ ->
        Text.f1
          (Agg.geomean_speedup_pct
             (List.map (fun (_, speedups) -> List.nth speedups i) data)))
      widths
  in
  emit ?csv ppf
    ~headers:[ "Benchmark"; "2-wide"; "4-wide"; "8-wide"; "(4-wide bar)" ]
    (rows @ [ ("GEOMEAN" :: geos) @ [ "" ] ])

let avg spec ~width = Sim.avg_speedup (Lazy.force sim) spec ~width
let best spec ~width = Sim.best_speedup (Lazy.force sim) spec ~width

let fig8 ppf =
  speedup_figure ~csv:"fig8" ppf
    ~title:"Figure 8: SPEC 2006 Int % speedup, avg over REF inputs"
    ~suite:Spec.Int_2006 ~pick:avg

let fig9 ppf =
  speedup_figure ~csv:"fig9" ppf
    ~title:"Figure 9: SPEC 2006 Int % speedup, best REF input"
    ~suite:Spec.Int_2006 ~pick:best

let fig10 ppf =
  speedup_figure ~csv:"fig10" ppf
    ~title:"Figure 10: SPEC 2000 Int % speedup, avg over REF inputs"
    ~suite:Spec.Int_2000 ~pick:avg

let fig11 ppf =
  speedup_figure ~csv:"fig11" ppf
    ~title:"Figure 11: SPEC 2000 Int % speedup, best REF input"
    ~suite:Spec.Int_2000 ~pick:best

let fig12 ppf =
  speedup_figure ~csv:"fig12" ppf
    ~title:"Figure 12: SPEC 2006 FP % speedup, avg over REF inputs"
    ~suite:Spec.Fp_2006 ~pick:avg

let fig13 ppf =
  speedup_figure ~csv:"fig13" ppf
    ~title:"Figure 13: SPEC 2000 FP % speedup, avg over REF inputs"
    ~suite:Spec.Fp_2000 ~pick:avg

(* ---------------------------------------------------------------- fig14 *)

let issued_increase spec =
  let per_input input =
    let s = Sim.summary (Lazy.force sim) spec ~input ~width:4 in
    let bi = s.Runner.sum_base.Stats.issued in
    let ei = s.Runner.sum_exp.Stats.issued in
    100.0 *. (Float.of_int ei /. Float.of_int (max 1 bi) -. 1.0)
  in
  Agg.mean (List.map per_input (List.init Suites.ref_inputs (fun k -> k + 1)))

let fig14 ppf =
  heading ppf
    "Figure 14: % increase in instructions issued, 4-wide experimental vs \
     baseline, SPEC 2006";
  let data =
    rows ~id:"fig14"
      ~label:(fun spec -> spec.Spec.name)
      (fun spec ->
        progress "fig14 %s" spec.Spec.name;
        let v = issued_increase spec in
        [ spec.Spec.name; Text.f2 v; Text.bar v ~width:30 ~scale:0.25 ])
      (Suites.int_2006 @ Suites.fp_2006)
  in
  emit ~csv:"fig14" ppf ~headers:[ "Benchmark"; "%issued increase"; "" ] data

(* ---------------------------------------------------------- sensitivity *)

let sensitivity ppf =
  heading ppf
    "Sensitivity (5.3): speedup vs branch predictor, hard-to-predict \
     benchmarks";
  let names = [ "astar"; "sjeng"; "gobmk"; "mcf" ] in
  let data =
    List.concat
      (rows ~id:"sens" ~label:Fun.id
         (fun name ->
           let spec = Option.get (Suites.find name) in
           List.map
             (fun kind ->
               progress "sensitivity %s/%s" name (Kind.name kind);
            let sum =
              Sim.summary ~predictor:kind (Lazy.force sim) spec ~input:1
                ~width:4
            in
            let mr =
              let s = sum.Runner.sum_base in
              100.0
              *. Float.of_int (Stats.mispredicts s)
              /. Float.of_int (max 1 s.Stats.branch_execs)
            in
            [ name;
              Kind.name kind;
              Text.f2 mr;
              Text.f2 sum.Runner.sum_speedup_pct
            ])
             Kind.sensitivity_ladder)
         names)
  in
  emit ~csv:"sensitivity" ppf
    ~headers:[ "Benchmark"; "Predictor"; "mispredict%"; "speedup%" ]
    data

(* --------------------------------------------------------------- icache *)

let icache ppf =
  heading ppf
    "I$ study (6.1): 32 KB -> 24 KB instruction cache, 4-wide experimental \
     build";
  let small_cache =
    { Hierarchy.default_config with Hierarchy.l1i_bytes = 24 * 1024;
      l1i_ways = 3
    }
  in
  let specs = Suites.int_2006 @ Suites.fp_2006 in
  let data =
    rows ~id:"icache"
      ~label:(fun spec -> spec.Spec.name)
      (fun spec ->
        progress "icache %s" spec.Spec.name;
        let big = Sim.summary (Lazy.force sim) spec ~input:1 ~width:4 in
        let small =
          Sim.summary ~cache:small_cache (Lazy.force sim) spec ~input:1
            ~width:4
        in
        let delta =
          100.0
          *. (Float.of_int small.Runner.sum_exp.Stats.cycles
              /. Float.of_int (max 1 big.Runner.sum_exp.Stats.cycles)
             -. 1.0)
        in
        let shadow =
          let s = big.Runner.sum_exp in
          if s.Stats.icache_misses = 0 then 0.0
          else
            100.0
            *. Float.of_int s.Stats.icache_misses_in_shadow
            /. Float.of_int s.Stats.icache_misses
        in
        ( delta,
          [ spec.Spec.name;
            Text.f2 delta;
            Text.f1 shadow;
            Text.f1 (Runner.piscs (bench spec))
          ] ))
      specs
  in
  let geo =
    Agg.geomean_speedup_pct (List.map (fun (d, _) -> d) data)
  in
  emit ~csv:"icache" ppf
    ~headers:
      [ "Benchmark"; "%slowdown 24KB I$"; "%I$ miss in shadow"; "PISCS" ]
    (List.map snd data @ [ [ "GEOMEAN"; Text.f2 geo; ""; "" ] ])

(* ------------------------------------------------------------------ dbb *)

let dbb ppf =
  heading ppf "DBB sizing (4): occupancy and entry-count sweep";
  let names = [ "h264ref"; "perlbench"; "mcf"; "wrf" ] in
  List.iter
    (fun (name, avg_occ, max_occ, full) ->
      Format.fprintf ppf
        "%-10s avg occupancy %.2f, max %d, full-stall cycles %d@." name
        avg_occ max_occ full)
    (rows ~id:"dbb-occ" ~label:Fun.id
       (fun name ->
         let spec = Option.get (Suites.find name) in
         let s =
           (Sim.summary (Lazy.force sim) spec ~input:1 ~width:4)
             .Runner.sum_exp
         in
         ( name,
           Stats.dbb_avg_occupancy s,
           s.Stats.dbb_max_occupancy,
           s.Stats.dbb_full_stalls ))
       names);
  Format.fprintf ppf "@.Entry-count sweep (h264ref, 4-wide):@.";
  List.iter
    (fun (entries, spd, full) ->
      Format.fprintf ppf
        "  %2d entries: speedup %+6.2f%%, full-stall cycles %d@." entries spd
        full)
    (rows ~id:"dbb-sweep"
       ~label:(Printf.sprintf "h264ref.e%d")
       (fun entries ->
         progress "dbb sweep %d entries" entries;
         let b = bench (Option.get (Suites.find "h264ref")) in
         let base_img = Runner.baseline_program b ~input:1 in
         let exp_img = Runner.experimental_program b ~input:1 in
         let config =
           { (Config.make ~width:4 ()) with Config.dbb_entries = entries }
         in
         let base = Machine.run ~config base_img in
         let exp = Machine.run ~config exp_img in
         let spd =
           100.0
           *. (Float.of_int base.Machine.stats.Stats.cycles
               /. Float.of_int (max 1 exp.Machine.stats.Stats.cycles)
              -. 1.0)
         in
         (entries, spd, exp.Machine.stats.Stats.dbb_full_stalls))
       [ 1; 2; 4; 8; 16; 32 ])

(* ------------------------------------------------------------ ablations *)

let ablation_hoist ppf =
  heading ppf "Ablation: hoist-depth cap (4-wide, avg over REF inputs)";
  let names = [ "h264ref"; "perlbench"; "omnetpp"; "wrf" ] in
  let caps = [ 2; 4; 8; 16; 32 ] in
  (* Every (benchmark, cap) cell is an independent prepare+simulate: fan
     them all out, then fold back into one row per benchmark. *)
  let cells =
    rows ~id:"abl-hoist"
      ~label:(fun (name, cap) -> Printf.sprintf "%s.cap%d" name cap)
      (fun (name, cap) ->
        progress "abl-hoist %s cap=%d" name cap;
        let spec = Option.get (Suites.find name) in
        let b = Sim.prepare ~max_hoist:cap (Lazy.force sim) spec in
        Text.f1 (Runner.avg_speedup b ~width:4))
      (List.concat_map
         (fun name -> List.map (fun cap -> (name, cap)) caps)
         names)
  in
  let ncaps = List.length caps in
  let data =
    List.mapi
      (fun i name -> name :: List.filteri (fun j _ -> j / ncaps = i) cells)
      names
  in
  emit ~csv:"abl_hoist" ppf
    ~headers:
      ("Benchmark" :: List.map (fun c -> Printf.sprintf "cap=%d" c) caps)
    data

let ablation_select ppf =
  heading ppf
    "Ablation: selection threshold (predictability - bias margin), SPEC \
     2006 Int geomean";
  let thresholds = [ 0.0; 0.02; 0.05; 0.10; 0.20 ] in
  let data =
    rows ~id:"abl-select"
      ~label:(Printf.sprintf "threshold%.2f")
      (fun th ->
        progress "abl-select threshold=%.2f" th;
        let speedups, pbcs =
          List.split
            (List.map
               (fun spec ->
                 let b = Sim.prepare ~threshold:th (Lazy.force sim) spec in
                 ( Runner.avg_speedup b ~width:4,
                   Vanguard.Select.pbc (Runner.selection b) ))
               Suites.int_2006)
        in
        [ Printf.sprintf "%.2f" th;
          Text.f2 (Agg.geomean_speedup_pct speedups);
          Text.f1 (Agg.mean pbcs)
        ])
      thresholds
  in
  emit ~csv:"abl_select" ppf
    ~headers:[ "threshold"; "geomean speedup%"; "mean PBC" ] data

(* The Figure 1 taxonomy, quantified: sweep the bias/predictability plane
   on a fixed kernel and compare the three strategies — plain branches,
   if-conversion (predication), and the decomposed-branch transformation.
   Expectation per the paper: predication wins where predictability is low,
   decomposition wins where predictability exceeds bias, and neither does
   much for highly biased branches (superblock territory). *)

let ablation_predication ppf =
  heading ppf
    "Ablation: predication vs decomposed branches across the      bias/predictability plane (4-wide)";
  let config = Config.four_wide in
  let cell ~rate ~pred =
    let spec =
      Spec.make
        ~name:(Printf.sprintf "plane-%.0f-%.0f" (rate *. 100.) (pred *. 100.))
        ~suite:Spec.Int_2006 ~seed:9000
        ~branch_classes:
          [ Spec.cls ~count:4 ~taken_rate:rate ~predictability:pred () ]
        ~loads_per_block:1.5 ~extra_alu:0 ~hoist_frac:0.85 ~cond_depth:2
        ~inner_n:128 ~reps:6 ~procs:1 ()
    in
    let program = Gen.generate ~input:1 spec in
    let baseline =
      let p = Bv_ir.Program.copy program in
      Bv_sched.Sched.schedule_program p;
      Bv_ir.Layout.program p
    in
    (* all shape-valid forward hammocks, regardless of profile *)
    let image = Bv_ir.Layout.program (Bv_ir.Program.copy program) in
    let profile =
      Bv_profile.Profile.collect ~predictor:(Kind.create Kind.Tournament)
        image
    in
    let sel =
      Vanguard.Select.select ~threshold:(-1.0) ~min_executed:1 ~profile
        program
    in
    let candidates = sel.Vanguard.Select.candidates in
    let vanguard =
      Bv_ir.Layout.program
        (Vanguard.Transform.apply ~exit_live:Gen.live_at_exit ~candidates
           program)
          .Vanguard.Transform.program
    in
    let null_sink = (program.Bv_ir.Program.mem_words - 1) * 8 in
    let predicated =
      Bv_ir.Layout.program
        (Vanguard.Predicate.apply ~null_sink ~candidates program)
          .Vanguard.Predicate.program
    in
    let asserted =
      Bv_ir.Layout.program
        (Vanguard.Assertconv.apply ~exit_live:Gen.live_at_exit
           ~candidates:(List.map (fun c -> (c, rate >= 0.5)) candidates)
           program)
          .Vanguard.Assertconv.program
    in
    let run img = Machine.run ~config img in
    let rbase = run baseline in
    let base = rbase.Machine.stats.Stats.cycles in
    let stat img =
      let r = run img in
      ( 100.0
        *. ((Float.of_int base /. Float.of_int r.Machine.stats.Stats.cycles)
           -. 1.0),
        100.0
        *. (Float.of_int r.Machine.stats.Stats.issued
            /. Float.of_int rbase.Machine.stats.Stats.issued
           -. 1.0) )
    in
    (stat predicated, stat vanguard, stat asserted)
  in
  let grid =
    List.concat_map
      (fun rate ->
        List.filter_map
          (fun pred ->
            if pred +. 0.001 < Float.max rate (1.0 -. rate) then None
            else Some (rate, pred))
          [ 0.55; 0.80; 0.97 ])
      [ 0.55; 0.70; 0.95 ]
  in
  let data =
    rows ~id:"abl-pred"
      ~label:(fun (rate, pred) ->
        Printf.sprintf "bias%.2f.pred%.2f" rate pred)
      (fun (rate, pred) ->
        progress "abl-pred bias=%.2f pred=%.2f" rate pred;
        let (p, pi), (v, vi), (a, _) = cell ~rate ~pred in
        let winner =
          if Float.max (Float.max p v) a < 1.0 then "neither"
          else if p > v && p > a then "predication"
          else if a > v then "superblock"
          else "decomposition"
        in
        [ Printf.sprintf "%.2f" (Float.max rate (1.0 -. rate));
          Printf.sprintf "%.2f" pred;
          Text.f1 p;
          Text.f1 v;
          Text.f1 a;
          winner;
          Text.f1 pi;
          Text.f1 vi
        ])
      grid
  in
  emit ~csv:"abl_pred" ppf
    ~headers:
      [ "bias"; "predictability"; "predication%"; "decomposition%";
        "superblock%"; "winner"; "pred +issued%"; "decomp +issued%"
      ]
    data;
  Format.fprintf ppf
    "On raw cycles the in-order favours decomposition broadly (mispredict \
     cost is symmetric with the baseline), while superblock straightening \
     catches up only at high bias.@.The issued-instruction columns show the \
     efficiency split of 6.2: decomposition's wrong-path issue grows as \
     predictability falls,@.while predication's overhead is flat - the \
     paper's reason to reserve it for unpredictable hammocks.@."

(* Runahead interaction: the paper notes its machine employs neither
   Runahead nor iCFP (5.1). This extension asks how much of the
   decomposition's benefit survives when the hardware already prefetches
   under stalls: a prefetch-under-stall (runahead-lite) mode crossed with
   the transformation on the memory-bound benchmarks. *)

let runahead ppf =
  heading ppf
    "Extension: runahead-style prefetch-under-stall x decomposition      (4-wide, memory-bound benchmarks)";
  let names = [ "mcf"; "omnetpp"; "soplex"; "milc" ] in
  let data =
    rows ~id:"runahead" ~label:Fun.id
      (fun name ->
        progress "runahead %s" name;
        let b = bench (Option.get (Suites.find name)) in
        let base_img = Runner.baseline_program b ~input:1 in
        let exp_img = Runner.experimental_program b ~input:1 in
        let cycles ~ra img =
          let config = { (Config.make ~width:4 ()) with Config.runahead = ra } in
          (Machine.run ~config img).Machine.stats.Stats.cycles
        in
        let base = cycles ~ra:false base_img in
        let pct c = Text.f1 (100.0 *. ((Float.of_int base /. Float.of_int c) -. 1.0)) in
        [ name;
          pct (cycles ~ra:false exp_img);
          pct (cycles ~ra:true base_img);
          pct (cycles ~ra:true exp_img)
        ])
      names
  in
  emit ~csv:"runahead" ppf
    ~headers:
      [ "Benchmark"; "decompose%"; "runahead%"; "runahead+decompose%" ]
    data;
  Format.fprintf ppf "%s@."
    (normalize
       "Speedups are relative to the plain baseline. Caveat: the synthetic \
        kernels' irregular accesses are arithmetic (LCG) chases, so their \
        addresses are computable ahead and runahead approaches an oracle \
        prefetcher here - treat its column as an upper bound. The stable \
        finding is the interaction: under strong prefetching the \
        decomposition's remaining edge is the non-memory part of its win \
        (covering the resolution stall itself), consistent with the paper \
        citing Runahead/iCFP as orthogonal techniques.")

(* -------------------------------------------------------------- registry *)

let all =
  [ ("table1", "machine configuration (Table 1)", table1);
    ("fig2", "predictability vs bias, SPEC 2006 Int (Figure 2)", fig2);
    ("fig3", "predictability vs bias, SPEC 2006 FP (Figure 3)", fig3);
    ("table2", "per-benchmark metrics (Table 2)", table2);
    ("fig8", "SPEC 2006 Int speedup, avg inputs (Figure 8)", fig8);
    ("fig9", "SPEC 2006 Int speedup, best input (Figure 9)", fig9);
    ("fig10", "SPEC 2000 Int speedup, avg inputs (Figure 10)", fig10);
    ("fig11", "SPEC 2000 Int speedup, best input (Figure 11)", fig11);
    ("fig12", "SPEC 2006 FP speedup, avg inputs (Figure 12)", fig12);
    ("fig13", "SPEC 2000 FP speedup, avg inputs (Figure 13)", fig13);
    ("fig14", "issued-instruction increase (Figure 14)", fig14);
    ("sens", "branch predictor sensitivity (5.3)", sensitivity);
    ("icache", "I$ capacity and code size (6.1)", icache);
    ("dbb", "DBB occupancy and sizing (4)", dbb);
    ("abl-hoist", "ablation: hoist cap", ablation_hoist);
    ("abl-select", "ablation: selection threshold", ablation_select);
    ( "abl-pred",
      "ablation: predication vs superblock vs decomposition (Figure 1)",
      ablation_predication );
    ("runahead", "extension: prefetch-under-stall x decomposition", runahead)
  ]

let find id =
  List.find_map (fun (i, _, f) -> if String.equal i id then Some f else None)
    all
