(** Table 2 metric computations for a prepared benchmark. *)

open Bv_pipeline

val alpbb : Bv_ir.Program.t -> float
(** Average loads per basic block (static, over non-empty blocks). *)

val pdih : Runner.bench -> float
(** Average percent of dynamic instructions hoisted above a converted
    branch: per converted site, the TRAIN-profile execution count times the
    expected hoisted-prefix length for the direction taken, over total
    profiled instructions. *)

val phi : Runner.bench -> float
(** Average percent of successor-block instructions hoistable across
    converted sites. *)

val aspcb : Runner.bench -> base:Machine.result -> float
(** Average stall cycles per converted branch: the dynamic critical path
    of the sunk condition slice, with load latency set to the benchmark's
    measured average memory latency (cond-chase workloads resolve on cache
    misses — the paper's high-ASPCB rows). *)

val avg_load_latency : Machine.result -> float
(** Effective average data-load latency from the run's hierarchy stats. *)

type row =
  { name : string;
    spd : float;
    pbc : float;
    pdih : float;
    alpbb : float;
    aspcb : float;
    phi : float;
    mppki : float;
    piscs : float
  }

val table2_row : ?spd:float -> Runner.bench -> row
(** Computes all Table 2 columns at the paper's 4-wide configuration,
    averaged over REF inputs. Pass [spd] when the caller already holds
    the average speedup (e.g. from {!Sim.avg_speedup}'s cached summary
    nodes) to avoid recomputing it. *)

val row_to_json : row -> Bv_obs.Json.t
(** The row keyed by its (lowercase) Table 2 column names. *)
