open Bv_bpred
open Bv_cache
open Bv_pipeline
open Bv_workloads

type t =
  { mutable jobs : int;
    cache_dir : string option;
    dag : Dag.t;
    lab : (string, Runner.bench) Hashtbl.t
  }

let create ?(jobs = 1) ?cache_dir () =
  { jobs = max 1 jobs;
    cache_dir;
    dag = Dag.create ?dir:cache_dir ();
    lab = Hashtbl.create 64
  }

let default =
  lazy
    (let cache_dir =
       match Sys.getenv_opt "BV_CACHE" with
       | Some "" | Some "0" | Some "none" -> None
       | Some dir -> Some dir
       | None -> Some ".bv-cache"
     in
     create ~jobs:(Pool.jobs_env ()) ?cache_dir ())

let the () = Lazy.force default

let jobs t = t.jobs
let set_jobs t jobs = t.jobs <- max 1 jobs
let cache_dir t = t.cache_dir
let counters t = Dag.counters t.dag
let counters_json t = Dag.counters_json t.dag

(* ---- pipeline nodes --------------------------------------------------- *)

(* The compile half of the pipeline: profile → select → transform, keyed
   by everything [Runner.prepare] depends on. The node's value is the
   pure {!Runner.artifact}; live benches (with their memo tables) are
   interned in [lab] under the node key, so every caller of an equally
   parameterised prepare shares one bench and its simulation memo. *)
let prepare_node ?(predictor = Kind.Tournament) ?(threshold = 0.05) ?max_hoist
    spec =
  Dag.node ~kind:"prepare" ~label:spec.Spec.name
    ~inputs:
      (spec, Kind.name predictor, threshold, max_hoist, Runner.scale ())
    (fun () ->
      Runner.export (Runner.prepare ~predictor ~threshold ?max_hoist spec))

let prepare ?predictor ?threshold ?max_hoist t spec =
  let n = prepare_node ?predictor ?threshold ?max_hoist spec in
  let k = Dag.key t.dag n in
  match Hashtbl.find_opt t.lab k with
  | Some b -> b
  | None ->
    let b = Runner.import (Dag.eval t.dag n) in
    Hashtbl.replace t.lab k b;
    b

let bench t spec = prepare t spec

(* ---- simulation ------------------------------------------------------- *)

let simulate ?predictor ?cache (_ : t) b ~input ~width =
  Runner.simulate ?predictor ?cache b ~input ~width

(* One paired timing run, persisted as its marshal-safe summary. The
   prepare node's key rides along as a dependency, so a pipeline change
   that invalidates the compile half invalidates exactly this cone. *)
let summary ?(predictor = Kind.Tournament) ?(cache = Hierarchy.default_config)
    t spec ~input ~width =
  let pn = prepare_node spec in
  let n =
    Dag.node ~kind:"sim"
      ~label:
        (Printf.sprintf "%s.i%d.w%d.%s" spec.Spec.name input width
           (Kind.name predictor))
      ~deps:[ Dag.key t.dag pn ]
      ~inputs:(input, width, Kind.name predictor, cache, Runner.scale ())
      (fun () ->
        Runner.summarize
          (Runner.simulate ~predictor ~cache (bench t spec) ~input ~width))
  in
  Dag.eval t.dag n

let avg_speedup ?predictor ?cache t spec ~width =
  Agg.mean
    (List.map
       (fun input ->
         (summary ?predictor ?cache t spec ~input ~width)
           .Runner.sum_speedup_pct)
       (Runner.input_indices ()))

let best_speedup ?predictor ?cache t spec ~width =
  Agg.max_or 0.0
    (List.map
       (fun input ->
         (summary ?predictor ?cache t spec ~input ~width)
           .Runner.sum_speedup_pct)
       (Runner.input_indices ()))

(* Sampled runs persist only the marshal-safe estimates; the params ride
   in the key so changing the sampling regime misses cleanly. *)
let sampled ?(predictor = Kind.Tournament)
    ?(cache = Hierarchy.default_config)
    ?(params = Machine.default_sample_params) t spec ~input ~width =
  let pn = prepare_node spec in
  let n =
    Dag.node ~kind:"sample"
      ~label:
        (Printf.sprintf "%s.i%d.w%d.%s.p%d" spec.Spec.name input width
           (Kind.name predictor) params.Machine.sp_period)
      ~deps:[ Dag.key t.dag pn ]
      ~inputs:
        ( input,
          width,
          Kind.name predictor,
          cache,
          ( params.Machine.sp_period,
            params.Machine.sp_detail,
            params.Machine.sp_warmup ),
          Runner.scale () )
      (fun () ->
        Runner.summarize_sampled
          (Runner.simulate_sampled ~predictor ~cache ~params (bench t spec)
             ~input ~width))
  in
  Dag.eval t.dag n

(* A passed byte-identity check is itself a cacheable fact: the node
   only ever stores a witness, never a divergence (those raise). *)
let compiled_check ?(predictor = Kind.Tournament)
    ?(cache = Hierarchy.default_config) t spec ~input ~width =
  let pn = prepare_node spec in
  let n =
    Dag.node ~kind:"compiled"
      ~label:
        (Printf.sprintf "%s.i%d.w%d.%s" spec.Spec.name input width
           (Kind.name predictor))
      ~deps:[ Dag.key t.dag pn ]
      ~inputs:(input, width, Kind.name predictor, cache, Runner.scale ())
      (fun () ->
        Runner.compiled_identity ~predictor ~cache (bench t spec) ~input
          ~width)
  in
  Dag.eval t.dag n

(* Accounted runs profile-prepare with the same predictor they simulate
   with (the report pipeline's convention). *)
let accounted_node ~predictor ~cache t spec ~input ~width =
  let pn = prepare_node ~predictor spec in
  Dag.node ~kind:"account"
    ~label:
      (Printf.sprintf "%s.i%d.w%d.%s" spec.Spec.name input width
         (Kind.name predictor))
    ~deps:[ Dag.key t.dag pn ]
    ~inputs:(input, width, Kind.name predictor, cache, Runner.scale ())
    (fun () ->
      Runner.simulate_accounted ~predictor ~cache
        (prepare ~predictor t spec)
        ~input ~width)

let accounted ?(predictor = Kind.Tournament)
    ?(cache = Hierarchy.default_config) t spec ~input ~width =
  Dag.eval t.dag (accounted_node ~predictor ~cache t spec ~input ~width)

let accounted_list ?(predictor = Kind.Tournament)
    ?(cache = Hierarchy.default_config) t spec ~inputs ~width =
  Dag.eval_list ~jobs:t.jobs t.dag
    (List.map
       (fun input -> accounted_node ~predictor ~cache t spec ~input ~width)
       inputs)

(* ---- fan-out ---------------------------------------------------------- *)

let dag_map t ~kind ?label f items =
  let nodes =
    List.map
      (fun item ->
        Dag.node ~kind
          ?label:(Option.map (fun l -> l item) label)
          ~inputs:(kind, item, Runner.scale ())
          (fun () -> f item))
      items
  in
  Dag.eval_list ~jobs:t.jobs t.dag nodes

let map t f items = Pool.map ~jobs:t.jobs f items
