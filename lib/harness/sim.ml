open Bv_bpred
open Bv_workloads

(* Bump whenever the profile/select/transform pipeline changes meaning:
   cached artifacts from older formats are then ignored. *)
let cache_format = 1

type t =
  { mutable jobs : int;
    mutable cache_dir : string option;
    lab : (string, Runner.bench) Hashtbl.t
  }

let create ?(jobs = 1) ?cache_dir () =
  { jobs = max 1 jobs; cache_dir; lab = Hashtbl.create 64 }

let default =
  lazy
    (let cache_dir =
       match Sys.getenv_opt "BV_CACHE" with
       | Some "" | Some "0" | Some "none" -> None
       | Some dir -> Some dir
       | None -> Some ".bv-cache"
     in
     { jobs = Pool.jobs_env (); cache_dir; lab = Hashtbl.create 64 })

let the () = Lazy.force default

let jobs t = t.jobs
let set_jobs t jobs = t.jobs <- max 1 jobs
let cache_dir t = t.cache_dir

(* ---- artifact cache --------------------------------------------------- *)

(* Content-hashed key: everything [Runner.prepare] depends on. Spec.t is
   pure data, so its marshalled bytes are a stable fingerprint. *)
let artifact_key ~predictor ~threshold ~max_hoist spec =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( spec,
            Kind.name predictor,
            threshold,
            max_hoist,
            Runner.scale (),
            cache_format,
            Sys.ocaml_version )
          []))

let load_artifact path =
  if Sys.file_exists path then
    try
      In_channel.with_open_bin path (fun ic ->
          Some (Runner.import (Marshal.from_channel ic)))
    with _ -> None
  else None

let store_artifact dir path b =
  try
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    (* Write-then-rename so concurrent workers never read a torn file. *)
    let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
    Out_channel.with_open_bin tmp (fun oc ->
        Marshal.to_channel oc (Runner.export b) []);
    Sys.rename tmp path
  with _ -> ()

let prepare ?(predictor = Kind.Tournament) ?(threshold = 0.05) ?max_hoist t
    spec =
  match t.cache_dir with
  | None -> Runner.prepare ~predictor ~threshold ?max_hoist spec
  | Some dir ->
    let key = artifact_key ~predictor ~threshold ~max_hoist spec in
    let path = Filename.concat dir (key ^ ".bench") in
    (match load_artifact path with
    | Some b -> b
    | None ->
      let b = Runner.prepare ~predictor ~threshold ?max_hoist spec in
      store_artifact dir path b;
      b)

let bench t spec =
  match Hashtbl.find_opt t.lab spec.Spec.name with
  | Some b -> b
  | None ->
    let b = prepare t spec in
    Hashtbl.replace t.lab spec.Spec.name b;
    b

(* ---- simulation ------------------------------------------------------- *)

let simulate ?predictor ?cache (_ : t) b ~input ~width =
  Runner.simulate ?predictor ?cache b ~input ~width

let avg_speedup ?predictor ?cache (_ : t) b ~width =
  Runner.avg_speedup ?predictor ?cache b ~width

let best_speedup ?predictor ?cache (_ : t) b ~width =
  Runner.best_speedup ?predictor ?cache b ~width

let map t f items = Pool.map ~jobs:t.jobs f items
