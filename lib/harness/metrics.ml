open Bv_cache
open Bv_ir
open Bv_isa
open Bv_pipeline
open Bv_workloads

let alpbb program =
  let blocks = ref 0 and loads = ref 0 in
  List.iter
    (fun p ->
      List.iter
        (fun b ->
          if b.Block.body <> [] then begin
            incr blocks;
            loads := !loads + Block.load_count b
          end)
        p.Proc.blocks)
    program.Program.procs;
  if !blocks = 0 then 0.0 else Float.of_int !loads /. Float.of_int !blocks

let converted_reports bench =
  (Runner.transform bench).Vanguard.Transform.reports

let site_profile bench id = Bv_profile.Profile.find (Runner.profile bench) id

let pdih bench =
  let profile = Runner.profile bench in
  let hoisted =
    List.fold_left
      (fun acc r ->
        match site_profile bench r.Vanguard.Transform.site with
        | None -> acc
        | Some s ->
          let t = Bv_profile.Profile.taken_rate s in
          acc
          +. Float.of_int s.Bv_profile.Profile.executed
             *. ((t *. Float.of_int r.Vanguard.Transform.hoisted_taken)
                +. (1.0 -. t)
                   *. Float.of_int r.Vanguard.Transform.hoisted_not_taken))
      0.0 (converted_reports bench)
  in
  if profile.Bv_profile.Profile.instr_count = 0 then 0.0
  else 100.0 *. hoisted /. Float.of_int profile.Bv_profile.Profile.instr_count

let phi bench =
  Agg.mean (List.map Vanguard.Transform.phi (converted_reports bench))

let avg_load_latency (result : Machine.result) =
  let h = result.Machine.hierarchy in
  let cfg = Hierarchy.config h in
  let srate c =
    let s = Sa_cache.stats c in
    if s.Sa_cache.accesses = 0 then 0.0
    else
      Float.of_int s.Sa_cache.misses /. Float.of_int s.Sa_cache.accesses
  in
  let m1 = srate (Hierarchy.l1d h) in
  let m2 = srate (Hierarchy.l2 h) in
  let m3 = srate (Hierarchy.l3 h) in
  Float.of_int cfg.Hierarchy.l1_latency
  +. (m1
      *. (Float.of_int cfg.Hierarchy.l2_latency
          +. (m2
              *. (Float.of_int cfg.Hierarchy.l3_latency
                  +. (m3 *. Float.of_int cfg.Hierarchy.mem_latency)))))

(* The dynamic critical path of each converted site's condition slice: its
   static dependence height with load latency set to the benchmark's
   measured average memory latency — i.e. how many cycles the branch's
   resolution lags its inputs (in an in-order, exactly the head-of-line
   stall it induces when nothing overlaps it). *)
let aspcb bench ~base =
  let load_lat = avg_load_latency base in
  let latency i =
    match i with
    | Instr.Load _ -> Float.to_int (Float.round load_lat)
    | _ -> Bv_sched.Sched.default_latency i
  in
  let cycles =
    List.map
      (fun r ->
        Float.of_int
          (Bv_sched.Sched.critical_path_cycles ~latency
             r.Vanguard.Transform.slice_instrs)
        +. 1.0)
      (converted_reports bench)
  in
  Agg.mean cycles

type row =
  { name : string;
    spd : float;
    pbc : float;
    pdih : float;
    alpbb : float;
    aspcb : float;
    phi : float;
    mppki : float;
    piscs : float
  }

let table2_row ?spd bench =
  let spec = Runner.spec bench in
  let spd =
    match spd with
    | Some spd -> spd
    | None -> Runner.avg_speedup bench ~width:4
  in
  let pair = Runner.simulate bench ~input:1 ~width:4 in
  let base = pair.Runner.base in
  { name = spec.Spec.name;
    spd;
    pbc = Vanguard.Select.pbc (Runner.selection bench);
    pdih = pdih bench;
    alpbb = alpbb (Gen.generate ~input:1 spec);
    aspcb = aspcb bench ~base;
    phi = phi bench;
    mppki = Stats.mppki base.Machine.stats;
    piscs = Runner.piscs bench
  }

let row_to_json r =
  let open Bv_obs.Json in
  Obj
    [ ("name", String r.name);
      ("spd", float r.spd);
      ("pbc", float r.pbc);
      ("pdih", float r.pdih);
      ("alpbb", float r.alpbb);
      ("aspcb", float r.aspcb);
      ("phi", float r.phi);
      ("mppki", float r.mppki);
      ("piscs", float r.piscs)
    ]
