(** Bench-trajectory regression analysis.

    Every bench run appends a [results/bench_<timestamp>.json] artifact
    (see [bench/main.ml]); this module folds that trajectory into a
    per-workload verdict — the latest run's simulator throughput
    (sim cycles/s) against the median of its trailing history. The
    ["bench trend"] subcommand renders the verdicts and CI fails on a
    regression beyond the threshold once the trajectory is deep enough
    to gate. *)

type sample =
  { workload : string;
        (** trend key: the row's workload name, suffixed with ["/mode"]
            for non-default execution modes (e.g. ["int_w4/compiled"]).
            Rows without a ["mode"] field — artifacts predating it — are
            interpreted runs and keep the bare name, so their trajectory
            stays continuous. Modes never compare against each other. *)
    cycles_per_sec : float;
    mips : float
  }

type run =
  { file : string;
    generated_at : string;  (** ISO-8601; [""] when absent *)
    samples : sample list  (** the artifact's "throughput" rows *)
  }

val load_run : string -> (run, string) result
(** Parse one bench artifact (any [schema_version] — only the
    ["throughput"] section is read). *)

val history : dir:string -> run list
(** All parseable [bench_*.json] artifacts under [dir] with a non-empty
    throughput section, in chronological (filename) order. Unreadable or
    malformed files are skipped; a missing directory yields []. *)

type verdict =
  { v_workload : string;
    v_latest : float;  (** sim cycles/s of the run under test *)
    v_median : float;  (** trailing median; 0 when no history *)
    v_delta_pct : float;  (** 100 * (latest / median - 1) *)
    v_history : int;  (** history runs carrying this workload *)
    v_regressed : bool  (** delta below [-threshold_pct], with history *)
  }

type summary =
  { s_threshold_pct : float;
    s_runs : int;  (** history runs folded *)
    s_gating : bool;
        (** at least [min_history] runs: regressions may fail the build
            (otherwise warn-only — the first run has nothing to gate
            against) *)
    s_verdicts : verdict list
  }

val analyze :
  ?threshold_pct:float -> ?min_history:int -> history:run list -> run -> summary
(** Compare [run] against [history] ([threshold_pct] defaults to 10,
    [min_history] to 2). A workload absent from the history gets
    [v_history = 0] and never regresses. *)

val regressions : summary -> verdict list

val to_json : latest:run -> summary -> Bv_obs.Json.t
(** Machine-readable verdicts, stamped with
    {!Bv_obs.Json.schema_version}. *)
