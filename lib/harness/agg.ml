let geomean = function
  | [] -> 1.0
  | xs ->
    let n = Float.of_int (List.length xs) in
    Float.exp (List.fold_left (fun a x -> a +. Float.log x) 0.0 xs /. n)

let geomean_speedup_pct pcts =
  100.0 *. (geomean (List.map (fun p -> 1.0 +. (p /. 100.0)) pcts) -. 1.0)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. Float.of_int (List.length xs)

let max_or d = function [] -> d | xs -> List.fold_left Float.max neg_infinity xs

let median = function
  | [] -> 0.0
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n land 1 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0
