(* Fold the accumulating results/bench_*.json trajectory into a
   regression verdict: each workload's latest sim-cycles/s against the
   median of its trailing history. The bench CLI ("bench trend") renders
   the verdicts; CI fails on a confirmed regression. *)

open Bv_obs

type sample =
  { workload : string;
    cycles_per_sec : float;
    mips : float
  }

type run =
  { file : string;
    generated_at : string;
    samples : sample list
  }

let num = function
  | Json.Int i -> Some (Float.of_int i)
  | Json.Float f -> Some f
  | _ -> None

let sample_of_json j =
  match (Json.member "workload" j, Json.member "sim_cycles_per_sec" j) with
  | Some (Json.String workload), Some v -> (
    match num v with
    | Some cycles_per_sec ->
      (* Execution modes never mix in a trajectory: non-default modes get
         a "workload/mode" key. Rows without a mode predate the field and
         were interpreted runs, so plain "interpreted" keeps their
         trajectory continuous. *)
      let workload =
        match Json.member "mode" j with
        | Some (Json.String mode) when mode <> "interpreted" ->
          workload ^ "/" ^ mode
        | _ -> workload
      in
      Some
        { workload;
          cycles_per_sec;
          mips =
            (match Option.bind (Json.member "sim_mips" j) num with
            | Some m -> m
            | None -> 0.0)
        }
    | None -> None)
  | _ -> None

let load_run file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error e -> Error e
  | text -> (
    match Json.of_string text with
    | Error e -> Error (Printf.sprintf "%s: %s" file e)
    | Ok doc ->
      let samples =
        List.filter_map sample_of_json
          (Json.to_list
             (Option.value (Json.member "throughput" doc) ~default:Json.Null))
      in
      Ok
        { file;
          generated_at =
            (match Json.member "generated_at" doc with
            | Some (Json.String s) -> s
            | _ -> "");
          samples
        })

(* Trajectory files in results/: bench_<timestamp>.json, so ascending
   filename order is chronological order. *)
let history ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.sort compare names;
    Array.to_list names
    |> List.filter (fun n ->
           String.length n > 6
           && String.sub n 0 6 = "bench_"
           && Filename.check_suffix n ".json")
    |> List.filter_map (fun n ->
           Result.to_option (load_run (Filename.concat dir n)))
    |> List.filter (fun r -> r.samples <> [])

type verdict =
  { v_workload : string;
    v_latest : float;  (* sim cycles/s of the run under test *)
    v_median : float;  (* trailing median; 0 when no history *)
    v_delta_pct : float;  (* 100 * (latest / median - 1) *)
    v_history : int;  (* history runs carrying this workload *)
    v_regressed : bool
  }

type summary =
  { s_threshold_pct : float;
    s_runs : int;  (* history runs folded *)
    s_gating : bool;  (* enough history for a regression to fail *)
    s_verdicts : verdict list
  }

let analyze ?(threshold_pct = 10.0) ?(min_history = 2) ~history:hist latest =
  let past workload =
    List.filter_map
      (fun r ->
        List.find_opt (fun s -> s.workload = workload) r.samples
        |> Option.map (fun s -> s.cycles_per_sec))
      hist
  in
  let verdicts =
    List.map
      (fun s ->
        let points = past s.workload in
        let n = List.length points in
        let median = Agg.median points in
        let delta =
          if median > 0.0 then 100.0 *. (s.cycles_per_sec /. median -. 1.0)
          else 0.0
        in
        { v_workload = s.workload;
          v_latest = s.cycles_per_sec;
          v_median = median;
          v_delta_pct = delta;
          v_history = n;
          v_regressed = n > 0 && delta < -.threshold_pct
        })
      latest.samples
  in
  { s_threshold_pct = threshold_pct;
    s_runs = List.length hist;
    (* warn-only until the trajectory has at least [min_history] runs:
       a single prior point (often a different host) cannot gate *)
    s_gating = List.length hist >= min_history;
    s_verdicts = verdicts
  }

let regressions summary = List.filter (fun v -> v.v_regressed) summary.s_verdicts

let to_json ~latest summary =
  let open Json in
  Obj
    [ ("schema_version", Int schema_version);
      ("latest", String latest.file);
      ("generated_at", String latest.generated_at);
      ("threshold_pct", float summary.s_threshold_pct);
      ("history_runs", Int summary.s_runs);
      ("gating", Bool summary.s_gating);
      ( "workloads",
        List
          (List.map
             (fun v ->
               Obj
                 [ ("workload", String v.v_workload);
                   ("sim_cycles_per_sec", float v.v_latest);
                   ("trailing_median", float v.v_median);
                   ("delta_pct", float v.v_delta_pct);
                   ("history", Int v.v_history);
                   ("regressed", Bool v.v_regressed)
                 ])
             summary.s_verdicts) )
    ]
