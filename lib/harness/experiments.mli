(** Reproduction harness: one entry point per table/figure of the paper,
    plus the §5.3/§6 studies and two design-choice ablations. Each
    experiment prints its rows to the given formatter (progress lines go to
    stderr, so output can be captured cleanly).

    Benchmarks are prepared and simulated lazily and memoised, so
    experiments that share runs (e.g. Table 2 and Figure 8 both need the
    4-wide REF runs) do not repeat work. *)

val bench : Bv_workloads.Spec.t -> Runner.bench
(** The lab's memoised prepared benchmark (tournament TRAIN profile,
    default selection threshold). *)

val drain_tables : unit -> (string * string list * string list list) list
(** The (name, headers, rows) of every table emitted since the last
    drain, in emission order — the structured counterpart of the printed
    output, consumed by the bench harness's JSON trajectory artifact and
    [vanguard_cli experiment --json]. *)

val table_to_json : string * string list * string list list -> Bv_obs.Json.t

val table1 : Format.formatter -> unit
val fig2 : Format.formatter -> unit
val fig3 : Format.formatter -> unit
val table2 : Format.formatter -> unit
val fig8 : Format.formatter -> unit
val fig9 : Format.formatter -> unit
val fig10 : Format.formatter -> unit
val fig11 : Format.formatter -> unit
val fig12 : Format.formatter -> unit
val fig13 : Format.formatter -> unit
val fig14 : Format.formatter -> unit
val sensitivity : Format.formatter -> unit
val icache : Format.formatter -> unit
val dbb : Format.formatter -> unit
val ablation_hoist : Format.formatter -> unit
val ablation_select : Format.formatter -> unit

val runahead : Format.formatter -> unit
(** Extension: a runahead-lite (prefetch-under-stall) machine mode crossed
    with the transformation on memory-bound benchmarks — probing how much
    of the decomposition's MLP benefit hardware prefetching subsumes. *)

val ablation_predication : Format.formatter -> unit
(** Figure 1's taxonomy quantified: baseline vs if-conversion vs
    decomposition over a bias/predictability sweep. *)

val all : (string * string * (Format.formatter -> unit)) list
(** (id, description, run) for every experiment, in paper order. *)

val find : string -> (Format.formatter -> unit) option
