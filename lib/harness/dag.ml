(* Bump whenever any cached stage changes meaning — pipeline semantics,
   node payload types, experiment row formulas: cached values from older
   formats then miss instead of lying. (Format 1 was the pre-DAG
   [.bench] artifact cache; format 3 added the block-compiled fast path
   and the sample/compiled node kinds.) *)
let code_format = 3

type counters =
  { hits : int;
    misses : int;
    stolen : int
  }

type mut_counters =
  { mutable m_hits : int;
    mutable m_misses : int;
    mutable m_stolen : int
  }

type t =
  { dir : string option;
    format : int;
    c : mut_counters;
    memo : (string, Obj.t) Hashtbl.t
  }

type 'a node =
  { n_kind : string;
    n_label : string;
    n_inputs : string;  (* fingerprint of the inputs value *)
    n_deps : string list;
    n_compute : unit -> 'a
  }

let fingerprint v = Digest.to_hex (Digest.string (Marshal.to_string v []))

let node ~kind ?label ?(deps = []) ~inputs compute =
  { n_kind = kind;
    n_label = (match label with Some l -> l | None -> kind);
    n_inputs = fingerprint inputs;
    n_deps = deps;
    n_compute = compute
  }

let create ?(format = code_format) ?dir () =
  { dir;
    format;
    c = { m_hits = 0; m_misses = 0; m_stolen = 0 };
    memo = Hashtbl.create 64
  }

(* The key chains dependency keys, so invalidation propagates: change one
   node's inputs and exactly its downstream cone gets new keys. The
   compiler version rides along because marshalled payloads are not
   stable across it. *)
let key t n =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (t.format, Sys.ocaml_version, n.n_kind, n.n_inputs, n.n_deps)
          []))

type provenance = Hit | Miss | Stolen

let count t = function
  | Hit -> t.c.m_hits <- t.c.m_hits + 1
  | Miss -> t.c.m_misses <- t.c.m_misses + 1
  | Stolen -> t.c.m_stolen <- t.c.m_stolen + 1

let counters t = { hits = t.c.m_hits; misses = t.c.m_misses; stolen = t.c.m_stolen }

let counters_json t =
  let open Bv_obs.Json in
  Obj
    [ ("hits", Int t.c.m_hits);
      ("misses", Int t.c.m_misses);
      ("stolen", Int t.c.m_stolen);
      ("nodes", Int (t.c.m_hits + t.c.m_misses + t.c.m_stolen))
    ]

(* ------------------------------------------------------------- the store *)

let node_path dir k = Filename.concat dir (k ^ ".node")
let meta_path dir k = Filename.concat dir (k ^ ".meta")
let claim_path dir k = Filename.concat dir (k ^ ".claim")
let log_path dir = Filename.concat dir "dag.log"

let rec ensure_dir d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    ensure_dir (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let env_seconds name default =
  match Sys.getenv_opt name with
  | Some s -> ( try float_of_string (String.trim s) with _ -> default)
  | None -> default

(* How long an awaiting process waits for a claimed node before giving up
   (the owner may legitimately be simulating for a long time). *)
let wait_budget = lazy (env_seconds "BV_DAG_WAIT" 3600.0)

(* Age past which a claim from another host is presumed abandoned (pid
   liveness is only checkable on this host). *)
let claim_ttl = lazy (env_seconds "BV_DAG_CLAIM_TTL" 900.0)

let poll_interval = 0.05

let iso8601 time =
  let tm = Unix.gmtime time in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* One O_APPEND write per event: short lines are atomic, so concurrent
   evaluators interleave whole records. This is the provenance [explain]
   replays. *)
let log_event dir event k ~kind ~label =
  try
    let fd =
      Unix.openfile (log_path dir)
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
        0o644
    in
    let line =
      Printf.sprintf "%s pid=%d %s %s %s %s\n"
        (iso8601 (Unix.time ()))
        (Unix.getpid ()) event k kind label
    in
    ignore (Unix.write_substring fd line 0 (String.length line));
    Unix.close fd
  with Unix.Unix_error _ | Sys_error _ -> ()

let load_value dir k =
  let path = node_path dir k in
  if Sys.file_exists path then (
    match In_channel.with_open_bin path Marshal.from_channel with
    | v ->
      (* touch: gc prunes least-recently-used first *)
      (try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ());
      Some v
    | exception _ -> None)
  else None

let store_value t dir k n v ~seconds =
  try
    ensure_dir dir;
    let tmp = Printf.sprintf "%s.tmp.%d" (node_path dir k) (Unix.getpid ()) in
    Out_channel.with_open_bin tmp (fun oc -> Marshal.to_channel oc v []);
    (* rename is atomic: concurrent readers never see a torn value *)
    Sys.rename tmp (node_path dir k);
    let meta =
      let open Bv_obs.Json in
      Obj
        [ ("key", String k);
          ("kind", String n.n_kind);
          ("label", String n.n_label);
          ("format", Int t.format);
          ("ocaml", String Sys.ocaml_version);
          ("inputs", String n.n_inputs);
          ("deps", List (List.map (fun d -> String d) n.n_deps));
          ("created_at", String (iso8601 (Unix.time ())));
          ("pid", Int (Unix.getpid ()));
          ("compute_seconds", float seconds)
        ]
    in
    let mtmp = Printf.sprintf "%s.tmp.%d" (meta_path dir k) (Unix.getpid ()) in
    Out_channel.with_open_text mtmp (fun oc ->
        Bv_obs.Json.to_channel oc meta);
    Sys.rename mtmp (meta_path dir k)
  with _ -> ()

(* ----------------------------------------------------------- claim files *)

let try_claim dir k =
  ensure_dir dir;
  match
    Unix.openfile (claim_path dir k)
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ]
      0o644
  with
  | fd ->
    let line =
      Printf.sprintf "%d %s %.0f\n" (Unix.getpid ()) (Unix.gethostname ())
        (Unix.time ())
    in
    ignore (Unix.write_substring fd line 0 (String.length line));
    Unix.close fd;
    true
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> false
  (* A store that cannot take claims (permissions, read-only mount)
     degrades to uncoordinated-but-correct: compute locally. *)
  | exception Unix.Unix_error _ -> true

let release_claim dir k =
  try Sys.remove (claim_path dir k) with Sys_error _ -> ()

let claim_info dir k =
  match
    In_channel.with_open_text (claim_path dir k) In_channel.input_all
  with
  | exception Sys_error _ -> None (* vanished: owner finished or crashed *)
  | text -> (
    match String.split_on_char ' ' (String.trim text) with
    | pid :: host :: stamp :: _ ->
      let pid = try int_of_string pid with _ -> 0 in
      let age =
        try Unix.time () -. float_of_string stamp with _ -> infinity
      in
      Some (pid, host, age)
    | _ -> Some (0, "", infinity))

let claim_stale dir k =
  match claim_info dir k with
  | None -> false
  | Some (pid, host, age) ->
    if host = Unix.gethostname () && pid > 0 then (
      (* same host: the pid tells the truth, no TTL guessing *)
      match Unix.kill pid 0 with
      | () -> false
      | exception Unix.Unix_error (Unix.ESRCH, _, _) -> true
      | exception Unix.Unix_error _ -> age > Lazy.force claim_ttl)
    else age > Lazy.force claim_ttl

(* ------------------------------------------------------------ evaluation *)

let memoize t k v = Hashtbl.replace t.memo k (Obj.repr v)

(* Claim-or-skip: compute [n] only if nobody has published it and we win
   the claim; [None] means someone else owns it (or already stored it).
   Safe to run in a forked worker — the store and log writes are atomic,
   and the claim is released even if compute raises. *)
let attempt_exclusive t n k =
  match t.dir with
  | None ->
    let v = n.n_compute () in
    memoize t k v;
    Some v
  | Some dir ->
    if Sys.file_exists (node_path dir k) then None
    else if try_claim dir k then
      Some
        (Fun.protect
           ~finally:(fun () -> release_claim dir k)
           (fun () ->
             let t0 = Unix.gettimeofday () in
             let v = n.n_compute () in
             store_value t dir k n v ~seconds:(Unix.gettimeofday () -. t0);
             log_event dir "miss" k ~kind:n.n_kind ~label:n.n_label;
             memoize t k v;
             v))
    else None

(* Somebody else claimed [k]: poll for their published value, take over
   if their claim disappears without a value (crash before store) or
   goes stale (dead pid / cross-host TTL). *)
let await t n k =
  let dir = match t.dir with Some d -> d | None -> assert false in
  let deadline = Unix.gettimeofday () +. Lazy.force wait_budget in
  let rec loop () =
    match load_value dir k with
    | Some v ->
      memoize t k v;
      log_event dir "stolen" k ~kind:n.n_kind ~label:n.n_label;
      (Stolen, v)
    | None ->
      if not (Sys.file_exists (claim_path dir k)) then (
        match attempt_exclusive t n k with
        | Some v -> (Miss, v)
        | None ->
          (* lost the re-acquire race; the new owner is at work *)
          Unix.sleepf poll_interval;
          loop ())
      else if claim_stale dir k then begin
        release_claim dir k;
        loop ()
      end
      else if Unix.gettimeofday () > deadline then
        failwith
          (Printf.sprintf
             "Dag: timed out after %.0fs awaiting node %s (%s %s); if its \
              owner is gone, remove %s"
             (Lazy.force wait_budget) k n.n_kind n.n_label
             (claim_path dir k))
      else begin
        Unix.sleepf poll_interval;
        loop ()
      end
  in
  loop ()

let eval t n =
  let k = key t n in
  match Hashtbl.find_opt t.memo k with
  | Some v ->
    count t Hit;
    Obj.obj v
  | None -> (
    match t.dir with
    | None -> (
      match attempt_exclusive t n k with
      | Some v -> count t Miss; v
      | None -> assert false)
    | Some dir -> (
      match load_value dir k with
      | Some v ->
        memoize t k v;
        log_event dir "hit" k ~kind:n.n_kind ~label:n.n_label;
        count t Hit;
        v
      | None -> (
        match attempt_exclusive t n k with
        | Some v -> count t Miss; v
        | None ->
          let p, v = await t n k in
          count t p;
          v)))

(* Cooperative sweep. Pass 1 resolves memo and store hits in the parent;
   the rest fan out over {!Pool.scatter} workers whose plans all cover
   every pending node from different offsets — the claim files arbitrate
   who computes what (work stealing both between our workers and against
   other processes on the same store). Workers send back only values
   they computed; anything still missing afterwards was computed by a
   foreign process and is awaited in the parent. Results reassemble by
   index, so [jobs:n] output is byte-identical to [jobs:1]. *)
let eval_list ?(jobs = 1) t ns =
  let ns = Array.of_list ns in
  let n = Array.length ns in
  if n = 0 then []
  else begin
    let keys = Array.map (key t) ns in
    let results = Array.make n None in
    Array.iteri
      (fun i k ->
        match Hashtbl.find_opt t.memo k with
        | Some v ->
          results.(i) <- Some (Obj.obj v);
          count t Hit
        | None -> (
          match t.dir with
          | None -> ()
          | Some dir -> (
            match load_value dir k with
            | Some v ->
              memoize t k v;
              log_event dir "hit" k ~kind:ns.(i).n_kind ~label:ns.(i).n_label;
              results.(i) <- Some v;
              count t Hit
            | None -> ())))
      keys;
    let pend =
      Array.of_list
        (List.filter
           (fun i -> Option.is_none results.(i))
           (List.init n Fun.id))
    in
    let m = Array.length pend in
    if m > 0 then begin
      let plan =
        match t.dir with
        | Some _ ->
          (* circular scan from a per-worker offset: full coverage, so a
             worker that drains its own region steals the tail *)
          fun jobs w ->
            let off = w * m / jobs in
            Seq.init m (fun j -> (off + j) mod m)
        | None ->
          (* no claims to arbitrate: disjoint strides, as Pool.map *)
          fun jobs w ->
            Seq.unfold (fun j -> if j < m then Some (j, j + jobs) else None) w
      in
      let step j = attempt_exclusive t ns.(pend.(j)) keys.(pend.(j)) in
      let gathered = Hashtbl.create 8 in
      let gather j =
        Hashtbl.replace gathered j ();
        let i = pend.(j) in
        match t.dir with
        | None ->
          raise
            (Pool.Worker_failure
               { index = i;
                 message = "worker died before finishing item";
                 backtrace = ""
               })
        | Some dir -> (
          match load_value dir keys.(i) with
          | Some v ->
            memoize t keys.(i) v;
            log_event dir "stolen" keys.(i) ~kind:ns.(i).n_kind
              ~label:ns.(i).n_label;
            count t Stolen;
            v
          | None ->
            let p, v = await t ns.(i) keys.(i) in
            count t p;
            v)
      in
      let vs = Pool.scatter ~jobs ~plan ~step ~gather m in
      List.iteri
        (fun j v ->
          let i = pend.(j) in
          results.(i) <- Some v;
          memoize t keys.(i) v;
          if not (Hashtbl.mem gathered j) then count t Miss)
        vs
    end;
    Array.to_list (Array.map Option.get results)
  end

(* ------------------------------------------------------------ maintenance *)

type entry =
  { e_key : string;
    e_kind : string;
    e_label : string;
    e_bytes : int;
    e_age : float
  }

let read_meta dir k =
  let str field json d =
    match Bv_obs.Json.member field json with
    | Some (Bv_obs.Json.String s) -> s
    | _ -> d
  in
  match In_channel.with_open_text (meta_path dir k) In_channel.input_all with
  | exception Sys_error _ -> None
  | text -> (
    match Bv_obs.Json.of_string text with
    | Error _ -> None
    | Ok json -> Some (json, str "kind" json "?", str "label" json "?"))

let entry_of dir suffix file =
  let k = Filename.chop_suffix file suffix in
  match Unix.stat (Filename.concat dir file) with
  | exception Unix.Unix_error _ -> None
  | st ->
    let kind, label =
      if suffix = ".bench" then ("legacy", "pre-dag artifact")
      else
        match read_meta dir k with
        | Some (_, kind, label) -> (kind, label)
        | None -> ("?", "?")
    in
    Some
      { e_key = k;
        e_kind = kind;
        e_label = label;
        e_bytes = st.Unix.st_size;
        e_age = Unix.time () -. st.Unix.st_mtime
      }

let entries dir =
  let files =
    match Sys.readdir dir with
    | files -> Array.to_list files
    | exception Sys_error _ -> []
  in
  let of_suffix suffix =
    List.filter_map
      (fun f ->
        if Filename.check_suffix f suffix then entry_of dir suffix f else None)
      files
  in
  List.sort
    (fun a b -> Float.compare b.e_age a.e_age)
    (of_suffix ".node" @ of_suffix ".bench")

type claim =
  { c_key : string;
    c_pid : int;
    c_host : string;
    c_age : float;
    c_stale : bool
  }

let claims dir =
  let files =
    match Sys.readdir dir with
    | files -> Array.to_list files
    | exception Sys_error _ -> []
  in
  List.filter_map
    (fun f ->
      if not (Filename.check_suffix f ".claim") then None
      else
        let k = Filename.chop_suffix f ".claim" in
        match claim_info dir k with
        | None -> None
        | Some (pid, host, age) ->
          Some
            { c_key = k;
              c_pid = pid;
              c_host = host;
              c_age = age;
              c_stale = claim_stale dir k
            })
    files

let status_json dir =
  let open Bv_obs.Json in
  let es = entries dir in
  let kinds =
    List.sort_uniq compare (List.map (fun e -> e.e_kind) es)
  in
  let by_kind kind =
    let of_kind = List.filter (fun e -> e.e_kind = kind) es in
    Obj
      [ ("kind", String kind);
        ("entries", Int (List.length of_kind));
        ("bytes", Int (List.fold_left (fun a e -> a + e.e_bytes) 0 of_kind))
      ]
  in
  Obj
    [ ("schema_version", Int schema_version);
      ("dir", String dir);
      ("format", Int code_format);
      ("entries", Int (List.length es));
      ("bytes", Int (List.fold_left (fun a e -> a + e.e_bytes) 0 es));
      ("kinds", List (List.map by_kind kinds));
      ( "claims",
        List
          (List.map
             (fun c ->
               Obj
                 [ ("key", String c.c_key);
                   ("pid", Int c.c_pid);
                   ("host", String c.c_host);
                   ("age_seconds", float c.c_age);
                   ("stale", Bool c.c_stale)
                 ])
             (claims dir)) )
    ]

type gc_report =
  { gcr_examined : int;
    gcr_bytes : int;
    gcr_removed : entry list;
    gcr_removed_bytes : int;
    gcr_claims_broken : int;
    gcr_dry_run : bool
  }

let max_log_bytes = 512 * 1024
let kept_log_lines = 2000

let gc ?max_age ?max_bytes ~dry_run dir =
  let es = entries dir in
  let total = List.fold_left (fun a e -> a + e.e_bytes) 0 es in
  let aged, kept =
    match max_age with
    | None -> ([], es)
    | Some age -> List.partition (fun e -> e.e_age > age) es
  in
  (* [entries] sorts oldest first, so dropping from the front of [kept]
     evicts least-recently-used entries until the budget fits. *)
  let over_budget =
    match max_bytes with
    | None -> []
    | Some budget ->
      let rec drop kept size =
        match kept with
        | e :: rest when size > budget -> e :: drop rest (size - e.e_bytes)
        | _ -> []
      in
      drop kept (List.fold_left (fun a e -> a + e.e_bytes) 0 kept)
  in
  let removed = aged @ over_budget in
  let stale = List.filter (fun c -> c.c_stale) (claims dir) in
  if not dry_run then begin
    List.iter
      (fun e ->
        let rm suffix =
          try Sys.remove (Filename.concat dir (e.e_key ^ suffix))
          with Sys_error _ -> ()
        in
        if e.e_kind = "legacy" then rm ".bench" else rm ".node";
        rm ".meta")
      removed;
    List.iter (fun c -> release_claim dir c.c_key) stale;
    (* keep the provenance log from growing without bound *)
    (try
       if (Unix.stat (log_path dir)).Unix.st_size > max_log_bytes then begin
         let lines =
           String.split_on_char '\n'
             (In_channel.with_open_text (log_path dir) In_channel.input_all)
         in
         let keep = List.filteri
             (fun i _ -> i >= List.length lines - kept_log_lines)
             lines
         in
         let tmp = log_path dir ^ ".tmp" in
         Out_channel.with_open_text tmp (fun oc ->
             Out_channel.output_string oc (String.concat "\n" keep));
         Sys.rename tmp (log_path dir)
       end
     with Unix.Unix_error _ | Sys_error _ -> ())
  end;
  { gcr_examined = List.length es;
    gcr_bytes = total;
    gcr_removed = removed;
    gcr_removed_bytes = List.fold_left (fun a e -> a + e.e_bytes) 0 removed;
    gcr_claims_broken = List.length stale;
    gcr_dry_run = dry_run
  }

let gc_report_to_json r =
  let open Bv_obs.Json in
  Obj
    [ ("schema_version", Int schema_version);
      ("examined", Int r.gcr_examined);
      ("bytes", Int r.gcr_bytes);
      ("removed", Int (List.length r.gcr_removed));
      ("removed_bytes", Int r.gcr_removed_bytes);
      ("claims_broken", Int r.gcr_claims_broken);
      ("dry_run", Bool r.gcr_dry_run);
      ( "removed_entries",
        List
          (List.map
             (fun e ->
               Obj
                 [ ("key", String e.e_key);
                   ("kind", String e.e_kind);
                   ("label", String e.e_label);
                   ("bytes", Int e.e_bytes)
                 ])
             r.gcr_removed) )
    ]

type explanation =
  { x_key : string;
    x_kind : string;
    x_label : string;
    x_format : int;
    x_ocaml : string;
    x_inputs : string;
    x_deps : string list;
    x_created_at : string;
    x_pid : int;
    x_compute_seconds : float;
    x_bytes : int;
    x_age : float;
    x_events : string list
  }

let explain dir prefix =
  let matching =
    List.filter
      (fun e -> String.starts_with ~prefix e.e_key)
      (entries dir)
  in
  match matching with
  | [] -> Error (Printf.sprintf "no stored node matches %s" prefix)
  | _ :: _ :: _ ->
    Error
      (Printf.sprintf "%d stored nodes match %s; give more hex digits"
         (List.length matching) prefix)
  | [ e ] ->
    let json_str field json d =
      match Bv_obs.Json.member field json with
      | Some (Bv_obs.Json.String s) -> s
      | _ -> d
    in
    let json_int field json d =
      match Bv_obs.Json.member field json with
      | Some (Bv_obs.Json.Int i) -> i
      | _ -> d
    in
    let meta = read_meta dir e.e_key in
    let json = match meta with Some (j, _, _) -> j | None -> Bv_obs.Json.Null in
    let events =
      match
        In_channel.with_open_text (log_path dir) In_channel.input_all
      with
      | exception Sys_error _ -> []
      | text ->
        List.filter
          (fun line ->
            let contains =
              let kl = String.length e.e_key and ll = String.length line in
              let rec scan i =
                i + kl <= ll && (String.sub line i kl = e.e_key || scan (i + 1))
              in
              scan 0
            in
            line <> "" && contains)
          (String.split_on_char '\n' text)
    in
    Ok
      { x_key = e.e_key;
        x_kind = e.e_kind;
        x_label = e.e_label;
        x_format = json_int "format" json 0;
        x_ocaml = json_str "ocaml" json "?";
        x_inputs = json_str "inputs" json "?";
        x_deps =
          (match Bv_obs.Json.member "deps" json with
          | Some (Bv_obs.Json.List ds) ->
            List.filter_map
              (function Bv_obs.Json.String s -> Some s | _ -> None)
              ds
          | _ -> []);
        x_created_at = json_str "created_at" json "?";
        x_pid = json_int "pid" json 0;
        x_compute_seconds =
          (match Bv_obs.Json.member "compute_seconds" json with
          | Some (Bv_obs.Json.Float f) -> f
          | Some (Bv_obs.Json.Int i) -> float_of_int i
          | _ -> 0.0);
        x_bytes = e.e_bytes;
        x_age = e.e_age;
        x_events = events
      }

let explanation_to_json x =
  let open Bv_obs.Json in
  Obj
    [ ("schema_version", Int schema_version);
      ("key", String x.x_key);
      ("kind", String x.x_kind);
      ("label", String x.x_label);
      ("format", Int x.x_format);
      ("ocaml", String x.x_ocaml);
      ("inputs", String x.x_inputs);
      ("deps", List (List.map (fun d -> String d) x.x_deps));
      ("created_at", String x.x_created_at);
      ("pid", Int x.x_pid);
      ("compute_seconds", float x.x_compute_seconds);
      ("bytes", Int x.x_bytes);
      ("age_seconds", float x.x_age);
      ("events", List (List.map (fun e -> String e) x.x_events))
    ]
