(** The unified simulation engine: one session object carrying the
    run-path policy — worker count, artifact cache, prepared-bench memo —
    that {!Experiments}, the CLI and the bench harness all share instead
    of each re-implementing prepare/memoise/simulate plumbing.

    A session's pipeline is prepare (profile → select → transform, disk
    cached by content hash) → simulate (cross-checked timing runs,
    memoised per bench in {!Runner}) → {!map} for fanning row-level work
    out across forked workers. A [jobs:n] session produces byte-identical
    results to a [jobs:1] session: work assignment is by index
    ({!Pool.map}) and every computation is deterministic. *)

open Bv_bpred
open Bv_cache
open Bv_workloads

type t

val create : ?jobs:int -> ?cache_dir:string -> unit -> t
(** Fresh session: [jobs] workers (default 1), artifact cache at
    [cache_dir] (default none). *)

val the : unit -> t
(** The process-wide default session, configured from the environment on
    first use: [BV_JOBS] workers, artifact cache at [BV_CACHE] (default
    [.bv-cache]; set [BV_CACHE=none] to disable). *)

val jobs : t -> int
val set_jobs : t -> int -> unit
val cache_dir : t -> string option

val prepare :
  ?predictor:Kind.t -> ?threshold:float -> ?max_hoist:int -> t ->
  Spec.t -> Runner.bench
(** {!Runner.prepare} behind the content-hashed artifact cache: the key
    digests the spec, profile predictor, threshold, hoist cap, workload
    scale and cache format, so any input change misses cleanly. A hit
    deserialises the profile/selection/transform instead of recomputing
    them. Bump [cache_format] in [sim.ml] when the compile pipeline's
    semantics change. *)

val bench : t -> Spec.t -> Runner.bench
(** Default-parameter {!prepare}, memoised per spec name for the life of
    the session (the lab notebook {!Experiments} used to keep). *)

val simulate :
  ?predictor:Kind.t -> ?cache:Hierarchy.config -> t ->
  Runner.bench -> input:int -> width:int -> Runner.sim_pair

val avg_speedup :
  ?predictor:Kind.t -> ?cache:Hierarchy.config -> t ->
  Runner.bench -> width:int -> float

val best_speedup :
  ?predictor:Kind.t -> ?cache:Hierarchy.config -> t ->
  Runner.bench -> width:int -> float

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!Pool.map} with the session's worker count. Results must be
    marshal-safe when [jobs > 1]. *)
