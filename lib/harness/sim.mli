(** The unified simulation engine: one session object carrying the
    run-path policy — worker count and the memoized experiment
    {!Dag} — that {!Experiments}, the CLI and the bench harness all
    share instead of each re-implementing prepare/memoise/simulate
    plumbing.

    Every stage is a DAG node content-hashed into the session's
    [BV_CACHE] store: prepare (profile → select → transform,
    kind ["prepare"]), paired timing runs ({!summary}, kind ["sim"]),
    accounted runs ({!accounted}, kind ["account"]) and arbitrary
    fanned-out row work ({!dag_map}). A node is evaluated at most once
    per store — re-runs hit, concurrent processes on one store
    cooperate via claim files, and {!counters_json} reports the
    hit/miss/stolen split for every [--json] emitter.

    A [jobs:n] session produces byte-identical results to a [jobs:1]
    session: work reassembles by index and every computation is
    deterministic. *)

open Bv_bpred
open Bv_cache
open Bv_pipeline
open Bv_workloads

type t

val create : ?jobs:int -> ?cache_dir:string -> unit -> t
(** Fresh session: [jobs] workers (default 1), DAG store at
    [cache_dir] (default none — no persistence, no cross-process
    cooperation). *)

val the : unit -> t
(** The process-wide default session, configured from the environment on
    first use: [BV_JOBS] workers, DAG store at [BV_CACHE] (default
    [.bv-cache]; set [BV_CACHE=none] to disable). *)

val jobs : t -> int
val set_jobs : t -> int -> unit
val cache_dir : t -> string option

val counters : t -> Dag.counters
(** DAG hit/miss/stolen totals for this session (the parent process's
    view — nodes resolved inside forked workers count once, here). *)

val counters_json : t -> Bv_obs.Json.t

val prepare :
  ?predictor:Kind.t -> ?threshold:float -> ?max_hoist:int -> t ->
  Spec.t -> Runner.bench
(** {!Runner.prepare} as a DAG node: the key digests the spec, profile
    predictor, threshold, hoist cap, workload scale and
    {!Dag.code_format}, so any input change misses cleanly. Live
    benches are interned per node key for the life of the session —
    equally parameterised prepares share one bench and its simulation
    memo. Bump {!Dag.code_format} when the compile pipeline's semantics
    change. *)

val bench : t -> Spec.t -> Runner.bench
(** Default-parameter {!prepare}. *)

val simulate :
  ?predictor:Kind.t -> ?cache:Hierarchy.config -> t ->
  Runner.bench -> input:int -> width:int -> Runner.sim_pair
(** Uncached-by-the-DAG passthrough to {!Runner.simulate} (a full
    {!Machine.result} pair is not marshal-safe); memoised on the bench
    as always. Use {!summary} when the stat counters suffice. *)

val summary :
  ?predictor:Kind.t -> ?cache:Hierarchy.config -> t ->
  Spec.t -> input:int -> width:int -> Runner.sim_summary
(** One paired timing run as a DAG node (kind ["sim"], dependent on the
    default-parameter prepare node): speedup and both stat blocks,
    persisted. The workhorse behind every experiment table. *)

val avg_speedup :
  ?predictor:Kind.t -> ?cache:Hierarchy.config -> t ->
  Spec.t -> width:int -> float
(** Mean over REF inputs of the per-input {!summary} speedup (the
    paper's "averaged over all reference inputs"). *)

val best_speedup :
  ?predictor:Kind.t -> ?cache:Hierarchy.config -> t ->
  Spec.t -> width:int -> float

val sampled :
  ?predictor:Kind.t -> ?cache:Hierarchy.config ->
  ?params:Machine.sample_params -> t ->
  Spec.t -> input:int -> width:int -> Runner.sampled_summary
(** One SMARTS-sampled paired run as a DAG node (kind ["sample"],
    keyed additionally by the sampling params): both whole-run
    estimates with confidence intervals, persisted. *)

val compiled_check :
  ?predictor:Kind.t -> ?cache:Hierarchy.config -> t ->
  Spec.t -> input:int -> width:int -> Runner.identity
(** One compiled-vs-interpreted byte-identity check as a DAG node (kind
    ["compiled"]). Raises on divergence — the store only ever holds
    passed witnesses, so a cache hit is itself a proof the check passed
    for this code format. *)

val accounted :
  ?predictor:Kind.t -> ?cache:Hierarchy.config -> t ->
  Spec.t -> input:int -> width:int -> Runner.accounted
(** One accounted paired run as a DAG node (kind ["account"]). The
    bench is prepared with the same [predictor] it simulates with —
    the report pipeline's convention. *)

val accounted_list :
  ?predictor:Kind.t -> ?cache:Hierarchy.config -> t ->
  Spec.t -> inputs:int list -> width:int -> Runner.accounted list
(** The same account nodes for several inputs, evaluated cooperatively
    across the session's workers ({!Dag.eval_list}); results in input
    order. *)

val dag_map :
  t -> kind:string -> ?label:('a -> string) -> ('a -> 'b) -> 'a list ->
  'b list
(** [dag_map t ~kind f items]: one DAG node per item (keyed by [kind],
    the item and the workload scale), evaluated cooperatively across
    the session's workers with claim-file work stealing
    ({!Dag.eval_list}). Each item must fully determine [f item] —
    anything else [f] reads must be captured in the item or frozen in
    {!Dag.code_format}. Results are in input order; byte-identical for
    any [jobs]. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!Pool.map} with the session's worker count — plain fork/join with
    no caching, for work that must re-run every time. Results must be
    marshal-safe when [jobs > 1]. *)
