open Bv_bpred
open Bv_cache
open Bv_exec
open Bv_ir
open Bv_pipeline
open Bv_workloads

type sim_pair =
  { base : Machine.result;
    exp : Machine.result;
    speedup_pct : float
  }

type bench =
  { spec : Spec.t;
    profile : Bv_profile.Profile.t;
    selection : Vanguard.Select.t;
    transform : Vanguard.Transform.result;
    max_hoist : int option;
    baseline_static : int;
    experimental_static : int;
    images : (int, Layout.image * Layout.image) Hashtbl.t;
    digests : (int, int * int) Hashtbl.t;
    memo : (string, sim_pair) Hashtbl.t
  }

(* Read BV_SCALE once: every artifact-cache key and every scaled spec in
   the process must agree on the factor, even if the environment is
   mutated mid-run. *)
let scale =
  let memo = ref None in
  fun () ->
    match !memo with
    | Some s -> s
    | None ->
      let s =
        match Sys.getenv_opt "BV_SCALE" with
        | Some s -> ( try Float.of_string s with _ -> 1.0)
        | None -> 1.0
      in
      memo := Some s;
      s

let scaled_spec spec =
  let reps =
    max 2 (Float.to_int (Float.round (Float.of_int spec.Spec.reps *. scale ())))
  in
  { spec with Spec.reps }

(* Baseline compilation = block-local list scheduling of a copy. *)
let baseline_of program =
  let p = Program.copy program in
  Bv_sched.Sched.schedule_program p;
  p

let prepare ?(predictor = Kind.Tournament) ?(threshold = 0.05) ?max_hoist
    spec =
  let spec = scaled_spec spec in
  let train = Gen.generate ~input:0 spec in
  let train_image = Layout.program (baseline_of train) in
  let profile =
    Bv_profile.Profile.collect ~predictor:(Kind.create predictor) train_image
  in
  let selection = Vanguard.Select.select ~threshold ~profile train in
  let transform =
    Vanguard.Transform.apply ?max_hoist ~exit_live:Gen.live_at_exit
      ~candidates:selection.Vanguard.Select.candidates train
  in
  let bench =
    { spec;
      profile;
      selection;
      transform;
      max_hoist;
      baseline_static = Array.length train_image.Layout.code;
      experimental_static =
        Array.length (Layout.program transform.Vanguard.Transform.program)
          .Layout.code;
      images = Hashtbl.create 8;
      digests = Hashtbl.create 8;
      memo = Hashtbl.create 32
    }
  in
  bench

(* The pure, closure-free payload of a prepared bench — what {!Sim}
   persists to the on-disk artifact cache. The memo hashtables are
   rebuilt empty on import. *)
type artifact =
  { a_spec : Spec.t;
    a_profile : Bv_profile.Profile.t;
    a_selection : Vanguard.Select.t;
    a_transform : Vanguard.Transform.result;
    a_max_hoist : int option;
    a_baseline_static : int;
    a_experimental_static : int
  }

let export b =
  { a_spec = b.spec;
    a_profile = b.profile;
    a_selection = b.selection;
    a_transform = b.transform;
    a_max_hoist = b.max_hoist;
    a_baseline_static = b.baseline_static;
    a_experimental_static = b.experimental_static
  }

let import a =
  { spec = a.a_spec;
    profile = a.a_profile;
    selection = a.a_selection;
    transform = a.a_transform;
    max_hoist = a.a_max_hoist;
    baseline_static = a.a_baseline_static;
    experimental_static = a.a_experimental_static;
    images = Hashtbl.create 8;
    digests = Hashtbl.create 8;
    memo = Hashtbl.create 32
  }

let spec b = b.spec
let profile b = b.profile
let selection b = b.selection
let transform b = b.transform
let baseline_static b = b.baseline_static
let experimental_static b = b.experimental_static

let piscs b =
  100.0
  *. Float.of_int (b.experimental_static - b.baseline_static)
  /. Float.of_int (max 1 b.baseline_static)

let images b ~input =
  match Hashtbl.find_opt b.images input with
  | Some pair -> pair
  | None ->
    let program = Gen.generate ~input b.spec in
    let base = Layout.program (baseline_of program) in
    let exp_result =
      Vanguard.Transform.apply ?max_hoist:b.max_hoist
        ~exit_live:Gen.live_at_exit
        ~candidates:b.selection.Vanguard.Select.candidates program
    in
    let exp = Layout.program exp_result.Vanguard.Transform.program in
    Hashtbl.replace b.images input (base, exp);
    (base, exp)

let baseline_program b ~input = fst (images b ~input)
let experimental_program b ~input = snd (images b ~input)

let reference_digests b ~input =
  match Hashtbl.find_opt b.digests input with
  | Some d -> d
  | None ->
    let base, exp = images b ~input in
    let d =
      ( Interp.arch_digest (Interp.run base),
        Interp.arch_digest (Interp.run exp) )
    in
    Hashtbl.replace b.digests input d;
    d

let cache_tag (c : Hierarchy.config) =
  Printf.sprintf "%d.%d.%d.%d.%d" c.Hierarchy.l1d_bytes c.Hierarchy.l1i_bytes
    c.Hierarchy.l2_bytes c.Hierarchy.l3_bytes c.Hierarchy.mem_latency

let simulate ?(predictor = Kind.Tournament)
    ?(cache = Hierarchy.default_config) b ~input ~width =
  let key =
    Printf.sprintf "i%d.w%d.%s.%s" input width (Kind.name predictor)
      (cache_tag cache)
  in
  match Hashtbl.find_opt b.memo key with
  | Some pair -> pair
  | None ->
    let base_img, exp_img = images b ~input in
    let dbase, dexp = reference_digests b ~input in
    let config = Config.make ~predictor ~cache ~width () in
    let base = Machine.run ~config base_img in
    let exp = Machine.run ~config exp_img in
    let check name want (got : Machine.result) =
      if not got.Machine.finished then
        failwith
          (Printf.sprintf "%s/%s: simulation hit a run limit" b.spec.Spec.name
             name);
      if got.Machine.arch_digest <> want then
        failwith
          (Printf.sprintf "%s/%s: timing model diverged from the interpreter"
             b.spec.Spec.name name)
    in
    check "baseline" dbase base;
    check "experimental" dexp exp;
    let speedup_pct =
      100.0
      *. (Float.of_int base.Machine.stats.Stats.cycles
          /. Float.of_int (max 1 exp.Machine.stats.Stats.cycles)
         -. 1.0)
    in
    let pair = { base; exp; speedup_pct } in
    Hashtbl.replace b.memo key pair;
    pair

let input_indices () = List.init Suites.ref_inputs (fun k -> k + 1)

let avg_speedup ?predictor ?cache b ~width =
  Agg.mean
    (List.map
       (fun input -> (simulate ?predictor ?cache b ~input ~width).speedup_pct)
       (input_indices ()))

let best_speedup ?predictor ?cache b ~width =
  Agg.max_or 0.0
    (List.map
       (fun input -> (simulate ?predictor ?cache b ~input ~width).speedup_pct)
       (input_indices ()))

(* The marshal-safe essence of a paired run — what the experiment DAG
   persists for speedup/stat rows ({!Machine.result} itself drags the
   cache hierarchy and config along, so it never crosses the store). *)
type sim_summary =
  { sum_speedup_pct : float;
    sum_base : Stats.t;
    sum_exp : Stats.t
  }

let summarize pair =
  { sum_speedup_pct = pair.speedup_pct;
    sum_base = pair.base.Machine.stats;
    sum_exp = pair.exp.Machine.stats
  }

let pair_to_json pair =
  let open Bv_obs.Json in
  Obj
    [ ("speedup_pct", float pair.speedup_pct);
      ("baseline", Machine.result_to_json pair.base);
      ("experimental", Machine.result_to_json pair.exp)
    ]

type instrumented =
  { pair : sim_pair;
    base_samples : Sampler.t;
    exp_samples : Sampler.t;
    base_acct : Acct.t;
    exp_acct : Acct.t
  }

let simulate_instrumented ?(predictor = Kind.Tournament)
    ?(cache = Hierarchy.default_config) ?sample_interval ?on_base_event
    ?on_exp_event b ~input ~width =
  let base_img, exp_img = images b ~input in
  let dbase, dexp = reference_digests b ~input in
  let config = Config.make ~predictor ~cache ~width () in
  let instrumented_run ?on_event img sampler acct =
    Machine.run ?on_event
      ~on_cycle:(fun ~cycle ~stats ~dbb_occupancy ->
        Sampler.observe sampler ~cycle ~stats ~dbb_occupancy)
      ~acct ~config img
  in
  let base_acct = Acct.create base_img.Layout.code in
  let exp_acct = Acct.create exp_img.Layout.code in
  let base_samples =
    Sampler.create ?interval:sample_interval ~acct:base_acct ()
  in
  let exp_samples =
    Sampler.create ?interval:sample_interval ~acct:exp_acct ()
  in
  let base =
    instrumented_run ?on_event:on_base_event base_img base_samples base_acct
  in
  let exp =
    instrumented_run ?on_event:on_exp_event exp_img exp_samples exp_acct
  in
  Sampler.finish base_samples;
  Sampler.finish exp_samples;
  let check name want (got : Machine.result) =
    if not got.Machine.finished then
      failwith
        (Printf.sprintf "%s/%s: simulation hit a run limit" b.spec.Spec.name
           name);
    if got.Machine.arch_digest <> want then
      failwith
        (Printf.sprintf "%s/%s: timing model diverged from the interpreter"
           b.spec.Spec.name name)
  in
  check "baseline" dbase base;
  check "experimental" dexp exp;
  let speedup_pct =
    100.0
    *. (Float.of_int base.Machine.stats.Stats.cycles
        /. Float.of_int (max 1 exp.Machine.stats.Stats.cycles)
       -. 1.0)
  in
  { pair = { base; exp; speedup_pct };
    base_samples;
    exp_samples;
    base_acct;
    exp_acct
  }

(* The marshal-safe subset of an accounted run: what a fork-pool worker
   returns to the parent for cross-input aggregation ({!Acct.t} is flat
   int arrays plus the code, all plain data). *)
type accounted =
  { acc_base_cycles : int;
    acc_exp_cycles : int;
    acc_speedup_pct : float;
    acc_base : Acct.t;
    acc_exp : Acct.t
  }

let simulate_accounted ?(predictor = Kind.Tournament)
    ?(cache = Hierarchy.default_config) b ~input ~width =
  let base_img, exp_img = images b ~input in
  let dbase, dexp = reference_digests b ~input in
  let config = Config.make ~predictor ~cache ~width () in
  let acc_base = Acct.create base_img.Layout.code in
  let acc_exp = Acct.create exp_img.Layout.code in
  let base = Machine.run ~acct:acc_base ~config base_img in
  let exp = Machine.run ~acct:acc_exp ~config exp_img in
  let check name want (got : Machine.result) =
    if not got.Machine.finished then
      failwith
        (Printf.sprintf "%s/%s: simulation hit a run limit" b.spec.Spec.name
           name);
    if got.Machine.arch_digest <> want then
      failwith
        (Printf.sprintf "%s/%s: timing model diverged from the interpreter"
           b.spec.Spec.name name)
  in
  check "baseline" dbase base;
  check "experimental" dexp exp;
  let base_cycles = base.Machine.stats.Stats.cycles in
  let exp_cycles = exp.Machine.stats.Stats.cycles in
  { acc_base_cycles = base_cycles;
    acc_exp_cycles = exp_cycles;
    acc_speedup_pct =
      100.0
      *. (Float.of_int base_cycles /. Float.of_int (max 1 exp_cycles) -. 1.0);
    acc_base;
    acc_exp
  }

let merge_accounted a b =
  { acc_base_cycles = a.acc_base_cycles + b.acc_base_cycles;
    acc_exp_cycles = a.acc_exp_cycles + b.acc_exp_cycles;
    acc_speedup_pct =
      100.0
      *. (Float.of_int (a.acc_base_cycles + b.acc_base_cycles)
          /. Float.of_int (max 1 (a.acc_exp_cycles + b.acc_exp_cycles))
         -. 1.0);
    acc_base = Acct.merge a.acc_base b.acc_base;
    acc_exp = Acct.merge a.acc_exp b.acc_exp
  }

(* --------------------------------------------- sampled & compiled -- *)

type sampled_pair =
  { samp_base : Machine.sampled;
    samp_exp : Machine.sampled;
    samp_speedup_pct : float
  }

let simulate_sampled ?(predictor = Kind.Tournament)
    ?(cache = Hierarchy.default_config) ?params b ~input ~width =
  let base_img, exp_img = images b ~input in
  let dbase, dexp = reference_digests b ~input in
  let config = Config.make ~predictor ~cache ~width () in
  let base = Machine.run_sampled ?params ~config base_img in
  let exp = Machine.run_sampled ?params ~config exp_img in
  (* Fast-forward is committed-semantics functional execution, so the
     architectural results must still match the interpreter exactly —
     only the timing is an estimate. *)
  let check name want (got : Machine.sampled) =
    let r = got.Machine.sam_result in
    if not r.Machine.finished then
      failwith
        (Printf.sprintf "%s/%s: sampled simulation hit a run limit"
           b.spec.Spec.name name);
    if r.Machine.arch_digest <> want then
      failwith
        (Printf.sprintf
           "%s/%s: sampled run diverged architecturally from the interpreter"
           b.spec.Spec.name name)
  in
  check "baseline" dbase base;
  check "experimental" dexp exp;
  let bc = base.Machine.sam_estimate.Smarts.est_cycles in
  let ec = exp.Machine.sam_estimate.Smarts.est_cycles in
  { samp_base = base;
    samp_exp = exp;
    samp_speedup_pct = 100.0 *. ((bc /. Float.max 1.0 ec) -. 1.0)
  }

(* The marshal-safe essence of a sampled pair: both extrapolated
   estimates (plain floats/ints/lists throughout) and the speedup they
   imply — what the DAG persists for sample nodes. *)
type sampled_summary =
  { ss_speedup_pct : float;
    ss_base : Smarts.estimate;
    ss_exp : Smarts.estimate
  }

let summarize_sampled s =
  { ss_speedup_pct = s.samp_speedup_pct;
    ss_base = s.samp_base.Machine.sam_estimate;
    ss_exp = s.samp_exp.Machine.sam_estimate
  }

(* Marshal-safe witness that the block-compiled fast path reproduced the
   interpreted run byte-for-byte on one paired config. *)
type identity =
  { idt_base_cycles : int;
    idt_exp_cycles : int
  }

let compiled_identity ?(predictor = Kind.Tournament)
    ?(cache = Hierarchy.default_config) b ~input ~width =
  let base_img, exp_img = images b ~input in
  let config = Config.make ~predictor ~cache ~width () in
  let side name img =
    let compiled = Machine.run ~compile:true ~config img in
    let interp = Machine.run ~compile:false ~config img in
    let jc = Bv_obs.Json.to_string (Machine.result_to_json compiled) in
    let ji = Bv_obs.Json.to_string (Machine.result_to_json interp) in
    if not (String.equal jc ji) then
      failwith
        (Printf.sprintf
           "%s/%s: compiled run is not byte-identical to interpreted"
           b.spec.Spec.name name);
    compiled
  in
  let base = side "baseline" base_img in
  let exp = side "experimental" exp_img in
  { idt_base_cycles = base.Machine.stats.Stats.cycles;
    idt_exp_cycles = exp.Machine.stats.Stats.cycles
  }

(* ------------------------------------------------- advise & validate -- *)

let advise ?config ?(interproc = false) b =
  (* The TRAIN program the profile and selection were built from: the
     spec in the bench record is already scaled. *)
  let train = Gen.generate ~input:0 b.spec in
  let summaries =
    if interproc then Some (Bv_analysis.Summary.compute train) else None
  in
  let costs =
    Bv_analysis.Costmodel.analyze ?max_hoist:b.max_hoist
      ~exit_live:Gen.live_at_exit ?summaries train
  in
  Bv_analysis.Advisor.advise ?config ~profile:b.profile costs

type advice_checked =
  { ac_advice : Bv_analysis.Advisor.t;
    ac_validation : Bv_analysis.Advisor.validation;
    ac_inputs : int;
    ac_max_outstanding : int
  }

let max_outstanding_of program =
  List.fold_left
    (fun acc p -> max acc (Bv_analysis.Speculation.max_outstanding p))
    0 program.Program.procs

let advise_validate ?predictor ?cache ?config ?interproc ?inputs b ~width =
  let advice = advise ?config ?interproc b in
  let inputs = Option.value inputs ~default:[ 1 ] in
  let acc =
    match
      List.map
        (fun input -> simulate_accounted ?predictor ?cache b ~input ~width)
        inputs
    with
    | [] -> invalid_arg "Runner.advise_validate: no inputs"
    | first :: rest -> List.fold_left merge_accounted first rest
  in
  (* Measured cost per site: the baseline run's recovery cycles — what a
     mispredicting branch actually stalls the front end for, the quantity
     the static cycles-saved ranking claims to predict. *)
  let measured =
    List.map
      (fun sa -> (sa.Acct.sa_site, Float.of_int sa.Acct.sa_recovery))
      (Acct.by_site acc.acc_base)
  in
  { ac_advice = advice;
    ac_validation = Bv_analysis.Advisor.validate ~measured advice;
    ac_inputs = List.length inputs;
    ac_max_outstanding =
      max_outstanding_of b.transform.Vanguard.Transform.program
  }
