(** Branch target buffer: tagged, direct-mapped target cache. A front end
    that predicts a branch taken without a BTB hit pays a re-steer bubble
    (it must wait for decode to produce the target). *)

type t

val create : ?entries:int -> unit -> t
(** Default 4096 entries (Table 1). *)

val lookup : t -> pc:int -> int option
(** Predicted target, if the entry is present and tag-matches. *)

val find : t -> pc:int -> int
(** Allocation-free {!lookup}: the predicted target, or -1 on a miss
    (targets are pcs, never negative). Counts hits/misses identically. *)

val update : t -> pc:int -> target:int -> unit

val hits : t -> int
val misses : t -> int
