type entry =
  { mutable tag : int;
    mutable ctr : int;  (* 0..7, taken if >= 4 *)
    mutable useful : int  (* 0..3 *)
  }

type state =
  { base : int array;  (* bimodal, 2-bit *)
    base_mask : int;
    tables : entry array array;
    hist_lens : int array;
    table_mask : int;
    idx_bits : int;  (* log2 (table_mask + 1), hoisted out of [index] *)
    tag_mask : int;
    mutable history : int;
    hmask : int;
    (* Incrementally-maintained folded views of [history], one triple per
       table: the two index folds (idx_bits and idx_bits-1 wide) and the
       tag fold (9 bits). Invariant: f_idx.(t) = fold history len idx_bits
       (etc.) for len = hist_lens.(t). *)
    f_idx : int array;
    f_idx2 : int array;
    f_tag : int array;
    mutable use_alt_on_na : int;  (* 0..15 *)
    mutable update_count : int;
    mutable lfsr : int
  }

let geometric ~first ~last ~n =
  if n = 1 then [| last |]
  else begin
    let r = Float.of_int last /. Float.of_int first in
    let ratio = r ** (1.0 /. Float.of_int (n - 1)) in
    Array.init n (fun i ->
        let l =
          Float.to_int
            (Float.round (Float.of_int first *. (ratio ** Float.of_int i)))
        in
        max 1 (min last l))
  end

(* XOR-fold the low [len] bits of [h] down to [bits] bits. *)
let fold h len bits =
  let mask = (1 lsl bits) - 1 in
  let rec go acc h remaining =
    if remaining <= 0 then acc
    else go (acc lxor (h land mask)) (h lsr bits) (remaining - bits)
  in
  go 0 (h land ((1 lsl len) - 1)) len

(* Rebuild every folded register from [st.history] (after an arbitrary
   history rewrite, i.e. a mispredict recovery). *)
let refold st =
  for t = 0 to Array.length st.hist_lens - 1 do
    let len = st.hist_lens.(t) in
    st.f_idx.(t) <- fold st.history len st.idx_bits;
    st.f_idx2.(t) <- fold st.history len (st.idx_bits - 1);
    st.f_tag.(t) <- fold st.history len 9
  done

(* O(1) update of an XOR-fold when the folded history shifts left by one:
   rotate within [bits], insert the new bit at position 0 and cancel the
   outgoing bit (previously at position len-1) at position len mod bits. *)
let shift_fold f ~bits ~len ~b ~old_top =
  let mask = (1 lsl bits) - 1 in
  let f = ((f lsl 1) lor (f lsr (bits - 1))) land mask in
  f lxor b lxor (old_top lsl (len mod bits))

(* Shift a new outcome bit into the history, keeping the folded
   registers in sync incrementally. *)
let shift_history st taken =
  let h = st.history in
  let b = Bool.to_int taken in
  let bits = st.idx_bits in
  for t = 0 to Array.length st.hist_lens - 1 do
    let len = st.hist_lens.(t) in
    let old_top = (h lsr (len - 1)) land 1 in
    st.f_idx.(t) <- shift_fold st.f_idx.(t) ~bits ~len ~b ~old_top;
    st.f_idx2.(t) <- shift_fold st.f_idx2.(t) ~bits:(bits - 1) ~len ~b ~old_top;
    st.f_tag.(t) <- shift_fold st.f_tag.(t) ~bits:9 ~len ~b ~old_top
  done;
  st.history <- ((h lsl 1) lor b) land st.hmask

let base_index st pc = Predictor.hash_pc pc land st.base_mask

let next_lfsr x =
  let x = x lxor (x lsl 13) land max_int in
  let x = x lxor (x lsr 7) in
  x lxor (x lsl 17) land max_int

let create ?(num_tables = 6) ?(table_bits = 11) ?(tag_bits = 9)
    ?(max_history = 62) () =
  let st =
    { base = Array.make (1 lsl 13) 1;
      base_mask = (1 lsl 13) - 1;
      tables =
        Array.init num_tables (fun _ ->
            Array.init (1 lsl table_bits) (fun _ ->
                { tag = -1; ctr = 4; useful = 0 }));
      hist_lens = geometric ~first:4 ~last:max_history ~n:num_tables;
      table_mask = (1 lsl table_bits) - 1;
      idx_bits = table_bits;
      tag_mask = (1 lsl tag_bits) - 1;
      history = 0;
      hmask = (1 lsl max_history) - 1;
      f_idx = Array.make num_tables 0;
      f_idx2 = Array.make num_tables 0;
      f_tag = Array.make num_tables 0;
      use_alt_on_na = 8;
      update_count = 0;
      lfsr = 0x12345
    }
  in
  let shift h taken = ((h lsl 1) lor Bool.to_int taken) land st.hmask in
  let storage_bits =
    (2 * (st.base_mask + 1))
    + num_tables * (st.table_mask + 1) * (tag_bits + 3 + 2)
  in
  (* meta layout: [| h; pred; provider+1; ppred; alt;
     idx_0..idx_{n-1}; tag_0..tag_{n-1} |]. The per-table indices and
     tags are pure functions of (pc, predict-time history); computing
     them once here and carrying them in meta lets [update] skip every
     fold entirely (it used to rewind [st.history] and re-derive them). *)
  let n = num_tables in
  let predict ~pc ~outcome:_ =
    let h = st.history in
    let meta = Array.make (5 + 2 * n) 0 in
    let hp = Predictor.hash_pc pc in
    let hp31 = Predictor.hash_pc (pc * 31) in
    for t = 0 to n - 1 do
      meta.(5 + t) <-
        (hp lxor st.f_idx.(t) lxor (st.f_idx2.(t) lsl 1)) land st.table_mask;
      meta.(5 + n + t) <-
        (hp31 lxor st.f_tag.(t) lxor (t * 0x5bd1)) land st.tag_mask
    done;
    let base_pred =
      Predictor.counter_taken st.base.(base_index st pc) ~max:3
    in
    (* Longest-match lookup over the cached indices/tags. *)
    let rec find t =
      if t < 0 then -1
      else if st.tables.(t).(meta.(5 + t)).tag = meta.(5 + n + t) then t
      else find (t - 1)
    in
    let provider = find (n - 1) in
    let ppred, alt =
      if provider < 0 then (base_pred, base_pred)
      else begin
        let alt =
          match find (provider - 1) with
          | -1 -> base_pred
          | a -> st.tables.(a).(meta.(5 + a)).ctr >= 4
        in
        (st.tables.(provider).(meta.(5 + provider)).ctr >= 4, alt)
      end
    in
    let pred =
      if provider >= 0 then begin
        let e = st.tables.(provider).(meta.(5 + provider)) in
        (* Weak, never-useful entries are "newly allocated": optionally
           trust the alternate prediction. *)
        if e.useful = 0 && (e.ctr = 3 || e.ctr = 4) && st.use_alt_on_na >= 8
        then alt
        else ppred
      end
      else ppred
    in
    shift_history st pred;
    meta.(0) <- h;
    meta.(1) <- Bool.to_int pred;
    meta.(2) <- provider + 1;
    meta.(3) <- Bool.to_int ppred;
    meta.(4) <- Bool.to_int alt;
    (pred, meta)
  in
  let update meta ~pc ~taken =
    (* Indices/tags for the predict-time history snapshot are cached in
       meta (offsets 5.. and 5+n..); no history rewind needed. *)
    let idx t = meta.(5 + t) in
    let tg t = meta.(5 + n + t) in
    let pred = meta.(1) = 1 in
    let provider = meta.(2) - 1 in
    let ppred = meta.(3) = 1 in
    let alt = meta.(4) = 1 in
    st.update_count <- st.update_count + 1;
    if provider >= 0 then begin
      let e = st.tables.(provider).(idx provider) in
      if e.tag = tg provider then begin
        e.ctr <- Predictor.counter_update e.ctr ~taken ~max:7;
        if ppred <> alt then
          e.useful <-
            Predictor.counter_update e.useful ~taken:(ppred = taken) ~max:3;
        (* Track whether alt would have been the better choice for newly
           allocated entries. *)
        if e.useful = 0 && ppred <> alt then
          st.use_alt_on_na <-
            Predictor.counter_update st.use_alt_on_na ~taken:(alt = taken)
              ~max:15
      end
    end
    else begin
      let i = base_index st pc in
      st.base.(i) <- Predictor.counter_update st.base.(i) ~taken ~max:3
    end;
    (* Allocate on misprediction, in a table longer than the provider. *)
    if pred <> taken && provider < n - 1 then begin
      let start = provider + 1 in
      (* Find candidate entries with useful = 0; pick pseudo-randomly with
         preference for shorter histories. *)
      let candidates = ref [] in
      for t = n - 1 downto start do
        let e = st.tables.(t).(idx t) in
        if e.useful = 0 then candidates := t :: !candidates
      done;
      (match !candidates with
      | [] ->
        (* No room: age the would-be victims. *)
        for t = start to n - 1 do
          let e = st.tables.(t).(idx t) in
          e.useful <- max 0 (e.useful - 1)
        done
      | c :: rest ->
        st.lfsr <- next_lfsr st.lfsr;
        let chosen =
          match rest with
          | c2 :: _ when st.lfsr land 3 = 0 -> c2
          | _ -> c
        in
        let e = st.tables.(chosen).(idx chosen) in
        e.tag <- tg chosen;
        e.ctr <- (if taken then 4 else 3);
        e.useful <- 0)
    end;
    (* Periodic useful-bit aging. *)
    if st.update_count land 0x3ffff = 0 then
      Array.iter
        (fun tbl -> Array.iter (fun e -> e.useful <- e.useful lsr 1) tbl)
        st.tables
  in
  let recover meta ~taken =
    st.history <- shift meta.(0) taken;
    refold st
  in
  { Predictor.name =
      Printf.sprintf "tage-%dx%db" num_tables table_bits;
    storage_bits;
    predict;
    update;
    recover
  }
