type t =
  { tags : int array;
    targets : int array;
    mask : int;
    mutable hits : int;
    mutable misses : int
  }

let create ?(entries = 4096) () =
  { tags = Array.make entries (-1);
    targets = Array.make entries 0;
    mask = entries - 1;
    hits = 0;
    misses = 0
  }

let slot t pc = Predictor.hash_pc pc land t.mask

let find t ~pc =
  let i = slot t pc in
  if t.tags.(i) = pc then begin
    t.hits <- t.hits + 1;
    t.targets.(i)
  end
  else begin
    t.misses <- t.misses + 1;
    -1
  end

let lookup t ~pc =
  let target = find t ~pc in
  if target >= 0 then Some target else None

let update t ~pc ~target =
  let i = slot t pc in
  t.tags.(i) <- pc;
  t.targets.(i) <- target

let hits t = t.hits
let misses t = t.misses
