type loop_entry =
  { mutable tag : int;
    mutable past_count : int;  (* trip count of the last completed run *)
    mutable current : int;  (* takens seen in the current run *)
    mutable confidence : int  (* consecutive confirmations, 0..7 *)
  }

let confidence_threshold = 3

(* meta layout: TAGE meta (variable length) ++ [| final_pred; loop_hit;
   loop_pred; sc_index |] appended as the last four slots. *)

let create ?(num_tables = 8) ?(table_bits = 12) ?(loop_entries = 64) () =
  let tage = Tage.create ~num_tables ~table_bits ~tag_bits:10 () in
  let loop_mask = loop_entries - 1 in
  let loops =
    Array.init loop_entries (fun _ ->
        { tag = -1; past_count = 0; current = 0; confidence = 0 })
  in
  let sc_bits = 10 in
  let sc_mask = (1 lsl sc_bits) - 1 in
  let sc = Array.make (1 lsl sc_bits) 16 in
  (* 5-bit counters centred at 16 *)
  let loop_index pc = Predictor.hash_pc pc land loop_mask in
  let loop_tag pc = (Predictor.hash_pc (pc * 17) lsr 8) land 0x3fff in
  (* The loop predictor models "taken past_count times, then one not-taken
     exit" loops (backward loop branches). *)
  let loop_lookup pc =
    let e = loops.(loop_index pc) in
    if e.tag = loop_tag pc && e.confidence >= confidence_threshold
       && e.past_count > 0
    then Some (e.current < e.past_count)
    else None
  in
  let loop_update pc ~taken =
    let i = loop_index pc in
    let e = loops.(i) in
    if e.tag <> loop_tag pc then begin
      (* Re-allocate only for taken branches (loop-shaped candidates). *)
      if taken then begin
        e.tag <- loop_tag pc;
        e.past_count <- 0;
        e.current <- 1;
        e.confidence <- 0
      end
    end
    else if taken then e.current <- e.current + 1
    else begin
      (* Run ended: confirm or learn the trip count. *)
      if e.past_count = e.current && e.past_count > 0 then
        e.confidence <- min 7 (e.confidence + 1)
      else begin
        e.past_count <- e.current;
        e.confidence <- 0
      end;
      e.current <- 0
    end
  in
  let sc_index pc pred =
    (Predictor.hash_pc (pc * 7) lxor Bool.to_int pred) land sc_mask
  in
  let predict ~pc ~outcome =
    let tage_pred, tmeta = tage.Predictor.predict ~pc ~outcome in
    let loop_hit, pred =
      match loop_lookup pc with
      | Some p -> (true, p)
      | None ->
        (* Statistical corrector: revert TAGE when strongly contradicted. *)
        let s = sc.(sc_index pc tage_pred) in
        if s <= 2 then (false, not tage_pred)
        else if s >= 30 then (false, tage_pred)
        else (false, tage_pred)
    in
    if pred <> tage_pred then
      (* Keep the speculative history consistent with the final direction. *)
      tage.Predictor.recover tmeta ~taken:pred;
    let meta =
      Array.append tmeta
        [| Bool.to_int pred;
           Bool.to_int loop_hit;
           Bool.to_int tage_pred;
           sc_index pc tage_pred
        |]
    in
    (pred, meta)
  in
  let update meta ~pc ~taken =
    let tlen = Array.length meta - 4 in
    let tmeta = Array.sub meta 0 tlen in
    tage.Predictor.update tmeta ~pc ~taken;
    loop_update pc ~taken;
    let tage_pred = meta.(tlen + 2) = 1 in
    let si = meta.(tlen + 3) in
    sc.(si) <- Predictor.counter_update sc.(si) ~taken:(tage_pred = taken) ~max:31
  in
  let recover meta ~taken =
    tage.Predictor.recover (Array.sub meta 0 (Array.length meta - 4)) ~taken
  in
  { Predictor.name = Printf.sprintf "isl-tage-%dx%db" num_tables table_bits;
    storage_bits =
      tage.Predictor.storage_bits
      + (loop_entries * (14 + 16 + 16 + 3))
      + (5 * (sc_mask + 1));
    predict;
    update;
    recover
  }
