(* Hot-path data structures in isolation: the monomorphic handle Ring,
   the Release occupancy calendars, the pre-decoded static table, the
   struct-of-arrays in-flight pool, and the SoA DBB — everything the
   per-cycle loop leans on for its zero-allocation / O(1) claims. *)

open Bv_pipeline
open Machine_state

(* ------------------------------------------------------------------ ring *)

let test_ring_fifo () =
  let r = Ring.create 4 in
  Alcotest.(check int) "empty" 0 (Ring.length r);
  for k = 0 to 9 do
    Ring.push r k
  done;
  (* pushed past the initial capacity: the backing array grew *)
  Alcotest.(check int) "length" 10 (Ring.length r);
  Alcotest.(check int) "front" 0 (Ring.front r);
  Alcotest.(check int) "get 7" 7 (Ring.get r 7);
  Alcotest.(check int) "pop" 0 (Ring.pop r);
  Alcotest.(check int) "pop" 1 (Ring.pop r);
  Ring.push r 10;
  Ring.push r 11;
  (* head has rotated; order must survive wraparound *)
  let xs = ref [] in
  Ring.iter r (fun x -> xs := x :: !xs);
  Alcotest.(check (list int))
    "fifo order across wrap"
    [ 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ]
    (List.rev !xs)

let test_ring_limit () =
  let r = Ring.create ~limit:3 8 in
  Alcotest.(check int) "logical capacity" 3 (Ring.capacity r);
  Ring.push r 1;
  Ring.push r 2;
  Alcotest.(check bool) "not full" false (Ring.is_full r);
  Ring.push r 3;
  Alcotest.(check bool) "full at limit" true (Ring.is_full r);
  ignore (Ring.pop r);
  Alcotest.(check bool) "pop reopens" false (Ring.is_full r)

let test_ring_truncate_tail () =
  let r = Ring.create 4 in
  List.iter (Ring.push r) [ 1; 2; 3; 14; 15 ];
  let removed = ref [] in
  Ring.truncate_tail r
    ~keep:(fun x -> x < 10)
    ~removed:(fun x -> removed := x :: !removed);
  Alcotest.(check (list int)) "removed in fifo order" [ 14; 15 ]
    (List.rev !removed);
  Alcotest.(check int) "survivors" 3 (Ring.length r);
  (* keep only bounds the *tail*: an interior non-matching entry stops
     the truncation *)
  let r2 = Ring.create 4 in
  List.iter (Ring.push r2) [ 14; 1; 15 ];
  Ring.truncate_tail r2 ~keep:(fun x -> x < 10) ~removed:(fun _ -> ());
  Alcotest.(check int) "interior entry shields the head" 2 (Ring.length r2)

let test_ring_filter_in_place () =
  let r = Ring.create 4 in
  (* rotate the head first so compaction must handle wraparound *)
  List.iter (Ring.push r) [ 99; 99; 99 ];
  for _ = 1 to 3 do
    ignore (Ring.pop r)
  done;
  List.iter (Ring.push r) [ 1; 2; 3; 4; 5; 6 ];
  Ring.filter_in_place r ~keep:(fun x -> x mod 2 = 0);
  let xs = ref [] in
  Ring.iter r (fun x -> xs := x :: !xs);
  Alcotest.(check (list int)) "kept, order preserved" [ 2; 4; 6 ]
    (List.rev !xs);
  Ring.drop_tail r 1;
  Alcotest.(check int) "drop_tail" 2 (Ring.length r)

(* --------------------------------------------------------------- release *)

let test_release_occupancy () =
  let c = Release.create ~horizon:64 in
  Alcotest.(check int) "empty" 0 (Release.occupancy c);
  Release.schedule c ~at:5;
  Release.schedule c ~at:5;
  Release.schedule c ~at:9;
  Alcotest.(check int) "three scheduled" 3 (Release.occupancy c);
  Release.drain c ~now:4;
  Alcotest.(check int) "nothing released before 5" 3 (Release.occupancy c);
  Release.drain c ~now:5;
  Alcotest.(check int) "both at-5 entries released" 1 (Release.occupancy c);
  (* drain is idempotent per cycle *)
  Release.drain c ~now:5;
  Alcotest.(check int) "re-drain is a no-op" 1 (Release.occupancy c);
  Release.drain c ~now:9;
  Alcotest.(check int) "drained dry" 0 (Release.occupancy c);
  (* the calendar is a ring: slots must be reusable past the horizon *)
  Release.schedule c ~at:80;
  Release.drain c ~now:79;
  Alcotest.(check int) "wrapped slot pending" 1 (Release.occupancy c);
  Release.drain c ~now:80;
  Alcotest.(check int) "wrapped slot released" 0 (Release.occupancy c)

(* ---------------------------------------------------------- static table *)

let static_image =
  lazy
    (let spec =
       Bv_workloads.Spec.make ~name:"hotpath" ~suite:Bv_workloads.Spec.Int_2006
         ~seed:3
         ~branch_classes:
           [ Bv_workloads.Spec.cls ~count:2 ~taken_rate:0.5
               ~predictability:0.8 ()
           ]
         ~inner_n:8 ~reps:1 ()
     in
     Bv_ir.Layout.program (Bv_workloads.Gen.generate ~input:1 spec))

let fresh_state () =
  Machine_state.create ~config:Config.four_wide (Lazy.force static_image)

(* The pre-decoded table must agree with the instruction-level decode
   helpers it replaced, for every pc in the image. *)
let test_static_table_agrees () =
  let st = fresh_state () in
  let fu_idx fu =
    match fu with
    | Bv_isa.Instr.Fu_int -> fu_int
    | Bv_isa.Instr.Fu_fp -> fu_fp
    | Bv_isa.Instr.Fu_mem -> fu_mem
    | Bv_isa.Instr.Fu_branch -> fu_branch
    | Bv_isa.Instr.Fu_none -> fu_none
  in
  Array.iteri
    (fun pc instr ->
      let si = st.static.(pc) in
      Alcotest.(check int)
        (Printf.sprintf "fu class @%d" pc)
        (fu_idx (Bv_isa.Instr.fu_class instr))
        si.s_fu;
      let dst =
        match Bv_isa.Instr.defs instr with
        | r :: _ -> Bv_isa.Reg.index r
        | [] -> -1
      in
      Alcotest.(check int) (Printf.sprintf "dst @%d" pc) dst si.s_dst;
      Alcotest.(check (list int))
        (Printf.sprintf "uses @%d" pc)
        (List.map Bv_isa.Reg.index (Bv_isa.Instr.uses instr))
        (Array.to_list si.s_uses);
      let mem_kind =
        match instr with
        | Bv_isa.Instr.Load _ -> 1
        | Bv_isa.Instr.Store _ -> 2
        | _ -> 0
      in
      Alcotest.(check int) (Printf.sprintf "mem kind @%d" pc) mem_kind
        si.s_mem_kind;
      Alcotest.(check bool)
        (Printf.sprintf "halt @%d" pc)
        (instr = Bv_isa.Instr.Halt)
        si.s_is_halt)
    st.code

(* ----------------------------------------------------------- handle pool *)

let test_pool_recycle () =
  let st = fresh_state () in
  let h0 = alloc_inflight st in
  let h1 = alloc_inflight st in
  Alcotest.(check bool) "distinct rows" true (h0 <> h1);
  st.c_kind.(h0) <- ck_branch;
  st.c_site.(h0) <- 7;
  st.c_meta.(h0) <- [| 42 |];
  recycle_inflight st h0;
  (* the freed row comes back first (LIFO), with its control columns
     cleared so the next occupant starts from a non-control row *)
  let h2 = alloc_inflight st in
  Alcotest.(check int) "freed row reused" h0 h2;
  Alcotest.(check int) "kind cleared" ck_none st.c_kind.(h2);
  Alcotest.(check int) "site cleared" (-1) st.c_site.(h2);
  Alcotest.(check bool) "meta cleared" true (st.c_meta.(h2) == no_ctrl_meta)

let test_pool_grows () =
  let st = fresh_state () in
  (* claim more rows than the initial pool size; all must be distinct *)
  let n = 200 in
  let hs = Array.init n (fun _ -> alloc_inflight st) in
  let sorted = Array.copy hs in
  Array.sort compare sorted;
  let distinct = ref true in
  for k = 1 to n - 1 do
    if sorted.(k) = sorted.(k - 1) then distinct := false
  done;
  Alcotest.(check bool) "all handles distinct" true !distinct;
  Array.iter (recycle_inflight st) hs;
  (* every row recycled: the next [n] allocations reuse them *)
  let reused = Array.init n (fun _ -> alloc_inflight st) in
  Array.sort compare reused;
  Alcotest.(check bool) "free list hands rows back" true (reused = sorted)

let () =
  Alcotest.run "bv_hotpath"
    [ ( "ring",
        [ Alcotest.test_case "fifo across growth and wrap" `Quick
            test_ring_fifo;
          Alcotest.test_case "limit vs backing" `Quick test_ring_limit;
          Alcotest.test_case "truncate_tail" `Quick test_ring_truncate_tail;
          Alcotest.test_case "filter_in_place" `Quick
            test_ring_filter_in_place
        ] );
      ( "release",
        [ Alcotest.test_case "occupancy calendar" `Quick
            test_release_occupancy
        ] );
      ( "static table",
        [ Alcotest.test_case "agrees with instruction decode" `Quick
            test_static_table_agrees
        ] );
      ( "pool",
        [ Alcotest.test_case "recycle clears control columns" `Quick
            test_pool_recycle;
          Alcotest.test_case "growth and reuse" `Quick test_pool_grows
        ] )
    ]
