(* Block-compiled fast path pillars:

   - run-length table units: straight-line runs stop at control
     instructions, halts and I-cache line boundaries;
   - fuzzed byte-identity: on random structured programs, a compiled
     run's full JSON (every Stats counter, cache stats) and both
     architectural digests equal the interpreted run's, across widths
     and under runahead. *)

open Bv_ir
open Bv_pipeline

let gen_program seed = Bv_workloads.Fuzzgen.generate ~seed

let machine_of config image =
  let st = Machine_state.create ~config image in
  Compile.attach st;
  st

let test_run_len () =
  let prog = gen_program 42 in
  let image = Layout.program prog in
  let st = machine_of Config.four_wide image in
  let n = st.Machine_state.code_len in
  Alcotest.(check int) "table sized" n (Array.length st.Machine_state.run_len);
  for pc = 0 to n - 1 do
    let rl = st.Machine_state.run_len.(pc) in
    (match st.Machine_state.code.(pc) with
    | Bv_isa.Instr.Branch _ | Bv_isa.Instr.Jump _ | Bv_isa.Instr.Call _
    | Bv_isa.Instr.Ret | Bv_isa.Instr.Predict _ | Bv_isa.Instr.Resolve _
    | Bv_isa.Instr.Halt ->
      Alcotest.(check int) (Printf.sprintf "control pc %d" pc) 0 rl
    | _ ->
      Alcotest.(check bool) (Printf.sprintf "simple pc %d" pc) true (rl >= 1));
    if rl > 0 then begin
      (* a run never crosses an I-cache line boundary *)
      Alcotest.(check int)
        (Printf.sprintf "run at pc %d stays in line" pc)
        (Machine_state.line_of st pc)
        (Machine_state.line_of st (pc + rl - 1));
      (* and is maximal: the next pc is a new line, control, or the end *)
      if pc + rl < n then
        Alcotest.(check bool)
          (Printf.sprintf "run at pc %d maximal" pc)
          true
          (Machine_state.line_of st (pc + rl) <> Machine_state.line_of st pc
          || st.Machine_state.run_len.(pc + rl) = 0)
    end
  done

let result_string res = Bv_obs.Json.to_string (Machine.result_to_json res)

let configs =
  Config.
    [ two_wide;
      four_wide;
      eight_wide;
      { (make ~predictor:Bv_bpred.Kind.Tage ~width:8 ()) with runahead = true }
    ]

let prop_byte_identity =
  QCheck2.Test.make ~name:"compiled run = interpreted run (bit-for-bit)"
    ~count:30
    (QCheck2.Gen.int_range 0 100_000)
    (fun seed ->
      let image = Layout.program (gen_program seed) in
      List.for_all
        (fun config ->
          let a = Machine.run ~compile:true ~config image in
          let b = Machine.run ~compile:false ~config image in
          result_string a = result_string b
          && a.Machine.mem_digest = b.Machine.mem_digest
          && a.Machine.arch_digest = b.Machine.arch_digest)
        configs)

let () =
  Alcotest.run "bv_compile"
    [ ("run-len", [ Alcotest.test_case "table invariants" `Quick test_run_len ]);
      ( "byte-identity",
        [ QCheck_alcotest.to_alcotest prop_byte_identity ] )
    ]
