(* Translation validation stack: Symexec normalization, Alias verdicts,
   alias-aware scheduling, Equiv accept/reject, and the mutation-kill
   property (seeded semantic mutations of transformed programs must all
   be refuted while unmutated outputs all prove equivalent). *)

open Bv_isa
open Bv_ir
module S = Bv_analysis.Symexec
module Alias = Bv_analysis.Alias
module Equiv = Bv_analysis.Equiv
module Diagnostic = Bv_analysis.Diagnostic

let r = Reg.make
let scratch = Vanguard.Transform.default_temp_pool
let gen_program seed = Bv_workloads.Fuzzgen.generate ~seed

let errors diags = List.filter Diagnostic.is_error diags

(* -------------------------------------------------------------- symexec *)

let test_symexec_normalization () =
  let ctx = S.create () in
  let x = S.symbol ctx "x" and y = S.symbol ctx "y" in
  let c k = S.const ctx k in
  let id (e : S.expr) = e.S.id in
  Alcotest.(check int) "constant folding"
    (id (c 12))
    (id (S.alu ctx Instr.Add (c 5) (c 7)));
  Alcotest.(check int) "x + 0 = x" (id x) (id (S.alu ctx Instr.Add x (c 0)));
  Alcotest.(check int) "0 + x = x" (id x) (id (S.alu ctx Instr.Add (c 0) x));
  Alcotest.(check int) "x - x = 0" (id (c 0)) (id (S.alu ctx Instr.Sub x x));
  Alcotest.(check int) "x ^ x = 0" (id (c 0)) (id (S.alu ctx Instr.Xor x x));
  Alcotest.(check int) "x * 1 = x" (id x) (id (S.alu ctx Instr.Mul x (c 1)));
  Alcotest.(check int) "commutative operands order"
    (id (S.alu ctx Instr.Add x y))
    (id (S.alu ctx Instr.Add y x));
  Alcotest.(check int) "congruence: same op, same children"
    (id (S.alu ctx Instr.Sub x y))
    (id (S.alu ctx Instr.Sub x y));
  Alcotest.(check int) "reflexive compare decides"
    (id (c 1))
    (id (S.cmp ctx Instr.Le x x));
  Alcotest.(check int) "ite with equal arms collapses" (id y)
    (id (S.ite ctx x y y));
  Alcotest.(check int) "ite with constant condition" (id y)
    (id (S.ite ctx (c 3) y x))

let test_symexec_memory () =
  let ctx = S.create () in
  let base = S.symbol ctx "base" in
  let addr k = S.alu ctx Instr.Add base (S.const ctx k) in
  let m0 = S.memsym ctx "mem" in
  let v1 = S.symbol ctx "v1" and v2 = S.symbol ctx "v2" in
  Alcotest.(check bool) "disjointness of base+0 / base+8" true
    (S.surely_disjoint ctx (addr 0) (addr 8));
  Alcotest.(check bool) "base+0 / base+4 overlap" false
    (S.surely_disjoint ctx (addr 0) (addr 4));
  let m1 = S.store ctx (S.store ctx m0 (addr 0) v1) (addr 8) v2 in
  let m2 = S.store ctx (S.store ctx m0 (addr 8) v2) (addr 0) v1 in
  Alcotest.(check int) "disjoint stores normalize to one log" m1.S.mid
    m2.S.mid;
  Alcotest.(check int) "select hits the matching store" v2.S.id
    (S.select ctx m1 (addr 8)).S.id;
  Alcotest.(check int) "select looks through a disjoint store"
    (S.select ctx m0 (addr 0)).S.id
    (S.select ctx (S.store ctx m0 (addr 8) v2) (addr 0)).S.id;
  Alcotest.(check int) "same-address store shadows"
    (S.store ctx m0 (addr 0) v2).S.mid
    (S.store ctx (S.store ctx m0 (addr 0) v1) (addr 0) v2).S.mid;
  (* unknown base: may alias, select must stay opaque *)
  let unknown = S.symbol ctx "p" in
  Alcotest.(check bool) "select blocked by may-aliasing store" false
    ((S.select ctx (S.store ctx m0 unknown v1) (addr 0)).S.id
    = (S.select ctx m0 (addr 0)).S.id)

let test_symexec_exec () =
  let ctx = S.create () in
  let init =
    S.init ctx ~reg_symbol:Reg.to_string ~mem_symbol:"mem"
  in
  let store ~src ~offset = Instr.Store { src = r src; base = r 0; offset } in
  let load ~dst ~offset =
    Instr.Load { dst = r dst; base = r 0; offset; speculative = false }
  in
  (* store-to-load forwarding through the log *)
  let st =
    S.exec_body ctx init
      [ Instr.Mov { dst = r 6; src = Instr.Imm 5 };
        store ~src:6 ~offset:16;
        load ~dst:7 ~offset:16
      ]
  in
  Alcotest.(check int) "forwarded value" st.S.regs.(6).S.id
    st.S.regs.(7).S.id;
  (* a reordered pair of disjoint stores reaches the same memory term *)
  let s1 =
    S.exec_body ctx init [ store ~src:6 ~offset:0; store ~src:7 ~offset:8 ]
  in
  let s2 =
    S.exec_body ctx init [ store ~src:7 ~offset:8; store ~src:6 ~offset:0 ]
  in
  Alcotest.(check int) "store order normalizes" s1.S.mem.S.mid s2.S.mem.S.mid;
  (* cmov is an ite *)
  let cm =
    S.exec_body ctx init
      [ Instr.Cmov { on = true; cond = r 5; dst = r 6; src = Instr.Reg (r 7) } ]
  in
  Alcotest.(check int) "cmov"
    (S.ite ctx init.S.regs.(5) init.S.regs.(7) init.S.regs.(6)).S.id
    cm.S.regs.(6).S.id

(* ---------------------------------------------------------------- alias *)

let block label body term = Block.make ~label ~body ~term

let test_alias_verdicts () =
  let ld0 = Instr.Load { dst = r 6; base = r 0; offset = 0; speculative = false } in
  let st8 = Instr.Store { src = r 7; base = r 0; offset = 8 } in
  let st0 = Instr.Store { src = r 8; base = r 0; offset = 0 } in
  let ld_p = Instr.Load { dst = r 9; base = r 2; offset = 0; speculative = false } in
  let st_p8 = Instr.Store { src = r 9; base = r 3; offset = 0 } in
  let proc =
    Proc.make ~name:"p"
      [ block "entry"
          [ Instr.Alu { op = Instr.Add; dst = r 3; src1 = r 2; src2 = Instr.Imm 8 };
            ld0; st8; st0; ld_p; st_p8
          ]
          Term.Halt
      ]
  in
  let t = Alias.analyze proc in
  Alcotest.(check bool) "r0+0 vs r0+8 disjoint" false (Alias.may_alias t ld0 st8);
  Alcotest.(check bool) "r0+0 vs r0+0 alias" true (Alias.may_alias t ld0 st0);
  Alcotest.(check bool) "r0+8 vs r0+0 disjoint" false (Alias.may_alias t st8 st0);
  Alcotest.(check bool) "r2+0 vs (r2+8)+0 disjoint" false
    (Alias.may_alias t ld_p st_p8);
  (* unrelated entry bases cannot be disproved *)
  Alcotest.(check bool) "different entry bases alias" true
    (Alias.may_alias t st0 st_p8)

let test_alias_call_havoc () =
  let ld = Instr.Load { dst = r 6; base = r 1; offset = 0; speculative = false } in
  let st = Instr.Store { src = r 6; base = r 1; offset = 8 } in
  let proc =
    Proc.make ~name:"p"
      [ block "entry" [] (Term.Call { target = "leaf"; return_to = "after" });
        block "after" [ ld; st ] Term.Halt
      ]
  in
  let t = Alias.analyze proc in
  (* r1 was havocked by the call: both ops are Unknown, so may-alias *)
  Alcotest.(check bool) "post-call addresses unknown" true
    (Alias.may_alias t ld st);
  match Alias.address_of t ld with
  | Alias.Unknown -> ()
  | _ -> Alcotest.fail "expected Unknown after call havoc"

let test_alias_join () =
  let st = Instr.Store { src = r 6; base = r 2; offset = 0 } in
  let ld = Instr.Load { dst = r 7; base = r 2; offset = 8; speculative = false } in
  let proc =
    Proc.make ~name:"p"
      [ block "entry" []
          (Term.Branch { on = true; src = r 5; taken = "a"; not_taken = "b"; id = 1 });
        block "a"
          [ Instr.Mov { dst = r 2; src = Instr.Imm 0 } ]
          (Term.Jump "join");
        block "b"
          [ Instr.Mov { dst = r 2; src = Instr.Imm 16 } ]
          (Term.Jump "join");
        block "join" [ st; ld ] Term.Halt
      ]
  in
  let t = Alias.analyze proc in
  (* r2 is 0 or 16 at the join — Top — so the pair may alias *)
  Alcotest.(check bool) "conflicting defs join to Top" true
    (Alias.may_alias t st ld)

let test_alias_top_meets_anchor () =
  (* One arm leaves r2 anchored to its entry value, the other pins it to
     an absolute constant. The regions share nothing, so the join must
     land on Unknown — keeping either operand would let the offsets
     below "prove" disjointness that doesn't hold. *)
  let st = Instr.Store { src = r 6; base = r 2; offset = 0 } in
  let ld =
    Instr.Load { dst = r 7; base = r 2; offset = 64; speculative = false }
  in
  let proc =
    Proc.make ~name:"p"
      [ block "entry" []
          (Term.Branch
             { on = true; src = r 5; taken = "pin"; not_taken = "keep"; id = 1 });
        block "pin"
          [ Instr.Mov { dst = r 2; src = Instr.Imm 0 } ]
          (Term.Jump "join");
        block "keep" [] (Term.Jump "join");
        block "join" [ st; ld ] Term.Halt
      ]
  in
  let t = Alias.analyze proc in
  (match Alias.address_of t st with
  | Alias.Unknown -> ()
  | _ -> Alcotest.fail "anchored-meets-absolute join must be Unknown");
  Alcotest.(check bool) "offsets alone cannot separate the pair" true
    (Alias.may_alias t st ld)

let test_alias_havoc_rejoin () =
  (* A call on one arm havocs the base register; rejoining with the
     untouched anchored arm must stay havocked — the join cannot wash
     out the call's effect. *)
  let st = Instr.Store { src = r 6; base = r 1; offset = 0 } in
  let ld =
    Instr.Load { dst = r 7; base = r 1; offset = 32; speculative = false }
  in
  let proc =
    Proc.make ~name:"p"
      [ block "entry" []
          (Term.Branch
             { on = true; src = r 5; taken = "call"; not_taken = "skip"; id = 1 });
        block "call" [] (Term.Call { target = "leaf"; return_to = "ret" });
        block "ret" [] (Term.Jump "join");
        block "skip" [] (Term.Jump "join");
        block "join" [ st; ld ] Term.Halt
      ]
  in
  let t = Alias.analyze proc in
  (match Alias.address_of t ld with
  | Alias.Unknown -> ()
  | _ -> Alcotest.fail "call havoc must survive the rejoin");
  Alcotest.(check bool) "havocked base may alias" true
    (Alias.may_alias t st ld)

(* ------------------------------------------------- alias-aware scheduling *)

let positions body =
  List.mapi (fun i instr -> (instr, i)) body

let pos_of body instr = List.assq instr (positions body)

let test_alias_sched () =
  let st = Instr.Store { src = r 7; base = r 0; offset = 0 } in
  let ld = Instr.Load { dst = r 6; base = r 0; offset = 8; speculative = false } in
  let use = Instr.Alu { op = Instr.Add; dst = r 8; src1 = r 6; src2 = Instr.Imm 1 } in
  let body = [ st; ld; use ] in
  let proc = Proc.make ~name:"p" [ block "entry" body Term.Halt ] in
  let t = Alias.analyze proc in
  let default = Bv_sched.Sched.schedule_body ~term:Term.Halt body in
  Alcotest.(check bool) "store barrier holds by default" true
    (pos_of default st < pos_of default ld);
  let relaxed =
    Bv_sched.Sched.schedule_body ~may_alias:(Alias.may_alias t) ~term:Term.Halt
      body
  in
  Alcotest.(check bool) "disjoint load hoists past the store" true
    (pos_of relaxed ld < pos_of relaxed st);
  (* an aliasing pair must keep its order even with the oracle *)
  let st0 = Instr.Store { src = r 7; base = r 0; offset = 8 } in
  let body2 = [ st0; ld; use ] in
  let proc2 = Proc.make ~name:"p" [ block "entry" body2 Term.Halt ] in
  let t2 = Alias.analyze proc2 in
  let relaxed2 =
    Bv_sched.Sched.schedule_body ~may_alias:(Alias.may_alias t2)
      ~term:Term.Halt body2
  in
  Alcotest.(check bool) "aliasing store/load keeps order" true
    (pos_of relaxed2 st0 < pos_of relaxed2 ld)

(* ------------------------------------------------------------ equivalence *)

let shape_valid_candidates prog =
  let image = Layout.program (Program.copy prog) in
  let profile =
    Bv_profile.Profile.collect
      ~predictor:(Bv_bpred.Kind.create Bv_bpred.Kind.Always_not_taken)
      image
  in
  (Vanguard.Select.select ~threshold:(-2.0) ~min_executed:0 ~profile prog)
    .Vanguard.Select.candidates

let seeds = QCheck2.Gen.int_range 0 100_000

let prop_transform_proves =
  QCheck2.Test.make ~name:"transformed fuzz programs prove equivalent"
    ~count:60 seeds
    (fun seed ->
      let prog = gen_program seed in
      let candidates = shape_valid_candidates prog in
      (* ~prove raises on any counterexample *)
      let result = Vanguard.Transform.apply ~prove:true ~candidates prog in
      let diags =
        Equiv.verify ~scratch ~original:prog result.Vanguard.Transform.program
      in
      errors diags = []
      && List.exists (fun d -> d.Diagnostic.severity = Diagnostic.Info) diags)

let prop_transform_self_checks =
  QCheck2.Test.make
    ~name:"transformed fuzz programs pass the self-consistency check"
    ~count:30 seeds
    (fun seed ->
      let prog = gen_program seed in
      let candidates = shape_valid_candidates prog in
      let result = Vanguard.Transform.apply ~candidates prog in
      errors (Equiv.verify_self ~scratch result.Vanguard.Transform.program)
      = [])

let prop_assertconv_proves =
  QCheck2.Test.make ~name:"assert-converted fuzz programs prove equivalent"
    ~count:30 seeds
    (fun seed ->
      let prog = gen_program seed in
      let candidates =
        List.mapi (fun i c -> (c, i mod 2 = 0)) (shape_valid_candidates prog)
      in
      let result = Vanguard.Assertconv.apply ~prove:true ~candidates prog in
      errors
        (Equiv.verify ~scratch ~original:prog
           result.Vanguard.Assertconv.program)
      = [])

let prop_alias_sched_preserves =
  QCheck2.Test.make
    ~name:"alias-aware program scheduling preserves semantics" ~count:60
    seeds
    (fun seed ->
      let prog = gen_program seed in
      let digest p =
        Bv_exec.Interp.arch_digest (Bv_exec.Interp.run (Layout.program p))
      in
      let want = digest (Program.copy prog) in
      Bv_sched.Sched.schedule_program
        ~alias:Vanguard.Transform.alias_oracle prog;
      digest prog = want)

(* A deterministic rejection case: swapping the resolve arms of a
   transformed program must produce counterexamples. *)
let find_transformed_seed () =
  let rec go seed =
    if seed > 200 then Alcotest.fail "no transformable fuzz seed found"
    else
      let prog = gen_program seed in
      let candidates = shape_valid_candidates prog in
      let result = Vanguard.Transform.apply ~candidates prog in
      if result.Vanguard.Transform.reports <> [] then
        (prog, result.Vanguard.Transform.program)
      else go (seed + 1)
  in
  go 0

let test_equiv_rejects_swapped_arms () =
  let original, transformed = find_transformed_seed () in
  let mutant = Program.copy transformed in
  let swapped = ref false in
  List.iter
    (fun proc ->
      List.iter
        (fun b ->
          match b.Block.term with
          | Term.Resolve t when not !swapped ->
            swapped := true;
            b.Block.term <-
              Term.Resolve
                { t with
                  mispredict = t.fallthrough;
                  fallthrough = t.mispredict
                }
          | _ -> ())
        proc.Proc.blocks)
    mutant.Program.procs;
  Alcotest.(check bool) "found a resolve to swap" true !swapped;
  Alcotest.(check bool) "swapped arms are refuted" true
    (errors (Equiv.verify ~scratch ~original mutant) <> [])

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i =
    i + nl <= hl && (String.equal (String.sub hay i nl) needle || go (i + 1))
  in
  go 0

let test_equiv_budget_overflow_message () =
  (* A branch tree with no reconvergence is one region with 2^depth
     paths; a budget of 4 trips on the fifth. The diagnostic must be
     actionable: budget, region, paths-explored count, and the branch
     block where exploration overflowed. *)
  let leaf l = block l [] Term.Halt in
  let br src ~taken ~not_taken id =
    Term.Branch { on = true; src = r src; taken; not_taken; id }
  in
  let prog =
    Program.make ~main:"main"
      [ Proc.make ~name:"main"
          [ block "entry" [] (br 5 ~taken:"a" ~not_taken:"b" 1);
            block "a" [] (br 6 ~taken:"aa" ~not_taken:"ab" 2);
            block "b" [] (br 7 ~taken:"ba" ~not_taken:"bb" 3);
            block "aa" [] (br 8 ~taken:"l0" ~not_taken:"l1" 4);
            block "ab" [] (br 9 ~taken:"l2" ~not_taken:"l3" 5);
            block "ba" [] (br 10 ~taken:"l4" ~not_taken:"l5" 6);
            block "bb" [] (br 11 ~taken:"l6" ~not_taken:"l7" 7);
            leaf "l0"; leaf "l1"; leaf "l2"; leaf "l3";
            leaf "l4"; leaf "l5"; leaf "l6"; leaf "l7"
          ]
      ]
  in
  match errors (Equiv.verify_self ~max_paths:4 prog) with
  | [] -> Alcotest.fail "blown budget must be an error, not an accept"
  | d :: _ ->
    let msg = d.Diagnostic.message in
    Alcotest.(check bool) "names the budget" true
      (contains msg "path budget (4) exceeded");
    Alcotest.(check bool) "names the paths-explored count" true
      (contains msg "paths explored");
    Alcotest.(check bool) "names the overflowing branch block" true
      (contains msg "overflow at branch ")

(* ------------------------------------------------------- mutation killing *)

(* Seeded semantic mutations of transformed programs. Each mutator edits a
   deep copy in place and reports whether it found a victim site. *)

let each_block p f =
  let hit = ref false in
  List.iter
    (fun proc ->
      List.iter (fun b -> if not !hit then hit := f b) proc.Proc.blocks)
    p.Program.procs;
  !hit

let rewrite_first_instr p ~pick ~rewrite =
  each_block p (fun b ->
      let rec go acc = function
        | [] -> false
        | i :: rest ->
          if pick i then begin
            b.Block.body <- List.rev_append acc (rewrite i :: rest);
            true
          end
          else go (i :: acc) rest
      in
      go [] b.Block.body)

let mutators : (string * (Program.t -> bool)) list =
  [ ( "swap-resolve-arms",
      fun p ->
        each_block p (fun b ->
            match b.Block.term with
            | Term.Resolve t ->
              b.Block.term <-
                Term.Resolve
                  { t with
                    mispredict = t.fallthrough;
                    fallthrough = t.mispredict
                  };
              true
            | _ -> false) );
    ( "flip-predicted-taken",
      fun p ->
        each_block p (fun b ->
            match b.Block.term with
            | Term.Resolve t ->
              b.Block.term <-
                Term.Resolve { t with predicted_taken = not t.predicted_taken };
              true
            | _ -> false) );
    ( "flip-resolve-polarity",
      fun p ->
        each_block p (fun b ->
            match b.Block.term with
            | Term.Resolve t ->
              b.Block.term <- Term.Resolve { t with on = not t.on };
              true
            | _ -> false) );
    ( "drop-commit-move",
      fun p ->
        each_block p (fun b ->
            if contains b.Block.label "@commit" && b.Block.body <> [] then begin
              b.Block.body <- List.tl b.Block.body;
              true
            end
            else false) );
    ( "drop-resolution-instr",
      fun p ->
        each_block p (fun b ->
            if
              (contains b.Block.label "@rnt." || contains b.Block.label "@rt.")
              && b.Block.body <> []
            then begin
              b.Block.body <- List.tl b.Block.body;
              true
            end
            else false) );
    ( "swap-branch-targets",
      fun p ->
        each_block p (fun b ->
            match b.Block.term with
            | Term.Branch t ->
              b.Block.term <-
                Term.Branch { t with taken = t.not_taken; not_taken = t.taken };
              true
            | _ -> false) );
    ( "bump-store-offset",
      fun p ->
        rewrite_first_instr p
          ~pick:(function Instr.Store _ -> true | _ -> false)
          ~rewrite:(function
            | Instr.Store s ->
              Instr.Store { s with offset = (s.offset + 8) mod 512 }
            | i -> i) );
    ( "bump-load-offset",
      fun p ->
        rewrite_first_instr p
          ~pick:(function Instr.Load _ -> true | _ -> false)
          ~rewrite:(function
            | Instr.Load l ->
              Instr.Load { l with offset = (l.offset + 8) mod 512 }
            | i -> i) );
    ( "flip-cmp",
      fun p ->
        rewrite_first_instr p
          ~pick:(function Instr.Cmp _ -> true | _ -> false)
          ~rewrite:(function
            | Instr.Cmp c ->
              let op =
                match c.op with
                | Instr.Eq -> Instr.Ne
                | Instr.Ne -> Instr.Eq
                | Instr.Lt -> Instr.Ge
                | Instr.Ge -> Instr.Lt
                | Instr.Le -> Instr.Gt
                | Instr.Gt -> Instr.Le
              in
              Instr.Cmp { c with op }
            | i -> i) );
    ( "bump-mov-imm",
      fun p ->
        rewrite_first_instr p
          ~pick:(function
            | Instr.Mov { src = Instr.Imm _; _ } -> true
            | _ -> false)
          ~rewrite:(function
            | Instr.Mov { dst; src = Instr.Imm k } ->
              Instr.Mov { dst; src = Instr.Imm (k + 1) }
            | i -> i) );
    ( "flip-cmov",
      fun p ->
        rewrite_first_instr p
          ~pick:(function Instr.Cmov _ -> true | _ -> false)
          ~rewrite:(function
            | Instr.Cmov c -> Instr.Cmov { c with on = not c.on }
            | i -> i) )
  ]

let scratch_indices = List.map Reg.index scratch

let observable program policy =
  match
    Bv_exec.Interp.run ~predict_policy:policy ~max_instrs:5_000_000
      (Layout.program (Program.copy program))
  with
  | exception Bv_exec.Interp.Fault msg -> Error ("fault: " ^ msg)
  | st ->
    if not st.Bv_exec.Interp.halted then Error "did not halt"
    else
      Ok
        ( Array.to_list st.Bv_exec.Interp.mem,
          st.Bv_exec.Interp.store_count,
          List.filteri
            (fun i _ -> not (List.mem i scratch_indices))
            (Array.to_list st.Bv_exec.Interp.regs) )

(* Policy builders: the alternating one is stateful, so each run gets a
   fresh instance (otherwise the two runs being compared would see
   different prediction sequences). *)
let policies =
  [ (fun () ~pc:_ ~id:_ -> false);
    (fun () ~pc:_ ~id:_ -> true);
    (fun () ->
      let flip = ref false in
      fun ~pc:_ ~id:_ ->
        flip := not !flip;
        !flip)
  ]

let semantically_different original mutant =
  List.exists
    (fun policy -> observable original (policy ()) <> observable mutant (policy ()))
    policies

let test_mutation_kill () =
  let seeds = List.init 25 (fun i -> 31 * i) in
  let total = ref 0 and killed = ref 0 and escaped = ref [] in
  List.iter
    (fun seed ->
      let prog = gen_program seed in
      let candidates = shape_valid_candidates prog in
      let result = Vanguard.Transform.apply ~candidates prog in
      let transformed = result.Vanguard.Transform.program in
      if result.Vanguard.Transform.reports <> [] then
        List.iter
          (fun (name, mutate) ->
            let mutant = Program.copy transformed in
            if mutate mutant then
              match Validate.check_exn mutant with
              | exception _ -> () (* malformed, not Equiv's concern *)
              | () ->
                if semantically_different prog mutant then begin
                  incr total;
                  if errors (Equiv.verify ~scratch ~original:prog mutant) <> []
                  then incr killed
                  else escaped := Printf.sprintf "%s (seed %d)" name seed :: !escaped
                end)
          mutators)
    seeds;
  Printf.printf "mutation-kill: %d/%d semantic mutants refuted\n%!" !killed
    !total;
  Alcotest.(check bool)
    (Printf.sprintf "enough semantic mutants to be meaningful (%d)" !total)
    true (!total >= 30);
  let rate = float_of_int !killed /. float_of_int (max 1 !total) in
  if rate < 0.9 then
    Alcotest.failf "kill rate %.2f below 0.9; escapes: %s" rate
      (String.concat ", " !escaped)

(* ------------------------------------------------------------------ main *)

let () =
  Alcotest.run "bv_equiv"
    [ ( "symexec",
        [ Alcotest.test_case "normalization" `Quick test_symexec_normalization;
          Alcotest.test_case "memory terms" `Quick test_symexec_memory;
          Alcotest.test_case "execution" `Quick test_symexec_exec
        ] );
      ( "alias",
        [ Alcotest.test_case "verdicts" `Quick test_alias_verdicts;
          Alcotest.test_case "call havoc" `Quick test_alias_call_havoc;
          Alcotest.test_case "join to top" `Quick test_alias_join;
          Alcotest.test_case "top meets anchored interval" `Quick
            test_alias_top_meets_anchor;
          Alcotest.test_case "call havoc survives a rejoin" `Quick
            test_alias_havoc_rejoin;
          Alcotest.test_case "alias-aware scheduling" `Quick test_alias_sched
        ] );
      ( "equiv",
        [ Alcotest.test_case "rejects swapped resolve arms" `Quick
            test_equiv_rejects_swapped_arms;
          Alcotest.test_case "budget overflow names the branch" `Quick
            test_equiv_budget_overflow_message;
          Alcotest.test_case "mutation kill" `Slow test_mutation_kill
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_transform_proves;
              prop_transform_self_checks;
              prop_assertconv_proves;
              prop_alias_sched_preserves
            ] )
    ]
