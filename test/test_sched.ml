open Bv_isa
open Bv_ir

let r = Reg.make
let add d a b = Instr.Alu { op = Instr.Add; dst = r d; src1 = r a; src2 = Instr.Reg (r b) }
let addi d a v = Instr.Alu { op = Instr.Add; dst = r d; src1 = r a; src2 = Instr.Imm v }
let ld d b o = Instr.Load { dst = r d; base = r b; offset = o; speculative = false }
let st s b o = Instr.Store { src = r s; base = r b; offset = o }

let position instr order =
  let rec go i = function
    | [] -> Alcotest.failf "missing %s" (Instr.to_string instr)
    | x :: _ when x == instr -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 order

let sched body = Bv_sched.Sched.schedule_body ~term:Term.Halt body

let test_is_permutation () =
  let body = [ ld 1 0 0; add 2 1 1; ld 3 0 8; addi 4 3 1; st 4 0 16 ] in
  let out = sched body in
  Alcotest.(check int) "same length" (List.length body) (List.length out);
  List.iter
    (fun i ->
      Alcotest.(check bool) "present" true (List.exists (fun j -> i == j) out))
    body

let test_raw_preserved () =
  let producer = ld 1 0 0 in
  let consumer = add 2 1 1 in
  let out = sched [ producer; consumer ] in
  Alcotest.(check bool) "producer first" true
    (position producer out < position consumer out)

let test_loads_hoisted () =
  (* independent load placed late in the original order should move up
     ahead of cheap ALU work *)
  let a1 = addi 2 2 1 and a2 = addi 2 2 2 and a3 = addi 2 2 3 in
  let late_load = ld 3 0 0 in
  let out = sched [ a1; a2; a3; late_load ] in
  Alcotest.(check int) "load first" 0 (position late_load out)

let test_store_ordering () =
  let s1 = st 1 0 0 in
  let l1 = ld 2 0 0 in
  let s2 = st 2 0 8 in
  let out = sched [ s1; l1; s2 ] in
  Alcotest.(check bool) "load after older store" true
    (position s1 out < position l1 out);
  Alcotest.(check bool) "store after older load" true
    (position l1 out < position s2 out)

let test_alias_oracle_relaxes_barrier () =
  (* with a may-alias oracle disproving every pair, the load is free to
     hoist past the older store; an all-true oracle keeps the barrier *)
  let s1 = st 1 0 0 in
  let l1 = ld 2 0 8 in
  let chain = [ add 3 2 2; add 4 3 3 ] in
  let body = [ s1; l1 ] @ chain in
  let relaxed =
    Bv_sched.Sched.schedule_body ~may_alias:(fun _ _ -> false) ~term:Term.Halt
      body
  in
  Alcotest.(check bool) "disjoint load hoists" true
    (position l1 relaxed < position s1 relaxed);
  let strict =
    Bv_sched.Sched.schedule_body ~may_alias:(fun _ _ -> true) ~term:Term.Halt
      body
  in
  Alcotest.(check bool) "aliasing load stays put" true
    (position s1 strict < position l1 strict);
  (* the conservative oracle must reproduce the default schedule exactly *)
  Alcotest.(check bool) "all-true oracle = default" true
    (List.for_all2 ( == ) (sched body) strict)

let test_load_load_reorder_allowed () =
  (* two independent loads may swap: the second feeds a longer chain *)
  let l1 = ld 1 0 0 in
  let l2 = ld 2 0 8 in
  let chain = [ add 3 2 2; add 4 3 3; add 5 4 4 ] in
  let out = sched ([ l1; l2 ] @ chain) in
  Alcotest.(check bool) "critical load first" true
    (position l2 out <= position l1 out)

let test_war_waw () =
  let use_old = add 2 1 1 in
  let redefine = addi 1 0 5 in
  let out = sched [ use_old; redefine ] in
  Alcotest.(check bool) "WAR preserved" true
    (position use_old out < position redefine out);
  let w1 = addi 1 0 1 in
  let w2 = addi 1 0 2 in
  let out = sched [ w1; w2 ] in
  Alcotest.(check bool) "WAW preserved" true (position w1 out < position w2 out)

let test_term_source_sinks () =
  (* the compare feeding the block terminator should not block earlier
     independent loads *)
  let cmp = Instr.Cmp { op = Instr.Ne; dst = r 5; src1 = r 4; src2 = Instr.Imm 0 } in
  let cond_load = ld 4 0 0 in
  let indep = ld 6 0 64 in
  let out =
    Bv_sched.Sched.schedule_body
      ~term:(Term.Branch { on = true; src = r 5; taken = "a"; not_taken = "b"; id = 1 })
      [ cond_load; cmp; indep ]
  in
  Alcotest.(check int) "cmp last" 2 (position cmp out)

let test_critical_path () =
  Alcotest.(check int) "empty" 0 (Bv_sched.Sched.critical_path_cycles []);
  Alcotest.(check int) "single load" 4
    (Bv_sched.Sched.critical_path_cycles [ ld 1 0 0 ]);
  Alcotest.(check int) "load + consumer" 5
    (Bv_sched.Sched.critical_path_cycles [ ld 1 0 0; add 2 1 1 ]);
  Alcotest.(check int) "independent stay parallel" 4
    (Bv_sched.Sched.critical_path_cycles [ ld 1 0 0; ld 2 0 8 ]);
  Alcotest.(check int) "chain of adds" 3
    (Bv_sched.Sched.critical_path_cycles [ addi 1 0 1; add 2 1 1; add 3 2 2 ])

let test_schedule_program_runs () =
  let blocks =
    [ Block.make ~label:"e"
        ~body:[ addi 1 0 3; ld 2 1 0; add 3 2 2 ]
        ~term:Term.Halt
    ]
  in
  let prog = Program.make ~main:"m" ~mem_words:8 [ Proc.make ~name:"m" blocks ] in
  Bv_sched.Sched.schedule_program prog;
  Validate.check_exn prog

(* property: scheduling preserves functional semantics of straight-line code *)
let instr_gen =
  let open QCheck2.Gen in
  let reg = int_range 1 7 in
  oneof
    [ map3 (fun d a v -> addi d a v) reg reg (int_range 0 100);
      map3 (fun d a b -> add d a b) reg reg reg;
      map2 (fun d o -> ld d 0 (o * 8)) reg (int_range 0 7);
      map2 (fun s o -> st s 0 (o * 8)) reg (int_range 0 7)
    ]

let run_straight_line body =
  let prog =
    Program.make ~main:"m" ~mem_words:16
      [ Proc.make ~name:"m" [ Block.make ~label:"e" ~body ~term:Term.Halt ] ]
  in
  let st = Bv_exec.Interp.run (Layout.program prog) in
  (Array.to_list (Array.sub st.Bv_exec.Interp.regs 0 8), Array.to_list st.Bv_exec.Interp.mem)

let prop_schedule_preserves_semantics =
  QCheck2.Test.make ~name:"schedule preserves straight-line semantics"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 25) instr_gen)
    (fun body ->
      let scheduled = Bv_sched.Sched.schedule_body ~term:Term.Halt body in
      run_straight_line body = run_straight_line scheduled)

let prop_schedule_is_permutation =
  QCheck2.Test.make ~name:"schedule is a permutation" ~count:200
    QCheck2.Gen.(list_size (int_range 0 30) instr_gen)
    (fun body ->
      let out = Bv_sched.Sched.schedule_body ~term:Term.Halt body in
      List.length out = List.length body
      && List.for_all (fun i -> List.memq i out) body)

let () =
  Alcotest.run "bv_sched"
    [ ( "ordering",
        [ Alcotest.test_case "permutation" `Quick test_is_permutation;
          Alcotest.test_case "RAW" `Quick test_raw_preserved;
          Alcotest.test_case "loads hoisted" `Quick test_loads_hoisted;
          Alcotest.test_case "memory order" `Quick test_store_ordering;
          Alcotest.test_case "alias oracle" `Quick
            test_alias_oracle_relaxes_barrier;
          Alcotest.test_case "load/load free" `Quick
            test_load_load_reorder_allowed;
          Alcotest.test_case "WAR/WAW" `Quick test_war_waw;
          Alcotest.test_case "terminator source sinks" `Quick
            test_term_source_sinks
        ] );
      ( "critical path",
        [ Alcotest.test_case "lengths" `Quick test_critical_path ] );
      ( "integration",
        [ Alcotest.test_case "whole program" `Quick test_schedule_program_runs ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_schedule_preserves_semantics; prop_schedule_is_permutation ] )
    ]
