open Bv_isa
open Bv_ir

let r = Reg.make

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i =
    if i + nl > hl then false
    else String.equal (String.sub haystack i nl) needle || go (i + 1)
  in
  go 0
let add d a b = Instr.Alu { op = Instr.Add; dst = r d; src1 = r a; src2 = Instr.Reg (r b) }
let movi d v = Instr.Mov { dst = r d; src = Instr.Imm v }
let block ?(body = []) label term = Block.make ~label ~body ~term

(* A minimal valid program: entry -> (body) -> halt. *)
let straight_line body =
  let p =
    Proc.make ~name:"main"
      [ block ~body "entry" (Term.Jump "exit"); block "exit" Term.Halt ]
  in
  Program.make ~main:"main" [ p ]

let test_block_rejects_terminators () =
  Alcotest.check_raises "terminator in body"
    (Invalid_argument "Block.make b: terminator halt in body") (fun () ->
      ignore (Block.make ~label:"b" ~body:[ Instr.Halt ] ~term:Term.Halt))

let test_block_counts () =
  let b =
    block
      ~body:
        [ movi 1 0;
          Instr.Load { dst = r 2; base = r 1; offset = 0; speculative = false };
          Instr.Load { dst = r 3; base = r 1; offset = 8; speculative = false }
        ]
      "b" Term.Halt
  in
  Alcotest.(check int) "instr_count" 4 (Block.instr_count b);
  Alcotest.(check int) "load_count" 2 (Block.load_count b)

let test_proc_shape () =
  Alcotest.check_raises "empty" (Invalid_argument "Proc.make p: no blocks")
    (fun () -> ignore (Proc.make ~name:"p" []));
  let p =
    Proc.make ~name:"p" [ block "a" (Term.Jump "b"); block "b" Term.Halt ]
  in
  Alcotest.(check string) "entry defaults to first" "a" p.Proc.entry;
  Alcotest.(check (list string)) "labels" [ "a"; "b" ] (Proc.block_labels p);
  Proc.insert_after p "a" [ block "c" (Term.Jump "b") ];
  Alcotest.(check (list string)) "insert_after" [ "a"; "c"; "b" ]
    (Proc.block_labels p);
  Proc.insert_before p "b" [ block "d" (Term.Jump "b") ];
  Alcotest.(check (list string)) "insert_before" [ "a"; "c"; "d"; "b" ]
    (Proc.block_labels p);
  Alcotest.check_raises "insert_before entry"
    (Invalid_argument "Proc.insert_before: cannot displace the entry block")
    (fun () -> Proc.insert_before p "a" []);
  Proc.append_blocks p [ block "z" Term.Halt ];
  Alcotest.(check (list string)) "append" [ "a"; "c"; "d"; "b"; "z" ]
    (Proc.block_labels p)

let test_program_segments () =
  let p = straight_line [ movi 1 1 ] in
  Alcotest.(check int) "default mem" 1 p.Program.mem_words;
  let seg b ws = { Program.base = b; contents = Array.of_list ws } in
  let prog =
    Program.make
      ~segments:[ seg 0 [ 1; 2 ]; seg 16 [ 3 ] ]
      ~main:"main"
      [ Proc.make ~name:"main" [ block "e" Term.Halt ] ]
  in
  let mem = Program.initial_memory prog in
  Alcotest.(check (list int)) "memory image" [ 1; 2; 3 ]
    [ mem.(0); mem.(1); mem.(2) ];
  Alcotest.check_raises "overlap"
    (Invalid_argument "Program.make: segments at 0 and 8 overlap") (fun () ->
      ignore
        (Program.make
           ~segments:[ seg 0 [ 1; 2 ]; seg 8 [ 3 ] ]
           ~main:"main"
           [ Proc.make ~name:"main" [ block "e" Term.Halt ] ]));
  Alcotest.check_raises "unaligned"
    (Invalid_argument "Program.make: segment base 4 not 8-aligned") (fun () ->
      ignore
        (Program.make ~segments:[ seg 4 [ 1 ] ] ~main:"main"
           [ Proc.make ~name:"main" [ block "e" Term.Halt ] ]))

let test_program_copy_is_deep () =
  let prog = straight_line [ movi 1 1 ] in
  let copy = Program.copy prog in
  let b = Proc.find_block (Program.find_proc copy "main") "entry" in
  b.Block.body <- [];
  let orig = Proc.find_block (Program.find_proc prog "main") "entry" in
  Alcotest.(check int) "original untouched" 1 (List.length orig.Block.body)

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected a validation failure"

let test_validate () =
  (* unknown target *)
  expect_invalid (fun () ->
      Layout.program
        (Program.make ~main:"m"
           [ Proc.make ~name:"m" [ block "e" (Term.Jump "nowhere") ] ]));
  (* duplicate labels *)
  expect_invalid (fun () ->
      Layout.program
        (Program.make ~main:"m"
           [ Proc.make ~name:"m"
               [ block "e" (Term.Jump "e2"); block "e2" Term.Halt;
                 block "e2" Term.Halt
               ]
           ]));
  (* duplicate branch site ids *)
  expect_invalid (fun () ->
      let br t nt = Term.Branch { on = true; src = r 1; taken = t; not_taken = nt; id = 7 } in
      Layout.program
        (Program.make ~main:"m"
           [ Proc.make ~name:"m"
               [ block "e" (br "x" "y"); block "x" (br "y" "y");
                 block "y" Term.Halt
               ]
           ]));
  (* call must return to the next block *)
  expect_invalid (fun () ->
      Layout.program
        (Program.make ~main:"m"
           [ Proc.make ~name:"m"
               [ block "e" (Term.Call { target = "f"; return_to = "after" });
                 block "pad" (Term.Jump "after"); block "after" Term.Halt
               ];
             Proc.make ~name:"f" [ block "f0" Term.Ret ]
           ]));
  (* predict without resolve *)
  expect_invalid (fun () ->
      Layout.program
        (Program.make ~main:"m"
           [ Proc.make ~name:"m"
               [ block "e" (Term.Predict { taken = "x"; not_taken = "y"; id = 5 });
                 block "y" Term.Halt; block "x" Term.Halt
               ]
           ]));
  (* call to a procedure that does not exist *)
  expect_invalid (fun () ->
      Layout.program
        (Program.make ~main:"m"
           [ Proc.make ~name:"m"
               [ block "e" (Term.Call { target = "ghost"; return_to = "after" });
                 block "after" Term.Halt
               ]
           ]))

let test_validate_ret_never_called () =
  (* a ret in a procedure no call targets can only underflow the stack *)
  (match
     Validate.check
       (Program.make ~main:"m"
          [ Proc.make ~name:"m" [ block "e" Term.Ret ] ])
   with
  | Error [ msg ] ->
    Alcotest.(check string) "reason"
      "block e returns from proc m, which is never called" msg
  | Error msgs ->
    Alcotest.failf "expected one error, got %d" (List.length msgs)
  | Ok () -> Alcotest.fail "never-called ret accepted");
  (* the same shape is fine once some call targets the proc *)
  let ok =
    Program.make ~main:"m"
      [ Proc.make ~name:"m"
          [ block "e" (Term.Call { target = "f"; return_to = "after" });
            block "after" Term.Halt
          ];
        Proc.make ~name:"f" [ block "f0" Term.Ret ]
      ]
  in
  match Validate.check ok with
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "valid program rejected: %s" (List.hd msgs)

let test_layout_fallthrough () =
  let prog =
    Program.make ~main:"m"
      [ Proc.make ~name:"m"
          [ block ~body:[ movi 1 1 ] "e" (Term.Jump "next");
            block "next" Term.Halt
          ]
      ]
  in
  let image = Layout.program prog in
  (* jump to the adjacent block is elided: mov, halt *)
  Alcotest.(check int) "elided jump" 2 (Array.length image.Layout.code);
  Alcotest.(check int) "static bytes" 8 (Layout.static_bytes image);
  let prog2 =
    Program.make ~main:"m"
      [ Proc.make ~name:"m"
          [ block "e" (Term.Jump "far"); block "mid" (Term.Jump "far");
            block "far" Term.Halt
          ]
      ]
  in
  let image2 = Layout.program prog2 in
  (* e needs an explicit jump over mid; mid falls through into far *)
  Alcotest.(check int) "explicit jump" 2 (Array.length image2.Layout.code);
  Alcotest.(check int) "resolve far" 1 (Layout.resolve image2 "far")

let test_layout_branch_lowering () =
  let prog =
    Program.make ~main:"m"
      [ Proc.make ~name:"m"
          [ block "e"
              (Term.Branch
                 { on = true; src = r 1; taken = "t"; not_taken = "nt"; id = 1 });
            block "nt" (Term.Jump "x"); block "t" (Term.Jump "x");
            block "x" Term.Halt
          ]
      ]
  in
  let image = Layout.program prog in
  (match image.Layout.code.(0) with
  | Instr.Branch { target; _ } -> Alcotest.(check string) "taken target" "t" target
  | i -> Alcotest.failf "expected branch, got %s" (Instr.to_string i));
  (* disassembly mentions every label *)
  let dis = Format.asprintf "%a" Layout.pp_disassembly image in
  List.iter
    (fun l ->
      Alcotest.(check bool) ("disasm has " ^ l) true (contains dis l))
    [ "e:"; "nt:"; "t:"; "x:" ]

let test_layout_calls_and_decomposed () =
  let prog =
    Program.make ~main:"m"
      [ Proc.make ~name:"m"
          [ block "e" (Term.Call { target = "f"; return_to = "back" });
            block "back"
              (Term.Predict { taken = "rt"; not_taken = "rnt"; id = 4 });
            block "rnt"
              (Term.Resolve
                 { on = true; src = r 1; mispredict = "fix";
                   fallthrough = "cont"; predicted_taken = false; id = 4 });
            block "cont" Term.Halt;
            block "rt"
              (Term.Resolve
                 { on = true; src = r 1; mispredict = "fix";
                   fallthrough = "cont2"; predicted_taken = true; id = 4 });
            block "cont2" Term.Halt;
            block "fix" (Term.Jump "cont")
          ];
        Proc.make ~name:"f" [ block "f0" Term.Ret ]
      ]
  in
  let image = Layout.program prog in
  (match image.Layout.code.(0) with
  | Instr.Call t -> Alcotest.(check string) "call target" "f" t
  | i -> Alcotest.failf "expected call, got %s" (Instr.to_string i));
  (match image.Layout.code.(1) with
  | Instr.Predict { target; id } ->
    Alcotest.(check string) "predict target" "rt" target;
    Alcotest.(check int) "predict id" 4 id
  | i -> Alcotest.failf "expected predict, got %s" (Instr.to_string i));
  (* the rnt resolve falls through to cont, so no jump is emitted for it *)
  (match image.Layout.code.(2) with
  | Instr.Resolve { predicted_taken; _ } ->
    Alcotest.(check bool) "pnt first" false predicted_taken
  | i -> Alcotest.failf "expected resolve, got %s" (Instr.to_string i));
  (* procedure name resolves to its entry pc *)
  Alcotest.(check int) "proc label = entry pc" (Layout.resolve image "f0")
    (Layout.resolve image "f")

let test_validate_entry_not_first () =
  match
    Program.make ~main:"m"
      [ { Proc.name = "m"; entry = "b";
          blocks = [ block "a" (Term.Jump "b"); block "b" Term.Halt ]
        }
      ]
    |> Layout.program
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "entry-not-first accepted"

let test_cfg () =
  let br = Term.Branch { on = true; src = r 1; taken = "c"; not_taken = "b"; id = 1 } in
  let p =
    Proc.make ~name:"m"
      [ block "a" br; block "b" (Term.Jump "d"); block "c" (Term.Jump "d");
        block "d" Term.Halt
      ]
  in
  let a = Proc.find_block p "a" in
  Alcotest.(check (list string)) "succs" [ "c"; "b" ] (Cfg.successors p a);
  let preds = Cfg.predecessor_map p in
  Alcotest.(check (list string)) "preds of d" [ "b"; "c" ]
    (List.sort compare (Hashtbl.find preds "d"));
  let rpo = Cfg.reverse_postorder p in
  Alcotest.(check string) "rpo starts at entry" "a" (List.hd rpo);
  Alcotest.(check int) "rpo complete" 4 (List.length rpo);
  Alcotest.(check bool) "forward" true (Cfg.is_forward_branch p a);
  (* backward branch *)
  let p2 =
    Proc.make ~name:"m"
      [ block "top" (Term.Jump "loop");
        block "loop"
          (Term.Branch
             { on = true; src = r 1; taken = "loop"; not_taken = "out"; id = 2 });
        block "out" Term.Halt
      ]
  in
  Alcotest.(check bool) "backward" false
    (Cfg.is_forward_branch p2 (Proc.find_block p2 "loop"))

let test_liveness () =
  (* diamond: r1 read on one side only, r2 written both sides *)
  let br = Term.Branch { on = true; src = r 5; taken = "c"; not_taken = "b"; id = 1 } in
  let p =
    Proc.make ~name:"m"
      [ block ~body:[ movi 1 10; movi 5 1 ] "a" br;
        block ~body:[ add 2 1 1 ] "b" (Term.Jump "d");
        block ~body:[ movi 2 0 ] "c" (Term.Jump "d");
        block ~body:[ add 3 2 2 ] "d" Term.Halt
      ]
  in
  let live = Liveness.compute ~exit_live:Liveness.Regset.empty p in
  let mem l reg = Liveness.Regset.mem (r reg) (Liveness.live_in live l) in
  Alcotest.(check bool) "r1 live into b" true (mem "b" 1);
  Alcotest.(check bool) "r1 dead into c" false (mem "c" 1);
  Alcotest.(check bool) "r2 live into d" true (mem "d" 2);
  Alcotest.(check bool) "r2 dead into b (redefined)" false (mem "b" 2);
  Alcotest.(check bool) "r5 live into a" false (mem "a" 5);
  (* exit_live makes r3 matter *)
  let live2 =
    Liveness.compute ~exit_live:(Liveness.Regset.singleton (r 9)) p
  in
  Alcotest.(check bool) "exit live propagates" true
    (Liveness.Regset.mem (r 9) (Liveness.live_in live2 "a"))

let test_liveness_loop () =
  let p =
    Proc.make ~name:"m"
      [ block ~body:[ movi 1 0 ] "e" (Term.Jump "loop");
        block ~body:[ add 1 1 1; Instr.Cmp { op = Instr.Lt; dst = r 5; src1 = r 1; src2 = Instr.Imm 10 } ]
          "loop"
          (Term.Branch
             { on = true; src = r 5; taken = "loop"; not_taken = "out"; id = 1 });
        block "out" Term.Halt
      ]
  in
  let live = Liveness.compute ~exit_live:Liveness.Regset.empty p in
  Alcotest.(check bool) "loop-carried r1" true
    (Liveness.Regset.mem (r 1) (Liveness.live_in live "loop"))

let () =
  Alcotest.run "bv_ir"
    [ ( "block",
        [ Alcotest.test_case "rejects terminators" `Quick
            test_block_rejects_terminators;
          Alcotest.test_case "counts" `Quick test_block_counts
        ] );
      ( "proc",
        [ Alcotest.test_case "shape and edits" `Quick test_proc_shape ] );
      ( "program",
        [ Alcotest.test_case "segments" `Quick test_program_segments;
          Alcotest.test_case "deep copy" `Quick test_program_copy_is_deep
        ] );
      ( "validate",
        [ Alcotest.test_case "rejections" `Quick test_validate;
          Alcotest.test_case "ret in never-called proc" `Quick
            test_validate_ret_never_called
        ] );
      ( "layout",
        [ Alcotest.test_case "fallthrough elision" `Quick
            test_layout_fallthrough;
          Alcotest.test_case "branch lowering" `Quick
            test_layout_branch_lowering;
          Alcotest.test_case "calls + decomposed" `Quick
            test_layout_calls_and_decomposed;
          Alcotest.test_case "entry not first" `Quick
            test_validate_entry_not_first
        ] );
      ( "cfg", [ Alcotest.test_case "basics" `Quick test_cfg ] );
      ( "liveness",
        [ Alcotest.test_case "diamond" `Quick test_liveness;
          Alcotest.test_case "loop-carried" `Quick test_liveness_loop
        ] )
    ]
