open Bv_obs
open Bv_pipeline

let json =
  Alcotest.testable
    (fun ppf j -> Format.pp_print_string ppf (Json.to_string j))
    ( = )

(* --------------------------------------------------------------- emitter *)

let test_escaping () =
  Alcotest.(check string)
    "specials" {|"a\"b\\c\nd\te\u0001f"|}
    (Json.to_string (Json.String "a\"b\\c\nd\te\001f"));
  Alcotest.(check string)
    "utf8 passthrough" "\"h\xc3\xa9llo\""
    (Json.to_string (Json.String "h\xc3\xa9llo"))

let test_nonfinite () =
  Alcotest.(check string) "nan" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string)
    "inf" "null"
    (Json.to_string (Json.Float Float.infinity));
  Alcotest.check json "smart constructor" Json.Null
    (Json.float Float.neg_infinity);
  Alcotest.check json "finite kept" (Json.Float 2.5) (Json.float 2.5)

let test_roundtrip () =
  let values =
    Json.
      [ Null;
        Bool true;
        Bool false;
        Int 0;
        Int max_int;
        Int min_int;
        Float 0.5;
        Float 0.1;
        Float 1.5e-30;
        Float (-2.75e10);
        Float Float.max_float;
        String "";
        String "plain";
        String "a\"b\\c\nd\te\001f\127\xc3\xa9";
        List [];
        Obj [];
        List [ Int 1; List []; Obj [ ("k", Null) ] ];
        Obj
          [ ("empty_list", List []);
            ("empty_obj", Obj []);
            ("nested", Obj [ ("xs", List [ Bool false; Float 3.0 ]) ])
          ]
      ]
  in
  List.iter
    (fun v ->
      let compact = Json.to_string v in
      (match Json.of_string compact with
      | Ok v' -> Alcotest.check json ("compact: " ^ compact) v v'
      | Error e -> Alcotest.fail e);
      match Json.of_string (Json.to_string ~indent:true v) with
      | Ok v' -> Alcotest.check json ("indented: " ^ compact) v v'
      | Error e -> Alcotest.fail e)
    values

let test_unicode_escapes () =
  let ok s = match Json.of_string s with Ok v -> v | Error e -> Alcotest.fail e in
  Alcotest.check json "bmp escape" (Json.String "\xc3\xa9") (ok {|"\u00e9"|});
  Alcotest.check json "surrogate pair"
    (Json.String "\xf0\x9f\x98\x80")
    (ok {|"\ud83d\ude00"|});
  Alcotest.check json "control escape" (Json.String "\001") (ok {|"\u0001"|})

let test_parse_errors () =
  let bad s =
    match Json.of_string s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  List.iter bad
    [ ""; "{"; "["; "tru"; "1 2"; {|{"a":}|}; {|"unterminated|};
      {|"bad \q escape"|}; "[1,]"; "nulll" ]

let test_accessors () =
  let v = Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Null ]) ] in
  Alcotest.(check bool) "member hit" true (Json.member "a" v = Some (Json.Int 1));
  Alcotest.(check bool) "member miss" true (Json.member "z" v = None);
  Alcotest.(check int) "to_list" 1
    (List.length (Json.to_list (Option.get (Json.member "b" v))));
  Alcotest.(check int) "to_list non-list" 0 (List.length (Json.to_list v))

(* --------------------------------------------------------- stats golden *)

let test_stats_golden () =
  let s = Stats.create () in
  s.Stats.cycles <- 100;
  s.Stats.fetched <- 60;
  s.Stats.issued <- 54;
  s.Stats.squashed_issued <- 4;
  s.Stats.squashed_fetched <- 2;
  s.Stats.predicts_fetched <- 3;
  s.Stats.branch_execs <- 10;
  s.Stats.branch_mispredicts <- 2;
  s.Stats.resolve_execs <- 5;
  s.Stats.resolve_mispredicts <- 1;
  s.Stats.ret_execs <- 1;
  s.Stats.redirects <- 3;
  s.Stats.loads_issued <- 20;
  s.Stats.stores_issued <- 10;
  s.Stats.head_stall_cycles <- 40;
  s.Stats.operand_stall_cycles <- 30;
  s.Stats.fu_stall_cycles <- 6;
  s.Stats.mem_struct_stall_cycles <- 4;
  s.Stats.frontend_empty_cycles <- 5;
  s.Stats.icache_stall_cycles <- 12;
  s.Stats.icache_misses <- 7;
  s.Stats.icache_misses_in_shadow <- 2;
  s.Stats.runahead_prefetches <- 1;
  s.Stats.dbb_full_stalls <- 1;
  s.Stats.dbb_occupancy_sum <- 30;
  s.Stats.dbb_samples <- 10;
  s.Stats.dbb_max_occupancy <- 4;
  Stats.add_site_stall s ~site:7;
  Stats.add_site_stall s ~site:7;
  Stats.add_site_wait s ~site:7 ~cycles:3;
  Stats.add_site_wait s ~site:7 ~cycles:5;
  (* The schema contract consumed by external tooling: field names, order
     and derived-value formatting must stay stable across refactors. *)
  let expected =
    String.concat ""
      [ {|{"schema_version":2,|};
        {|"cycles":100,"fetched":60,"issued":54,"retired":50,|};
        {|"squashed_issued":4,"squashed_fetched":2,"predicts_fetched":3,|};
        {|"branch_execs":10,"branch_mispredicts":2,"resolve_execs":5,|};
        {|"resolve_mispredicts":1,"ret_execs":1,"ret_mispredicts":0,|};
        {|"mispredicts":3,"redirects":3,"loads_issued":20,"stores_issued":10,|};
        {|"ipc":0.5,"mppki":60.0,|};
        {|"stalls":{"head":40,"operand":30,"fu":6,"mem_struct":4,|};
        {|"frontend_empty":5,"icache":12},|};
        {|"icache":{"misses":7,"misses_in_shadow":2,"runahead_prefetches":1},|};
        {|"dbb":{"full_stalls":1,"occupancy_sum":30,"samples":10,|};
        {|"avg_occupancy":3.0,"max_occupancy":4},|};
        {|"site_stalls":[{"site":7,"stall_cycles":2}],|};
        {|"site_waits":[{"site":7,"execs":2,"backlog_cycles":8,|};
        {|"avg_backlog":4.0}]}|}
      ]
  in
  Alcotest.(check string) "golden" expected (Json.to_string (Stats.to_json s))

(* ---------------------------------------------------- machine-level runs *)

let tiny_image ?(seed = 11) () =
  let spec =
    Bv_workloads.Spec.make ~name:"obs" ~suite:Bv_workloads.Spec.Int_2006 ~seed
      ~branch_classes:
        [ Bv_workloads.Spec.cls ~count:3 ~taken_rate:0.6 ~predictability:0.9 ();
          Bv_workloads.Spec.cls ~iid:true ~count:1 ~taken_rate:0.5
            ~predictability:0.5 ()
        ]
      ~inner_n:64 ~reps:2 ()
  in
  Bv_ir.Layout.program (Bv_workloads.Gen.generate ~input:1 spec)

let num = function
  | Json.Int i -> Float.of_int i
  | Json.Float f -> f
  | _ -> Alcotest.fail "expected number"

let get k ev =
  match Json.member k ev with
  | Some v -> v
  | None -> Alcotest.failf "missing field %s" k

let test_trace_nesting () =
  let tr = Perfetto.create () in
  let result =
    Machine.run ~config:Config.four_wide ~on_event:(Perfetto.on_event tr)
      (tiny_image ())
  in
  Alcotest.(check int) "nothing dropped" 0 (Perfetto.dropped tr);
  let evs = Perfetto.events tr in
  let spans =
    List.filter (fun ev -> Json.member "ph" ev = Some (Json.String "X")) evs
  in
  (* instruction spans indexed by seq; every "execute" span must nest
     inside its instruction's span on the same lane *)
  let instr_spans = Hashtbl.create 256 and execs = ref [] in
  List.iter
    (fun ev ->
      let seq =
        match get "args" ev |> Json.member "seq" with
        | Some (Json.Int s) -> s
        | _ -> Alcotest.fail "span without args.seq"
      in
      let ts = num (get "ts" ev) and dur = num (get "dur" ev) in
      let tid = num (get "tid" ev) in
      Alcotest.(check bool) "positive duration" true (dur > 0.);
      match get "name" ev with
      | Json.String "execute" -> execs := (seq, tid, ts, dur) :: !execs
      | _ -> Hashtbl.replace instr_spans seq (tid, ts, dur))
    spans;
  let stats = result.Machine.stats in
  Alcotest.(check int) "one span per fetched instruction"
    stats.Stats.fetched (Hashtbl.length instr_spans);
  Alcotest.(check bool) "some instructions issued" true (!execs <> []);
  List.iter
    (fun (seq, tid, ts, dur) ->
      match Hashtbl.find_opt instr_spans seq with
      | None -> Alcotest.failf "execute span for unknown seq %d" seq
      | Some (ptid, pts, pdur) ->
        Alcotest.(check (float 0.)) "same lane" ptid tid;
        Alcotest.(check bool)
          (Printf.sprintf "issue span of seq %d nests in fetch span" seq)
          true
          (ts >= pts && ts +. dur <= pts +. pdur))
    !execs;
  (* the workload has a coin-flip branch class, so squashes and redirects
     must show up as instants *)
  let instants name =
    List.filter
      (fun ev ->
        Json.member "ph" ev = Some (Json.String "i")
        && Json.member "name" ev = Some (Json.String name))
      evs
  in
  Alcotest.(check bool) "squash instants" true (instants "squash" <> []);
  Alcotest.(check int) "redirect instants"
    stats.Stats.redirects
    (List.length (instants "redirect"));
  match Json.member "traceEvents" (Perfetto.to_json tr) with
  | Some (Json.List l) ->
    Alcotest.(check int) "document wraps all events" (List.length evs)
      (List.length l)
  | _ -> Alcotest.fail "document missing traceEvents"

let test_trace_cap () =
  let tr = Perfetto.create ~max_instructions:10 () in
  ignore
    (Machine.run ~config:Config.four_wide ~on_event:(Perfetto.on_event tr)
       (tiny_image ()));
  Alcotest.(check bool) "drops counted" true (Perfetto.dropped tr > 0);
  let spans =
    List.filter
      (fun ev ->
        Json.member "ph" ev = Some (Json.String "X")
        && Json.member "name" ev <> Some (Json.String "execute"))
      (Perfetto.events tr)
  in
  Alcotest.(check int) "cap respected" 10 (List.length spans)

let test_sampler () =
  Alcotest.check_raises "bad interval"
    (Invalid_argument "Sampler.create: interval must be > 0") (fun () ->
      ignore (Sampler.create ~interval:0 ()));
  let smp = Sampler.create ~interval:100 () in
  let result =
    Machine.run ~config:Config.four_wide ~on_cycle:(Sampler.observe smp)
      (tiny_image ())
  in
  Sampler.finish smp;
  let ws = Sampler.windows smp in
  Alcotest.(check bool) "windows recorded" true (List.length ws > 1);
  let stats = result.Machine.stats in
  Alcotest.(check int) "retired partitioned exactly"
    (Stats.retired stats)
    (List.fold_left (fun acc w -> acc + w.Sampler.retired) 0 ws);
  Alcotest.(check int) "mispredicts partitioned exactly"
    (Stats.mispredicts stats)
    (List.fold_left (fun acc w -> acc + w.Sampler.mispredicts) 0 ws);
  let rec check_contiguous = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check int) "contiguous" a.Sampler.end_cycle b.Sampler.start_cycle;
      Alcotest.(check int) "full window" 100
        (a.Sampler.end_cycle - a.Sampler.start_cycle);
      check_contiguous rest
    | [ last ] ->
      Alcotest.(check int) "tail reaches final cycle" stats.Stats.cycles
        last.Sampler.end_cycle
    | [] -> ()
  in
  check_contiguous ws;
  List.iter
    (fun w ->
      Alcotest.(check bool) "ipc within issue width" true
        (w.Sampler.ipc >= 0. && w.Sampler.ipc <= 4.))
    ws;
  match Json.member "windows" (Sampler.to_json smp) with
  | Some (Json.List l) ->
    Alcotest.(check int) "json mirrors windows" (List.length ws)
      (List.length l)
  | _ -> Alcotest.fail "sampler json missing windows"

(* ----------------------------------------------------- cycle accounting *)

(* The four golden configurations (mirroring test_goldens.ml): plain and
   decomposed builds of a branchy integer kernel and a memory-bound
   kernel, the latter pair under runahead. Conservation must hold on all
   of them — every simulated cycle charged to exactly one component. *)

let baseline_of program =
  let p = Bv_ir.Program.copy program in
  Bv_sched.Sched.schedule_program p;
  p

let spec_int =
  Bv_workloads.Spec.(
    make ~name:"golden-int" ~suite:Int_2006 ~seed:7001
      ~branch_classes:
        [ cls ~count:6 ~taken_rate:0.60 ~predictability:0.95 ();
          cls ~iid:true ~count:4 ~taken_rate:0.92 ~predictability:0.92 ();
          cls ~iid:true ~count:2 ~taken_rate:0.50 ~predictability:0.50 ()
        ]
      ~loads_per_block:3.0 ~cond_depth:4 ~inner_n:128 ~reps:10 ())

let spec_mem =
  Bv_workloads.Spec.(
    make ~name:"golden-mem" ~suite:Fp_2006 ~seed:7002
      ~branch_classes:[ cls ~count:4 ~taken_rate:0.58 ~predictability:0.96 () ]
      ~loads_per_block:4.0 ~footprint_kb:128 ~chase_frac:0.2 ~cond_chase:true
      ~inner_n:64 ~reps:3 ())

let plain_image spec =
  Bv_ir.Layout.program (baseline_of (Bv_workloads.Gen.generate ~input:1 spec))

let decomposed_image spec =
  let program = Bv_workloads.Gen.generate ~input:1 spec in
  let train = Bv_workloads.Gen.generate ~input:0 spec in
  let profile =
    Bv_profile.Profile.collect
      ~predictor:(Bv_bpred.Kind.create Bv_bpred.Kind.Tournament)
      (Bv_ir.Layout.program (baseline_of train))
  in
  let selection = Vanguard.Select.select ~profile train in
  let result =
    Vanguard.Transform.apply ~exit_live:Bv_workloads.Gen.live_at_exit
      ~candidates:selection.Vanguard.Select.candidates program
  in
  Bv_ir.Layout.program result.Vanguard.Transform.program

let runahead_w8 =
  { (Config.make ~predictor:Bv_bpred.Kind.Tage ~width:8 ()) with
    Config.runahead = true
  }

let golden_cases =
  [ ("plain_w4", Config.four_wide, lazy (plain_image spec_int));
    ("decomposed_w4", Config.four_wide, lazy (decomposed_image spec_int));
    ("runahead_w8", runahead_w8, lazy (plain_image spec_mem));
    ("decomposed_runahead_w8", runahead_w8, lazy (decomposed_image spec_mem))
  ]

let run_accounted config image =
  let acct = Acct.create image.Bv_ir.Layout.code in
  let res = Machine.run ~config ~acct image in
  (acct, res)

let check_attribution name acct (stats : Stats.t) =
  (* conservation: every cycle in exactly one component *)
  Acct.check acct ~cycles:stats.Stats.cycles;
  Alcotest.(check int)
    (name ^ ": stack sums to cycles")
    stats.Stats.cycles (Acct.total acct);
  (* per-pc attribution reconciles with the aggregate counters *)
  let sum a = Array.fold_left ( + ) 0 a in
  Alcotest.(check int)
    (name ^ ": execs partition control completions")
    (stats.Stats.branch_execs + stats.Stats.resolve_execs
   + stats.Stats.ret_execs)
    (sum acct.Acct.execs);
  Alcotest.(check int)
    (name ^ ": mispredicts partition")
    (stats.Stats.branch_mispredicts + stats.Stats.resolve_mispredicts
   + stats.Stats.ret_mispredicts)
    (sum acct.Acct.mispredicts);
  Alcotest.(check int)
    (name ^ ": recovery cycles attributed to pcs")
    acct.Acct.components.(Acct.c_recovery)
    (sum acct.Acct.recovery_cycles);
  Alcotest.(check int)
    (name ^ ": histogram counts every resolution")
    (sum acct.Acct.execs) (sum acct.Acct.lat_hist);
  (* site rows fold the per-pc totals of the sited control instructions
     (rets and calls carry no site id and stay out of the join) *)
  let sites = Acct.by_site acct in
  let sited a =
    let acc = ref 0 in
    Array.iteri
      (fun pc v ->
        match acct.Acct.code.(pc) with
        | Bv_isa.Instr.Branch _ | Bv_isa.Instr.Resolve _ -> acc := !acc + v
        | _ -> ())
      a;
    !acc
  in
  Alcotest.(check int)
    (name ^ ": site rows fold recovery")
    (sited acct.Acct.recovery_cycles)
    (List.fold_left (fun a sa -> a + sa.Acct.sa_recovery) 0 sites);
  Alcotest.(check int)
    (name ^ ": site rows fold execs")
    (sited acct.Acct.execs)
    (List.fold_left (fun a sa -> a + sa.Acct.sa_execs) 0 sites)

let test_acct_conservation () =
  List.iter
    (fun (name, config, image) ->
      let acct, res = run_accounted config (Lazy.force image) in
      Alcotest.(check bool) (name ^ ": finished") true res.Machine.finished;
      check_attribution name acct res.Machine.stats)
    golden_cases

let test_acct_fuzz () =
  (* random structured programs (straight blocks, hammocks, loops,
     calls): conservation may not depend on workload shape *)
  for seed = 0 to 24 do
    let img =
      Bv_ir.Layout.program (Bv_workloads.Fuzzgen.generate ~seed)
    in
    List.iter
      (fun config ->
        let acct, res = run_accounted config img in
        check_attribution (Printf.sprintf "fuzz %d" seed) acct
          res.Machine.stats)
      Config.[ two_wide; eight_wide ]
  done

let test_acct_off_identity () =
  (* attaching an accountant must not perturb the simulation: same
     cycles, same digests, byte-identical un-accounted stats JSON *)
  List.iter
    (fun (name, config, image) ->
      let image = Lazy.force image in
      let plain = Machine.run ~config image in
      let _, accounted = run_accounted config image in
      Alcotest.(check string)
        (name ^ ": stats JSON byte-identical")
        (Json.to_string (Stats.to_json plain.Machine.stats))
        (Json.to_string (Stats.to_json accounted.Machine.stats));
      Alcotest.(check int)
        (name ^ ": same arch digest")
        plain.Machine.arch_digest accounted.Machine.arch_digest)
    golden_cases

let test_acct_merge () =
  let image = tiny_image () in
  let a, res = run_accounted Config.four_wide image in
  let b, _ = run_accounted Config.four_wide image in
  let m = Acct.merge a b in
  Alcotest.(check int) "merged stack doubles"
    (2 * res.Machine.stats.Stats.cycles)
    (Acct.total m);
  Alcotest.(check int) "merged execs double"
    (2 * Array.fold_left ( + ) 0 a.Acct.execs)
    (Array.fold_left ( + ) 0 m.Acct.execs);
  Acct.check m ~cycles:(2 * res.Machine.stats.Stats.cycles);
  Alcotest.check_raises "different code rejected"
    (Invalid_argument "Acct.merge: attribution tables cover different code")
    (fun () -> ignore (Acct.merge a (Acct.create [||])));
  match Acct.to_json a with
  | Json.Obj [ ("cpi_stack", Json.Obj stack); ("top_branches", Json.List _) ]
    ->
    Alcotest.(check bool) "stack carries cycles" true
      (List.mem_assoc "cycles" stack)
  | _ -> Alcotest.fail "Acct.to_json shape"

(* --------------------------------------------------- sampler edge cases *)

let test_sampler_interval_one () =
  let image = tiny_image () in
  let acct = Acct.create image.Bv_ir.Layout.code in
  let smp = Sampler.create ~interval:1 ~acct () in
  let res =
    Machine.run ~config:Config.four_wide ~acct ~on_cycle:(Sampler.observe smp)
      image
  in
  Sampler.finish smp;
  let ws = Sampler.windows smp in
  Alcotest.(check int) "one window per cycle" res.Machine.stats.Stats.cycles
    (List.length ws);
  List.iter
    (fun w ->
      Alcotest.(check int) "window of one cycle" 1
        (w.Sampler.end_cycle - w.Sampler.start_cycle);
      Alcotest.(check int) "one component charge per cycle" 1
        (Array.fold_left ( + ) 0 w.Sampler.components))
    ws

let test_sampler_window_conservation () =
  (* per-window conservation: each window's CPI-stack deltas sum to the
     window's cycle count, tail included; the windows partition the
     whole run's stack *)
  let image = plain_image spec_int in
  let acct = Acct.create image.Bv_ir.Layout.code in
  let smp = Sampler.create ~interval:777 ~acct () in
  let res =
    Machine.run ~config:Config.four_wide ~acct ~on_cycle:(Sampler.observe smp)
      image
  in
  Sampler.finish smp;
  let ws = Sampler.windows smp in
  Alcotest.(check bool) "several windows" true (List.length ws > 2);
  List.iter
    (fun w ->
      Alcotest.(check int)
        (Printf.sprintf "window %d..%d conserved" w.Sampler.start_cycle
           w.Sampler.end_cycle)
        (w.Sampler.end_cycle - w.Sampler.start_cycle)
        (Array.fold_left ( + ) 0 w.Sampler.components))
    ws;
  let tail = List.nth ws (List.length ws - 1) in
  Alcotest.(check bool) "partial tail window" true
    (tail.Sampler.end_cycle - tail.Sampler.start_cycle < 777);
  Alcotest.(check int) "tail reaches final cycle" res.Machine.stats.Stats.cycles
    tail.Sampler.end_cycle;
  let totals = Array.make Acct.n_components 0 in
  List.iter
    (fun w ->
      Array.iteri (fun i v -> totals.(i) <- totals.(i) + v)
        w.Sampler.components)
    ws;
  Alcotest.(check (array int)) "windows partition the stack"
    acct.Acct.components totals;
  (* the JSON view carries a cpi object per window iff accounting is on *)
  let has_cpi smp' expect =
    match Json.member "windows" (Sampler.to_json smp') with
    | Some (Json.List (w :: _)) ->
      Alcotest.(check bool) "cpi presence" expect
        (Json.member "cpi" w <> None)
    | _ -> Alcotest.fail "sampler json missing windows"
  in
  has_cpi smp true;
  let bare = Sampler.create ~interval:100 () in
  ignore
    (Machine.run ~config:Config.four_wide ~on_cycle:(Sampler.observe bare)
       (tiny_image ()));
  Sampler.finish bare;
  has_cpi bare false

let () =
  Alcotest.run "bv_obs"
    [ ( "json",
        [ Alcotest.test_case "escaping" `Quick test_escaping;
          Alcotest.test_case "non-finite" `Quick test_nonfinite;
          Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "unicode escapes" `Quick test_unicode_escapes;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "accessors" `Quick test_accessors
        ] );
      ( "stats",
        [ Alcotest.test_case "golden to_json" `Quick test_stats_golden ] );
      ( "trace",
        [ Alcotest.test_case "span nesting" `Quick test_trace_nesting;
          Alcotest.test_case "instruction cap" `Quick test_trace_cap
        ] );
      ( "sampler",
        [ Alcotest.test_case "windows" `Quick test_sampler;
          Alcotest.test_case "interval one" `Quick test_sampler_interval_one;
          Alcotest.test_case "window conservation" `Quick
            test_sampler_window_conservation
        ] );
      ( "acct",
        [ Alcotest.test_case "conservation (golden configs)" `Quick
            test_acct_conservation;
          Alcotest.test_case "conservation (fuzz corpus)" `Quick
            test_acct_fuzz;
          Alcotest.test_case "accounting-off identity" `Quick
            test_acct_off_identity;
          Alcotest.test_case "merge" `Quick test_acct_merge
        ] )
    ]
