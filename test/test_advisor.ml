(* Cost-model advisor: static profitability analysis cross-validated
   against measured cycle attribution.

   The golden workloads are the same two specs the cycle-equivalence
   goldens pin (test_goldens.ml), so the advisor's ranking is asserted on
   programs whose timing behaviour is already locked down. *)

open Bv_analysis
open Bv_bpred
open Bv_harness
open Bv_ir
open Bv_workloads

let spec_int =
  Spec.make ~name:"golden-int" ~suite:Spec.Int_2006 ~seed:7001
    ~branch_classes:
      [ Spec.cls ~count:6 ~taken_rate:0.60 ~predictability:0.95 ();
        Spec.cls ~iid:true ~count:4 ~taken_rate:0.92 ~predictability:0.92 ();
        Spec.cls ~iid:true ~count:2 ~taken_rate:0.50 ~predictability:0.50 ()
      ]
    ~loads_per_block:3.0 ~cond_depth:4 ~inner_n:128 ~reps:10 ()

let spec_mem =
  Spec.make ~name:"golden-mem" ~suite:Spec.Fp_2006 ~seed:7002
    ~branch_classes:
      [ Spec.cls ~count:4 ~taken_rate:0.58 ~predictability:0.96 () ]
    ~loads_per_block:4.0 ~footprint_kb:128 ~chase_frac:0.2 ~cond_chase:true
    ~inner_n:64 ~reps:3 ()

let bench_int = lazy (Runner.prepare spec_int)
let bench_mem = lazy (Runner.prepare spec_mem)

(* ------------------------------------------------------------ spearman -- *)

let test_spearman () =
  let check name want xs ys =
    Alcotest.(check (float 1e-9)) name want (Advisor.spearman xs ys)
  in
  check "identical order" 1.0 [| 1.; 2.; 3.; 4. |] [| 10.; 20.; 30.; 40. |];
  check "reversed order" (-1.0) [| 1.; 2.; 3. |] [| 9.; 5.; 1. |];
  check "monotone nonlinear" 1.0 [| 1.; 2.; 3. |] [| 1.; 100.; 10000. |];
  Alcotest.(check bool)
    "under two points is NaN" true
    (Float.is_nan (Advisor.spearman [| 1.0 |] [| 2.0 |]));
  Alcotest.(check bool)
    "constant sample is NaN" true
    (Float.is_nan (Advisor.spearman [| 1.; 1.; 1. |] [| 1.; 2.; 3. |]));
  (* Ties share average ranks: x = [1;1;2] vs y = [5;5;9] is a perfect
     monotone relation even with the tie. *)
  check "average-tie ranks" 1.0 [| 1.; 1.; 2. |] [| 5.; 5.; 9. |]

(* ----------------------------------------------------------- costmodel -- *)

let test_costmodel_golden_int () =
  let train = Gen.generate ~input:0 spec_int in
  let costs = Costmodel.analyze ~exit_live:Gen.live_at_exit train in
  Alcotest.(check bool) "found branch sites" true (List.length costs > 0);
  List.iter
    (fun (c : Costmodel.site_cost) ->
      Alcotest.(check bool)
        "slice height covers at least the compare" true (c.slice_height >= 1);
      Alcotest.(check bool)
        "residency brackets the slice" true
        (c.dbb_residency = c.slice_height + 2);
      Alcotest.(check bool)
        "merged height at least each part" true
        (c.not_taken.merged_height >= c.slice_height
        && c.not_taken.merged_height >= c.not_taken.prefix_height);
      Alcotest.(check bool)
        "growth counts the duplicated slice and six new blocks" true
        (c.ineligible <> None
        || c.code_growth
           >= c.slice_size + c.not_taken.prefix + c.taken.prefix + 6);
      Alcotest.(check bool)
        "window pressure counts at least this site" true
        (c.window_pressure >= 1))
    costs

let test_classes_and_loops () =
  (* A hand-built procedure: a loop whose latch is a backward branch, an
     exit branch inside the loop, and a straight-line hammock after it. *)
  let r i = Bv_isa.Reg.make i in
  let mov d v = Bv_isa.Instr.Mov { dst = r d; src = Bv_isa.Instr.Imm v } in
  let cmp d a b =
    Bv_isa.Instr.Cmp
      { op = Bv_isa.Instr.Lt; dst = r d; src1 = r a; src2 = Bv_isa.Instr.Reg (r b) }
  in
  let branch ~src ~taken ~not_taken id =
    Term.Branch { on = true; src = r src; taken; not_taken; id }
  in
  let block label body term = Block.make ~label ~body ~term in
  let proc =
    Proc.make ~name:"main" ~entry:"entry"
      [ block "entry" [ mov 1 0; mov 2 10 ] (Term.Jump "head");
        block "head" [ cmp 3 1 2 ]
          (branch ~src:3 ~taken:"body" ~not_taken:"done" 0);
        block "body"
          [ Bv_isa.Instr.Alu
              { op = Bv_isa.Instr.Add;
                dst = r 1;
                src1 = r 1;
                src2 = Bv_isa.Instr.Imm 1
              };
            cmp 4 1 2
          ]
          (branch ~src:4 ~taken:"head" ~not_taken:"done" 1);
        block "done" [ mov 5 1; cmp 6 5 2 ]
          (branch ~src:6 ~taken:"left" ~not_taken:"right" 2);
        block "left" [ mov 7 1 ] (Term.Jump "join");
        block "right" [ mov 7 2 ] (Term.Jump "join");
        block "join" [] Term.Halt
      ]
  in
  let loops = Loops.compute proc in
  Alcotest.(check (list (pair string string)))
    "one back edge" [ ("body", "head") ] (Loops.back_edges loops);
  Alcotest.(check (list string)) "loop body" [ "body"; "head" ]
    (Loops.body loops "head");
  Alcotest.(check int) "depth inside" 1 (Loops.depth loops "body");
  Alcotest.(check int) "depth outside" 0 (Loops.depth loops "done");
  let costs = Costmodel.analyze_proc proc in
  let find site =
    List.find (fun (c : Costmodel.site_cost) -> c.site = site) costs
  in
  Alcotest.(check string) "loop exit" "loop-exit"
    (Costmodel.pred_class_name (find 0).pred_class);
  Alcotest.(check string) "latch is loop-back" "loop-back"
    (Costmodel.pred_class_name (find 1).pred_class);
  Alcotest.(check string) "hammock after the loop" "straightline"
    (Costmodel.pred_class_name (find 2).pred_class);
  Alcotest.(check bool) "latch not forward" false (find 1).Costmodel.forward

(* -------------------------------------------------------------- advise -- *)

let top5 advice =
  List.filteri (fun i _ -> i < 5) advice.Advisor.recommended
  |> List.map (fun r -> r.Advisor.cost.Costmodel.site)

let test_advise_golden_int () =
  let b = Lazy.force bench_int in
  let advice = Runner.advise b in
  Alcotest.(check bool)
    "recommends something" true
    (List.length advice.Advisor.recommended > 0);
  (* Ranking is deterministic: the top-5 of the golden workload is pinned
     — an advisor change that reorders it must update this on purpose. *)
  Alcotest.(check (list int)) "top-5 stable" [ 6; 8; 11; 12 ] (top5 advice);
  (* Advising twice gives byte-identical ranking. *)
  let again = Runner.advise b in
  Alcotest.(check (list int))
    "deterministic"
    (List.map (fun r -> r.Advisor.cost.Costmodel.site) advice.Advisor.sites)
    (List.map (fun r -> r.Advisor.cost.Costmodel.site) again.Advisor.sites);
  (* Every recommended site passed every gate. *)
  List.iter
    (fun r ->
      Alcotest.(check bool) "recommended is eligible" true
        (r.Advisor.cost.Costmodel.ineligible = None);
      Alcotest.(check bool) "recommended is forward" true
        r.Advisor.cost.Costmodel.forward;
      Alcotest.(check bool) "recommended saves cycles" true
        (r.Advisor.cycles_saved > 0.0))
    advice.Advisor.recommended

let test_validate_golden_configs () =
  (* The acceptance bar: on the golden workloads the static cycles-saved
     ranking correlates positively with measured per-site recovery. *)
  let check_bench name b ~width ~min_joined =
    let c = Runner.advise_validate ~inputs:(Runner.input_indices ()) b ~width in
    Alcotest.(check bool)
      (name ^ ": enough sites joined")
      true
      (List.length c.Runner.ac_validation.Advisor.joined >= min_joined);
    Alcotest.(check bool)
      (name ^ ": positive rank correlation")
      true
      (c.Runner.ac_validation.Advisor.spearman > 0.0);
    (* The static window-pressure estimate is an upper bound on the
       occupancy the verifier proves for the transformed program. *)
    let max_pressure =
      List.fold_left
        (fun acc r -> max acc r.Advisor.cost.Costmodel.window_pressure)
        0 c.Runner.ac_advice.Advisor.sites
    in
    Alcotest.(check bool)
      (name ^ ": static pressure covers measured occupancy")
      true
      (max_pressure >= c.Runner.ac_max_outstanding)
  in
  check_bench "golden-int" (Lazy.force bench_int) ~width:4 ~min_joined:5;
  check_bench "golden-mem" (Lazy.force bench_mem) ~width:8 ~min_joined:2

let test_transform_select () =
  (* ~select filters candidates; deselected sites are reported, the rest
     transform normally, and goldens rely on the default keeping all. *)
  let b = Lazy.force bench_int in
  let advice = Runner.advise b in
  let keep =
    List.map
      (fun r -> r.Advisor.cost.Costmodel.site)
      advice.Advisor.recommended
  in
  let train = Gen.generate ~input:0 (Runner.spec b) in
  let candidates = (Runner.selection b).Vanguard.Select.candidates in
  let result =
    Vanguard.Transform.apply ~exit_live:Gen.live_at_exit
      ~select:(fun c -> List.mem c.Vanguard.Select.site keep)
      ~candidates train
  in
  let deselected =
    List.filter (fun (_, reason) -> reason = "deselected")
      result.Vanguard.Transform.skipped
  in
  List.iter
    (fun (site, _) ->
      Alcotest.(check bool) "deselected site was not recommended" false
        (List.mem site keep))
    deselected;
  List.iter
    (fun (r : Vanguard.Transform.site_report) ->
      Alcotest.(check bool) "transformed site was selected" true
        (List.mem r.Vanguard.Transform.site keep
        || not
             (List.exists
                (fun c -> c.Vanguard.Select.site = r.Vanguard.Transform.site)
                candidates)))
    result.Vanguard.Transform.reports

(* A recommended site never trips the speculation verifier: transform
   with the advisor's selection, verify on (the default) — any rejected
   site would raise. Fuzz programs get a permissive profile so the
   advisor sees many candidates. *)
let prop_recommended_sites_verify =
  QCheck2.Test.make ~count:25 ~name:"advised selection passes the verifier"
    QCheck2.Gen.(int_range 0 500)
    (fun seed ->
      let prog = Fuzzgen.generate ~seed in
      let image = Layout.program (Program.copy prog) in
      let profile =
        Bv_profile.Profile.collect
          ~predictor:(Kind.create Kind.Always_not_taken)
          image
      in
      let selection =
        Vanguard.Select.select ~threshold:(-2.0) ~min_executed:0 ~profile prog
      in
      let costs = Costmodel.analyze prog in
      let config =
        { Advisor.default_config with
          Advisor.threshold = -2.0;
          Advisor.min_executed = 0;
          Advisor.growth_penalty = 0.0
        }
      in
      let advice = Advisor.advise ~config ~profile costs in
      let keep =
        List.map
          (fun r -> r.Advisor.cost.Costmodel.site)
          advice.Advisor.recommended
      in
      let result =
        Vanguard.Transform.apply
          ~select:(fun c -> List.mem c.Vanguard.Select.site keep)
          ~candidates:selection.Vanguard.Select.candidates prog
      in
      (* A recommended candidate must transform cleanly: the cost model's
         eligibility mirrors the transform's safety checks, so the only
         skips are deselections. *)
      List.for_all
        (fun (site, reason) ->
          reason = "deselected" || not (List.mem site keep))
        result.Vanguard.Transform.skipped)

let () =
  Alcotest.run "advisor"
    [ ("spearman", [ Alcotest.test_case "spearman" `Quick test_spearman ]);
      ( "costmodel",
        [ Alcotest.test_case "golden-int invariants" `Quick
            test_costmodel_golden_int;
          Alcotest.test_case "loops and classes" `Quick test_classes_and_loops
        ] );
      ( "advise",
        [ Alcotest.test_case "golden-int ranking" `Quick
            test_advise_golden_int;
          Alcotest.test_case "transform select" `Quick test_transform_select
        ] );
      ( "validate",
        [ Alcotest.test_case "golden configs" `Slow
            test_validate_golden_configs
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_recommended_sites_verify ] )
    ]
