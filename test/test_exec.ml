open Bv_exec
open Bv_isa
open Bv_ir

let r = Reg.make
let movi d v = Instr.Mov { dst = r d; src = Instr.Imm v }
let add d a b = Instr.Alu { op = Instr.Add; dst = r d; src1 = r a; src2 = Instr.Reg (r b) }
let addi d a v = Instr.Alu { op = Instr.Add; dst = r d; src1 = r a; src2 = Instr.Imm v }
let block ?(body = []) label term = Block.make ~label ~body ~term

let program ?segments ?mem_words procs main =
  Layout.program (Program.make ?segments ?mem_words ~main procs)

let test_arith () =
  let image =
    program
      [ Proc.make ~name:"m"
          [ block ~body:[ movi 1 21; add 2 1 1; addi 3 2 (-2) ] "e" Term.Halt ]
      ]
      "m"
  in
  let st = Interp.run image in
  Alcotest.(check int) "r2" 42 st.Interp.regs.(2);
  Alcotest.(check int) "r3" 40 st.Interp.regs.(3);
  Alcotest.(check int) "instrs" 4 st.Interp.instr_count;
  Alcotest.(check bool) "halted" true st.Interp.halted

let loop_program n =
  program ~mem_words:4
    [ Proc.make ~name:"m"
        [ block ~body:[ movi 1 0; movi 2 0 ] "e" (Term.Jump "loop");
          block
            ~body:
              [ add 2 2 1; addi 1 1 1;
                Instr.Cmp { op = Instr.Lt; dst = r 5; src1 = r 1; src2 = Instr.Imm n }
              ]
            "loop"
            (Term.Branch
               { on = true; src = r 5; taken = "loop"; not_taken = "out"; id = 1 });
          block ~body:[ Instr.Store { src = r 2; base = r 0; offset = 0 } ] "out"
            Term.Halt
        ]
    ]
    "m"

let test_loop () =
  let st = Interp.run (loop_program 10) in
  Alcotest.(check int) "sum 0..9" 45 st.Interp.mem.(0);
  Alcotest.(check int) "stores" 1 st.Interp.store_count

let test_branch_hooks () =
  let count = ref 0 and takens = ref 0 in
  let hooks =
    { Interp.no_hooks with
      Interp.on_branch =
        (fun ~id:_ ~pc:_ ~taken ->
          incr count;
          if taken then incr takens)
    }
  in
  ignore (Interp.run ~hooks (loop_program 10));
  Alcotest.(check int) "branch executions" 10 !count;
  Alcotest.(check int) "taken count" 9 !takens

let test_calls () =
  let image =
    program ~mem_words:4
      [ Proc.make ~name:"m"
          [ block ~body:[ movi 1 5 ] "e"
              (Term.Call { target = "double"; return_to = "back" });
            block "back" (Term.Call { target = "double"; return_to = "back2" });
            block ~body:[ Instr.Store { src = r 1; base = r 0; offset = 0 } ]
              "back2" Term.Halt
          ];
        Proc.make ~name:"double" [ block ~body:[ add 1 1 1 ] "d0" Term.Ret ]
      ]
      "m"
  in
  let st = Interp.run image in
  Alcotest.(check int) "5*2*2" 20 st.Interp.mem.(0)

let test_ret_underflow_faults () =
  (* [aux] never runs, but its call makes [m] a legal call target so the
     layout-time validator (which rejects a ret in a never-called proc)
     lets the runtime underflow happen. *)
  let image =
    program
      [ Proc.make ~name:"m" [ block "e" Term.Ret ];
        Proc.make ~name:"aux"
          [ block "a0" (Term.Call { target = "m"; return_to = "a1" });
            block "a1" Term.Halt
          ]
      ]
      "m"
  in
  Alcotest.check_raises "fault" (Interp.Fault "ret with empty call stack")
    (fun () -> ignore (Interp.run image))

let test_memory_faults () =
  let bad_store off =
    program ~mem_words:2
      [ Proc.make ~name:"m"
          [ block ~body:[ Instr.Store { src = r 0; base = r 0; offset = off } ]
              "e" Term.Halt
          ]
      ]
      "m"
  in
  Alcotest.check_raises "unaligned" (Interp.Fault "store to invalid address 4")
    (fun () -> ignore (Interp.run (bad_store 4)));
  Alcotest.check_raises "out of range"
    (Interp.Fault "store to invalid address 1600") (fun () ->
      ignore (Interp.run (bad_store 1600)))

let test_speculative_load_suppresses () =
  let image =
    program ~mem_words:2
      [ Proc.make ~name:"m"
          [ block
              ~body:
                [ movi 2 7;
                  Instr.Load
                    { dst = r 2; base = r 0; offset = 99992; speculative = true }
                ]
              "e" Term.Halt
          ]
      ]
      "m"
  in
  let st = Interp.run image in
  Alcotest.(check int) "suppressed to zero" 0 st.Interp.regs.(2)

let test_segments_initialise_memory () =
  let image =
    program
      ~segments:[ { Program.base = 8; contents = [| 11; 22 |] } ]
      ~mem_words:4
      [ Proc.make ~name:"m"
          [ block
              ~body:
                [ Instr.Load { dst = r 1; base = r 0; offset = 16; speculative = false } ]
              "e" Term.Halt
          ]
      ]
      "m"
  in
  let st = Interp.run image in
  Alcotest.(check int) "segment word" 22 st.Interp.regs.(1)

(* decomposed-branch semantics: the predict direction must not matter *)
let decomposed_program () =
  let cmp = Instr.Cmp { op = Instr.Ne; dst = r 5; src1 = r 1; src2 = Instr.Imm 0 } in
  Program.make ~mem_words:4 ~main:"m"
    [ Proc.make ~name:"m"
        [ block ~body:[ movi 1 1 ] "a"
            (Term.Predict { taken = "rt"; not_taken = "rnt"; id = 1 });
          block ~body:[ cmp ] "rnt"
            (Term.Resolve
               { on = true; src = r 5; mispredict = "fixc"; fallthrough = "b";
                 predicted_taken = false; id = 1 });
          block ~body:[ movi 2 100 ] "b" (Term.Jump "join");
          block ~body:[ cmp ] "rt"
            (Term.Resolve
               { on = true; src = r 5; mispredict = "fixb"; fallthrough = "c";
                 predicted_taken = true; id = 1 });
          block ~body:[ movi 2 200 ] "c" (Term.Jump "join");
          block ~body:[ Instr.Store { src = r 2; base = r 0; offset = 0 } ]
            "join" Term.Halt;
          block "fixb" (Term.Jump "b");
          block "fixc" (Term.Jump "c")
        ]
    ]

let test_predict_direction_is_immaterial () =
  let image = Layout.program (decomposed_program ()) in
  let run policy = (Interp.run ~predict_policy:policy image).Interp.mem.(0) in
  (* r1 = 1, so the branch is architecturally taken: path C stores 200 *)
  Alcotest.(check int) "predicted not-taken" 200
    (run (fun ~pc:_ ~id:_ -> false));
  Alcotest.(check int) "predicted taken" 200 (run (fun ~pc:_ ~id:_ -> true))

let test_resolve_hook () =
  let image = Layout.program (decomposed_program ()) in
  let mis = ref None in
  let hooks =
    { Interp.no_hooks with
      Interp.on_resolve =
        (fun ~id:_ ~pc:_ ~mispredicted ~taken ->
          mis := Some (mispredicted, taken))
    }
  in
  ignore (Interp.run ~hooks ~predict_policy:(fun ~pc:_ ~id:_ -> false) image);
  Alcotest.(check (option (pair bool bool))) "mispredicted, actually taken"
    (Some (true, true)) !mis

let test_max_instrs () =
  (* infinite loop bounded by max_instrs *)
  let image =
    program [ Proc.make ~name:"m" [ block "e" (Term.Jump "e") ] ] "m"
  in
  let st = Interp.run ~max_instrs:100 image in
  Alcotest.(check int) "bounded" 100 st.Interp.instr_count;
  Alcotest.(check bool) "not halted" false st.Interp.halted

let test_digests () =
  let s1 = Interp.run (loop_program 10) in
  let s2 = Interp.run (loop_program 10) in
  let s3 = Interp.run (loop_program 11) in
  Alcotest.(check int) "deterministic" (Interp.arch_digest s1)
    (Interp.arch_digest s2);
  Alcotest.(check bool) "sensitive" true
    (Interp.arch_digest s1 <> Interp.arch_digest s3);
  Alcotest.(check bool) "reg digest differs too" true
    (Interp.reg_digest s1 <> Interp.reg_digest s3);
  Alcotest.(check bool) "mem digest differs" true
    (Interp.mem_digest s1 <> Interp.mem_digest s3)

let () =
  Alcotest.run "bv_exec"
    [ ( "basics",
        [ Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "loop" `Quick test_loop;
          Alcotest.test_case "branch hooks" `Quick test_branch_hooks;
          Alcotest.test_case "calls" `Quick test_calls
        ] );
      ( "faults",
        [ Alcotest.test_case "ret underflow" `Quick test_ret_underflow_faults;
          Alcotest.test_case "memory" `Quick test_memory_faults;
          Alcotest.test_case "speculative load" `Quick
            test_speculative_load_suppresses
        ] );
      ( "memory",
        [ Alcotest.test_case "segments" `Quick test_segments_initialise_memory ] );
      ( "decomposed branches",
        [ Alcotest.test_case "predict immaterial" `Quick
            test_predict_direction_is_immaterial;
          Alcotest.test_case "resolve hook" `Quick test_resolve_hook
        ] );
      ( "limits",
        [ Alcotest.test_case "max instrs" `Quick test_max_instrs;
          Alcotest.test_case "digests" `Quick test_digests
        ] )
    ]
