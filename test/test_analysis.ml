(* The dataflow engine and the speculation-safety verifier.

   The engine is cross-checked against the hand-rolled liveness fixpoint in
   Bv_ir.Liveness. The verifier is exercised both ways: seeded violations
   (stores in speculative windows, undominated or doubled resolves, DBB
   overflow, tainted correction blocks, predicts across calls) must each
   produce their diagnostic, and well-formed decomposed programs — including
   one pushed through the Layout → Recover round-trip — must lint clean. *)

open Bv_isa
open Bv_ir
open Bv_analysis

let r = Reg.make
let block label body term = Block.make ~label ~body ~term

let proc ?entry name blocks = Proc.make ~name ?entry blocks
let program ?(procs = []) main_blocks =
  Program.make ~main:"main" (proc "main" main_blocks :: procs)

let mov dst n = Instr.Mov { dst = r dst; src = Instr.Imm n }
let add dst a b =
  Instr.Alu { op = Instr.Add; dst = r dst; src1 = r a; src2 = Instr.Reg (r b) }
let cmp_lt dst a b =
  Instr.Cmp { op = Instr.Lt; dst = r dst; src1 = r a; src2 = Instr.Reg (r b) }
let store src = Instr.Store { src = r src; base = r 0; offset = 0 }
let load dst = Instr.Load { dst = r dst; base = r 0; offset = 0; speculative = false }

let jump l = Term.Jump l
let branch ?(on = true) src ~taken ~not_taken id =
  Term.Branch { on; src = r src; taken; not_taken; id }
let predict ~taken ~not_taken id = Term.Predict { taken; not_taken; id }
let resolve ?(on = true) src ~mispredict ~fallthrough ~predicted_taken id =
  Term.Resolve
    { on; src = r src; mispredict; fallthrough; predicted_taken; id }

let errors_of_pass pass diags =
  List.filter
    (fun d -> Diagnostic.is_error d && d.Diagnostic.pass = pass)
    diags

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------- dataflow engine -- *)

module Live = Dataflow.Make (struct
  type t = Liveness.Regset.t

  let equal = Liveness.Regset.equal
  let join = Liveness.Regset.union
end)

let looped_proc () =
  proc "main"
    [ block "entry" [ mov 1 0; mov 2 10 ] (jump "head");
      block "head" [ cmp_lt 5 1 2 ]
        (branch 5 ~taken:"body" ~not_taken:"exit" 1);
      block "body" [ add 3 3 1; add 1 1 1 ] (jump "head");
      block "exit" [ store 3 ] Term.Halt
    ]

let test_engine_matches_liveness () =
  let p = looped_proc () in
  let live = Liveness.compute ~exit_live:Liveness.Regset.empty p in
  let sol =
    Live.solve ~direction:Dataflow.Backward ~boundary:Liveness.Regset.empty
      ~transfer:(fun b out ->
        let use, def = Liveness.block_use_def b in
        Liveness.Regset.union use (Liveness.Regset.diff out def))
      p
  in
  List.iter
    (fun label ->
      let expect = Liveness.live_in live label in
      match Live.fact_in sol label with
      | Some got ->
        Alcotest.(check bool)
          (label ^ " live-in matches") true
          (Liveness.Regset.equal expect got)
      | None -> Alcotest.fail (label ^ ": engine computed no fact"))
    (Cfg.reverse_postorder p)

module SS = Set.Make (String)

module Reach = Dataflow.Make (struct
  type t = SS.t

  let equal = SS.equal
  let join = SS.union
end)

let test_engine_backward_irreducible () =
  (* Two entries into the {l1, l2} cycle — an irreducible-looking region
     (neither cycle block dominates the other) — solved backwards. The
     fact at each block is the set of labels on some path from it to an
     exit, so the fixpoint must carry both exits all the way around the
     cycle and into both of its entry edges. *)
  let p =
    proc "main"
      [ block "entry" [ mov 5 1 ]
          (branch 5 ~taken:"l1" ~not_taken:"l2" 1);
        block "l1" [] (branch 6 ~taken:"l2" ~not_taken:"exit_a" 2);
        block "l2" [] (branch 7 ~taken:"l1" ~not_taken:"exit_b" 3);
        block "exit_a" [] Term.Halt;
        block "exit_b" [] Term.Halt
      ]
  in
  let sol =
    Reach.solve ~direction:Dataflow.Backward ~boundary:SS.empty
      ~transfer:(fun b s -> SS.add b.Block.label s)
      p
  in
  let check label expect =
    match Reach.fact_in sol label with
    | None -> Alcotest.failf "%s: engine computed no fact" label
    | Some s ->
      Alcotest.(check (list string)) label expect (SS.elements s)
  in
  check "exit_a" [ "exit_a" ];
  check "exit_b" [ "exit_b" ];
  check "l1" [ "exit_a"; "exit_b"; "l1"; "l2" ];
  check "l2" [ "exit_a"; "exit_b"; "l1"; "l2" ];
  check "entry" [ "entry"; "exit_a"; "exit_b"; "l1"; "l2" ]

let test_engine_skips_unreachable () =
  let p =
    proc "main"
      [ block "entry" [] Term.Halt; block "island" [] (jump "island") ]
  in
  let sol =
    Live.solve ~direction:Dataflow.Forward ~boundary:Liveness.Regset.empty
      ~transfer:(fun _ s -> s)
      p
  in
  Alcotest.(check bool) "island has no fact" true
    (Live.fact_in sol "island" = None);
  Alcotest.(check bool) "entry has a fact" true
    (Live.fact_in sol "entry" <> None)

(* ------------------------------------------- seeded lint violations -- *)

(* A minimal decomposed hammock: predict in [entry], one resolve arm per
   direction, correction blocks cold at the end. [rnt_body]/[fix_body]
   parameterise the seeded violation. *)
let hammock ?(rnt_body = [ cmp_lt 5 1 2 ]) ?(fixc_body = [ mov 7 20 ]) () =
  program
    [ block "entry" [ mov 1 5; mov 2 3 ] (predict ~taken:"rt" ~not_taken:"rnt" 1);
      block "rnt" rnt_body
        (resolve 5 ~mispredict:"fixc" ~fallthrough:"join"
           ~predicted_taken:false 1);
      block "rt" [ cmp_lt 5 1 2 ]
        (resolve 5 ~mispredict:"fixb" ~fallthrough:"join"
           ~predicted_taken:true 1);
      block "join" [ store 6 ] Term.Halt;
      block "fixb" [ mov 6 10 ] (jump "join");
      block "fixc" fixc_body (jump "join")
    ]

let test_clean_hammock () =
  let diags = Speculation.verify (hammock ()) in
  Alcotest.(check bool) "no diagnostics at all" true (diags = [])

let test_store_in_window () =
  let diags =
    Speculation.verify (hammock ~rnt_body:[ cmp_lt 5 1 2; store 6 ] ())
  in
  Alcotest.(check int) "one spec-window error" 1
    (List.length (errors_of_pass "spec-window" diags))

let test_unmarked_load_in_window () =
  let diags =
    Speculation.verify (hammock ~rnt_body:[ load 1; cmp_lt 5 1 2 ] ())
  in
  Alcotest.(check bool) "no errors" true (not (Diagnostic.has_errors diags));
  Alcotest.(check int) "one warning" 1 (Diagnostic.count Diagnostic.Warning diags)

let test_correction_store () =
  let diags =
    Speculation.verify (hammock ~fixc_body:[ store 7 ] ())
  in
  Alcotest.(check int) "one correction error" 1
    (List.length (errors_of_pass "correction" diags))

let test_correction_use_before_def () =
  (* rnt speculatively clobbers r10 (unrenamed); the correction block for a
     mispredict on that arm then reads r10. *)
  let diags =
    Speculation.verify
      (hammock
         ~rnt_body:[ cmp_lt 5 1 2; mov 10 7 ]
         ~fixc_body:[ add 7 10 10 ] ())
  in
  match errors_of_pass "correction" diags with
  | [ d ] ->
    Alcotest.(check bool) "names r10" true
      (contains_sub d.Diagnostic.message "r10")
  | ds -> Alcotest.failf "expected 1 correction error, got %d" (List.length ds)

let test_resolve_not_dominated () =
  let p =
    program
      [ block "entry" [] (branch 5 ~taken:"p" ~not_taken:"skip" 99);
        block "p" [] (predict ~taken:"m" ~not_taken:"m" 1);
        block "skip" [] (jump "m");
        block "m" []
          (resolve 5 ~mispredict:"fix" ~fallthrough:"done"
             ~predicted_taken:false 1);
        block "fix" [] (jump "done");
        block "done" [] Term.Halt
      ]
  in
  match errors_of_pass "pairing" (Speculation.verify p) with
  | [ d ] ->
    Alcotest.(check bool) "mentions domination" true
      (contains_sub d.Diagnostic.message "not dominated")
  | ds -> Alcotest.failf "expected 1 pairing error, got %d" (List.length ds)

let test_double_resolve () =
  let p =
    program
      [ block "entry" [] (predict ~taken:"r1" ~not_taken:"r1" 1);
        block "r1" []
          (resolve 5 ~mispredict:"fix" ~fallthrough:"r2"
             ~predicted_taken:false 1);
        block "r2" []
          (resolve 5 ~mispredict:"fix" ~fallthrough:"done"
             ~predicted_taken:true 1);
        block "fix" [] (jump "done");
        block "done" [] Term.Halt
      ]
  in
  match errors_of_pass "pairing" (Speculation.verify p) with
  | [ d ] ->
    Alcotest.(check bool) "mentions double resolve" true
      (contains_sub d.Diagnostic.message "double resolve")
  | ds -> Alcotest.failf "expected 1 pairing error, got %d" (List.length ds)

let test_dbb_occupancy () =
  let chain = [ 1; 2; 3; 4; 5 ] in
  let predicts =
    List.map
      (fun i ->
        let next = if i = 5 then "r5" else Printf.sprintf "p%d" (i + 1) in
        block (Printf.sprintf "p%d" i) [] (predict ~taken:next ~not_taken:next i))
      chain
  and resolves =
    List.map
      (fun i ->
        let next = if i = 1 then "done" else Printf.sprintf "r%d" (i - 1) in
        block (Printf.sprintf "r%d" i) []
          (resolve 5 ~mispredict:"fix" ~fallthrough:next
             ~predicted_taken:false i))
      (List.rev chain)
  in
  let blocks =
    predicts @ resolves
    @ [ block "fix" [] (jump "done"); block "done" [] Term.Halt ]
  in
  let p = Program.make ~main:"p1" [ proc "p1" blocks ] in
  Alcotest.(check bool) "fits a 16-entry DBB" true
    (not (Diagnostic.has_errors (Speculation.verify p)));
  let diags = Speculation.verify ~dbb_entries:4 p in
  Alcotest.(check int) "overflows a 4-entry DBB" 1
    (List.length (errors_of_pass "pairing" diags))

let test_predict_across_call () =
  let callee = proc "callee" [ block "callee_entry" [] Term.Ret ] in
  let p =
    program ~procs:[ callee ]
      [ block "entry" [] (predict ~taken:"c" ~not_taken:"c" 1);
        block "c" [] (Term.Call { target = "callee"; return_to = "back" });
        block "back" []
          (resolve 5 ~mispredict:"fix" ~fallthrough:"done"
             ~predicted_taken:false 1);
        block "fix" [] (jump "done");
        block "done" [] Term.Halt
      ]
  in
  match errors_of_pass "pairing" (Speculation.verify p) with
  | [ d ] ->
    Alcotest.(check bool) "flags the call" true
      (contains_sub d.Diagnostic.message "call")
  | ds -> Alcotest.failf "expected 1 pairing error, got %d" (List.length ds)

let test_repredict_in_loop () =
  let p =
    program
      [ block "entry" [] (predict ~taken:"body" ~not_taken:"body" 1);
        block "body" [] (branch 5 ~taken:"entry" ~not_taken:"res" 9);
        block "res" []
          (resolve 5 ~mispredict:"fix" ~fallthrough:"done"
             ~predicted_taken:false 1);
        block "fix" [] (jump "done");
        block "done" [] Term.Halt
      ]
  in
  match errors_of_pass "pairing" (Speculation.verify p) with
  | [ d ] ->
    Alcotest.(check bool) "mentions re-predict" true
      (contains_sub d.Diagnostic.message "re-predict")
  | ds -> Alcotest.failf "expected 1 pairing error, got %d" (List.length ds)

let test_assert_style_resolve () =
  let p =
    program
      [ block "entry" [] (jump "r");
        block "r" [ cmp_lt 5 1 2 ]
          (resolve 5 ~mispredict:"fix" ~fallthrough:"done"
             ~predicted_taken:false 3);
        block "fix" [] (jump "done");
        block "done" [] Term.Halt
      ]
  in
  Alcotest.(check (result unit (list string))) "validates" (Ok ())
    (Validate.check p);
  let diags = Speculation.verify p in
  Alcotest.(check bool) "no errors" true (not (Diagnostic.has_errors diags));
  Alcotest.(check int) "one info" 1 (Diagnostic.count Diagnostic.Info diags)

let test_scratch_uninit () =
  let cmov_r48 =
    Instr.Cmov
      { on = true; cond = r 14; dst = r 48; src = Instr.Reg (r 16) }
  in
  let p = hammock ~rnt_body:[ cmov_r48; cmp_lt 5 1 2 ] () in
  Alcotest.(check bool) "silent without a scratch set" true
    (not (Diagnostic.has_errors (Speculation.verify p)));
  match errors_of_pass "scratch-uninit" (Speculation.verify ~scratch:[ r 48 ] p)
  with
  | [ d ] ->
    Alcotest.(check bool) "names r48" true
      (contains_sub d.Diagnostic.message "r48")
  | ds ->
    Alcotest.failf "expected 1 scratch-uninit error, got %d" (List.length ds)

let test_unreachable_block () =
  let p =
    program
      [ block "entry" [] Term.Halt; block "island" [ mov 6 1 ] (jump "island") ]
  in
  let diags = Speculation.verify p in
  Alcotest.(check bool) "no errors" true (not (Diagnostic.has_errors diags));
  Alcotest.(check int) "one reachability warning" 1
    (List.length
       (List.filter (fun d -> d.Diagnostic.pass = "reachability") diags))

(* -------------------------------------------------- validator fixes -- *)

let expect_validate_error p sub =
  match Validate.check p with
  | Ok () -> Alcotest.failf "expected a validation error matching %S" sub
  | Error msgs ->
    Alcotest.(check bool)
      (Printf.sprintf "some message contains %S" sub)
      true
      (List.exists (fun m -> contains_sub m sub) msgs)

let test_validate_duplicate_predict () =
  expect_validate_error
    (program
       [ block "entry" [] (predict ~taken:"x" ~not_taken:"x" 1);
         block "x" [] (predict ~taken:"y" ~not_taken:"y" 1);
         block "y" []
           (resolve 5 ~mispredict:"z" ~fallthrough:"z" ~predicted_taken:false
              1);
         block "z" [] Term.Halt
       ])
    "duplicate predict site id 1"

let test_validate_duplicate_resolve_arm () =
  expect_validate_error
    (program
       [ block "entry" [] (predict ~taken:"r1" ~not_taken:"r1" 1);
         block "r1" []
           (resolve 5 ~mispredict:"z" ~fallthrough:"r2"
              ~predicted_taken:false 1);
         block "r2" []
           (resolve 5 ~mispredict:"z" ~fallthrough:"z"
              ~predicted_taken:false 1);
         block "z" [] Term.Halt
       ])
    "duplicate resolve site id 1"

let test_validate_resolve_branch_collision () =
  expect_validate_error
    (program
       [ block "entry" [] (branch 5 ~taken:"a" ~not_taken:"a" 7);
         block "a" []
           (resolve 5 ~mispredict:"z" ~fallthrough:"z" ~predicted_taken:false
              7);
         block "z" [] Term.Halt
       ])
    "both a branch and a resolve"

let test_validate_multi_arm_unpaired_resolve () =
  expect_validate_error
    (program
       [ block "entry" [] (jump "a");
         block "a" []
           (resolve 5 ~mispredict:"z" ~fallthrough:"b" ~predicted_taken:false
              3);
         block "b" []
           (resolve 5 ~mispredict:"z" ~fallthrough:"z" ~predicted_taken:true
              3);
         block "z" [] Term.Halt
       ])
    "no matching predict"

(* -------------------------------------------- transform regression -- *)

(* A conditional move leading a successor block both reads and writes its
   destination. Hoisting it speculatively must seed the fresh temporary
   with the running value — without that, the commit move publishes the
   uninitialised temp whenever the cmov condition is false. Found by the
   speculation linter's scratch-uninit pass on fuzzed programs. *)
let test_cmov_partial_write_hoist () =
  let prog =
    program
      [ block "a" [ mov 10 45; mov 14 0; mov 16 7; cmp_lt 5 14 16 ]
          (branch 5 ~taken:"c" ~not_taken:"b" 1);
        block "b"
          [ Instr.Cmov
              { on = true; cond = r 14; dst = r 10; src = Instr.Reg (r 16) }
          ]
          (jump "join");
        block "c" [ mov 8 1 ] (jump "join");
        block "join" [ store 10 ] Term.Halt
      ]
  in
  let image = Layout.program (Program.copy prog) in
  let profile =
    Bv_profile.Profile.collect
      ~predictor:(Bv_bpred.Kind.create Bv_bpred.Kind.Always_not_taken)
      image
  in
  let candidates =
    (Vanguard.Select.select ~threshold:(-2.0) ~min_executed:0 ~profile prog)
      .Vanguard.Select.candidates
  in
  Alcotest.(check bool) "site is a candidate" true (candidates <> []);
  let result = Vanguard.Transform.apply ~candidates prog in
  let digest i = Bv_exec.Interp.arch_digest (Bv_exec.Interp.run i) in
  Alcotest.(check int) "same architectural digest" (digest image)
    (digest (Layout.program result.Vanguard.Transform.program));
  Alcotest.(check bool) "transformed program lints clean" true
    (not
       (Diagnostic.has_errors
          (Speculation.verify
             ~scratch:Vanguard.Transform.default_temp_pool
             result.Vanguard.Transform.program)))

(* ------------------------------------------- recover round-tripping -- *)

let test_recover_roundtrip_decomposed () =
  let p = hammock () in
  Alcotest.(check (result unit (list string))) "original validates" (Ok ())
    (Validate.check p);
  let img = Layout.program p in
  let recovered = Recover.image img in
  Alcotest.(check (result unit (list string))) "recovered validates" (Ok ())
    (Validate.check recovered);
  Alcotest.(check bool) "recovered lints clean" true
    (not (Diagnostic.has_errors (Speculation.verify recovered)));
  let digest i = Bv_exec.Interp.arch_digest (Bv_exec.Interp.run i) in
  Alcotest.(check int) "same architectural digest" (digest img)
    (digest (Layout.program recovered))

(* ------------------------------------------------------ diagnostics -- *)

let test_diagnostic_json_roundtrip () =
  let d =
    Diagnostic.error ~block:"b1" ~site:5 ~pass:"pairing" ~proc:"main"
      "resolve of site %d misbehaves" 5
  in
  let json = Diagnostic.to_json d in
  match Bv_obs.Json.of_string (Bv_obs.Json.to_string ~indent:true json) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
    let str k =
      match Bv_obs.Json.member k parsed with
      | Some (Bv_obs.Json.String s) -> s
      | _ -> Alcotest.failf "missing string field %s" k
    in
    Alcotest.(check string) "severity" "error" (str "severity");
    Alcotest.(check string) "pass" "pairing" (str "pass");
    Alcotest.(check string) "proc" "main" (str "proc");
    Alcotest.(check string) "block" "b1" (str "block");
    Alcotest.(check bool) "site" true
      (Bv_obs.Json.member "site" parsed = Some (Bv_obs.Json.Int 5));
    Alcotest.(check string) "message" "resolve of site 5 misbehaves"
      (str "message")

let test_report_counts () =
  let diags =
    [ Diagnostic.info ~pass:"pairing" ~proc:"main" "i";
      Diagnostic.error ~pass:"pairing" ~proc:"main" "e";
      Diagnostic.warning ~pass:"spec-window" ~proc:"main" "w"
    ]
  in
  let json = Diagnostic.report_to_json diags in
  Alcotest.(check bool) "error count" true
    (Bv_obs.Json.member "errors" json = Some (Bv_obs.Json.Int 1));
  Alcotest.(check bool) "warning count" true
    (Bv_obs.Json.member "warnings" json = Some (Bv_obs.Json.Int 1));
  Alcotest.(check bool) "info count" true
    (Bv_obs.Json.member "infos" json = Some (Bv_obs.Json.Int 1));
  match Diagnostic.sort diags with
  | { Diagnostic.severity = Diagnostic.Error; _ } :: _ -> ()
  | _ -> Alcotest.fail "sort must put errors first"

let test_diagnostic_order_dedup () =
  let e1 =
    Diagnostic.error ~block:"b2" ~site:4 ~pass:"pairing" ~proc:"main" "boom"
  in
  let e1' =
    Diagnostic.error ~block:"b2" ~site:4 ~pass:"pairing" ~proc:"main" "boom"
  in
  let e2 = Diagnostic.error ~pass:"spec-window" ~proc:"main" "later pass" in
  let w =
    Diagnostic.warning ~block:"b1" ~site:3 ~pass:"pairing" ~proc:"main" "w"
  in
  let i = Diagnostic.info ~pass:"pairing" ~proc:"aux" "i" in
  Alcotest.(check string) "site key" "main/b2#4" (Diagnostic.site_key e1);
  Alcotest.(check string) "site key with missing parts" "main/-#-"
    (Diagnostic.site_key e2);
  (* Total order: severity first, then pass/location, whatever the input
     permutation. *)
  let messages ds = List.map (fun d -> d.Diagnostic.message) ds in
  Alcotest.(check (list string))
    "sorted order"
    [ "boom"; "later pass"; "w"; "i" ]
    (messages (Diagnostic.sort [ i; w; e2; e1 ]));
  Alcotest.(check (list string))
    "order is permutation-independent"
    (messages (Diagnostic.sort [ i; w; e2; e1 ]))
    (messages (Diagnostic.sort [ e1; e2; w; i ]));
  Alcotest.(check int) "compare equal on duplicates" 0
    (Diagnostic.compare e1 e1');
  (* Dedup keeps the first occurrence of each repeated finding. *)
  Alcotest.(check (list string))
    "dedup drops repeats" [ "boom"; "w" ]
    (messages (Diagnostic.dedup [ e1; e1'; w; e1 ]));
  (* report_to_json counts the deduped list, not the raw one. *)
  Alcotest.(check bool) "report counts post-dedup" true
    (Bv_obs.Json.member "errors" (Diagnostic.report_to_json [ e1; e1'; e2 ])
    = Some (Bv_obs.Json.Int 2))

let () =
  Alcotest.run "bv_analysis"
    [ ( "dataflow engine",
        [ Alcotest.test_case "matches the liveness fixpoint" `Quick
            test_engine_matches_liveness;
          Alcotest.test_case "backward over an irreducible cycle" `Quick
            test_engine_backward_irreducible;
          Alcotest.test_case "no facts for unreachable blocks" `Quick
            test_engine_skips_unreachable
        ] );
      ( "speculation verifier",
        [ Alcotest.test_case "clean hammock lints clean" `Quick
            test_clean_hammock;
          Alcotest.test_case "store in speculative window" `Quick
            test_store_in_window;
          Alcotest.test_case "unmarked load in window warns" `Quick
            test_unmarked_load_in_window;
          Alcotest.test_case "store in correction block" `Quick
            test_correction_store;
          Alcotest.test_case "use-before-def in correction block" `Quick
            test_correction_use_before_def;
          Alcotest.test_case "resolve not dominated by predict" `Quick
            test_resolve_not_dominated;
          Alcotest.test_case "double resolve" `Quick test_double_resolve;
          Alcotest.test_case "DBB occupancy" `Quick test_dbb_occupancy;
          Alcotest.test_case "predict outstanding across call" `Quick
            test_predict_across_call;
          Alcotest.test_case "re-predict inside a loop" `Quick
            test_repredict_in_loop;
          Alcotest.test_case "assert-style resolve is info" `Quick
            test_assert_style_resolve;
          Alcotest.test_case "undominated scratch read" `Quick
            test_scratch_uninit;
          Alcotest.test_case "unreachable block warns" `Quick
            test_unreachable_block
        ] );
      ( "transform regression",
        [ Alcotest.test_case "hoisted cmov seeds its temp" `Quick
            test_cmov_partial_write_hoist
        ] );
      ( "validator",
        [ Alcotest.test_case "duplicate predict id" `Quick
            test_validate_duplicate_predict;
          Alcotest.test_case "duplicate resolve arm" `Quick
            test_validate_duplicate_resolve_arm;
          Alcotest.test_case "resolve/branch id collision" `Quick
            test_validate_resolve_branch_collision;
          Alcotest.test_case "multi-arm resolve without predict" `Quick
            test_validate_multi_arm_unpaired_resolve
        ] );
      ( "round-trip",
        [ Alcotest.test_case "recover keeps decomposed programs lintable"
            `Quick test_recover_roundtrip_decomposed
        ] );
      ( "diagnostics",
        [ Alcotest.test_case "json round-trip" `Quick
            test_diagnostic_json_roundtrip;
          Alcotest.test_case "report counts and ordering" `Quick
            test_report_counts;
          Alcotest.test_case "site keys, total order, dedup" `Quick
            test_diagnostic_order_dedup
        ] )
    ]
