(* Spec_state in isolation: the undo-logged speculative memory, the
   checkpoint/rollback machinery and the DBB tail-pointer repair, each
   driven directly against a Machine_state record rather than through a
   full simulation. *)

open Bv_pipeline
open Machine_state

let tiny_image =
  lazy
    (let spec =
       Bv_workloads.Spec.make ~name:"specstate" ~suite:Bv_workloads.Spec.Int_2006
         ~seed:11
         ~branch_classes:
           [ Bv_workloads.Spec.cls ~count:2 ~taken_rate:0.6
               ~predictability:0.9 ()
           ]
         ~inner_n:16 ~reps:1 ()
     in
     Bv_ir.Layout.program (Bv_workloads.Gen.generate ~input:1 spec))

let fresh_state () =
  Machine_state.create ~config:Config.four_wide
    ~on_event:(fun _ -> ())
    (Lazy.force tiny_image)

(* A minimal in-flight control instruction carrying [checkpoint], good
   enough for release_checkpoint / flush bookkeeping: allocates a pool
   row and returns its handle. *)
let ctrl_inflight st ~seq checkpoint =
  let h = Machine_state.alloc_inflight st in
  st.i_seq.(h) <- seq;
  st.i_pc.(h) <- 0;
  st.i_fetch_cycle.(h) <- st.now;
  st.i_addr.(h) <- -1;
  st.i_complete_cycle.(h) <- -1;
  st.i_squashed.(h) <- 0;
  st.i_prefetch.(h) <- -1;
  st.c_kind.(h) <- ck_branch;
  st.c_mispredict.(h) <- (if checkpoint <> None then 1 else 0);
  st.c_redirect.(h) <- 0;
  st.c_site.(h) <- -1;
  st.c_meta_pc.(h) <- 0;
  st.c_actual.(h) <- 0;
  st.c_dbb_slot.(h) <- -1;
  st.c_ckpt.(h) <- checkpoint;
  h

(* -------------------------------------------------- checkpoint round-trip *)

let test_roundtrip () =
  let st = fresh_state () in
  (* establish a pre-checkpoint architectural state *)
  st.regs.(3) <- 111;
  st.regs.(7) <- 222;
  Spec_state.spec_store st ~addr:64 1001;
  Spec_state.spec_store st ~addr:128 1002;
  st.call_stack <- [ 0xAA ];
  Bv_bpred.Ras.push st.ras 0xAA;
  let ck = Spec_state.make_checkpoint st in
  Alcotest.(check int) "one live checkpoint" 1 st.live_checkpoints;
  (* wrong-path damage *)
  st.regs.(3) <- -1;
  st.regs.(7) <- -2;
  Spec_state.spec_store st ~addr:64 9999;
  Spec_state.spec_store st ~addr:256 7777;
  st.call_stack <- 0xBB :: st.call_stack;
  Bv_bpred.Ras.push st.ras 0xBB;
  st.spec_halted <- true;
  st.live_checkpoints <- st.live_checkpoints - 1;
  Spec_state.flush st ~from_seq:st.seq ~checkpoint:ck ~new_pc:0x40;
  (* everything rolls back *)
  Alcotest.(check int) "reg 3 restored" 111 st.regs.(3);
  Alcotest.(check int) "reg 7 restored" 222 st.regs.(7);
  Alcotest.(check int) "store at 64 undone" 1001
    (Spec_state.spec_load st ~addr:64);
  Alcotest.(check int) "store at 128 kept" 1002
    (Spec_state.spec_load st ~addr:128);
  Alcotest.(check int) "store at 256 undone" 0
    (Spec_state.spec_load st ~addr:256);
  Alcotest.(check (list int)) "call stack restored" [ 0xAA ] st.call_stack;
  Alcotest.(check int) "RAS depth restored" 1 (Bv_bpred.Ras.depth st.ras);
  Alcotest.(check bool) "halt flag restored" false st.spec_halted;
  Alcotest.(check int) "fetch redirected" 0x40 st.fetch_pc;
  Alcotest.(check int) "fetch bubble" (st.now + 1) st.fetch_stall_until;
  Alcotest.(check int) "redirect counted" 1 st.stats.Stats.redirects

let test_spec_mem_safety () =
  let st = fresh_state () in
  Alcotest.(check int) "misaligned load is 0" 0
    (Spec_state.spec_load st ~addr:3);
  Alcotest.(check int) "out-of-range load is 0" 0
    (Spec_state.spec_load st ~addr:(st.mem_words * 8));
  Spec_state.spec_store st ~addr:5 42;
  Spec_state.spec_store st ~addr:(-8) 42;
  Alcotest.(check int) "bad stores leave no undo entries" 0
    (Spec_state.log_depth st)

(* ------------------------------------------------------ undo-log trimming *)

let test_log_truncation () =
  let st = fresh_state () in
  Spec_state.spec_store st ~addr:0 1;
  Spec_state.spec_store st ~addr:8 2;
  Alcotest.(check int) "two undo entries" 2 (Spec_state.log_depth st);
  let base0 = st.log_base in
  Spec_state.log_trim st;
  Alcotest.(check int) "unpinned log discarded" 0 (Spec_state.log_depth st);
  Alcotest.(check int) "absolute position preserved" (base0 + 2) st.log_base;
  (* a live checkpoint pins the log *)
  let ck = Spec_state.make_checkpoint st in
  Spec_state.spec_store st ~addr:16 3;
  Spec_state.log_trim st;
  Alcotest.(check int) "pinned log survives trim" 1 (Spec_state.log_depth st);
  (* releasing the owning instruction unpins it *)
  Spec_state.release_checkpoint st (ctrl_inflight st ~seq:0 (Some ck));
  Alcotest.(check int) "no live checkpoints" 0 st.live_checkpoints;
  Spec_state.log_trim st;
  Alcotest.(check int) "released log discarded" 0 (Spec_state.log_depth st);
  (* an inflight without a checkpoint must not decrement the count *)
  ignore (Spec_state.make_checkpoint st);
  Spec_state.release_checkpoint st (ctrl_inflight st ~seq:1 None);
  Alcotest.(check int) "plain ctrl releases nothing" 1 st.live_checkpoints

(* --------------------------------------------------- DBB pointer recovery *)

let dbb_alloc st pc =
  let _, meta = st.predictor.Bv_bpred.Predictor.predict ~pc ~outcome:true in
  Dbb.allocate st.dbb ~pc ~meta ~taken:true

let test_dbb_recovery () =
  let st = fresh_state () in
  (* one committed-path predict already sits in the buffer *)
  let slot0 = dbb_alloc st 0x100 in
  Alcotest.(check bool) "first allocation succeeds" true (slot0 >= 0);
  let ck = Spec_state.make_checkpoint st in
  (* wrong path: its resolve claims the entry, more predicts allocate *)
  let c = Dbb.claim_newest st.dbb in
  if c < 0 then Alcotest.fail "expected a claimable entry";
  Alcotest.(check int) "claimed the pre-checkpoint entry" 0x100
    (Dbb.slot_pc st.dbb c);
  ignore (dbb_alloc st 0x200);
  ignore (dbb_alloc st 0x300);
  Alcotest.(check int) "occupancy before flush" 3 (Dbb.occupancy st.dbb);
  st.live_checkpoints <- st.live_checkpoints - 1;
  Spec_state.flush st ~from_seq:st.seq ~checkpoint:ck ~new_pc:0;
  (* tail pointer recovered: wrong-path allocations gone, the claim on the
     surviving entry reverted so the correct-path resolve can re-claim it *)
  Alcotest.(check int) "occupancy after flush" 1 (Dbb.occupancy st.dbb);
  let c2 = Dbb.claim_newest st.dbb in
  if c2 < 0 then Alcotest.fail "surviving entry should be claimable again";
  Alcotest.(check int) "claim reverted to pre-checkpoint entry" 0x100
    (Dbb.slot_pc st.dbb c2)

let () =
  Alcotest.run "bv_spec_state"
    [ ( "checkpoint rollback",
        [ Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "wrong-path memory safety" `Quick
            test_spec_mem_safety
        ] );
      ( "undo log",
        [ Alcotest.test_case "truncation and pinning" `Quick
            test_log_truncation
        ] );
      ( "dbb",
        [ Alcotest.test_case "tail-pointer recovery" `Quick test_dbb_recovery
        ] )
    ]
