(* Golden cycle-equivalence regression.

   The staged machine (Frontend/Scoreboard/Backend/Spec_state behind
   Machine.run) must reproduce the pre-refactor monolith's behaviour
   bit-for-bit: these goldens were captured from the single-module
   machine and every counter in Stats.to_json — cycles included — plus
   the architectural digests must match exactly.

   Regenerating (only after an *intentional* timing-model change):

     BV_GOLDEN_DIR=test/goldens dune exec test/test_goldens.exe

   from the repository root rewrites the files in place. *)

open Bv_bpred
open Bv_ir
open Bv_pipeline
open Bv_workloads

let baseline_of program =
  let p = Program.copy program in
  Bv_sched.Sched.schedule_program p;
  p

(* Branchy integer kernel: eligible + biased + hard sites, deep condition
   slices. Exercises branches, calls/returns and wrong-path squashes. *)
let spec_int =
  Spec.make ~name:"golden-int" ~suite:Spec.Int_2006 ~seed:7001
    ~branch_classes:
      [ Spec.cls ~count:6 ~taken_rate:0.60 ~predictability:0.95 ();
        Spec.cls ~iid:true ~count:4 ~taken_rate:0.92 ~predictability:0.92 ();
        Spec.cls ~iid:true ~count:2 ~taken_rate:0.50 ~predictability:0.50 ()
      ]
    ~loads_per_block:3.0 ~cond_depth:4 ~inner_n:128 ~reps:10 ()

(* Memory-bound kernel: big footprint, pointer chases into the condition.
   Exercises cache misses, MSHR pressure and (case 3) runahead prefetch. *)
let spec_mem =
  Spec.make ~name:"golden-mem" ~suite:Spec.Fp_2006 ~seed:7002
    ~branch_classes:[ Spec.cls ~count:4 ~taken_rate:0.58 ~predictability:0.96 () ]
    ~loads_per_block:4.0 ~footprint_kb:128 ~chase_frac:0.2 ~cond_chase:true
    ~inner_n:64 ~reps:3 ()

let plain_image spec = Layout.program (baseline_of (Gen.generate ~input:1 spec))

(* The decomposed-branch build of [spec_int]: full profile → select →
   transform pipeline, so predicts, resolves and the DBB are all live. *)
let decomposed_image spec =
  let program = Gen.generate ~input:1 spec in
  let train = Gen.generate ~input:0 spec in
  let profile =
    Bv_profile.Profile.collect
      ~predictor:(Kind.create Kind.Tournament)
      (Layout.program (baseline_of train))
  in
  let selection = Vanguard.Select.select ~profile train in
  let result =
    Vanguard.Transform.apply ~exit_live:Gen.live_at_exit
      ~candidates:selection.Vanguard.Select.candidates program
  in
  Layout.program result.Vanguard.Transform.program

let cases =
  [ ("plain_w4", Config.four_wide, lazy (plain_image spec_int));
    ("decomposed_w4", Config.four_wide, lazy (decomposed_image spec_int));
    ( "runahead_w8",
      { (Config.make ~predictor:Kind.Tage ~width:8 ()) with
        Config.runahead = true
      },
      lazy (plain_image spec_mem) );
    (* Decomposed + runahead combined: predicts/resolves, the DBB and the
       runahead prefetcher all live in one run — the configuration most
       sensitive to structural-resource accounting. *)
    ( "decomposed_runahead_w8",
      { (Config.make ~predictor:Kind.Tage ~width:8 ()) with
        Config.runahead = true
      },
      lazy (decomposed_image spec_mem) )
  ]

let capture ?compile (config : Config.t) image =
  let res = Machine.run ?compile ~config image in
  let open Bv_obs.Json in
  to_string ~indent:true
    (Obj
       [ ("config", String (Config.name config));
         ("finished", Bool res.Machine.finished);
         ("arch_digest", Int res.Machine.arch_digest);
         ("mem_digest", Int res.Machine.mem_digest);
         ("stores_retired", Int res.Machine.stores_retired);
         ("stats", Stats.to_json res.Machine.stats)
       ])
  ^ "\n"

let golden_path name = Filename.concat "goldens" (name ^ ".json")

let test_case (name, config, image) () =
  let image = Lazy.force image in
  let got = capture ~compile:true config image in
  (* Block-compiled dispatch must be indistinguishable from the
     interpreted front end in every counter and digest. *)
  let interp = capture ~compile:false config image in
  Alcotest.(check string) (name ^ " compiled = interpreted") interp got;
  match Sys.getenv_opt "BV_GOLDEN_DIR" with
  | Some dir ->
    let path = Filename.concat dir (name ^ ".json") in
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc got);
    Printf.printf "wrote %s\n%!" path
  | None ->
    let want =
      In_channel.with_open_text (golden_path name) In_channel.input_all
    in
    Alcotest.(check string) (name ^ " stats bit-for-bit") want got

let () =
  Alcotest.run "bv_goldens"
    [ ( "cycle-equivalence",
        List.map
          (fun ((name, _, _) as case) ->
            Alcotest.test_case name `Quick (test_case case))
          cases )
    ]
