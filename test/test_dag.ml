(* The memoized experiment DAG: key derivation, invalidation cones,
   crash-resume, cross-process cooperation on one store, gc and explain.
   Tier-1 semantics for the engine under every run path. *)

open Bv_harness

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bv-dag-test.%d.%d" (Unix.getpid ()) !tmp_counter)
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ---- keys and counters ------------------------------------------------ *)

let counters_of_json j =
  let open Bv_obs.Json in
  let geti k = match member k j with Some (Int i) -> i | _ -> -1 in
  (geti "hits", geti "misses", geti "stolen", geti "nodes")

let test_hit_miss_counters () =
  with_dir (fun dir ->
      let computes = ref 0 in
      let n =
        Dag.node ~kind:"t" ~inputs:(1, "x") (fun () -> incr computes; 41 + 1)
      in
      let d1 = Dag.create ~dir () in
      Alcotest.(check int) "first eval computes" 42 (Dag.eval d1 n);
      Alcotest.(check int) "second eval memo-hits" 42 (Dag.eval d1 n);
      Alcotest.(check int) "computed once" 1 !computes;
      let c = Dag.counters d1 in
      Alcotest.(check int) "miss counted" 1 c.Dag.misses;
      Alcotest.(check int) "hit counted" 1 c.Dag.hits;
      (* a fresh engine on the same store hits the disk, not the compute *)
      let d2 = Dag.create ~dir () in
      Alcotest.(check int) "store hit" 42 (Dag.eval d2 n);
      Alcotest.(check int) "no recompute" 1 !computes;
      let c2 = Dag.counters d2 in
      Alcotest.(check int) "store hit counted" 1 c2.Dag.hits;
      Alcotest.(check int) "no miss" 0 c2.Dag.misses;
      let h, m, s, nodes = counters_of_json (Dag.counters_json d2) in
      Alcotest.(check (list int)) "counters_json" [ 1; 0; 0; 1 ]
        [ h; m; s; nodes ])

let test_key_sensitivity () =
  let d = Dag.create () in
  let mk ?deps inputs = Dag.node ~kind:"k" ?deps ~inputs (fun () -> 0) in
  let a1 = mk 1 and a2 = mk 2 in
  Alcotest.(check bool) "inputs change the key" false
    (Dag.key d a1 = Dag.key d a2);
  let b1 = mk ~deps:[ Dag.key d a1 ] 9 in
  let b2 = mk ~deps:[ Dag.key d a2 ] 9 in
  Alcotest.(check bool) "dep keys chain" false (Dag.key d b1 = Dag.key d b2);
  let fmt = Dag.create ~format:(Dag.code_format + 1) () in
  Alcotest.(check bool) "format stamp mixes in" false
    (Dag.key d a1 = Dag.key fmt a1)

(* Changing one upstream input recomputes exactly its downstream cone;
   unrelated nodes keep their cached values. *)
let test_invalidation_cone () =
  with_dir (fun dir ->
      let computes = ref [] in
      let mark tag v =
        computes := tag :: !computes;
        v
      in
      let graph d x =
        let a =
          Dag.node ~kind:"a" ~inputs:x (fun () -> mark "a" (x * 10))
        in
        let ka = Dag.key d a in
        let b =
          Dag.node ~kind:"b" ~deps:[ ka ] ~inputs:"fold" (fun () ->
              mark "b" (Dag.eval d a + 1))
        in
        let u =
          Dag.node ~kind:"u" ~inputs:"constant" (fun () -> mark "u" 7)
        in
        (Dag.eval d b, Dag.eval d u)
      in
      let d1 = Dag.create ~dir () in
      Alcotest.(check (pair int int)) "cold graph" (11, 7) (graph d1 1);
      Alcotest.(check (list string)) "cold computes all"
        [ "u"; "a"; "b" ] (List.rev !computes);
      computes := [];
      let d2 = Dag.create ~dir () in
      Alcotest.(check (pair int int)) "changed input" (21, 7) (graph d2 2);
      Alcotest.(check (list string)) "only the cone recomputes"
        [ "a"; "b" ] (List.rev !computes))

(* ---- crash-resume ----------------------------------------------------- *)

let test_crash_resume () =
  with_dir (fun dir ->
      let computes = ref 0 in
      let nodes () =
        List.init 8 (fun i ->
            Dag.node ~kind:"step"
              ~label:(string_of_int i)
              ~inputs:i
              (fun () -> incr computes; i * i))
      in
      (* a sweep that dies after landing 5 of 8 nodes *)
      let d1 = Dag.create ~dir () in
      List.iteri
        (fun i n -> if i < 5 then ignore (Dag.eval d1 n : int))
        (nodes ());
      Alcotest.(check int) "partial sweep" 5 !computes;
      (* the resumed sweep recomputes only the missing tail *)
      let d2 = Dag.create ~dir () in
      let vs = Dag.eval_list d2 (nodes ()) in
      Alcotest.(check (list int)) "values in order"
        [ 0; 1; 4; 9; 16; 25; 36; 49 ] vs;
      Alcotest.(check int) "zero clean nodes recomputed" 8 !computes;
      let c = Dag.counters d2 in
      Alcotest.(check int) "5 store hits" 5 c.Dag.hits;
      Alcotest.(check int) "3 misses" 3 c.Dag.misses)

(* ---- determinism ------------------------------------------------------ *)

let test_jobs_deterministic () =
  let nodes () =
    List.init 17 (fun i ->
        Dag.node ~kind:"det" ~inputs:i (fun () ->
            Printf.sprintf "v%d" (i * 3)))
  in
  with_dir (fun dir1 ->
      with_dir (fun dir2 ->
          let serial = Dag.eval_list ~jobs:1 (Dag.create ~dir:dir1 ()) (nodes ()) in
          let parallel =
            Dag.eval_list ~jobs:4 (Dag.create ~dir:dir2 ()) (nodes ())
          in
          Alcotest.(check (list string)) "jobs:4 == jobs:1" serial parallel));
  (* no store: strided fork/join, still order-preserving *)
  let bare = Dag.eval_list ~jobs:3 (Dag.create ()) (nodes ()) in
  Alcotest.(check (list string)) "uncached jobs:3 == jobs:1"
    (List.init 17 (fun i -> Printf.sprintf "v%d" (i * 3)))
    bare

(* ---- cross-process cooperation --------------------------------------- *)

let append_mark path line =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  let s = line ^ "\n" in
  ignore (Unix.write_substring fd s 0 (String.length s) : int);
  Unix.close fd

let count_marks path =
  if not (Sys.file_exists path) then 0
  else
    In_channel.with_open_text path (fun ic ->
        List.length (In_channel.input_lines ic))

(* Two independent processes sweep the same 8 nodes against one store:
   the claim files must arbitrate so each node is computed exactly once
   between them, and both come back with the full result list. *)
let test_two_processes_one_store () =
  with_dir (fun dir ->
      let marks = Filename.concat dir "computes.marks" in
      let nodes () =
        List.init 8 (fun i ->
            Dag.node ~kind:"shared" ~inputs:i (fun () ->
                append_mark marks (string_of_int i);
                (* widen the overlap window so both processes race *)
                Unix.sleepf 0.02;
                i + 100))
      in
      let child () =
        match Unix.fork () with
        | 0 ->
          let ok =
            try
              let d = Dag.create ~dir () in
              Dag.eval_list ~jobs:1 d (nodes ())
              = List.init 8 (fun i -> i + 100)
            with _ -> false
          in
          Unix._exit (if ok then 0 else 1)
        | pid -> pid
      in
      let p1 = child () in
      let p2 = child () in
      let status pid =
        match Unix.waitpid [] pid with
        | _, Unix.WEXITED c -> c
        | _ -> 255
      in
      Alcotest.(check int) "first process succeeds" 0 (status p1);
      Alcotest.(check int) "second process succeeds" 0 (status p2);
      Alcotest.(check int) "each node computed exactly once" 8
        (count_marks marks))

(* ---- worker failure --------------------------------------------------- *)

let test_worker_failure () =
  match
    Pool.map ~jobs:2
      (fun i -> if i = 7 then failwith "boom 7" else i)
      (List.init 10 Fun.id)
  with
  | _ -> Alcotest.fail "expected Worker_failure"
  | exception Pool.Worker_failure { index; message; backtrace = _ } ->
    Alcotest.(check int) "failing index carried" 7 index;
    Alcotest.(check bool) "child exception text carried" true
      (let needle = "boom 7" in
       let rec has i =
         i + String.length needle <= String.length message
         && (String.sub message i (String.length needle) = needle || has (i + 1))
       in
       has 0)

let test_worker_failure_lowest_index () =
  match
    Pool.map ~jobs:3
      (fun i -> if i = 3 || i = 7 then failwith "bang" else i)
      (List.init 10 Fun.id)
  with
  | _ -> Alcotest.fail "expected Worker_failure"
  | exception Pool.Worker_failure { index; _ } ->
    Alcotest.(check int) "lowest failing index wins" 3 index

(* ---- gc and explain --------------------------------------------------- *)

let test_gc () =
  with_dir (fun dir ->
      let d = Dag.create ~dir () in
      let nodes =
        List.init 4 (fun i ->
            Dag.node ~kind:"gc" ~label:(Printf.sprintf "n%d" i) ~inputs:i
              (fun () -> String.make 64 'x'))
      in
      List.iter (fun n -> ignore (Dag.eval d n : string)) nodes;
      Alcotest.(check int) "4 entries" 4 (List.length (Dag.entries dir));
      (* age two of them far past any plausible max_age *)
      let old = Unix.time () -. 10_000.0 in
      List.iteri
        (fun i n ->
          if i < 2 then
            Unix.utimes (Filename.concat dir (Dag.key d n ^ ".node")) old old)
        nodes;
      let dry = Dag.gc ~max_age:100.0 ~dry_run:true dir in
      Alcotest.(check int) "dry run sees the old pair" 2
        (List.length dry.Dag.gcr_removed);
      Alcotest.(check bool) "dry run flagged" true dry.Dag.gcr_dry_run;
      Alcotest.(check int) "dry run touches nothing" 4
        (List.length (Dag.entries dir));
      let live = Dag.gc ~max_age:100.0 ~dry_run:false dir in
      Alcotest.(check int) "gc removes the old pair" 2
        (List.length live.Dag.gcr_removed);
      Alcotest.(check int) "2 entries survive" 2
        (List.length (Dag.entries dir));
      let all = Dag.gc ~max_bytes:0 ~dry_run:false dir in
      Alcotest.(check int) "size bound evicts the rest" 2
        (List.length all.Dag.gcr_removed);
      Alcotest.(check int) "store emptied" 0 (List.length (Dag.entries dir)))

let test_explain () =
  with_dir (fun dir ->
      let d = Dag.create ~dir () in
      let n =
        Dag.node ~kind:"probe" ~label:"the-probe" ~inputs:(3, "z") (fun () ->
            true)
      in
      ignore (Dag.eval d n : bool);
      ignore (Dag.eval (Dag.create ~dir ()) n : bool);
      let key = Dag.key d n in
      (match Dag.explain dir (String.sub key 0 10) with
      | Error e -> Alcotest.fail ("explain: " ^ e)
      | Ok x ->
        Alcotest.(check string) "full key resolved" key x.Dag.x_key;
        Alcotest.(check string) "kind" "probe" x.Dag.x_kind;
        Alcotest.(check string) "label" "the-probe" x.Dag.x_label;
        Alcotest.(check int) "format stamp" Dag.code_format x.Dag.x_format;
        Alcotest.(check bool) "provenance recorded" true
          (x.Dag.x_events <> []));
      (match Dag.explain dir "no-such-key" with
      | Ok _ -> Alcotest.fail "unknown prefix must not resolve"
      | Error _ -> ());
      let m =
        Dag.node ~kind:"probe" ~label:"other" ~inputs:(4, "z") (fun () ->
            false)
      in
      ignore (Dag.eval d m : bool);
      match Dag.explain dir "" with
      | Ok _ -> Alcotest.fail "ambiguous prefix must not resolve"
      | Error e ->
        Alcotest.(check bool) "ambiguity reported" true
          (String.length e > 0))

let () =
  Alcotest.run "dag"
    [ ( "engine",
        [ Alcotest.test_case "hit-miss-counters" `Quick test_hit_miss_counters;
          Alcotest.test_case "key-sensitivity" `Quick test_key_sensitivity;
          Alcotest.test_case "invalidation-cone" `Quick test_invalidation_cone;
          Alcotest.test_case "crash-resume" `Quick test_crash_resume;
          Alcotest.test_case "jobs-deterministic" `Quick
            test_jobs_deterministic
        ] );
      ( "cooperation",
        [ Alcotest.test_case "two-processes-one-store" `Quick
            test_two_processes_one_store
        ] );
      ( "pool",
        [ Alcotest.test_case "worker-failure-payload" `Quick
            test_worker_failure;
          Alcotest.test_case "worker-failure-lowest-index" `Quick
            test_worker_failure_lowest_index
        ] );
      ( "store",
        [ Alcotest.test_case "gc" `Quick test_gc;
          Alcotest.test_case "explain" `Quick test_explain
        ] )
    ]
