open Bv_isa
open Bv_ir
open Bv_pipeline

let r = Reg.make
let movi d v = Instr.Mov { dst = r d; src = Instr.Imm v }
let addi d a v = Instr.Alu { op = Instr.Add; dst = r d; src1 = r a; src2 = Instr.Imm v }
let block ?(body = []) label term = Block.make ~label ~body ~term

let image ?segments ?mem_words procs =
  Layout.program (Program.make ?segments ?mem_words ~main:"m" procs)

let run ?(config = Config.four_wide) ?max_cycles img =
  Machine.run ?max_cycles ~config img

(* ------------------------------------------------------------------ DBB *)

let alloc d pc = Dbb.allocate d ~pc ~meta:[| pc |] ~taken:true

let test_dbb_alloc_claim_free () =
  let d = Dbb.create ~entries:2 in
  Alcotest.(check int) "capacity" 2 (Dbb.capacity d);
  let s0 = alloc d 10 in
  let s1 = alloc d 20 in
  Alcotest.(check bool) "full" true (Dbb.is_full d);
  Alcotest.(check int) "full alloc fails" (-1) (alloc d 30);
  (* claim order: newest first *)
  let c1 = Dbb.claim_newest d in
  Alcotest.(check int) "newest" 20 (Dbb.slot_pc d c1);
  Alcotest.(check int) "slot" s1 c1;
  let c0 = Dbb.claim_newest d in
  Alcotest.(check int) "then older" 10 (Dbb.slot_pc d c0);
  Alcotest.(check int) "slot" s0 c0;
  Alcotest.(check bool) "claimed direction" true (Dbb.slot_taken d c0);
  Alcotest.(check int) "all claimed" (-1) (Dbb.claim_newest d);
  Dbb.free d c1;
  Dbb.free d c1;
  (* idempotent *)
  Alcotest.(check int) "occupancy" 1 (Dbb.occupancy d)

let test_dbb_snapshot_no_resurrection () =
  let d = Dbb.create ~entries:4 in
  let s0 = alloc d 10 in
  let snap = Dbb.snapshot d in
  (* an older resolve frees the entry after the snapshot was taken *)
  Dbb.free d s0;
  (* a wrong-path predict allocates something new *)
  ignore (alloc d 99);
  Dbb.restore d snap;
  (* the freed entry must NOT come back, and the wrong-path one is gone *)
  Alcotest.(check int) "empty after restore" 0 (Dbb.occupancy d);
  Alcotest.(check int) "nothing to claim" (-1) (Dbb.claim_newest d)

let test_dbb_snapshot_claim_revert () =
  let d = Dbb.create ~entries:4 in
  ignore (alloc d 10);
  let snap = Dbb.snapshot d in
  ignore (Dbb.claim_newest d);
  (* wrong-path claim *)
  Dbb.restore d snap;
  Alcotest.(check bool) "claim reverted" true (Dbb.claim_newest d >= 0)

(* --------------------------------------------------------------- config *)

let test_config () =
  Alcotest.(check int) "two wide" 2 Config.two_wide.Config.width;
  Alcotest.(check int) "fetch buffer" 32 Config.four_wide.Config.fetch_buffer;
  Alcotest.(check int) "dbb" 16 Config.eight_wide.Config.dbb_entries;
  (match Config.make ~width:3 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "width 3 must be rejected");
  let s = Format.asprintf "%a" Config.pp Config.four_wide in
  Alcotest.(check bool) "table prints" true (String.length s > 100)

(* -------------------------------------------------------------- machine *)

let straight_line body = image [ Proc.make ~name:"m" [ block ~body "e" Term.Halt ] ]

let test_dependent_chain_latency () =
  (* N dependent adds cannot run faster than one per cycle *)
  let n = 50 in
  let body = movi 1 0 :: List.init n (fun _ -> addi 1 1 1) in
  let res = run (straight_line body) in
  Alcotest.(check bool) "finished" true res.Machine.finished;
  Alcotest.(check bool)
    (Printf.sprintf "chain >= n cycles (%d)" res.Machine.stats.Stats.cycles)
    true
    (res.Machine.stats.Stats.cycles >= n)

let test_width_parallelism () =
  (* a hot loop of independent work sustains multi-issue once the I$ is
     warm; the 4-wide beats the 2-wide *)
  let loop n =
    image
      [ Proc.make ~name:"m"
          [ block ~body:[ movi 1 0 ] "e" (Term.Jump "loop");
            block
              ~body:
                [ movi 2 2; movi 3 3; movi 4 4; movi 7 7; movi 8 8;
                  addi 1 1 1;
                  Instr.Cmp { op = Instr.Lt; dst = r 5; src1 = r 1;
                              src2 = Instr.Imm n }
                ]
              "loop"
              (Term.Branch
                 { on = true; src = r 5; taken = "loop"; not_taken = "out";
                   id = 1 });
            block "out" Term.Halt
          ]
      ]
  in
  let res4 = run (loop 500) in
  let res2 = run ~config:Config.two_wide (loop 500) in
  let ipc = Stats.ipc res4.Machine.stats in
  Alcotest.(check bool) (Printf.sprintf "ipc %.2f > 1.4" ipc) true (ipc > 1.4);
  Alcotest.(check bool) "4-wide beats 2-wide" true
    (res4.Machine.stats.Stats.cycles < res2.Machine.stats.Stats.cycles)

let test_digest_matches_interpreter () =
  let n = 300 in
  let stream = Array.init n (fun i -> (i * 13 / 5) mod 3) in
  let prog =
    Program.make ~main:"m" ~mem_words:1024
      ~segments:[ { Program.base = 0; contents = stream } ]
      [ Proc.make ~name:"m"
          [ block ~body:[ movi 1 0; movi 6 0 ] "e" (Term.Jump "loop");
            block
              ~body:
                [ Instr.Alu { op = Instr.Shl; dst = r 2; src1 = r 1; src2 = Instr.Imm 3 };
                  Instr.Load { dst = r 4; base = r 2; offset = 0; speculative = false };
                  Instr.Cmp { op = Instr.Ne; dst = r 5; src1 = r 4; src2 = Instr.Imm 0 }
                ]
              "loop"
              (Term.Branch
                 { on = true; src = r 5; taken = "t"; not_taken = "nt"; id = 1 });
            block ~body:[ addi 6 6 1 ] "nt" (Term.Jump "latch");
            block ~body:[ addi 6 6 100; Instr.Store { src = r 6; base = r 2; offset = 4096 } ]
              "t" (Term.Jump "latch");
            block
              ~body:
                [ addi 1 1 1;
                  Instr.Cmp { op = Instr.Lt; dst = r 5; src1 = r 1; src2 = Instr.Imm n }
                ]
              "latch"
              (Term.Branch
                 { on = true; src = r 5; taken = "loop"; not_taken = "out"; id = 2 });
            block ~body:[ Instr.Store { src = r 6; base = r 0; offset = 8000 } ]
              "out" Term.Halt
          ]
      ]
  in
  let img = Layout.program prog in
  let want = Bv_exec.Interp.arch_digest (Bv_exec.Interp.run img) in
  List.iter
    (fun config ->
      let res = run ~config img in
      Alcotest.(check bool) "finished" true res.Machine.finished;
      Alcotest.(check int)
        (Printf.sprintf "digest %s" (Config.name config))
        want res.Machine.arch_digest)
    [ Config.two_wide; Config.four_wide; Config.eight_wide ]

let test_wrong_path_stores_undone () =
  (* an unpredictable branch guards a store; wrong-path execution must not
     leave stray memory writes *)
  let n = 200 in
  let stream = Array.init n (fun i -> (i * 29) mod 7 / 3) in
  let prog =
    Program.make ~main:"m" ~mem_words:2048
      ~segments:[ { Program.base = 0; contents = stream } ]
      [ Proc.make ~name:"m"
          [ block ~body:[ movi 1 0; movi 6 0 ] "e" (Term.Jump "loop");
            block
              ~body:
                [ Instr.Alu { op = Instr.Shl; dst = r 2; src1 = r 1; src2 = Instr.Imm 3 };
                  Instr.Load { dst = r 4; base = r 2; offset = 0; speculative = false };
                  Instr.Cmp { op = Instr.Ne; dst = r 5; src1 = r 4; src2 = Instr.Imm 0 }
                ]
              "loop"
              (Term.Branch
                 { on = true; src = r 5; taken = "t"; not_taken = "nt"; id = 1 });
            block ~body:[ Instr.Store { src = r 1; base = r 2; offset = 8192 } ]
              "nt" (Term.Jump "latch");
            block ~body:[ addi 6 6 1 ] "t" (Term.Jump "latch");
            block
              ~body:
                [ addi 1 1 1;
                  Instr.Cmp { op = Instr.Lt; dst = r 5; src1 = r 1; src2 = Instr.Imm n }
                ]
              "latch"
              (Term.Branch
                 { on = true; src = r 5; taken = "loop"; not_taken = "out"; id = 2 });
            block "out" Term.Halt
          ]
      ]
  in
  let img = Layout.program prog in
  let want = Bv_exec.Interp.arch_digest (Bv_exec.Interp.run img) in
  let res = run img in
  Alcotest.(check int) "memory clean after squashes" want
    res.Machine.arch_digest;
  Alcotest.(check bool) "there were mispredicts" true
    (res.Machine.stats.Stats.branch_mispredicts > 0);
  Alcotest.(check bool) "wrong-path issue happened" true
    (res.Machine.stats.Stats.squashed_fetched > 0)

let test_mispredict_costs_cycles () =
  (* same instruction count, random vs constant condition *)
  let mk stream_vals =
    let n = Array.length stream_vals in
    image ~mem_words:512
      ~segments:[ { Program.base = 0; contents = stream_vals } ]
      [ Proc.make ~name:"m"
          [ block ~body:[ movi 1 0; movi 6 0 ] "e" (Term.Jump "loop");
            block
              ~body:
                [ Instr.Alu { op = Instr.Shl; dst = r 2; src1 = r 1; src2 = Instr.Imm 3 };
                  Instr.Load { dst = r 4; base = r 2; offset = 0; speculative = false };
                  Instr.Cmp { op = Instr.Ne; dst = r 5; src1 = r 4; src2 = Instr.Imm 0 }
                ]
              "loop"
              (Term.Branch
                 { on = true; src = r 5; taken = "t"; not_taken = "nt"; id = 1 });
            block ~body:[ addi 6 6 1 ] "nt" (Term.Jump "latch");
            block ~body:[ addi 6 6 2 ] "t" (Term.Jump "latch");
            block
              ~body:
                [ addi 1 1 1;
                  Instr.Cmp { op = Instr.Lt; dst = r 5; src1 = r 1; src2 = Instr.Imm n }
                ]
              "latch"
              (Term.Branch
                 { on = true; src = r 5; taken = "loop"; not_taken = "out"; id = 2 });
            block "out" Term.Halt
          ]
      ]
  in
  let n = 400 in
  let rng = Bv_workloads.Rng.create ~seed:7 in
  let random = mk (Array.init n (fun _ -> Bv_workloads.Rng.below rng 2)) in
  let constant = mk (Array.make n 1) in
  let cr = run random and cc = run constant in
  Alcotest.(check bool) "random stream mispredicts more" true
    (cr.Machine.stats.Stats.branch_mispredicts
    > cc.Machine.stats.Stats.branch_mispredicts + 50);
  Alcotest.(check bool) "and costs cycles" true
    (cr.Machine.stats.Stats.cycles > cc.Machine.stats.Stats.cycles)

let test_max_cycles_cap () =
  let img = image [ Proc.make ~name:"m" [ block "e" (Term.Jump "e") ] ] in
  let res = run ~max_cycles:500 img in
  Alcotest.(check bool) "not finished" false res.Machine.finished;
  Alcotest.(check int) "capped" 500 res.Machine.stats.Stats.cycles

let test_ret_depth_beyond_ras () =
  (* deep call chain exceeding the RAS still executes correctly *)
  let depth = 12 in
  let procs =
    List.init depth (fun i ->
        let name = Printf.sprintf "f%d" i in
        if i = depth - 1 then
          Proc.make ~name [ block ~body:[ movi 6 99 ] (name ^ ".e") Term.Ret ]
        else
          Proc.make ~name
            [ block (name ^ ".e")
                (Term.Call
                   { target = Printf.sprintf "f%d" (i + 1);
                     return_to = name ^ ".r"
                   });
              block ~body:[ addi 6 6 1 ] (name ^ ".r") Term.Ret
            ])
  in
  let main =
    Proc.make ~name:"m"
      [ block "e" (Term.Call { target = "f0"; return_to = "done" });
        block ~body:[ Instr.Store { src = r 6; base = r 0; offset = 0 } ]
          "done" Term.Halt
      ]
  in
  let config =
    { Config.four_wide with Config.ras_entries = 4 }
  in
  let img = image ~mem_words:4 (main :: procs) in
  let want = Bv_exec.Interp.arch_digest (Bv_exec.Interp.run img) in
  let res = run ~config img in
  Alcotest.(check bool) "finished" true res.Machine.finished;
  Alcotest.(check int) "digest" want res.Machine.arch_digest

let test_decomposed_machine_path () =
  (* run a transformed program: resolves execute, DBB cycles, digest holds *)
  let n = 200 in
  let stream = Array.init n (fun i -> if i mod 3 = 0 then 1 else 0) in
  let prog =
    Program.make ~main:"m" ~mem_words:256
      ~segments:[ { Program.base = 0; contents = stream } ]
      [ Proc.make ~name:"m"
          [ block ~body:[ movi 1 0; movi 6 0 ] "entry" (Term.Jump "head");
            block
              ~body:
                [ Instr.Alu { op = Instr.Shl; dst = r 2; src1 = r 1; src2 = Instr.Imm 3 };
                  Instr.Load { dst = r 4; base = r 2; offset = 0; speculative = false };
                  Instr.Cmp { op = Instr.Ne; dst = r 5; src1 = r 4; src2 = Instr.Imm 0 }
                ]
              "head"
              (Term.Branch
                 { on = true; src = r 5; taken = "c"; not_taken = "b"; id = 1 });
            block
              ~body:[ Instr.Load { dst = r 10; base = r 2; offset = 8; speculative = false };
                      addi 6 6 1 ]
              "b" (Term.Jump "latch");
            block ~body:[ addi 6 6 2 ] "c" (Term.Jump "latch");
            block
              ~body:
                [ addi 1 1 1;
                  Instr.Cmp { op = Instr.Lt; dst = r 5; src1 = r 1; src2 = Instr.Imm n }
                ]
              "latch"
              (Term.Branch
                 { on = true; src = r 5; taken = "head"; not_taken = "out"; id = 2 });
            block ~body:[ Instr.Store { src = r 6; base = r 0; offset = 1920 } ]
              "out" Term.Halt
          ]
      ]
  in
  let candidates =
    [ { Vanguard.Select.proc = "m"; block = "head"; site = 1; bias = 0.6;
        predictability = 0.95; executed = n }
    ]
  in
  let result = Vanguard.Transform.apply ~candidates prog in
  let img = Layout.program result.Vanguard.Transform.program in
  let want = Bv_exec.Interp.arch_digest (Bv_exec.Interp.run img) in
  let res = run img in
  Alcotest.(check bool) "finished" true res.Machine.finished;
  Alcotest.(check int) "digest" want res.Machine.arch_digest;
  Alcotest.(check int) "every predict resolved" n
    res.Machine.stats.Stats.resolve_execs;
  Alcotest.(check bool) "predicts fetched covers every iteration" true
    (res.Machine.stats.Stats.predicts_fetched >= n);
  Alcotest.(check bool) "dbb occupied" true
    (res.Machine.stats.Stats.dbb_max_occupancy >= 1)

let test_tiny_dbb_backpressure () =
  (* dbb_entries = 1 must still complete, with full-stalls counted *)
  let n = 120 in
  let stream = Array.init n (fun i -> i land 1) in
  let prog =
    Program.make ~main:"m" ~mem_words:128
      ~segments:[ { Program.base = 0; contents = stream } ]
      [ Proc.make ~name:"m"
          [ block ~body:[ movi 1 0; movi 6 0 ] "entry" (Term.Jump "head");
            block
              ~body:
                [ Instr.Alu { op = Instr.Shl; dst = r 2; src1 = r 1; src2 = Instr.Imm 3 };
                  Instr.Load { dst = r 4; base = r 2; offset = 0; speculative = false };
                  Instr.Cmp { op = Instr.Ne; dst = r 5; src1 = r 4; src2 = Instr.Imm 0 }
                ]
              "head"
              (Term.Branch
                 { on = true; src = r 5; taken = "c"; not_taken = "b"; id = 1 });
            block ~body:[ addi 6 6 1 ] "b" (Term.Jump "latch");
            block ~body:[ addi 6 6 2 ] "c" (Term.Jump "latch");
            block
              ~body:
                [ addi 1 1 1;
                  Instr.Cmp { op = Instr.Lt; dst = r 5; src1 = r 1; src2 = Instr.Imm n }
                ]
              "latch"
              (Term.Branch
                 { on = true; src = r 5; taken = "head"; not_taken = "out"; id = 2 });
            block "out" Term.Halt
          ]
      ]
  in
  let candidates =
    [ { Vanguard.Select.proc = "m"; block = "head"; site = 1; bias = 0.5;
        predictability = 0.99; executed = n }
    ]
  in
  let result = Vanguard.Transform.apply ~candidates prog in
  let img = Layout.program result.Vanguard.Transform.program in
  let want = Bv_exec.Interp.arch_digest (Bv_exec.Interp.run img) in
  let config = { Config.four_wide with Config.dbb_entries = 1 } in
  let res = run ~config img in
  Alcotest.(check bool) "finished" true res.Machine.finished;
  Alcotest.(check int) "digest" want res.Machine.arch_digest;
  Alcotest.(check int) "max occupancy bounded" 1
    res.Machine.stats.Stats.dbb_max_occupancy

let test_trace_rows () =
  let n = 40 in
  let stream = Array.init n (fun i -> i land 1) in
  let img =
    image ~mem_words:64
      ~segments:[ { Program.base = 0; contents = stream } ]
      [ Proc.make ~name:"m"
          [ block ~body:[ movi 1 0; movi 6 0 ] "e" (Term.Jump "loop");
            block
              ~body:
                [ Instr.Alu { op = Instr.Shl; dst = r 2; src1 = r 1; src2 = Instr.Imm 3 };
                  Instr.Load { dst = r 4; base = r 2; offset = 0; speculative = false };
                  Instr.Cmp { op = Instr.Ne; dst = r 5; src1 = r 4; src2 = Instr.Imm 0 }
                ]
              "loop"
              (Term.Branch { on = true; src = r 5; taken = "t"; not_taken = "nt"; id = 1 });
            block ~body:[ addi 6 6 1 ] "nt" (Term.Jump "latch");
            block ~body:[ addi 6 6 2 ] "t" (Term.Jump "latch");
            block
              ~body:
                [ addi 1 1 1;
                  Instr.Cmp { op = Instr.Lt; dst = r 5; src1 = r 1; src2 = Instr.Imm n }
                ]
              "latch"
              (Term.Branch { on = true; src = r 5; taken = "loop"; not_taken = "out"; id = 2 });
            block "out" Term.Halt
          ]
      ]
  in
  let rows, result = Trace.collect ~max_rows:120 ~config:Config.four_wide img in
  Alcotest.(check bool) "finished" true result.Machine.finished;
  Alcotest.(check int) "rows capped" 120 (List.length rows);
  List.iter
    (fun row ->
      (match row.Trace.issue with
      | Some i ->
        Alcotest.(check bool) "fetch+front <= issue" true
          (row.Trace.fetch + Config.four_wide.Config.front_stages <= i);
        (match row.Trace.complete with
        | Some c -> Alcotest.(check bool) "issue < complete" true (i < c)
        | None -> ())
      | None ->
        (* never issued: must have been squashed *)
        Alcotest.(check bool) "unissued implies squashed" true
          row.Trace.squashed))
    rows;
  (* seqs are dense and increasing *)
  let seqs = List.map (fun row -> row.Trace.seq) rows in
  Alcotest.(check (list int)) "dense seq" (List.init 120 Fun.id) seqs;
  (* the alternating branch mispredicts during warmup: some squashes *)
  Alcotest.(check bool) "some squashed rows" true
    (List.exists (fun row -> row.Trace.squashed) rows);
  (* rendering smoke *)
  let text = Format.asprintf "%a" Trace.pp rows in
  Alcotest.(check bool) "renders" true (String.length text > 1000)

let test_site_wait_measured () =
  (* a branch fed by a fresh load waits ~load latency at issue *)
  let n = 64 in
  let stream = Array.make n 1 in
  let img =
    image ~mem_words:128
      ~segments:[ { Program.base = 0; contents = stream } ]
      [ Proc.make ~name:"m"
          [ block ~body:[ movi 1 0 ] "e" (Term.Jump "loop");
            block
              ~body:
                [ Instr.Alu { op = Instr.Shl; dst = r 2; src1 = r 1; src2 = Instr.Imm 3 };
                  Instr.Load { dst = r 4; base = r 2; offset = 0; speculative = false };
                  Instr.Cmp { op = Instr.Ne; dst = r 5; src1 = r 4; src2 = Instr.Imm 0 };
                  addi 1 1 1;
                  Instr.Cmp { op = Instr.Lt; dst = r 6; src1 = r 1; src2 = Instr.Imm n };
                  Instr.Alu { op = Instr.And; dst = r 5; src1 = r 5; src2 = Instr.Reg (r 6) }
                ]
              "loop"
              (Term.Branch { on = true; src = r 5; taken = "loop"; not_taken = "out"; id = 11 });
            block "out" Term.Halt
          ]
      ]
  in
  let res = run img in
  let w = Stats.site_wait_avg res.Machine.stats 11 in
  Alcotest.(check bool) (Printf.sprintf "backlog %.1f positive, bounded" w)
    true
    (w >= 1.0 && w <= 500.0);
  Alcotest.(check (float 0.001)) "unknown site" 0.0
    (Stats.site_wait_avg res.Machine.stats 999)

let test_stats_accounting () =
  let res = run (straight_line [ movi 1 1; movi 2 2 ]) in
  let s = res.Machine.stats in
  Alcotest.(check int) "retired = issued - squashed" (Stats.retired s)
    (s.Stats.issued - s.Stats.squashed_issued);
  Alcotest.(check bool) "ipc positive" true (Stats.ipc s > 0.0);
  Alcotest.(check (float 0.0001)) "no branches -> 0 mppki" 0.0 (Stats.mppki s)

let () =
  Alcotest.run "bv_pipeline"
    [ ( "dbb",
        [ Alcotest.test_case "alloc/claim/free" `Quick test_dbb_alloc_claim_free;
          Alcotest.test_case "no resurrection" `Quick
            test_dbb_snapshot_no_resurrection;
          Alcotest.test_case "claim revert" `Quick test_dbb_snapshot_claim_revert
        ] );
      ( "config", [ Alcotest.test_case "widths" `Quick test_config ] );
      ( "timing",
        [ Alcotest.test_case "dependent chain" `Quick
            test_dependent_chain_latency;
          Alcotest.test_case "width parallelism" `Quick test_width_parallelism;
          Alcotest.test_case "mispredict cost" `Quick
            test_mispredict_costs_cycles;
          Alcotest.test_case "max cycles" `Quick test_max_cycles_cap
        ] );
      ( "correctness",
        [ Alcotest.test_case "digest vs interpreter" `Quick
            test_digest_matches_interpreter;
          Alcotest.test_case "wrong-path stores undone" `Quick
            test_wrong_path_stores_undone;
          Alcotest.test_case "deep calls vs RAS" `Quick
            test_ret_depth_beyond_ras;
          Alcotest.test_case "decomposed branches" `Quick
            test_decomposed_machine_path;
          Alcotest.test_case "tiny DBB backpressure" `Quick
            test_tiny_dbb_backpressure
        ] );
      ( "stats",
        [ Alcotest.test_case "accounting" `Quick test_stats_accounting;
          Alcotest.test_case "site waits" `Quick test_site_wait_measured
        ] );
      ( "trace", [ Alcotest.test_case "rows" `Quick test_trace_rows ] )
    ]
