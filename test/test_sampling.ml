(* Interval-sampling pillars:

   - CI math on known samples (mean / stderr / bounds);
   - architectural exactness: a sampled run's digests equal the full
     run's, for every golden config (the fast-forward warmup hand-off
     keeps committed state exact);
   - convergence: as the measured fraction of each period grows to 1,
     the extrapolated CPI approaches the full-run CPI, reaching it
     exactly when one window covers the whole run;
   - a pinned golden for the sampled estimate on the plain_w4 config,
     regenerated with the same BV_GOLDEN_DIR mechanism as the cycle
     goldens. *)

open Bv_ir
open Bv_pipeline
open Bv_workloads

let spec_int =
  Spec.make ~name:"golden-int" ~suite:Spec.Int_2006 ~seed:7001
    ~branch_classes:
      [ Spec.cls ~count:6 ~taken_rate:0.60 ~predictability:0.95 ();
        Spec.cls ~iid:true ~count:4 ~taken_rate:0.92 ~predictability:0.92 ();
        Spec.cls ~iid:true ~count:2 ~taken_rate:0.50 ~predictability:0.50 ()
      ]
    ~loads_per_block:3.0 ~cond_depth:4 ~inner_n:128 ~reps:10 ()

let image_int =
  lazy
    (let p = Gen.generate ~input:1 spec_int in
     Bv_sched.Sched.schedule_program p;
     Layout.program p)

(* ---- CI math ----------------------------------------------------------- *)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let test_ci_known () =
  let m = Smarts.ci_of_samples [ 2.; 4.; 6.; 8. ] in
  Alcotest.(check bool) "mean" true (feq m.Smarts.mean 5.);
  (* sample std = sqrt(20/3), stderr = std / 2 *)
  let stderr = sqrt (20. /. 3.) /. 2. in
  Alcotest.(check bool) "stderr" true (feq m.Smarts.stderr stderr);
  Alcotest.(check bool)
    "ci_low" true
    (feq m.Smarts.ci_low (5. -. (1.96 *. stderr)));
  Alcotest.(check bool)
    "ci_high" true
    (feq m.Smarts.ci_high (5. +. (1.96 *. stderr)));
  Alcotest.(check bool)
    "rel_err" true
    (feq m.Smarts.rel_err_pct (100. *. 1.96 *. stderr /. 5.))

let test_ci_degenerate () =
  let z = Smarts.ci_of_samples [] in
  Alcotest.(check bool) "empty mean" true (feq z.Smarts.mean 0.);
  Alcotest.(check bool) "empty stderr" true (feq z.Smarts.stderr 0.);
  let one = Smarts.ci_of_samples [ 3.5 ] in
  Alcotest.(check bool) "single mean" true (feq one.Smarts.mean 3.5);
  Alcotest.(check bool) "single stderr" true (feq one.Smarts.stderr 0.);
  Alcotest.(check bool) "single ci collapses" true
    (feq one.Smarts.ci_low 3.5 && feq one.Smarts.ci_high 3.5);
  let const = Smarts.ci_of_samples [ 2.; 2.; 2. ] in
  Alcotest.(check bool) "constant stderr" true (feq const.Smarts.stderr 0.)

(* ---- architectural exactness across the hand-off ----------------------- *)

let test_digests_exact () =
  let image = Lazy.force image_int in
  List.iter
    (fun config ->
      let full = Machine.run ~config image in
      let s = Machine.run_sampled ~config image in
      let r = s.Machine.sam_result in
      Alcotest.(check bool) "finished" true r.Machine.finished;
      Alcotest.(check int) "mem_digest" full.Machine.mem_digest
        r.Machine.mem_digest;
      Alcotest.(check int) "stores_retired" full.Machine.stores_retired
        r.Machine.stores_retired;
      Alcotest.(check int) "arch_digest" full.Machine.arch_digest
        r.Machine.arch_digest;
      Alcotest.(check bool) "multiple windows" true
        (List.length s.Machine.sam_estimate.Smarts.est_windows > 1))
    Config.[ two_wide; four_wide; eight_wide ]

(* ---- convergence ------------------------------------------------------- *)

let full_cpi image config =
  let full = Machine.run ~config image in
  Float.of_int full.Machine.stats.Stats.cycles
  /. Float.of_int (Stats.retired full.Machine.stats)

let sampled_cpi image config params =
  let s = Machine.run_sampled ~config ~params image in
  s.Machine.sam_estimate.Smarts.est_cpi.Smarts.mean

let rel_err a b = Float.abs (a -. b) /. b

let test_convergence () =
  let image = Lazy.force image_int in
  let config = Config.four_wide in
  let want = full_cpi image config in
  let err detail =
    rel_err
      (sampled_cpi image config
         { Machine.sp_period = 4_000; sp_detail = detail; sp_warmup = 200 })
      want
  in
  let sparse = err 250 in
  let dense = err 4_000 in
  Alcotest.(check bool)
    (Printf.sprintf "sparse error bounded (%.4f)" sparse)
    true (sparse < 0.25);
  Alcotest.(check bool)
    (Printf.sprintf "dense error small (%.4f)" dense)
    true (dense < 0.05);
  Alcotest.(check bool)
    (Printf.sprintf "error shrinks with density (%.4f -> %.4f)" sparse dense)
    true
    (dense <= sparse +. 0.02);
  (* One window covering the entire run is exactly the full run. *)
  let s =
    Machine.run_sampled ~config
      ~params:
        { Machine.sp_period = max_int / 2;
          sp_detail = max_int / 4;
          sp_warmup = 0
        }
      image
  in
  let est = s.Machine.sam_estimate in
  Alcotest.(check int) "one window" 1 (List.length est.Smarts.est_windows);
  Alcotest.(check bool)
    (Printf.sprintf "degenerate exact (%.6f = %.6f)" est.Smarts.est_cpi.Smarts.mean want)
    true
    (feq ~eps:1e-12 est.Smarts.est_cpi.Smarts.mean want);
  Alcotest.(check int) "all instrs detailed" est.Smarts.est_total_instrs
    est.Smarts.est_detailed_instrs

(* ---- pinned golden for the warmup hand-off ----------------------------- *)

let golden_path = Filename.concat "goldens" "sampled_plain_w4.json"

let capture () =
  let image = Lazy.force image_int in
  let s =
    Machine.run_sampled ~config:Config.four_wide
      ~params:{ Machine.sp_period = 2_000; sp_detail = 500; sp_warmup = 200 }
      image
  in
  Bv_obs.Json.to_string ~indent:true
    (Machine.result_to_json ~sampled:s.Machine.sam_estimate
       s.Machine.sam_result)
  ^ "\n"

let test_golden () =
  let got = capture () in
  match Sys.getenv_opt "BV_GOLDEN_DIR" with
  | Some dir ->
    let path = Filename.concat dir "sampled_plain_w4.json" in
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc got);
    Printf.printf "wrote %s\n%!" path
  | None ->
    let want = In_channel.with_open_text golden_path In_channel.input_all in
    Alcotest.(check string) "sampled estimate bit-for-bit" want got

let () =
  Alcotest.run "bv_sampling"
    [ ( "ci-math",
        [ Alcotest.test_case "known samples" `Quick test_ci_known;
          Alcotest.test_case "degenerate samples" `Quick test_ci_degenerate
        ] );
      ( "hand-off",
        [ Alcotest.test_case "digests exact" `Quick test_digests_exact;
          Alcotest.test_case "golden estimate" `Quick test_golden
        ] );
      ( "convergence",
        [ Alcotest.test_case "density sweep" `Quick test_convergence ] )
    ]
