(* The interprocedural summary engine.

   The load-bearing property is soundness: whatever the interpreter
   observes a procedure (or anything it transitively calls) do — register
   writes, loads, stores — must be covered by that procedure's computed
   summary, with memory accesses falling inside the summarized footprints
   translated through the activation's entry register frame. The property
   is fuzzed over whole generated programs and over hand-built self- and
   mutually-recursive call graphs, where the SCC fixpoint (and its
   footprint widening) does the work.

   Deterministic cases pin the fixpoint results themselves, the
   cross-call advisory gain the summaries unlock (a condition-slice load
   followed by a provably disjoint store, ineligible without summaries,
   transformable and provable with them), and the proc-qualified
   diagnostic ordering over colliding block labels. *)

open Bv_isa
open Bv_ir
open Bv_analysis

let r = Reg.make
let block label body term = Block.make ~label ~body ~term

let mov dst n = Instr.Mov { dst = r dst; src = Instr.Imm n }
let sub1 dst = Instr.Alu { op = Instr.Sub; dst = r dst; src1 = r dst; src2 = Instr.Imm 1 }
let add_imm dst src n =
  Instr.Alu { op = Instr.Add; dst = r dst; src1 = r src; src2 = Instr.Imm n }
let and1 dst src =
  Instr.Alu { op = Instr.And; dst = r dst; src1 = r src; src2 = Instr.Imm 1 }
let cmp_gt0 dst src =
  Instr.Cmp { op = Instr.Gt; dst = r dst; src1 = r src; src2 = Instr.Imm 0 }
let load dst offset =
  Instr.Load { dst = r dst; base = r 0; offset; speculative = false }
let store src offset = Instr.Store { src = r src; base = r 0; offset }

(* ------------------------------------------------ soundness oracle -- *)

(* Step the interpreter over the laid-out program while tracking the
   activation stack: every executed effect is charged to every live
   activation, each checked against its procedure's summary in its own
   entry frame (the register file snapshotted at the call). *)
let summary_covers_run ?(max_steps = 2_000_000) prog =
  let env = Summary.compute prog in
  let img = Layout.program (Program.copy prog) in
  let st = Bv_exec.Interp.init img in
  let main = prog.Program.main in
  let stack = ref [ (main, Array.copy st.Bv_exec.Interp.regs) ] in
  let covers snapshot addr = function
    | Alias.Absolute (lo, hi) -> lo <= addr && addr <= hi
    | Alias.Reg_relative (base, lo, hi) ->
      let b = snapshot.(Reg.index base) in
      b + lo <= addr && addr <= b + hi
    | Alias.Unknown -> true
  in
  let in_footprint snapshot addr = function
    | None -> true
    | Some regions -> List.exists (covers snapshot addr) regions
  in
  let failure = ref None in
  let check what f =
    List.iter
      (fun (name, snapshot) ->
        match Summary.find env name with
        | None -> failure := Some (name ^ ": no summary")
        | Some s ->
          if !failure = None && not (f s snapshot) then
            failure := Some (Printf.sprintf "%s: %s escapes summary" name what))
      !stack
  in
  let steps = ref 0 in
  while
    (not st.Bv_exec.Interp.halted) && !steps < max_steps && !failure = None
  do
    incr steps;
    let i = img.Layout.code.(st.Bv_exec.Interp.pc) in
    (match Instr.defs i with
    | [] -> ()
    | defs ->
      check "register write" (fun s _ ->
          List.for_all (fun d -> Summary.Regset.mem d s.Summary.mod_regs) defs));
    (match i with
    | Instr.Load { base; offset; _ } ->
      let addr = st.Bv_exec.Interp.regs.(Reg.index base) + offset in
      check "load" (fun s snap -> in_footprint snap addr s.Summary.loads)
    | Instr.Store { base; offset; _ } ->
      let addr = st.Bv_exec.Interp.regs.(Reg.index base) + offset in
      check "store" (fun s snap -> in_footprint snap addr s.Summary.stores)
    | _ -> ());
    (match i with
    | Instr.Call target ->
      stack := (target, Array.copy st.Bv_exec.Interp.regs) :: !stack
    | Instr.Ret -> (
      match !stack with _ :: tl -> stack := tl | [] -> ())
    | _ -> ());
    Bv_exec.Interp.step img st
  done;
  match !failure with
  | Some msg -> Error msg
  | None when not st.Bv_exec.Interp.halted -> Error "did not halt"
  | None -> Ok ()

(* ---------------------------------------- recursive program shapes -- *)

(* f counts r6 down to zero, storing each step; depth comes from main. *)
let self_recursive ~depth ~slot =
  let f =
    Proc.make ~name:"f"
      [ block "fe" [ cmp_gt0 5 6 ]
          (Term.Branch { on = true; src = r 5; taken = "fr"; not_taken = "fd"; id = 1 });
        block "fr" [ sub1 6; store 6 (8 * slot) ]
          (Term.Call { target = "f"; return_to = "fx" });
        block "fx" [] Term.Ret;
        block "fd" [] Term.Ret
      ]
  in
  let m =
    Proc.make ~name:"m"
      [ block "entry" [ mov 6 depth ] (Term.Call { target = "f"; return_to = "mh" });
        block "mh" [] Term.Halt
      ]
  in
  Program.make ~mem_words:64 ~main:"m" [ m; f ]

(* f and g bounce the countdown between each other, storing to their own
   slots — a two-member SCC the fixpoint must close over. *)
let mutually_recursive ~depth ~slot_f ~slot_g =
  let hammock name other ~entry ~rec_ ~ret_ ~done_ ~slot ~site =
    Proc.make ~name
      [ block entry [ cmp_gt0 5 6 ]
          (Term.Branch { on = true; src = r 5; taken = rec_; not_taken = done_; id = site });
        block rec_ [ sub1 6; store 6 (8 * slot) ]
          (Term.Call { target = other; return_to = ret_ });
        block ret_ [] Term.Ret;
        block done_ [] Term.Ret
      ]
  in
  let f =
    hammock "f" "g" ~entry:"fe" ~rec_:"fr" ~ret_:"fx" ~done_:"fd" ~slot:slot_f
      ~site:1
  in
  let g =
    hammock "g" "f" ~entry:"ge" ~rec_:"gr" ~ret_:"gx" ~done_:"gd" ~slot:slot_g
      ~site:2
  in
  let m =
    Proc.make ~name:"m"
      [ block "entry" [ mov 6 depth ] (Term.Call { target = "f"; return_to = "mh" });
        block "mh" [] Term.Halt
      ]
  in
  Program.make ~mem_words:64 ~main:"m" [ m; f; g ]

(* f stores through a base register it strides every activation — the
   rebased footprint grows each fixpoint round until widening gives up. *)
let striding_recursive ~depth =
  let f =
    Proc.make ~name:"f"
      [ block "fe" [ cmp_gt0 5 6 ]
          (Term.Branch { on = true; src = r 5; taken = "fr"; not_taken = "fd"; id = 1 });
        block "fr"
          [ sub1 6;
            Instr.Store { src = r 6; base = r 7; offset = 0 };
            add_imm 7 7 8
          ]
          (Term.Call { target = "f"; return_to = "fx" });
        block "fx" [] Term.Ret;
        block "fd" [] Term.Ret
      ]
  in
  let m =
    Proc.make ~name:"m"
      [ block "entry" [ mov 6 depth; mov 7 0 ]
          (Term.Call { target = "f"; return_to = "mh" });
        block "mh" [] Term.Halt
      ]
  in
  Program.make ~mem_words:64 ~main:"m" [ m; f ]

(* -------------------------------------------------- fuzz properties -- *)

let seeds = QCheck2.Gen.int_range 0 100_000

let check_sound ?max_steps prog =
  match summary_covers_run ?max_steps prog with
  | Ok () -> true
  | Error msg -> QCheck2.Test.fail_report msg

let prop_fuzz_sound =
  QCheck2.Test.make
    ~name:"summaries cover interpreted effects (generated programs)"
    ~count:110 seeds
    (fun seed -> check_sound (Bv_workloads.Fuzzgen.generate ~seed))

let prop_self_recursive_sound =
  QCheck2.Test.make
    ~name:"summaries cover interpreted effects (self-recursion)" ~count:40
    seeds
    (fun seed ->
      check_sound (self_recursive ~depth:(seed mod 9) ~slot:(seed mod 64)))

let prop_mutual_recursive_sound =
  QCheck2.Test.make
    ~name:"summaries cover interpreted effects (mutual recursion)" ~count:40
    seeds
    (fun seed ->
      check_sound
        (mutually_recursive ~depth:(seed mod 11) ~slot_f:(seed mod 64)
           ~slot_g:((seed / 64) mod 64)))

let prop_striding_sound =
  QCheck2.Test.make
    ~name:"summaries cover interpreted effects (widened footprint)"
    ~count:20 seeds
    (fun seed -> check_sound (striding_recursive ~depth:(1 + (seed mod 7))))

(* -------------------------------------------- SCC fixpoint results -- *)

let test_scc_structure () =
  let prog = mutually_recursive ~depth:3 ~slot_f:1 ~slot_g:2 in
  let cg = Callgraph.build prog in
  (match Callgraph.sccs cg with
  | [ pair; [ "m" ] ] ->
    Alcotest.(check (list string))
      "recursive pair first, members in program order" [ "f"; "g" ] pair
  | sccs -> Alcotest.failf "unexpected SCCs: %d components" (List.length sccs));
  Alcotest.(check bool) "f recursive" true (Callgraph.in_recursive_scc cg "f");
  Alcotest.(check bool) "g recursive" true (Callgraph.in_recursive_scc cg "g");
  Alcotest.(check bool) "m not recursive" false
    (Callgraph.in_recursive_scc cg "m")

let test_mutual_fixpoint () =
  let prog = mutually_recursive ~depth:3 ~slot_f:1 ~slot_g:2 in
  let env = Summary.compute prog in
  let get name =
    match Summary.find env name with
    | Some s -> s
    | None -> Alcotest.failf "no summary for %s" name
  in
  let f = get "f" and g = get "g" and m = get "m" in
  Alcotest.(check bool) "f marked recursive" true f.Summary.recursive;
  Alcotest.(check bool) "m not recursive" false m.Summary.recursive;
  (* the SCC closes: each member sees the other's effects *)
  List.iter
    (fun s ->
      Alcotest.(check bool) "mod covers r5,r6" true
        (Summary.Regset.mem (r 5) s.Summary.mod_regs
        && Summary.Regset.mem (r 6) s.Summary.mod_regs);
      match s.Summary.stores with
      | Some regions ->
        List.iter
          (fun offset ->
            Alcotest.(check bool)
              (Printf.sprintf "%s stores cover [%d]" s.Summary.name offset)
              true
              (* r0 is never assigned, so the analysis knows the slots
                 only relative to its entry value (which is 0 at run
                 time) *)
              (List.exists
                 (function
                   | Alias.Absolute (lo, hi) -> lo <= offset && offset <= hi
                   | Alias.Reg_relative (base, lo, hi) ->
                     Reg.index base = 0 && lo <= offset && offset <= hi
                   | Alias.Unknown -> false)
                 regions))
          [ 8; 16 ]
      | None -> Alcotest.failf "%s: expected bounded stores" s.Summary.name)
    [ f; g; m ];
  Alcotest.(check string) "bounded writes" "writes-bounded"
    (Summary.purity_name (Summary.purity f))

let test_widening () =
  let prog = striding_recursive ~depth:5 in
  let env = Summary.compute prog in
  match Summary.find env "f" with
  | None -> Alcotest.fail "no summary for f"
  | Some f ->
    Alcotest.(check bool) "striding store widened to unbounded" true
      (f.Summary.stores = None);
    Alcotest.(check string) "purity degrades" "writes-unknown"
      (Summary.purity_name (Summary.purity f))

let test_purity_classes () =
  let leaf name body =
    Proc.make ~name [ block (name ^ "e") body Term.Ret ]
  in
  let m =
    Proc.make ~name:"m"
      [ block "e0" [] (Term.Call { target = "pure"; return_to = "e1" });
        block "e1" [] (Term.Call { target = "reader"; return_to = "e2" });
        block "e2" [] Term.Halt
      ]
  in
  let prog =
    Program.make ~mem_words:64 ~main:"m"
      [ m; leaf "pure" [ mov 8 1 ]; leaf "reader" [ load 9 16 ] ]
  in
  let env = Summary.compute prog in
  let purity name =
    match Summary.find env name with
    | Some s -> Summary.purity_name (Summary.purity s)
    | None -> Alcotest.failf "no summary for %s" name
  in
  Alcotest.(check string) "pure leaf" "pure" (purity "pure");
  Alcotest.(check string) "read-only leaf" "read-only" (purity "reader");
  Alcotest.(check string) "caller inherits reads" "read-only" (purity "m");
  (match Summary.find env "reader" with
  | Some s ->
    Alcotest.(check bool) "store-free" true (Summary.store_free s);
    Alcotest.(check bool) "scratch-clean" true
      (Summary.scratch_clean s ~pool:Vanguard.Transform.default_temp_pool)
  | None -> Alcotest.fail "no summary for reader")

(* ------------------------------------------------- cross-call gain -- *)

(* The canonical site the interprocedural mode unlocks: a hammock whose
   condition is loaded, with a later store to a provably disjoint word,
   sitting behind a call. Intra-procedurally the slice cannot sink past
   the store; summary-backed alias facts prove the accesses disjoint. *)
let cross_call_program () =
  let m =
    Proc.make ~name:"m"
      [ block "e0" [ mov 9 3 ] (Term.Call { target = "leaf"; return_to = "bb" });
        block "bb" [ load 7 16; store 9 256; and1 5 7 ]
          (Term.Branch { on = true; src = r 5; taken = "t"; not_taken = "n"; id = 1 });
        block "t" [ add_imm 8 7 2 ] (Term.Jump "x");
        block "n" [ add_imm 8 7 3 ] (Term.Jump "x");
        block "x" [] Term.Halt
      ]
  in
  let leaf = Proc.make ~name:"leaf" [ block "le" [ mov 10 1 ] Term.Ret ] in
  Program.make ~mem_words:64 ~main:"m" [ m; leaf ]

let test_cross_call_gain () =
  let prog = cross_call_program () in
  let site_cost summaries =
    match
      List.find_opt
        (fun c -> c.Costmodel.site = 1)
        (Costmodel.analyze ?summaries prog)
    with
    | Some c -> c
    | None -> Alcotest.fail "site 1 not costed"
  in
  Alcotest.(check (option string))
    "rejected without summaries"
    (Some "store after a slice load")
    (site_cost None).Costmodel.ineligible;
  let env = Summary.compute prog in
  Alcotest.(check (option string))
    "eligible with summaries" None (site_cost (Some env)).Costmodel.ineligible;
  let main_proc = List.hd prog.Program.procs in
  Alcotest.(check bool) "site is call-shadowed" true
    (Callgraph.call_shadowed main_proc "bb");
  let candidate =
    { Vanguard.Select.proc = "m"; block = "bb"; site = 1; bias = 1.0;
      predictability = 1.0; executed = 1
    }
  in
  let off = Vanguard.Transform.apply ~candidates:[ candidate ] prog in
  Alcotest.(check (list (pair int string)))
    "transform skips the site without summaries"
    [ (1, "store after a slice load") ]
    off.Vanguard.Transform.skipped;
  let digest p =
    Bv_exec.Interp.arch_digest (Bv_exec.Interp.run (Layout.program p))
  in
  let want = digest (Program.copy prog) in
  let on =
    Vanguard.Transform.apply ~summaries:env ~prove:true
      ~candidates:[ candidate ] prog
  in
  Alcotest.(check (list (pair int string)))
    "no skips with summaries" [] on.Vanguard.Transform.skipped;
  Alcotest.(check int) "site transformed" 1
    (List.length on.Vanguard.Transform.reports);
  Alcotest.(check bool) "architecturally equivalent" true
    (digest on.Vanguard.Transform.program = want)

(* -------------------------------------- diagnostic ordering by proc -- *)

(* Two procedures with byte-identical block labels and site ids must
   yield distinct, proc-qualified site keys, deterministically ordered
   and both surviving dedup. (Such label collisions never pass Validate,
   but per-proc analyses still report on them.) *)
let test_diagnostic_ordering () =
  let violating name =
    Proc.make ~name
      [ block "entry" [ mov 1 5 ]
          (Term.Predict { taken = "rt"; not_taken = "rnt"; id = 1 });
        block "rnt" [ cmp_gt0 5 1; store 6 0 ]
          (Term.Resolve
             { on = true; src = r 5; mispredict = "fix"; fallthrough = "join";
               predicted_taken = false
             ; id = 1 });
        block "rt" [ cmp_gt0 5 1 ]
          (Term.Resolve
             { on = true; src = r 5; mispredict = "fix"; fallthrough = "join";
               predicted_taken = true; id = 1
             });
        block "join" [] Term.Halt;
        block "fix" [] (Term.Jump "join")
      ]
  in
  let prog =
    Program.make ~mem_words:64 ~main:"p1" [ violating "p2"; violating "p1" ]
  in
  let errors =
    List.filter Diagnostic.is_error (Speculation.verify prog)
    |> Diagnostic.sort |> Diagnostic.dedup
  in
  let keys = List.map Diagnostic.site_key errors in
  Alcotest.(check (list string))
    "one proc-qualified key per proc, proc-ordered"
    [ "p1/rnt#-"; "p2/rnt#-" ] keys

let () =
  Alcotest.run "summary"
    [ ( "soundness",
        List.map QCheck_alcotest.to_alcotest
          [ prop_fuzz_sound;
            prop_self_recursive_sound;
            prop_mutual_recursive_sound;
            prop_striding_sound
          ] );
      ( "fixpoint",
        [ Alcotest.test_case "scc structure" `Quick test_scc_structure;
          Alcotest.test_case "mutual fixpoint" `Quick test_mutual_fixpoint;
          Alcotest.test_case "footprint widening" `Quick test_widening;
          Alcotest.test_case "purity classes" `Quick test_purity_classes
        ] );
      ( "interproc",
        [ Alcotest.test_case "cross-call gain" `Quick test_cross_call_gain ] );
      ( "diagnostics",
        [ Alcotest.test_case "proc-qualified ordering" `Quick
            test_diagnostic_ordering
        ] )
    ]
