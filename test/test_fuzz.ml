(* Whole-program fuzzing: generate random structured programs (straight
   blocks, hammocks, bounded loops, leaf calls), then check every pillar on
   them:

   - the interpreter runs them to completion without faults;
   - the timing model matches the interpreter's architectural digest at
     every width (wrong-path execution, rollback, store buffering ...);
   - the list scheduler preserves semantics program-wide;
   - control-flow recovery round-trips;
   - the Decomposed Branch Transformation preserves semantics on every
     shape-valid site at once, both functionally and through the machine. *)

open Bv_isa
open Bv_ir

let r = Reg.make

(* --------------------------------------------------------- generator -- *)

(* Register conventions for generated programs: r1..r4 induction/scratch,
   r5 condition, r6..r19 data. Memory: 64 words, all addresses immediate-
   offset from r0 (always 0). *)

type gstate =
  { rng : Bv_workloads.Rng.t;
    mutable next_label : int;
    mutable next_site : int;
    mutable blocks : Block.t list;  (* reversed *)
    mutable procs : Proc.t list
  }

let fresh_label g prefix =
  g.next_label <- g.next_label + 1;
  Printf.sprintf "%s%d" prefix g.next_label

let fresh_site g =
  g.next_site <- g.next_site + 1;
  g.next_site

let rand_reg g lo hi = r (lo + Bv_workloads.Rng.below g.rng (hi - lo + 1))

let rand_instr g =
  match Bv_workloads.Rng.below g.rng 7 with
  | 0 ->
    Instr.Mov { dst = rand_reg g 6 19; src = Instr.Imm (Bv_workloads.Rng.below g.rng 100) }
  | 1 ->
    Instr.Alu
      { op = List.nth Instr.[ Add; Sub; Xor; And; Or ] (Bv_workloads.Rng.below g.rng 5);
        dst = rand_reg g 6 19;
        src1 = rand_reg g 6 19;
        src2 = Instr.Reg (rand_reg g 6 19)
      }
  | 2 ->
    Instr.Alu
      { op = Instr.Add; dst = rand_reg g 6 19; src1 = rand_reg g 6 19;
        src2 = Instr.Imm (Bv_workloads.Rng.below g.rng 50)
      }
  | 3 ->
    Instr.Load
      { dst = rand_reg g 6 19; base = r 0;
        offset = 8 * Bv_workloads.Rng.below g.rng 64; speculative = false
      }
  | 4 ->
    Instr.Store
      { src = rand_reg g 6 19; base = r 0;
        offset = 8 * Bv_workloads.Rng.below g.rng 64
      }
  | 5 ->
    Instr.Cmov
      { on = Bv_workloads.Rng.below g.rng 2 = 0; cond = rand_reg g 6 19;
        dst = rand_reg g 6 19; src = Instr.Reg (rand_reg g 6 19)
      }
  | _ ->
    Instr.Fpu
      { op = Instr.Mul; dst = rand_reg g 6 19; src1 = rand_reg g 6 19;
        src2 = Instr.Imm (1 + Bv_workloads.Rng.below g.rng 5)
      }

let rand_body g n = List.init n (fun _ -> rand_instr g)

let emit g label body term =
  g.blocks <- Block.make ~label ~body ~term :: g.blocks

(* Emit a structured segment; control enters at [entry] and leaves at the
   returned label (which the caller will define next). *)
let rec emit_segment g ~depth ~entry =
  let exit_label = fresh_label g "x" in
  (* loops only nest twice: deeper nests multiply trip counts into machine
     runs that dominate the test budget *)
  (match Bv_workloads.Rng.below g.rng (if depth >= 2 then 2 else 4) with
  | 0 ->
    (* straight-line *)
    emit g entry
      (rand_body g (1 + Bv_workloads.Rng.below g.rng 8))
      (Term.Jump exit_label)
  | 1 ->
    (* hammock: condition derived from data-register parity *)
    let site = fresh_site g in
    let b = fresh_label g "b" and c = fresh_label g "c" in
    let src = rand_reg g 6 19 in
    emit g entry
      (rand_body g (Bv_workloads.Rng.below g.rng 4)
      @ [ Instr.Alu { op = Instr.And; dst = r 5; src1 = src; src2 = Instr.Imm 1 } ])
      (Term.Branch { on = true; src = r 5; taken = c; not_taken = b; id = site });
    emit g b (rand_body g (1 + Bv_workloads.Rng.below g.rng 6)) (Term.Jump exit_label);
    emit g c (rand_body g (1 + Bv_workloads.Rng.below g.rng 6)) (Term.Jump exit_label)
  | 2 ->
    (* bounded counted loop with a nested segment *)
    let site = fresh_site g in
    let head = fresh_label g "h" and latch = fresh_label g "l" in
    let trips = 2 + Bv_workloads.Rng.below g.rng 3 in
    (* counters are assigned by nesting depth: an inner loop must never
       reset an enclosing loop's counter *)
    let counter = r (2 + min depth 2) in
    emit g entry
      [ Instr.Mov { dst = counter; src = Instr.Imm 0 } ]
      (Term.Jump head);
    emit_segment_to g ~depth:(depth + 1) ~entry:head ~next:latch;
    emit g latch
      [ Instr.Alu { op = Instr.Add; dst = counter; src1 = counter; src2 = Instr.Imm 1 };
        Instr.Cmp { op = Instr.Lt; dst = r 5; src1 = counter; src2 = Instr.Imm trips }
      ]
      (Term.Branch
         { on = true; src = r 5; taken = head; not_taken = exit_label;
           id = site });
    ()
  | _ ->
    (* call a fresh leaf procedure *)
    let pname = fresh_label g "leaf" in
    let pentry = fresh_label g "pe" in
    g.procs <-
      Proc.make ~name:pname
        [ Block.make ~label:pentry
            ~body:(rand_body g (1 + Bv_workloads.Rng.below g.rng 6))
            ~term:Term.Ret
        ]
      :: g.procs;
    emit g entry [] (Term.Call { target = pname; return_to = exit_label }));
  exit_label

and emit_segment_to g ~depth ~entry ~next =
  (* a segment that must end by jumping to [next] *)
  let out = emit_segment g ~depth ~entry in
  emit g out [] (Term.Jump next)

let gen_program seed =
  let g =
    { rng = Bv_workloads.Rng.create ~seed;
      next_label = 0;
      next_site = 0;
      blocks = [];
      procs = []
    }
  in
  let n_segments = 2 + Bv_workloads.Rng.below g.rng 3 in
  let entry = "entry" in
  let rec chain entry k =
    if k = 0 then emit g entry [] Term.Halt
    else begin
      let next = emit_segment g ~depth:0 ~entry in
      chain next (k - 1)
    end
  in
  chain entry n_segments;
  let main = Proc.make ~name:"m" ~entry (List.rev g.blocks) in
  Program.make ~mem_words:64 ~main:"m" (main :: g.procs)

(* The generator orders blocks by emission; the entry must come first,
   which [chain] guarantees by emitting "entry" first. *)

let digest img = Bv_exec.Interp.arch_digest (Bv_exec.Interp.run img)

let seeds = QCheck2.Gen.int_range 0 100_000

let prop_generated_programs_run =
  QCheck2.Test.make ~name:"generated programs validate and halt" ~count:150
    seeds
    (fun seed ->
      let prog = gen_program seed in
      Validate.check_exn prog;
      let st = Bv_exec.Interp.run ~max_instrs:5_000_000 (Layout.program prog) in
      st.Bv_exec.Interp.halted)

let prop_machine_matches_interp =
  QCheck2.Test.make ~name:"machine digest = interpreter digest (all widths)"
    ~count:40 seeds
    (fun seed ->
      let img = Layout.program (gen_program seed) in
      let want = digest img in
      List.for_all
        (fun config ->
          let res = Bv_pipeline.Machine.run ~config img in
          res.Bv_pipeline.Machine.finished
          && res.Bv_pipeline.Machine.arch_digest = want)
        Bv_pipeline.Config.[ two_wide; four_wide; eight_wide ])

let prop_scheduler_preserves_programs =
  QCheck2.Test.make ~name:"program-wide scheduling preserves semantics"
    ~count:100 seeds
    (fun seed ->
      let prog = gen_program seed in
      let want = digest (Layout.program (Program.copy prog)) in
      Bv_sched.Sched.schedule_program prog;
      digest (Layout.program prog) = want)

let prop_recover_roundtrip =
  QCheck2.Test.make ~name:"recovery round-trips generated programs"
    ~count:100 seeds
    (fun seed ->
      let img = Layout.program (gen_program seed) in
      let img2 = Layout.program (Recover.image img) in
      Array.length img.Layout.code = Array.length img2.Layout.code
      && digest img = digest img2)

let shape_valid_candidates prog =
  (* every forward hammock the selector would consider, regardless of
     profile statistics *)
  let image = Layout.program (Program.copy prog) in
  let profile =
    Bv_profile.Profile.collect
      ~predictor:(Bv_bpred.Kind.create Bv_bpred.Kind.Always_not_taken)
      image
  in
  (Vanguard.Select.select ~threshold:(-2.0) ~min_executed:0 ~profile prog)
    .Vanguard.Select.candidates

let prop_transform_all_sites =
  QCheck2.Test.make
    ~name:"transforming every shape-valid site preserves semantics"
    ~count:60 seeds
    (fun seed ->
      let prog = gen_program seed in
      let want = digest (Layout.program (Program.copy prog)) in
      let candidates = shape_valid_candidates prog in
      let result = Vanguard.Transform.apply ~candidates prog in
      let img = Layout.program result.Vanguard.Transform.program in
      digest img = want
      &&
      let res =
        Bv_pipeline.Machine.run ~config:Bv_pipeline.Config.four_wide img
      in
      res.Bv_pipeline.Machine.finished
      && res.Bv_pipeline.Machine.arch_digest = want)

let prop_transformed_lint_clean =
  QCheck2.Test.make
    ~name:"transformed programs pass the speculation-safety linter"
    ~count:60 seeds
    (fun seed ->
      let prog = gen_program seed in
      let candidates = shape_valid_candidates prog in
      let transformed =
        (Vanguard.Transform.apply ~candidates prog).Vanguard.Transform.program
      in
      let lints_clean p =
        not
          (Bv_analysis.Diagnostic.has_errors
             (Bv_analysis.Speculation.verify
                ~scratch:Vanguard.Transform.default_temp_pool p))
      in
      lints_clean transformed
      && lints_clean (Recover.image (Layout.program transformed)))

let prop_encoding_whole_images =
  QCheck2.Test.make ~name:"whole images encode and decode losslessly"
    ~count:60 seeds
    (fun seed ->
      let img = Layout.program (gen_program seed) in
      let resolve l = Layout.resolve img l in
      (* invert the label table *)
      let by_pc = Hashtbl.create 64 in
      Hashtbl.iter
        (fun l pc -> if not (Hashtbl.mem by_pc pc) then Hashtbl.add by_pc pc l)
        img.Layout.labels;
      let label_of pc = Hashtbl.find by_pc pc in
      Array.for_all
        (fun i ->
          let w = Encoding.encode ~resolve i in
          let back = Encoding.decode ~label_of w in
          (* compare via resolved targets (labels may alias per pc) *)
          match (Instr.branch_target i, Instr.branch_target back) with
          | None, None -> i = back
          | Some a, Some b -> resolve a = resolve b
          | _ -> false)
        img.Layout.code)

let () =
  Alcotest.run "fuzz"
    [ ( "whole-program properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_generated_programs_run;
            prop_machine_matches_interp;
            prop_scheduler_preserves_programs;
            prop_recover_roundtrip;
            prop_transform_all_sites;
            prop_transformed_lint_clean;
            prop_encoding_whole_images
          ] )
    ]
