(* Whole-program fuzzing: generate random structured programs (straight
   blocks, hammocks, bounded loops, leaf calls), then check every pillar on
   them:

   - the interpreter runs them to completion without faults;
   - the timing model matches the interpreter's architectural digest at
     every width (wrong-path execution, rollback, store buffering ...);
   - the list scheduler preserves semantics program-wide;
   - control-flow recovery round-trips;
   - the Decomposed Branch Transformation preserves semantics on every
     shape-valid site at once, both functionally and through the machine. *)

open Bv_isa
open Bv_ir

let gen_program seed = Bv_workloads.Fuzzgen.generate ~seed

let digest img = Bv_exec.Interp.arch_digest (Bv_exec.Interp.run img)

let seeds = QCheck2.Gen.int_range 0 100_000

let prop_generated_programs_run =
  QCheck2.Test.make ~name:"generated programs validate and halt" ~count:150
    seeds
    (fun seed ->
      let prog = gen_program seed in
      Validate.check_exn prog;
      let st = Bv_exec.Interp.run ~max_instrs:5_000_000 (Layout.program prog) in
      st.Bv_exec.Interp.halted)

let prop_machine_matches_interp =
  QCheck2.Test.make ~name:"machine digest = interpreter digest (all widths)"
    ~count:40 seeds
    (fun seed ->
      let img = Layout.program (gen_program seed) in
      let want = digest img in
      List.for_all
        (fun config ->
          let res = Bv_pipeline.Machine.run ~config img in
          res.Bv_pipeline.Machine.finished
          && res.Bv_pipeline.Machine.arch_digest = want)
        Bv_pipeline.Config.[ two_wide; four_wide; eight_wide ])

let prop_scheduler_preserves_programs =
  QCheck2.Test.make ~name:"program-wide scheduling preserves semantics"
    ~count:100 seeds
    (fun seed ->
      let prog = gen_program seed in
      let want = digest (Layout.program (Program.copy prog)) in
      Bv_sched.Sched.schedule_program prog;
      digest (Layout.program prog) = want)

let prop_recover_roundtrip =
  QCheck2.Test.make ~name:"recovery round-trips generated programs"
    ~count:100 seeds
    (fun seed ->
      let img = Layout.program (gen_program seed) in
      let img2 = Layout.program (Recover.image img) in
      Array.length img.Layout.code = Array.length img2.Layout.code
      && digest img = digest img2)

let shape_valid_candidates prog =
  (* every forward hammock the selector would consider, regardless of
     profile statistics *)
  let image = Layout.program (Program.copy prog) in
  let profile =
    Bv_profile.Profile.collect
      ~predictor:(Bv_bpred.Kind.create Bv_bpred.Kind.Always_not_taken)
      image
  in
  (Vanguard.Select.select ~threshold:(-2.0) ~min_executed:0 ~profile prog)
    .Vanguard.Select.candidates

let prop_transform_all_sites =
  QCheck2.Test.make
    ~name:"transforming every shape-valid site preserves semantics"
    ~count:60 seeds
    (fun seed ->
      let prog = gen_program seed in
      let want = digest (Layout.program (Program.copy prog)) in
      let candidates = shape_valid_candidates prog in
      let result = Vanguard.Transform.apply ~candidates prog in
      let img = Layout.program result.Vanguard.Transform.program in
      digest img = want
      &&
      let res =
        Bv_pipeline.Machine.run ~config:Bv_pipeline.Config.four_wide img
      in
      res.Bv_pipeline.Machine.finished
      && res.Bv_pipeline.Machine.arch_digest = want)

let prop_transformed_lint_clean =
  QCheck2.Test.make
    ~name:"transformed programs pass the speculation-safety linter"
    ~count:60 seeds
    (fun seed ->
      let prog = gen_program seed in
      let candidates = shape_valid_candidates prog in
      let transformed =
        (Vanguard.Transform.apply ~candidates prog).Vanguard.Transform.program
      in
      let lints_clean p =
        not
          (Bv_analysis.Diagnostic.has_errors
             (Bv_analysis.Speculation.verify
                ~scratch:Vanguard.Transform.default_temp_pool p))
      in
      lints_clean transformed
      && lints_clean (Recover.image (Layout.program transformed)))

let prop_encoding_whole_images =
  QCheck2.Test.make ~name:"whole images encode and decode losslessly"
    ~count:60 seeds
    (fun seed ->
      let img = Layout.program (gen_program seed) in
      let resolve l = Layout.resolve img l in
      (* invert the label table *)
      let by_pc = Hashtbl.create 64 in
      Hashtbl.iter
        (fun l pc -> if not (Hashtbl.mem by_pc pc) then Hashtbl.add by_pc pc l)
        img.Layout.labels;
      let label_of pc = Hashtbl.find by_pc pc in
      Array.for_all
        (fun i ->
          let w = Encoding.encode ~resolve i in
          let back = Encoding.decode ~label_of w in
          (* compare via resolved targets (labels may alias per pc) *)
          match (Instr.branch_target i, Instr.branch_target back) with
          | None, None -> i = back
          | Some a, Some b -> resolve a = resolve b
          | _ -> false)
        img.Layout.code)

let () =
  Alcotest.run "fuzz"
    [ ( "whole-program properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_generated_programs_run;
            prop_machine_matches_interp;
            prop_scheduler_preserves_programs;
            prop_recover_roundtrip;
            prop_transform_all_sites;
            prop_transformed_lint_clean;
            prop_encoding_whole_images
          ] )
    ]
