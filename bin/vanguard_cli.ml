(* Command-line driver: run benchmarks, inspect profiles and
   transformations, and regenerate the paper's experiments. *)

open Bv_bpred
open Bv_harness
open Bv_ir
open Bv_pipeline
open Bv_workloads
open Cmdliner

let spec_of_name name =
  match Suites.find name with
  | Some s -> Ok s
  | None ->
    Error
      (Printf.sprintf "unknown benchmark %s (try `vanguard_cli list`)" name)

let bench_arg =
  let doc = "Benchmark name (see `vanguard_cli list`)." in
  Arg.(required & opt (some string) None & info [ "b"; "benchmark" ] ~doc)

let width_arg =
  let doc = "Machine width: 2, 4 or 8." in
  Arg.(value & opt int 4 & info [ "w"; "width" ] ~doc)

let input_arg =
  let doc = "REF input index (1-based; 0 is the TRAIN input)." in
  Arg.(value & opt int 1 & info [ "i"; "input" ] ~doc)

let predictor_arg =
  let doc = "Branch predictor (bimodal, gshare, tournament, tage, isl-tage, \
             perfect)." in
  let parse s =
    match Kind.of_name s with
    | Some k -> Ok k
    | None -> Error (`Msg ("unknown predictor " ^ s))
  in
  let print ppf k = Format.pp_print_string ppf (Kind.name k) in
  Arg.(
    value
    & opt (conv (parse, print)) Kind.Tournament
    & info [ "p"; "predictor" ] ~doc)

(* ------------------------------------------------------------ telemetry *)

let json_arg =
  let doc = "Write a structured JSON report to $(docv) ('-' for stdout)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")

let trace_arg =
  let doc =
    "Write a Chrome/Perfetto trace of both runs to $(docv) ('-' for \
     stdout); open it at ui.perfetto.dev or chrome://tracing."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")

let positive =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | _ -> Error (`Msg (Printf.sprintf "expected a positive integer, got %s" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let sample_interval_arg =
  let doc = "Interval-sampler window in cycles (for --json)." in
  Arg.(
    value
    & opt (some positive) None
    & info [ "sample-interval" ] ~doc ~docv:"CYCLES")

(* -------------------------------------------- sampling & compilation *)

let sample_mode_arg =
  let doc =
    "SMARTS-style interval sampling: simulate short detailed windows, \
     functionally fast-forward between them (predictors and caches stay \
     warm), and report whole-run estimates with 95% confidence \
     intervals. Architectural results stay exact."
  in
  Arg.(value & flag & info [ "sample-mode" ] ~doc)

let sample_period_arg =
  let doc = "Sampling period in instructions (with --sample-mode)." in
  Arg.(
    value
    & opt positive Machine.default_sample_params.Machine.sp_period
    & info [ "sample-period" ] ~doc ~docv:"INSTRS")

let sample_detail_arg =
  let doc = "Detailed (measured) instructions per period." in
  Arg.(
    value
    & opt positive Machine.default_sample_params.Machine.sp_detail
    & info [ "sample-detail" ] ~doc ~docv:"INSTRS")

let sample_warmup_arg =
  let doc = "Detailed warmup instructions before each measured window." in
  Arg.(
    value
    & opt positive Machine.default_sample_params.Machine.sp_warmup
    & info [ "sample-warmup" ] ~doc ~docv:"INSTRS")

let no_compile_arg =
  let doc =
    "Disable the block-compiled fast path and simulate with interpreted \
     dispatch (results are byte-identical either way; this is a \
     performance switch). BV_NO_COMPILE=1 does the same globally."
  in
  Arg.(value & flag & info [ "no-compile" ] ~doc)

let sample_params_of ~period ~detail ~warmup =
  { Machine.sp_period = period; sp_detail = detail; sp_warmup = warmup }

let check_identity_arg =
  let doc =
    "Verify that the block-compiled fast path produces a byte-identical \
     result to interpreted dispatch for this configuration (both sides of \
     the transform), then exit. Non-zero exit on divergence. CI greps the \
     identity ok:/error: line."
  in
  Arg.(value & flag & info [ "check-identity" ] ~doc)

let write_json path json =
  if path = "-" then Bv_obs.Json.to_channel ~indent:true stdout json
  else
    try
      Out_channel.with_open_text path (fun oc ->
          Bv_obs.Json.to_channel ~indent:true oc json)
    with Sys_error e ->
      prerr_endline ("error: cannot write " ^ e);
      exit 1

let obj_add json fields =
  match json with
  | Bv_obs.Json.Obj base -> Bv_obs.Json.Obj (base @ fields)
  | other -> other

(* Every --json emitter reports the run's DAG provenance: how many
   pipeline nodes were memo/store hits, computed here, or computed by a
   cooperating process. Read at report-construction time — i.e. after
   the command's work is done. *)
let dag_field () = ("dag", Sim.counters_json (Sim.the ()))

(* ------------------------------------------------------- interprocedural *)

let interproc_arg =
  let doc =
    "Interprocedural mode: compute per-procedure summaries (register mod \
     sets, memory-write footprints, purity classes) bottom-up over the \
     call-graph SCCs and let the analyses use them at calls instead of \
     worst-case havoc."
  in
  Arg.(
    value & flag
    & info [ "interproc" ] ~doc ~env:(Cmd.Env.info "BV_INTERPROC"))

(* Summaries are content-hash cached in the session's DAG store under
   the "summary" kind, keyed by the whole program: the summaries
   subcommand and the summary-stats field of the --json emitters all
   route through this node, so a re-run on an unchanged program is a
   warm hit. *)
let summary_node name prog =
  match
    Sim.dag_map (Sim.the ()) ~kind:"summary"
      ~label:(fun (n, _) -> n)
      (fun ((_ : string), prog) ->
        let env = Bv_analysis.Summary.compute prog in
        ( Bv_analysis.Summary.procs env,
          Bv_analysis.Summary.stats_json env,
          Bv_analysis.Summary.to_json env ))
      [ (name, prog) ]
  with
  | [ node ] -> node
  | _ -> assert false

let summary_stats_field name prog =
  let _, stats, _ = summary_node name prog in
  ("summary_stats", stats)

(* ----------------------------------------------------------------- list *)

let list_cmd =
  let run () =
    print_endline "Benchmarks:";
    List.iter
      (fun s ->
        Printf.printf "  %-12s %s\n" s.Spec.name (Spec.suite_name s.Spec.suite))
      Suites.all;
    print_endline "\nExperiments:";
    List.iter
      (fun (id, desc, _) -> Printf.printf "  %-10s %s\n" id desc)
      Experiments.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks and experiments.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ run *)

let run_cmd =
  let run name width input predictor json trace sample_interval sample_mode
      sample_period sample_detail sample_warmup no_compile check_identity =
    if no_compile then Machine.set_compile_default false;
    match spec_of_name name with
    | Error e -> prerr_endline e; 1
    | Ok spec when check_identity -> (
      match
        Sim.compiled_check ~predictor (Sim.the ()) spec ~input ~width
      with
      | idt ->
        Printf.printf
          "identity ok: %s w%d %s input %d (base %d cycles, exp %d cycles)\n"
          name width (Kind.name predictor) input idt.Runner.idt_base_cycles
          idt.Runner.idt_exp_cycles;
        0
      | exception Failure msg ->
        Printf.printf "identity error: %s\n" msg;
        1)
    | Ok spec when sample_mode ->
      let b = Sim.prepare ~predictor (Sim.the ()) spec in
      let params =
        sample_params_of ~period:sample_period ~detail:sample_detail
          ~warmup:sample_warmup
      in
      let sp = Runner.simulate_sampled ~predictor ~params b ~input ~width in
      let ppf =
        if json = Some "-" then Format.err_formatter else Format.std_formatter
      in
      Format.fprintf ppf
        "%s, %d-wide, %s, input %d, sampled (period %d, detail %d, warmup \
         %d)@.@."
        name width (Kind.name predictor) input sample_period sample_detail
        sample_warmup;
      let show tag (s : Machine.sampled) =
        let e = s.Machine.sam_estimate in
        Format.fprintf ppf "--- %s ---@." tag;
        Format.fprintf ppf "windows %d, coverage %.2f%% of %d instructions@."
          (List.length e.Smarts.est_windows)
          e.Smarts.est_coverage_pct e.Smarts.est_total_instrs;
        Format.fprintf ppf
          "estimated cycles %.0f, CPI %.4f \xc2\xb1 %.4f (95%% CI, \xc2\xb1 \
           %.2f%%)@.@."
          e.Smarts.est_cycles e.Smarts.est_cpi.Smarts.mean
          (e.Smarts.est_cpi.Smarts.ci_high -. e.Smarts.est_cpi.Smarts.mean)
          e.Smarts.est_cpi.Smarts.rel_err_pct
      in
      show "baseline" sp.Runner.samp_base;
      show "decomposed-branch (vanguard)" sp.Runner.samp_exp;
      Format.fprintf ppf "estimated speedup: %+.2f%%@."
        sp.Runner.samp_speedup_pct;
      (match json with
      | None -> ()
      | Some path ->
        let side (s : Machine.sampled) =
          Machine.result_to_json ~sampled:s.Machine.sam_estimate
            s.Machine.sam_result
        in
        write_json path
          (Bv_obs.Json.Obj
             [ ("schema_version", Bv_obs.Json.Int Bv_obs.Json.schema_version);
               ("benchmark", Bv_obs.Json.String name);
               ("suite", Bv_obs.Json.String (Spec.suite_name spec.Spec.suite));
               ("width", Bv_obs.Json.Int width);
               ("predictor", Bv_obs.Json.String (Kind.name predictor));
               ("input", Bv_obs.Json.Int input);
               ("scale", Bv_obs.Json.float (Runner.scale ()));
               ( "sample_params",
                 Bv_obs.Json.Obj
                   [ ("period", Bv_obs.Json.Int sample_period);
                     ("detail", Bv_obs.Json.Int sample_detail);
                     ("warmup", Bv_obs.Json.Int sample_warmup)
                   ] );
               ("speedup_pct", Bv_obs.Json.float sp.Runner.samp_speedup_pct);
               ("baseline", side sp.Runner.samp_base);
               ("experimental", side sp.Runner.samp_exp);
               summary_stats_field name (Gen.generate ~input spec);
               dag_field ()
             ]));
      0
    | Ok spec ->
      let b = Sim.prepare ~predictor (Sim.the ()) spec in
      let telemetry = json <> None || trace <> None in
      let pair, inst, traces =
        if telemetry then begin
          (* The instrumented path re-simulates with samplers, cycle
             accounting and (when --trace) Perfetto collectors attached;
             pids 1/2 keep the two runs side by side in one trace
             document. *)
          let collector pid process_name =
            if trace = None then None
            else Some (Perfetto.create ~pid ~process_name ())
          in
          let base_tr = collector 1 "baseline" in
          let exp_tr = collector 2 "vanguard" in
          let tap = Option.map (fun t ev -> Perfetto.on_event t ev) in
          let inst =
            Runner.simulate_instrumented ~predictor ?sample_interval
              ?on_base_event:(tap base_tr) ?on_exp_event:(tap exp_tr) b
              ~input ~width
          in
          ( inst.Runner.pair,
            Some inst,
            (match (base_tr, exp_tr) with
            | Some bt, Some et -> Some (bt, et)
            | _ -> None) )
        end
        else (Runner.simulate ~predictor b ~input ~width, None, None)
      in
      (* With --json - the report owns stdout; the text goes to stderr. *)
      let ppf =
        if json = Some "-" then Format.err_formatter else Format.std_formatter
      in
      let show tag (r : Machine.result) =
        Format.fprintf ppf "--- %s ---@.%a@.L1-D miss rate %.3f@.@." tag
          Stats.pp r.Machine.stats
          (Bv_cache.Sa_cache.miss_rate (Bv_cache.Hierarchy.l1d r.Machine.hierarchy))
      in
      Format.fprintf ppf "%s, %d-wide, %s, input %d@.@." name width
        (Kind.name predictor) input;
      show "baseline" pair.Runner.base;
      show "decomposed-branch (vanguard)" pair.Runner.exp;
      Format.fprintf ppf "speedup: %+.2f%%@." pair.Runner.speedup_pct;
      (match (json, inst) with
      | Some path, Some i ->
        let side acct samples v =
          obj_add v
            [ ("samples", Sampler.to_json samples);
              ("cpi_stack", Acct.cpi_stack_json acct);
              ("top_branches", Acct.top_branches_json acct)
            ]
        in
        let report =
          match Runner.pair_to_json pair with
          | Bv_obs.Json.Obj fields ->
            Bv_obs.Json.Obj
              (List.map
                 (function
                   | "baseline", v ->
                     ( "baseline",
                       side i.Runner.base_acct i.Runner.base_samples v )
                   | "experimental", v ->
                     ( "experimental",
                       side i.Runner.exp_acct i.Runner.exp_samples v )
                   | field -> field)
                 fields)
          | other -> other
        in
        write_json path
          (obj_add
             (Bv_obs.Json.Obj
                [ ("schema_version", Bv_obs.Json.Int Bv_obs.Json.schema_version);
                  ("benchmark", Bv_obs.Json.String name);
                  ("suite", Bv_obs.Json.String (Spec.suite_name spec.Spec.suite));
                  ("width", Bv_obs.Json.Int width);
                  ("predictor", Bv_obs.Json.String (Kind.name predictor));
                  ("input", Bv_obs.Json.Int input);
                  ("scale", Bv_obs.Json.float (Runner.scale ()));
                  summary_stats_field name (Gen.generate ~input spec);
                  dag_field ()
                ])
             (match report with Bv_obs.Json.Obj f -> f | _ -> []))
      | _ -> ());
      (match (trace, traces, inst) with
      | Some path, Some (base_tr, exp_tr), Some i ->
        (* counter tracks ride the same pids as the span lanes, so the
           CPI stack overlays each run's instruction view *)
        write_json path
          (Bv_obs.Trace_event.document
             (Perfetto.events base_tr
             @ Perfetto.cpi_counter_events ~pid:1
                 (Sampler.windows i.Runner.base_samples)
             @ Perfetto.events exp_tr
             @ Perfetto.cpi_counter_events ~pid:2
                 (Sampler.windows i.Runner.exp_samples)))
      | _ -> ());
      0
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Simulate one benchmark, baseline vs transformed, and report \
          (optionally as JSON and a Perfetto trace).")
    Term.(
      const run $ bench_arg $ width_arg $ input_arg $ predictor_arg
      $ json_arg $ trace_arg $ sample_interval_arg $ sample_mode_arg
      $ sample_period_arg $ sample_detail_arg $ sample_warmup_arg
      $ no_compile_arg $ check_identity_arg)

(* ------------------------------------------------------ sample-validate *)

(* The accuracy gate behind --sample-mode: estimated CPI vs the exact
   full-run CPI on every benchmark, both sides of the transform. CI
   greps the ok:/error: lines. *)
let sample_validate_cmd =
  let run width predictor input max_cpi_err sample_period sample_detail
      sample_warmup json =
    let t = Sim.the () in
    let params =
      sample_params_of ~period:sample_period ~detail:sample_detail
        ~warmup:sample_warmup
    in
    let cpi (s : Stats.t) =
      Float.of_int s.Stats.cycles /. Float.of_int (max 1 (Stats.retired s))
    in
    let err est full =
      if full = 0.0 then 0.0 else 100.0 *. Float.abs (est -. full) /. full
    in
    let rows =
      List.map
        (fun spec ->
          let full = Sim.summary ~predictor t spec ~input ~width in
          let samp = Sim.sampled ~predictor ~params t spec ~input ~width in
          let base_err =
            err samp.Runner.ss_base.Smarts.est_cpi.Smarts.mean
              (cpi full.Runner.sum_base)
          in
          let exp_err =
            err samp.Runner.ss_exp.Smarts.est_cpi.Smarts.mean
              (cpi full.Runner.sum_exp)
          in
          (spec.Spec.name, base_err, exp_err))
        Suites.all
    in
    let failures = ref 0 in
    List.iter
      (fun (name, base_err, exp_err) ->
        let worst = Float.max base_err exp_err in
        if worst > max_cpi_err then begin
          incr failures;
          Printf.printf
            "sample-validate error: %s CPI error %.2f%% exceeds bound %.2f%% \
             (base %.2f%%, exp %.2f%%)\n"
            name worst max_cpi_err base_err exp_err
        end
        else
          Printf.printf
            "sample-validate ok: %s base %.2f%% exp %.2f%% (bound %.2f%%)\n"
            name base_err exp_err max_cpi_err)
      rows;
    let worst =
      List.fold_left
        (fun acc (_, b, e) -> Float.max acc (Float.max b e))
        0.0 rows
    in
    Printf.printf
      "sample-validate summary: %d benchmarks, worst CPI error %.2f%%, bound \
       %.2f%%, %d violation(s)\n"
      (List.length rows) worst max_cpi_err !failures;
    (match json with
    | None -> ()
    | Some path ->
      write_json path
        (Bv_obs.Json.Obj
           [ ("schema_version", Bv_obs.Json.Int Bv_obs.Json.schema_version);
             ("width", Bv_obs.Json.Int width);
             ("predictor", Bv_obs.Json.String (Kind.name predictor));
             ("input", Bv_obs.Json.Int input);
             ("scale", Bv_obs.Json.float (Runner.scale ()));
             ( "sample_params",
               Bv_obs.Json.Obj
                 [ ("period", Bv_obs.Json.Int sample_period);
                   ("detail", Bv_obs.Json.Int sample_detail);
                   ("warmup", Bv_obs.Json.Int sample_warmup)
                 ] );
             ("max_cpi_err_pct", Bv_obs.Json.float max_cpi_err);
             ("worst_cpi_err_pct", Bv_obs.Json.float worst);
             ("violations", Bv_obs.Json.Int !failures);
             ( "benchmarks",
               Bv_obs.Json.List
                 (List.map
                    (fun (name, base_err, exp_err) ->
                      Bv_obs.Json.Obj
                        [ ("benchmark", Bv_obs.Json.String name);
                          ("base_cpi_err_pct", Bv_obs.Json.float base_err);
                          ("exp_cpi_err_pct", Bv_obs.Json.float exp_err)
                        ])
                    rows) );
             dag_field ()
           ]));
    if !failures > 0 then 1 else 0
  in
  let max_cpi_err_arg =
    let doc = "Maximum tolerated |sampled - full| CPI error, in percent." in
    Arg.(value & opt float 10.0 & info [ "max-cpi-err" ] ~doc ~docv:"PCT")
  in
  Cmd.v
    (Cmd.info "sample-validate"
       ~doc:
         "Validate interval sampling against exact full runs on every \
          benchmark: compare estimated vs measured CPI on both sides and \
          fail if any error exceeds the bound.")
    Term.(
      const run $ width_arg $ predictor_arg $ input_arg $ max_cpi_err_arg
      $ sample_period_arg $ sample_detail_arg $ sample_warmup_arg $ json_arg)

(* --------------------------------------------------------------- report *)

(* Where did the cycles go? Baseline vs decomposed CPI stacks side by
   side, plus the per-site attribution join that shows which branches
   the transform actually helped. *)
let report_cmd =
  let run name width input all predictor top json =
    match spec_of_name name with
    | Error e -> prerr_endline e; 1
    | Ok spec ->
      let sim = Sim.the () in
      let inputs = if all then Runner.input_indices () else [ input ] in
      let acc =
        (* each accounted per-input run is a DAG node (flat tables, so
           the store holds them whole); they fan out across the fork
           pool with claim arbitration and merge pointwise *)
        match Sim.accounted_list ~predictor sim spec ~inputs ~width with
        | [] -> assert false
        | first :: rest -> List.fold_left Runner.merge_accounted first rest
      in
      let base = acc.Runner.acc_base and exp = acc.Runner.acc_exp in
      let ppf =
        if json = Some "-" then Format.err_formatter else Format.std_formatter
      in
      Format.fprintf ppf "%s, %d-wide, %s, input%s %s@."
        name width (Kind.name predictor)
        (if List.length inputs > 1 then "s" else "")
        (String.concat "," (List.map string_of_int inputs));
      Format.fprintf ppf "speedup: %+.2f%%@.@." acc.Runner.acc_speedup_pct;
      let btotal = acc.Runner.acc_base_cycles
      and etotal = acc.Runner.acc_exp_cycles in
      let pct total n =
        if total > 0 then Text.f1 (100.0 *. Float.of_int n /. Float.of_int total)
        else "-"
      in
      let stack_rows =
        List.init Acct.n_components (fun c ->
            let bn = base.Acct.components.(c)
            and en = exp.Acct.components.(c) in
            [ Acct.component_names.(c);
              string_of_int bn; pct btotal bn;
              string_of_int en; pct etotal en;
              Printf.sprintf "%+d" (en - bn)
            ])
        @ [ [ "total"; string_of_int btotal; "100.0"; string_of_int etotal;
              "100.0"; Printf.sprintf "%+d" (etotal - btotal) ]
          ]
      in
      Format.fprintf ppf "%s@."
        (Text.render
           ~headers:[ "component"; "baseline"; "%"; "vanguard"; "%"; "delta" ]
           stack_rows);
      (* Per-site join: a baseline branch and the resolve that replaced
         it share a site id, so rows line up across the transform. *)
      let base_sites = Acct.by_site base and exp_sites = Acct.by_site exp in
      let find sites site =
        List.find_opt (fun sa -> sa.Acct.sa_site = site) sites
      in
      let sites =
        List.sort_uniq compare
          (List.map (fun sa -> sa.Acct.sa_site) (base_sites @ exp_sites))
      in
      let joined =
        List.map
          (fun site -> (site, find base_sites site, find exp_sites site))
          sites
      in
      let recovery = function Some sa -> sa.Acct.sa_recovery | None -> 0 in
      let ranked =
        List.sort
          (fun (_, b1, e1) (_, b2, e2) ->
            compare
              (recovery b2 + recovery e2, recovery b1 + recovery e1)
              (recovery b1 + recovery e1, recovery b2 + recovery e2))
          joined
      in
      let shown =
        List.filteri (fun i _ -> i < top)
          (List.filter
             (fun (_, b_, e_) -> recovery b_ > 0 || recovery e_ > 0)
             ranked)
      in
      let misp_rate = function
        | Some sa when sa.Acct.sa_execs > 0 ->
          Text.f3
            (Float.of_int sa.Acct.sa_mispredicts
            /. Float.of_int sa.Acct.sa_execs)
        | _ -> "-"
      in
      let execs = function Some sa -> sa.Acct.sa_execs | None -> 0 in
      if shown <> [] then
        Format.fprintf ppf
          "top branch sites by recovery cycles (baseline vs vanguard):@.%s@."
          (Text.render
             ~headers:
               [ "site"; "b.execs"; "b.misp"; "b.recovery"; "v.execs";
                 "v.misp"; "v.recovery"; "d.recovery"
               ]
             (List.map
                (fun (site, b_, e_) ->
                  [ string_of_int site;
                    string_of_int (execs b_); misp_rate b_;
                    string_of_int (recovery b_);
                    string_of_int (execs e_); misp_rate e_;
                    string_of_int (recovery e_);
                    Printf.sprintf "%+d" (recovery e_ - recovery b_)
                  ])
                shown));
      (match json with
      | None -> ()
      | Some path ->
        let open Bv_obs.Json in
        let site_json (site, b_, e_) =
          let side tag = function
            | None -> []
            | Some sa ->
              [ (tag ^ "_execs", Int sa.Acct.sa_execs);
                (tag ^ "_mispredicts", Int sa.Acct.sa_mispredicts);
                (tag ^ "_recovery_cycles", Int sa.Acct.sa_recovery)
              ]
          in
          Obj
            (("site", Int site)
            :: (side "baseline" b_ @ side "vanguard" e_
               @ [ ( "delta_recovery_cycles",
                     Int (recovery e_ - recovery b_) )
                 ]))
        in
        write_json path
          (Obj
             [ ("schema_version", Int schema_version);
               ("benchmark", String name);
               ("suite", String (Spec.suite_name spec.Spec.suite));
               ("width", Int width);
               ("predictor", String (Kind.name predictor));
               ("inputs", List (List.map (fun i -> Int i) inputs));
               ("scale", float (Runner.scale ()));
               ("speedup_pct", float acc.Runner.acc_speedup_pct);
               ("baseline", Acct.to_json base);
               ("vanguard", Acct.to_json exp);
               ("sites", List (List.map site_json ranked));
               summary_stats_field name (Gen.generate ~input:(List.hd inputs) spec);
               dag_field ()
             ]));
      0
  in
  let all_arg =
    let doc = "Aggregate over all REF inputs (overrides --input)." in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let top_arg =
    let doc = "Branch sites to show in the attribution table." in
    Arg.(value & opt int 10 & info [ "top" ] ~doc ~docv:"N")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Cycle-accounting report: baseline-vs-decomposed CPI stacks and \
          per-branch-site attribution of recovery cycles.")
    Term.(
      const run $ bench_arg $ width_arg $ input_arg $ all_arg $ predictor_arg
      $ top_arg $ json_arg)

(* -------------------------------------------------------------- profile *)

let profile_cmd =
  let run name predictor =
    match spec_of_name name with
    | Error e -> prerr_endline e; 1
    | Ok spec ->
      let b = Sim.prepare ~predictor (Sim.the ()) spec in
      Format.printf "%a@." Bv_profile.Profile.pp (Runner.profile b);
      0
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Profile a benchmark's TRAIN input: per-site bias and \
             predictability.")
    Term.(const run $ bench_arg $ predictor_arg)

(* ------------------------------------------------------------ transform *)

let transform_cmd =
  let run name disasm =
    match spec_of_name name with
    | Error e -> prerr_endline e; 1
    | Ok spec ->
      let b = Sim.bench (Sim.the ()) spec in
      let sel = Runner.selection b in
      let tr = Runner.transform b in
      Format.printf
        "%s: %d/%d forward branches selected (PBC %.1f%%), %d skipped@."
        name
        (List.length sel.Vanguard.Select.candidates)
        sel.Vanguard.Select.static_forward_branches
        (Vanguard.Select.pbc sel)
        (List.length tr.Vanguard.Transform.skipped);
      List.iter
        (fun (id, why) -> Format.printf "  skipped site %d: %s@." id why)
        tr.Vanguard.Transform.skipped;
      List.iter
        (fun r ->
          Format.printf
            "  site %3d: slice %d, hoisted %d/%d (nt/t), PHI %.0f%%@."
            r.Vanguard.Transform.site r.Vanguard.Transform.slice_size
            r.Vanguard.Transform.hoisted_not_taken
            r.Vanguard.Transform.hoisted_taken
            (Vanguard.Transform.phi r))
        tr.Vanguard.Transform.reports;
      Format.printf "static instructions: %d -> %d (PISCS %.1f%%)@."
        tr.Vanguard.Transform.static_instrs_before
        tr.Vanguard.Transform.static_instrs_after (Runner.piscs b);
      if disasm then
        Format.printf "@.%a@." Layout.pp_disassembly
          (Runner.experimental_program b ~input:1);
      0
  in
  let disasm_arg =
    Arg.(value & flag & info [ "disasm" ] ~doc:"Print the transformed code.")
  in
  Cmd.v
    (Cmd.info "transform"
       ~doc:"Show candidate selection and transformation details.")
    Term.(const run $ bench_arg $ disasm_arg)

(* ----------------------------------------------------------- experiment *)

let experiment_cmd =
  let run ids json jobs =
    (match jobs with
    | Some n -> Sim.set_jobs (Sim.the ()) n
    | None -> ());
    (* With --json - the report owns stdout; the tables go to stderr. *)
    let ppf =
      if json = Some "-" then Format.err_formatter else Format.std_formatter
    in
    let ids = if ids = [ "all" ] then List.map (fun (i, _, _) -> i)
                  Experiments.all
              else ids in
    ignore (Experiments.drain_tables ());
    let entries = ref [] in
    let rec go = function
      | [] -> 0
      | id :: rest ->
        (match Experiments.find id with
        | Some f ->
          let t0 = Unix.gettimeofday () in
          f ppf;
          let seconds = Unix.gettimeofday () -. t0 in
          entries :=
            Bv_obs.Json.Obj
              [ ("id", Bv_obs.Json.String id);
                ("seconds", Bv_obs.Json.float seconds);
                ( "tables",
                  Bv_obs.Json.List
                    (List.map Experiments.table_to_json
                       (Experiments.drain_tables ())) )
              ]
            :: !entries;
          go rest
        | None ->
          Printf.eprintf "unknown experiment %s\n" id;
          1)
    in
    let status = go ids in
    (match json with
    | Some path when status = 0 ->
      write_json path
        (Bv_obs.Json.Obj
           [ ("schema_version", Bv_obs.Json.Int Bv_obs.Json.schema_version);
             ("scale", Bv_obs.Json.float (Runner.scale ()));
             ("experiments", Bv_obs.Json.List (List.rev !entries));
             dag_field ()
           ])
    | _ -> ());
    status
  in
  let ids_arg =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"EXPERIMENT")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
           & info [ "j"; "jobs" ] ~docv:"N"
               ~doc:"Worker processes for row-level parallelism (default \
                     \\$(b,BV_JOBS) or 1). Output is byte-identical to a \
                     serial run.")
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate the paper's tables and figures ('all' for every \
             one).")
    Term.(const run $ ids_arg $ json_arg $ jobs_arg)

(* ------------------------------------------------------------------ dot *)

let dot_cmd =
  let run name transformed callgraph =
    match spec_of_name name with
    | Error e -> prerr_endline e; 1
    | Ok spec ->
      let program =
        if transformed then
          (Runner.transform (Sim.bench (Sim.the ()) spec))
            .Vanguard.Transform.program
        else Gen.generate ~input:1 spec
      in
      if callgraph then Format.printf "%a@." Bv_ir.Dot.callgraph program
      else Format.printf "%a@." (Bv_ir.Dot.program ~bodies:false) program;
      0
  in
  let transformed_arg =
    Arg.(value & flag & info [ "transformed" ]
           ~doc:"Export the decomposed-branch version.")
  in
  let callgraph_arg =
    Arg.(value & flag & info [ "callgraph" ]
           ~doc:
             "Export the SCC-condensed call graph instead of the CFG \
              (recursive components highlighted).")
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:"Export a benchmark's CFG as Graphviz (pipe into `dot -Tsvg`).")
    Term.(const run $ bench_arg $ transformed_arg $ callgraph_arg)

(* ---------------------------------------------------------------- trace *)

let trace_cmd =
  let run name width rows transformed =
    match spec_of_name name with
    | Error e -> prerr_endline e; 1
    | Ok spec ->
      let b = Sim.bench (Sim.the ()) spec in
      let image =
        if transformed then Runner.experimental_program b ~input:1
        else Runner.baseline_program b ~input:1
      in
      let config = Config.make ~width () in
      let trace, result = Trace.collect ~max_rows:rows ~config image in
      Format.printf "%a@." Trace.pp trace;
      Format.printf "@.%a@." Stats.pp result.Machine.stats;
      0
  in
  let rows_arg =
    Arg.(value & opt int 60 & info [ "n"; "rows" ]
           ~doc:"Instructions to trace.")
  in
  let transformed_arg =
    Arg.(value & flag & info [ "transformed" ]
           ~doc:"Trace the decomposed-branch version.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Per-instruction pipeline trace (fetch/issue/complete cycles).")
    Term.(const run $ bench_arg $ width_arg $ rows_arg $ transformed_arg)

(* ----------------------------------------------------------------- lint *)

let werror_arg =
  Arg.(
    value & flag
    & info [ "werror" ]
        ~doc:
          "Treat warning-severity diagnostics as errors for the exit \
           status. Info diagnostics never affect it.")

let lint_cmd =
  let module Diagnostic = Bv_analysis.Diagnostic in
  let run files bench suites dbb_entries interproc werror json =
    let targets = ref [] in
    let failed = ref false in
    let add name prog = targets := (name, prog) :: !targets in
    List.iter
      (fun path ->
        match In_channel.with_open_text path In_channel.input_all with
        | exception Sys_error e ->
          prerr_endline e;
          failed := true
        | text -> (
          match Bv_ir.Asm.program text with
          | exception Bv_ir.Asm.Parse_error (line, msg) ->
            Printf.eprintf "%s:%d: %s\n" path line msg;
            failed := true
          | prog -> add path prog))
      files;
    (match bench with
    | None -> ()
    | Some name -> (
      match spec_of_name name with
      | Error e ->
        prerr_endline e;
        failed := true
      | Ok spec ->
        add (name ^ ":baseline") (Gen.generate ~input:1 spec);
        add (name ^ ":transformed")
          (Runner.transform (Sim.bench (Sim.the ()) spec))
            .Vanguard.Transform.program));
    if suites then
      List.iter
        (fun suite ->
          match Suites.of_suite suite with
          | [] -> ()
          | spec :: _ ->
            add
              (Printf.sprintf "%s:%s:transformed" (Spec.suite_name suite)
                 spec.Spec.name)
              (Runner.transform (Sim.bench (Sim.the ()) spec))
                .Vanguard.Transform.program)
        [ Spec.Int_2006; Spec.Fp_2006; Spec.Int_2000; Spec.Fp_2000 ];
    let targets = List.rev !targets in
    if targets = [] && not !failed then begin
      prerr_endline
        "nothing to lint: pass FILE arguments, -b BENCH, or --suites";
      failed := true
    end;
    let results =
      List.map
        (fun (name, prog) ->
          let summaries =
            if interproc then Some (Bv_analysis.Summary.compute prog)
            else None
          in
          ( name,
            prog,
            Bv_analysis.Speculation.verify ~dbb_entries
              ~scratch:Vanguard.Transform.default_temp_pool ?summaries prog ))
        targets
    in
    let count sev =
      List.fold_left
        (fun n (_, _, ds) -> n + Diagnostic.count sev ds)
        0 results
    in
    let errors = count Diagnostic.Error in
    let warnings = count Diagnostic.Warning in
    (match json with
    | Some path ->
      write_json path
        (Bv_obs.Json.Obj
           [ ("schema_version", Bv_obs.Json.Int Bv_obs.Json.schema_version);
             ("dbb_entries", Bv_obs.Json.Int dbb_entries);
             ("interproc", Bv_obs.Json.Bool interproc);
             dag_field ();
             ( "targets",
               Bv_obs.Json.List
                 (List.map
                    (fun (name, prog, diags) ->
                      obj_add
                        (Bv_obs.Json.Obj
                           [ ("target", Bv_obs.Json.String name);
                             summary_stats_field name prog
                           ])
                        (match Diagnostic.report_to_json diags with
                        | Bv_obs.Json.Obj fields -> fields
                        | _ -> []))
                    results) )
           ])
    | None ->
      List.iter
        (fun (name, _, diags) ->
          if diags = [] then Format.printf "%s: clean@." name
          else
            List.iter
              (fun d -> Format.printf "%s: %a@." name Diagnostic.pp d)
              (Diagnostic.sort diags))
        results;
      Format.printf "%d target(s): %d error(s), %d warning(s), %d info(s)@."
        (List.length results) errors warnings
        (count Diagnostic.Info));
    if !failed || errors > 0 || (werror && warnings > 0) then 1 else 0
  in
  let files_arg =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:"Hidden-ISA source files (see `vanguard_cli assemble`).")
  in
  let bench_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "b"; "benchmark" ]
          ~doc:
            "Lint a benchmark's baseline and decomposed-branch programs \
             (see `vanguard_cli list`).")
  in
  let suites_arg =
    Arg.(
      value & flag
      & info [ "suites" ]
          ~doc:
            "Lint the transformed program of one workload per benchmark \
             suite.")
  in
  let dbb_arg =
    Arg.(
      value & opt int 16
      & info [ "dbb" ] ~docv:"ENTRIES"
          ~doc:"Decoupled-branch-buffer capacity for the occupancy check.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically verify predict/resolve speculation safety; exits \
          non-zero on any error-severity diagnostic.")
    Term.(
      const run $ files_arg $ bench_opt_arg $ suites_arg $ dbb_arg
      $ interproc_arg $ werror_arg $ json_arg)

(* ---------------------------------------------------------------- prove *)

let prove_cmd =
  let module Diagnostic = Bv_analysis.Diagnostic in
  let module Equiv = Bv_analysis.Equiv in
  let scratch = Vanguard.Transform.default_temp_pool in
  let run files benches fuzz max_paths interproc werror json =
    let failed = ref false in
    let results = ref [] in
    let add name diags = results := (name, diags) :: !results in
    List.iter
      (fun path ->
        match In_channel.with_open_text path In_channel.input_all with
        | exception Sys_error e ->
          prerr_endline e;
          failed := true
        | text -> (
          match Bv_ir.Asm.program text with
          | exception Bv_ir.Asm.Parse_error (line, msg) ->
            Printf.eprintf "%s:%d: %s\n" path line msg;
            failed := true
          | prog ->
            (* no reference program for a standalone file: check the
               internal consistency of its predict/resolve regions *)
            add path (Equiv.verify_self ~scratch ~max_paths prog)))
      files;
    (* Each bench proof and each fuzz seed is a DAG node: proofs fan out
       across the session's workers, persist in the store, and re-prove
       nothing on an unchanged re-run. The verdict diagnostics are plain
       data, so the store holds them whole. *)
    List.iter
      (function
        | Error e ->
          prerr_endline e;
          failed := true
        | Ok pairs -> List.iter (fun (n, ds) -> add n ds) pairs)
      (Sim.dag_map (Sim.the ()) ~kind:"prove"
         ~label:(fun (name, _, _) -> name)
         (fun (name, max_paths, interproc) ->
           match spec_of_name name with
           | Error e -> Error e
           | Ok spec ->
             (* the harness transforms the TRAIN program; regenerate it as
                the reference and validate the transform output against it *)
             let original = Gen.generate ~input:0 spec in
             let transformed =
               if interproc then
                 (* re-transform with summaries: newly eligible
                    cross-call sites must prove out too *)
                 let summaries = Bv_analysis.Summary.compute original in
                 (Vanguard.Transform.apply ~summaries
                    ~exit_live:Gen.live_at_exit
                    ~candidates:
                      (Runner.selection (Sim.bench (Sim.the ()) spec))
                        .Vanguard.Select.candidates
                    original)
                   .Vanguard.Transform.program
               else
                 (Runner.transform (Sim.bench (Sim.the ()) spec))
                   .Vanguard.Transform.program
             in
             Ok
               [ ( name ^ ":transform",
                   Equiv.verify ~scratch ~exit_live:Gen.live_at_exit
                     ~max_paths ~original transformed );
                 ( name ^ ":self",
                   Equiv.verify_self ~scratch ~exit_live:Gen.live_at_exit
                     ~max_paths transformed )
               ])
         (List.map (fun name -> (name, max_paths, interproc)) benches));
    (match fuzz with
    | None -> ()
    | Some n ->
      List.iteri
        (fun seed diags -> add (Printf.sprintf "fuzz:%d" seed) diags)
        (Sim.dag_map (Sim.the ()) ~kind:"prove-fuzz"
           ~label:(fun (seed, _, _) -> Printf.sprintf "seed%d" seed)
           (fun (seed, max_paths, interproc) ->
             let prog = Fuzzgen.generate ~seed in
             let image = Layout.program (Program.copy prog) in
             let profile =
               Bv_profile.Profile.collect
                 ~predictor:(Kind.create Kind.Always_not_taken)
                 image
             in
             let candidates =
               (Vanguard.Select.select ~threshold:(-2.0) ~min_executed:0
                  ~profile prog)
                 .Vanguard.Select.candidates
             in
             let summaries =
               if interproc then Some (Bv_analysis.Summary.compute prog)
               else None
             in
             let result = Vanguard.Transform.apply ?summaries ~candidates prog in
             Equiv.verify ~scratch ~max_paths ~original:prog
               result.Vanguard.Transform.program)
           (List.init n (fun seed -> (seed, max_paths, interproc)))));
    let results = List.rev !results in
    if results = [] && not !failed then begin
      prerr_endline
        "nothing to prove: pass FILE arguments, -b BENCH, or --fuzz N";
      failed := true
    end;
    let count sev =
      List.fold_left (fun n (_, ds) -> n + Diagnostic.count sev ds) 0 results
    in
    let errors = count Diagnostic.Error in
    let warnings = count Diagnostic.Warning in
    let flagged =
      List.filter
        (fun (_, ds) ->
          List.exists
            (fun d -> d.Diagnostic.severity <> Diagnostic.Info)
            ds)
        results
    in
    let clean = List.length results - List.length flagged in
    (match json with
    | Some path ->
      let bench_stats =
        List.filter_map
          (fun name ->
            match spec_of_name name with
            | Error _ -> None
            | Ok spec ->
              let _, stats =
                summary_stats_field name (Gen.generate ~input:0 spec)
              in
              Some (name, stats))
          benches
      in
      write_json path
        (Bv_obs.Json.Obj
           [ ("schema_version", Bv_obs.Json.Int Bv_obs.Json.schema_version);
             ("interproc", Bv_obs.Json.Bool interproc);
             ("summary_stats", Bv_obs.Json.Obj bench_stats);
             ("targets_checked", Bv_obs.Json.Int (List.length results));
             ("proven_clean", Bv_obs.Json.Int clean);
             ("errors", Bv_obs.Json.Int errors);
             ("warnings", Bv_obs.Json.Int warnings);
             ("infos", Bv_obs.Json.Int (count Diagnostic.Info));
             dag_field ();
             ( "targets",
               Bv_obs.Json.List
                 (List.map
                    (fun (name, diags) ->
                      obj_add
                        (Bv_obs.Json.Obj
                           [ ("target", Bv_obs.Json.String name) ])
                        (match Diagnostic.report_to_json diags with
                        | Bv_obs.Json.Obj fields -> fields
                        | _ -> []))
                    flagged) )
           ])
    | None ->
      List.iter
        (fun (name, diags) ->
          List.iter
            (fun d -> Format.printf "%s: %a@." name Diagnostic.pp d)
            (Diagnostic.sort diags))
        flagged;
      Format.printf
        "%d target(s) checked, %d proven clean: %d error(s), %d \
         warning(s), %d info(s)@."
        (List.length results) clean errors warnings
        (count Diagnostic.Info));
    if !failed || errors > 0 || (werror && warnings > 0) then 1 else 0
  in
  let files_arg =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:
            "Hidden-ISA source files; with no reference program available \
             they get the self-consistency check only.")
  in
  let bench_opt_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "b"; "benchmark" ]
          ~doc:
            "Prove the benchmark's decomposed-branch program equivalent to \
             its baseline (repeatable; see `vanguard_cli list`).")
  in
  let fuzz_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuzz" ] ~docv:"N"
          ~doc:
            "Generate N seeded fuzz programs, transform each, and prove \
             every transform output equivalent to its original.")
  in
  let max_paths_arg =
    Arg.(
      value & opt int 4096
      & info [ "max-paths" ] ~docv:"N"
          ~doc:
            "Symbolic-path budget per cutpoint region; overflow is \
             reported as an error, never an accept.")
  in
  Cmd.v
    (Cmd.info "prove"
       ~doc:
         "Translation validation: symbolically prove decomposed-branch \
          programs equivalent to their originals; exits non-zero on any \
          counterexample.")
    Term.(
      const run $ files_arg $ bench_opt_arg $ fuzz_arg $ max_paths_arg
      $ interproc_arg $ werror_arg $ json_arg)

(* --------------------------------------------------------------- advise *)

(* Interprocedural advisory gains: sites the summary-off advisor rejected
   that the summary-on advisor recommends with positive savings,
   restricted to call-shadowed blocks — their eligibility genuinely
   depended on call-aware facts, the paper's cross-call population. Each
   gained site is then transformed alone under [~summaries ~prove] so the
   claim "now eligible" is backed by a translation-validation proof.
   Returns marshal-safe plain tuples: (site, proc, block, reason the
   summary-off advisor gave, cycles saved, proved). *)
let interproc_gains ?max_hoist ?exit_live ~config ~profile program =
  let module Advisor = Bv_analysis.Advisor in
  let module Costmodel = Bv_analysis.Costmodel in
  let summaries = Bv_analysis.Summary.compute program in
  let advise summaries =
    Advisor.advise ~config ~profile
      (Bv_analysis.Costmodel.analyze ?max_hoist ?exit_live ?summaries
         program)
  in
  let off = advise None and on = advise (Some summaries) in
  let rejected_off =
    List.filter_map
      (fun r ->
        Option.map
          (fun reason -> (r.Advisor.cost.Costmodel.site, reason))
          r.Advisor.rejected)
      off.Advisor.sites
  in
  let gained =
    List.filter
      (fun r ->
        r.Advisor.rejected = None
        && r.Advisor.cycles_saved > 0.0
        && List.mem_assoc r.Advisor.cost.Costmodel.site rejected_off
        && Bv_ir.Callgraph.call_shadowed
             (Program.find_proc program r.Advisor.cost.Costmodel.proc)
             r.Advisor.cost.Costmodel.block)
      on.Advisor.sites
  in
  let proved_sites =
    match gained with
    | [] -> []
    | gained -> (
      let candidates =
        List.map
          (fun r ->
            { Vanguard.Select.proc = r.Advisor.cost.Costmodel.proc;
              block = r.Advisor.cost.Costmodel.block;
              site = r.Advisor.cost.Costmodel.site;
              bias = r.Advisor.bias;
              predictability = r.Advisor.predictability;
              executed = r.Advisor.execs
            })
          gained
      in
      match
        Vanguard.Transform.apply ?max_hoist ?exit_live ~summaries
          ~prove:true ~candidates program
      with
      | result ->
        List.map
          (fun rep -> rep.Vanguard.Transform.site)
          result.Vanguard.Transform.reports
      | exception Invalid_argument _ -> [])
  in
  List.map
    (fun r ->
      let site = r.Advisor.cost.Costmodel.site in
      ( site,
        r.Advisor.cost.Costmodel.proc,
        r.Advisor.cost.Costmodel.block,
        List.assoc site rejected_off,
        r.Advisor.cycles_saved,
        List.mem site proved_sites ))
    gained

let gain_json (site, proc, blockl, reason, saved, proved) =
  let open Bv_obs.Json in
  Obj
    [ ("site", Int site);
      ("proc", String proc);
      ("block", String blockl);
      ("kind", String "cross_call");
      ("rejected_before", String reason);
      ("cycles_saved", float saved);
      ("proved", Bool proved)
    ]

let advise_cmd =
  let module Advisor = Bv_analysis.Advisor in
  let module Costmodel = Bv_analysis.Costmodel in
  (* Correlation gating needs enough joined sites to mean anything. *)
  let min_joined = 5 in
  let run benches suites validate width all predictor top corr_floor
      warn_only dbb fuzz interproc werror json =
    let failed = ref false in
    let warned = ref false in
    let specs =
      List.filter_map
        (fun name ->
          match spec_of_name name with
          | Ok spec -> Some spec
          | Error e ->
            prerr_endline e;
            failed := true;
            None)
        benches
      @ (if suites then Suites.all else [])
    in
    let specs =
      List.sort_uniq (fun a b -> compare a.Spec.name b.Spec.name) specs
    in
    if specs = [] && fuzz = None && not !failed then begin
      prerr_endline "nothing to advise: pass -b BENCH, --suites, or --fuzz N";
      failed := true
    end;
    let config = { Advisor.default_config with Advisor.dbb_entries = dbb } in
    let sim = Sim.the () in
    let inputs = if all then Runner.input_indices () else [ 1 ] in
    (* Prepare, advise and (optionally) validate are DAG nodes — one per
       target, keyed by everything the verdict depends on — fanned out
       across the session's workers. Everything a worker returns is
       plain marshal-safe data. *)
    let results =
      Sim.dag_map sim ~kind:"advise"
        ~label:(fun (spec, _) -> spec.Spec.name)
        (fun (spec, (predictor, config, inputs, width, validate, interproc)) ->
          let b = Sim.prepare ~predictor sim spec in
          let checked =
            if validate then
              Some
                (Runner.advise_validate ~predictor ~config ~interproc ~inputs
                   b ~width)
            else None
          in
          let advice =
            match checked with
            | Some c -> c.Runner.ac_advice
            | None -> Runner.advise ~config ~interproc b
          in
          let gains =
            if interproc then
              interproc_gains ~exit_live:Gen.live_at_exit ~config
                ~profile:(Runner.profile b)
                (Gen.generate ~input:0 spec)
            else []
          in
          (spec.Spec.name, advice, checked, gains))
        (List.map
           (fun spec ->
             (spec, (predictor, config, inputs, width, validate, interproc)))
           specs)
    in
    (* Fuzz targets: the seeded corpus is where cross-call gains actually
       live — the benchmark generators only call from main's latch loop,
       which the advisor rejects as backward either way. The advisor runs
       with selection-style gating (no heat or margin requirement, no
       growth charge) so eligibility, not heat, decides. *)
    let fuzz_config =
      { config with
        Advisor.min_executed = 0;
        threshold = -2.0;
        growth_penalty = 0.0
      }
    in
    let fuzz_results =
      match fuzz with
      | None -> []
      | Some n ->
        Sim.dag_map sim ~kind:"advise-fuzz"
          ~label:(fun (seed, _) -> Printf.sprintf "seed%d" seed)
          (fun (seed, (config, interproc)) ->
            let prog = Fuzzgen.generate ~seed in
            let image = Layout.program (Program.copy prog) in
            let profile =
              Bv_profile.Profile.collect
                ~predictor:(Kind.create Kind.Always_not_taken)
                image
            in
            let summaries =
              if interproc then Some (Bv_analysis.Summary.compute prog)
              else None
            in
            let advice =
              Advisor.advise ~config ~profile
                (Costmodel.analyze ?summaries prog)
            in
            let gains =
              if interproc then interproc_gains ~config ~profile prog
              else []
            in
            (Printf.sprintf "fuzz:%d" seed, advice, None, gains))
          (List.init n (fun seed -> (seed, (fuzz_config, interproc))))
    in
    let results = results @ fuzz_results in
    let ppf =
      if json = Some "-" then Format.err_formatter else Format.std_formatter
    in
    let gate severity fmt =
      Printf.ksprintf
        (fun msg ->
          (match severity with
          | `Error -> failed := true
          | `Warning -> warned := true);
          Format.fprintf ppf "advise %s: %s@."
            (match severity with `Error -> "error" | `Warning -> "warning")
            msg)
        fmt
    in
    List.iter
      (fun (name, advice, checked, gains) ->
        let n_sites = List.length advice.Advisor.sites in
        let n_rec = List.length advice.Advisor.recommended in
        Format.fprintf ppf "%s: %d branch site(s), %d recommended@." name
          n_sites n_rec;
        List.iter
          (fun (site, proc, blockl, reason, saved, proved) ->
            Format.fprintf ppf
              "%s: gain: site %d (%s/%s) was rejected (%s), now saves %.1f \
               cycle(s), %s@."
              name site proc blockl reason saved
              (if proved then "equivalence proved"
               else "equivalence NOT proved"))
          gains;
        let shown = List.filteri (fun i _ -> i < top) advice.Advisor.sites in
        if shown <> [] then
          Format.fprintf ppf "%s@."
            (Text.render
               ~headers:
                 [ "site"; "class"; "execs"; "pred"; "overlap"; "waste";
                   "saved"; "verdict"
                 ]
               (List.map
                  (fun r ->
                    [ string_of_int r.Advisor.cost.Costmodel.site;
                      Costmodel.pred_class_name
                        r.Advisor.cost.Costmodel.pred_class;
                      string_of_int r.Advisor.execs;
                      Text.f3 r.Advisor.predictability;
                      string_of_int r.Advisor.overlap;
                      string_of_int r.Advisor.waste;
                      Text.f1 r.Advisor.cycles_saved;
                      (match r.Advisor.rejected with
                      | None -> "recommend"
                      | Some reason -> reason)
                    ])
                  shown));
        match checked with
        | None -> ()
        | Some c ->
          let v = c.Runner.ac_validation in
          let joined = List.length v.Advisor.joined in
          Format.fprintf ppf
            "%s: validation over %d input(s): %d site(s) joined, peak DBB \
             occupancy %d@."
            name c.Runner.ac_inputs joined c.Runner.ac_max_outstanding;
          if Float.is_nan v.Advisor.spearman then
            Format.fprintf ppf
              "%s: too few joined sites for a rank correlation@." name
          else begin
            Format.fprintf ppf "%s: spearman %.3f@." name v.Advisor.spearman;
            if joined >= min_joined && v.Advisor.spearman < corr_floor then
              gate
                (if warn_only then `Warning else `Error)
                "%s: rank correlation %.3f below floor %.2f over %d joined \
                 site(s)"
                name v.Advisor.spearman corr_floor joined
          end;
          List.iter
            (fun (r, m, d) ->
              gate `Warning
                "%s: site %d static/measured rank divergence %d (saved %.1f \
                 vs recovery %.0f)"
                name r.Advisor.cost.Costmodel.site d r.Advisor.cycles_saved m)
            v.Advisor.outliers)
      results;
    (match json with
    | None -> ()
    | Some path ->
      let open Bv_obs.Json in
      let all_gains = List.concat_map (fun (_, _, _, g) -> g) results in
      let proved =
        List.filter (fun (_, _, _, _, _, p) -> p) all_gains
      in
      let bench_stats =
        List.map
          (fun spec ->
            let _, stats =
              summary_stats_field spec.Spec.name (Gen.generate ~input:0 spec)
            in
            (spec.Spec.name, stats))
          specs
      in
      write_json path
        (Obj
           [ ("schema_version", Int schema_version);
             ("width", Int width);
             ("predictor", String (Kind.name predictor));
             ("dbb_entries", Int dbb);
             ("corr_floor", float corr_floor);
             ("interproc", Bool interproc);
             ("summary_stats", Obj bench_stats);
             ("gains_total", Int (List.length all_gains));
             ("gains_proved", Int (List.length proved));
             ("inputs", List (List.map (fun i -> Int i) inputs));
             ("scale", float (Runner.scale ()));
             dag_field ();
             ( "targets",
               List
                 (List.map
                    (fun (name, advice, checked, gains) ->
                      obj_add
                        (Obj
                           [ ("target", String name);
                             ("gains", List (List.map gain_json gains))
                           ])
                        ((match Advisor.to_json advice with
                         | Obj fields -> fields
                         | _ -> [])
                        @
                        match checked with
                        | None -> []
                        | Some c ->
                          [ ( "validation",
                              Advisor.validation_to_json
                                c.Runner.ac_validation );
                            ( "max_outstanding",
                              Int c.Runner.ac_max_outstanding )
                          ]))
                    results) )
           ]));
    if !failed || (werror && !warned) then 1 else 0
  in
  let bench_opt_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "b"; "benchmark" ]
          ~doc:"Advise on a benchmark (repeatable; see `vanguard_cli list`).")
  in
  let suites_arg =
    Arg.(
      value & flag
      & info [ "suites" ] ~doc:"Advise on every benchmark of every suite.")
  in
  let validate_arg =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Join the static cycles-saved ranking against measured per-site \
             recovery cycles from an accounted baseline simulation, and \
             report the Spearman rank correlation.")
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Validate against all REF inputs, merged (default: input 1).")
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Sites to show per target.")
  in
  let corr_floor_arg =
    Arg.(
      value & opt float 0.0
      & info [ "corr-floor" ] ~docv:"RHO"
          ~doc:
            "Fail validation when the rank correlation falls below $(docv) \
             (with at least 5 joined sites).")
  in
  let warn_only_arg =
    Arg.(
      value & flag
      & info [ "warn-only" ]
          ~doc:"Downgrade a correlation-floor failure to a warning.")
  in
  let dbb_arg =
    Arg.(
      value & opt int 16
      & info [ "dbb" ] ~docv:"ENTRIES"
          ~doc:"Decoupled-branch-buffer capacity for the pressure gate.")
  in
  let fuzz_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuzz" ] ~docv:"N"
          ~doc:
            "Also advise on N seeded fuzz programs (selection-style \
             gating: no heat or margin requirement). With --interproc \
             this is where cross-call gains are expected.")
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:
         "Static profitability analysis: rank every branch site by \
          estimated decomposition savings; optionally cross-validate the \
          ranking against measured cycle attribution.")
    Term.(
      const run $ bench_opt_arg $ suites_arg $ validate_arg $ width_arg
      $ all_arg $ predictor_arg $ top_arg $ corr_floor_arg $ warn_only_arg
      $ dbb_arg $ fuzz_arg $ interproc_arg $ werror_arg $ json_arg)

(* ------------------------------------------------------------ summaries *)

let summaries_cmd =
  let run files bench transformed json =
    let targets = ref [] in
    let failed = ref false in
    let add name prog = targets := (name, prog) :: !targets in
    List.iter
      (fun path ->
        match In_channel.with_open_text path In_channel.input_all with
        | exception Sys_error e ->
          prerr_endline e;
          failed := true
        | text -> (
          match Bv_ir.Asm.program text with
          | exception Bv_ir.Asm.Parse_error (line, msg) ->
            Printf.eprintf "%s:%d: %s\n" path line msg;
            failed := true
          | prog -> add path prog))
      files;
    (match bench with
    | None -> ()
    | Some name -> (
      match spec_of_name name with
      | Error e ->
        prerr_endline e;
        failed := true
      | Ok spec ->
        if transformed then
          add (name ^ ":transformed")
            (Runner.transform (Sim.bench (Sim.the ()) spec))
              .Vanguard.Transform.program
        else add (name ^ ":baseline") (Gen.generate ~input:1 spec)));
    let targets = List.rev !targets in
    if targets = [] && not !failed then begin
      prerr_endline
        "nothing to summarize: pass FILE arguments or -b BENCH";
      failed := true
    end;
    let results = List.map (fun (name, prog) -> (name, summary_node name prog)) targets in
    (match json with
    | Some path ->
      write_json path
        (Bv_obs.Json.Obj
           [ ("schema_version", Bv_obs.Json.Int Bv_obs.Json.schema_version);
             dag_field ();
             ( "targets",
               Bv_obs.Json.List
                 (List.map
                    (fun (name, (_, stats, full)) ->
                      Bv_obs.Json.Obj
                        [ ("target", Bv_obs.Json.String name);
                          ("summary_stats", stats);
                          ("summaries", full)
                        ])
                    results) )
           ])
    | None ->
      List.iter
        (fun (name, (procs, _, _)) ->
          Format.printf "%s: %d procedure(s)@." name (List.length procs);
          List.iter
            (fun s -> Format.printf "  %a@." Bv_analysis.Summary.pp s)
            procs)
        results);
    if !failed then 1 else 0
  in
  let files_arg =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:"Hidden-ISA source files (see `vanguard_cli assemble`).")
  in
  let bench_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "b"; "benchmark" ]
          ~doc:"Summarize a benchmark's baseline program.")
  in
  let transformed_arg =
    Arg.(
      value & flag
      & info [ "transformed" ]
          ~doc:"Summarize the decomposed-branch version instead.")
  in
  Cmd.v
    (Cmd.info "summaries"
       ~doc:
         "Compute and print interprocedural per-procedure summaries \
          (register mod/use sets, memory footprints, purity), cached as \
          \"summary\" nodes in the DAG store.")
    Term.(
      const run $ files_arg $ bench_opt_arg $ transformed_arg $ json_arg)

(* ------------------------------------------------------------- assemble *)

let assemble_cmd =
  let run path simulate =
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error e -> prerr_endline e; 1
    | text -> (
      match Bv_ir.Asm.program text with
      | exception Bv_ir.Asm.Parse_error (line, msg) ->
        Printf.eprintf "%s:%d: %s\n" path line msg;
        1
      | prog ->
        let image = Layout.program prog in
        Format.printf "%a@." Layout.pp_disassembly image;
        if simulate then begin
          let st = Bv_exec.Interp.run image in
          Format.printf "interpreter: %d instructions, halted=%b@."
            st.Bv_exec.Interp.instr_count st.Bv_exec.Interp.halted;
          let res = Machine.run ~config:Config.four_wide image in
          Format.printf "%a@." Stats.pp res.Machine.stats
        end;
        0)
  in
  let path_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let simulate_arg =
    Arg.(value & flag & info [ "run" ] ~doc:"Also interpret and simulate.")
  in
  Cmd.v
    (Cmd.info "assemble"
       ~doc:"Assemble a hidden-ISA source file; print its layout.")
    Term.(const run $ path_arg $ simulate_arg)

(* ------------------------------------------------------------------ dag *)

let dag_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dir" ] ~docv:"DIR"
        ~doc:
          "Cache directory to operate on (default: the session's store, \
           \\$(b,BV_CACHE) or .bv-cache).")

let resolve_dag_dir = function
  | Some dir -> Ok dir
  | None -> (
    match Sim.cache_dir (Sim.the ()) with
    | Some dir -> Ok dir
    | None -> Error "cache disabled (BV_CACHE=none); pass --dir")

let short_key k = if String.length k > 12 then String.sub k 0 12 else k

let dag_status_cmd =
  let run dir json =
    match resolve_dag_dir dir with
    | Error e ->
      prerr_endline ("error: " ^ e);
      1
    | Ok dir ->
      (match json with
      | Some path -> write_json path (Dag.status_json dir)
      | None ->
        let es = Dag.entries dir in
        let bytes = List.fold_left (fun a e -> a + e.Dag.e_bytes) 0 es in
        Printf.printf "cache %s: %d node(s), %d bytes, code format %d\n" dir
          (List.length es) bytes Dag.code_format;
        let kinds =
          List.sort_uniq compare (List.map (fun e -> e.Dag.e_kind) es)
        in
        List.iter
          (fun kind ->
            let of_kind = List.filter (fun e -> e.Dag.e_kind = kind) es in
            Printf.printf "  %-12s %5d node(s) %12d bytes\n" kind
              (List.length of_kind)
              (List.fold_left (fun a e -> a + e.Dag.e_bytes) 0 of_kind))
          kinds;
        List.iter
          (fun c ->
            Printf.printf "  claim %s pid %d@%s age %.0fs%s\n"
              (short_key c.Dag.c_key) c.Dag.c_pid c.Dag.c_host c.Dag.c_age
              (if c.Dag.c_stale then " (stale)" else ""))
          (Dag.claims dir));
      0
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:"Summarize the DAG store: nodes per kind, bytes, live claims.")
    Term.(const run $ dag_dir_arg $ json_arg)

let dag_gc_cmd =
  let run dir max_age_days max_size_mb dry_run json =
    match resolve_dag_dir dir with
    | Error e ->
      prerr_endline ("error: " ^ e);
      1
    | Ok dir ->
      let report =
        Dag.gc
          ?max_age:(Option.map (fun d -> d *. 86400.0) max_age_days)
          ?max_bytes:
            (Option.map (fun mb -> Float.to_int (mb *. 1024.0 *. 1024.0))
               max_size_mb)
          ~dry_run dir
      in
      (match json with
      | Some path -> write_json path (Dag.gc_report_to_json report)
      | None ->
        let verb = if dry_run then "would remove" else "removed" in
        Printf.printf
          "cache %s: %d node(s), %d bytes; %s %d node(s), %d bytes%s\n" dir
          report.Dag.gcr_examined report.Dag.gcr_bytes verb
          (List.length report.Dag.gcr_removed)
          report.Dag.gcr_removed_bytes
          (if report.Dag.gcr_claims_broken = 0 then ""
           else
             Printf.sprintf "; %s %d stale claim(s)"
               (if dry_run then "would break" else "broke")
               report.Dag.gcr_claims_broken);
        List.iter
          (fun e ->
            Printf.printf "  %s %s %-10s %s (%d bytes)\n" verb
              (short_key e.Dag.e_key) e.Dag.e_kind e.Dag.e_label e.Dag.e_bytes)
          report.Dag.gcr_removed);
      0
  in
  let max_age_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-age-days" ] ~docv:"DAYS"
          ~doc:"Prune nodes whose last use is older than $(docv).")
  in
  let max_size_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-size-mb" ] ~docv:"MB"
          ~doc:
            "After age pruning, evict least-recently-used nodes until the \
             store fits in $(docv).")
  in
  let dry_run_arg =
    Arg.(
      value & flag
      & info [ "dry-run" ] ~doc:"Report what would be pruned; touch nothing.")
  in
  Cmd.v
    (Cmd.info "gc"
       ~doc:
         "Prune the DAG store by age and size (least-recently-used first); \
          always sweeps stale claims.")
    Term.(
      const run $ dag_dir_arg $ max_age_arg $ max_size_arg $ dry_run_arg
      $ json_arg)

let dag_explain_cmd =
  let run dir key json =
    match resolve_dag_dir dir with
    | Error e ->
      prerr_endline ("error: " ^ e);
      1
    | Ok dir -> (
      match Dag.explain dir key with
      | Error e ->
        prerr_endline ("error: " ^ e);
        1
      | Ok x ->
        (match json with
        | Some path -> write_json path (Dag.explanation_to_json x)
        | None ->
          Printf.printf "node %s\n" x.Dag.x_key;
          Printf.printf "  kind %s, label %s\n" x.Dag.x_kind x.Dag.x_label;
          Printf.printf "  hash inputs: format %d, ocaml %s, inputs %s\n"
            x.Dag.x_format x.Dag.x_ocaml x.Dag.x_inputs;
          List.iter
            (fun d -> Printf.printf "  dep %s\n" d)
            x.Dag.x_deps;
          Printf.printf "  created %s by pid %d in %.3fs\n" x.Dag.x_created_at
            x.Dag.x_pid x.Dag.x_compute_seconds;
          Printf.printf "  %d bytes, last used %.0fs ago\n" x.Dag.x_bytes
            x.Dag.x_age;
          if x.Dag.x_events <> [] then begin
            Printf.printf "  provenance:\n";
            List.iter (fun e -> Printf.printf "    %s\n" e) x.Dag.x_events
          end);
        0)
  in
  let key_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"KEY" ~doc:"Node key (a unique hex prefix suffices).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show one stored node's hash inputs, dependencies and hit/miss \
          provenance.")
    Term.(const run $ dag_dir_arg $ key_arg $ json_arg)

let dag_cmd =
  Cmd.group
    (Cmd.info "dag"
       ~doc:
         "Inspect and maintain the memoized experiment DAG store that every \
          run path persists into (BV_CACHE).")
    [ dag_status_cmd; dag_gc_cmd; dag_explain_cmd ]

(* --------------------------------------------------------------- disasm *)

let disasm_cmd =
  let run name =
    match spec_of_name name with
    | Error e -> prerr_endline e; 1
    | Ok spec ->
      let image = Layout.program (Gen.generate ~input:1 spec) in
      Format.printf "%a@." Layout.pp_disassembly image;
      0
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble a benchmark's baseline code.")
    Term.(const run $ bench_arg)

let main =
  let doc =
    "Branch Vanguard: decomposed branch prediction/resolution (ISCA 2015) \
     reproduction."
  in
  Cmd.group (Cmd.info "vanguard_cli" ~doc)
    [ list_cmd; run_cmd; sample_validate_cmd; report_cmd; profile_cmd;
      transform_cmd; experiment_cmd; disasm_cmd; dot_cmd; lint_cmd;
      prove_cmd; advise_cmd; summaries_cmd; assemble_cmd; trace_cmd; dag_cmd
    ]

let () = exit (Cmd.eval' main)
