lib/sched/sched.mli: Block Bv_ir Bv_isa Instr Proc Program Term
