lib/sched/sched.ml: Array Block Bv_ir Bv_isa Fun Hashtbl Instr Int List Option Proc Program Reg Term
