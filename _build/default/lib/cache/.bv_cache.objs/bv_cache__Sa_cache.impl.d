lib/cache/sa_cache.ml: Array Float Option
