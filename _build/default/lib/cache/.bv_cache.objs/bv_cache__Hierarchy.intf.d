lib/cache/hierarchy.mli: Sa_cache
