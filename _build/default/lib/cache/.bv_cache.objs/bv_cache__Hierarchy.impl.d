lib/cache/hierarchy.ml: Sa_cache
