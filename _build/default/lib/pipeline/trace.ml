type row =
  { seq : int;
    pc : int;
    instr : Bv_isa.Instr.t;
    fetch : int;
    issue : int option;
    complete : int option;
    squashed : bool;
    mispredicted : bool
  }

let collect ?(max_rows = 200) ?max_cycles ~config image =
  let rows : (int, row) Hashtbl.t = Hashtbl.create (2 * max_rows) in
  let order = ref [] in
  let record seq f =
    match Hashtbl.find_opt rows seq with
    | Some row -> Hashtbl.replace rows seq (f row)
    | None -> ()
  in
  let on_event = function
    | Machine.Fetched { cycle; seq; pc; instr } ->
      if Hashtbl.length rows < max_rows then begin
        Hashtbl.replace rows seq
          { seq; pc; instr; fetch = cycle; issue = None; complete = None;
            squashed = false; mispredicted = false };
        order := seq :: !order
      end
    | Machine.Issued { cycle; seq } ->
      record seq (fun r -> { r with issue = Some cycle })
    | Machine.Completed { cycle; seq; mispredicted } ->
      record seq (fun r -> { r with complete = Some cycle; mispredicted })
    | Machine.Squashed { seq; _ } ->
      record seq (fun r -> { r with squashed = true })
    | Machine.Redirected _ -> ()
  in
  let result = Machine.run ?max_cycles ~on_event ~config image in
  let collected =
    List.rev_map (fun seq -> Hashtbl.find rows seq) !order
  in
  (collected, result)

let pp ppf rows =
  Format.fprintf ppf "@[<v>%6s %5s %6s %6s %6s %-4s %s@," "seq" "pc" "F" "I"
    "C" "flag" "instruction";
  List.iter
    (fun r ->
      let opt = function Some c -> string_of_int c | None -> "-" in
      let flag =
        (if r.squashed then "x" else ".")
        ^ if r.mispredicted then "!" else ""
      in
      Format.fprintf ppf "%6d %5d %6d %6s %6s %-4s %s@," r.seq r.pc r.fetch
        (opt r.issue) (opt r.complete) flag
        (Bv_isa.Instr.to_string r.instr))
    rows;
  Format.fprintf ppf "@]"
