open Bv_bpred

type entry =
  { predict_pc : int;
    meta : Predictor.meta;
    predicted_taken : bool
  }

type slot =
  { id : int;  (* unique allocation id *)
    entry : entry;
    mutable claimed : bool
  }

type t =
  { slots : slot option array;
    mutable order : int list;  (* live slot indices, newest first *)
    mutable next : int;  (* ring allocation pointer *)
    mutable alloc_id : int
  }

(* A snapshot records which allocation occupied each slot and whether it was
   claimed. Restoring must never resurrect an entry freed since the snapshot
   (an older resolve may legitimately have completed in between), so
   restoration is an intersection keyed by allocation id:
   - same id still present: revert its claimed flag;
   - different/new id in the slot: allocated after the snapshot — drop it;
   - slot now empty: freed since — stays empty. *)
type snapshot = (int * bool) option array * int list * int

let create ~entries =
  { slots = Array.make entries None; order = []; next = 0; alloc_id = 0 }

let capacity t = Array.length t.slots
let occupancy t = List.length t.order
let is_full t = occupancy t = capacity t

let allocate t entry =
  if is_full t then None
  else begin
    let n = capacity t in
    let rec find i =
      let idx = (t.next + i) mod n in
      match t.slots.(idx) with None -> idx | Some _ -> find (i + 1)
    in
    let idx = find 0 in
    t.alloc_id <- t.alloc_id + 1;
    t.slots.(idx) <- Some { id = t.alloc_id; entry; claimed = false };
    t.order <- idx :: t.order;
    t.next <- (idx + 1) mod n;
    Some idx
  end

let claim_newest t =
  let rec go = function
    | [] -> None
    | idx :: rest ->
      (match t.slots.(idx) with
      | Some s when not s.claimed ->
        s.claimed <- true;
        Some (idx, s.entry)
      | _ -> go rest)
  in
  go t.order

let free t idx =
  if Option.is_some t.slots.(idx) then begin
    t.slots.(idx) <- None;
    t.order <- List.filter (fun i -> i <> idx) t.order
  end

let snapshot t =
  ( Array.map (Option.map (fun s -> (s.id, s.claimed))) t.slots,
    t.order,
    t.next )

let restore t (snap_slots, snap_order, next) =
  Array.iteri
    (fun i current ->
      match (current, snap_slots.(i)) with
      | Some s, Some (id, claimed) when s.id = id -> s.claimed <- claimed
      | Some _, (Some _ | None) -> t.slots.(i) <- None
      | None, _ -> ())
    t.slots;
  t.order <-
    List.filter (fun idx -> Option.is_some t.slots.(idx)) snap_order;
  t.next <- next
