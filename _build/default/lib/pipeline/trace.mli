(** Pipeline trace collection and rendering: the classic per-instruction
    cycle table (fetch / issue / complete, squashes marked), built from
    {!Machine.run}'s event stream. *)

type row =
  { seq : int;
    pc : int;
    instr : Bv_isa.Instr.t;
    fetch : int;
    issue : int option;
    complete : int option;
    squashed : bool;
    mispredicted : bool
  }

val collect :
  ?max_rows:int ->
  ?max_cycles:int ->
  config:Config.t ->
  Bv_ir.Layout.image ->
  row list * Machine.result
(** Run the machine collecting up to [max_rows] (default 200) instruction
    rows (events beyond the cap are still simulated, just not recorded). *)

val pp : Format.formatter -> row list -> unit
(** Renders rows as a table, one instruction per line:
    [seq pc F I C flags instruction]. *)
