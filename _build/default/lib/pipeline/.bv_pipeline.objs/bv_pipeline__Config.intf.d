lib/pipeline/config.mli: Bv_bpred Bv_cache Format Hierarchy Kind
