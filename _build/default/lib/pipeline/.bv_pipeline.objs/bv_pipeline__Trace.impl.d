lib/pipeline/trace.ml: Bv_isa Format Hashtbl List Machine
