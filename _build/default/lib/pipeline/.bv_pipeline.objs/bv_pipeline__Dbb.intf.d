lib/pipeline/dbb.mli: Bv_bpred Predictor
