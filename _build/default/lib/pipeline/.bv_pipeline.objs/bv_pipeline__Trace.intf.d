lib/pipeline/trace.mli: Bv_ir Bv_isa Config Format Machine
