lib/pipeline/dbb.ml: Array Bv_bpred List Option Predictor
