lib/pipeline/config.ml: Bv_bpred Bv_cache Format Hierarchy Kind Predictor Printf
