lib/pipeline/machine.mli: Bv_cache Bv_ir Bv_isa Config Layout Stats
