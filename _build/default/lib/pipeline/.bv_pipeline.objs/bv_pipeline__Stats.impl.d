lib/pipeline/stats.ml: Float Format Hashtbl Option
