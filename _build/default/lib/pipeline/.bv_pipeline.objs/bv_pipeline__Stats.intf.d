lib/pipeline/stats.mli: Format Hashtbl
