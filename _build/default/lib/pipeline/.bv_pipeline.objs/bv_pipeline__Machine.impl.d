lib/pipeline/machine.ml: Array Bool Btb Bv_bpred Bv_cache Bv_ir Bv_isa Config Dbb Hierarchy Instr Kind Layout List Option Predictor Program Ras Reg Sa_cache Stats
