(** Machine configuration (the paper's Table 1).

    The front end is five stages: fetched instructions become eligible to
    issue [front_stages] cycles after fetch, and a misprediction redirect
    re-fills the front end from scratch. Functional-unit counts follow the
    paper's "up to 2 LD/ST, 2 INT/SIMD-Permute, 4 SIMD/FP" mix, scaled a
    little with width. *)

open Bv_bpred
open Bv_cache

type t =
  { width : int;  (** fetch/decode/issue width *)
    fetch_buffer : int;  (** 32 entries *)
    front_stages : int;  (** 5 *)
    int_units : int;
    fp_units : int;
    mem_units : int;
    branch_units : int;
    alu_latency : int;
    mul_latency : int;
    fpu_latency : int;
    taken_bubble : int;  (** fetch bubble after any taken control transfer *)
    btb_miss_penalty : int;
        (** extra bubble when a taken prediction lacks a BTB target *)
    runahead : bool;
        (** runahead-style prefetch-under-stall (off in the paper's
            machine, §5.1): while issue is blocked on a missing load, the
            addresses of younger not-yet-issued loads in the fetch buffer
            are prefetched into the hierarchy *)
    dbb_entries : int;  (** 16 *)
    mshrs : int;  (** 64-entry miss buffer *)
    store_buffer : int;
    cache : Hierarchy.config;
    predictor : Kind.t;
    btb_entries : int;
    ras_entries : int
  }

val make : ?predictor:Kind.t -> ?cache:Hierarchy.config -> width:int -> unit -> t
(** Width must be 2, 4 or 8; FU counts are chosen per width. *)

val two_wide : t
val four_wide : t
val eight_wide : t

val name : t -> string
val pp : Format.formatter -> t -> unit
(** Renders the configuration as a table (the paper's Table 1). *)
