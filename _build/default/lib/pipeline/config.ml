open Bv_bpred
open Bv_cache

type t =
  { width : int;
    fetch_buffer : int;
    front_stages : int;
    int_units : int;
    fp_units : int;
    mem_units : int;
    branch_units : int;
    alu_latency : int;
    mul_latency : int;
    fpu_latency : int;
    taken_bubble : int;
    btb_miss_penalty : int;
    runahead : bool;
    dbb_entries : int;
    mshrs : int;
    store_buffer : int;
    cache : Hierarchy.config;
    predictor : Kind.t;
    btb_entries : int;
    ras_entries : int
  }

let make ?(predictor = Kind.Tournament) ?(cache = Hierarchy.default_config)
    ~width () =
  let int_units, fp_units, mem_units, branch_units =
    match width with
    | 2 -> (2, 2, 1, 1)
    | 4 -> (2, 4, 2, 1)
    | 8 -> (4, 4, 2, 2)
    | w -> invalid_arg (Printf.sprintf "Config.make: unsupported width %d" w)
  in
  { width;
    fetch_buffer = 32;
    front_stages = 5;
    int_units;
    fp_units;
    mem_units;
    branch_units;
    alu_latency = 1;
    mul_latency = 3;
    fpu_latency = 4;
    taken_bubble = 1;
    btb_miss_penalty = 2;
    runahead = false;
    dbb_entries = 16;
    mshrs = 64;
    store_buffer = 16;
    cache;
    predictor;
    btb_entries = 4096;
    ras_entries = 64
  }

let two_wide = make ~width:2 ()
let four_wide = make ~width:4 ()
let eight_wide = make ~width:8 ()

let name t = Printf.sprintf "%d-wide/%s" t.width (Kind.name t.predictor)

let pp ppf t =
  let c = t.cache in
  Format.fprintf ppf
    "@[<v>%-16s %s@,%-16s %d-wide fetch/decode/dispatch, %d stages, \
     %d-entry fetch buffer@,%-16s %d LD/ST, %d INT, %d FP, %d BR@,\
     %-16s %s (%d KB), %d-entry BTB, %d-entry RAS@,\
     %-16s %d KB L1-D (%d-way), %d KB L1-I (%d-way), %d B lines, %d-cycle@,\
     %-16s %d KB unified (%d-way), %d-cycle@,\
     %-16s %d MB (%d-way), %d-cycle@,\
     %-16s %d-entry miss buffer, %d-entry store buffer@,\
     %-16s %d-cycle latency@]"
    "Machine" (name t) "Front-End" t.width t.front_stages t.fetch_buffer
    "Exec Units" t.mem_units t.int_units t.fp_units t.branch_units "Bpred"
    (Kind.name t.predictor)
    ((Kind.create t.predictor).Predictor.storage_bits / 8192)
    t.btb_entries t.ras_entries "L1 Caches" (c.Hierarchy.l1d_bytes / 1024)
    c.Hierarchy.l1d_ways
    (c.Hierarchy.l1i_bytes / 1024)
    c.Hierarchy.l1i_ways c.Hierarchy.line_bytes c.Hierarchy.l1_latency "L2"
    (c.Hierarchy.l2_bytes / 1024)
    c.Hierarchy.l2_ways c.Hierarchy.l2_latency "L3"
    (c.Hierarchy.l3_bytes / 1024 / 1024)
    c.Hierarchy.l3_ways c.Hierarchy.l3_latency "Miss Handling" t.mshrs
    t.store_buffer "Main Memory" c.Hierarchy.mem_latency
