(** Symbolic code labels, resolved to instruction addresses at layout time. *)

type t = string

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val fresh : prefix:string -> t
(** [fresh ~prefix] returns a label that no previous call to [fresh] has
    returned. Deterministic: a global counter, no randomness. *)

val reset_fresh_counter : unit -> unit
(** Restart the [fresh] counter (useful to make test output reproducible). *)
