type alu_op = Add | Sub | And | Or | Xor | Shl | Shr | Mul

type cmp_op = Eq | Ne | Lt | Ge | Le | Gt

type operand =
  | Reg of Reg.t
  | Imm of int

type t =
  | Nop
  | Alu of { op : alu_op; dst : Reg.t; src1 : Reg.t; src2 : operand }
  | Fpu of { op : alu_op; dst : Reg.t; src1 : Reg.t; src2 : operand }
  | Mov of { dst : Reg.t; src : operand }
  | Load of { dst : Reg.t; base : Reg.t; offset : int; speculative : bool }
  | Store of { src : Reg.t; base : Reg.t; offset : int }
  | Cmp of { op : cmp_op; dst : Reg.t; src1 : Reg.t; src2 : operand }
  | Cmov of { on : bool; cond : Reg.t; dst : Reg.t; src : operand }
  | Branch of { on : bool; src : Reg.t; target : Label.t; id : int }
  | Jump of Label.t
  | Call of Label.t
  | Ret
  | Predict of { target : Label.t; id : int }
  | Resolve of
      { on : bool;
        src : Reg.t;
        target : Label.t;
        predicted_taken : bool;
        id : int }
  | Halt

type fu_class = Fu_int | Fu_fp | Fu_mem | Fu_branch | Fu_none

let fu_class = function
  | Nop | Predict _ -> Fu_none
  | Alu _ | Mov _ | Cmp _ | Cmov _ -> Fu_int
  | Fpu _ -> Fu_fp
  | Load _ | Store _ -> Fu_mem
  | Branch _ | Jump _ | Call _ | Ret | Resolve _ | Halt -> Fu_branch

let operand_uses = function
  | Reg r -> [ r ]
  | Imm _ -> []

let defs = function
  | Alu { dst; _ } | Fpu { dst; _ } | Mov { dst; _ } | Cmp { dst; _ }
  | Cmov { dst; _ } ->
    [ dst ]
  | Load { dst; _ } -> [ dst ]
  | Nop | Store _ | Branch _ | Jump _ | Call _ | Ret | Predict _ | Resolve _
  | Halt ->
    []

let uses = function
  | Alu { src1; src2; _ } | Fpu { src1; src2; _ } | Cmp { src1; src2; _ } ->
    src1 :: operand_uses src2
  | Mov { src; _ } -> operand_uses src
  | Cmov { cond; dst; src; _ } ->
    (* the old dst value survives a false condition, so dst is a source *)
    cond :: dst :: operand_uses src
  | Load { base; _ } -> [ base ]
  | Store { src; base; _ } -> [ src; base ]
  | Branch { src; _ } | Resolve { src; _ } -> [ src ]
  | Nop | Jump _ | Call _ | Ret | Predict _ | Halt -> []

let is_terminator = function
  | Branch _ | Jump _ | Call _ | Ret | Predict _ | Resolve _ | Halt -> true
  | Nop | Alu _ | Fpu _ | Mov _ | Load _ | Store _ | Cmp _ | Cmov _ -> false

let is_control = is_terminator

let branch_target = function
  | Branch { target; _ }
  | Jump target
  | Call target
  | Predict { target; _ }
  | Resolve { target; _ } ->
    Some target
  | Nop | Alu _ | Fpu _ | Mov _ | Load _ | Store _ | Cmp _ | Cmov _ | Ret
  | Halt ->
    None

let encoded_bytes _ = 4

let pp_alu_op ppf op =
  let s =
    match op with
    | Add -> "add"
    | Sub -> "sub"
    | And -> "and"
    | Or -> "or"
    | Xor -> "xor"
    | Shl -> "shl"
    | Shr -> "shr"
    | Mul -> "mul"
  in
  Format.pp_print_string ppf s

let pp_cmp_op ppf op =
  let s =
    match op with
    | Eq -> "eq"
    | Ne -> "ne"
    | Lt -> "lt"
    | Ge -> "ge"
    | Le -> "le"
    | Gt -> "gt"
  in
  Format.pp_print_string ppf s

let pp_operand ppf = function
  | Reg r -> Reg.pp ppf r
  | Imm i -> Format.fprintf ppf "#%d" i

let pp ppf = function
  | Nop -> Format.pp_print_string ppf "nop"
  | Alu { op; dst; src1; src2 } ->
    Format.fprintf ppf "%a %a, %a, %a" pp_alu_op op Reg.pp dst Reg.pp src1
      pp_operand src2
  | Fpu { op; dst; src1; src2 } ->
    Format.fprintf ppf "f%a %a, %a, %a" pp_alu_op op Reg.pp dst Reg.pp src1
      pp_operand src2
  | Mov { dst; src } ->
    Format.fprintf ppf "mov %a, %a" Reg.pp dst pp_operand src
  | Load { dst; base; offset; speculative } ->
    Format.fprintf ppf "ld%s %a, [%a + %d]"
      (if speculative then "+" else "")
      Reg.pp dst Reg.pp base offset
  | Store { src; base; offset } ->
    Format.fprintf ppf "st %a, [%a + %d]" Reg.pp src Reg.pp base offset
  | Cmp { op; dst; src1; src2 } ->
    Format.fprintf ppf "cmp.%a %a, %a, %a" pp_cmp_op op Reg.pp dst Reg.pp src1
      pp_operand src2
  | Cmov { on; cond; dst; src } ->
    Format.fprintf ppf "cmov.%s %a, %a, %a"
      (if on then "nz" else "z")
      Reg.pp cond Reg.pp dst pp_operand src
  | Branch { on; src; target; id } ->
    Format.fprintf ppf "b%s %a, %a  ; site %d"
      (if on then "nz" else "z")
      Reg.pp src Label.pp target id
  | Jump target -> Format.fprintf ppf "jmp %a" Label.pp target
  | Call target -> Format.fprintf ppf "call %a" Label.pp target
  | Ret -> Format.pp_print_string ppf "ret"
  | Predict { target; id } ->
    Format.fprintf ppf "predict %a  ; site %d" Label.pp target id
  | Resolve { on; src; target; predicted_taken; id } ->
    Format.fprintf ppf "resolve.%s%s %a, %a  ; site %d"
      (if on then "nz" else "z")
      (if predicted_taken then ".pt" else ".pnt")
      Reg.pp src Label.pp target id
  | Halt -> Format.pp_print_string ppf "halt"

let to_string i = Format.asprintf "%a" pp i

let eval_alu op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (min 62 (b land 63))
  | Shr -> a asr (min 62 (b land 63))
  | Mul -> a * b

let eval_cmp op a b =
  match op with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Ge -> a >= b
  | Le -> a <= b
  | Gt -> a > b
