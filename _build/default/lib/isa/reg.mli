(** Architectural registers of the hidden ISA.

    The machine exposes a flat file of general-purpose registers. The paper's
    "shadow registers" are not separate names: speculative writes between a
    [predict] and its [resolve] are buffered by the microarchitecture and
    committed when the resolve commits (see {!Bv_pipeline}), so the compiler
    can reuse architectural names for speculative computation. *)

type t
(** A register name. *)

val count : int
(** Number of architectural registers (64). *)

val make : int -> t
(** [make i] is register [ri]. Raises [Invalid_argument] unless
    [0 <= i < count]. *)

val index : t -> int
(** Position of the register in the file, in [0 .. count - 1]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [r<i>]. *)

val to_string : t -> string

val all : t list
(** Every register, in index order. *)
