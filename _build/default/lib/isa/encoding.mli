(** Binary encoding of the hidden ISA.

    A DBT-based machine (the paper's deployment context, §2.2) needs a
    concrete encoding for its translation cache. Instructions encode into
    one 64-bit word: 6-bit opcode, three 6-bit register fields, flag bits,
    and a 37-bit signed immediate/target field — wide enough for every
    offset the toolchain produces. Control-flow targets are encoded as
    resolved instruction addresses (encoding happens after layout); sited
    control flow (branch/predict/resolve) splits the field into a 16-bit
    target and a 20-bit site id.

    The architectural code-size model (4 bytes per instruction slot,
    {!Instr.encoded_bytes}) is unchanged: this module is the translation
    cache serialisation, where hidden-ISA words are wide (Crusoe/Denver
    store VLIW molecules, not the 4-byte architectural footprint). *)

exception Encoding_error of string

val encode : resolve:(Label.t -> int) -> Instr.t -> int
(** Raises {!Encoding_error} if an immediate falls outside the signed
    37-bit range or a site id/target outside its field. *)

val decode : label_of:(int -> Label.t) -> int -> Instr.t
(** Inverse of {!encode} given a consistent address-to-label mapping.
    Raises {!Encoding_error} on an unknown opcode. *)

val imm_bits : int
(** Width of the signed immediate field (37). *)

val encodable_imm : int -> bool
