type t = string

let equal = String.equal
let compare = String.compare
let pp = Format.pp_print_string

let counter = ref 0

let fresh ~prefix =
  incr counter;
  Printf.sprintf "%s$%d" prefix !counter

let reset_fresh_counter () = counter := 0
