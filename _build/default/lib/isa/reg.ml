type t = int

let count = 64

let make i =
  if i < 0 || i >= count then
    invalid_arg (Printf.sprintf "Reg.make: %d out of range [0, %d)" i count);
  i

let index r = r
let equal = Int.equal
let compare = Int.compare
let hash r = r
let pp ppf r = Format.fprintf ppf "r%d" r
let to_string r = Printf.sprintf "r%d" r
let all = List.init count (fun i -> i)
