(** Instructions of the hidden ISA.

    This is the VLIW-style hidden ISA of a DBT-based machine (Transmeta
    Crusoe / Project Denver class), extended with the paper's decomposed
    branch pair:

    - [Predict]: opcode + target only. At fetch it is run through the branch
      predictor; if predicted taken, fetch is redirected to the target.
      It is dropped from the fetch buffer after steering (no issue slot).
    - [Resolve]: a conditional branch always predicted not-taken by the
      front end. Its condition evaluates the {e original} branch outcome;
      it is taken exactly when that outcome disagrees with the direction
      the paired [Predict] chose on this path. Taken ⇒ misprediction:
      speculative state since the [Predict] is squashed and fetch is
      redirected to correction code. Either way, the predictor entry
      allocated by the [Predict] is updated through the DBB.

    Speculative loads ([speculative = true]) are the paper's non-faulting
    loads: faults from control-speculative execution are suppressed. *)

type alu_op = Add | Sub | And | Or | Xor | Shl | Shr | Mul

type cmp_op = Eq | Ne | Lt | Ge | Le | Gt

type operand =
  | Reg of Reg.t
  | Imm of int

type t =
  | Nop
  | Alu of { op : alu_op; dst : Reg.t; src1 : Reg.t; src2 : operand }
      (** Integer ALU operation. *)
  | Fpu of { op : alu_op; dst : Reg.t; src1 : Reg.t; src2 : operand }
      (** Floating-point/SIMD-class operation (integer semantics here, but
          dispatched to the FP/SIMD functional units and carrying FP
          latency). *)
  | Mov of { dst : Reg.t; src : operand }
  | Load of { dst : Reg.t; base : Reg.t; offset : int; speculative : bool }
      (** Word load from [base + offset] (byte address, 8-byte words). *)
  | Store of { src : Reg.t; base : Reg.t; offset : int }
  | Cmp of { op : cmp_op; dst : Reg.t; src1 : Reg.t; src2 : operand }
      (** [dst <- 1] if [src1 op src2] holds, else [0]. *)
  | Cmov of { on : bool; cond : Reg.t; dst : Reg.t; src : operand }
      (** Conditional move (the predication primitive, Figure 1's
          alternative for unpredictable hammocks): [dst <- src] iff
          [(cond <> 0) = on], otherwise [dst] is unchanged — so [dst] is
          both read and written. *)
  | Branch of { on : bool; src : Reg.t; target : Label.t; id : int }
      (** Conditional branch: taken iff [(src <> 0) = on]. [id] is the
          static branch-site identifier used by profiling. *)
  | Jump of Label.t
  | Call of Label.t
  | Ret
  | Predict of { target : Label.t; id : int }
  | Resolve of
      { on : bool;
        src : Reg.t;
        target : Label.t;
        predicted_taken : bool;
        id : int }
      (** Original branch outcome is [(src <> 0) = on]; the resolve is taken
          (jumps to [target], the correction block) iff that outcome differs
          from [predicted_taken], the direction the paired [Predict] chose on
          this code path. [id] matches the [Predict]'s. *)
  | Halt

type fu_class = Fu_int | Fu_fp | Fu_mem | Fu_branch | Fu_none
(** Functional-unit class used by the issue stage and the scheduler.
    [Fu_none] marks instructions that consume no issue slot (Nop, Predict). *)

val fu_class : t -> fu_class

val defs : t -> Reg.t list
(** Registers written. *)

val uses : t -> Reg.t list
(** Registers read. *)

val is_terminator : t -> bool
(** True for instructions that may end a basic block: branches, jumps,
    call/ret, predict/resolve, halt. *)

val is_control : t -> bool
(** True for any control-flow instruction (including not-taken-falling
    resolves and predicts). *)

val branch_target : t -> Label.t option
(** Explicit label target, if any. *)

val encoded_bytes : t -> int
(** Fixed 4-byte encoding for every instruction (used for I$ addressing and
    static code size accounting). *)

val pp_operand : Format.formatter -> operand -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val eval_alu : alu_op -> int -> int -> int
(** Reference semantics of ALU/FPU operations on 63-bit OCaml ints. *)

val eval_cmp : cmp_op -> int -> int -> bool
