exception Encoding_error of string

let imm_bits = 37
let imm_min = -(1 lsl (imm_bits - 1))
let imm_max = (1 lsl (imm_bits - 1)) - 1
let encodable_imm v = v >= imm_min && v <= imm_max

(* word layout (bit 0 = LSB):
   [5:0]   opcode
   [11:6]  register field a (dst / src / cond)
   [17:12] register field b (src1 / base)
   [23:18] register field c (src2 when register)
   [24]    operand-is-immediate flag
   [25]    polarity / speculative flag
   [63:26] signed immediate / offset / target *)

let op_nop = 0
let op_alu_base = 1 (* 1..8: Add..Mul *)
let op_fpu_base = 9 (* 9..16 *)
let op_mov = 17
let op_load = 18
let op_store = 19
let op_cmp_base = 20 (* 20..25: Eq..Gt *)
let op_branch = 26
let op_jump = 27
let op_call = 28
let op_ret = 29
let op_predict = 30
let op_resolve_pt = 31
let op_resolve_pnt = 32
let op_halt = 33
let op_cmov = 34

let alu_index = function
  | Instr.Add -> 0
  | Instr.Sub -> 1
  | Instr.And -> 2
  | Instr.Or -> 3
  | Instr.Xor -> 4
  | Instr.Shl -> 5
  | Instr.Shr -> 6
  | Instr.Mul -> 7

let alu_of_index = function
  | 0 -> Instr.Add
  | 1 -> Instr.Sub
  | 2 -> Instr.And
  | 3 -> Instr.Or
  | 4 -> Instr.Xor
  | 5 -> Instr.Shl
  | 6 -> Instr.Shr
  | 7 -> Instr.Mul
  | n -> raise (Encoding_error (Printf.sprintf "bad ALU index %d" n))

let cmp_index = function
  | Instr.Eq -> 0
  | Instr.Ne -> 1
  | Instr.Lt -> 2
  | Instr.Ge -> 3
  | Instr.Le -> 4
  | Instr.Gt -> 5

let cmp_of_index = function
  | 0 -> Instr.Eq
  | 1 -> Instr.Ne
  | 2 -> Instr.Lt
  | 3 -> Instr.Ge
  | 4 -> Instr.Le
  | 5 -> Instr.Gt
  | n -> raise (Encoding_error (Printf.sprintf "bad cmp index %d" n))

let check_imm v =
  if not (encodable_imm v) then
    raise
      (Encoding_error
         (Printf.sprintf "immediate %d outside the %d-bit field" v imm_bits))

let pack ~opcode ?(ra = 0) ?(rb = 0) ?(rc = 0) ?(imm_flag = false)
    ?(flag = false) ?(imm = 0) () =
  check_imm imm;
  opcode
  lor (ra lsl 6)
  lor (rb lsl 12)
  lor (rc lsl 18)
  lor (Bool.to_int imm_flag lsl 24)
  lor (Bool.to_int flag lsl 25)
  lor ((imm land ((1 lsl imm_bits) - 1)) lsl 26)

let field word ~lo ~bits = (word lsr lo) land ((1 lsl bits) - 1)

let imm_of word =
  let raw = field word ~lo:26 ~bits:imm_bits in
  if raw land (1 lsl (imm_bits - 1)) <> 0 then raw - (1 lsl imm_bits) else raw

let operand_fields = function
  | Instr.Reg r -> (Reg.index r, false, 0)
  | Instr.Imm v -> (0, true, v)

let encode ~resolve instr =
  let reg = Reg.index in
  match instr with
  | Instr.Nop -> pack ~opcode:op_nop ()
  | Instr.Alu { op; dst; src1; src2 } ->
    let rc, imm_flag, imm = operand_fields src2 in
    pack ~opcode:(op_alu_base + alu_index op) ~ra:(reg dst) ~rb:(reg src1)
      ~rc ~imm_flag ~imm ()
  | Instr.Fpu { op; dst; src1; src2 } ->
    let rc, imm_flag, imm = operand_fields src2 in
    pack ~opcode:(op_fpu_base + alu_index op) ~ra:(reg dst) ~rb:(reg src1)
      ~rc ~imm_flag ~imm ()
  | Instr.Mov { dst; src } ->
    let rc, imm_flag, imm = operand_fields src in
    pack ~opcode:op_mov ~ra:(reg dst) ~rc ~imm_flag ~imm ()
  | Instr.Load { dst; base; offset; speculative } ->
    pack ~opcode:op_load ~ra:(reg dst) ~rb:(reg base) ~flag:speculative
      ~imm:offset ()
  | Instr.Store { src; base; offset } ->
    pack ~opcode:op_store ~ra:(reg src) ~rb:(reg base) ~imm:offset ()
  | Instr.Cmp { op; dst; src1; src2 } ->
    let rc, imm_flag, imm = operand_fields src2 in
    pack ~opcode:(op_cmp_base + cmp_index op) ~ra:(reg dst) ~rb:(reg src1)
      ~rc ~imm_flag ~imm ()
  | Instr.Cmov { on; cond; dst; src } ->
    let rc, imm_flag, imm = operand_fields src in
    pack ~opcode:op_cmov ~ra:(reg dst) ~rb:(reg cond) ~rc ~imm_flag ~flag:on
      ~imm ()
  | Instr.Branch { on; src; target; id } ->
    (* sited control flow splits the immediate: [15:0] resolved target,
       [36:16] site id *)
    let t = resolve target in
    if t >= 1 lsl 16 then raise (Encoding_error "target exceeds 16 bits");
    if id >= 1 lsl 20 then raise (Encoding_error "site id exceeds 20 bits");
    pack ~opcode:op_branch ~ra:(reg src) ~flag:on
      ~imm:(t lor (id lsl 16))
      ()
  | Instr.Jump target -> pack ~opcode:op_jump ~imm:(resolve target) ()
  | Instr.Call target -> pack ~opcode:op_call ~imm:(resolve target) ()
  | Instr.Ret -> pack ~opcode:op_ret ()
  | Instr.Predict { target; id } ->
    let t = resolve target in
    if t >= 1 lsl 16 then raise (Encoding_error "target exceeds 16 bits");
    if id >= 1 lsl 20 then raise (Encoding_error "site id exceeds 20 bits");
    pack ~opcode:op_predict ~imm:(t lor (id lsl 16)) ()
  | Instr.Resolve { on; src; target; predicted_taken; id } ->
    let t = resolve target in
    if t >= 1 lsl 16 then raise (Encoding_error "target exceeds 16 bits");
    if id >= 1 lsl 20 then raise (Encoding_error "site id exceeds 20 bits");
    pack
      ~opcode:(if predicted_taken then op_resolve_pt else op_resolve_pnt)
      ~ra:(reg src) ~flag:on
      ~imm:(t lor (id lsl 16))
      ()
  | Instr.Halt -> pack ~opcode:op_halt ()

let decode ~label_of word =
  let opcode = field word ~lo:0 ~bits:6 in
  let ra = Reg.make (field word ~lo:6 ~bits:6) in
  let rb () = Reg.make (field word ~lo:12 ~bits:6) in
  let rc () = Reg.make (field word ~lo:18 ~bits:6) in
  let imm_flag = field word ~lo:24 ~bits:1 = 1 in
  let flag = field word ~lo:25 ~bits:1 = 1 in
  let imm = imm_of word in
  let operand () =
    if imm_flag then Instr.Imm imm else Instr.Reg (rc ())
  in
  let site_imm () = (imm land ((1 lsl 16) - 1), imm lsr 16) in
  if opcode = op_nop then Instr.Nop
  else if opcode >= op_alu_base && opcode < op_alu_base + 8 then
    Instr.Alu
      { op = alu_of_index (opcode - op_alu_base); dst = ra; src1 = rb ();
        src2 = operand () }
  else if opcode >= op_fpu_base && opcode < op_fpu_base + 8 then
    Instr.Fpu
      { op = alu_of_index (opcode - op_fpu_base); dst = ra; src1 = rb ();
        src2 = operand () }
  else if opcode = op_mov then Instr.Mov { dst = ra; src = operand () }
  else if opcode = op_load then
    Instr.Load { dst = ra; base = rb (); offset = imm; speculative = flag }
  else if opcode = op_store then
    Instr.Store { src = ra; base = rb (); offset = imm }
  else if opcode >= op_cmp_base && opcode < op_cmp_base + 6 then
    Instr.Cmp
      { op = cmp_of_index (opcode - op_cmp_base); dst = ra; src1 = rb ();
        src2 = operand () }
  else if opcode = op_cmov then
    Instr.Cmov { on = flag; cond = rb (); dst = ra; src = operand () }
  else if opcode = op_branch then begin
    let t, id = site_imm () in
    Instr.Branch { on = flag; src = ra; target = label_of t; id }
  end
  else if opcode = op_jump then Instr.Jump (label_of imm)
  else if opcode = op_call then Instr.Call (label_of imm)
  else if opcode = op_ret then Instr.Ret
  else if opcode = op_predict then begin
    let t, id = site_imm () in
    Instr.Predict { target = label_of t; id }
  end
  else if opcode = op_resolve_pt || opcode = op_resolve_pnt then begin
    let t, id = site_imm () in
    Instr.Resolve
      { on = flag; src = ra; target = label_of t;
        predicted_taken = opcode = op_resolve_pt; id }
  end
  else if opcode = op_halt then Instr.Halt
  else raise (Encoding_error (Printf.sprintf "unknown opcode %d" opcode))
