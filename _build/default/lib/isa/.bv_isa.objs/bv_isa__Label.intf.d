lib/isa/label.mli: Format
