lib/isa/instr.mli: Format Label Reg
