lib/isa/encoding.ml: Bool Instr Printf Reg
