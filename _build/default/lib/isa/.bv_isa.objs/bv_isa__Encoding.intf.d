lib/isa/encoding.mli: Instr Label
