lib/isa/label.ml: Format Printf String
