lib/isa/instr.ml: Format Label Reg
