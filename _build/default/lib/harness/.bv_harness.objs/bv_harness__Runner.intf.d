lib/harness/runner.mli: Bv_bpred Bv_cache Bv_ir Bv_pipeline Bv_profile Bv_workloads Hierarchy Kind Machine Spec Vanguard
