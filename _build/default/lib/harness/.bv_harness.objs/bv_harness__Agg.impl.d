lib/harness/agg.ml: Float List
