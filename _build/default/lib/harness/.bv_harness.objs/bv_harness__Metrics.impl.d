lib/harness/metrics.ml: Agg Block Bv_cache Bv_ir Bv_isa Bv_pipeline Bv_profile Bv_sched Bv_workloads Float Gen Hierarchy Instr List Machine Proc Program Runner Sa_cache Spec Stats Vanguard
