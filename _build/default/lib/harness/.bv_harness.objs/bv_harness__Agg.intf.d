lib/harness/agg.mli:
