lib/harness/text.ml: Float List Printf String
