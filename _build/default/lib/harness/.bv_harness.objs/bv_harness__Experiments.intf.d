lib/harness/experiments.mli: Bv_workloads Format Runner
