lib/harness/text.mli:
