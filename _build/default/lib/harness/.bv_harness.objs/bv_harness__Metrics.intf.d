lib/harness/metrics.mli: Bv_ir Bv_pipeline Machine Runner
