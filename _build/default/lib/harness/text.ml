let is_numeric s =
  s <> ""
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '%')
       s

let render ~headers rows =
  let all = headers :: rows in
  let cols = List.length headers in
  let width c =
    List.fold_left
      (fun w row ->
        match List.nth_opt row c with
        | Some cell -> max w (String.length cell)
        | None -> w)
      0 all
  in
  let widths = List.init cols width in
  let pad c cell =
    let w = List.nth widths c in
    let n = w - String.length cell in
    if n <= 0 then cell
    else if is_numeric cell then String.make n ' ' ^ cell
    else cell ^ String.make n ' '
  in
  let line row = String.concat "  " (List.mapi pad row) in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (line headers :: sep :: List.map line rows)

let csv ~headers rows =
  let cell s =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s
  in
  String.concat "\n"
    (List.map (fun row -> String.concat "," (List.map cell row))
       (headers :: rows))

let bar v ~width ~scale =
  let n = max 0 (min width (Float.to_int (v /. scale))) in
  String.make n '#'

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v
