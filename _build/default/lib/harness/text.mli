(** Minimal fixed-width text table renderer for experiment output. *)

val render : headers:string list -> string list list -> string
(** Columns are sized to fit; numeric-looking cells are right-aligned. *)

val csv : headers:string list -> string list list -> string
(** RFC-4180-ish CSV (quotes cells containing commas/quotes). *)

val bar : float -> width:int -> scale:float -> string
(** ASCII bar for quick visual series ([#] per [scale] units, capped). *)

val f1 : float -> string
(** One decimal place. *)

val f2 : float -> string
val f3 : float -> string
