open Bv_isa
open Bv_ir

type site_report =
  { site : int;
    proc : Label.t;
    arm_instrs : int
  }

type result =
  { program : Program.t;
    reports : site_report list;
    skipped : (int * string) list
  }

exception Skip of string

(* Convert one arm to unconditional straight-line code: defs renamed to
   temporaries, loads made non-faulting, stores steered to the null sink
   when the arm loses, and a final cmov per destination committing the
   arm's values when it wins ([(cond <> 0) = on]). *)
let convert_arm ~temps ~cond ~on ~null_sink body =
  let rename = Hashtbl.create 8 in
  let order = ref [] in
  let pool = ref temps in
  let fresh () =
    match !pool with
    | [] -> raise (Skip "arm needs more temporaries than available")
    | t :: rest ->
      pool := rest;
      t
  in
  let temp_for r =
    match Hashtbl.find_opt rename (Reg.index r) with
    | Some t -> t
    | None ->
      let t = fresh () in
      Hashtbl.replace rename (Reg.index r) t;
      order := (r, t) :: !order;
      t
  in
  let subst_reg r =
    match Hashtbl.find_opt rename (Reg.index r) with Some t -> t | None -> r
  in
  let subst_operand = function
    | Instr.Reg r -> Instr.Reg (subst_reg r)
    | Instr.Imm _ as o -> o
  in
  let converted =
    List.concat_map
      (fun instr ->
        match instr with
        | Instr.Alu a ->
          let src1 = subst_reg a.src1 and src2 = subst_operand a.src2 in
          [ Instr.Alu { a with dst = temp_for a.dst; src1; src2 } ]
        | Instr.Fpu a ->
          let src1 = subst_reg a.src1 and src2 = subst_operand a.src2 in
          [ Instr.Fpu { a with dst = temp_for a.dst; src1; src2 } ]
        | Instr.Cmp c ->
          let src1 = subst_reg c.src1 and src2 = subst_operand c.src2 in
          [ Instr.Cmp { c with dst = temp_for c.dst; src1; src2 } ]
        | Instr.Mov m ->
          let src = subst_operand m.src in
          [ Instr.Mov { dst = temp_for m.dst; src } ]
        | Instr.Cmov c ->
          let cond' = subst_reg c.cond and src = subst_operand c.src in
          (* seed the temp with the prior value so a false inner cmov
             keeps it, then rename *)
          let prior = subst_reg c.dst in
          let t = temp_for c.dst in
          let seed =
            if Reg.equal prior t then []
            else [ Instr.Mov { dst = t; src = Instr.Reg prior } ]
          in
          seed @ [ Instr.Cmov { c with cond = cond'; dst = t; src } ]
        | Instr.Load l ->
          let base = subst_reg l.base in
          [ Instr.Load
              { l with dst = temp_for l.dst; base; speculative = true }
          ]
        | Instr.Store s ->
          (* compute the address, steer it to the null sink if this arm
             loses, then store unconditionally *)
          let src = subst_reg s.src and base = subst_reg s.base in
          let t_addr = fresh () in
          [ Instr.Alu { op = Instr.Add; dst = t_addr; src1 = base;
                        src2 = Instr.Imm s.offset };
            Instr.Cmov { on = not on; cond; dst = t_addr;
                         src = Instr.Imm null_sink };
            Instr.Store { src; base = t_addr; offset = 0 }
          ]
        | Instr.Nop -> []
        | Instr.Branch _ | Instr.Jump _ | Instr.Call _ | Instr.Ret
        | Instr.Predict _ | Instr.Resolve _ | Instr.Halt ->
          raise (Skip "terminator inside an arm body"))
      body
  in
  let commits =
    List.rev_map
      (fun (r, t) -> Instr.Cmov { on; cond; dst = r; src = Instr.Reg t })
      !order
  in
  converted @ commits

let transform_site ~temp_pool ~null_sink program candidate =
  let proc = Program.find_proc program candidate.Select.proc in
  let a = Proc.find_block proc candidate.Select.block in
  match a.Block.term with
  | Term.Branch { on; src; taken = c_label; not_taken = b_label; id } ->
    let b = Proc.find_block proc b_label in
    let c = Proc.find_block proc c_label in
    let join =
      match (b.Block.term, c.Block.term) with
      | Term.Jump jb, Term.Jump jc when Label.equal jb jc -> jb
      | _ -> raise (Skip "arms do not join at a common label")
    in
    let n = List.length temp_pool in
    let b_temps = List.filteri (fun i _ -> i < n / 2) temp_pool in
    let c_temps = List.filteri (fun i _ -> i >= n / 2) temp_pool in
    let b_conv =
      convert_arm ~temps:b_temps ~cond:src ~on:(not on) ~null_sink
        b.Block.body
    in
    let c_conv =
      convert_arm ~temps:c_temps ~cond:src ~on ~null_sink c.Block.body
    in
    a.Block.body <- a.Block.body @ b_conv @ c_conv;
    a.Block.term <- Term.Jump join;
    proc.Proc.blocks <-
      List.filter
        (fun blk ->
          not
            (Label.equal blk.Block.label b_label
            || Label.equal blk.Block.label c_label))
        proc.Proc.blocks;
    { site = id;
      proc = proc.Proc.name;
      arm_instrs = List.length b_conv + List.length c_conv
    }
  | _ -> raise (Skip "terminator is not a conditional branch")

let apply ?(temp_pool = Transform.default_temp_pool) ?(schedule = true)
    ~null_sink ~candidates program =
  if null_sink < 0 || null_sink land 7 <> 0 then
    invalid_arg "Predicate.apply: null_sink must be a non-negative aligned \
                 byte address";
  let program = Program.copy program in
  let reports = ref [] in
  let skipped = ref [] in
  List.iter
    (fun cand ->
      match transform_site ~temp_pool ~null_sink program cand with
      | report -> reports := report :: !reports
      | exception Skip reason ->
        skipped := (cand.Select.site, reason) :: !skipped)
    candidates;
  if schedule then Bv_sched.Sched.schedule_program program;
  Validate.check_exn program;
  { program; reports = List.rev !reports; skipped = List.rev !skipped }
