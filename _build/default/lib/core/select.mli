(** Candidate selection for the Decomposed Branch Transformation.

    The paper's heuristic (§5): transform {e forward} branches whose
    predictability exceeds their bias by at least 5 percentage points,
    as measured on TRAIN-input profiles. We additionally require a minimum
    execution count (cold branches aren't worth the code growth) and the
    structural preconditions of the transformation (both successors are
    single-predecessor blocks of the same procedure — the hammock shape the
    generated code and the paper's Figure 5 use). *)

open Bv_ir
open Bv_profile

type candidate =
  { proc : Bv_isa.Label.t;
    block : Bv_isa.Label.t;  (** the block whose terminator is converted *)
    site : int;  (** static branch-site id *)
    bias : float;
    predictability : float;
    executed : int
  }

type t =
  { candidates : candidate list;
    static_forward_branches : int;
        (** denominator of the paper's PBC metric *)
    rejected_shape : int;  (** forward branches failing structural checks *)
    rejected_heuristic : int  (** failing the predictability-bias test *)
  }

val pbc : t -> float
(** Percent of static forward branches converted (Table 2's PBC). *)

val select :
  ?threshold:float ->
  ?min_executed:int ->
  profile:Profile.t ->
  Program.t ->
  t
(** [threshold] is the required predictability-minus-bias margin (default
    0.05); [min_executed] defaults to 100. *)
