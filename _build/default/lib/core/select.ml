open Bv_isa
open Bv_ir
open Bv_profile

type candidate =
  { proc : Label.t;
    block : Label.t;
    site : int;
    bias : float;
    predictability : float;
    executed : int
  }

type t =
  { candidates : candidate list;
    static_forward_branches : int;
    rejected_shape : int;
    rejected_heuristic : int
  }

let pbc t =
  if t.static_forward_branches = 0 then 0.0
  else
    100.0
    *. Float.of_int (List.length t.candidates)
    /. Float.of_int t.static_forward_branches

(* Structural preconditions of the transformation: a hammock-shaped forward
   branch whose two successors are distinct ordinary blocks with this block
   as their only predecessor. *)
let shape_ok proc block preds =
  match block.Block.term with
  | Term.Branch { taken; not_taken; _ } ->
    (not (Label.equal taken not_taken))
    && (not (Label.equal taken block.Block.label))
    && (not (Label.equal not_taken block.Block.label))
    && (not (Label.equal taken proc.Proc.entry))
    && (not (Label.equal not_taken proc.Proc.entry))
    && (match Hashtbl.find_opt preds taken with
       | Some [ _ ] -> true
       | _ -> false)
    && (match Hashtbl.find_opt preds not_taken with
       | Some [ _ ] -> true
       | _ -> false)
  | _ -> false

let select ?(threshold = 0.05) ?(min_executed = 100) ~profile program =
  let candidates = ref [] in
  let forward = ref 0 in
  let rejected_shape = ref 0 in
  let rejected_heuristic = ref 0 in
  List.iter
    (fun proc ->
      let preds = Cfg.predecessor_map proc in
      List.iter
        (fun block ->
          if Cfg.is_forward_branch proc block then begin
            incr forward;
            match block.Block.term with
            | Term.Branch { id; _ } ->
              if not (shape_ok proc block preds) then incr rejected_shape
              else begin
                match Profile.find profile id with
                | None -> incr rejected_heuristic
                | Some s ->
                  let b = Profile.bias s in
                  let p = Profile.predictability s in
                  if s.executed >= min_executed && p -. b >= threshold then
                    candidates :=
                      { proc = proc.Proc.name;
                        block = block.Block.label;
                        site = id;
                        bias = b;
                        predictability = p;
                        executed = s.executed
                      }
                      :: !candidates
                  else incr rejected_heuristic
              end
            | _ -> ()
          end)
        proc.Proc.blocks)
    program.Program.procs;
  { candidates = List.rev !candidates;
    static_forward_branches = !forward;
    rejected_shape = !rejected_shape;
    rejected_heuristic = !rejected_heuristic
  }
