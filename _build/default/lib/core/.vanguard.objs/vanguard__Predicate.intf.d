lib/core/predicate.mli: Bv_ir Bv_isa Label Program Reg Select
