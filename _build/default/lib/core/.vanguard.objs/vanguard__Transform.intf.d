lib/core/transform.mli: Bv_ir Bv_isa Instr Label Program Reg Select Stdlib
