lib/core/assertconv.ml: Block Bv_ir Bv_isa Bv_sched Label List Liveness Option Printf Proc Program Reg Select Term Transform Validate
