lib/core/transform.ml: Block Bv_ir Bv_isa Bv_sched Float Hashtbl Instr Label List Liveness Option Printf Proc Program Reg Select Set Term Validate
