lib/core/predicate.ml: Block Bv_ir Bv_isa Bv_sched Hashtbl Instr Label List Proc Program Reg Select Term Transform Validate
