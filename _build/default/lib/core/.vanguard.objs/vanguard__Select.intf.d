lib/core/select.mli: Bv_ir Bv_isa Bv_profile Profile Program
