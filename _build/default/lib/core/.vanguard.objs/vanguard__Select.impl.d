lib/core/select.ml: Block Bv_ir Bv_isa Bv_profile Cfg Float Hashtbl Label List Proc Profile Program Term
