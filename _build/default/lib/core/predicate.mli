(** If-conversion: the classic alternative the paper's Figure 1 assigns to
    {e unpredictable} hammocks (Allen et al., POPL 1983).

    For a hammock — block [A] ending in [cmp]+[br], successors [B]/[C] with
    a common join — the pass deletes the branch entirely: both arms execute
    unconditionally with their destinations renamed to scratch temporaries,
    arm loads become speculative (non-faulting), arm stores are steered to
    a null-sink word when their arm loses ([cmov] on the address), and a
    final [cmov] per destination selects the winning arm's value.

    The trade the paper describes falls out directly: no branch means no
    mispredictions, but every execution pays for both arms — profitable
    exactly when the branch is unpredictable enough that misprediction
    flushes cost more than the wasted issue slots. The ablation experiment
    [abl-pred] maps this crossover against the decomposed-branch
    transformation over the bias/predictability plane. *)

open Bv_isa
open Bv_ir

type site_report =
  { site : int;
    proc : Label.t;
    arm_instrs : int  (** total instructions across both converted arms *)
  }

type result =
  { program : Program.t;  (** a transformed deep copy; input untouched *)
    reports : site_report list;
    skipped : (int * string) list
  }

val apply :
  ?temp_pool:Reg.t list ->
  ?schedule:bool ->
  null_sink:int ->
  candidates:Select.candidate list ->
  Program.t ->
  result
(** [null_sink] is the byte address of a scratch memory word that absorbs
    stores from losing arms (must be 8-aligned, inside memory and unread by
    the program). The temp pool is split between the two arms; sites whose
    arms need more temporaries than available, or whose shape is not a
    two-arm hammock with a common join, are skipped with a reason. *)
