(** Return address stack: circular overwrite-on-overflow stack used by the
    front end to predict [ret] targets. *)

type t

val create : ?entries:int -> unit -> t
(** Default 64 entries (Table 1). *)

val push : t -> int -> unit
val pop : t -> int option
(** [None] when empty. Overflowed entries are silently overwritten, so a
    pop after deep recursion may return a stale (wrong) address — exactly
    the real-hardware failure mode. *)

val depth : t -> int
val snapshot : t -> t
(** Copy, used to checkpoint at predicted branches for mispredict repair. *)

val restore : t -> from:t -> unit
