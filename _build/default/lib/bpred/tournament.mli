(** The baseline direction predictor of the paper's Table 1: a 24 KB
    three-table GShare-derived predictor — a bimodal component, a gshare
    component and a per-PC chooser, each a table of 2-bit counters. *)

val create :
  ?table_bits:int -> ?history_bits:int -> unit -> Predictor.t
(** [table_bits] applies to all three tables (default 15: 3 × 8 KB = 24 KB);
    [history_bits] defaults to [table_bits]. *)
