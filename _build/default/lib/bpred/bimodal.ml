let create ?(table_bits = 14) () =
  let size = 1 lsl table_bits in
  let mask = size - 1 in
  let table = Array.make size 1 in
  let index pc = Predictor.hash_pc pc land mask in
  { Predictor.name = Printf.sprintf "bimodal-%db" table_bits;
    storage_bits = 2 * size;
    predict =
      (fun ~pc ~outcome:_ ->
        (Predictor.counter_taken table.(index pc) ~max:3, [||]));
    update =
      (fun _ ~pc ~taken ->
        let i = index pc in
        table.(i) <- Predictor.counter_update table.(i) ~taken ~max:3);
    recover = (fun _ ~taken:_ -> ())
  }
