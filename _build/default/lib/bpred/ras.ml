type t =
  { mutable slots : int array;
    mutable top : int;  (* index of next free slot *)
    mutable depth : int
  }

let create ?(entries = 64) () =
  { slots = Array.make entries 0; top = 0; depth = 0 }

let size t = Array.length t.slots

let push t pc =
  t.slots.(t.top) <- pc;
  t.top <- (t.top + 1) mod size t;
  t.depth <- min (size t) (t.depth + 1)

let pop t =
  if t.depth = 0 then None
  else begin
    t.top <- (t.top + size t - 1) mod size t;
    t.depth <- t.depth - 1;
    Some t.slots.(t.top)
  end

let depth t = t.depth

let snapshot t = { slots = Array.copy t.slots; top = t.top; depth = t.depth }

let restore t ~from =
  Array.blit from.slots 0 t.slots 0 (Array.length t.slots);
  t.top <- from.top;
  t.depth <- from.depth
