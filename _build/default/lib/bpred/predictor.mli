(** Common conditional-branch direction predictor interface.

    The interface mirrors what the paper's Decomposed Branch Buffer stores:
    a prediction made at fetch produces a {!meta} payload (history snapshot
    plus the table indices/metadata needed for a later update), the payload
    travels with the branch (in the DBB for decomposed branches, with the
    instruction otherwise), and at resolution the payload is passed back to
    train the tables ({!val-update}) or to repair the speculative global
    history after a misprediction ({!val-recover}).

    [predict] receives the architecturally correct outcome as [~outcome]
    because the simulator is functional-first (it knows outcomes at fetch
    time). Every predictor except the perfect oracle must ignore it. *)

type meta = int array
(** Opaque per-prediction payload. Index 0 is conventionally the global
    history snapshot taken just before this branch shifted in; remaining
    slots are predictor-specific. *)

type t =
  { name : string;
    storage_bits : int;  (** approximate hardware budget of all tables *)
    predict : pc:int -> outcome:bool -> bool * meta;
        (** Returns the predicted direction, and speculatively shifts the
            prediction into the global history. *)
    update : meta -> pc:int -> taken:bool -> unit;
        (** Train the tables with the actual outcome, using predict-time
            metadata. Does not touch the speculative history. *)
    recover : meta -> taken:bool -> unit
        (** Misprediction repair: reset the speculative global history to
            the snapshot in [meta] with the corrected outcome shifted in. *)
  }

val counter_update : int -> taken:bool -> max:int -> int
(** Saturating counter step: increment towards [max] on taken, decrement
    towards 0 otherwise. *)

val counter_taken : int -> max:int -> bool
(** Does a saturating counter currently predict taken (counter in the upper
    half of its range)? *)

val hash_pc : int -> int
(** Cheap PC mixing used by all table indexing. *)

val always : bool -> t
(** Static predictor: always taken / always not-taken. Zero storage. *)

val perfect : t
(** Oracle: echoes [~outcome]. Upper bound for the sensitivity study. *)
