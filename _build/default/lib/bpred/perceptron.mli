(** Perceptron branch predictor (Jiménez & Lin, HPCA 2001): per-PC weight
    vectors over the global history; predicts the sign of the dot product
    and trains weights when wrong or insufficiently confident. Captures
    linearly separable correlations that counter tables cannot, at long
    effective history lengths — a natural rung between the tournament
    baseline and TAGE in the §5.3 ladder. *)

val create :
  ?table_bits:int -> ?history_bits:int -> ?weight_bits:int -> unit ->
  Predictor.t
(** Defaults: [2^9] perceptrons over 28 bits of history with 8-bit
    weights (≈16 KB). The training threshold uses the standard
    [1.93 * h + 14]. *)
