(** Per-PC table of 2-bit saturating counters. *)

val create : ?table_bits:int -> unit -> Predictor.t
(** [create ~table_bits ()] uses a [2^table_bits]-entry counter table
    (default 14, i.e. 4 KB of 2-bit counters). *)
