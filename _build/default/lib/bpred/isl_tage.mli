(** ISL-TAGE: TAGE augmented with a loop predictor and a statistical
    corrector, after Seznec's "A new case for the TAGE branch predictor"
    (MICRO 2011), which the paper uses as the top of its sensitivity ladder
    (§5.3). Both side predictors are functional simplifications:

    - the loop predictor captures branches with a constant trip count and
      overrides TAGE once the same count has been observed
      [confidence_threshold] times in a row;
    - the statistical corrector is a per-(pc, prediction) table of wide
      counters that reverts TAGE on branches where it is statistically
      mis-matched. *)

val create :
  ?num_tables:int ->
  ?table_bits:int ->
  ?loop_entries:int ->
  unit ->
  Predictor.t
(** Defaults approximate a 64 KB budget: 8 tagged tables of [2^12] entries
    plus a 64-entry loop table and a 1K-entry corrector. *)
