lib/bpred/bimodal.mli: Predictor
