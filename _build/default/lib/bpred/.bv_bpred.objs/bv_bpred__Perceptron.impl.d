lib/bpred/perceptron.ml: Array Bool Float Predictor Printf
