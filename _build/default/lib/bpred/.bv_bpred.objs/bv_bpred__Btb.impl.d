lib/bpred/btb.ml: Array Predictor
