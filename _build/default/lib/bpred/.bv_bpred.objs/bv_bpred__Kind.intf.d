lib/bpred/kind.mli: Predictor
