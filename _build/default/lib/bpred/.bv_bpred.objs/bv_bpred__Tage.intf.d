lib/bpred/tage.mli: Predictor
