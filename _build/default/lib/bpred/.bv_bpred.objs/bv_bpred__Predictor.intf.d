lib/bpred/predictor.mli:
