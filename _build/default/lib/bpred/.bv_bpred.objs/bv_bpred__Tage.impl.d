lib/bpred/tage.ml: Array Bool Float Predictor Printf
