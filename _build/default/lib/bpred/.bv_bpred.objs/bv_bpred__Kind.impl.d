lib/bpred/kind.ml: Bimodal Gshare Isl_tage List Perceptron Predictor String Tage Tournament
