lib/bpred/tournament.ml: Array Bool Option Predictor Printf
