lib/bpred/bimodal.ml: Array Predictor Printf
