lib/bpred/tournament.mli: Predictor
