lib/bpred/isl_tage.mli: Predictor
