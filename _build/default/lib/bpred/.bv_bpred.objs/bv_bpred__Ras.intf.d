lib/bpred/ras.mli:
