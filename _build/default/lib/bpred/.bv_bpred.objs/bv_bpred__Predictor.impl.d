lib/bpred/predictor.ml: Stdlib
