lib/bpred/gshare.mli: Predictor
