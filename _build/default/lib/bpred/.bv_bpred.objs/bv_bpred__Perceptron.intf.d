lib/bpred/perceptron.mli: Predictor
