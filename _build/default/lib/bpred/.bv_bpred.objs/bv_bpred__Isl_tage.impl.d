lib/bpred/isl_tage.ml: Array Bool Predictor Printf Tage
