lib/bpred/gshare.ml: Array Bool Predictor Printf
