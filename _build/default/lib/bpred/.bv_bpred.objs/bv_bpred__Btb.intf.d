lib/bpred/btb.mli:
