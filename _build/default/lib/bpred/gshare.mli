(** GShare: 2-bit counters indexed by [pc xor global_history]. *)

val create : ?table_bits:int -> ?history_bits:int -> unit -> Predictor.t
(** Defaults: 15-bit table (8 KB), 15 bits of global history. *)
