type entry =
  { mutable tag : int;
    mutable ctr : int;  (* 0..7, taken if >= 4 *)
    mutable useful : int  (* 0..3 *)
  }

type state =
  { base : int array;  (* bimodal, 2-bit *)
    base_mask : int;
    tables : entry array array;
    hist_lens : int array;
    table_mask : int;
    tag_mask : int;
    mutable history : int;
    hmask : int;
    mutable use_alt_on_na : int;  (* 0..15 *)
    mutable update_count : int;
    mutable lfsr : int
  }

let geometric ~first ~last ~n =
  if n = 1 then [| last |]
  else begin
    let r = Float.of_int last /. Float.of_int first in
    let ratio = r ** (1.0 /. Float.of_int (n - 1)) in
    Array.init n (fun i ->
        let l =
          Float.to_int
            (Float.round (Float.of_int first *. (ratio ** Float.of_int i)))
        in
        max 1 (min last l))
  end

(* XOR-fold the low [len] bits of [h] down to [bits] bits. *)
let fold h len bits =
  let mask = (1 lsl bits) - 1 in
  let rec go acc h remaining =
    if remaining <= 0 then acc
    else go (acc lxor (h land mask)) (h lsr bits) (remaining - bits)
  in
  go 0 (h land ((1 lsl len) - 1)) len

let index st t pc =
  let len = st.hist_lens.(t) in
  let bits =
    (* table_mask = 2^b - 1 *)
    let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
    log2 (st.table_mask + 1) 0
  in
  (Predictor.hash_pc pc lxor fold st.history len bits
  lxor (fold st.history len (bits - 1) lsl 1))
  land st.table_mask

let tag_of st t pc =
  let len = st.hist_lens.(t) in
  (Predictor.hash_pc (pc * 31) lxor fold st.history len 9
  lxor (t * 0x5bd1))
  land st.tag_mask

let base_index st pc = Predictor.hash_pc pc land st.base_mask

(* Longest-match lookup: returns (provider_table or -1, provider_pred,
   alt_pred). *)
let lookup st pc =
  let n = Array.length st.tables in
  let base_pred =
    Predictor.counter_taken st.base.(base_index st pc) ~max:3
  in
  let rec find t =
    if t < 0 then None
    else
      let e = st.tables.(t).(index st t pc) in
      if e.tag = tag_of st t pc then Some t else find (t - 1)
  in
  match find (n - 1) with
  | None -> (-1, base_pred, base_pred)
  | Some p ->
    let alt =
      match (if p = 0 then None else find (p - 1)) with
      | None -> base_pred
      | Some a -> st.tables.(a).(index st a pc).ctr >= 4
    in
    let e = st.tables.(p).(index st p pc) in
    (p, e.ctr >= 4, alt)

let next_lfsr x =
  let x = x lxor (x lsl 13) land max_int in
  let x = x lxor (x lsr 7) in
  x lxor (x lsl 17) land max_int

let create ?(num_tables = 6) ?(table_bits = 11) ?(tag_bits = 9)
    ?(max_history = 62) () =
  let st =
    { base = Array.make (1 lsl 13) 1;
      base_mask = (1 lsl 13) - 1;
      tables =
        Array.init num_tables (fun _ ->
            Array.init (1 lsl table_bits) (fun _ ->
                { tag = -1; ctr = 4; useful = 0 }));
      hist_lens = geometric ~first:4 ~last:max_history ~n:num_tables;
      table_mask = (1 lsl table_bits) - 1;
      tag_mask = (1 lsl tag_bits) - 1;
      history = 0;
      hmask = (1 lsl max_history) - 1;
      use_alt_on_na = 8;
      update_count = 0;
      lfsr = 0x12345
    }
  in
  let shift h taken = ((h lsl 1) lor Bool.to_int taken) land st.hmask in
  let storage_bits =
    (2 * (st.base_mask + 1))
    + num_tables * (st.table_mask + 1) * (tag_bits + 3 + 2)
  in
  let predict ~pc ~outcome:_ =
    let h = st.history in
    let provider, ppred, alt = lookup st pc in
    let pred =
      if provider >= 0 then begin
        let e = st.tables.(provider).(index st provider pc) in
        (* Weak, never-useful entries are "newly allocated": optionally
           trust the alternate prediction. *)
        if e.useful = 0 && (e.ctr = 3 || e.ctr = 4) && st.use_alt_on_na >= 8
        then alt
        else ppred
      end
      else ppred
    in
    st.history <- shift h pred;
    ( pred,
      [| h;
         Bool.to_int pred;
         provider + 1;
         Bool.to_int ppred;
         Bool.to_int alt
      |] )
  in
  let update meta ~pc ~taken =
    let saved = st.history in
    (* Recompute indices against the predict-time history snapshot. *)
    st.history <- meta.(0);
    let pred = meta.(1) = 1 in
    let provider = meta.(2) - 1 in
    let ppred = meta.(3) = 1 in
    let alt = meta.(4) = 1 in
    st.update_count <- st.update_count + 1;
    if provider >= 0 then begin
      let e = st.tables.(provider).(index st provider pc) in
      if e.tag = tag_of st provider pc then begin
        e.ctr <- Predictor.counter_update e.ctr ~taken ~max:7;
        if ppred <> alt then
          e.useful <-
            Predictor.counter_update e.useful ~taken:(ppred = taken) ~max:3;
        (* Track whether alt would have been the better choice for newly
           allocated entries. *)
        if e.useful = 0 && ppred <> alt then
          st.use_alt_on_na <-
            Predictor.counter_update st.use_alt_on_na ~taken:(alt = taken)
              ~max:15
      end
    end
    else begin
      let i = base_index st pc in
      st.base.(i) <- Predictor.counter_update st.base.(i) ~taken ~max:3
    end;
    (* Allocate on misprediction, in a table longer than the provider. *)
    if pred <> taken && provider < Array.length st.tables - 1 then begin
      let start = provider + 1 in
      let n = Array.length st.tables in
      (* Find candidate entries with useful = 0; pick pseudo-randomly with
         preference for shorter histories. *)
      let candidates = ref [] in
      for t = n - 1 downto start do
        let e = st.tables.(t).(index st t pc) in
        if e.useful = 0 then candidates := t :: !candidates
      done;
      (match !candidates with
      | [] ->
        (* No room: age the would-be victims. *)
        for t = start to n - 1 do
          let e = st.tables.(t).(index st t pc) in
          e.useful <- max 0 (e.useful - 1)
        done
      | c :: rest ->
        st.lfsr <- next_lfsr st.lfsr;
        let chosen =
          match rest with
          | c2 :: _ when st.lfsr land 3 = 0 -> c2
          | _ -> c
        in
        let e = st.tables.(chosen).(index st chosen pc) in
        e.tag <- tag_of st chosen pc;
        e.ctr <- (if taken then 4 else 3);
        e.useful <- 0)
    end;
    (* Periodic useful-bit aging. *)
    if st.update_count land 0x3ffff = 0 then
      Array.iter
        (fun tbl -> Array.iter (fun e -> e.useful <- e.useful lsr 1) tbl)
        st.tables;
    st.history <- saved
  in
  let recover meta ~taken = st.history <- shift meta.(0) taken in
  { Predictor.name =
      Printf.sprintf "tage-%dx%db" num_tables table_bits;
    storage_bits;
    predict;
    update;
    recover
  }
