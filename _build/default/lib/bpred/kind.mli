(** Named predictor configurations, used by the CLI and the sensitivity
    study (§5.3). The ladder goes from static prediction up through the
    paper's baseline (24 KB tournament) to ISL-TAGE and a perfect oracle. *)

type t =
  | Always_taken
  | Always_not_taken
  | Bimodal_small  (** 1 K-entry bimodal *)
  | Bimodal  (** 16 K-entry bimodal *)
  | Gshare_small  (** 8 KB gshare *)
  | Gshare  (** 8 KB gshare, full history *)
  | Tournament  (** the paper's baseline: 24 KB 3-table *)
  | Perceptron  (** Jiménez & Lin perceptron, ~16 KB *)
  | Tage  (** 6-component TAGE *)
  | Isl_tage  (** 64 KB-class ISL-TAGE *)
  | Perfect

val all : t list
(** In increasing-accuracy ladder order. *)

val sensitivity_ladder : t list
(** The subset swept by the §5.3 experiment. *)

val name : t -> string
val of_name : string -> t option
val create : t -> Predictor.t
