(** TAGE (TAgged GEometric history length) direction predictor, after
    Seznec & Michaud. A bimodal base table plus [num_tables] partially
    tagged components indexed with geometrically increasing history
    lengths. The longest matching component provides the prediction; a
    "use alt on newly allocated" counter arbitrates weak providers.

    Simplification vs. the paper's 64 KB ISL-TAGE: global history is capped
    at 62 bits (one OCaml int), so history lengths top out there — ample for
    the synthetic workloads' pattern lengths. *)

val create :
  ?num_tables:int ->
  ?table_bits:int ->
  ?tag_bits:int ->
  ?max_history:int ->
  unit ->
  Predictor.t
(** Defaults: 6 tagged tables of [2^11] entries, 9-bit tags, histories
    geometric from 4 to [max_history] (default 62). *)
