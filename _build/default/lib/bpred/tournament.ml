let create ?(table_bits = 15) ?history_bits () =
  let history_bits = Option.value history_bits ~default:table_bits in
  let size = 1 lsl table_bits in
  let mask = size - 1 in
  let hmask = (1 lsl history_bits) - 1 in
  let bim = Array.make size 1 in
  let gsh = Array.make size 1 in
  let chooser = Array.make size 1 in
  (* chooser counts towards gshare on taken-side *)
  let history = ref 0 in
  let bim_index pc = Predictor.hash_pc pc land mask in
  let gsh_index pc h = (Predictor.hash_pc pc lxor h) land mask in
  let shift h taken = ((h lsl 1) lor Bool.to_int taken) land hmask in
  { Predictor.name = Printf.sprintf "tournament-3x%db" table_bits;
    storage_bits = 3 * 2 * size;
    predict =
      (fun ~pc ~outcome:_ ->
        let h = !history in
        let bp = Predictor.counter_taken bim.(bim_index pc) ~max:3 in
        let gp = Predictor.counter_taken gsh.(gsh_index pc h) ~max:3 in
        let use_gshare =
          Predictor.counter_taken chooser.(bim_index pc) ~max:3
        in
        let pred = if use_gshare then gp else bp in
        history := shift h pred;
        (pred, [| h; Bool.to_int bp; Bool.to_int gp |]));
    update =
      (fun meta ~pc ~taken ->
        let h = meta.(0) in
        let bp = meta.(1) = 1 and gp = meta.(2) = 1 in
        let bi = bim_index pc and gi = gsh_index pc h in
        bim.(bi) <- Predictor.counter_update bim.(bi) ~taken ~max:3;
        gsh.(gi) <- Predictor.counter_update gsh.(gi) ~taken ~max:3;
        (* Train the chooser only when the components disagree. *)
        if bp <> gp then
          chooser.(bi) <-
            Predictor.counter_update chooser.(bi) ~taken:(gp = taken) ~max:3);
    recover = (fun meta ~taken -> history := shift meta.(0) taken)
  }
