type t =
  | Always_taken
  | Always_not_taken
  | Bimodal_small
  | Bimodal
  | Gshare_small
  | Gshare
  | Tournament
  | Perceptron
  | Tage
  | Isl_tage
  | Perfect

let all =
  [ Always_not_taken;
    Always_taken;
    Bimodal_small;
    Bimodal;
    Gshare_small;
    Gshare;
    Tournament;
    Perceptron;
    Tage;
    Isl_tage;
    Perfect
  ]

let sensitivity_ladder =
  [ Bimodal; Gshare; Tournament; Perceptron; Tage; Isl_tage; Perfect ]

let name = function
  | Always_taken -> "always-taken"
  | Always_not_taken -> "always-not-taken"
  | Bimodal_small -> "bimodal-small"
  | Bimodal -> "bimodal"
  | Gshare_small -> "gshare-small"
  | Gshare -> "gshare"
  | Tournament -> "tournament"
  | Perceptron -> "perceptron"
  | Tage -> "tage"
  | Isl_tage -> "isl-tage"
  | Perfect -> "perfect"

let of_name s = List.find_opt (fun k -> String.equal (name k) s) all

let create = function
  | Always_taken -> Predictor.always true
  | Always_not_taken -> Predictor.always false
  | Bimodal_small -> Bimodal.create ~table_bits:10 ()
  | Bimodal -> Bimodal.create ~table_bits:14 ()
  | Gshare_small -> Gshare.create ~table_bits:13 ~history_bits:8 ()
  | Gshare -> Gshare.create ~table_bits:15 ~history_bits:15 ()
  | Tournament -> Tournament.create ~table_bits:15 ()
  | Perceptron -> Perceptron.create ()
  | Tage -> Tage.create ()
  | Isl_tage -> Isl_tage.create ()
  | Perfect -> Predictor.perfect
