let create ?(table_bits = 15) ?(history_bits = 15) () =
  let size = 1 lsl table_bits in
  let mask = size - 1 in
  let hmask = (1 lsl history_bits) - 1 in
  let table = Array.make size 1 in
  let history = ref 0 in
  let index pc h = (Predictor.hash_pc pc lxor h) land mask in
  let shift h taken = ((h lsl 1) lor Bool.to_int taken) land hmask in
  { Predictor.name =
      Printf.sprintf "gshare-%db-h%d" table_bits history_bits;
    storage_bits = 2 * size;
    predict =
      (fun ~pc ~outcome:_ ->
        let h = !history in
        let pred = Predictor.counter_taken table.(index pc h) ~max:3 in
        history := shift h pred;
        (pred, [| h |]));
    update =
      (fun meta ~pc ~taken ->
        let i = index pc meta.(0) in
        table.(i) <- Predictor.counter_update table.(i) ~taken ~max:3);
    recover = (fun meta ~taken -> history := shift meta.(0) taken)
  }
