let create ?(table_bits = 9) ?(history_bits = 28) ?(weight_bits = 8) () =
  let size = 1 lsl table_bits in
  let mask = size - 1 in
  let hmask = (1 lsl history_bits) - 1 in
  let wmax = (1 lsl (weight_bits - 1)) - 1 in
  let wmin = -wmax - 1 in
  (* weights.(p) = bias weight :: one weight per history bit *)
  let weights = Array.make_matrix size (history_bits + 1) 0 in
  let history = ref 0 in
  let threshold =
    Float.to_int (Float.round ((1.93 *. Float.of_int history_bits) +. 14.0))
  in
  let index pc = Predictor.hash_pc pc land mask in
  let dot w h =
    let sum = ref w.(0) in
    for b = 0 to history_bits - 1 do
      let x = if (h lsr b) land 1 = 1 then 1 else -1 in
      sum := !sum + (x * w.(b + 1))
    done;
    !sum
  in
  let shift h taken = ((h lsl 1) lor Bool.to_int taken) land hmask in
  { Predictor.name = Printf.sprintf "perceptron-%dx%dh" size history_bits;
    storage_bits = size * (history_bits + 1) * weight_bits;
    predict =
      (fun ~pc ~outcome:_ ->
        let h = !history in
        let sum = dot weights.(index pc) h in
        let pred = sum >= 0 in
        history := shift h pred;
        (pred, [| h; sum |]));
    update =
      (fun meta ~pc ~taken ->
        let h = meta.(0) and sum = meta.(1) in
        let pred = sum >= 0 in
        if pred <> taken || abs sum <= threshold then begin
          let w = weights.(index pc) in
          let t = if taken then 1 else -1 in
          w.(0) <- max wmin (min wmax (w.(0) + t));
          for b = 0 to history_bits - 1 do
            let x = if (h lsr b) land 1 = 1 then 1 else -1 in
            w.(b + 1) <- max wmin (min wmax (w.(b + 1) + (t * x)))
          done
        end);
    recover = (fun meta ~taken -> history := shift meta.(0) taken)
  }
