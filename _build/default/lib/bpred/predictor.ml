type meta = int array

type t =
  { name : string;
    storage_bits : int;
    predict : pc:int -> outcome:bool -> bool * meta;
    update : meta -> pc:int -> taken:bool -> unit;
    recover : meta -> taken:bool -> unit
  }

let counter_update c ~taken ~max =
  if taken then min max (c + 1) else Stdlib.max 0 (c - 1)

let counter_taken c ~max = 2 * c > max

(* Multiplicative mixing; instruction addresses are pc*4, so fold the low
   bits in before multiplying. *)
let hash_pc pc =
  let x = pc lxor (pc lsr 13) in
  (x * 0x9E3779B1) land max_int

let always taken =
  { name = (if taken then "always-taken" else "always-not-taken");
    storage_bits = 0;
    predict = (fun ~pc:_ ~outcome:_ -> (taken, [||]));
    update = (fun _ ~pc:_ ~taken:_ -> ());
    recover = (fun _ ~taken:_ -> ())
  }

let perfect =
  { name = "perfect";
    storage_bits = 0;
    predict = (fun ~pc:_ ~outcome -> (outcome, [||]));
    update = (fun _ ~pc:_ ~taken:_ -> ());
    recover = (fun _ ~taken:_ -> ())
  }
