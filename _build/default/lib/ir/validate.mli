(** Structural well-formedness checks for programs.

    Checks performed:
    - block labels are unique program-wide, procedure names are unique and
      distinct from block labels;
    - every intra-procedural terminator target names a block of the same
      procedure;
    - [Call] targets name a procedure, and the [return_to] block is laid out
      immediately after the calling block (the machine returns to the
      instruction after the [call]);
    - every procedure's entry is its first block;
    - branch-site ids of [Branch] terminators are unique program-wide;
    - each [Predict] site id is matched by at least one [Resolve] with the
      same id, and predict/resolve ids do not collide with branch ids. *)

val check : Program.t -> (unit, string list) result
(** [check p] is [Ok ()] or [Error messages]. *)

val check_exn : Program.t -> unit
(** Raises [Invalid_argument] with all messages joined. *)
