(** A whole program: procedures, an entry procedure, and initialised data. *)

open Bv_isa

type segment =
  { base : int;  (** byte address, 8-byte aligned *)
    contents : int array  (** 8-byte words *)
  }

type t =
  { procs : Proc.t list;  (** layout order; code image follows this order *)
    main : Label.t;  (** name of the entry procedure *)
    segments : segment list;
    mem_words : int  (** total data memory size in 8-byte words *)
  }

val make :
  ?segments:segment list -> ?mem_words:int -> main:Label.t -> Proc.t list -> t
(** Raises [Invalid_argument] if [main] names no procedure or a segment falls
    outside memory or overlaps another. [mem_words] defaults to the smallest
    size covering all segments (at least 1). *)

val find_proc : t -> Label.t -> Proc.t
(** Raises [Not_found]. *)

val instr_count : t -> int

val initial_memory : t -> int array
(** Fresh memory image with all segments installed, zero elsewhere. *)

val copy : t -> t
(** Deep copy: blocks and procedures are fresh mutable records (instruction
    lists are shared — instructions are immutable). Transformation passes
    operate on copies so the baseline program survives. *)

val branch_sites : t -> int list
(** All static branch-site ids appearing in [Branch] terminators, sorted. *)

val pp : Format.formatter -> t -> unit
